package record

import (
	"bytes"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/sim"
)

func newKernel() *kernel.Kernel {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	k.RegisterClass(0, kernel.NewCFS(k))
	return k
}

func TestRoundTrip(t *testing.T) {
	k := newKernel()
	var buf bytes.Buffer
	r := New(k, &buf, 0, DefaultCosts())

	r.RecordMessage(&core.Message{Kind: core.MsgPickNextTask, Seq: 1, CPU: 3,
		RetSched: &core.SchedulableRef{PID: 9, CPU: 3, Gen: 2}})
	r.RecordLock(core.LockEvent{Op: core.LockAcquire, LockID: 0, Thread: 3, Seq: 1})
	r.RecordMessage(&core.Message{Kind: core.MsgTaskBlocked, Seq: 2, PID: 9, Runtime: time.Millisecond})
	r.Close()

	entries, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Msg == nil || entries[0].Msg.Kind != core.MsgPickNextTask {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if got := entries[0].Msg.RetSched; got == nil || got.PID != 9 || got.Gen != 2 {
		t.Fatalf("RetSched lost: %+v", got)
	}
	if entries[1].Lock == nil || entries[1].Lock.Thread != 3 {
		t.Fatalf("lock entry lost: %+v", entries[1])
	}
	if entries[2].Msg.Runtime != time.Millisecond {
		t.Fatal("runtime field lost")
	}
}

func TestSnapshotsAreImmutable(t *testing.T) {
	k := newKernel()
	var buf bytes.Buffer
	r := New(k, &buf, 0, DefaultCosts())
	m := &core.Message{Kind: core.MsgTaskTick, CPU: 1}
	r.RecordMessage(m)
	m.CPU = 7 // live message mutates after recording
	r.Close()
	entries, _ := Load(bytes.NewReader(buf.Bytes()))
	if entries[0].Msg.CPU != 1 {
		t.Fatal("recorder stored a reference, not a snapshot")
	}
}

func TestOverflowCountsDrops(t *testing.T) {
	k := newKernel()
	var buf bytes.Buffer
	costs := DefaultCosts()
	costs.RingCapacity = 4
	r := New(k, &buf, 0, costs)
	for i := 0; i < 10; i++ {
		r.RecordLock(core.LockEvent{Op: core.LockAcquire, Seq: uint64(i)})
	}
	if r.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped)
	}
	if r.Entries != 10 {
		t.Fatalf("Entries = %d", r.Entries)
	}
}

func TestDrainTaskConsumesRing(t *testing.T) {
	k := newKernel()
	var buf bytes.Buffer
	r := New(k, &buf, 0, DefaultCosts())
	for i := 0; i < 100; i++ {
		r.RecordLock(core.LockEvent{Op: core.LockAcquire, Seq: uint64(i)})
	}
	// Run the simulation: the userspace record task drains periodically.
	k.RunFor(5 * time.Millisecond)
	if buf.Len() == 0 {
		t.Fatal("drain task wrote nothing")
	}
	entries, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil || len(entries) != 100 {
		t.Fatalf("drained %d entries (err %v)", len(entries), err)
	}
}

func TestPerCallCost(t *testing.T) {
	k := newKernel()
	var buf bytes.Buffer
	r := New(k, &buf, 0, DefaultCosts())
	if r.PerCallCost() <= 0 {
		t.Fatal("record mode must cost something per call")
	}
}
