package core

import "testing"

// two sockets, two LLC domains per socket, two CPUs per domain.
func twoSocket8() *Topology {
	return NewTopology(
		[]int{0, 0, 0, 0, 1, 1, 1, 1},
		[]int{0, 0, 1, 1, 2, 2, 3, 3},
	)
}

func TestTopologyShape(t *testing.T) {
	topo := twoSocket8()
	if topo.NumCPUs() != 8 || topo.NumNodes() != 2 || topo.NumDomains() != 4 {
		t.Fatalf("shape = %d cpus / %d nodes / %d domains, want 8/2/4",
			topo.NumCPUs(), topo.NumNodes(), topo.NumDomains())
	}
	if topo.NodeOf(3) != 0 || topo.NodeOf(4) != 1 {
		t.Errorf("NodeOf boundary wrong: cpu3→%d cpu4→%d", topo.NodeOf(3), topo.NodeOf(4))
	}
	if topo.DomainOf(1) != 0 || topo.DomainOf(2) != 1 {
		t.Errorf("DomainOf boundary wrong: cpu1→%d cpu2→%d", topo.DomainOf(1), topo.DomainOf(2))
	}
}

func TestTopologyDistance(t *testing.T) {
	topo := twoSocket8()
	cases := []struct{ a, b, want int }{
		{0, 0, DistSameLLC},
		{0, 1, DistSameLLC},
		{0, 2, DistSameNode}, // same socket, different LLC
		{1, 3, DistSameNode},
		{0, 4, DistCrossNode},
		{3, 7, DistCrossNode},
	}
	for _, c := range cases {
		if got := topo.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := topo.Distance(c.b, c.a); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d (asymmetric)", c.b, c.a, got, c.want)
		}
	}
	if !topo.SameLLC(0, 1) || topo.SameLLC(0, 2) {
		t.Error("SameLLC disagrees with Distance")
	}
	if !topo.SameNode(0, 2) || topo.SameNode(0, 4) {
		t.Error("SameNode disagrees with Distance")
	}
}

func TestTopologyGroups(t *testing.T) {
	topo := twoSocket8()
	wantSib := map[int][]int{0: {0, 1}, 5: {4, 5}, 7: {6, 7}}
	for cpu, want := range wantSib {
		got := topo.Siblings(cpu)
		if len(got) != len(want) {
			t.Fatalf("Siblings(%d) = %v, want %v", cpu, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Siblings(%d) = %v, want %v (ascending, self included)", cpu, got, want)
			}
		}
	}
	if n := topo.NodeCPUs(1); len(n) != 4 || n[0] != 4 || n[3] != 7 {
		t.Errorf("NodeCPUs(1) = %v, want [4 5 6 7]", n)
	}
	if d := topo.DomainCPUs(2); len(d) != 2 || d[0] != 4 || d[1] != 5 {
		t.Errorf("DomainCPUs(2) = %v, want [4 5]", d)
	}
}

func TestFlatTopology(t *testing.T) {
	topo := FlatTopology(16)
	if topo.NumNodes() != 1 || topo.NumDomains() != 1 {
		t.Fatalf("flat topology has %d nodes / %d domains, want 1/1",
			topo.NumNodes(), topo.NumDomains())
	}
	if topo.Distance(0, 15) != DistSameLLC {
		t.Error("flat topology reports nonzero distance")
	}
	if len(topo.Siblings(7)) != 16 {
		t.Errorf("flat Siblings = %d CPUs, want 16", len(topo.Siblings(7)))
	}
}

// TestTopologyImmutableInputs: NewTopology copies its input maps, so callers
// mutating them afterwards cannot corrupt the shared topology.
func TestTopologyImmutableInputs(t *testing.T) {
	nodeOf := []int{0, 0, 1, 1}
	topo := NewTopology(nodeOf, nil)
	nodeOf[0] = 1
	if topo.NodeOf(0) != 0 {
		t.Error("NewTopology aliased its nodeOf argument")
	}
}
