// Package ktime provides the virtual-time primitives the simulated kernel is
// built on: a nanosecond-resolution simulation clock type, a fast
// deterministic random number generator, and the sampling helpers the
// workload models need (exponential inter-arrival gaps, bounded uniforms,
// normal noise, Zipf-like key popularity).
//
// Everything in the repository that says "time" means virtual time unless it
// is explicitly measuring host wall-clock (the live-upgrade blackout bench
// measures both).
package ktime

import (
	"fmt"
	"math"
	"time"
)

// Time is an instant in virtual nanoseconds since simulation start.
type Time int64

// Duration re-exports time.Duration so callers can write 10*time.Microsecond
// against the simulated clock without conversions.
type Duration = time.Duration

// Common durations, re-exported for convenience in this package's callers.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String formats the instant as a duration offset from simulation start.
func (t Time) String() string { return fmt.Sprintf("T+%v", Duration(t)) }

// Rand is a small, fast, deterministic PRNG (SplitMix64). It is not safe for
// concurrent use; the simulator is single-threaded by design, and each
// workload owns its own stream so experiments are reproducible and
// independently seedable.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent child generator from r's stream, advancing r
// by one draw. SplitMix64 is splittable by construction: seeding a fresh
// generator from one output (re-mixed with the golden-gamma increment) yields
// a stream statistically independent of the parent's. Chaos campaigns use
// this to hand every fault plane, workload, and run its own deterministic
// stream, so enabling one plane never perturbs the draws of another.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("ktime: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1, via
// inverse transform sampling.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and standard
// deviation 1 (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpDuration returns an exponentially distributed duration with the given
// mean. The result is never negative and never zero (clamped to 1ns) so
// open-loop arrival processes always advance.
func (r *Rand) ExpDuration(mean Duration) Duration {
	d := Duration(float64(mean) * r.ExpFloat64())
	if d < Nanosecond {
		d = Nanosecond
	}
	return d
}

// UniformDuration returns a uniformly distributed duration in [lo, hi].
// It panics if hi < lo.
func (r *Rand) UniformDuration(lo, hi Duration) Duration {
	if hi < lo {
		panic("ktime: UniformDuration with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + Duration(r.Uint64()%uint64(hi-lo+1))
}

// NormDuration returns a normally distributed duration with the given mean
// and standard deviation, clamped to be non-negative.
func (r *Rand) NormDuration(mean, stddev Duration) Duration {
	d := Duration(float64(mean) + r.NormFloat64()*float64(stddev))
	if d < 0 {
		d = 0
	}
	return d
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Zipf samples integers in [0, n) with a Zipf(s) popularity skew. It is used
// by the memcached workload to approximate the Facebook ETC key popularity.
// The implementation precomputes the CDF, so sampling is O(log n).
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("ktime: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next sample.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
