package enokic

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/metrics"
	"enoki/internal/sched/fifo"
)

// cloggedScheduler registers a hint queue but never drains it, so a
// capacity-C ring overflows deterministically on push C+1 — the unit-level
// stand-in for a module too busy (or too dead) to service its ring.
type cloggedScheduler struct {
	*fifo.Sched
	queue *core.HintQueue
}

func (c *cloggedScheduler) RegisterQueue(q *core.HintQueue) int { c.queue = q; return 1 }
func (c *cloggedScheduler) UnregisterQueue(id int) *core.HintQueue {
	q := c.queue
	c.queue = nil
	return q
}
func (c *cloggedScheduler) EnterQueue(id, count int) {}

// TestHintOverflowAccounting pins the per-class drop/deliver counters: ten
// pushes into an undrained capacity-4 ring must report exactly 4 delivered
// and 6 dropped, with Send's return value, Stats, and the metrics tap all
// telling the same story.
func TestHintOverflowAccounting(t *testing.T) {
	k, a := newRig(t, func(env core.Env) core.Scheduler {
		return &cloggedScheduler{Sched: fifo.New(env, policyEnoki)}
	})
	set := metrics.NewSet(k.NumCPUs())
	a.SetMetrics(set)

	uq := a.CreateHintQueue(4)
	if uq == nil {
		t.Fatal("queue registration failed")
	}
	accepted := 0
	for i := 0; i < 10; i++ {
		if uq.Send(i) {
			accepted++
		}
	}
	k.RunFor(time.Millisecond)

	if accepted != 4 {
		t.Errorf("Send accepted %d of 10 pushes into a capacity-4 ring, want 4", accepted)
	}
	st := a.Stats()
	if st.HintsDelivered != 4 || st.HintsDropped != 6 {
		t.Errorf("stats: delivered %d dropped %d, want 4/6", st.HintsDelivered, st.HintsDropped)
	}
	delivered, dropped := set.Class(policyEnoki).HintTotals()
	if delivered != 4 || dropped != 6 {
		t.Errorf("metrics: delivered %d dropped %d, want 4/6", delivered, dropped)
	}
	sum := set.Class(policyEnoki).Summarize()
	if sum.HintsDelivered != 4 || sum.HintsDropped != 6 {
		t.Errorf("summary: delivered %d dropped %d, want 4/6", sum.HintsDelivered, sum.HintsDropped)
	}

	// The synchronous parse_hint path has no ring: it can never drop, and it
	// counts as delivered.
	uq.SendSync("sync")
	k.RunFor(time.Millisecond)
	if st := a.Stats(); st.HintsDelivered != 5 || st.HintsDropped != 6 {
		t.Errorf("after SendSync: delivered %d dropped %d, want 5/6", st.HintsDelivered, st.HintsDropped)
	}
}
