package enoki

import (
	"fmt"
	"io"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/record"
	"enoki/internal/sim"
	"enoki/internal/trace"
)

// System is the assembled simulation: one event engine, one simulated
// kernel, and the scheduler classes loaded into it. It is the front door of
// the public API — construct one with NewSystem, load modules, register the
// native baseline, spawn work, run:
//
//	sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine80()))
//	ad, err := sys.Load(policyMine, func(env enoki.Env) enoki.Scheduler {
//	        return mysched.New(env, policyMine)
//	})
//	sys.RegisterCFS(policyCFS) // CFS below the module, as in the paper
//	sys.Kernel().Spawn(...)
//	sys.Run(20 * time.Millisecond)
//
// Registration order is priority order: classes loaded or registered
// earlier preempt later ones, which is why Enoki modules load before CFS.
type System struct {
	eng *sim.Engine
	k   *kernel.Kernel

	cfg      Config
	adapters []*enokic.Adapter

	tracer *trace.Tracer

	// Recorder plumbing: WithRecorder defers creation until the drain
	// class exists (the recorder spawns its userspace drain task into it).
	recW      io.Writer
	recPolicy int
	recCosts  RecordCosts
	recWanted bool
	recorder  *record.Recorder
}

// options collects the functional-option state for NewSystem.
type options struct {
	machine  Machine
	costs    Costs
	hasCosts bool
	cfg      Config

	recW      io.Writer
	recPolicy int
	recCosts  RecordCosts
	recWanted bool

	tracer *trace.Tracer
}

// Option configures NewSystem.
type Option func(*options)

// WithMachine selects the simulated host topology (default Machine8). Costs
// are calibrated for the machine via CostsFor unless WithCosts overrides
// them.
func WithMachine(m Machine) Option {
	return func(o *options) { o.machine = m }
}

// WithCosts overrides the kernel cost table (default CostsFor(machine)).
func WithCosts(c Costs) Option {
	return func(o *options) { o.costs, o.hasCosts = c, true }
}

// WithConfig sets the framework Config handed to every Load (default
// DefaultConfig).
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithRecorder arranges record mode: a Recorder writing the message/lock
// log to w, its userspace drain task spawned into drainPolicy (normally the
// CFS policy id), installed on every module the System loads. The recorder
// is created as soon as drainPolicy's class is registered — register it
// before spawning tasks or the earliest task_new messages are lost.
func WithRecorder(w io.Writer, drainPolicy int) Option {
	return func(o *options) {
		o.recW, o.recPolicy, o.recWanted = w, drainPolicy, true
		o.recCosts = record.DefaultCosts()
	}
}

// WithTraceSink installs t as the event tracer on the kernel and on every
// module the System loads, producing one interleaved timeline of scheduling
// decisions and framework crossings.
func WithTraceSink(t *Tracer) Option {
	return func(o *options) { o.tracer = t }
}

// NewSystem builds an engine and a kernel behind one handle. With no
// options it models the paper's 8-core machine with calibrated costs and no
// observability taps.
func NewSystem(opts ...Option) *System {
	o := options{machine: kernel.Machine8(), cfg: enokic.DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	if !o.hasCosts {
		o.costs = kernel.CostsFor(o.machine)
	}
	eng := sim.New()
	k := kernel.New(eng, o.machine, o.costs)
	s := &System{
		eng: eng, k: k, cfg: o.cfg,
		recW: o.recW, recPolicy: o.recPolicy,
		recCosts: o.recCosts, recWanted: o.recWanted,
		tracer: o.tracer,
	}
	if o.tracer != nil {
		k.SetTracer(o.tracer)
	}
	return s
}

// Kernel returns the simulated kernel (spawning tasks, querying state).
func (s *System) Kernel() *Kernel { return s.k }

// Engine returns the discrete-event engine driving the simulation.
func (s *System) Engine() *Engine { return s.eng }

// Config returns the framework Config used for Load.
func (s *System) Config() Config { return s.cfg }

// Load constructs a scheduler module via factory and registers it under
// policy. Failures are typed: errors.Is(err, ErrDuplicatePolicy) when the
// policy id is taken, errors.Is(err, ErrPolicyMismatch) when the module's
// GetPolicy disagrees. The System's recorder and tracer, when configured,
// are installed on the new adapter.
func (s *System) Load(policy int, factory func(Env) Scheduler) (*Adapter, error) {
	ad, err := enokic.TryLoad(s.k, policy, s.cfg, func(env core.Env) core.Scheduler {
		return factory(env)
	})
	if err != nil {
		return nil, err
	}
	s.adapters = append(s.adapters, ad)
	if s.tracer != nil {
		ad.SetTracer(s.tracer)
	}
	s.afterRegister()
	if s.recorder != nil {
		ad.SetRecorder(s.recorder)
	}
	return ad, nil
}

// MustLoad is Load panicking on error, for mains and tests.
func (s *System) MustLoad(policy int, factory func(Env) Scheduler) *Adapter {
	ad, err := s.Load(policy, factory)
	if err != nil {
		panic(fmt.Sprintf("enoki: %v", err))
	}
	return ad
}

// RegisterClass registers a native (non-module) scheduler class under
// policy. Like Load, order of registration is priority order.
func (s *System) RegisterClass(policy int, c Class) {
	s.k.RegisterClass(policy, c)
	s.afterRegister()
}

// RegisterCFS builds the native CFS baseline, registers it under policy,
// and returns it. Register it after every Enoki module so the modules sit
// above it in the pick order, mirroring the paper's setups.
func (s *System) RegisterCFS(policy int) *kernel.CFS {
	c := kernel.NewCFS(s.k)
	s.RegisterClass(policy, c)
	return c
}

// afterRegister creates the deferred recorder once its drain class exists
// and installs it on every adapter loaded so far.
func (s *System) afterRegister() {
	if !s.recWanted || s.recorder != nil || s.k.ClassByID(s.recPolicy) == nil {
		return
	}
	s.recorder = record.New(s.k, s.recW, s.recPolicy, s.recCosts)
	for _, ad := range s.adapters {
		ad.SetRecorder(s.recorder)
	}
}

// Recorder returns the live recorder, or nil when WithRecorder was not used
// or its drain class is not registered yet.
func (s *System) Recorder() *Recorder { return s.recorder }

// Adapters returns the modules loaded through this System, in load order.
func (s *System) Adapters() []*Adapter { return s.adapters }

// Run advances the simulation by d of virtual time.
func (s *System) Run(d time.Duration) { s.k.RunFor(d) }

// RunUntilIdle runs until the event queue drains (all tasks exited or
// blocked with no timers pending).
func (s *System) RunUntilIdle() { s.k.RunUntilIdle() }

// Now returns the current virtual time.
func (s *System) Now() Time { return s.k.Now() }
