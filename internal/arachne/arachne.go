// Package arachne models the Arachne user-level threading runtime (Qin et
// al., OSDI '18) that §4.2.4 and §5.6 build on: applications multiplex
// user-level threads over kernel "scheduler activations", and a core
// arbiter hands dedicated cores to processes based on load.
//
// The runtime here is shared by three configurations of Fig 3:
//
//   - Enoki-Arachne: the arbiter is the Enoki scheduler module
//     (internal/sched/arbiter); core requests travel on the user→kernel
//     hint queue and reclamation on the kernel→user queue.
//   - native Arachne: the arbiter is a userspace process reached over a
//     socket (modelled as a grant latency) that uses cpuset-style affinity
//     pinning.
//   - plain CFS: no runtime at all (built directly in the workload).
//
// User-level operations cost ~100 ns, which is what produces the Arachne
// rows of Tables 3 and 4 (0.1-0.2 µs pipe latency, ~1 µs schbench wakeup):
// the kernel is simply not involved in the common path.
package arachne

import (
	"fmt"
	"time"

	"enoki/internal/kernel"
)

// UserThread is one unit of user-level work: run Service worth of CPU, then
// call Done. Start, if set, fires when an activation picks the thread up
// (used to measure dispatch latency).
type UserThread struct {
	Service time.Duration
	Start   func()
	Done    func()
}

// Config tunes the runtime.
type Config struct {
	// SwitchCost is a user-level context switch.
	SwitchCost time.Duration
	// PollChunk is the granularity of idle spinning.
	PollChunk time.Duration
	// SpinLimit is how long an idle activation spins before blocking in
	// the kernel.
	SpinLimit time.Duration
	// MinCores and MaxCores bound the arbiter requests.
	MinCores, MaxCores int
	// EstimateEvery is the core-estimator period.
	EstimateEvery time.Duration
}

// DefaultConfig returns the calibrated runtime parameters.
func DefaultConfig() Config {
	return Config{
		SwitchCost:    90 * time.Nanosecond,
		PollChunk:     120 * time.Nanosecond,
		SpinLimit:     4 * time.Millisecond,
		MinCores:      2,
		MaxCores:      7,
		EstimateEvery: 2 * time.Millisecond,
	}
}

// activation is one kernel task hosting user threads.
type activation struct {
	rt          *Runtime
	task        *kernel.Task
	spin        time.Duration
	spinning    bool
	idleBlocked bool
	parked      bool
	running     bool
	finish      func()
}

// Runtime is one process's Arachne runtime instance.
type Runtime struct {
	k    *kernel.Kernel
	cfg  Config
	acts []*activation

	queue []UserThread

	granted   int
	parkWant  int
	requested int
	lowStreak int

	// RequestCores, when set, sends a core request to the arbiter.
	RequestCores func(n int)

	// Submitted and Completed count user threads.
	Submitted uint64
	Completed uint64
}

// NewRuntime builds a runtime for the process.
func NewRuntime(k *kernel.Kernel, cfg Config) *Runtime {
	return &Runtime{k: k, cfg: cfg}
}

// Start spawns n activations into the scheduler class policyID and returns
// their kernel tasks (so arbiter clients can register them). All
// activations start parked: they run only once the arbiter grants cores
// (Arachne activations without a core stay blocked).
func (rt *Runtime) Start(policyID, n int, opts ...kernel.SpawnOption) []*kernel.Task {
	var tasks []*kernel.Task
	for i := 0; i < n; i++ {
		a := &activation{rt: rt, parked: true}
		rt.acts = append(rt.acts, a)
		allOpts := append([]kernel.SpawnOption{}, opts...)
		a.task = rt.k.Spawn("arachne-act", policyID, kernel.BehaviorFunc(a.next), allOpts...)
		tasks = append(tasks, a.task)
	}
	return tasks
}

// InitialRequest asks the arbiter for the minimum grant; clients call it
// once the runtime is attached.
func (rt *Runtime) InitialRequest() {
	rt.requested = rt.cfg.MinCores
	if rt.RequestCores != nil {
		rt.RequestCores(rt.cfg.MinCores)
	}
}

// StartEstimator begins the periodic core estimator.
func (rt *Runtime) StartEstimator() {
	var tick func()
	tick = func() {
		rt.estimate()
		rt.k.Engine().After(rt.cfg.EstimateEvery, tick)
	}
	rt.k.Engine().After(rt.cfg.EstimateEvery, tick)
}

// estimate is the Arachne load estimator: request one more core when load
// outstrips the grant, release one when utilisation is low.
func (rt *Runtime) estimate() {
	busy := 0
	for _, a := range rt.acts {
		if a.running {
			busy++
		}
	}
	load := busy + len(rt.queue)
	// Scale up promptly with one core of headroom; release slowly and
	// only after a sustained low-load streak (Arachne's hysteresis keeps
	// the grant from whipsawing on bursty load).
	want := load + 1
	if want > rt.granted+8 {
		want = rt.granted + 8
	}
	if want < rt.granted {
		rt.lowStreak++
		if rt.lowStreak >= 5 {
			want = rt.granted - 1
			rt.lowStreak = 0
		} else {
			want = rt.granted
		}
	} else {
		rt.lowStreak = 0
	}
	if want < rt.cfg.MinCores {
		want = rt.cfg.MinCores
	}
	if want > rt.cfg.MaxCores {
		want = rt.cfg.MaxCores
	}
	if want != rt.requested && rt.RequestCores != nil {
		rt.requested = want
		rt.RequestCores(want)
	}
}

// Granted returns the current core grant.
func (rt *Runtime) Granted() int { return rt.granted }

// QueueLen returns the runnable user-thread backlog.
func (rt *Runtime) QueueLen() int { return len(rt.queue) }

// SetGranted applies a new grant from the arbiter, unparking activations to
// fill it.
func (rt *Runtime) SetGranted(n int) {
	rt.granted = n
	// The grant is authoritative: pending park requests are superseded.
	rt.parkWant = 0
	active := 0
	for _, a := range rt.acts {
		if !a.parked {
			active++
		}
	}
	for _, a := range rt.acts {
		if active >= n {
			break
		}
		if a.parked {
			a.parked = false
			a.idleBlocked = false
			active++
			rt.k.Wake(a.task)
		}
	}
}

// Reclaim handles an arbiter reclamation request for n cores: the grant
// shrinks and n activations park — idle ones immediately, busy ones when
// their current user thread finishes.
func (rt *Runtime) Reclaim(n int) {
	rt.granted -= n
	if rt.granted < 0 {
		rt.granted = 0
	}
	for i := 0; i < n; i++ {
		rt.parkOne()
	}
}

func (rt *Runtime) parkOne() {
	for _, a := range rt.acts {
		if a.idleBlocked && !a.parked {
			a.parked = true
			return
		}
	}
	rt.parkWant++
}

// Submit queues a user thread and ensures an activation will run it.
func (rt *Runtime) Submit(ut UserThread) {
	rt.Submitted++
	rt.queue = append(rt.queue, ut)
	// A spinning activation picks work up within a poll chunk; only wake
	// the kernel when no unparked activation is spinning.
	for _, a := range rt.acts {
		if !a.parked && a.spinning {
			return
		}
	}
	for _, a := range rt.acts {
		if a.idleBlocked && !a.parked {
			a.idleBlocked = false
			rt.k.Wake(a.task)
			return
		}
	}
}

// next is the activation scheduling loop.
func (a *activation) next(k *kernel.Kernel, t *kernel.Task) kernel.Action {
	rt := a.rt
	if a.finish != nil {
		f := a.finish
		a.finish = nil
		a.running = false
		rt.Completed++
		f()
	}
	a.spinning = false
	if a.parked {
		a.idleBlocked = false
		// Recheck cancels the park if a grant unparked us while the
		// block was in flight (futex semantics).
		return kernel.Action{Op: kernel.OpBlock, Recheck: func() bool { return !a.parked }}
	}
	if rt.parkWant > 0 {
		rt.parkWant--
		a.parked = true
		return kernel.Action{Op: kernel.OpBlock, Recheck: func() bool { return !a.parked }}
	}
	if len(rt.queue) > 0 {
		ut := rt.queue[0]
		rt.queue = rt.queue[1:]
		a.spin = 0
		a.running = true
		a.finish = ut.Done
		if ut.Start != nil {
			ut.Start()
		}
		return kernel.Action{Run: rt.cfg.SwitchCost + ut.Service, Op: kernel.OpContinue}
	}
	if a.spin < rt.cfg.SpinLimit {
		// Adaptive poll: tight at first for dispatch latency, coarser
		// once the idle stretch drags on (keeps event counts sane).
		chunk := rt.cfg.PollChunk
		if a.spin > 20*time.Microsecond {
			chunk = 2 * time.Microsecond
		}
		a.spin += chunk
		a.spinning = true
		return kernel.Action{Run: chunk, Op: kernel.OpContinue}
	}
	a.spin = 0
	a.idleBlocked = true
	return kernel.Action{Op: kernel.OpBlock, Recheck: func() bool {
		if a.parked {
			return false
		}
		if len(rt.queue) > 0 || !a.idleBlocked {
			a.idleBlocked = false
			return true
		}
		return false
	}}
}

// Debug renders internal activation state for tests.
func (rt *Runtime) Debug() string {
	s := fmt.Sprintf("granted=%d parkWant=%d q=%d |", rt.granted, rt.parkWant, len(rt.queue))
	for _, a := range rt.acts {
		s += fmt.Sprintf(" {pid=%d parked=%v idle=%v running=%v st=%v}", a.task.PID(), a.parked, a.idleBlocked, a.running, a.task.State())
	}
	return s
}
