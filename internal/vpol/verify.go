// Static verifier: proves a Program safe to run inside the kernel before it
// is ever executed. The rules mirror the eBPF discipline restricted to what
// the interpreter needs:
//
//   - program-size, register, queue-table, and loop limits (vpol.go consts)
//   - every hook ends in OpRet and every branch target is in bounds
//   - all non-LOOP branches jump strictly forward; OpLoop jumps strictly
//     backward with a static trip count, so the only cycles are counted
//     loops — all paths terminate by construction
//   - loop bodies are properly nested and no branch crosses a loop-body
//     boundary (the back edge aside), which keeps the interpreter's
//     fixed-depth loop-counter stack sound
//   - queue handles are type-checked against the declared tables, and
//     hook-specific opcodes (Ldf/Enq enqueue-only, TryPop pick-only) stay in
//     their hook
//   - the worst-case step count, weighting each instruction by the product
//     of the trip counts of its enclosing loops, fits MaxSteps; Verify
//     records it as the interpreter's runtime fuel
package vpol

import "fmt"

// VerifyError describes why a program was rejected, pointing at the
// offending hook and instruction.
type VerifyError struct {
	Hook   string // "enqueue", "pick", or "program" for whole-program rules
	PC     int    // instruction index within the hook, -1 for whole-program
	Reason string
}

func (e *VerifyError) Error() string {
	if e.PC < 0 {
		return fmt.Sprintf("vpol: verify %s: %s", e.Hook, e.Reason)
	}
	return fmt.Sprintf("vpol: verify %s[%d]: %s", e.Hook, e.PC, e.Reason)
}

func verr(hook string, pc int, format string, args ...any) error {
	return &VerifyError{Hook: hook, PC: pc, Reason: fmt.Sprintf(format, args...)}
}

const (
	hookEnqueue = iota
	hookPick
)

func hookName(h int) string {
	if h == hookEnqueue {
		return "enqueue"
	}
	return "pick"
}

// Verify checks p against every machine rule. On success it marks the
// program verified and stores the per-hook worst-case step counts that the
// interpreter uses as fuel; on failure it returns a *VerifyError and leaves
// the program unverified.
func Verify(p *Program) error {
	if p == nil {
		return verr("program", -1, "nil program")
	}
	p.verified = false
	if p.SharedQueues < 0 || p.SharedQueues > MaxSharedQueues {
		return verr("program", -1, "shared queues %d out of range [0,%d]", p.SharedQueues, MaxSharedQueues)
	}
	if p.LocalQueues < 0 || p.LocalQueues > MaxLocalQueues {
		return verr("program", -1, "local queues %d out of range [0,%d]", p.LocalQueues, MaxLocalQueues)
	}
	if p.SharedQueues+p.LocalQueues == 0 {
		return verr("program", -1, "no queues declared")
	}
	if p.Slice < 0 {
		return verr("program", -1, "negative slice %v", p.Slice)
	}
	if p.Slice > 0 && p.Slice < MinSlice {
		return verr("program", -1, "slice %v below minimum %v", p.Slice, MinSlice)
	}
	enqSteps, err := verifyHook(p, hookEnqueue, p.Enqueue)
	if err != nil {
		return err
	}
	pickSteps, err := verifyHook(p, hookPick, p.Pick)
	if err != nil {
		return err
	}
	p.enqSteps, p.pickSteps = enqSteps, pickSteps
	p.verified = true
	return nil
}

// loopSpan is one OpLoop's body: instructions [start, end] where end is the
// OpLoop itself.
type loopSpan struct {
	start, end int
	iters      int64
}

func verifyHook(p *Program, hook int, code []Inst) (int64, error) {
	name := hookName(hook)
	if len(code) == 0 {
		return 0, verr(name, -1, "empty hook")
	}
	if len(code) > MaxInsts {
		return 0, verr(name, -1, "%d instructions exceeds limit %d", len(code), MaxInsts)
	}
	if code[len(code)-1].Op != OpRet {
		return 0, verr(name, len(code)-1, "hook must end in ret")
	}

	var spans []loopSpan
	for pc, in := range code {
		if err := verifyInst(p, hook, pc, len(code), in); err != nil {
			return 0, err
		}
		if in.Op == OpLoop {
			spans = append(spans, loopSpan{start: int(in.Imm), end: pc, iters: int64(in.B)})
		}
	}

	// Proper nesting: any two loop bodies are disjoint or one contains the
	// other. Backward targets are strict (start < end) already, and two
	// loops cannot share an end, so partial overlap is the only failure.
	for i, a := range spans {
		for _, b := range spans[i+1:] {
			if a.end < b.start || b.end < a.start {
				continue // disjoint
			}
			if (a.start <= b.start && b.end <= a.end) || (b.start <= a.start && a.end <= b.end) {
				continue // nested
			}
			return 0, verr(name, b.end, "loop body [%d,%d] partially overlaps loop body [%d,%d]",
				b.start, b.end, a.start, a.end)
		}
	}

	// Nesting depth and per-instruction weight: depth(i) = number of spans
	// containing i, weight(i) = product of their trip counts.
	var total int64
	for pc := range code {
		depth := 0
		weight := int64(1)
		for _, s := range spans {
			if s.start <= pc && pc <= s.end {
				depth++
				weight *= s.iters
				if depth > MaxLoopDepth {
					return 0, verr(name, pc, "loop nesting depth exceeds %d", MaxLoopDepth)
				}
				if weight > MaxSteps {
					return 0, verr(name, pc, "worst-case step count exceeds %d", MaxSteps)
				}
			}
		}
		total += weight
		if total > MaxSteps {
			return 0, verr(name, pc, "worst-case step count %d exceeds %d", total, MaxSteps)
		}
	}

	// No branch crosses a loop-body boundary: a forward jump from inside a
	// span stays inside it (jumping to the OpLoop itself is the "continue"
	// idiom and is allowed); a jump from outside may not land inside.
	for pc, in := range code {
		tgt, ok := branchTarget(in)
		if !ok {
			continue
		}
		for _, s := range spans {
			if in.Op == OpLoop && pc == s.end {
				continue // the loop's own back edge
			}
			srcIn := s.start <= pc && pc <= s.end
			tgtIn := s.start <= tgt && tgt <= s.end
			if srcIn && !tgtIn {
				return 0, verr(name, pc, "branch to %d escapes loop body [%d,%d]", tgt, s.start, s.end)
			}
			if !srcIn && tgtIn {
				return 0, verr(name, pc, "branch to %d enters loop body [%d,%d]", tgt, s.start, s.end)
			}
		}
	}

	return total, nil
}

// branchTarget returns an instruction's control-flow target, if it has one.
func branchTarget(in Inst) (int, bool) {
	switch in.Op {
	case OpJmp, OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge,
		OpJeqz, OpJnez, OpJltz, OpJgez, OpLoop:
		return int(in.Imm), true
	}
	return 0, false
}

func verifyInst(p *Program, hook, pc, n int, in Inst) error {
	name := hookName(hook)
	reg := func(r uint8) error {
		if r >= NumRegs {
			return verr(name, pc, "register r%d out of range (machine has %d)", r, NumRegs)
		}
		return nil
	}
	fwd := func(tgt int64) error {
		if tgt <= int64(pc) || tgt >= int64(n) {
			return verr(name, pc, "forward branch target %d out of range (%d,%d)", tgt, pc, n)
		}
		return nil
	}
	queue := func(kind uint8, idx int64) error {
		switch kind {
		case QShared:
			if idx < 0 || idx >= int64(p.SharedQueues) {
				return verr(name, pc, "shared queue %d out of range (program declares %d)", idx, p.SharedQueues)
			}
		case QLocal:
			if idx < 0 || idx >= int64(p.LocalQueues) {
				return verr(name, pc, "local queue %d out of range (program declares %d)", idx, p.LocalQueues)
			}
		default:
			return verr(name, pc, "unknown queue kind %d", kind)
		}
		return nil
	}

	switch in.Op {
	case OpRet:
		return nil
	case OpLdi, OpAddi:
		return reg(in.A)
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor:
		if err := reg(in.A); err != nil {
			return err
		}
		return reg(in.B)
	case OpJmp:
		return fwd(in.Imm)
	case OpJeq, OpJne, OpJlt, OpJle, OpJgt, OpJge:
		if err := reg(in.A); err != nil {
			return err
		}
		if err := reg(in.B); err != nil {
			return err
		}
		return fwd(in.Imm)
	case OpJeqz, OpJnez, OpJltz, OpJgez:
		if err := reg(in.A); err != nil {
			return err
		}
		return fwd(in.Imm)
	case OpLoop:
		if in.B < 1 || int64(in.B) > MaxLoopIter {
			return verr(name, pc, "loop trip count %d out of range [1,%d]", in.B, MaxLoopIter)
		}
		if in.Imm < 0 || in.Imm >= int64(pc) {
			return verr(name, pc, "loop target %d must be strictly backward", in.Imm)
		}
		return nil
	case OpLdf:
		if hook != hookEnqueue {
			return verr(name, pc, "ldf is enqueue-hook only (the pick hook has no context task)")
		}
		if err := reg(in.A); err != nil {
			return err
		}
		if Field(in.B) >= fieldMax {
			return verr(name, pc, "unknown task field %d", in.B)
		}
		return nil
	case OpQlen:
		if err := reg(in.A); err != nil {
			return err
		}
		return queue(in.B, in.Imm)
	case OpEnq:
		if hook != hookEnqueue {
			return verr(name, pc, "enq is enqueue-hook only")
		}
		return queue(in.A, in.Imm)
	case OpTryPop:
		if hook != hookPick {
			return verr(name, pc, "trypop is pick-hook only")
		}
		return queue(in.A, in.Imm)
	default:
		return verr(name, pc, "invalid opcode %d", in.Op)
	}
}
