package experiments

import "testing"

// TestFaultsWorkloadsSurviveModuleDeath pins the experiment's claim: every
// sabotaged module is killed and its workload still runs to completion.
func TestFaultsWorkloadsSurviveModuleDeath(t *testing.T) {
	res := Faults(Options{Quick: true})
	for _, row := range res.Rows {
		if row.Completed != row.Total {
			t.Errorf("%s: %d/%d tasks completed", row.Scenario, row.Completed, row.Total)
		}
		if row.Scenario == "healthy" {
			if row.Cause != "-" {
				t.Errorf("healthy module killed: cause %s", row.Cause)
			}
			continue
		}
		if row.Cause == "-" {
			t.Errorf("%s: module was not killed", row.Scenario)
		}
		if row.Migrated == 0 {
			t.Errorf("%s: kill migrated no tasks", row.Scenario)
		}
	}
}

// TestParallelMatchesSerialFaults: module death must be as deterministic as
// normal operation — the fan-out buys wall clock, never determinism.
func TestParallelMatchesSerialFaults(t *testing.T) {
	serial := Faults(Options{Quick: true}).String()
	par := Faults(Options{Quick: true, Parallel: 4}).String()
	if serial != par {
		t.Errorf("parallel Faults diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
}
