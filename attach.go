package enoki

import (
	"errors"
	"fmt"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/vpol"
)

// PolicySource describes where a scheduling policy's implementation comes
// from — one of the three tiers of the policy spectrum:
//
//   - GoModule: a full Enoki scheduler module behind the message-crossing
//     framework (~100-150 ns per hook, live upgrade, record/replay).
//   - VerifiedProgram: a statically verified bytecode program interpreted
//     directly inside the kernel pick path (~15 ns per hook, no crossing).
//   - BuiltinClass: a native Go kernel.Class (CFS, RT, or custom), no
//     framework involvement at all.
//
// Every source attaches through the same call, System.Attach, which replaces
// the historical trio of Load / RegisterClass / vpol wiring. The interface
// is sealed: the only implementations are the three constructors here.
type PolicySource interface {
	// attach installs the source under policy and returns the module
	// adapter when the source is a module tier (nil for the other tiers).
	attach(s *System, policy int) (*Adapter, error)
	// Tier names the crossing tier this source attaches at: "module",
	// "verified", or "builtin".
	Tier() string
}

// Attach installs a policy implementation under the given policy id. It is
// the single entry point for all three tiers:
//
//	sys.MustAttach(2, enoki.GoModule(newMySched))       // module tier
//	sys.MustAttach(1, enoki.VerifiedProgram(prog))      // verified tier
//	sys.MustAttach(0, enoki.BuiltinClass(cfs))          // builtin tier
//
// Attachment order is priority order, exactly as with the deprecated Load /
// RegisterClass pair. Failures are typed: errors.Is(err, ErrDuplicatePolicy)
// when the policy id is taken, errors.Is(err, ErrPolicyMismatch) when a
// module's GetPolicy disagrees, errors.Is(err, ErrSystemClosed) after Close.
// The returned Adapter is non-nil only for GoModule sources; reach a
// verified tier's class with VerifiedClass.
//
// In sharded mode GoModule and VerifiedProgram attach one instance per
// shard; BuiltinClass is rejected because a Class instance binds to one
// kernel (register per ShardKernel, or use RegisterCFS).
func (s *System) Attach(policy int, src PolicySource) (*Adapter, error) {
	if s.closed {
		return nil, fmt.Errorf("enoki: Attach after Close: %w", ErrSystemClosed)
	}
	if src == nil {
		return nil, errors.New("enoki: Attach with nil PolicySource")
	}
	return src.attach(s, policy)
}

// MustAttach is Attach panicking on error, for mains and tests.
func (s *System) MustAttach(policy int, src PolicySource) *Adapter {
	ad, err := s.Attach(policy, src)
	if err != nil {
		panic(fmt.Sprintf("enoki: %v", err))
	}
	return ad
}

// VerifiedClass returns the verified-tier class attached under policy via
// VerifiedProgram, or nil. In sharded mode it returns shard 0's instance.
func (s *System) VerifiedClass(policy int) *VClass { return s.verified[policy] }

// --- module tier -------------------------------------------------------------

// GoModule is the module-tier PolicySource: factory constructs the scheduler,
// which runs behind the full Enoki-C message crossing with fault isolation,
// live upgrade, hint queues, and record/replay support.
func GoModule(factory func(Env) Scheduler) PolicySource {
	return goModuleSource{factory: factory}
}

type goModuleSource struct {
	factory func(Env) Scheduler
}

func (goModuleSource) Tier() string { return "module" }

func (g goModuleSource) attach(s *System, policy int) (*Adapter, error) {
	if g.factory == nil {
		return nil, errors.New("enoki: GoModule with nil factory")
	}
	if s.sk != nil {
		var first *Adapter
		for i := 0; i < s.sk.NumShards(); i++ {
			ad, err := enokic.TryLoad(s.sk.ShardKernel(i), policy, s.cfg, func(env core.Env) core.Scheduler {
				return g.factory(env)
			})
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			s.adapters = append(s.adapters, ad)
			if first == nil {
				first = ad
			}
		}
		return first, nil
	}
	ad, err := enokic.TryLoad(s.k, policy, s.cfg, func(env core.Env) core.Scheduler {
		return g.factory(env)
	})
	if err != nil {
		return nil, err
	}
	s.adapters = append(s.adapters, ad)
	if s.tracer != nil {
		ad.SetTracer(s.tracer)
	}
	s.afterRegister()
	if s.recorder != nil {
		ad.SetRecorder(s.recorder)
	}
	return ad, nil
}

// --- verified tier -----------------------------------------------------------

// VerifiedProgram is the verified-tier PolicySource: prog is verified
// (bounded loops, typed queue handles, no allocation) and interpreted in the
// kernel pick path with DefaultVerifiedConfig costs. Runtime traps kill the
// class and rehome its tasks to the fallback policy, mirroring module fault
// isolation.
func VerifiedProgram(prog *VProgram) PolicySource {
	return verifiedSource{prog: prog, cfg: vpol.DefaultConfig()}
}

// VerifiedProgramWith is VerifiedProgram with explicit verified-tier costs
// and fallback configuration.
func VerifiedProgramWith(prog *VProgram, cfg VerifiedConfig) PolicySource {
	return verifiedSource{prog: prog, cfg: cfg}
}

type verifiedSource struct {
	prog *vpol.Program
	cfg  vpol.Config
}

func (verifiedSource) Tier() string { return "verified" }

func (v verifiedSource) attach(s *System, policy int) (*Adapter, error) {
	if v.prog == nil {
		return nil, errors.New("enoki: VerifiedProgram with nil program")
	}
	one := func(k *kernel.Kernel) (*vpol.Class, error) {
		if k.ClassByID(policy) != nil {
			return nil, fmt.Errorf("enoki: Attach policy %d: %w", policy, ErrDuplicatePolicy)
		}
		return vpol.Load(k, policy, v.prog, v.cfg)
	}
	var first *vpol.Class
	if s.sk != nil {
		for i := 0; i < s.sk.NumShards(); i++ {
			c, err := one(s.sk.ShardKernel(i))
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			if first == nil {
				first = c
			}
		}
	} else {
		c, err := one(s.k)
		if err != nil {
			return nil, err
		}
		first = c
		s.afterRegister()
	}
	if s.verified == nil {
		s.verified = make(map[int]*vpol.Class)
	}
	s.verified[policy] = first
	return nil, nil
}

// --- builtin tier ------------------------------------------------------------

// BuiltinClass is the builtin-tier PolicySource: c is registered directly in
// the kernel's pick order with no framework crossing. A Class instance binds
// to one kernel, so this source is rejected on a sharded System — register
// per ShardKernel, or use RegisterCFS which constructs per shard.
func BuiltinClass(c Class) PolicySource {
	return builtinSource{c: c}
}

type builtinSource struct {
	c kernel.Class
}

func (builtinSource) Tier() string { return "builtin" }

func (b builtinSource) attach(s *System, policy int) (*Adapter, error) {
	if b.c == nil {
		return nil, errors.New("enoki: BuiltinClass with nil Class")
	}
	if s.sk != nil {
		return nil, errors.New("enoki: BuiltinClass binds one Class to one kernel; in sharded mode register per ShardKernel (or use RegisterCFS)")
	}
	if s.k.ClassByID(policy) != nil {
		return nil, fmt.Errorf("enoki: Attach policy %d: %w", policy, ErrDuplicatePolicy)
	}
	s.k.RegisterClass(policy, b.c)
	s.afterRegister()
	return nil, nil
}
