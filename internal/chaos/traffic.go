// The traffic plane: chaos campaigns whose schedules mix adversarial
// traffic shapes (flash crowds, antagonists, churn storms) with the module
// and kernel fault planes, driven through the overload-control front door.
// A `t1:` spec replays the whole thing — scenario shapes and faults alike
// regenerate from the seed — and ddmin shrinks a failing schedule exactly
// like the single-machine and fleet planes. The oracle's centerpiece is
// shed-accounting conservation: offered = admitted + shed, shed = retried
// + dropped, and every admitted request completes, module kill or not.
package chaos

import (
	"fmt"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/overload"
	"enoki/internal/schedtest"
	"enoki/internal/schedtest/conformance"
	"enoki/internal/sim"
	"enoki/internal/workload/traffic"
)

// trafficSalt decorrelates schedule generation from the scenario's own
// arrival draws (which use the same seed through the traffic package).
const trafficSalt uint64 = 0xd6e8feb86659fd93

// TrafficSchedule is one traffic-plane run's plan: traffic shapes plus
// fault events, all derived from the seed, minimizable through the mask.
type TrafficSchedule struct {
	Seed   uint64
	Class  string
	Events []Event
	Mask   uint64
}

// EnabledAt reports whether event i survives the mask.
func (s TrafficSchedule) EnabledAt(i int) bool { return s.Mask>>uint(i)&1 == 1 }

// EnabledCount counts surviving events.
func (s TrafficSchedule) EnabledCount() int {
	n := 0
	for i := range s.Events {
		if s.EnabledAt(i) {
			n++
		}
	}
	return n
}

// Enabled returns the surviving events, for reporting.
func (s TrafficSchedule) Enabled() []Event {
	out := make([]Event, 0, len(s.Events))
	for i, ev := range s.Events {
		if s.EnabledAt(i) {
			out = append(out, ev)
		}
	}
	return out
}

// Spec renders the schedule's replay string.
func (s TrafficSchedule) Spec() string {
	return fmt.Sprintf("t1:%s:%x:%x", s.Class, s.Seed, s.Mask)
}

// ParseTrafficSpec reconstructs a traffic schedule from its replay spec
// (t1:<class>:<seed hex>:<mask hex>).
func ParseTrafficSpec(spec string) (TrafficSchedule, error) {
	class, seed, mask, err := splitSpec(spec, "t1", "t1:<class>:<seed>:<mask>")
	if err != nil {
		return TrafficSchedule{}, err
	}
	if _, ok := caseByName(class); !ok {
		return TrafficSchedule{}, &SpecError{Spec: spec, Field: "class",
			Msg: fmt.Sprintf("unknown class %q", class)}
	}
	s := GenerateTraffic(seed, class)
	if err := checkMask(spec, mask, s.Mask, len(s.Events)); err != nil {
		return TrafficSchedule{}, err
	}
	s.Mask = mask
	return s, nil
}

// trafficShapes are the planes GenerateTraffic always leads with.
var trafficShapes = []Plane{PlaneTrafficFlash, PlaneTrafficAntag, PlaneTrafficChurn}

// GenerateTraffic derives a traffic-plane schedule from a seed — pure, so
// the seed alone reproduces the plan. The first event is always a traffic
// shape (a traffic run without traffic tests nothing); the rest mix more
// shapes with the class's fault planes, so campaigns sweep the cross
// product of overload and sabotage.
func GenerateTraffic(seed uint64, class string) TrafficSchedule {
	rng := ktime.NewRand(seed ^ trafficSalt)
	c, _ := caseByName(class)
	pool := []Plane{PlaneTrafficFlash, PlaneTrafficAntag, PlaneTrafficChurn,
		PlaneIPIDrop, PlaneIPIDelay, PlaneTimerSkew}
	if c.NewModule != nil {
		pool = append(pool, PlanePanic, PlaneStall)
	}
	n := 2 + int(rng.Intn(3))
	evs := make([]Event, 0, n)
	evs = append(evs, trafficEventFor(trafficShapes[rng.Intn(len(trafficShapes))], rng))
	for j := 1; j < n; j++ {
		p := pool[rng.Intn(len(pool))]
		if p == PlaneTrafficFlash || p == PlaneTrafficAntag || p == PlaneTrafficChurn {
			evs = append(evs, trafficEventFor(p, rng))
		} else {
			ev := eventFor(p, rng)
			// Fault windows drawn for the 1s single-machine budget land
			// past a traffic run's few-ms scenario; fold them into it.
			ev.At %= int64(6 * time.Millisecond)
			if ev.At < int64(time.Millisecond) {
				ev.At += int64(time.Millisecond)
			}
			if ev.Dur > int64(4*time.Millisecond) {
				ev.Dur = int64(4 * time.Millisecond)
			}
			if p == PlanePanic {
				ev.Count %= 600
			}
			evs = append(evs, ev)
		}
	}
	return TrafficSchedule{Seed: seed, Class: class, Events: evs, Mask: 1<<uint(n) - 1}
}

// trafficEventFor draws one traffic shape's window and multiplier, inside
// the fixed 8ms scenario the runner builds.
func trafficEventFor(p Plane, rng *ktime.Rand) Event {
	ev := Event{Plane: p}
	ev.At = int64(1+rng.Intn(4)) * int64(time.Millisecond)
	ev.Dur = int64(1+rng.Intn(3)) * int64(time.Millisecond)
	switch p {
	case PlaneTrafficFlash:
		ev.Count = 4 + int(rng.Intn(7)) // ×4..×10 on the service class
	case PlaneTrafficAntag:
		ev.Count = 3 + int(rng.Intn(6)) // ×3..×8 on the background class
	case PlaneTrafficChurn:
		ev.Count = 1
	}
	return ev
}

// TrafficRunConfig tunes one traffic-plane run.
type TrafficRunConfig struct {
	// Budget bounds virtual run time (default 60ms: the 8ms scenario plus
	// generous drain for retry backoff chains under faults).
	Budget time.Duration
	// LeakShed plants the seeded overload bug: the controller drops
	// final-attempt sheds without counting them, so conservation breaks —
	// the bug the oracle must catch and ddmin must shrink.
	LeakShed bool
}

func (rc TrafficRunConfig) withDefaults() TrafficRunConfig {
	if rc.Budget == 0 {
		rc.Budget = 60 * time.Millisecond
	}
	return rc
}

// TrafficResult is one traffic run's outcome plus the oracle's verdict.
type TrafficResult struct {
	Schedule   TrafficSchedule
	Report     traffic.Report
	Killed     bool
	Failure    *enokic.FailureReport
	Violations []string
}

// Failed reports whether the oracle found any invariant breach.
func (r *TrafficResult) Failed() bool { return len(r.Violations) > 0 }

// trafficScenario builds the fixed two-class scenario a traffic run
// drives: a fanout service class on the module under test (or CFS for
// module-less classes) and a CFS background class, two regions, diurnal
// curve on. The schedule's enabled traffic shapes graft onto it.
func trafficScenario(s TrafficSchedule, policy int) traffic.Scenario {
	sc := traffic.Scenario{
		Seed:     s.Seed,
		Rate:     140_000,
		Duration: 8 * time.Millisecond,
		Classes: []traffic.Class{
			{Name: "svc", Policy: policy, Admission: 0, Weight: 0.75,
				Work: 25 * time.Microsecond, Fanout: 2, ReqPerConn: 2, Think: 250 * time.Microsecond},
			{Name: "bg", Policy: conformance.PolicyCFS, Admission: 1, Weight: 0.25,
				Work: 60 * time.Microsecond},
		},
		Regions: []traffic.Region{
			{Name: "east", Share: 0.5},
			{Name: "west", Share: 0.5, Offset: 4 * time.Millisecond},
		},
	}
	for i, ev := range s.Events {
		if !s.EnabledAt(i) {
			continue
		}
		switch ev.Plane {
		case PlaneTrafficFlash:
			sc.Shapes = append(sc.Shapes, traffic.Shape{Kind: traffic.Flash, Class: 0,
				At: time.Duration(ev.At), Dur: time.Duration(ev.Dur), Mult: float64(ev.Count)})
		case PlaneTrafficAntag:
			sc.Shapes = append(sc.Shapes, traffic.Shape{Kind: traffic.Antagonist, Class: 1,
				At: time.Duration(ev.At), Dur: time.Duration(ev.Dur), Mult: float64(ev.Count)})
		case PlaneTrafficChurn:
			sc.Shapes = append(sc.Shapes, traffic.Shape{Kind: traffic.Churn, Class: -1,
				At: time.Duration(ev.At), Dur: time.Duration(ev.Dur), Mult: 1})
		}
	}
	return sc
}

// trafficAdmission is the run's fixed admission plan: the service class
// sheds at 48 inflight with two retries and browns out on queue depth;
// background is unlimited (it can never shed, which the oracle checks).
func trafficAdmission(policy int, leak bool) overload.Config {
	return overload.Config{
		Classes: []overload.ClassConfig{
			{Name: "svc", Policy: policy, MaxInflight: 48, MaxRetries: 2,
				Backoff: 200 * time.Microsecond, EnterDepth: 40, ExitDepth: 8},
			{Name: "bg", Policy: conformance.PolicyCFS},
		},
		LeakShed: leak,
	}
}

// RunTraffic executes one traffic schedule: the scenario's arrivals pass
// through admission into a single 8-CPU kernel running the class under
// test, while the schedule's fault events sabotage the module and the
// machine. Deterministic end to end.
func RunTraffic(s TrafficSchedule, rc TrafficRunConfig) TrafficResult {
	rc = rc.withDefaults()
	c, ok := caseByName(s.Class)
	if !ok {
		return TrafficResult{Schedule: s, Violations: []string{fmt.Sprintf("unknown class %q", s.Class)}}
	}

	eng := sim.New()
	m := kernel.Machine8()
	k := kernel.New(eng, m, kernel.CostsFor(m))
	res := TrafficResult{Schedule: s}

	policy := conformance.PolicyCFS
	inj := &schedtest.Injector{Clock: func() int64 { return int64(k.Now()) }}
	var adapter *enokic.Adapter
	if c.NewModule != nil {
		policy = conformance.PolicyTest
		adapter = enokic.Load(k, policy, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
			inj.Scheduler = c.NewModule(env, k.NumCPUs())
			return inj
		})
	}
	k.RegisterClass(conformance.PolicyCFS, kernel.NewCFS(k))

	kf := &kernelFaults{clock: inj.Clock, rng: ktime.NewRand(s.Seed ^ kernelSalt)}
	armedKernel := false
	for i, ev := range s.Events {
		if !s.EnabledAt(i) {
			continue
		}
		switch ev.Plane {
		case PlanePanic:
			if adapter != nil {
				inj.PanicSite, inj.PanicAt = ev.Site, ev.Count
			}
		case PlaneStall:
			if adapter != nil {
				inj.StallFrom = ev.At
				inj.StallUntil = 0
				if ev.Dur > 0 {
					inj.StallUntil = ev.At + ev.Dur
				}
			}
		case PlaneIPIDrop:
			kf.dropFrom, kf.dropUntil, kf.dropMag = ev.At, ev.At+ev.Dur, ev.Mag
			armedKernel = true
		case PlaneIPIDelay:
			kf.delayFrom, kf.delayUntil, kf.delayMag = ev.At, ev.At+ev.Dur, ev.Mag
			armedKernel = true
		case PlaneTimerSkew:
			kf.skewFrom, kf.skewUntil, kf.skewMag = ev.At, ev.At+ev.Dur, ev.Mag
			armedKernel = true
		}
	}
	if armedKernel {
		k.SetFaultInjector(kf)
	}

	sc := trafficScenario(s, policy)
	ads := map[int]*enokic.Adapter{}
	if adapter != nil {
		ads[policy] = adapter
	}
	d := traffic.NewDriver(k, sc, traffic.DriverConfig{
		Controller:  overload.New(trafficAdmission(policy, rc.LeakShed)),
		Adapters:    ads,
		SampleEvery: 250 * time.Microsecond,
	})
	d.Start()
	k.RunFor(rc.Budget)

	if adapter != nil {
		res.Killed = adapter.Killed()
		res.Failure = adapter.Failure()
	}
	res.Report = traffic.Collect(d)
	res.Violations = trafficOracle(&res)
	return res
}

// trafficKillJustified mirrors killJustified for traffic schedules: only
// module-sabotage planes earn a kill; traffic shapes never do — overload
// must shed, not destroy.
func trafficKillJustified(s TrafficSchedule) bool {
	for i, ev := range s.Events {
		if !s.EnabledAt(i) {
			continue
		}
		switch ev.Plane {
		case PlanePanic, PlaneStall, PlaneForge:
			return true
		}
	}
	return false
}

// trafficOracle judges one traffic run. Every rule holds for any correct
// stack under any schedule: conservation balances, admitted work finishes
// (rehomed if the module died), kills are earned, brownout episodes close,
// and the unlimited background class never sheds.
func trafficOracle(r *TrafficResult) []string {
	var v []string
	add := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	// Shed-accounting conservation, inflight drained to zero included
	// (the controller's own messages carry the "conservation:" prefix).
	for _, cv := range r.Report.Violations {
		add("%s", cv)
	}
	// Every admitted request completed within budget — under the module,
	// or under CFS after a kill rehomed its tasks.
	for ci, c := range r.Report.Classes {
		if c.Requests != c.Completed {
			add("class %d (%s): %d admitted, %d completed", ci, c.Name, c.Requests, c.Completed)
		}
	}
	if r.Report.Total.Admitted == 0 {
		add("nothing admitted: the run tested no traffic")
	}
	// The unlimited class must never shed.
	if n := r.Report.Admission[1]; n.Shed != 0 {
		add("unlimited background class shed %d requests", n.Shed)
	}
	// Kills must be earned by a module-sabotage plane; a flash crowd that
	// kills the module means overload reached the trait boundary.
	if r.Killed && !trafficKillJustified(r.Schedule) {
		cause := "unknown"
		if r.Failure != nil {
			cause = r.Failure.Fault.String()
		}
		add("module killed without a kill-justifying fault plane: %s", cause)
	}
	// Brownout recovery: every entered episode must have exited by drain.
	if r.Report.BrownoutEntered && !r.Report.Recovered {
		add("brownout entered but never recovered within budget")
	}
	return v
}

// MinimizeTraffic shrinks a failing traffic schedule to a minimal
// reproducer, the same greedy ddmin over the event mask Minimize uses.
func MinimizeTraffic(s TrafficSchedule, rc TrafficRunConfig) (TrafficSchedule, TrafficResult) {
	res := RunTraffic(s, rc)
	if !res.Failed() {
		return s, res
	}
	for changed := true; changed; {
		changed = false
		for i := range s.Events {
			if !s.EnabledAt(i) || s.EnabledCount() == 1 {
				continue
			}
			trial := s
			trial.Mask &^= 1 << uint(i)
			if tr := RunTraffic(trial, rc); tr.Failed() {
				s, res = trial, tr
				changed = true
			}
		}
	}
	return s, res
}

// ReplayTrafficCommand renders the one-liner reproducing a failing
// traffic schedule with the enoki-chaos CLI.
func ReplayTrafficCommand(s TrafficSchedule, rc TrafficRunConfig) string {
	cmd := fmt.Sprintf("enoki-chaos -replay %s", s.Spec())
	if rc.LeakShed {
		cmd += " -leakshed"
	}
	return cmd
}

// TrafficFailure is one failing traffic campaign run, minimized.
type TrafficFailure struct {
	Result    TrafficResult
	Minimized TrafficSchedule
	MinResult TrafficResult
	Replay    string
}

// TrafficCampaignConfig drives a traffic-plane campaign.
type TrafficCampaignConfig struct {
	// Runs is how many seeded schedules to execute (default 30).
	Runs int
	// Seed roots the campaign.
	Seed uint64
	// Classes restricts the classes exercised (default: all, round-robin).
	Classes []string
	// MaxFailures stops the campaign after minimizing this many failures
	// (default 3).
	MaxFailures int
	// Run tunes the individual runs.
	Run TrafficRunConfig
	// Progress, when set, receives one line per completed run.
	Progress func(string)
}

// TrafficCampaignResult summarises a traffic campaign.
type TrafficCampaignResult struct {
	Runs     int
	Failures []TrafficFailure
}

// OK reports a clean campaign.
func (c *TrafficCampaignResult) OK() bool { return len(c.Failures) == 0 }

// TrafficCampaign sweeps seeded traffic × fault schedules round-robin
// across the target classes, minimizing every failure. Deterministic: the
// master seed fixes every run.
func TrafficCampaign(cfg TrafficCampaignConfig) TrafficCampaignResult {
	if cfg.Runs == 0 {
		cfg.Runs = 30
	}
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = 3
	}
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = ClassNames()
	}
	master := ktime.NewRand(cfg.Seed)
	out := TrafficCampaignResult{}
	for i := 0; i < cfg.Runs; i++ {
		class := classes[i%len(classes)]
		sch := GenerateTraffic(master.Uint64(), class)
		res := RunTraffic(sch, cfg.Run)
		out.Runs++
		if cfg.Progress != nil {
			status := "ok"
			if res.Failed() {
				status = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
			}
			cfg.Progress(fmt.Sprintf("run %3d %-10s %-26s %s", i, class, sch.Spec(), status))
		}
		if !res.Failed() {
			continue
		}
		min, minRes := MinimizeTraffic(sch, cfg.Run)
		out.Failures = append(out.Failures, TrafficFailure{
			Result:    res,
			Minimized: min,
			MinResult: minRes,
			Replay:    ReplayTrafficCommand(min, cfg.Run),
		})
		if len(out.Failures) >= cfg.MaxFailures {
			break
		}
	}
	return out
}
