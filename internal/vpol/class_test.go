package vpol

import (
	"testing"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/sim"
)

const (
	policyCFS  = 0
	policyVPol = 2
)

func newRig(t *testing.T, src string) (*kernel.Kernel, *Class) {
	t.Helper()
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	c, err := Load(k, policyVPol, MustAssemble(src), DefaultConfig())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	return k, c
}

func spin(total, chunk time.Duration) kernel.Behavior {
	remaining := total
	return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
		if remaining <= 0 {
			return kernel.Action{Op: kernel.OpExit}
		}
		c := chunk
		if c > remaining {
			c = remaining
		}
		remaining -= c
		return kernel.Action{Run: c, Op: kernel.OpContinue}
	})
}

func TestFIFOLifecycle(t *testing.T) {
	k, c := newRig(t, FIFOSource)
	done := 0
	for i := 0; i < 6; i++ {
		k.Spawn("w", policyVPol, spin(3*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(200 * time.Millisecond)
	if done != 6 {
		t.Fatalf("completed %d/6 tasks", done)
	}
	if c.Killed() {
		t.Fatalf("class killed: %+v", c.Failure())
	}
	if k.NumTasks() != 0 {
		t.Fatalf("leaked tasks: %d", k.NumTasks())
	}
	st := c.Stats()
	if st.Execs == 0 || st.Enqueues == 0 || st.Picks == 0 {
		t.Fatalf("interpreter never ran: %+v", st)
	}
	for cpu := 0; cpu < k.NumCPUs(); cpu++ {
		if n := c.NRunnable(cpu); n != 0 {
			t.Fatalf("cpu %d still reports %d runnable", cpu, n)
		}
	}
}

func TestLocalQueues(t *testing.T) {
	const src = `
queues shared=0 local=1
enqueue:
	enq local, 0
	ret
pick:
	trypop local, 0
	ret
`
	k, c := newRig(t, src)
	done := 0
	for i := 0; i < 8; i++ {
		k.Spawn("w", policyVPol, spin(2*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(200 * time.Millisecond)
	if done != 8 || c.Killed() {
		t.Fatalf("done=%d killed=%v", done, c.Killed())
	}
}

// TestDualQueuePriority pins the dual-queue policy's semantics on one CPU:
// express (negative-nice) tasks drain completely before any normal task
// finishes, because the pick hook always tries the express queue first.
func TestDualQueuePriority(t *testing.T) {
	k, c := newRig(t, DualQueueSource)
	var order []string
	exit := func(tag string) kernel.SpawnOption {
		return kernel.WithExitObserver(func() { order = append(order, tag) })
	}
	pin := kernel.WithAffinity(kernel.SingleCPU(0))
	for i := 0; i < 3; i++ {
		k.Spawn("norm", policyVPol, spin(2*time.Millisecond, 200*time.Microsecond),
			exit("norm"), pin)
	}
	for i := 0; i < 2; i++ {
		k.Spawn("expr", policyVPol, spin(2*time.Millisecond, 200*time.Microsecond),
			exit("expr"), pin, kernel.WithNice(-5))
	}
	k.RunFor(time.Second)
	if len(order) != 5 {
		t.Fatalf("completed %d/5 tasks (order %v)", len(order), order)
	}
	if order[0] != "expr" || order[1] != "expr" {
		t.Fatalf("express tasks did not finish first: %v", order)
	}
	if c.Killed() {
		t.Fatalf("class killed: %+v", c.Failure())
	}
}

// TestSharedQueueAffinity: a shared-queue pop must skip tasks whose affinity
// excludes the picking CPU, so a pinned task only ever runs on its CPU.
func TestSharedQueueAffinity(t *testing.T) {
	k, _ := newRig(t, FIFOSource)
	violated := false
	left := 2 * time.Millisecond
	check := kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
		if t.CPU() != 3 {
			violated = true
		}
		if left <= 0 {
			return kernel.Action{Op: kernel.OpExit}
		}
		left -= 200 * time.Microsecond
		return kernel.Action{Run: 200 * time.Microsecond, Op: kernel.OpContinue}
	})
	k.Spawn("pin", policyVPol, check, kernel.WithAffinity(kernel.SingleCPU(3)))
	for i := 0; i < 6; i++ {
		k.Spawn("w", policyVPol, spin(2*time.Millisecond, 200*time.Microsecond))
	}
	k.RunFor(100 * time.Millisecond)
	if violated {
		t.Fatal("pinned task ran on a CPU outside its mask")
	}
	if k.NumTasks() != 0 {
		t.Fatalf("leaked tasks: %d", k.NumTasks())
	}
}

// TestLoopSemantics runs a program whose enqueue hook counts to 10 with a
// bounded loop and traps if the count is wrong — a behavioral pin of the
// do-while trip-count contract.
func TestLoopSemantics(t *testing.T) {
	const src = `
queues shared=1
enqueue:
	ldi r2, 0
	ldi r3, 10
top:
	addi r2, 1
	loop 10, top
	jeq r2, r3, ok
	ldi r5, 0
	div r2, r5      ; wrong count: trap
ok:
	enq shared, 0
	ret
pick:
	trypop shared, 0
	ret
`
	k, c := newRig(t, src)
	done := 0
	k.Spawn("w", policyVPol, spin(time.Millisecond, 200*time.Microsecond),
		kernel.WithExitObserver(func() { done++ }))
	k.RunFor(50 * time.Millisecond)
	if c.Killed() {
		t.Fatalf("loop counted wrong, class trapped: %+v", c.Failure())
	}
	if done != 1 {
		t.Fatalf("task did not finish")
	}
}

// TestTrapKillsAndRehomes: a program that divides by zero once a task has
// accumulated 1ms of runtime must die through the kill path — class marked
// killed with a populated report, every task rehomed to CFS and finishing
// there, kernel left consistent.
func TestTrapKillsAndRehomes(t *testing.T) {
	const src = `
queues shared=1
enqueue:
	ldf r2, vruntime
	ldi r3, 1000000
	sub r2, r3
	jltz r2, ok     ; under 1ms of runtime: fine
	ldi r4, 0
	div r2, r4      ; then: divide by zero
ok:
	enq shared, 0
	ret
pick:
	trypop shared, 0
	ret
`
	k, c := newRig(t, src)
	var reported *FailureReport
	c.SetFaultHandler(func(r *FailureReport) { reported = r })
	done := 0
	// Yielding spinners re-run the enqueue hook as their runtime grows, so
	// one of them crosses the 1ms threshold and trips the trap.
	yspin := func() kernel.Behavior {
		left := 5 * time.Millisecond
		return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			if left <= 0 {
				return kernel.Action{Op: kernel.OpExit}
			}
			left -= 200 * time.Microsecond
			return kernel.Action{Run: 200 * time.Microsecond, Op: kernel.OpYield}
		})
	}
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyVPol, yspin(),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(time.Second)
	if !c.Killed() {
		t.Fatal("class survived a division by zero")
	}
	rep := c.Failure()
	if rep == nil || rep.Trap != TrapDivZero || rep.Hook != "enqueue" {
		t.Fatalf("report %+v, want enqueue div-zero", rep)
	}
	if reported != rep {
		t.Fatalf("fault handler got %+v, report is %+v", reported, rep)
	}
	if done != 4 {
		t.Fatalf("only %d/4 tasks finished after rehome to CFS", done)
	}
	if k.NumTasks() != 0 {
		t.Fatalf("leaked tasks: %d", k.NumTasks())
	}
	// The dead policy id is re-pointed at the fallback class.
	if k.ClassByID(policyVPol) != k.ClassByID(policyCFS) {
		t.Fatal("dead policy id not re-pointed at CFS")
	}
}

// TestLoadRejects pins Load's two failure modes: unverifiable programs and
// duplicate policy ids.
func TestLoadRejects(t *testing.T) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	if _, err := Load(k, 1, &Program{}, DefaultConfig()); err == nil {
		t.Fatal("Load accepted an unverifiable program")
	}
	if _, err := Load(k, 1, FIFOProgram(), DefaultConfig()); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := Load(k, 1, FIFOProgram(), DefaultConfig()); err == nil {
		t.Fatal("Load accepted a duplicate policy")
	}
}

// TestRingGrowth floods one shared queue far past the initial capacity.
func TestRingGrowth(t *testing.T) {
	k, c := newRig(t, FIFOSource)
	done := 0
	for i := 0; i < 300; i++ { // QueueCap is 64
		k.Spawn("w", policyVPol, spin(100*time.Microsecond, 100*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(time.Second)
	if done != 300 || c.Killed() {
		t.Fatalf("done=%d killed=%v", done, c.Killed())
	}
}
