package conformance

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/vpol"
)

// verifiedPrograms returns the two example bytecode policies the verified
// conformance sweep mounts above each case.
func verifiedPrograms() map[string]*vpol.Program {
	return map[string]*vpol.Program{
		"vfifo":  vpol.FIFOProgram(),
		"vdualq": vpol.DualQueueProgram(),
	}
}

// TestVerifiedConformanceMachine80 runs the full 7-class suite on the
// paper's 80-core box with a verified-tier program mounted above each case:
// every third workload task schedules through the interpreter while the
// rest exercise the case's own class, and the shared invariants (progress,
// no double-run, no leaks) must hold across the tier boundary.
func TestVerifiedConformanceMachine80(t *testing.T) {
	for vname, prog := range verifiedPrograms() {
		for _, c := range Cases() {
			c := c
			c.Verified = prog
			t.Run(fmt.Sprintf("%s/%s", vname, c.Name), func(t *testing.T) {
				t.Parallel()
				r := NewRigOn(c, kernel.Machine80(), enokic.DefaultConfig(), nil)
				ch := StartChecker(r, 500*time.Microsecond)
				w := Workload{Seed: 0x80 + uint64(len(c.Name)), Tasks: 60, Churn: true}
				done := w.Run(r)
				ch.Stop()
				if done != w.Tasks {
					t.Fatalf("%d/%d tasks completed", done, w.Tasks)
				}
				for _, v := range ch.Violations {
					t.Errorf("violation: %v", v)
				}
				if r.Verified.Killed() {
					t.Fatalf("verified class killed: %+v", r.Verified.Failure())
				}
				if r.Verified.Stats().Picks == 0 {
					t.Fatal("verified class never picked a task")
				}
				if n := r.K.NumTasks(); n != 0 {
					t.Fatalf("task table leaked %d entries", n)
				}
			})
		}
	}
}

// TestVerifiedShardedIdentity is the determinism claim with the verified
// tier active: serial and parallel sharded runs of the same seed, each
// shard carrying module + verified + CFS, must produce byte-identical
// per-shard record logs and identical counters.
func TestVerifiedShardedIdentity(t *testing.T) {
	c := Cases()[2] // wfq
	c.Verified = vpol.DualQueueProgram()
	m := kernel.Machine80()
	cfg := enokic.DefaultConfig()
	const seed, tasks = 0x5eed, 24
	budget := 60 * time.Millisecond

	serial := RecordShardedRun(c, m, cfg, seed, tasks, budget, false)
	parallel := RecordShardedRun(c, m, cfg, seed, tasks, budget, true)

	if len(serial.Violations) != 0 || len(parallel.Violations) != 0 {
		t.Fatalf("violations: serial=%v parallel=%v", serial.Violations, parallel.Violations)
	}
	if serial.WorkloadDone != serial.WorkloadTasks {
		t.Fatalf("serial: %d/%d tasks completed", serial.WorkloadDone, serial.WorkloadTasks)
	}
	if serial.WorkloadDone != parallel.WorkloadDone || serial.PingersDone != parallel.PingersDone {
		t.Fatalf("completion drift: serial=(%d,%d) parallel=(%d,%d)",
			serial.WorkloadDone, serial.PingersDone, parallel.WorkloadDone, parallel.PingersDone)
	}
	if serial.CtxSwitches != parallel.CtxSwitches || serial.EventsFired != parallel.EventsFired {
		t.Fatalf("counter drift: serial=(%d,%d) parallel=(%d,%d)",
			serial.CtxSwitches, serial.EventsFired, parallel.CtxSwitches, parallel.EventsFired)
	}
	for i := range serial.Logs {
		if !bytes.Equal(serial.Logs[i], parallel.Logs[i]) {
			t.Fatalf("shard %d record log differs between serial and parallel (%d vs %d bytes)",
				i, len(serial.Logs[i]), len(parallel.Logs[i]))
		}
	}
}

// TestVerifiedTrapRehome pins the verified tier's fault road inside the
// conformance rig: a program that traps deterministically is killed, and
// every task it held still finishes under the fallback CFS.
func TestVerifiedTrapRehome(t *testing.T) {
	c := Case{Name: "cfs", Verified: vpol.MustAssemble(`
queues shared=1 local=0
enqueue:
    ldf r2, nice
    ldi r3, 1
    div r3, r2   ; nice is 0 for every workload task: traps on first enqueue
    enq shared, 0
    ret
pick:
    trypop shared, 0
    ret
`)}
	r := NewRig(c, enokic.DefaultConfig(), nil)
	w := Workload{Seed: 7, Tasks: 30}
	done := w.Run(r)
	if !r.Verified.Killed() {
		t.Fatal("verified class survived a guaranteed trap")
	}
	if f := r.Verified.Failure(); f == nil || f.Trap != vpol.TrapDivZero {
		t.Fatalf("failure = %+v, want TrapDivZero", r.Verified.Failure())
	}
	if done != w.Tasks {
		t.Fatalf("%d/%d tasks completed after rehome", done, w.Tasks)
	}
	if n := r.K.NumTasks(); n != 0 {
		t.Fatalf("task table leaked %d entries", n)
	}
}
