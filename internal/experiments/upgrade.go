package experiments

import (
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/wfq"
	"enoki/internal/stats"
	"enoki/internal/workload"
)

// UpgradeRow is one machine configuration's live-upgrade measurement.
type UpgradeRow struct {
	Machine  string
	Workers  int
	Blackout time.Duration
	WallSwap time.Duration
	Deferred int
	// P50/P99 are schbench wakeup percentiles over the whole run, three
	// upgrades included: §5.7 found the interruption "too short to
	// affect the tail latency of the schbench operations".
	P50 time.Duration
	P99 time.Duration
}

// UpgradeResult reproduces §5.7: live upgrade of the WFQ scheduler under
// schbench load, measuring the service blackout on the one-socket and
// two-socket machines.
type UpgradeResult struct {
	Rows []UpgradeRow
}

// Name implements the experiment naming convention.
func (r *UpgradeResult) Name() string { return "upgrade" }

func (r *UpgradeResult) String() string {
	t := stats.NewTable("Machine", "Workers/msg", "Blackout", "Go swap (wall)", "Deferred calls", "schbench p50", "schbench p99")
	for _, row := range r.Rows {
		t.Row(row.Machine, row.Workers, row.Blackout, row.WallSwap, row.Deferred,
			row.P50, row.P99)
	}
	return "Live upgrade (§5.7): WFQ→WFQ' under schbench; blackout is the simulated quiesce window\n" + t.String()
}

// Upgrade measures the blackout for the paper's three configurations.
func Upgrade(o Options) *UpgradeResult {
	res := &UpgradeResult{}
	configs := []struct {
		m       kernel.Machine
		workers int
	}{
		{kernel.Machine8(), 2},
		{kernel.Machine80(), 2},
		{kernel.Machine80(), 40},
	}
	for _, cfg := range configs {
		r := NewRig(cfg.m, KindWFQ)
		var report enokic.UpgradeReport
		upgrades := 0
		// Trigger upgrades periodically during the run; the last report
		// wins (they are deterministic per machine anyway).
		var schedule func()
		schedule = func() {
			r.Adapter.Upgrade(func(env core.Env) core.Scheduler {
				return wfq.New(env, PolicyEnoki)
			}, func(u enokic.UpgradeReport) {
				report = u
				upgrades++
				if upgrades < 3 {
					r.K.Engine().After(50*time.Millisecond, schedule)
				}
			})
		}
		r.K.Engine().After(30*time.Millisecond, schedule)
		sr := workload.RunSchbench(r.K, workload.SchbenchConfig{
			Policy:         PolicyEnoki,
			MessageThreads: 2,
			WorkersPerMsg:  cfg.workers,
			Warmup:         scaleDur(o, time.Second, 20*time.Millisecond),
			Duration:       scaleDur(o, 2*time.Second, 300*time.Millisecond),
		})
		res.Rows = append(res.Rows, UpgradeRow{
			Machine:  cfg.m.Name,
			Workers:  cfg.workers,
			Blackout: report.Blackout,
			WallSwap: report.WallSwap,
			Deferred: report.DeferredDelivered,
			P50:      sr.P50,
			P99:      sr.P99,
		})
	}
	return res
}
