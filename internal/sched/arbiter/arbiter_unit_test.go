package arbiter

import (
	"testing"

	"enoki/internal/core"
	"enoki/internal/schedtest"
)

// unitRig wires one registered process with two activations and a 2-core
// grant on a 4-cpu machine (cores 1-3 managed).
func unitRig(t *testing.T) (*Sched, *schedtest.Env) {
	t.Helper()
	env := schedtest.NewEnv(4)
	s := New(env, 1, []int{1, 2, 3})
	s.RegisterQueue(core.NewHintQueue(8))
	s.RegisterReverseQueue(core.NewRevQueue(8))
	s.TaskNew(10, 0, false, nil, nil)
	s.TaskNew(11, 0, false, nil, nil)
	s.ParseHint(RegisterActivation{ProcID: 7, PID: 10})
	s.ParseHint(RegisterActivation{ProcID: 7, PID: 11})
	s.ParseHint(CoreRequest{ProcID: 7, Cores: 2})
	if s.GetPolicy() != 1 {
		t.Fatal("policy")
	}
	return s, env
}

func TestUnitPickServesQueuedActivation(t *testing.T) {
	s, _ := unitRig(t)
	c := s.SelectTaskRQ(10, 0, true)
	s.TaskWakeup(10, 0, true, 0, c, schedtest.Tok(10, c, 1))
	got := s.PickNextTask(c, nil, 0)
	if got == nil || got.PID() != 10 {
		t.Fatalf("pick = %v", got)
	}
	if s.PickNextTask(c, nil, 0) != nil {
		t.Fatal("second pick should be empty")
	}
}

func TestUnitPickSkipsHomeBoundActivation(t *testing.T) {
	s, env := unitRig(t)
	// Activation queued on the unmanaged core though it could be bound
	// to a granted one: pick on core 0 must skip it and nudge its home.
	s.TaskWakeup(10, 0, true, 0, 0, schedtest.Tok(10, 0, 1))
	if got := s.PickNextTask(0, nil, 0); got != nil {
		t.Fatalf("picked a home-bound activation on the shared core: %v", got)
	}
	if len(env.Rescheds) == 0 {
		t.Fatal("home core not nudged")
	}
	// From the nudged core, balance pulls it.
	home := env.Rescheds[0]
	pid, ok := s.Balance(home)
	if !ok || pid != 10 {
		t.Fatalf("balance(%d) = %d,%v", home, pid, ok)
	}
}

func TestUnitPickRunsUngrantedWork(t *testing.T) {
	env := schedtest.NewEnv(4)
	s := New(env, 1, []int{1, 2, 3})
	// Unregistered activation (no proc): runs wherever it is queued.
	s.TaskNew(20, 0, true, nil, schedtest.Tok(20, 0, 1))
	if got := s.PickNextTask(0, nil, 0); got == nil || got.PID() != 20 {
		t.Fatalf("ungranted work not served: %v", got)
	}
}

func TestUnitRequeueAndTick(t *testing.T) {
	s, env := unitRig(t)
	c := s.SelectTaskRQ(10, 0, true)
	s.TaskWakeup(10, 0, true, 0, c, schedtest.Tok(10, c, 1))
	s.PickNextTask(c, nil, 0)
	s.TaskPreempt(10, 0, c, true, schedtest.Tok(10, c, 2))
	if got := s.PickNextTask(c, nil, 0); got == nil || got.Gen() != 2 {
		t.Fatalf("preempt requeue = %v", got)
	}
	s.TaskYield(10, 0, c, schedtest.Tok(10, c, 3))
	if got := s.PickNextTask(c, nil, 0); got == nil || got.Gen() != 3 {
		t.Fatalf("yield requeue = %v", got)
	}
	// Tick on the right core with nothing waiting: quiet.
	env.Rescheds = nil
	s.TaskTick(c, false, 10, 0)
	if len(env.Rescheds) != 0 {
		t.Fatal("tick resched without cause")
	}
	// Tick on a foreign core: eviction requested.
	s.TaskTick(0, false, 10, 0)
	if len(env.Rescheds) == 0 {
		t.Fatal("misplaced activation not evicted")
	}
}

func TestUnitPntErrAndMigrate(t *testing.T) {
	s, _ := unitRig(t)
	c := s.SelectTaskRQ(10, 0, true)
	s.TaskWakeup(10, 0, true, 0, c, schedtest.Tok(10, c, 1))
	got := s.PickNextTask(c, nil, 0)
	s.PntErr(c, 10, core.PickStale, got)
	if s.PickNextTask(c, nil, 0) != got {
		t.Fatal("pnt_err token lost")
	}
	// Requeue (preempt) so the module holds a token again, then migrate.
	held := schedtest.Tok(10, c, 2)
	s.TaskPreempt(10, 0, c, true, held)
	old := s.MigrateTaskRQ(10, 2, schedtest.Tok(10, 2, 3))
	if old != held {
		t.Fatalf("migrate old = %v", old)
	}
	if picked := s.PickNextTask(2, nil, 0); picked == nil || picked.Gen() != 3 {
		t.Fatalf("migrated pick = %v", picked)
	}
}

func TestUnitBalanceErrUnbinds(t *testing.T) {
	s, env := unitRig(t)
	s.TaskWakeup(10, 0, true, 0, 0, schedtest.Tok(10, 0, 1))
	_ = s.PickNextTask(0, nil, 0) // nudges + binds pid 10 to its home
	home := env.Rescheds[0]
	pid, ok := s.Balance(home)
	if !ok {
		t.Fatal("no balance decision")
	}
	s.BalanceErr(home, pid, nil)
	// After the failed move the binding must clear so balance can retry
	// (possibly binding a different core next pass).
	if pid2, ok2 := s.Balance(home); !ok2 || pid2 != pid {
		t.Fatalf("retry balance = %d,%v", pid2, ok2)
	}
}

func TestUnitDeadAndDepartedRelease(t *testing.T) {
	s, _ := unitRig(t)
	c := s.SelectTaskRQ(10, 0, true)
	s.TaskWakeup(10, 0, true, 0, c, schedtest.Tok(10, c, 1))
	s.TaskDead(10)
	if got := s.PickNextTask(c, nil, 0); got != nil {
		t.Fatalf("dead activation still queued: %v", got)
	}
	c2 := s.SelectTaskRQ(11, 0, true)
	s.TaskWakeup(11, 0, true, 0, c2, schedtest.Tok(11, c2, 1))
	dep := s.TaskDeparted(11, c2)
	if dep == nil || dep.PID() != 11 {
		t.Fatalf("departed = %v", dep)
	}
	if s.TaskDeparted(99, 0) != nil {
		t.Fatal("unknown departed")
	}
}

func TestUnitUnregisterQueues(t *testing.T) {
	env := schedtest.NewEnv(2)
	s := New(env, 1, []int{1})
	q := core.NewHintQueue(4)
	rq := core.NewRevQueue(4)
	s.RegisterQueue(q)
	s.RegisterReverseQueue(rq)
	if s.UnregisterQueue(1) != q || s.UnregisterRevQueue(2) != rq {
		t.Fatal("unregister returned wrong queues")
	}
	s.EnterQueue(1, 1) // detached: must not panic
}
