package core

import "enoki/internal/ringbuf"

// HintQueue is a user-to-kernel hint ring (§3.3). Userspace pushes
// scheduler-defined hint values; the module drains them when enter_queue
// fires. Capacity is fixed at creation; overflow drops, as shared-memory
// queues do.
type HintQueue struct {
	ring *ringbuf.Buffer[Hint]
}

// NewHintQueue creates a hint queue with the given capacity.
func NewHintQueue(capacity int) *HintQueue {
	return &HintQueue{ring: ringbuf.New[Hint](capacity)}
}

// Push enqueues a hint, reporting false on overflow.
func (q *HintQueue) Push(h Hint) bool { return q.ring.Push(h) }

// Pop dequeues the oldest hint.
func (q *HintQueue) Pop() (Hint, bool) { return q.ring.Pop() }

// Drain removes and returns all queued hints.
func (q *HintQueue) Drain() []Hint { return q.ring.Drain() }

// Len returns the number of queued hints.
func (q *HintQueue) Len() int { return q.ring.Len() }

// Dropped returns how many hints overflowed.
func (q *HintQueue) Dropped() uint64 { return q.ring.Dropped() }

// RevQueue is a kernel-to-user message ring (§3.3): the module pushes
// scheduler-defined messages (e.g. Arachne core-reclamation requests) and
// userspace drains them.
type RevQueue struct {
	ring *ringbuf.Buffer[RevMessage]
	// OnPush, when set by the user side, observes each pushed message.
	// The simulated "shared memory poll" workloads use it to react
	// without busy-polling the simulation.
	OnPush func(RevMessage)
	// Deferrer, when set (the framework sets it), postpones OnPush
	// delivery out of the kernel call that pushed — userspace only sees
	// shared memory after the scheduler call returns, so a synchronous
	// callback re-entering the scheduler would deadlock its lock, exactly
	// as it would in the real kernel.
	Deferrer func(func())
}

// NewRevQueue creates a reverse queue with the given capacity.
func NewRevQueue(capacity int) *RevQueue {
	return &RevQueue{ring: ringbuf.New[RevMessage](capacity)}
}

// Push enqueues a message from the kernel side.
func (q *RevQueue) Push(m RevMessage) bool {
	ok := q.ring.Push(m)
	if ok && q.OnPush != nil {
		if q.Deferrer != nil {
			q.Deferrer(func() {
				if q.OnPush != nil {
					q.OnPush(m)
				}
			})
		} else {
			q.OnPush(m)
		}
	}
	return ok
}

// Pop dequeues the oldest message on the user side.
func (q *RevQueue) Pop() (RevMessage, bool) { return q.ring.Pop() }

// Drain removes and returns all queued messages.
func (q *RevQueue) Drain() []RevMessage { return q.ring.Drain() }

// Len returns the number of queued messages.
func (q *RevQueue) Len() int { return q.ring.Len() }
