package enoki

import (
	"time"

	"enoki/internal/cluster"
)

// Cluster is a simulated fleet: N machines — each a full sharded kernel
// stack — plus a control-plane job scheduler, all advancing under one
// deterministic clock (see internal/cluster). Construct one with
// NewCluster, submit jobs, run:
//
//	cl := enoki.NewCluster(
//	        enoki.WithMachines(100),
//	        enoki.WithPlacer("leastloaded"),
//	)
//	defer cl.Close()
//	for i := 0; i < 1000; i++ {
//	        cl.Submit(enoki.JobSpec{Cycles: 4})
//	}
//	cl.RunUntilIdle()
//	fmt.Println(cl.Stats().Done)
//
// Serial and parallel fleet drives are byte-identical, machine failures
// included — the cluster-scale version of the sharded determinism claim.
type Cluster = cluster.Cluster

// JobSpec describes one cluster job's work.
type JobSpec = cluster.JobSpec

// Job is the control plane's record of a submitted job.
type Job = cluster.Job

// JobState is a job's lifecycle stage.
type JobState = cluster.JobState

// Job lifecycle states.
const (
	JobPending  = cluster.JobPending
	JobStarting = cluster.JobStarting
	JobRunning  = cluster.JobRunning
	JobStopping = cluster.JobStopping
	JobDone     = cluster.JobDone
)

// ClusterStats is the fleet-wide roll-up Cluster.Stats returns.
type ClusterStats = cluster.Stats

// ClusterMachine is one machine agent of a Cluster.
type ClusterMachine = cluster.Machine

// MachineView is the control plane's model of one machine.
type MachineView = cluster.MachineView

// Placer is the cluster placement policy interface; PlacerByName maps the
// built-in names ("roundrobin", "leastloaded", "pack").
type Placer = cluster.Placer

// PlacerByName returns a fresh built-in placer, or nil for unknown names.
func PlacerByName(name string) Placer { return cluster.PlacerByName(name) }

// ErrClusterClosed is the sentinel wrapped by Cluster.Close on a closed
// cluster.
var ErrClusterClosed = cluster.ErrClosed

// ClusterOption configures NewCluster.
type ClusterOption func(*cluster.Config)

// WithMachines sets the fleet size (required, ≥ 1).
func WithMachines(n int) ClusterOption {
	return func(c *cluster.Config) { c.Machines = n }
}

// WithMachineTemplate sets the per-machine topology (default Machine8);
// every machine shards by NUMA node like a standalone WithShards System.
func WithMachineTemplate(m Machine) ClusterOption {
	return func(c *cluster.Config) { c.Machine = m }
}

// WithNetLatency sets the minimum cross-machine message latency — the fleet
// epoch length (default 50µs).
func WithNetLatency(d time.Duration) ClusterOption {
	return func(c *cluster.Config) { c.NetLatency = d }
}

// WithReconcileInterval sets the control plane's reconcile tick (default
// 200µs).
func WithReconcileInterval(d time.Duration) ClusterOption {
	return func(c *cluster.Config) { c.ReconcileEvery = d }
}

// WithDetectDelay sets the failure detector's bound: a machine that dies at
// T is declared dead at T+d (default 500µs).
func WithDetectDelay(d time.Duration) ClusterOption {
	return func(c *cluster.Config) { c.DetectDelay = d }
}

// WithClusterPlacer sets the placement policy instance (default
// LeastLoaded). For the built-ins by name, WithPlacer is shorter.
func WithClusterPlacer(p Placer) ClusterOption {
	return func(c *cluster.Config) { c.Placer = p }
}

// WithPlacer selects a built-in placement policy by name: "roundrobin",
// "leastloaded", or "pack". Unknown names panic.
func WithPlacer(name string) ClusterOption {
	p := cluster.PlacerByName(name)
	if p == nil {
		panic("enoki: unknown placer " + name)
	}
	return func(c *cluster.Config) { c.Placer = p }
}

// WithRebalanceSpread enables load rebalancing: when the assigned-job
// spread between the most and least loaded machines exceeds n, one job per
// reconcile tick migrates (checkpointed, cooperative). Zero disables.
func WithRebalanceSpread(n int) ClusterOption {
	return func(c *cluster.Config) { c.RebalanceSpread = n }
}

// WithJobPolicy sets the scheduler class id jobs spawn into (default 0,
// where the default setup registers CFS).
func WithJobPolicy(policy int) ClusterOption {
	return func(c *cluster.Config) { c.Policy = policy }
}

// WithFleetParallel drives the fleet on one worker goroutine per machine.
// Serial and parallel drives are byte-identical; parallel only changes
// wall-clock speed.
func WithFleetParallel(on bool) ClusterOption {
	return func(c *cluster.Config) { c.Parallel = on }
}

// WithMachineSetup replaces the default per-shard CFS registration: setup
// runs once per machine at construction and must register a scheduler
// class under the job policy on every shard. Recorders, tracers, and Enoki
// modules attach here.
func WithMachineSetup(setup func(machine int, sk *ShardedKernel)) ClusterOption {
	return func(c *cluster.Config) { c.Setup = setup }
}

// WithMachineModules is WithMachineSetup's upgradable variant: setup must
// register a scheduler class under the job policy on every shard through
// the enokic loader and return the per-shard adapters. Machines built this
// way are rollout targets — Cluster.Rollout ships them new module
// generations through enokic's transactional upgrade path.
func WithMachineModules(setup func(machine int, sk *ShardedKernel) []*Adapter) ClusterOption {
	return func(c *cluster.Config) { c.SetupModules = setup }
}

// NewCluster assembles a simulated fleet. With only WithMachines(n) it runs
// n 8-core machines with per-shard CFS, least-loaded placement, and the
// default network and control-loop latencies.
func NewCluster(opts ...ClusterOption) *Cluster {
	var cfg cluster.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return cluster.New(cfg)
}

// Rollout is one in-flight (or resolved) fleet rollout: the control plane
// upgrades a named scheduler-module generation across the cluster in canary
// waves, gating each widening on per-machine SLO verdicts and rolling every
// upgraded machine back if a wave fails. Start one with Cluster.Rollout
// between runs:
//
//	ro, err := cl.Rollout("v2", func(machine int, env enoki.Env) enoki.Scheduler {
//	        return enoki.NewWFQScheduler(env, policy)
//	}, enoki.WithCanaryFraction(0.05))
//	cl.Run(20 * time.Millisecond)
//	report := ro.Report() // replayable; identical serial vs parallel
type Rollout = cluster.Rollout

// RolloutConfig parameterizes Cluster.StartRollout; Cluster.Rollout builds
// one from a version, a factory, and RolloutOptions.
type RolloutConfig = cluster.RolloutConfig

// RolloutOption adjusts one rollout's canary sizing, soak window, or SLO
// verdict rules.
type RolloutOption = cluster.RolloutOption

// RolloutReport is the replayable record of one rollout: identical across
// serial and parallel drives of the same cluster history.
type RolloutReport = cluster.RolloutReport

// WaveReport records one rollout wave's membership and casualties.
type WaveReport = cluster.WaveReport

// MachineVerdict is the per-machine SLO verdict gating a rollout wave.
type MachineVerdict = cluster.MachineVerdict

// SlotState is one machine's stage in the rollout state machine; SlotStatus
// pairs it with the machine id (Rollout.Slots).
type SlotState = cluster.SlotState

// SlotStatus is one rollout target's current state.
type SlotStatus = cluster.SlotStatus

// Rollout slot states.
const (
	SlotPending     = cluster.SlotPending
	SlotUpgrading   = cluster.SlotUpgrading
	SlotObserving   = cluster.SlotObserving
	SlotHealthy     = cluster.SlotHealthy
	SlotFailed      = cluster.SlotFailed
	SlotRollingBack = cluster.SlotRollingBack
	SlotRolledBack  = cluster.SlotRolledBack
	SlotDead        = cluster.SlotDead
)

// Rollout errors.
var (
	// ErrRolloutActive: only one rollout may be in flight per cluster.
	ErrRolloutActive = cluster.ErrRolloutActive
	// ErrNoModules: no alive machine exposes upgradable modules — build the
	// cluster with WithMachineModules to make machines rollout targets.
	ErrNoModules = cluster.ErrNoModules
)

// WithCanaryFraction sets the first-wave fraction of target machines
// (default 0.02, always at least one machine).
func WithCanaryFraction(f float64) RolloutOption {
	return func(c *RolloutConfig) { c.Canary = f }
}

// WithWidenFactor sets the wave-width multiplier applied after each healthy
// wave (default 4).
func WithWidenFactor(n int) RolloutOption {
	return func(c *RolloutConfig) { c.Widen = n }
}

// WithObserveWindow sets the soak window between a wave's last upgrade ack
// and its health probes (default 2ms).
func WithObserveWindow(d time.Duration) RolloutOption {
	return func(c *RolloutConfig) { c.Observe = d }
}

// WithMaxFaults sets the per-machine budget of fault-killed modules found
// at probe time (default 0: any kill fails the verdict).
func WithMaxFaults(n int) RolloutOption {
	return func(c *RolloutConfig) { c.MaxFaults = n }
}

// WithMinCompletion sets the floor on done/assigned over the soak window
// for machines that had jobs assigned at soak start (default off).
func WithMinCompletion(f float64) RolloutOption {
	return func(c *RolloutConfig) { c.MinCompletion = f }
}

// WithMaxStartP99 sets the ceiling on a machine's start-op ack p99 during
// the soak (default 5ms).
func WithMaxStartP99(d time.Duration) RolloutOption {
	return func(c *RolloutConfig) { c.MaxStartP99 = d }
}
