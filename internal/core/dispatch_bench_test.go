package core_test

import (
	"testing"

	"enoki/internal/bench"
)

// The benchmark bodies live in internal/bench so `enokibench -benchjson`
// can run the same code and track ns/op + allocs/op in BENCH_hotpath.json.

// BenchmarkDispatch measures libEnoki's processing function: the per-message
// parse + call + reply write that happens on every framework crossing.
func BenchmarkDispatch(b *testing.B) { bench.Dispatch(b) }

// BenchmarkDispatchWakeup includes a token materialisation (the replay
// path).
func BenchmarkDispatchWakeup(b *testing.B) { bench.DispatchWakeup(b) }

// BenchmarkDispatchAll drives every dispatchable message Kind through
// Dispatch each iteration.
func BenchmarkDispatchAll(b *testing.B) { bench.DispatchAll(b) }

// BenchmarkDispatchTraced is the fully instrumented crossing: panic
// containment plus a live tracer sink recording every message.
func BenchmarkDispatchTraced(b *testing.B) { bench.DispatchTraced(b) }
