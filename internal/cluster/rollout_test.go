package cluster

import (
	"errors"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/fifo"
	"enoki/internal/sched/wfq"
	"enoki/internal/schedtest"
)

// rolloutPolicy is the upgradable class rollout tests run jobs in; class 0
// stays CFS as the fault-isolation fallback.
const rolloutPolicy = 1

// moduleSetup builds a SetupModules hook: CFS at class 0 plus an enokic WFQ
// module at rolloutPolicy on every shard. tweak, when non-nil, adjusts the
// per-machine framework config (tests use it to stretch one machine's
// upgrade blackout).
func moduleSetup(tweak func(machine int, cfg *enokic.Config)) func(int, *kernel.ShardedKernel) []*enokic.Adapter {
	return func(machine int, sk *kernel.ShardedKernel) []*enokic.Adapter {
		cfg := enokic.DefaultConfig()
		if tweak != nil {
			tweak(machine, &cfg)
		}
		ads := make([]*enokic.Adapter, sk.NumShards())
		for s := 0; s < sk.NumShards(); s++ {
			k := sk.ShardKernel(s)
			k.RegisterClass(0, kernel.NewCFS(k))
			ads[s] = enokic.Load(k, rolloutPolicy, cfg, func(env core.Env) core.Scheduler {
				return wfq.New(env, rolloutPolicy)
			})
		}
		return ads
	}
}

func fifoRolloutFactory(_ int, env core.Env) core.Scheduler {
	return fifo.New(env, rolloutPolicy)
}

// assertFleetVersion checks every upgradable shard of every alive machine
// serves the given generation. Call between runs.
func assertFleetVersion(t *testing.T, c *Cluster, version string) {
	t.Helper()
	for i := 0; i < c.NumMachines(); i++ {
		if !c.Fleet().Alive(c.Machine(i).node) {
			continue
		}
		for s, ad := range c.Machine(i).Adapters() {
			if ad == nil || ad.Killed() {
				continue
			}
			if got := ad.Version(); got != version {
				t.Fatalf("machine %d shard %d serves %q, want %q", i, s, got, version)
			}
		}
	}
}

// TestRolloutConvergesFleetWide drives a clean canary rollout across eight
// busy machines: exponentially widening waves, every verdict healthy, every
// shard on the new generation at the end.
func TestRolloutConvergesFleetWide(t *testing.T) {
	c := New(Config{Machines: 8, Policy: rolloutPolicy, SetupModules: moduleSetup(nil)})
	defer c.Close()
	for i := 0; i < 32; i++ {
		c.Submit(JobSpec{Cycles: 30, Run: 100 * time.Microsecond, Sleep: 100 * time.Microsecond})
	}
	r, err := c.Rollout("v1", fifoRolloutFactory)
	if err != nil {
		t.Fatalf("Rollout: %v", err)
	}
	c.RunUntilIdle()
	if !r.Done() || r.Halted() {
		t.Fatalf("rollout done=%v halted=%v, want done and not halted", r.Done(), r.Halted())
	}
	rep := r.Report()
	if !rep.Completed || rep.Upgraded != 8 || rep.RolledBack != 0 || rep.Dead != 0 {
		t.Fatalf("report outcome: %+v", rep)
	}
	if rep.Previous != enokic.InitialVersion || rep.Version != "v1" {
		t.Fatalf("lineage %q -> %q, want v0 -> v1", rep.Previous, rep.Version)
	}
	// 8 targets, canary 1, widen 4: waves of 1, 4, 3.
	if rep.Canary != 1 || len(rep.Waves) != 3 {
		t.Fatalf("canary %d, %d waves (%v), want 1 and 3", rep.Canary, len(rep.Waves), rep.Waves)
	}
	if len(rep.Waves[0].Machines) != 1 || len(rep.Waves[1].Machines) != 4 || len(rep.Waves[2].Machines) != 3 {
		t.Fatalf("wave widths %v, want 1/4/3", rep.Waves)
	}
	if len(rep.Verdicts) != 8 {
		t.Fatalf("%d verdicts, want 8", len(rep.Verdicts))
	}
	for _, v := range rep.Verdicts {
		if !v.Healthy || v.ShardsOnTarget != v.Shards || v.Faults != 0 {
			t.Fatalf("unhealthy verdict in a clean rollout: %+v", v)
		}
	}
	assertFleetVersion(t, c, "v1")
	st := c.Stats()
	if st.Done != 32 {
		t.Fatalf("jobs done %d/32 — rollout lost work", st.Done)
	}
}

// TestRolloutHaltsAndRollsBackFleetWide seeds a new module that panics in
// init on machines >= 2: wave 0 (machine 0) and machine 1 commit cleanly,
// wave 1 trips the transactional rollback on machines 2-4, the rollout
// halts, and every machine — including the already-healthy ones — ends back
// on the previous generation.
func TestRolloutHaltsAndRollsBackFleetWide(t *testing.T) {
	c := New(Config{Machines: 8, Policy: rolloutPolicy, SetupModules: moduleSetup(nil)})
	defer c.Close()
	for i := 0; i < 32; i++ {
		c.Submit(JobSpec{Cycles: 30, Run: 100 * time.Microsecond, Sleep: 100 * time.Microsecond})
	}
	faultyAbove := func(machine int, env core.Env) core.Scheduler {
		s := fifo.New(env, rolloutPolicy)
		if machine >= 2 {
			return &schedtest.Injector{Scheduler: s, PanicInInit: true}
		}
		return s
	}
	r, err := c.Rollout("v1", faultyAbove)
	if err != nil {
		t.Fatalf("Rollout: %v", err)
	}
	c.RunUntilIdle()
	if !r.Done() || !r.Halted() {
		t.Fatalf("rollout done=%v halted=%v, want done and halted", r.Done(), r.Halted())
	}
	rep := r.Report()
	if rep.Completed || rep.HaltedWave != 1 {
		t.Fatalf("halt accounting: completed=%v haltedWave=%d, want false/1", rep.Completed, rep.HaltedWave)
	}
	// Machines 0 (wave 0) and 1 committed and rolled back; 2-4 aborted
	// transactionally and still get the conditional rollback op. Machines
	// 5-7 never left Pending.
	if rep.Upgraded != 0 || rep.RolledBack != 5 || rep.RollbackErrs != 0 {
		t.Fatalf("rollback accounting: %+v", rep)
	}
	failedWave := rep.Waves[1].Failed
	if len(failedWave) != 3 {
		t.Fatalf("wave 1 failures %v, want machines 2-4", failedWave)
	}
	sawRolledBack := false
	for _, v := range rep.Verdicts {
		if v.Machine >= 2 && v.Wave == 1 {
			if v.Healthy || v.UpgradeRolledBack == 0 {
				t.Fatalf("faulty machine verdict not failing on rollback: %+v", v)
			}
			sawRolledBack = true
		}
	}
	if !sawRolledBack {
		t.Fatal("no verdict recorded the transactional rollback")
	}
	assertFleetVersion(t, c, enokic.InitialVersion)
	if st := c.Stats(); st.Done != 32 {
		t.Fatalf("jobs done %d/32 — halt+rollback lost work", st.Done)
	}
}

// TestRolloutCanaryDeathMidUpgradeResolves is the regression for the
// queued-upgrade death path at fleet scope: the canary machine is killed
// while its upgrade blackout is still open, so its ack never arrives. The
// failure detector must resolve the slot (the machine-side death path is
// done(ErrModuleKilled); the control side accounts it as a failed shard)
// and the wave must proceed to a halting verdict instead of waiting
// forever.
func TestRolloutCanaryDeathMidUpgradeResolves(t *testing.T) {
	// Stretch the canary's blackout to 5ms so the 1ms kill lands inside it.
	slowCanary := func(machine int, cfg *enokic.Config) {
		if machine == 0 {
			cfg.UpgradeBase = 5 * time.Millisecond
		}
	}
	c := New(Config{Machines: 4, Policy: rolloutPolicy, SetupModules: moduleSetup(slowCanary)})
	defer c.Close()
	for i := 0; i < 12; i++ {
		c.Submit(JobSpec{Cycles: 10, Run: 100 * time.Microsecond, Sleep: 100 * time.Microsecond})
	}
	r, err := c.Rollout("v1", fifoRolloutFactory)
	if err != nil {
		t.Fatalf("Rollout: %v", err)
	}
	c.FailMachine(0, time.Millisecond)
	c.RunUntilIdle()
	if !r.Done() {
		t.Fatal("rollout never resolved after the canary died mid-upgrade")
	}
	rep := r.Report()
	if !rep.Halted || rep.HaltedWave != 0 || rep.Dead != 1 {
		t.Fatalf("death outcome: %+v", rep)
	}
	v := rep.Verdicts[0]
	if v.Machine != 0 || !v.Died || v.Healthy || v.UpgradeErrs == 0 {
		t.Fatalf("canary verdict did not record the death: %+v", v)
	}
	// The surviving fleet never upgraded and keeps serving the old
	// generation; the stranded jobs restarted elsewhere and finished.
	assertFleetVersion(t, c, enokic.InitialVersion)
	if st := c.Stats(); st.Done != 12 {
		t.Fatalf("jobs done %d/12 after failover", st.Done)
	}
}

// TestRolloutNoDeathResolveHangs pins the seeded-bug mode the chaos suite
// hunts: with the death resolution disabled, the wave barrier never clears
// and the rollout is still unresolved long after the detector fired.
func TestRolloutNoDeathResolveHangs(t *testing.T) {
	slowCanary := func(machine int, cfg *enokic.Config) {
		if machine == 0 {
			cfg.UpgradeBase = 5 * time.Millisecond
		}
	}
	c := New(Config{Machines: 4, Policy: rolloutPolicy, SetupModules: moduleSetup(slowCanary)})
	defer c.Close()
	r, err := c.StartRollout(RolloutConfig{
		Version: "v1", Factory: fifoRolloutFactory, NoDeathResolve: true,
	})
	if err != nil {
		t.Fatalf("StartRollout: %v", err)
	}
	c.FailMachine(0, time.Millisecond)
	c.Run(100 * time.Millisecond)
	if r.Done() {
		t.Fatal("NoDeathResolve rollout resolved — the seeded bug is gone and the chaos suite has nothing to catch")
	}
}

// TestRolloutErrors pins the typed refusals.
func TestRolloutErrors(t *testing.T) {
	plain := New(Config{Machines: 2})
	defer plain.Close()
	if _, err := plain.Rollout("v1", fifoRolloutFactory); !errors.Is(err, ErrNoModules) {
		t.Fatalf("rollout without SetupModules = %v, want ErrNoModules", err)
	}

	c := New(Config{Machines: 2, Policy: rolloutPolicy, SetupModules: moduleSetup(nil)})
	defer c.Close()
	if _, err := c.Rollout("", fifoRolloutFactory); err == nil {
		t.Fatal("empty version accepted")
	}
	if _, err := c.Rollout("v1", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := c.Rollout("v1", fifoRolloutFactory); err != nil {
		t.Fatalf("first rollout refused: %v", err)
	}
	if _, err := c.Rollout("v2", fifoRolloutFactory); !errors.Is(err, ErrRolloutActive) {
		t.Fatalf("second in-flight rollout = %v, want ErrRolloutActive", err)
	}
	c.RunUntilIdle()
	if _, err := c.Rollout("v2", fifoRolloutFactory); err != nil {
		t.Fatalf("rollout after resolution refused: %v", err)
	}
	c.RunUntilIdle()
}

// TestRolloutOptions checks the functional options reach the config.
func TestRolloutOptions(t *testing.T) {
	c := New(Config{Machines: 8, Policy: rolloutPolicy, SetupModules: moduleSetup(nil)})
	defer c.Close()
	r, err := c.Rollout("v1", fifoRolloutFactory,
		func(cfg *RolloutConfig) { cfg.Canary = 0.5 },
		func(cfg *RolloutConfig) { cfg.Widen = 2 },
	)
	if err != nil {
		t.Fatalf("Rollout: %v", err)
	}
	c.RunUntilIdle()
	rep := r.Report()
	// 8 targets at 0.5 canary: waves of 4 then 4.
	if rep.Canary != 4 || len(rep.Waves) != 2 {
		t.Fatalf("canary %d, waves %v, want 4 and 2 waves", rep.Canary, rep.Waves)
	}
}
