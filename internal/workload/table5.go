package workload

import (
	"time"

	"enoki/internal/kernel"
)

// Table5Profiles returns the 36 application benchmarks of Table 5 — the
// nine NAS Parallel Benchmarks and the 27 Phoronix Multicore selections —
// as scheduling-footprint profiles. PaperCFS anchors each displayed metric
// to the paper's CFS column; relative performance between schedulers is
// measured, not copied (see DESIGN.md).
//
// Footprint assignment follows §5.3's own analysis: the NAS benchmarks
// "start one task per core" (bulk-synchronous barriers); the balancing
// mechanism "most affected the Arrayfire, Cassandra, and Zstandard
// compression benchmarks" (queue-imbalanced pipelines and fork-joins);
// miner/inference workloads are embarrassingly parallel.
func Table5Profiles() []AppProfile {
	ms := time.Millisecond
	us := time.Microsecond

	nas := func(name string, paperCFS float64, phases int, work time.Duration, jitter float64) AppProfile {
		return AppProfile{
			Name: name, Suite: "NAS", Metric: "total Mops/s", PaperCFS: paperCFS,
			Kind: AppBarrier, Threads: 8, Phases: phases, PhaseWork: work, Jitter: jitter,
		}
	}
	barrier := func(name, metric string, paperCFS float64, lower bool, threads, phases int, work time.Duration, jitter float64) AppProfile {
		return AppProfile{
			Name: name, Suite: "Phoronix", Metric: metric, PaperCFS: paperCFS, LowerIsBetter: lower,
			Kind: AppBarrier, Threads: threads, Phases: phases, PhaseWork: work, Jitter: jitter,
		}
	}
	forkjoin := func(name, metric string, paperCFS float64, lower bool, threads, batches, chunks int, work time.Duration, cvar float64) AppProfile {
		return AppProfile{
			Name: name, Suite: "Phoronix", Metric: metric, PaperCFS: paperCFS, LowerIsBetter: lower,
			Kind: AppForkJoin, Threads: threads, Batches: batches, Chunks: chunks,
			ChunkWork: work, ChunkVar: cvar,
		}
	}
	pipeline := func(name, metric string, paperCFS float64, lower bool, prod, cons, items int, pwork, cwork time.Duration, cvar float64) AppProfile {
		return AppProfile{
			Name: name, Suite: "Phoronix", Metric: metric, PaperCFS: paperCFS, LowerIsBetter: lower,
			Kind: AppPipeline, Producers: prod, Consumers: cons, Items: items,
			ProduceWork: pwork, ConsumeWork: cwork, ConsumeVar: cvar,
		}
	}

	return []AppProfile{
		// NAS Parallel Benchmarks, size C: one task per core, barriers.
		nas("BT", 26669.1, 30, 2*ms, 0.010),
		nas("CG", 4535.8, 36, 1500*us, 0.030),
		nas("EP", 487.9, 16, 3*ms, 0.004),
		nas("FT", 14886.8, 28, 2*ms, 0.020),
		nas("IS", 1297.4, 24, 1200*us, 0.030),
		nas("LU", 30469.4, 40, 1500*us, 0.025),
		nas("MG", 8601.4, 30, 1800*us, 0.018),
		nas("SP", 11797.0, 34, 1700*us, 0.015),
		nas("UA", 73.8, 30, 2*ms, 0.022),

		// Phoronix Multicore.
		forkjoin("Arrayfire, 1 (BLAS CPU)", "GFLOPS", 812.98, false, 8, 12, 26, 300*us, 0.35),
		forkjoin("Arrayfire, 2 (Conj. Gradient)", "ms", 26.72, true, 8, 10, 22, 280*us, 0.40),
		pipeline("Cassandra, 1 (Writes)", "Op/s", 55100, false, 4, 8, 1600, 30*us, 130*us, 0.85),
		forkjoin("ASKAP, 4 (Hogbom Clean)", "Iter/s", 161.46, false, 8, 10, 24, 320*us, 0.25),
		barrier("Cpuminer, 2 (Triple SHA-256)", "kH/s", 51363, false, 8, 20, 1500*us, 0.005),
		barrier("Cpuminer, 3 (Quad SHA-256)", "kH/s", 35667, false, 8, 20, 1500*us, 0.005),
		barrier("Cpuminer, 4 (Myriad-Groestl)", "kH/s", 9499.87, false, 8, 20, 1600*us, 0.006),
		barrier("Cpuminer, 6 (Blake-2 S)", "kH/s", 258100, false, 8, 20, 1400*us, 0.005),
		barrier("Cpuminer, 11 (Skeincoin)", "kH/s", 29400, false, 8, 20, 1500*us, 0.006),
		pipeline("Ffmpeg, 1, 1 (libx264 Live)", "s", 23.98, true, 2, 6, 1400, 40*us, 110*us, 0.45),
		forkjoin("Graphics-Magick, 4 (Resizing)", "Iter/m", 781, false, 8, 12, 30, 250*us, 0.30),
		barrier("OIDN, 1 (RT.hdr 4K)", "Images/s", 0.31, false, 8, 24, 1800*us, 0.015),
		barrier("OIDN, 2 (RT.ldr 4K)", "Images/s", 0.31, false, 8, 24, 1800*us, 0.015),
		barrier("OIDN, 3 (RTLightmap 4K)", "Images/s", 0.15, false, 8, 28, 2*ms, 0.015),
		forkjoin("Rodina, 3 (OpenMP Leukocyte)", "s", 159.32, true, 8, 14, 26, 300*us, 0.28),
		pipeline("Zstd, 2 (3 Long Compression)", "MB/s", 856.1, false, 1, 8, 1400, 25*us, 150*us, 0.90),
		pipeline("Zstd, 4 (8 Long Compression)", "MB/s", 153.1, false, 1, 8, 500, 35*us, 420*us, 0.55),
		forkjoin("AVIFEnc, 4 (6 Lossless)", "s", 14.94, true, 8, 10, 22, 350*us, 0.55),
		pipeline("Libgav1, 1 (Summer 1080p)", "FPS", 262.95, false, 1, 4, 1200, 35*us, 120*us, 0.30),
		pipeline("Libgav1, 2 (Summer 4K)", "FPS", 67.28, false, 1, 6, 900, 45*us, 240*us, 0.35),
		pipeline("Libgav1, 3 (Chimera 1080p)", "FPS", 222.70, false, 1, 4, 1200, 35*us, 130*us, 0.35),
		pipeline("Libgav1, 4 (Chimera 10-bit)", "FPS", 64.10, false, 1, 6, 900, 45*us, 260*us, 0.40),
		barrier("OneDNN, 4, 1 (IP 1D f32)", "ms", 4.26, true, 8, 18, 1200*us, 0.012),
		barrier("OneDNN, 5, 1 (IP 3D f32)", "ms", 9.71, true, 8, 18, 1300*us, 0.014),
		barrier("OneDNN, 7, 1 (RNN f32)", "ms", 4166.31, true, 8, 26, 1600*us, 0.010),
		barrier("OneDNN, 7, 2 (RNN u8s8f32)", "ms", 4166.40, true, 8, 26, 1600*us, 0.010),
		barrier("OneDNN, 7, 3 (RNN bf16)", "ms", 4164.25, true, 8, 26, 1600*us, 0.010),
	}
}

// --- Appendix A.1 functional-equivalence probes ------------------------------

// FairnessProbe runs five equal CPU-bound tasks (the appendix uses ~4.6 s
// of work each) and returns their completion times. With sameCore they are
// pinned together, otherwise free.
func FairnessProbe(k *kernel.Kernel, policy int, sameCore bool, work time.Duration) []time.Duration {
	return completionProbe(k, policy, 5, work, func(i int) []kernel.SpawnOption {
		if sameCore {
			return []kernel.SpawnOption{kernel.WithAffinity(kernel.SingleCPU(0))}
		}
		return nil
	}, nil)
}

// WeightProbe runs five co-located CPU-bound tasks with the last reduced to
// minimum priority and returns the completion times (index 4 is the
// low-priority task).
func WeightProbe(k *kernel.Kernel, policy int, work time.Duration) []time.Duration {
	return completionProbe(k, policy, 5, work, func(i int) []kernel.SpawnOption {
		opts := []kernel.SpawnOption{kernel.WithAffinity(kernel.SingleCPU(0))}
		if i == 4 {
			opts = append(opts, kernel.WithNice(19))
		}
		return opts
	}, nil)
}

// PlacementProbe runs one CPU-bound task per core; when moveOne is set, the
// first task is forced to a different core mid-run. It returns completion
// times (their spread is the appendix's metric).
func PlacementProbe(k *kernel.Kernel, policy int, work time.Duration, moveOne bool) []time.Duration {
	n := k.NumCPUs()
	var mid func([]*kernel.Task)
	if moveOne {
		mid = func(tasks []*kernel.Task) {
			k.Engine().After(work/3, func() {
				if tasks[0].State() != kernel.StateDead {
					k.SetAffinity(tasks[0], kernel.SingleCPU(1))
				}
			})
		}
	}
	return completionProbe(k, policy, n, work, func(i int) []kernel.SpawnOption {
		return nil
	}, mid)
}

// completionProbe spawns n spinners of `work` CPU time each and returns
// their completion times.
func completionProbe(k *kernel.Kernel, policy, n int, work time.Duration,
	opts func(i int) []kernel.SpawnOption, mid func([]*kernel.Task)) []time.Duration {
	times := make([]time.Duration, n)
	var tasks []*kernel.Task
	for i := 0; i < n; i++ {
		i := i
		remaining := work
		behavior := kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			if remaining <= 0 {
				times[i] = time.Duration(k.Now())
				return kernel.Action{Op: kernel.OpExit}
			}
			chunk := time.Millisecond
			if chunk > remaining {
				chunk = remaining
			}
			remaining -= chunk
			return kernel.Action{Run: chunk, Op: kernel.OpContinue}
		})
		tasks = append(tasks, k.Spawn("probe", policy, behavior, opts(i)...))
	}
	if mid != nil {
		mid(tasks)
	}
	k.RunFor(time.Duration(n)*work + 10*time.Second)
	return times
}
