// The two shipped example programs. Both also exist as full Go modules in
// the repo (internal/sched/fifo and the dual-queue pattern from the
// sched_ext snippet), which is what makes the crossing-cost ablation an
// apples-to-apples comparison: same policy, different tier.
package vpol

// FIFOSource is global FIFO: one shared queue, strict arrival order,
// run-to-block. The bytecode twin of internal/sched/fifo.
const FIFOSource = `
; global FIFO: one shared queue, arrival order, run-to-block
queues shared=1 local=0
slice 0

enqueue:
	enq shared, 0
	ret

pick:
	trypop shared, 0
	ret
`

// DualQueueSource is the priority dual-queue policy from the sched_ext
// dual-queue snippet (SNIPPETS.md §1): high-priority (negative-nice) tasks
// land in an express queue drained before the normal one, with a 500µs
// round-robin slice so the normal queue cannot be starved forever by a
// blocked-express workload's wake bursts.
const DualQueueSource = `
; priority dual queue (sched_ext scx dual-DSQ pattern):
; nice < 0 -> express queue 0, drained before normal queue 1
queues shared=2 local=0
slice 500us

enqueue:
	ldf r2, nice
	jltz r2, express
	enq shared, 1
	ret
express:
	enq shared, 0
	ret

pick:
	trypop shared, 0
	trypop shared, 1
	ret
`

// FIFOProgram assembles FIFOSource.
func FIFOProgram() *Program { return MustAssemble(FIFOSource) }

// DualQueueProgram assembles DualQueueSource.
func DualQueueProgram() *Program { return MustAssemble(DualQueueSource) }
