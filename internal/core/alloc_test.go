package core_test

import (
	"testing"
	"time"

	"enoki/internal/bench"
	"enoki/internal/core"
	"enoki/internal/trace"
)

// nopSched isolates Dispatch's own cost from module work.
type nopSched struct{ core.BaseScheduler }

func (nopSched) GetPolicy() int { return 1 }
func (nopSched) PickNextTask(cpu int, curr *core.Schedulable, rt time.Duration) *core.Schedulable {
	return nil
}
func (nopSched) TaskNew(pid int, rt time.Duration, r bool, allowed []int, s *core.Schedulable) {}
func (nopSched) TaskWakeup(pid int, rt time.Duration, d bool, l, w int, s *core.Schedulable)   {}
func (nopSched) TaskPreempt(pid int, rt time.Duration, cpu int, preempted bool, s *core.Schedulable) {
}
func (nopSched) TaskYield(pid int, rt time.Duration, cpu int, s *core.Schedulable)    {}
func (nopSched) TaskDeparted(pid, cpu int) *core.Schedulable                          { return nil }
func (nopSched) SelectTaskRQ(pid, prev int, wakeup bool) int                          { return prev }
func (nopSched) MigrateTaskRQ(pid, newCPU int, s *core.Schedulable) *core.Schedulable { return s }

// TestDispatchAllKindsZeroAlloc pins the zero-allocation invariant of the
// framework crossing: every dispatchable message Kind — including the
// replay-path token materialisation, which uses the message's inline
// scratch slot — must not allocate.
func TestDispatchAllKindsZeroAlloc(t *testing.T) {
	s := nopSched{}
	for _, m := range bench.DispatchAllMessages() {
		m := m
		avg := testing.AllocsPerRun(200, func() {
			m.RetSched = nil
			core.Dispatch(s, m)
		})
		if avg != 0 {
			t.Errorf("Dispatch(%v): %v allocs/op, want 0", m.Kind, avg)
		}
	}
}

// TestSafeDispatchZeroAlloc pins the cost of panic containment: the
// recovery wrapper every live crossing now goes through must not allocate
// on the non-panicking path (its defer is open-coded by the compiler).
func TestSafeDispatchZeroAlloc(t *testing.T) {
	s := nopSched{}
	for _, m := range bench.DispatchAllMessages() {
		m := m
		avg := testing.AllocsPerRun(200, func() {
			m.RetSched = nil
			if f := core.SafeDispatch(s, m); f != nil {
				t.Fatalf("SafeDispatch(%v): unexpected fault %v", m.Kind, f)
			}
		})
		if avg != 0 {
			t.Errorf("SafeDispatch(%v): %v allocs/op, want 0", m.Kind, avg)
		}
	}
}

// TestSafeDispatchContainsPanic pins the containment contract itself: a
// panicking module surfaces as a structured ModuleFault, not an unwind.
func TestSafeDispatchContainsPanic(t *testing.T) {
	m := &core.Message{Kind: core.MsgTaskDead, PID: 7, Thread: 3}
	f := core.SafeDispatch(panickySched{}, m)
	if f == nil {
		t.Fatal("SafeDispatch swallowed the panic without reporting a fault")
	}
	if f.Cause != core.FaultPanic || f.MsgKind != core.MsgTaskDead || f.CPU != 3 {
		t.Errorf("fault = %+v, want panic on task_dead thread 3", f)
	}
	if f.PanicValue != "boom" || f.Stack == "" {
		t.Errorf("fault did not capture panic value/stack: %+v", f)
	}
}

type panickySched struct{ nopSched }

func (panickySched) TaskDead(pid int) { panic("boom") }

// TestSafeDispatchTracedZeroAlloc pins the observability invariant: the
// fully instrumented crossing — panic containment plus a live tracer sink
// recording every message into its ring — must still not allocate. This is
// what makes always-on tracing viable.
func TestSafeDispatchTracedZeroAlloc(t *testing.T) {
	s := nopSched{}
	tr := trace.New(1 << 12)
	for _, m := range bench.DispatchAllMessages() {
		m := m
		avg := testing.AllocsPerRun(200, func() {
			m.RetSched = nil
			if f := core.SafeDispatchTraced(s, m, tr); f != nil {
				t.Fatalf("SafeDispatchTraced(%v): unexpected fault %v", m.Kind, f)
			}
		})
		if avg != 0 {
			t.Errorf("SafeDispatchTraced(%v): %v allocs/op, want 0", m.Kind, avg)
		}
	}
	if tr.Len() == 0 && tr.Dropped() == 0 {
		t.Error("tracer sink recorded nothing — the zero-alloc result proves nothing")
	}
}

// TestMessageResetKeepsAllowedCapacity pins the pooled-message contract:
// Reset clears the message but keeps the Allowed backing array, so a reused
// message re-fills its affinity list without allocating.
func TestMessageResetKeepsAllowedCapacity(t *testing.T) {
	m := &core.Message{Allowed: make([]int, 0, 8)}
	avg := testing.AllocsPerRun(100, func() {
		m.Allowed = append(m.Allowed, 0, 1, 2, 3)
		m.Reset()
	})
	if avg != 0 {
		t.Errorf("Reset loses Allowed capacity: %v allocs/op, want 0", avg)
	}
}
