// Package record implements Enoki's record mode (§3.4): libEnoki records
// every call and hint sent to the scheduler, plus the order of module lock
// operations, so the exact same scheduler code can later be replayed at
// userspace.
//
// Recording inside the scheduler context cannot write to a file — "writing
// to a file has the potential to sleep" — so entries go into a ring buffer
// shared with a separate userspace record task that drains them to the
// writer. If the buffer overruns, events are dropped (and counted).
package record

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/ringbuf"
)

// Entry is one record-log element: exactly one of Msg or Lock is set.
type Entry struct {
	Msg  *core.Message
	Lock *core.LockEvent
}

// Costs model what recording does to the live system.
type Costs struct {
	// PerCall is the extra framework cost per recorded scheduler
	// invocation (serialise + ring push); this is why record mode runs
	// several times slower (§5.8).
	PerCall time.Duration
	// DrainEvery is the userspace record task's polling period.
	DrainEvery time.Duration
	// WritePerEntry is the record task's CPU cost per entry written.
	WritePerEntry time.Duration
	// RingCapacity bounds the shared ring; overflow drops events.
	RingCapacity int
}

// DefaultCosts returns the calibrated record-mode costs.
func DefaultCosts() Costs {
	return Costs{
		PerCall:       3 * time.Microsecond,
		DrainEvery:    200 * time.Microsecond,
		WritePerEntry: 900 * time.Nanosecond,
		RingCapacity:  1 << 16,
	}
}

// Recorder is the live record-mode sink: core.Recorder backed by the shared
// ring buffer and a userspace drainer task.
type Recorder struct {
	k     *kernel.Kernel
	costs Costs
	ring  *ringbuf.Buffer[Entry]
	enc   *gob.Encoder

	// Entries and Dropped count traffic and overflow.
	Entries uint64
	Dropped uint64
	closed  bool
}

var _ core.Recorder = (*Recorder)(nil)

// New builds a recorder writing to w and spawns the userspace record task
// into the scheduler class drainPolicy (normally CFS — the record task is an
// ordinary process).
func New(k *kernel.Kernel, w io.Writer, drainPolicy int, costs Costs) *Recorder {
	if costs.RingCapacity == 0 {
		costs = DefaultCosts()
	}
	r := &Recorder{
		k:     k,
		costs: costs,
		ring:  ringbuf.New[Entry](costs.RingCapacity),
		enc:   gob.NewEncoder(w),
	}
	k.Spawn("record-task", drainPolicy, kernel.BehaviorFunc(r.drain))
	return r
}

// PerCallCost returns the per-invocation overhead the framework should
// charge while this recorder is installed.
func (r *Recorder) PerCallCost() time.Duration { return r.costs.PerCall }

// RecordMessage implements core.Recorder.
func (r *Recorder) RecordMessage(m *core.Message) {
	// Deep snapshot: the live message is pooled and will be reset and
	// reused, and its ref pointers point into its own inline buffers.
	r.push(Entry{Msg: m.Clone()})
}

// RecordLock implements core.Recorder.
func (r *Recorder) RecordLock(ev core.LockEvent) {
	r.push(Entry{Lock: &ev})
}

func (r *Recorder) push(e Entry) {
	r.Entries++
	if !r.ring.Push(e) {
		r.Dropped++
	}
}

// drain is the userspace record task: poll the shared ring and write
// entries out, paying CPU for each.
func (r *Recorder) drain(k *kernel.Kernel, t *kernel.Task) kernel.Action {
	if r.closed {
		return kernel.Action{Op: kernel.OpExit}
	}
	n := 0
	for {
		e, ok := r.ring.Pop()
		if !ok {
			break
		}
		n++
		// The actual encoding happens here in host time; its simulated
		// cost is WritePerEntry below.
		_ = r.enc.Encode(&e)
	}
	return kernel.Action{
		Run:      time.Duration(n)*r.costs.WritePerEntry + 2*time.Microsecond,
		Op:       kernel.OpSleep,
		SleepFor: r.costs.DrainEvery,
	}
}

// Close drains any remaining entries synchronously and stops the record
// task at its next wakeup.
func (r *Recorder) Close() {
	for {
		e, ok := r.ring.Pop()
		if !ok {
			break
		}
		_ = r.enc.Encode(&e)
	}
	r.closed = true
}

// Load reads a record log back from rd. Truncated or corrupted logs return
// the entries decoded so far plus an error — never a panic: a log file is
// untrusted input (a crashed run, a partial copy, a fuzzer), and the gob
// decoder may panic on pathological bytes, so the decode is panic-contained.
func Load(rd io.Reader) (entries []Entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("record: corrupt log: %v", r)
		}
	}()
	dec := gob.NewDecoder(rd)
	for {
		var e Entry
		if derr := dec.Decode(&e); derr != nil {
			if derr == io.EOF {
				return entries, nil
			}
			return entries, derr
		}
		// gob decodes an all-defaults value from an empty field delta, but a
		// live Recorder always sets exactly one of Msg/Lock — an empty entry
		// can only come from a damaged or forged stream.
		if e.Msg == nil && e.Lock == nil {
			return entries, fmt.Errorf("record: corrupt log: entry %d has neither message nor lock", len(entries))
		}
		entries = append(entries, e)
	}
}
