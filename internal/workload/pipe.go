// Package workload implements the benchmark workload models of §5: the
// perf-bench-sched-pipe ping-pong, schbench message/worker trees, the
// parallel-application profiles behind Table 5 and Appendix A.1, the
// dispersive RocksDB load of Fig 2, the batch applications it co-locates,
// and the mutilate-driven memcached model of Fig 3.
//
// Each model encodes the scheduling footprint of its application — blocking
// pattern, fan-out, compute bursts, service-time distribution — which is
// what the paper's results depend on (DESIGN.md §1 documents the
// substitution).
package workload

import (
	"time"

	"enoki/internal/arachne"
	"enoki/internal/kernel"
)

// PipeConfig describes a perf bench sched pipe run: two tasks send
// `Messages` messages back and forth, each sender sleeping until the other
// responds.
type PipeConfig struct {
	Policy   int
	Messages int
	// SameCore forces both tasks onto CPU 0 (the paper's one-core
	// configuration); otherwise tasks sit on CPUs 0 and 1.
	SameCore bool
	// WorkPerMsg is the userspace work to build/consume one message.
	WorkPerMsg time.Duration
}

// PipeResult reports the benchmark outcome.
type PipeResult struct {
	// PerWakeup is the mean latency per message wakeup, the unit of
	// Table 3.
	PerWakeup time.Duration
	Total     time.Duration
	Messages  int
}

// RunPipe executes the pipe benchmark on kernel k and returns per-wakeup
// latency. It runs the simulation; the kernel should be otherwise idle.
func RunPipe(k *kernel.Kernel, cfg PipeConfig) PipeResult {
	if cfg.WorkPerMsg == 0 {
		cfg.WorkPerMsg = 300 * time.Nanosecond
	}
	var a, b *kernel.Task
	count := 0
	var finished time.Duration
	done := false
	mk := func(peer **kernel.Task, starts bool) kernel.Behavior {
		started := false
		return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			if starts && !started {
				started = true
				return kernel.Action{Run: cfg.WorkPerMsg, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
			}
			count++
			if count >= 2*cfg.Messages {
				if !done {
					done = true
					finished = time.Duration(k.Now())
				}
				return kernel.Action{Op: kernel.OpExit}
			}
			return kernel.Action{Run: cfg.WorkPerMsg, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
		})
	}
	maskA := kernel.SingleCPU(0)
	maskB := kernel.SingleCPU(0)
	if !cfg.SameCore {
		maskB = kernel.SingleCPU(1)
	}
	a = k.Spawn("pipe-a", cfg.Policy, mk(&b, true), kernel.WithAffinity(maskA))
	b = k.Spawn("pipe-b", cfg.Policy, mk(&a, false), kernel.WithAffinity(maskB))
	// Generous deadline: the slowest scheduler needs ~10µs per wakeup.
	k.RunFor(time.Duration(cfg.Messages)*50*time.Microsecond + time.Second)
	if count < 2*cfg.Messages {
		// A stalled scheduler is a real finding: surface it as an
		// absurd latency rather than hiding it.
		return PipeResult{PerWakeup: time.Hour, Messages: count}
	}
	return PipeResult{
		PerWakeup: finished / time.Duration(2*cfg.Messages),
		Total:     finished,
		Messages:  2 * cfg.Messages,
	}
}

// RunArachnePipe runs the ping-pong as Arachne user threads: each message
// is a user-level continuation submitted to the runtime, so the kernel is
// not on the message path at all (Table 3's Arachne row).
func RunArachnePipe(k *kernel.Kernel, rt *arachne.Runtime, messages int, twoCores bool) PipeResult {
	// Let the runtime settle (grants, activations spun up).
	k.RunFor(2 * time.Millisecond)
	start := k.Now()
	count := 0
	var finished time.Duration
	var ping, pong func()
	msgWork := 50 * time.Nanosecond
	ping = func() {
		count++
		if count >= 2*messages {
			finished = k.Now().Sub(start)
			return
		}
		rt.Submit(arachne.UserThread{Service: msgWork, Done: pong})
	}
	pong = func() {
		count++
		if count >= 2*messages {
			finished = k.Now().Sub(start)
			return
		}
		rt.Submit(arachne.UserThread{Service: msgWork, Done: ping})
	}
	rt.Submit(arachne.UserThread{Service: msgWork, Done: ping})
	k.RunFor(time.Duration(messages)*10*time.Microsecond + time.Second)
	if count < 2*messages {
		return PipeResult{PerWakeup: time.Hour, Messages: count}
	}
	_ = twoCores // the grant size decides cores; kept for call-site clarity
	return PipeResult{
		PerWakeup: finished / time.Duration(2*messages),
		Total:     finished,
		Messages:  2 * messages,
	}
}
