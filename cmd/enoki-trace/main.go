// Command enoki-trace converts scheduler activity into Chrome trace-event
// JSON viewable in Perfetto (ui.perfetto.dev) or chrome://tracing, with one
// lane per CPU, run slices per task, and wakeup→run flow arrows.
//
// Usage:
//
//	enoki-trace [-o trace.json] <record-log>
//	enoki-trace -demo [-sched wfq|fifo|shinjuku|locality|arbiter|cfs] [-o trace.json]
//
// The first form converts an existing record log (produced by attaching
// record.New to an adapter) into a timeline without re-running anything. The
// second runs a small fixed-seed workload live with the full observability
// layer enabled, writes its trace, and prints the per-class latency
// histogram summaries — the quickest way to see what a scheduler is doing.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enoki/internal/experiments"
	"enoki/internal/kernel"
	"enoki/internal/record"
	"enoki/internal/trace"
)

func main() {
	out := flag.String("o", "trace.json", "output file for Chrome trace JSON")
	demo := flag.Bool("demo", false, "run a fixed-seed live workload instead of converting a log")
	sched := flag.String("sched", "wfq", "scheduler for -demo (wfq|fifo|shinjuku|locality|arbiter|cfs)")
	flag.Parse()

	var events []trace.Event
	if *demo {
		var err error
		events, err = runDemo(*sched)
		if err != nil {
			fmt.Fprintf(os.Stderr, "enoki-trace: %v\n", err)
			os.Exit(2)
		}
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: enoki-trace [-o trace.json] <record-log>\n       enoki-trace -demo [-sched name] [-o trace.json]")
			os.Exit(2)
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "enoki-trace: %v\n", err)
			os.Exit(1)
		}
		entries, err := record.Load(f)
		f.Close()
		if err != nil {
			// A truncated log still yields its decoded prefix; convert what
			// survived but report the damage.
			fmt.Fprintf(os.Stderr, "enoki-trace: log damaged after %d entries: %v\n", len(entries), err)
		}
		for _, e := range entries {
			if e.Msg == nil {
				continue
			}
			if ev, ok := trace.FromMessage(e.Msg); ok {
				events = append(events, ev)
			}
		}
	}

	w, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "enoki-trace: %v\n", err)
		os.Exit(1)
	}
	if err := trace.WriteChrome(w, events); err != nil {
		fmt.Fprintf(os.Stderr, "enoki-trace: %v\n", err)
		os.Exit(1)
	}
	if err := w.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "enoki-trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d events to %s (open in ui.perfetto.dev or chrome://tracing)\n", len(events), *out)
}

// runDemo executes the fixed-seed demo workload and returns its events.
func runDemo(sched string) ([]trace.Event, error) {
	kinds := map[string]experiments.Kind{
		"cfs":      experiments.KindCFS,
		"fifo":     experiments.KindFIFO,
		"wfq":      experiments.KindWFQ,
		"shinjuku": experiments.KindShinjuku,
		"locality": experiments.KindLocality,
		"arbiter":  experiments.KindArbiter,
	}
	kind, ok := kinds[sched]
	if !ok {
		return nil, fmt.Errorf("unknown scheduler %q", sched)
	}
	r := experiments.NewRig(kernel.Machine8(), kind)
	tr, ms := r.Observe(1 << 18)

	mkLoop := func(rounds int, run, sleep time.Duration) kernel.Behavior {
		n := 0
		return kernel.BehaviorFunc(func(*kernel.Kernel, *kernel.Task) kernel.Action {
			n++
			if n > rounds {
				return kernel.Action{Op: kernel.OpExit}
			}
			return kernel.Action{Run: run, Op: kernel.OpSleep, SleepFor: sleep}
		})
	}
	for i := 0; i < 6; i++ {
		r.K.Spawn("worker", r.Policy, mkLoop(80, 120*time.Microsecond, 60*time.Microsecond))
	}
	for i := 0; i < 2; i++ {
		r.K.Spawn("batch", experiments.PolicyCFS, mkLoop(40, 300*time.Microsecond, 100*time.Microsecond))
	}
	r.K.RunFor(10 * time.Millisecond)

	fmt.Print(ms.Table())
	if d := tr.Dropped(); d > 0 {
		fmt.Printf("(%d events dropped by the ring; raise the capacity for full fidelity)\n", d)
	}
	return tr.Events(), nil
}
