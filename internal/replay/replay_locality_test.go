package replay_test

import (
	"bytes"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/record"
	"enoki/internal/replay"
	"enoki/internal/sched/locality"
	"enoki/internal/sim"
)

// TestReplayWithHints records a hint-driven locality run and replays it:
// hint pushes and enter_queue calls must flow through the log so the
// replayed module makes the same placement decisions (which depend on the
// hints AND on its deterministic random stream).
func TestReplayWithHints(t *testing.T) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	ad := enokic.Load(k, 1, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		return locality.New(env, 1)
	})
	k.RegisterClass(0, kernel.NewCFS(k))
	var buf bytes.Buffer
	rec := record.New(k, &buf, 0, record.DefaultCosts())
	ad.SetRecorder(rec)

	mk := func() kernel.Behavior {
		n := 0
		return kernel.BehaviorFunc(func(k *kernel.Kernel, tk *kernel.Task) kernel.Action {
			n++
			if n > 200 {
				return kernel.Action{Op: kernel.OpExit}
			}
			return kernel.Action{Run: 20 * time.Microsecond, Op: kernel.OpSleep,
				SleepFor: 80 * time.Microsecond}
		})
	}
	a := k.Spawn("a", 1, mk())
	b := k.Spawn("b", 1, mk())
	c := k.Spawn("c", 1, mk())
	q := ad.CreateHintQueue(16)
	q.Send(locality.HintMsg{PID: a.PID(), Locality: 1})
	q.Send(locality.HintMsg{PID: b.PID(), Locality: 1})
	q.SendSync(locality.HintMsg{PID: c.PID(), Locality: 2})
	k.RunFor(100 * time.Millisecond)
	rec.Close()

	res, err := replay.Replay(bytes.NewReader(buf.Bytes()),
		replay.Config{NumCPUs: 8},
		func(env core.Env) core.Scheduler { return locality.New(env, 1) })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Messages < 500 {
		t.Fatalf("replayed only %d messages", res.Messages)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("hint replay diverged: %v", res.Divergences[:min(3, len(res.Divergences))])
	}
}
