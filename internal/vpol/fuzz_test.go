package vpol

import (
	"testing"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/sim"
)

// FuzzVerify feeds raw bytes through Decode and Verify: neither may panic,
// and any program the verifier accepts must then run to completion inside a
// kernel without tripping the interpreter's defense-in-depth traps
// (TrapFuel/TrapLoopDepth) — the verified ⇒ safe contract.
func FuzzVerify(f *testing.F) {
	f.Add(Encode(FIFOProgram()))
	f.Add(Encode(DualQueueProgram()))
	f.Add(Encode(FIFOProgram())[:9])  // truncated header
	f.Add([]byte("VPOL"))             // magic only
	f.Add([]byte("VPOL\x01\x01\x00")) // truncated after queues
	f.Add([]byte{})                   // empty
	// Loop-bound overflow: trip count above MaxLoopIter.
	f.Add(Encode(&Program{
		SharedQueues: 1,
		Enqueue: []Inst{
			{Op: OpLdi},
			{Op: OpLoop, B: MaxLoopIter + 1, Imm: 0},
			{Op: OpEnq, A: QShared},
			{Op: OpRet},
		},
		Pick: []Inst{{Op: OpTryPop, A: QShared}, {Op: OpRet}},
	}))
	// Register-limit overflow.
	f.Add(Encode(&Program{
		SharedQueues: 1,
		Enqueue:      []Inst{{Op: OpLdi, A: NumRegs + 3}, {Op: OpEnq, A: QShared}, {Op: OpRet}},
		Pick:         []Inst{{Op: OpTryPop, A: QShared}, {Op: OpRet}},
	}))
	// Step-budget overflow: nested max-trip loops.
	f.Add(Encode(&Program{
		SharedQueues: 1,
		Pick: []Inst{
			{Op: OpLdi},
			{Op: OpLdi},
			{Op: OpLoop, B: MaxLoopIter, Imm: 1},
			{Op: OpLoop, B: MaxLoopIter, Imm: 0},
			{Op: OpTryPop, A: QShared},
			{Op: OpRet},
		},
		Enqueue: []Inst{{Op: OpEnq, A: QShared}, {Op: OpRet}},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if err := Verify(p); err != nil {
			return
		}
		// Verified: it must run without hitting the bounds the verifier
		// claims to have proven.
		eng := sim.New()
		k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
		c, err := Load(k, 2, p, DefaultConfig())
		if err != nil {
			t.Fatalf("Load of verified program failed: %v", err)
		}
		k.RegisterClass(0, kernel.NewCFS(k))
		for i := 0; i < 3; i++ {
			k.Spawn("w", 2, spin(200*time.Microsecond, 50*time.Microsecond))
		}
		k.RunFor(5 * time.Millisecond)
		if c.Killed() {
			switch c.Failure().Trap {
			case TrapFuel, TrapLoopDepth:
				t.Fatalf("verified program hit %v: %+v", c.Failure().Trap, c.Failure())
			}
			// Data-dependent traps (div-zero, enqueue contract) are the
			// fault tier working as designed, not verifier misses.
		}
	})
}

// FuzzAssemble feeds arbitrary text through the assembler (and the verifier,
// when assembly succeeds): no input may panic either.
func FuzzAssemble(f *testing.F) {
	f.Add(FIFOSource)
	f.Add(DualQueueSource)
	f.Add("queues shared=1\nenqueue:\n enq shared, 0\n ret\npick:\n ret\n")
	f.Add("queues shared=999 local=-4\n")
	f.Add("slice 1ns\nqueues shared=1\n")
	f.Add("enqueue:\n loop 64, enqueue\n")
	f.Add("queues shared=1\nenqueue:\nx:\n jmp x\n ret\npick:\n ret\n")
	f.Add("; empty\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		_ = Verify(p) // must not panic either way
	})
}
