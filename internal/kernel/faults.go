package kernel

import "enoki/internal/core"

// Kernel-plane fault injection. The kernel itself knows nothing about fault
// schedules: it exposes two interception points — kick delivery (the
// simulation's resched/wake IPI) and reschedule-timer arming — behind a nil
// interface. internal/chaos installs an implementation to model IPI
// drop/delay/duplication and timer skew; everything else runs with the field
// nil and pays one pointer test per site (see the ScheduleOpFaultHooks alloc
// ratchet, which pins both the nil and the installed-but-quiet case at
// 0 allocs/op).

// SetFaultInjector installs (or removes, with nil) the kernel-plane fault
// hook. The injector sees every delivered kick — batched flushes included,
// each exactly once — and every ArmResched. It must be deterministic and
// allocation-free; see core.KernelFaultInjector for the full contract.
func (k *Kernel) SetFaultInjector(f core.KernelFaultInjector) { k.finj = f }

// FaultInjector returns the installed kernel-plane fault hook, or nil.
func (k *Kernel) FaultInjector() core.KernelFaultInjector { return k.finj }
