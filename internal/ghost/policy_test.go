package ghost

import (
	"testing"
	"time"
)

func TestFIFOPolicyPerCPU(t *testing.T) {
	p := NewFIFOPolicy()
	p.OnMessage(AgentMsg{Kind: MNew, PID: 1, CPU: 0})
	p.OnMessage(AgentMsg{Kind: MNew, PID: 2, CPU: 0})
	p.OnMessage(AgentMsg{Kind: MNew, PID: 3, CPU: 1})

	if pid, ok := p.NextFor(0); !ok || pid != 1 {
		t.Fatalf("NextFor(0) = %d,%v", pid, ok)
	}
	if pid, ok := p.NextFor(1); !ok || pid != 3 {
		t.Fatalf("NextFor(1) = %d,%v", pid, ok)
	}
	if pid, ok := p.NextFor(0); !ok || pid != 2 {
		t.Fatalf("NextFor(0) second = %d,%v", pid, ok)
	}
	if _, ok := p.NextFor(0); ok {
		t.Fatal("empty queue produced a task")
	}
	if p.Slice() != 0 {
		t.Fatal("FIFO should not slice")
	}
}

func TestFIFOPolicyBlockedRemoves(t *testing.T) {
	p := NewFIFOPolicy()
	p.OnMessage(AgentMsg{Kind: MWakeup, PID: 1, CPU: 0})
	p.OnMessage(AgentMsg{Kind: MBlocked, PID: 1, CPU: 0})
	if _, ok := p.NextFor(0); ok {
		t.Fatal("blocked task still scheduled")
	}
	if p.Pending() != 0 {
		t.Fatalf("Pending = %d", p.Pending())
	}
}

func TestFIFOPolicyRequeueMovesToBack(t *testing.T) {
	p := NewFIFOPolicy()
	p.OnMessage(AgentMsg{Kind: MWakeup, PID: 1, CPU: 0})
	p.OnMessage(AgentMsg{Kind: MWakeup, PID: 2, CPU: 0})
	p.OnMessage(AgentMsg{Kind: MPreempt, PID: 1, CPU: 0})
	if pid, _ := p.NextFor(0); pid != 2 {
		t.Fatalf("preempted task did not move back: %d", pid)
	}
}

func TestGlobalPolicyFCFSAndWarmth(t *testing.T) {
	p := NewSOLPolicy()
	p.OnMessage(AgentMsg{Kind: MWakeup, PID: 1, CPU: 4})
	p.OnMessage(AgentMsg{Kind: MWakeup, PID: 2, CPU: 5})
	// CPU 5 prefers its warm task even though pid 1 is older.
	if pid, _ := p.NextFor(5); pid != 2 {
		t.Fatalf("warmth preference broken: %d", pid)
	}
	// An unrelated CPU takes the oldest remaining arrival.
	if pid, _ := p.NextFor(9); pid != 1 {
		t.Fatalf("FCFS fallback broken: %d", pid)
	}
}

func TestGlobalPolicyAffinity(t *testing.T) {
	p := NewSOLPolicy()
	p.OnMessage(AgentMsg{Kind: MNew, PID: 1, CPU: 0, Allowed: []int{3}})
	if _, ok := p.NextFor(2); ok {
		t.Fatal("scheduled a task on a forbidden cpu")
	}
	if pid, ok := p.NextFor(3); !ok || pid != 1 {
		t.Fatalf("NextFor(3) = %d,%v", pid, ok)
	}
}

func TestShinjukuPolicySlices(t *testing.T) {
	p := NewShinjukuPolicy(10 * time.Microsecond)
	if p.Slice() != 10*time.Microsecond {
		t.Fatal("slice not set")
	}
	if p.Name() != "shinjuku" {
		t.Fatal("name")
	}
}

func TestGlobalPolicyDeadCleans(t *testing.T) {
	p := NewSOLPolicy()
	p.OnMessage(AgentMsg{Kind: MNew, PID: 1, CPU: 0, Allowed: []int{0}})
	p.OnMessage(AgentMsg{Kind: MDead, PID: 1, CPU: 0})
	if p.Pending() != 0 {
		t.Fatal("dead task still pending")
	}
	if len(p.allowed) != 0 || len(p.lastCPU) != 0 {
		t.Fatal("dead task state leaked")
	}
}
