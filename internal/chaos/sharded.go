package chaos

import (
	"bytes"
	"fmt"
	"time"

	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/record"
	"enoki/internal/schedtest/conformance"
)

// shardSalt separates the fault-window streams of different shards: every
// shard arms its own windows, drawn from its own sequence, all derived from
// the one campaign seed.
const shardSalt uint64 = 0x94d049bb133111eb

// ShardedResult is one sharded campaign's outcome. Logs holds the raw
// per-shard record bytes; a serial and a parallel run of the same seed must
// match field for field, Logs byte for byte.
type ShardedResult struct {
	Logs          [][]byte
	WorkloadDone  int
	WorkloadTasks int
	PingersDone   int
	Pingers       int
	MsgsDelivered uint64
	EventsFired   uint64
	CtxSwitches   uint64
	Violations    []string
}

// Failed reports whether the campaign breached any invariant.
func (r *ShardedResult) Failed() bool { return len(r.Violations) > 0 }

// armShardFaults derives one shard's kernel fault windows from the campaign
// seed — a pure function of (seed, shard), so serial and parallel runs arm
// identical windows. All four kernel planes fire inside the first half of
// the budget: IPI loss (modelled as recovery-bounded delay), IPI delay
// jitter, IPI duplication, and timer skew.
func armShardFaults(seed uint64, shard int, k *kernel.Kernel, budget time.Duration) {
	rng := ktime.NewRand(seed ^ kernelSalt ^ (shardSalt * uint64(shard+1)))
	kf := &kernelFaults{
		clock: func() int64 { return int64(k.Now()) },
		rng:   ktime.NewRand(rng.Uint64()),
	}
	window := func(dur time.Duration) (int64, int64) {
		at := int64(rng.Uint64() % uint64(budget/2))
		return at, at + int64(dur)
	}
	kf.dropFrom, kf.dropUntil = window(2 * time.Millisecond)
	kf.dropMag = int64(3 * time.Millisecond)
	kf.delayFrom, kf.delayUntil = window(2 * time.Millisecond)
	kf.delayMag = int64(50 * time.Microsecond)
	kf.dupFrom, kf.dupUntil = window(time.Millisecond)
	kf.dupMag = int64(30 * time.Microsecond)
	kf.skewFrom, kf.skewUntil = window(2 * time.Millisecond)
	kf.skewMag = int64(20 * time.Microsecond)
	k.SetFaultInjector(kf)
}

// ShardedCampaign runs one seeded kernel-plane campaign for class on the
// two-socket machine partitioned per NUMA node: per-shard seeded workloads,
// cross-shard pinger traffic through the epoch-merge protocol, and per-shard
// fault windows (IPI drop/delay/dup, timer skew) armed from the seed. The
// campaign is deterministic end to end — with parallel false the shards run
// in shard order on one goroutine, with parallel true on worker goroutines,
// and both produce the same ShardedResult, record logs included. That
// identity under armed fault windows is what the sharded chaos test pins.
func ShardedCampaign(seed uint64, class string, budget time.Duration, tasksPerShard int, parallel bool) ShardedResult {
	c, ok := caseByName(class)
	if !ok {
		return ShardedResult{Violations: []string{fmt.Sprintf("unknown class %q", class)}}
	}
	m := kernel.Machine80()
	r := conformance.NewShardedRig(c, m, enokic.DefaultConfig())
	defer r.SK.Close()
	r.SK.SetParallel(parallel)

	n := r.SK.NumShards()
	bufs := make([]*bytes.Buffer, n)
	recs := make([]*record.Recorder, n)
	checkers := make([]*conformance.Checker, n)
	dones := make([]func() int, n)
	for i := 0; i < n; i++ {
		sub := r.Shards[i]
		if sub.Adapter != nil {
			bufs[i] = &bytes.Buffer{}
			recs[i] = record.New(sub.K, bufs[i], conformance.PolicyCFS, record.DefaultCosts())
			sub.Adapter.SetRecorder(recs[i])
		}
		armShardFaults(seed, i, sub.K, budget)
		w := conformance.Workload{Seed: seed ^ workloadSalt ^ uint64(i), Tasks: tasksPerShard, Churn: true}
		dones[i] = w.Spawn(sub)
		checkers[i] = conformance.StartChecker(sub, 500*time.Microsecond)
	}
	const pingers, cycles = 2, 10
	pingDone := r.CrossTraffic(pingers, cycles, 300*time.Microsecond)

	r.SK.RunFor(budget)

	res := ShardedResult{
		Logs:          make([][]byte, n),
		WorkloadTasks: n * tasksPerShard,
		Pingers:       n * pingers,
		PingersDone:   pingDone(),
		MsgsDelivered: r.SK.Executor().MsgsDelivered(),
		EventsFired:   r.SK.EventsFired(),
		CtxSwitches:   r.SK.CtxSwitches(),
	}
	for i := 0; i < n; i++ {
		res.WorkloadDone += dones[i]()
		checkers[i].Stop()
		for _, v := range checkers[i].Violations {
			res.Violations = append(res.Violations, fmt.Sprintf("shard %d checker: %v", i, v))
		}
		if recs[i] != nil {
			recs[i].Close()
			res.Logs[i] = bufs[i].Bytes()
			if _, err := record.Load(bytes.NewReader(res.Logs[i])); err != nil {
				res.Violations = append(res.Violations, fmt.Sprintf("shard %d record log not decodable: %v", i, err))
			}
		}
	}
	return res
}
