// Command enokibench regenerates every table and figure from the paper's
// evaluation (§5). Each experiment prints the paper-style table it
// reproduces; DESIGN.md maps experiment ids to modules and EXPERIMENTS.md
// records paper-vs-measured.
//
// Usage:
//
//	enokibench [-quick] [-list] [experiment ...]
//
// With no experiment names, everything runs in paper order. -quick shrinks
// message counts and durations so the full suite finishes in well under a
// minute; without it, runs use paper-scale durations.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enoki/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink durations/message counts for a fast pass")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: enokibench [-quick] [-list] [experiment ...]\n\nexperiments:\n")
		for _, s := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", s.Name, s.What)
		}
	}
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-13s %s\n", s.Name, s.What)
		}
		return
	}

	names := flag.Args()
	var specs []experiments.Spec
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		specs = experiments.All()
	} else {
		for _, n := range names {
			s, ok := experiments.Find(n)
			if !ok {
				fmt.Fprintf(os.Stderr, "enokibench: unknown experiment %q (try -list)\n", n)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}

	opts := experiments.Options{Quick: *quick}
	for i, s := range specs {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		res := s.Run(opts)
		fmt.Print(res.String())
		fmt.Printf("[%s finished in %v]\n", s.Name, time.Since(start).Round(time.Millisecond))
	}
}
