package core

import (
	"testing"
	"time"
)

// nopSched is the cheapest possible module, isolating Dispatch's own cost.
type nopSched struct{ BaseScheduler }

func (nopSched) GetPolicy() int { return 1 }
func (nopSched) PickNextTask(cpu int, curr *Schedulable, rt time.Duration) *Schedulable {
	return nil
}
func (nopSched) TaskNew(pid int, rt time.Duration, r bool, allowed []int, s *Schedulable) {}
func (nopSched) TaskWakeup(pid int, rt time.Duration, d bool, l, w int, s *Schedulable)   {}
func (nopSched) TaskPreempt(pid int, rt time.Duration, cpu int, s *Schedulable)           {}
func (nopSched) TaskYield(pid int, rt time.Duration, cpu int, s *Schedulable)             {}
func (nopSched) TaskDeparted(pid, cpu int) *Schedulable                                   { return nil }
func (nopSched) SelectTaskRQ(pid, prev int, wakeup bool) int                              { return prev }
func (nopSched) MigrateTaskRQ(pid, newCPU int, s *Schedulable) *Schedulable               { return s }

// BenchmarkDispatch measures libEnoki's processing function: the per-message
// parse + call + reply write that happens on every framework crossing.
func BenchmarkDispatch(b *testing.B) {
	s := nopSched{}
	m := &Message{Kind: MsgPickNextTask, CPU: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RetSched = nil
		Dispatch(s, m)
	}
}

// BenchmarkDispatchWakeup includes a token materialisation (the replay
// path).
func BenchmarkDispatchWakeup(b *testing.B) {
	s := nopSched{}
	m := &Message{Kind: MsgTaskWakeup, PID: 7,
		Sched: &SchedulableRef{PID: 7, CPU: 2, Gen: 9}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dispatch(s, m)
	}
}
