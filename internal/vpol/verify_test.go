package vpol

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// minimal returns a smallest-possible valid program to mutate per case.
func minimal() *Program {
	return &Program{
		SharedQueues: 1,
		Enqueue:      []Inst{{Op: OpEnq, A: QShared}, {Op: OpRet}},
		Pick:         []Inst{{Op: OpTryPop, A: QShared}, {Op: OpRet}},
	}
}

func TestVerifyAcceptsExamples(t *testing.T) {
	for _, src := range []string{FIFOSource, DualQueueSource} {
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("Assemble: %v", err)
		}
		if err := Verify(p); err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if !p.Verified() {
			t.Fatal("program not marked verified")
		}
	}
}

func TestVerifyRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Program)
		want string
	}{
		{"nil-hooks", func(p *Program) { p.Enqueue = nil }, "empty hook"},
		{"no-queues", func(p *Program) { p.SharedQueues = 0 }, "no queues"},
		{"too-many-shared", func(p *Program) { p.SharedQueues = MaxSharedQueues + 1 }, "out of range"},
		{"negative-slice", func(p *Program) { p.Slice = -time.Millisecond }, "negative slice"},
		{"tiny-slice", func(p *Program) { p.Slice = time.Microsecond }, "below minimum"},
		{"no-ret", func(p *Program) {
			p.Pick = []Inst{{Op: OpTryPop, A: QShared}}
		}, "end in ret"},
		{"too-long", func(p *Program) {
			code := make([]Inst, MaxInsts+1)
			for i := range code {
				code[i] = Inst{Op: OpLdi}
			}
			code[len(code)-1] = Inst{Op: OpRet}
			p.Pick = code
		}, "exceeds limit"},
		{"bad-reg", func(p *Program) {
			p.Pick = []Inst{{Op: OpLdi, A: NumRegs}, {Op: OpTryPop, A: QShared}, {Op: OpRet}}
		}, "register"},
		{"bad-op", func(p *Program) {
			p.Pick = []Inst{{Op: opMax}, {Op: OpTryPop, A: QShared}, {Op: OpRet}}
		}, "invalid opcode"},
		{"backward-jmp", func(p *Program) {
			p.Pick = []Inst{{Op: OpLdi}, {Op: OpJmp, Imm: 0}, {Op: OpRet}}
		}, "forward branch"},
		{"self-jmp", func(p *Program) {
			p.Pick = []Inst{{Op: OpJmp, Imm: 0}, {Op: OpRet}}
		}, "forward branch"},
		{"oob-jmp", func(p *Program) {
			p.Pick = []Inst{{Op: OpJmp, Imm: 99}, {Op: OpRet}}
		}, "forward branch"},
		{"queue-oob", func(p *Program) {
			p.Pick = []Inst{{Op: OpTryPop, A: QShared, Imm: 1}, {Op: OpRet}}
		}, "shared queue 1 out of range"},
		{"queue-kind", func(p *Program) {
			p.Pick = []Inst{{Op: OpTryPop, A: 9}, {Op: OpRet}}
		}, "unknown queue kind"},
		{"local-undeclared", func(p *Program) {
			p.Pick = []Inst{{Op: OpTryPop, A: QLocal}, {Op: OpRet}}
		}, "local queue 0 out of range"},
		{"enq-in-pick", func(p *Program) {
			p.Pick = []Inst{{Op: OpEnq, A: QShared}, {Op: OpRet}}
		}, "enqueue-hook only"},
		{"trypop-in-enqueue", func(p *Program) {
			p.Enqueue = []Inst{{Op: OpTryPop, A: QShared}, {Op: OpEnq, A: QShared}, {Op: OpRet}}
		}, "pick-hook only"},
		{"ldf-in-pick", func(p *Program) {
			p.Pick = []Inst{{Op: OpLdf, B: uint8(FieldNice)}, {Op: OpTryPop, A: QShared}, {Op: OpRet}}
		}, "enqueue-hook only"},
		{"bad-field", func(p *Program) {
			p.Enqueue = []Inst{{Op: OpLdf, B: uint8(fieldMax)}, {Op: OpEnq, A: QShared}, {Op: OpRet}}
		}, "unknown task field"},
		{"loop-zero", func(p *Program) {
			p.Pick = []Inst{{Op: OpLdi}, {Op: OpLoop, B: 0, Imm: 0}, {Op: OpTryPop, A: QShared}, {Op: OpRet}}
		}, "trip count"},
		{"loop-too-many", func(p *Program) {
			p.Pick = []Inst{{Op: OpLdi}, {Op: OpLoop, B: MaxLoopIter + 1, Imm: 0}, {Op: OpTryPop, A: QShared}, {Op: OpRet}}
		}, "trip count"},
		{"loop-forward", func(p *Program) {
			p.Pick = []Inst{{Op: OpLoop, B: 2, Imm: 1}, {Op: OpTryPop, A: QShared}, {Op: OpRet}}
		}, "strictly backward"},
		{"branch-into-loop", func(p *Program) {
			// 0: jmp 2 (into the body of the loop at 3)
			p.Pick = []Inst{
				{Op: OpJmp, Imm: 2},
				{Op: OpLdi},
				{Op: OpLdi},
				{Op: OpLoop, B: 2, Imm: 1},
				{Op: OpTryPop, A: QShared},
				{Op: OpRet},
			}
		}, "enters loop body"},
		{"branch-escapes-loop", func(p *Program) {
			// loop body [1,3]; 2: jmp 4 escapes it.
			p.Pick = []Inst{
				{Op: OpLdi},
				{Op: OpLdi},
				{Op: OpJmp, Imm: 4},
				{Op: OpLoop, B: 2, Imm: 1},
				{Op: OpTryPop, A: QShared},
				{Op: OpRet},
			}
		}, "escapes loop body"},
		{"loop-overlap", func(p *Program) {
			// spans [0,2] and [1,3] partially overlap.
			p.Pick = []Inst{
				{Op: OpLdi},
				{Op: OpLdi},
				{Op: OpLoop, B: 2, Imm: 0},
				{Op: OpLoop, B: 2, Imm: 1},
				{Op: OpTryPop, A: QShared},
				{Op: OpRet},
			}
		}, "overlaps"},
		{"step-budget", func(p *Program) {
			// Two nested 64-trip loops over a body: 64*64 = 4096 weight on
			// several instructions busts MaxSteps.
			p.Pick = []Inst{
				{Op: OpLdi},
				{Op: OpLdi},
				{Op: OpLoop, B: MaxLoopIter, Imm: 1},
				{Op: OpLoop, B: MaxLoopIter, Imm: 0},
				{Op: OpTryPop, A: QShared},
				{Op: OpRet},
			}
		}, "step count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := minimal()
			tc.mut(p)
			err := Verify(p)
			if err == nil {
				t.Fatal("Verify accepted a bad program")
			}
			var ve *VerifyError
			if !errors.As(err, &ve) {
				t.Fatalf("error %T is not *VerifyError", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if p.Verified() {
				t.Fatal("rejected program still marked verified")
			}
		})
	}
}

func TestVerifyStepBudgetNestedLoops(t *testing.T) {
	// A legal 8×8 nested loop pair must verify, and the recorded fuel must
	// cover the real execution (checked behaviorally in class_test.go).
	p := minimal()
	p.Pick = []Inst{
		{Op: OpLdi},                // 0
		{Op: OpLdi},                // 1
		{Op: OpLoop, B: 8, Imm: 1}, // 2: inner
		{Op: OpLoop, B: 8, Imm: 0}, // 3: outer
		{Op: OpTryPop, A: QShared}, // 4
		{Op: OpRet},                // 5
	}
	if err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// weights: pc0=8, pc1=64, pc2=64, pc3=8, pc4=1, pc5=1 → 146
	if p.pickSteps != 146 {
		t.Fatalf("pickSteps = %d, want 146", p.pickSteps)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no-queues", "enqueue:\n ret\npick:\n ret\n", "missing queues"},
		{"bad-mnemonic", "queues shared=1\nenqueue:\n frob r0\n ret\npick:\n ret\n", "unknown mnemonic"},
		{"bad-reg", "queues shared=1\nenqueue:\n ldi r9, 4\n ret\npick:\n ret\n", "bad register"},
		{"undefined-label", "queues shared=1\nenqueue:\n jmp nowhere\n ret\npick:\n ret\n", "undefined label"},
		{"dup-label", "queues shared=1\nenqueue:\na:\na:\n ret\npick:\n ret\n", "duplicate label"},
		{"bad-slice", "queues shared=1\nslice forever\nenqueue:\n ret\npick:\n ret\n", "bad slice"},
		{"stray-text", "what\nqueues shared=1\n", "before any section"},
		{"missing-pick", "queues shared=1\nenqueue:\n enq shared, 0\n ret\n", "missing pick"},
		{"bad-queue-kind", "queues shared=1\nenqueue:\n enq global, 0\n ret\npick:\n ret\n", "bad queue kind"},
		{"loop-count", "queues shared=1\nenqueue:\nb:\n loop 70, b\n ret\npick:\n ret\n", "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatal("Assemble accepted bad source")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, src := range []string{FIFOSource, DualQueueSource} {
		p := MustAssemble(src)
		got, err := Decode(Encode(p))
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
		}
		if err := Verify(got); err != nil {
			t.Fatalf("Verify decoded: %v", err)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	enc := Encode(FIFOProgram())
	cases := [][]byte{
		nil,
		[]byte("VP"),
		[]byte("NOPE" + strings.Repeat("\x00", 20)),
		enc[:4],                                // magic only
		enc[:len(enc)-3],                       // truncated code
		append(append([]byte{}, enc...), 0xff), // trailing byte
	}
	// Instruction count beyond MaxInsts must be rejected pre-allocation.
	huge := append([]byte{}, enc[:15]...)
	huge = append(huge, 0xff, 0xff)
	cases = append(cases, huge)
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Fatalf("case %d: Decode accepted malformed bytes", i)
		}
	}
}
