package enoki_test

import (
	"testing"
	"time"

	"enoki"
)

// trafficScenario is the README overload example's traffic plan: a
// shinjuku api tier and an unlimited CFS batch tier, two regions half a
// day out of phase, and a ×8 flash crowd on the api mid-run.
func trafficScenario() enoki.TrafficScenario {
	return enoki.TrafficScenario{
		Seed:     42,
		Rate:     400_000,
		Duration: 10 * time.Millisecond,
		Classes: []enoki.TrafficClass{
			{Name: "api", Policy: 1, Admission: 0, Weight: 0.7,
				Work: 30 * time.Microsecond, Fanout: 2, ReqPerConn: 2, Think: 300 * time.Microsecond},
			{Name: "batch", Policy: 0, Admission: 1, Weight: 0.3,
				Work: 100 * time.Microsecond},
		},
		Regions: []enoki.TrafficRegion{
			{Name: "us", Share: 0.5},
			{Name: "eu", Share: 0.5, Offset: 5 * time.Millisecond},
		},
		Shapes: []enoki.TrafficShape{
			{Kind: enoki.TrafficFlash, Class: 0, At: 4 * time.Millisecond, Dur: 3 * time.Millisecond, Mult: 8},
		},
	}
}

func overloadSystem(t *testing.T, opts ...enoki.Option) *enoki.System {
	t.Helper()
	sys := enoki.NewSystem(append([]enoki.Option{
		enoki.WithAdmission(
			enoki.AdmissionClass{Name: "api", Policy: 1, MaxInflight: 96,
				MaxRetries: 2, Backoff: 150 * time.Microsecond},
			enoki.AdmissionClass{Name: "batch", Policy: 0},
		),
		enoki.WithBrownout(0, 60, 10),
	}, opts...)...)
	if _, err := sys.Attach(1, enoki.GoModule(func(env enoki.Env) enoki.Scheduler {
		return enoki.NewShinjukuScheduler(env, 1, 0)
	})); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	sys.RegisterCFS(0)
	return sys
}

// TestDriveTrafficQuickstart is the README overload example: a flash
// crowd on the api tier sheds at admission, browns the module out and
// back, and the books balance.
func TestDriveTrafficQuickstart(t *testing.T) {
	sys := overloadSystem(t)
	defer sys.Close()
	rep := sys.DriveTraffic(trafficScenario(), 40*time.Millisecond)
	if len(rep.Violations) != 0 {
		t.Fatalf("conservation violations: %v", rep.Violations)
	}
	if rep.Connections == 0 || rep.Requests == 0 {
		t.Fatal("no traffic generated")
	}
	api := rep.Admission[0]
	if api.Shed == 0 || api.Retried == 0 || api.Dropped == 0 {
		t.Fatalf("flash crowd never exercised shedding: %+v", api)
	}
	if api.Admitted == 0 {
		t.Fatal("everything shed")
	}
	if rep.Admission[1].Shed != 0 {
		t.Fatalf("unlimited batch class shed %d", rep.Admission[1].Shed)
	}
	if !rep.BrownoutEntered || !rep.Recovered {
		t.Fatalf("brownout entered=%v recovered=%v", rep.BrownoutEntered, rep.Recovered)
	}
	for ci, c := range rep.Classes {
		if c.Requests != c.Completed {
			t.Fatalf("class %d: %d admitted, %d completed (undrained rig)", ci, c.Requests, c.Completed)
		}
	}
	// The controller is reachable for custom ingress paths too.
	if sys.AdmissionController(0) == nil {
		t.Fatal("AdmissionController(0) = nil")
	}
}

// TestDriveTrafficShardedDeterministic pins the sharded contract at the
// public surface: serial and parallel drives of the same scenario
// fingerprint identically.
func TestDriveTrafficShardedDeterministic(t *testing.T) {
	drive := func(parallel bool) enoki.TrafficReport {
		sys := overloadSystem(t,
			enoki.WithMachine(enoki.Machine80()),
			enoki.WithShards(0),
			enoki.WithParallelSim(parallel),
		)
		defer sys.Close()
		return sys.DriveTraffic(trafficScenario(), 40*time.Millisecond)
	}
	ser, par := drive(false), drive(true)
	if ser.Fingerprint() != par.Fingerprint() {
		t.Fatalf("fingerprints differ: %x vs %x", ser.Fingerprint(), par.Fingerprint())
	}
	if len(ser.Violations) != 0 {
		t.Fatalf("violations: %v", ser.Violations)
	}
}

// TestDriveTrafficRequiresAdmission pins the panic contract.
func TestDriveTrafficRequiresAdmission(t *testing.T) {
	sys := enoki.NewSystem()
	defer sys.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("DriveTraffic without WithAdmission did not panic")
		}
	}()
	sys.DriveTraffic(trafficScenario(), time.Millisecond)
}

// TestWithBrownoutRequiresAdmission pins the option-validation panics:
// WithBrownout without WithAdmission, and with an unknown class index.
func TestWithBrownoutRequiresAdmission(t *testing.T) {
	mustPanic := func(name string, opts ...enoki.Option) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		enoki.NewSystem(opts...)
	}
	mustPanic("WithBrownout alone", enoki.WithBrownout(0, 10, 2))
	mustPanic("WithBrownout out of range",
		enoki.WithAdmission(enoki.AdmissionClass{Name: "only"}),
		enoki.WithBrownout(3, 10, 2))
}

// TestClusterOfferAdmission is the fleet side of the quickstart: jobs
// offered through a cluster built with WithClusterAdmission shed when the
// inflight budget is exhausted, retry after backoff, and conserve.
func TestClusterOfferAdmission(t *testing.T) {
	cl := enoki.NewCluster(
		enoki.WithMachines(3),
		enoki.WithClusterAdmission(
			enoki.AdmissionClass{Name: "jobs", MaxInflight: 4, MaxRetries: 1, Backoff: time.Millisecond},
		),
	)
	defer cl.Close()
	admitted := 0
	for i := 0; i < 16; i++ {
		if cl.Offer(0, enoki.JobSpec{Cycles: 1, Run: 100 * time.Microsecond}) == enoki.AdmissionAdmitted {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("admitted %d of 16 with MaxInflight 4", admitted)
	}
	cl.RunUntilIdle()
	n := cl.Overload().Total()
	if n.Offered != 16+n.Retried {
		t.Fatalf("offer accounting off: %+v", n)
	}
	if n.Admitted != uint64(cl.Stats().Done) {
		t.Fatalf("admitted %d but %d jobs done", n.Admitted, cl.Stats().Done)
	}
	if v := cl.Overload().CheckConservation(false); len(v) != 0 {
		t.Fatalf("conservation violations: %v", v)
	}
	if cl.Backlog() != 0 {
		t.Fatalf("backlog %d after drain", cl.Backlog())
	}
}

// TestTrafficFleetDriverQuickstart drives an open-loop scenario against a
// cluster's Offer front door and checks the merged accounting.
func TestTrafficFleetDriverQuickstart(t *testing.T) {
	cl := enoki.NewCluster(
		enoki.WithMachines(4),
		enoki.WithClusterAdmission(
			enoki.AdmissionClass{Name: "api", MaxInflight: 24, MaxRetries: 2, Backoff: 400 * time.Microsecond},
			enoki.AdmissionClass{Name: "batch"},
		),
	)
	defer cl.Close()
	sc := enoki.TrafficScenario{
		Seed:     7,
		Rate:     120_000,
		Duration: 3 * time.Millisecond,
		Classes: []enoki.TrafficClass{
			{Name: "api", Weight: 0.7, Work: 80 * time.Microsecond},
			{Name: "batch", Admission: 1, Weight: 0.3, Work: 150 * time.Microsecond},
		},
		Shapes: []enoki.TrafficShape{
			{Kind: enoki.TrafficFlash, Class: 0, At: time.Millisecond, Dur: time.Millisecond, Mult: 6},
		},
	}
	f := enoki.NewTrafficFleetDriver(cl, sc)
	f.Start()
	cl.RunUntilIdle()
	if v := f.CheckConservation(); len(v) != 0 {
		t.Fatalf("conservation violations: %v", v)
	}
	n := f.Counters()
	if f.Connections() == 0 || n.Admitted == 0 || n.Shed == 0 {
		t.Fatalf("fleet drive too quiet: %d conns, %+v", f.Connections(), n)
	}
	if n.Admitted != uint64(cl.Stats().Done) {
		t.Fatalf("admitted %d but %d jobs done", n.Admitted, cl.Stats().Done)
	}
}
