package bench

import (
	"testing"
	"time"

	"enoki/internal/kernel"
)

// TestFleetDriveDeterministic runs a scaled-down fleet drive both ways: the
// per-machine fingerprints must match and every job must complete despite
// the mid-run machine kill — the same verdicts the full artifact gates on,
// cheap enough for the test suite.
func TestFleetDriveDeterministic(t *testing.T) {
	const machines, jobs = 6, 120
	serial, fpSerial, virt, _ := fleetDrive(machines, kernel.Machine8(), jobs, time.Millisecond, false)
	par, fpPar, _, _ := fleetDrive(machines, kernel.Machine8(), jobs, time.Millisecond, true)
	if fpSerial != fpPar {
		t.Fatalf("fingerprints diverge: %016x vs %016x", fpSerial, fpPar)
	}
	if serial != par {
		t.Fatalf("stats diverge:\nserial   %+v\nparallel %+v", serial, par)
	}
	if serial.Done != jobs {
		t.Fatalf("done = %d, want %d", serial.Done, jobs)
	}
	if serial.Lost == 0 {
		t.Fatal("the kill lost no placements — failover not exercised")
	}
	if virt <= 0 || serial.Epochs == 0 {
		t.Fatalf("drive did not advance: virt %v, %d epochs", virt, serial.Epochs)
	}
}
