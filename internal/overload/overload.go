// Package overload is the admission-control plane: per-class load
// shedding with bounded retry, and brownout graceful degradation driven
// by hysteresis on sampled queue depth.
//
// The controller sits at ingress — a traffic rig or the cluster's job
// front door calls Admit before any task is spawned — never in the
// kernel's pick path. Admit is the hot path and performs zero heap
// allocations: it reads and bumps plain counter fields on a
// pre-allocated per-class slice (ratchet-tested).
//
// Accounting is conservation-checked. Every call to Admit counts one
// Offered attempt and resolves it as exactly one of Admitted or Shed;
// every Shed resolves as exactly one of Retried (the caller re-offers
// after Backoff) or Dropped. So for each class:
//
//	Offered == Admitted + Shed
//	Shed    == Retried + Dropped
//
// must hold at every instant, and the chaos oracle enforces it. Unique
// requests are Offered - Retried. Config.LeakShed re-introduces the
// seeded accounting bug — a shed attempt that exhausts its retry budget
// is silently forgotten instead of counted Dropped — which the oracle
// must catch (and ddmin must shrink) in the t1: traffic campaigns.
//
// Brownout is a two-state hysteresis machine per class: Sample feeds a
// queue-depth observation (from the kernel metrics layer); depth at or
// above EnterDepth flips the class degraded, and it stays degraded until
// depth falls to ExitDepth or below. Transitions are timestamped so the
// bench can measure brownout-recovery time. What "degraded" means is the
// scheduler module's business (see core.BrownoutMode): shinjuku drops
// its tight preemption slice, locality drops LLC spillover.
package overload

import (
	"fmt"
	"time"
)

// Verdict is Admit's resolution of one offered attempt.
type Verdict uint8

const (
	// Admitted: run it. The caller owes one Done when the work finishes.
	Admitted Verdict = iota
	// Retry: shed, but the attempt budget allows re-offering after
	// Backoff(class, attempt).
	Retry
	// Dropped: shed with the retry budget exhausted. Terminal.
	Dropped
)

func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case Retry:
		return "retry"
	case Dropped:
		return "dropped"
	}
	return fmt.Sprintf("Verdict(%d)", uint8(v))
}

// ClassConfig parameterizes one admission class.
type ClassConfig struct {
	// Name labels the class in reports and violations.
	Name string
	// Policy is the scheduler class id this admission class maps to —
	// brownout samples that class's runnable depth and degrades its
	// module.
	Policy int
	// MaxInflight is the admission ceiling: an offer arriving with
	// MaxInflight admitted-but-unfinished requests already in flight is
	// shed. Zero means unlimited (the class never sheds).
	MaxInflight int
	// MaxRetries bounds re-offers of shed work; attempt numbers run
	// 0..MaxRetries, so a request is offered at most MaxRetries+1 times.
	MaxRetries int
	// Backoff is the base retry delay; it doubles per attempt (capped at
	// 64× base).
	Backoff time.Duration
	// EnterDepth and ExitDepth are the brownout hysteresis thresholds on
	// sampled queue depth: degrade at >= EnterDepth, recover at
	// <= ExitDepth. EnterDepth 0 disables brownout for the class.
	EnterDepth int
	ExitDepth  int
}

// Config assembles a Controller.
type Config struct {
	Classes []ClassConfig
	// LeakShed enables the seeded accounting bug: drops are not counted,
	// breaking Shed == Retried + Dropped. For chaos campaigns only.
	LeakShed bool
}

// Counters is one class's (or a merged total's) accounting snapshot.
type Counters struct {
	Offered        uint64 `json:"offered"`
	Admitted       uint64 `json:"admitted"`
	Shed           uint64 `json:"shed"`
	Retried        uint64 `json:"retried"`
	Dropped        uint64 `json:"dropped"`
	BrownoutEnters uint64 `json:"brownout_enters"`
	BrownoutExits  uint64 `json:"brownout_exits"`
}

// Add returns the element-wise sum (for merging per-shard controllers).
func (c Counters) Add(o Counters) Counters {
	c.Offered += o.Offered
	c.Admitted += o.Admitted
	c.Shed += o.Shed
	c.Retried += o.Retried
	c.Dropped += o.Dropped
	c.BrownoutEnters += o.BrownoutEnters
	c.BrownoutExits += o.BrownoutExits
	return c
}

// Transition records one brownout state change, timestamped in the
// sampler's clock (virtual nanoseconds in the simulator).
type Transition struct {
	Class int   `json:"class"`
	At    int64 `json:"at"`
	Enter bool  `json:"enter"`
}

type classState struct {
	cfg      ClassConfig
	n        Counters
	inflight int
	degraded bool
}

// Controller is one admission/brownout control plane. It is not
// goroutine-safe: in sharded rigs each shard owns its own Controller
// (merged with Counters.Add afterwards), which is also what keeps
// serial and parallel drives byte-identical.
type Controller struct {
	classes     []classState
	leak        bool
	transitions []Transition
}

// New builds a Controller; class indexes follow cfg.Classes order.
func New(cfg Config) *Controller {
	c := &Controller{classes: make([]classState, len(cfg.Classes)), leak: cfg.LeakShed}
	for i, cc := range cfg.Classes {
		if cc.ExitDepth > cc.EnterDepth && cc.EnterDepth > 0 {
			panic(fmt.Sprintf("overload: class %s ExitDepth %d above EnterDepth %d breaks hysteresis",
				cc.Name, cc.ExitDepth, cc.EnterDepth))
		}
		c.classes[i].cfg = cc
	}
	return c
}

// NumClasses returns the class count.
func (c *Controller) NumClasses() int { return len(c.classes) }

// Class returns class i's config.
func (c *Controller) Class(i int) ClassConfig { return c.classes[i].cfg }

// Admit resolves one offered attempt for class i. attempt is 0 for a
// fresh request and increments per retry. Zero-alloc hot path.
func (c *Controller) Admit(i, attempt int) Verdict {
	cs := &c.classes[i]
	cs.n.Offered++
	if cs.cfg.MaxInflight == 0 || cs.inflight < cs.cfg.MaxInflight {
		cs.n.Admitted++
		cs.inflight++
		return Admitted
	}
	cs.n.Shed++
	if attempt < cs.cfg.MaxRetries {
		cs.n.Retried++
		return Retry
	}
	if !c.leak {
		// The seeded-bug configuration omits this count: the dropped
		// attempt vanishes from the books and the conservation oracle
		// flags Shed != Retried + Dropped.
		cs.n.Dropped++
	}
	return Dropped
}

// Done releases one admitted request's inflight slot. Exactly one Done
// per Admitted verdict.
func (c *Controller) Done(i int) {
	c.classes[i].inflight--
}

// Inflight returns class i's admitted-but-unfinished count.
func (c *Controller) Inflight(i int) int { return c.classes[i].inflight }

// Backoff returns the retry delay before re-offering at attempt+1:
// base << attempt, capped at 64× base. Pure and zero-alloc.
func (c *Controller) Backoff(i, attempt int) time.Duration {
	d := c.classes[i].cfg.Backoff
	for ; attempt > 0 && d < c.classes[i].cfg.Backoff<<6; attempt-- {
		d <<= 1
	}
	return d
}

// Sample feeds one queue-depth observation for class i at time now and
// runs the hysteresis machine. It reports whether the brownout state
// changed; the caller propagates a change to the module's degraded mode.
func (c *Controller) Sample(i, depth int, now int64) (changed bool) {
	cs := &c.classes[i]
	if cs.cfg.EnterDepth <= 0 {
		return false
	}
	if !cs.degraded && depth >= cs.cfg.EnterDepth {
		cs.degraded = true
		cs.n.BrownoutEnters++
		c.transitions = append(c.transitions, Transition{Class: i, At: now, Enter: true})
		return true
	}
	if cs.degraded && depth <= cs.cfg.ExitDepth {
		cs.degraded = false
		cs.n.BrownoutExits++
		c.transitions = append(c.transitions, Transition{Class: i, At: now, Enter: false})
		return true
	}
	return false
}

// Degraded reports class i's current brownout state.
func (c *Controller) Degraded(i int) bool { return c.classes[i].degraded }

// Counters returns class i's accounting snapshot.
func (c *Controller) Counters(i int) Counters { return c.classes[i].n }

// Total returns the accounting summed over every class.
func (c *Controller) Total() Counters {
	var t Counters
	for i := range c.classes {
		t = t.Add(c.classes[i].n)
	}
	return t
}

// Transitions returns every brownout transition in sample order.
func (c *Controller) Transitions() []Transition { return c.transitions }

// CheckConservation returns one violation string per broken accounting
// identity — empty means the books balance. finalInflight additionally
// requires every admitted request to have completed (Done), which a
// drained rig must satisfy even across module kills and rehoming.
func (c *Controller) CheckConservation(finalInflight bool) []string {
	var v []string
	for i := range c.classes {
		cs := &c.classes[i]
		if cs.n.Offered != cs.n.Admitted+cs.n.Shed {
			v = append(v, fmt.Sprintf("conservation: class %s offered %d != admitted %d + shed %d",
				cs.cfg.Name, cs.n.Offered, cs.n.Admitted, cs.n.Shed))
		}
		if cs.n.Shed != cs.n.Retried+cs.n.Dropped {
			v = append(v, fmt.Sprintf("conservation: class %s shed %d != retried %d + dropped %d",
				cs.cfg.Name, cs.n.Shed, cs.n.Retried, cs.n.Dropped))
		}
		if finalInflight && cs.inflight != 0 {
			v = append(v, fmt.Sprintf("conservation: class %s still has %d admitted requests in flight",
				cs.cfg.Name, cs.inflight))
		}
		if cs.n.BrownoutEnters < cs.n.BrownoutExits {
			v = append(v, fmt.Sprintf("brownout: class %s exited %d times but entered only %d",
				cs.cfg.Name, cs.n.BrownoutExits, cs.n.BrownoutEnters))
		}
	}
	return v
}

// Recovery returns the duration between class i's last brownout entry
// and the exit that followed it, and whether such a completed
// episode exists. This is the brownout-recovery SLO measurement.
func (c *Controller) Recovery(i int) (time.Duration, bool) {
	var enter int64
	haveEnter := false
	var rec time.Duration
	ok := false
	for _, t := range c.transitions {
		if t.Class != i {
			continue
		}
		if t.Enter {
			enter, haveEnter = t.At, true
		} else if haveEnter {
			rec, ok = time.Duration(t.At-enter), true
			haveEnter = false
		}
	}
	return rec, ok
}
