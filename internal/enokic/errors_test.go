package enokic

import (
	"errors"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/sched/fifo"
	"enoki/internal/sched/wfq"
	"enoki/internal/schedtest"
	"enoki/internal/sim"
)

// TestTryLoadDuplicatePolicy pins the typed-failure contract: loading under
// a policy id the kernel already has a class for fails with a wrapped
// ErrDuplicatePolicy, and the failure registers nothing.
func TestTryLoadDuplicatePolicy(t *testing.T) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	if _, err := TryLoad(k, policyEnoki, DefaultConfig(), fifoFactory); err != nil {
		t.Fatalf("first load failed: %v", err)
	}
	_, err := TryLoad(k, policyEnoki, DefaultConfig(), wfqFactory)
	if !errors.Is(err, ErrDuplicatePolicy) {
		t.Fatalf("err = %v, want errors.Is(…, ErrDuplicatePolicy)", err)
	}
	if errors.Is(err, ErrPolicyMismatch) {
		t.Error("duplicate-policy error must not also match ErrPolicyMismatch")
	}
}

// TestTryLoadPolicyMismatch: the module's GetPolicy disagrees with the load
// policy — a wrapped ErrPolicyMismatch naming both ids, nothing registered.
func TestTryLoadPolicyMismatch(t *testing.T) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	_, err := TryLoad(k, policyEnoki, DefaultConfig(), func(env core.Env) core.Scheduler {
		return wfq.New(env, policyEnoki+5) // wrong policy on purpose
	})
	if !errors.Is(err, ErrPolicyMismatch) {
		t.Fatalf("err = %v, want errors.Is(…, ErrPolicyMismatch)", err)
	}
	if k.ClassByID(policyEnoki) != nil {
		t.Error("failed load left a class registered")
	}
}

// TestUpgradeAfterKillReturnsErrModuleKilled: upgrading a module the fault
// layer killed is refused with the sentinel, and the done callback never
// fires.
func TestUpgradeAfterKillReturnsErrModuleKilled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PntErrBudget = 1
	k, a := newRig(t, func(env core.Env) core.Scheduler {
		return &schedtest.Forger{Scheduler: fifo.New(env, policyEnoki), ForgeAfterPicks: 2}
	})
	a.cfg = cfg
	a.pntBudget = 1
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(2*time.Millisecond, 500*time.Microsecond))
	}
	k.RunFor(50 * time.Millisecond)
	if !a.Killed() {
		t.Fatal("forger was not killed; cannot test upgrade-after-kill")
	}

	fired := false
	err := a.Upgrade(fifoFactory, func(UpgradeReport) { fired = true })
	if !errors.Is(err, ErrModuleKilled) {
		t.Fatalf("err = %v, want errors.Is(…, ErrModuleKilled)", err)
	}
	k.RunFor(10 * time.Millisecond)
	if fired {
		t.Error("done callback fired for a refused upgrade")
	}
}

// TestPickErrorIsComparableSentinel: each PickError cause doubles as an
// errors.Is target, so callers can branch on why a pick was rejected
// without string matching.
func TestPickErrorIsComparableSentinel(t *testing.T) {
	var err error = core.PickStale
	if !errors.Is(err, core.PickStale) {
		t.Error("PickStale does not match itself via errors.Is")
	}
	if errors.Is(err, core.PickNotQueued) {
		t.Error("PickStale matches PickNotQueued")
	}
	wrapped := wrapPick(core.PickWrongCPU)
	if !errors.Is(wrapped, core.PickWrongCPU) {
		t.Errorf("wrapped PickWrongCPU not matched: %v", wrapped)
	}
	if got := core.PickStale.Error(); got == "" {
		t.Error("PickError.Error returned an empty string")
	}
}

func wrapPick(e core.PickError) error {
	return &wrappedErr{e}
}

type wrappedErr struct{ inner error }

func (w *wrappedErr) Error() string { return "pick failed: " + w.inner.Error() }
func (w *wrappedErr) Unwrap() error { return w.inner }
