package workload

import (
	"time"

	"enoki/internal/arachne"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/stats"
)

// MemcachedConfig is the Fig 3 workload: a mutilate-style open-loop load
// with the Facebook ETC mix — small values, Zipf key popularity, 3%
// updates — against a memcached server. Four load-generating clients are
// modelled as one Poisson process of their aggregate rate (the paper's
// clients exist to saturate the server, which an open-loop arrival process
// does directly).
type MemcachedConfig struct {
	// Rate is offered load, req/s.
	Rate float64
	// ServiceMean/ServiceSigma shape the per-request service time
	// (log-normal-ish via clamped normal); ETC requests are small.
	ServiceMean  time.Duration
	ServiceSigma time.Duration
	// UpdateFrac is the SET fraction (3%), costing UpdateFactor× a GET.
	UpdateFrac   float64
	UpdateFactor float64
	// Keys is the keyspace size for the Zipf popularity model; hot keys
	// hit warmer code paths and run slightly faster.
	Keys     int
	Warmup   time.Duration
	Duration time.Duration
	Seed     uint64
}

func (c *MemcachedConfig) defaults() {
	if c.ServiceMean == 0 {
		c.ServiceMean = 18 * time.Microsecond
	}
	if c.ServiceSigma == 0 {
		c.ServiceSigma = 6 * time.Microsecond
	}
	if c.UpdateFrac == 0 {
		c.UpdateFrac = 0.03
	}
	if c.UpdateFactor == 0 {
		c.UpdateFactor = 1.6
	}
	if c.Keys == 0 {
		c.Keys = 1_000_000 / 1000 // bucketed: 1M records, 1000 popularity classes
	}
	if c.Warmup == 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 0xe7c
	}
}

// MemcachedResult reports latency and achieved throughput.
type MemcachedResult struct {
	P50, P99, Mean time.Duration
	Completed      uint64
	Achieved       float64
}

// memcachedGen produces the service time of the next request.
type memcachedGen struct {
	cfg  MemcachedConfig
	rng  *ktime.Rand
	zipf *ktime.Zipf
}

func newMemcachedGen(cfg MemcachedConfig) *memcachedGen {
	rng := ktime.NewRand(cfg.Seed)
	return &memcachedGen{cfg: cfg, rng: rng, zipf: ktime.NewZipf(rng, cfg.Keys, 0.99)}
}

func (g *memcachedGen) next() time.Duration {
	svc := g.rng.NormDuration(g.cfg.ServiceMean, g.cfg.ServiceSigma)
	if svc < 2*time.Microsecond {
		svc = 2 * time.Microsecond
	}
	// Cold keys miss caches: the coldest 90% of popularity classes cost
	// ~25% extra.
	if g.zipf.Next() > g.cfg.Keys/10 {
		svc += svc / 4
	}
	if g.rng.Bernoulli(g.cfg.UpdateFrac) {
		svc = time.Duration(float64(svc) * g.cfg.UpdateFactor)
	}
	return svc
}

// RunMemcachedThreads runs the baseline server: plain memcached's
// thread-per-connection-pool design, where each worker thread owns a set of
// connections and serves only its own queue (no stealing). This is exactly
// the structure Arachne's shared-queue user-level threading replaces, and
// why the CFS baseline falls behind at high load (§5.6).
func RunMemcachedThreads(k *kernel.Kernel, policy int, threads int, cfg MemcachedConfig) MemcachedResult {
	cfg.defaults()
	gen := newMemcachedGen(cfg)
	var hist stats.Histogram
	queues := make([][]rocksReq, threads)
	workers := make([]*kernel.Task, threads)
	var done uint64
	warmEnd := k.Now().Add(cfg.Warmup)

	type mcWorker struct {
		current *rocksReq
	}
	for i := 0; i < threads; i++ {
		i := i
		w := &mcWorker{}
		workers[i] = k.Spawn("memcached-worker", policy, kernel.BehaviorFunc(
			func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
				if w.current != nil {
					if k.Now().After(warmEnd) {
						hist.Record(k.Now().Sub(w.current.arrival))
						done++
					}
					w.current = nil
				}
				if len(queues[i]) == 0 {
					return kernel.Action{Op: kernel.OpBlock, Recheck: func() bool {
						return len(queues[i]) > 0
					}}
				}
				req := queues[i][0]
				queues[i] = queues[i][1:]
				w.current = &req
				return kernel.Action{Run: req.service, Op: kernel.OpContinue}
			}))
	}

	rng := ktime.NewRand(cfg.Seed ^ 0xa11)
	gap := time.Duration(float64(time.Second) / cfg.Rate)
	end := k.Now().Add(cfg.Warmup + cfg.Duration)
	conn := 0
	var arrive func()
	arrive = func() {
		if k.Now().After(end) {
			return
		}
		// Connections hash round-robin across worker threads.
		i := conn % threads
		conn++
		// Each request costs the thread an extra trip through the
		// kernel network path (epoll wakeup, socket syscalls) that
		// Arachne's polling runtime mostly avoids.
		queues[i] = append(queues[i], rocksReq{arrival: k.Now(), service: gen.next() + 5*time.Microsecond})
		if workers[i].State() == kernel.StateBlocked {
			k.Wake(workers[i])
		}
		k.Engine().After(rng.ExpDuration(gap), arrive)
	}
	k.Engine().After(0, arrive)
	k.RunFor(cfg.Warmup + cfg.Duration + 50*time.Millisecond)
	return MemcachedResult{
		P50: hist.Quantile(0.5), P99: hist.Quantile(0.99), Mean: hist.Mean(),
		Completed: done, Achieved: float64(done) / cfg.Duration.Seconds(),
	}
}

// RunMemcachedArachne runs the server on an Arachne runtime (native or
// Enoki-arbitrated — the caller wires the arbiter): each request becomes a
// user-level thread.
func RunMemcachedArachne(k *kernel.Kernel, rt *arachne.Runtime, cfg MemcachedConfig) MemcachedResult {
	cfg.defaults()
	gen := newMemcachedGen(cfg)
	var hist stats.Histogram
	var done uint64
	k.RunFor(2 * time.Millisecond) // grants settle
	warmEnd := k.Now().Add(cfg.Warmup)

	rng := ktime.NewRand(cfg.Seed ^ 0xa11)
	gap := time.Duration(float64(time.Second) / cfg.Rate)
	end := k.Now().Add(cfg.Warmup + cfg.Duration)
	var arrive func()
	arrive = func() {
		if k.Now().After(end) {
			return
		}
		arrival := k.Now()
		rt.Submit(arachne.UserThread{
			Service: gen.next() + time.Microsecond,
			Done: func() {
				if k.Now().After(warmEnd) {
					hist.Record(k.Now().Sub(arrival))
					done++
				}
			},
		})
		k.Engine().After(rng.ExpDuration(gap), arrive)
	}
	k.Engine().After(0, arrive)
	k.RunFor(cfg.Warmup + cfg.Duration + 50*time.Millisecond)
	return MemcachedResult{
		P50: hist.Quantile(0.5), P99: hist.Quantile(0.99), Mean: hist.Mean(),
		Completed: done, Achieved: float64(done) / cfg.Duration.Seconds(),
	}
}
