package core

import "fmt"

// Schedulable is proof that a task may run on a particular CPU (§3.1). The
// framework (internal/enokic) issues one whenever a task becomes runnable on
// a run queue — at task_new, task_wakeup, task_preempt, task_yield, and
// migrate_task_rq — and the scheduler must hand it back as the return value
// of pick_next_task before the kernel will run the task on that CPU.
//
// In the paper this type is affine: Rust's type system forbids copying or
// cloning it, so a scheduler cannot retain stale proof. Go has no move
// semantics, so the same property is enforced at runtime instead: each token
// carries a generation number, the framework invalidates the generation when
// the token is consumed, and a stale or foreign token at pick_next_task
// fails validation and bounces back through pnt_err. The bug class the paper
// catches at compile time is caught here before the kernel acts on it.
type Schedulable struct {
	pid      int
	cpu      int
	gen      uint64
	consumed bool
}

// NewSchedulable constructs a token. Only the framework (enokic, or the
// replay runtime reconstructing recorded tokens) should call this; a
// scheduler forging tokens is outside Enoki's "trusted but clumsy" threat
// model and will fail generation validation anyway.
func NewSchedulable(pid, cpu int, gen uint64) *Schedulable {
	return &Schedulable{pid: pid, cpu: cpu, gen: gen}
}

// PID returns the task the token vouches for.
func (s *Schedulable) PID() int { return s.pid }

// CPU returns the CPU the task may run on.
func (s *Schedulable) CPU() int { return s.cpu }

// Gen returns the token's generation.
func (s *Schedulable) Gen() uint64 { return s.gen }

// Consumed reports whether the token was already returned to the framework.
func (s *Schedulable) Consumed() bool { return s.consumed }

// Consume marks the token as spent. The framework calls this when the token
// crosses back; a consumed token never validates again.
func (s *Schedulable) Consume() { s.consumed = true }

// Ref returns the serialisable reference used in messages and record logs.
func (s *Schedulable) Ref() *SchedulableRef {
	if s == nil {
		return nil
	}
	return &SchedulableRef{PID: s.pid, CPU: s.cpu, Gen: s.gen}
}

// String renders the token for diagnostics.
func (s *Schedulable) String() string {
	if s == nil {
		return "Schedulable(nil)"
	}
	return fmt.Sprintf("Schedulable(pid=%d cpu=%d gen=%d)", s.pid, s.cpu, s.gen)
}

// SchedulableRef is the wire form of a Schedulable: what the record log and
// message structs carry across the (simulated) user/kernel boundary.
type SchedulableRef struct {
	PID int
	CPU int
	Gen uint64
}

// Equal compares two refs, treating nil as "no token".
func (r *SchedulableRef) Equal(o *SchedulableRef) bool {
	if r == nil || o == nil {
		return r == nil && o == nil
	}
	return r.PID == o.PID && r.CPU == o.CPU && r.Gen == o.Gen
}

// Materialize rebuilds a token object from the ref (used by replay).
func (r *SchedulableRef) Materialize() *Schedulable {
	if r == nil {
		return nil
	}
	return NewSchedulable(r.PID, r.CPU, r.Gen)
}
