// Package fifo is the minimal Enoki scheduler: a per-core first-come,
// first-serve queue, the example walked through in §3.1 of the paper. It
// exists as the quickstart module and as the simplest possible exercise of
// the EnokiScheduler trait; every line is written against the public
// libEnoki API (internal/core) only.
package fifo

import (
	"time"

	"enoki/internal/core"
)

type entry struct {
	pid   int
	sched *core.Schedulable
}

// Sched is a per-core FIFO Enoki scheduler.
type Sched struct {
	core.BaseScheduler
	env    core.Env
	policy int
	mu     core.Locker
	queues [][]entry
}

var _ core.Scheduler = (*Sched)(nil)

// New constructs the module for the given policy number.
func New(env core.Env, policy int) *Sched {
	s := &Sched{
		env:    env,
		policy: policy,
		mu:     env.NewMutex("fifo"),
		queues: make([][]entry, env.NumCPUs()),
	}
	return s
}

// GetPolicy implements core.Scheduler.
func (s *Sched) GetPolicy() int { return s.policy }

func (s *Sched) push(cpu int, pid int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queues[cpu] = append(s.queues[cpu], entry{pid: pid, sched: sched})
}

// TaskNew implements core.Scheduler: queue the new task at the back of its
// assigned core.
func (s *Sched) TaskNew(pid int, runtime time.Duration, runnable bool, allowed []int, sched *core.Schedulable) {
	if sched != nil {
		s.push(sched.CPU(), pid, sched)
	}
}

// TaskWakeup implements core.Scheduler.
func (s *Sched) TaskWakeup(pid int, runtime time.Duration, deferrable bool, lastCPU, wakeCPU int, sched *core.Schedulable) {
	s.push(wakeCPU, pid, sched)
}

// TaskPreempt implements core.Scheduler.
func (s *Sched) TaskPreempt(pid int, runtime time.Duration, cpu int, preempted bool, sched *core.Schedulable) {
	s.push(cpu, pid, sched)
}

// TaskYield implements core.Scheduler.
func (s *Sched) TaskYield(pid int, runtime time.Duration, cpu int, sched *core.Schedulable) {
	s.push(cpu, pid, sched)
}

// PickNextTask implements core.Scheduler: pop the head of this core's queue
// and return its proof.
func (s *Sched) PickNextTask(cpu int, curr *core.Schedulable, currRuntime time.Duration) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[cpu]
	if len(q) == 0 {
		return nil
	}
	head := q[0]
	s.queues[cpu] = q[1:]
	return head.sched
}

// SelectTaskRQ implements core.Scheduler: keep tasks where they were; place
// brand-new tasks on the shortest queue.
func (s *Sched) SelectTaskRQ(pid, prevCPU int, wakeup bool) int {
	if wakeup {
		return prevCPU
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	best, bestLen := prevCPU, 1<<30
	for cpu, q := range s.queues {
		if len(q) < bestLen {
			best, bestLen = cpu, len(q)
		}
	}
	return best
}

// MigrateTaskRQ implements core.Scheduler: move the task's entry to the new
// core and hand back the old proof.
func (s *Sched) MigrateTaskRQ(pid, newCPU int, sched *core.Schedulable) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	for cpu, q := range s.queues {
		for i, e := range q {
			if e.pid == pid {
				old := e.sched
				s.queues[cpu] = append(append([]entry{}, q[:i]...), q[i+1:]...)
				s.queues[newCPU] = append(s.queues[newCPU], entry{pid: pid, sched: sched})
				return old
			}
		}
	}
	// Not queued (e.g. a wake-time move already covered by task_wakeup):
	// keep the new proof queued so the task is not lost.
	s.queues[newCPU] = append(s.queues[newCPU], entry{pid: pid, sched: sched})
	return nil
}

// TaskDeparted implements core.Scheduler.
func (s *Sched) TaskDeparted(pid, cpu int) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c, q := range s.queues {
		for i, e := range q {
			if e.pid == pid {
				s.queues[c] = append(append([]entry{}, q[:i]...), q[i+1:]...)
				return e.sched
			}
		}
	}
	return nil
}

// PntErr implements core.Scheduler: take the rejected proof back and requeue
// the task at the head of its core's queue.
func (s *Sched) PntErr(cpu int, pid int, err core.PickError, sched *core.Schedulable) {
	if sched == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := sched.CPU()
	s.queues[c] = append([]entry{{pid: pid, sched: sched}}, s.queues[c]...)
}

// ReregisterPrepare implements core.Scheduler: export the queues wholesale.
func (s *Sched) ReregisterPrepare() *core.TransferOut {
	return &core.TransferOut{State: s.queues}
}

// ReregisterInit implements core.Scheduler: adopt the previous version's
// queues.
func (s *Sched) ReregisterInit(in *core.TransferIn) {
	if in == nil || in.State == nil {
		return
	}
	if qs, ok := in.State.([][]entry); ok && len(qs) == len(s.queues) {
		s.queues = qs
	}
}

// QueueLen reports the queue depth on cpu (for tests and examples).
func (s *Sched) QueueLen(cpu int) int { return len(s.queues[cpu]) }
