package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"enoki/internal/ktime"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 50*time.Microsecond || mean > 51*time.Microsecond {
		t.Fatalf("Mean = %v", mean)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	r := ktime.NewRand(5)
	var samples []time.Duration
	for i := 0; i < 100000; i++ {
		d := r.ExpDuration(100 * time.Microsecond)
		samples = append(samples, d)
		h.Record(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > 0.03 {
			t.Fatalf("q=%v: got %v want ~%v (err %.1f%%)", q, got, exact, 100*relErr)
		}
	}
}

func TestHistogramQuantileClamping(t *testing.T) {
	var h Histogram
	h.Record(5 * time.Microsecond)
	if h.Quantile(-1) != 5*time.Microsecond || h.Quantile(2) != 5*time.Microsecond {
		t.Fatal("out-of-range q not clamped")
	}
	if h.Quantile(0.5) != 5*time.Microsecond {
		t.Fatalf("single-sample quantile = %v", h.Quantile(0.5))
	}
}

func TestHistogramSubMicrosecond(t *testing.T) {
	var h Histogram
	h.Record(0) // clamps to 1ns
	h.Record(10 * time.Nanosecond)
	if h.Count() != 2 {
		t.Fatal("tiny values lost")
	}
	if h.Quantile(1.0) > 15*time.Nanosecond {
		t.Fatalf("p100 = %v", h.Quantile(1.0))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 1000; i++ {
		a.Record(time.Microsecond)
		b.Record(time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if q := a.Quantile(0.25); q < time.Microsecond || q > 1100*time.Nanosecond {
		t.Fatalf("p25 = %v", q)
	}
	if q := a.Quantile(0.99); q < 900*time.Microsecond {
		t.Fatalf("p99 = %v", q)
	}
	var empty Histogram
	a.Merge(&empty) // must be a no-op
	if a.Count() != 2000 {
		t.Fatal("merging empty changed count")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-9 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	if math.Abs(w.Stddev()-2.138) > 0.01 {
		t.Fatalf("Stddev = %v", w.Stddev())
	}
	var single Welford
	single.Add(3)
	if single.Stddev() != 0 {
		t.Fatal("Stddev of one sample not 0")
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Fatal("Geomean(nil) != 0")
	}
	g := Geomean([]float64{1, 4})
	if math.Abs(g-2) > 1e-9 {
		t.Fatalf("Geomean = %v", g)
	}
	// Negative values contribute magnitude (Table 5 convention).
	g = Geomean([]float64{-1, 4})
	if math.Abs(g-2) > 1e-9 {
		t.Fatalf("Geomean with negatives = %v", g)
	}
	// A zero must not zero the aggregate.
	if Geomean([]float64{0, 100}) <= 0 {
		t.Fatal("zero annihilated geomean")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Bench", "CFS", "WFQ")
	tab.Row("pipe", 3.0, 3.6)
	tab.Row("latency", 101*time.Microsecond, 104*time.Microsecond)
	s := tab.String()
	if !strings.Contains(s, "Bench") || !strings.Contains(s, "3.60") {
		t.Fatalf("table output:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("missing rule:\n%s", s)
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		500 * time.Nanosecond:   "500ns",
		3600 * time.Nanosecond:  "3.6µs",
		2500 * time.Microsecond: "2.50ms",
		3 * time.Second:         "3.00s",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

// Property: for any batch of durations, the histogram's p0/p100 equal the
// true min/max, count matches, and quantiles are monotone in q.
func TestQuickHistogramProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := ktime.NewRand(seed)
		var h Histogram
		n := 1 + r.Intn(500)
		min, max := time.Duration(math.MaxInt64), time.Duration(0)
		for i := 0; i < n; i++ {
			d := time.Duration(1 + r.Intn(1e9))
			h.Record(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		if h.Count() != uint64(n) || h.Min() != min || h.Max() != max {
			return false
		}
		prev := time.Duration(0)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev || v < min || v > max {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
