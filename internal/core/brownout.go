package core

// BrownoutMode is the optional degraded-mode surface of a scheduler
// module. A class that implements it declares what it is willing to give
// up under overload: shinjuku drops its tight preemption slice, locality
// drops LLC spillover. The overload control plane flips the mode by
// hysteresis on sampled queue depth (see internal/overload); the module
// must treat both directions as cheap, idempotent state changes — the
// sampler may repeat a state.
//
// SetDegraded is a module crossing like any other: the framework wraps
// it in SafeCall, and a panic inside it kills the module through the
// normal fault road.
type BrownoutMode interface {
	SetDegraded(on bool)
}
