package bench

import (
	"testing"

	"enoki/internal/kernel"
)

// TestRunOverloadSmoke runs the overload benchmark at the CI scale (the
// 8-CPU machine) and requires every SLO verdict to pass — the same gate
// `enokibench -overload` ships in BENCH_cluster.json at the 80-CPU scale.
func TestRunOverloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("overload bench drive in -short")
	}
	r := RunOverload(kernel.Machine8())
	if len(r.SLOs) < 4 {
		t.Fatalf("only %d SLO verdicts", len(r.SLOs))
	}
	for _, s := range r.SLOs {
		t.Logf("%-22s target=%q measured=%q pass=%v", s.Name, s.Target, s.Measured, s.Pass)
		if !s.Pass {
			t.Errorf("SLO %s failed: want %s, measured %s", s.Name, s.Target, s.Measured)
		}
	}
	if !r.Pass {
		t.Fatal("overload benchmark did not pass")
	}
}
