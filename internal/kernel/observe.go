package kernel

import (
	"enoki/internal/metrics"
	"enoki/internal/trace"
)

// Observability taps. Both are optional and default to off; a nil tracer or
// metric set keeps every hook a single branch on the hot path, and the live
// hooks record into preallocated rings/histograms so enabling them preserves
// the zero-allocation scheduling invariant.

// SetTracer installs (or removes, with nil) the kernel's event tracer.
func (k *Kernel) SetTracer(t *trace.Tracer) { k.tracer = t }

// Tracer returns the installed tracer, or nil.
func (k *Kernel) Tracer() *trace.Tracer { return k.tracer }

// SetMetrics installs (or removes, with nil) the kernel's metric set. Every
// already-registered class is pre-registered in the set so the scheduling
// hot path never performs a first-use create; classes registered later are
// added by RegisterClass.
func (k *Kernel) SetMetrics(s *metrics.Set) {
	k.met = s
	if s == nil {
		return
	}
	for _, slot := range k.classes {
		s.RegisterTiered(slot.id, slot.class.Name(), CrossingTierOf(slot.class))
	}
}

// Metrics returns the installed metric set, or nil.
func (k *Kernel) Metrics() *metrics.Set { return k.met }

// classID maps a class back to its policy id (-1 for classes the kernel no
// longer tracks, e.g. after a deregister).
func (k *Kernel) classID(c Class) int {
	if id, ok := k.idOf[c]; ok {
		return id
	}
	return -1
}

// traceEvent emits into the tracer when one is installed.
func (k *Kernel) traceEvent(kind trace.Kind, cpu, pid, policy int, arg int64) {
	if k.tracer == nil {
		return
	}
	k.tracer.Emit(trace.Event{
		Ts:     int64(k.eng.Now()),
		Kind:   kind,
		CPU:    int32(cpu),
		PID:    int32(pid),
		Policy: int32(policy),
		Arg:    arg,
	})
}
