package workload

import (
	"time"

	"enoki/internal/kernel"
	"enoki/internal/ktime"
)

// AppKind selects a parallel-application scheduling footprint.
type AppKind int

// Application footprints.
const (
	// AppBarrier is bulk-synchronous compute (the NAS pattern): one
	// thread per core, phases separated by barriers. Placement barely
	// matters; per-phase jitter decides barrier wait.
	AppBarrier AppKind = iota
	// AppForkJoin is a worker pool draining batches of variable-size
	// chunks with a join between batches (general Phoronix pattern);
	// mildly balance-sensitive.
	AppForkJoin
	// AppPipeline is producers feeding consumers through a queue with
	// blocking on both sides (Cassandra writes, Zstd long-mode): the
	// pattern §5.3 found most sensitive to the rebalancing policy.
	AppPipeline
)

// AppProfile describes one Table 5 benchmark as a scheduling footprint plus
// the paper's CFS score used to anchor the displayed metric.
type AppProfile struct {
	Name   string
	Suite  string // "NAS" or "Phoronix"
	Metric string
	// PaperCFS anchors displayed metrics: displayed CFS = PaperCFS, and
	// the other scheduler's metric scales by measured relative speed.
	PaperCFS      float64
	LowerIsBetter bool

	Kind    AppKind
	Threads int

	// Barrier parameters.
	Phases    int
	PhaseWork time.Duration
	Jitter    float64

	// Fork-join parameters.
	Batches   int
	Chunks    int
	ChunkWork time.Duration
	ChunkVar  float64

	// Pipeline parameters.
	Producers   int
	Consumers   int
	Items       int
	ProduceWork time.Duration
	ConsumeWork time.Duration
	ConsumeVar  float64
}

// RunApp executes the profile under the given policy and returns the
// makespan. The kernel must be fresh (no other load).
func RunApp(k *kernel.Kernel, policy int, p AppProfile, seed uint64) time.Duration {
	switch p.Kind {
	case AppBarrier:
		return runBarrier(k, policy, p, seed)
	case AppForkJoin:
		return runForkJoin(k, policy, p, seed)
	case AppPipeline:
		return runPipeline(k, policy, p, seed)
	default:
		panic("workload: unknown app kind")
	}
}

func runBarrier(k *kernel.Kernel, policy int, p AppProfile, seed uint64) time.Duration {
	rng := ktime.NewRand(seed)
	var tasks []*kernel.Task
	arrived := 0
	epoch := 0 // barrier generation, so rechecks see releases
	finished := 0
	var finishAt ktime.Time
	for i := 0; i < p.Threads; i++ {
		phase := 0
		computed := false
		behavior := kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			if !computed {
				if phase >= p.Phases {
					finished++
					if finished == p.Threads {
						finishAt = k.Now()
					}
					return kernel.Action{Op: kernel.OpExit}
				}
				phase++
				computed = true
				j := 1 + p.Jitter*(2*rng.Float64()-1)
				return kernel.Action{
					Run: time.Duration(float64(p.PhaseWork) * j),
					Op:  kernel.OpContinue,
				}
			}
			// Arrived at the barrier after computing.
			computed = false
			arrived++
			if arrived == p.Threads {
				arrived = 0
				epoch++
				var wake []*kernel.Task
				for _, o := range tasks {
					if o != t && o.State() == kernel.StateBlocked {
						wake = append(wake, o)
					}
				}
				return kernel.Action{Wake: wake, Op: kernel.OpContinue}
			}
			myEpoch := epoch
			return kernel.Action{Op: kernel.OpBlock, Recheck: func() bool {
				return epoch != myEpoch
			}}
		})
		tasks = append(tasks, k.Spawn("barrier", policy, behavior))
	}
	deadline := time.Duration(p.Phases)*p.PhaseWork*time.Duration(p.Threads) + 10*time.Second
	k.RunFor(deadline)
	if finished < p.Threads {
		return time.Hour
	}
	return time.Duration(finishAt)
}

func runForkJoin(k *kernel.Kernel, policy int, p AppProfile, seed uint64) time.Duration {
	rng := ktime.NewRand(seed)
	var queue []time.Duration
	var blocked []*kernel.Task
	batch := 0
	outstanding := 0
	var finishAt ktime.Time
	done := false

	refill := func() bool {
		if batch >= p.Batches {
			return false
		}
		batch++
		for c := 0; c < p.Chunks; c++ {
			v := 1 + p.ChunkVar*(2*rng.Float64()-1)
			queue = append(queue, time.Duration(float64(p.ChunkWork)*v))
		}
		outstanding = p.Chunks
		return true
	}
	refill()

	for i := 0; i < p.Threads; i++ {
		working := false
		behavior := kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			if working {
				working = false
				outstanding--
				if outstanding == 0 {
					// Join: next batch; wake the pool.
					if !refill() {
						done = true
						finishAt = k.Now()
					}
					var wake []*kernel.Task
					for _, o := range blocked {
						if o.State() == kernel.StateBlocked {
							wake = append(wake, o)
						}
					}
					blocked = nil
					if done {
						return kernel.Action{Wake: wake, Op: kernel.OpExit}
					}
					if len(queue) > 0 {
						work := queue[0]
						queue = queue[1:]
						working = true
						return kernel.Action{Run: work, Wake: wake, Op: kernel.OpContinue}
					}
					return kernel.Action{Wake: wake, Op: kernel.OpBlock}
				}
			}
			if done {
				return kernel.Action{Op: kernel.OpExit}
			}
			if len(queue) == 0 {
				blocked = append(blocked, t)
				return kernel.Action{Op: kernel.OpBlock, Recheck: func() bool {
					return done || len(queue) > 0
				}}
			}
			work := queue[0]
			queue = queue[1:]
			working = true
			return kernel.Action{Run: work, Op: kernel.OpContinue}
		})
		k.Spawn("forkjoin", policy, behavior)
	}
	deadline := time.Duration(p.Batches*p.Chunks)*p.ChunkWork + 10*time.Second
	k.RunFor(deadline)
	if !done {
		return time.Hour
	}
	return time.Duration(finishAt)
}

func runPipeline(k *kernel.Kernel, policy int, p AppProfile, seed uint64) time.Duration {
	rng := ktime.NewRand(seed)
	// Per-consumer queues: producers hash items across consumers (the
	// connection/stream structure of Cassandra, Zstd long-mode, video
	// codecs). Chunk-size variance makes per-task load uneven, which is
	// what separates CFS's periodic balancing from WFQ's idle stealing.
	queues := make([][]time.Duration, p.Consumers)
	consumers := make([]*kernel.Task, p.Consumers)
	produced, consumed := 0, 0
	var finishAt ktime.Time

	for i := 0; i < p.Producers; i++ {
		next := i
		behavior := kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			if produced >= p.Items {
				return kernel.Action{Op: kernel.OpExit}
			}
			produced++
			v := 1 + p.ConsumeVar*(2*rng.Float64()-1)
			c := next % p.Consumers
			next += p.Producers
			queues[c] = append(queues[c], time.Duration(float64(p.ConsumeWork)*v))
			var wake []*kernel.Task
			if tc := consumers[c]; tc != nil && tc.State() == kernel.StateBlocked {
				wake = []*kernel.Task{tc}
			}
			return kernel.Action{Run: p.ProduceWork, Wake: wake, Op: kernel.OpContinue}
		})
		k.Spawn("producer", policy, behavior)
	}
	for i := 0; i < p.Consumers; i++ {
		i := i
		working := false
		behavior := kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			if working {
				working = false
				consumed++
				if consumed >= p.Items {
					finishAt = k.Now()
					return kernel.Action{Op: kernel.OpExit}
				}
			}
			if len(queues[i]) == 0 {
				if produced >= p.Items {
					return kernel.Action{Op: kernel.OpExit}
				}
				return kernel.Action{Op: kernel.OpBlock, Recheck: func() bool {
					return len(queues[i]) > 0 || produced >= p.Items
				}}
			}
			work := queues[i][0]
			queues[i] = queues[i][1:]
			working = true
			return kernel.Action{Run: work, Op: kernel.OpContinue}
		})
		consumers[i] = k.Spawn("consumer", policy, behavior)
	}
	total := time.Duration(p.Items) * (p.ProduceWork + p.ConsumeWork)
	k.RunFor(total + 30*time.Second)
	if consumed < p.Items {
		return time.Hour
	}
	return time.Duration(finishAt)
}
