// Sharded is the parallel intra-machine executor: N independent Engines
// (shards), each owning a disjoint slice of the simulated machine, advancing
// concurrently between cross-shard interactions and synchronizing only at
// message boundaries via a deterministic epoch-merge protocol.
//
// The protocol is conservative (no rollback). Cross-shard messages carry a
// minimum latency — the lookahead, physically the cross-domain IPI/wake
// latency — so an epoch bounded by `lookahead` of virtual time can run every
// shard to the epoch end with no shard observing another's state: any
// message generated inside the epoch is due at or after the epoch boundary.
// At each boundary the coordinator merges all outboxes and delivers due
// messages in a single deterministic order: lowest timestamp first, ties
// broken by destination shard index, then source shard index, then send
// sequence. Because shards share no mutable state inside an epoch and the
// merge order is a pure function of the message set, the parallel run is
// bit-identical to driving the same shards serially — SetParallel flips
// goroutine fan-out on and off without changing a single event, which is
// what the serial-vs-parallel record-log identity tests pin.
//
// Messages destined for one shard at one instant are drained by a single
// engine event bracketed by the batch hooks, so one merge round covers a
// whole shard's deliveries (the kernel points the hooks at its IPI batch
// window: one flush per shard per epoch instead of one kick per message).
package sim

import (
	"fmt"
	"math"

	"enoki/internal/ktime"
)

// maxTime is the largest representable virtual instant.
const maxTime = ktime.Time(math.MaxInt64)

// smsg is one cross-shard message. The (at, to, from, seq) tuple is the
// total delivery order: seq is monotonic per source for the life of the
// executor — never wrapped, never reset between epochs or runs — so two
// distinct messages can never compare equal. A per-epoch or per-run seq
// reset would silently break the byte-identity guarantee: two same-instant
// messages from one source would tie, and the sort (which is not stable
// across heapsort/insertion regimes) could order them differently between
// the serial and parallel drives. TestSmsgOrderTotal pins the totality;
// TestShardedSeqMonotonicAcrossEpochs pins the no-reset property.
type smsg struct {
	at       ktime.Time
	to, from int
	seq      uint64
	fn       func()
	// handoff marks a fleet-level commitment as a pure handoff
	// (Fleet.SendHandoff): the closure only schedules work on the
	// destination executor at the message instant, so the fleet may commit
	// it a whole epoch window early. Unset, the commitment runs at the
	// first productive point at or after its instant (Fleet.Send).
	// Shard-level messages never set it.
	handoff bool
}

func (a smsg) less(b smsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.to != b.to {
		return a.to < b.to
	}
	if a.from != b.from {
		return a.from < b.from
	}
	return a.seq < b.seq
}

// inbox is one shard's delivery ring: messages the coordinator has committed
// for delivery, drained FIFO by the shard's drain event.
type inbox struct {
	q    []smsg
	head int
}

// Sharded runs n Engines under the epoch-merge protocol.
type Sharded struct {
	shards    []*Engine
	lookahead ktime.Duration
	parallel  bool
	now       ktime.Time // global floor: every shard clock sits here between epochs

	pending []smsg   // undelivered messages, sorted by (at, to, from, seq)
	out     [][]smsg // per-shard outboxes, owned by the shard during an epoch
	sendSeq []uint64
	extSeq  uint64 // Inject sequence (source -1) — monotonic, never reset
	in      []inbox
	drainFn []func()

	beginHook, endHook func(shard int)

	// Worker goroutines for the parallel drive, started lazily.
	started bool
	cmds    []chan ktime.Time
	ack     chan struct{}

	epochs    uint64
	delivered uint64
}

// NewSharded builds a sharded executor with n shards and the given
// lookahead: the minimum virtual-time latency of every cross-shard message,
// and therefore the epoch length. A larger lookahead means fewer merge
// rounds; it must not exceed the real latency of the interactions being
// modelled.
func NewSharded(n int, lookahead ktime.Duration) *Sharded {
	if n < 1 {
		panic("sim: NewSharded needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: NewSharded needs a positive lookahead")
	}
	s := &Sharded{
		lookahead: lookahead,
		shards:    make([]*Engine, n),
		out:       make([][]smsg, n),
		sendSeq:   make([]uint64, n),
		in:        make([]inbox, n),
		drainFn:   make([]func(), n),
	}
	for i := 0; i < n; i++ {
		s.shards[i] = New()
		i := i
		s.drainFn[i] = func() { s.drain(i) }
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's engine. Between runs it may be used freely
// (setup, spawning); during a parallel run it belongs to its worker
// goroutine.
func (s *Sharded) Shard(i int) *Engine { return s.shards[i] }

// Lookahead returns the epoch length / minimum cross-shard latency.
func (s *Sharded) Lookahead() ktime.Duration { return s.lookahead }

// Now returns the global virtual-time floor (all shards are at or past it).
func (s *Sharded) Now() ktime.Time { return s.now }

// Epochs returns how many merge rounds have run.
func (s *Sharded) Epochs() uint64 { return s.epochs }

// MsgsSent returns how many cross-shard messages were submitted. (The
// per-shard send sequences are the counters, so the sum is race-free to
// maintain; read it between runs.)
func (s *Sharded) MsgsSent() uint64 {
	var n uint64
	for _, sq := range s.sendSeq {
		n += sq
	}
	return n
}

// MsgsDelivered returns how many cross-shard messages were delivered.
func (s *Sharded) MsgsDelivered() uint64 { return s.delivered }

// EventsFired sums the event counts of every shard.
func (s *Sharded) EventsFired() uint64 {
	var n uint64
	for _, e := range s.shards {
		n += e.Fired()
	}
	return n
}

// SetParallel selects the drive mode: true fans each epoch out to one
// worker goroutine per shard, false runs shards in index order on the
// caller's goroutine. Both produce bit-identical simulations; serial is the
// reference the identity tests compare against.
func (s *Sharded) SetParallel(on bool) { s.parallel = on }

// SetBatchHooks installs the pair bracketing every per-shard delivery
// drain: begin before the first message of a (shard, instant) batch, end
// after the last. The kernel points these at its IPI batch window.
func (s *Sharded) SetBatchHooks(begin, end func(shard int)) {
	s.beginHook, s.endHook = begin, end
}

// Send submits fn for execution on shard `to` at absolute virtual time
// `at`. It must be called from shard `from`'s execution context (or between
// runs), and `at` must be at least the sender's now plus the lookahead —
// sending earlier would let a message land in a shard's past, which is
// exactly the race the epoch protocol exists to exclude, so it panics.
func (s *Sharded) Send(from, to int, at ktime.Time, fn func()) {
	if min := s.shards[from].Now().Add(s.lookahead); at < min {
		panic(fmt.Sprintf("sim: cross-shard send at %v under lookahead floor %v (shard %d → %d)",
			at, min, from, to))
	}
	s.sendSeq[from]++
	s.out[from] = append(s.out[from], smsg{at: at, to: to, from: from, seq: s.sendSeq[from], fn: fn})
}

// Inject commits fn for execution on shard `to` at absolute virtual time
// `at`, from outside every shard's execution context — the fleet-level
// coordinator between machine epochs, or test setup between runs. Injected
// messages join the ordinary pending set under the (at, to, from, seq)
// order with the reserved source -1, so at one instant they deliver before
// any shard's own traffic, in injection order (extSeq is monotonic for the
// executor's life, like every other sequence counter — see the smsg audit
// note). They drain through the same inbox/batch-hook machinery as
// cross-shard sends, so a burst of injected wakes coalesces IPIs exactly
// like a remote-wake burst.
//
// Unlike Send, Inject has no lookahead floor: the caller is the
// coordinator, every shard sits at or before `at`, and determinism comes
// from the caller itself being deterministic. Injecting into the past of
// the executor floor panics.
func (s *Sharded) Inject(to int, at ktime.Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: Inject at %v before executor floor %v (shard %d)", at, s.now, to))
	}
	s.extSeq++
	s.pending = append(s.pending, smsg{at: at, to: to, from: -1, seq: s.extSeq, fn: fn})
	mergeNewSmsgs(s.pending, len(s.pending)-1)
}

// NextEventTime returns the earliest pending work across the whole sharded
// simulation — shard events and undelivered cross-shard messages — which is
// what a fleet-level coordinator needs to schedule productive epochs. Call
// it between runs (it merges outboxes).
func (s *Sharded) NextEventTime() (ktime.Time, bool) {
	s.collect()
	best, ok := s.minNextEvent()
	if len(s.pending) > 0 && (!ok || s.pending[0].at < best) {
		best, ok = s.pending[0].at, true
	}
	return best, ok
}

// drain is shard i's delivery event: it runs every inbox message due at the
// shard's current instant inside one batch-hook bracket.
func (s *Sharded) drain(i int) {
	ib := &s.in[i]
	now := s.shards[i].Now()
	if ib.head >= len(ib.q) || ib.q[ib.head].at != now {
		return // already drained by an earlier event at this instant
	}
	if s.beginHook != nil {
		s.beginHook(i)
	}
	for ib.head < len(ib.q) && ib.q[ib.head].at == now {
		fn := ib.q[ib.head].fn
		ib.q[ib.head].fn = nil
		ib.head++
		fn()
	}
	if s.endHook != nil {
		s.endHook(i)
	}
	if ib.head >= len(ib.q) {
		ib.q = ib.q[:0]
		ib.head = 0
	}
}

// deliver commits every pending message due at or before upTo: append to
// the destination inbox in merge order and post one drain event per
// (shard, instant) group.
func (s *Sharded) deliver(upTo ktime.Time) {
	n := 0
	for n < len(s.pending) && s.pending[n].at <= upTo {
		n++
	}
	for j := 0; j < n; j++ {
		m := s.pending[j]
		ib := &s.in[m.to]
		// One drain event per (to, at) group: the group is contiguous in
		// merge order, so a new group starts whenever the inbox tail
		// changes instant (or was empty).
		if len(ib.q) == 0 || ib.q[len(ib.q)-1].at != m.at {
			s.shards[m.to].PostAt(m.at, s.drainFn[m.to])
		}
		ib.q = append(ib.q, m)
		s.pending[j].fn = nil
		s.delivered++
	}
	if n > 0 {
		rest := copy(s.pending, s.pending[n:])
		for j := rest; j < len(s.pending); j++ {
			s.pending[j] = smsg{}
		}
		s.pending = s.pending[:rest]
	}
}

// collect merges every outbox into the pending set and restores the merge
// order.
func (s *Sharded) collect() {
	sorted := len(s.pending)
	for i := range s.out {
		if len(s.out[i]) > 0 {
			s.pending = append(s.pending, s.out[i]...)
			for j := range s.out[i] {
				s.out[i][j] = smsg{}
			}
			s.out[i] = s.out[i][:0]
		}
	}
	if len(s.pending) > sorted {
		mergeNewSmsgs(s.pending, sorted)
	}
}

// minNextEvent returns the earliest live event time across all shards.
func (s *Sharded) minNextEvent() (ktime.Time, bool) {
	best, ok := maxTime, false
	for _, e := range s.shards {
		if t, has := e.NextEventTime(); has && t < best {
			best, ok = t, true
		}
	}
	return best, ok
}

// runEpoch advances every shard to end, in parallel or serially.
func (s *Sharded) runEpoch(end ktime.Time) {
	s.epochs++
	if !s.parallel {
		for _, e := range s.shards {
			e.RunUntil(end)
		}
		return
	}
	if !s.started {
		s.cmds = make([]chan ktime.Time, len(s.shards))
		s.ack = make(chan struct{}, len(s.shards))
		for i := range s.shards {
			s.cmds[i] = make(chan ktime.Time)
			i := i
			go func() {
				for end := range s.cmds[i] {
					s.shards[i].RunUntil(end)
					s.ack <- struct{}{}
				}
			}()
		}
		s.started = true
	}
	for i := range s.cmds {
		s.cmds[i] <- end
	}
	for range s.cmds {
		<-s.ack
	}
}

// run is the epoch loop: deliver due messages, pick the next productive
// window, run it, merge the outboxes. With advance set, every shard clock
// finishes at exactly t (so back-to-back runs compose like Engine.RunUntil).
func (s *Sharded) run(t ktime.Time, advance bool) {
	// Pick up messages submitted between runs (setup-time Sends).
	s.collect()
	for {
		if len(s.pending) > 0 && s.pending[0].at <= s.now {
			s.deliver(s.now)
			continue
		}
		nextMsg := maxTime
		if len(s.pending) > 0 {
			nextMsg = s.pending[0].at
		}
		nextEv, hasEv := s.minNextEvent()
		next := nextMsg
		if hasEv && nextEv < next {
			next = nextEv
		}
		if next > t || next == maxTime {
			// Past the bound, or nothing exists at all (RunUntilIdle drained).
			break
		}
		// Jump dead time: start the epoch at the next thing that exists.
		start := s.now
		if next > start {
			start = next
		}
		if nextMsg <= start {
			// A message is due exactly at the epoch start; commit it first
			// so its drain event takes part in the epoch.
			s.deliver(start)
			continue
		}
		end := start.Add(s.lookahead)
		if end > t {
			end = t
		}
		if nextMsg < end {
			end = nextMsg
		}
		s.runEpoch(end)
		s.collect()
		s.now = end
	}
	if advance && s.now < t {
		s.runEpoch(t) // nothing is due: shards just move their clocks
		s.collect()
		s.now = t
	}
}

// RunUntil executes the simulation up to and including virtual time t; every
// shard's clock finishes at exactly t.
func (s *Sharded) RunUntil(t ktime.Time) { s.run(t, true) }

// RunUntilIdle executes until no shard has a pending event and no message is
// in flight.
func (s *Sharded) RunUntilIdle() { s.run(maxTime, false) }

// Close stops the worker goroutines of the parallel drive. The executor
// remains usable in serial mode afterwards.
func (s *Sharded) Close() {
	if !s.started {
		return
	}
	for i := range s.cmds {
		close(s.cmds[i])
	}
	s.started = false
	s.cmds = nil
}

// sortSmsgs sorts messages by (at, to, from, seq) without allocating:
// insertion sort for the short, nearly sorted common case, heapsort beyond.
func sortSmsgs(m []smsg) {
	if len(m) > 48 {
		heapsortSmsgs(m)
		return
	}
	insertionSortSmsgs(m)
}

func insertionSortSmsgs(m []smsg) {
	for i := 1; i < len(m); i++ {
		v := m[i]
		j := i - 1
		for j >= 0 && v.less(m[j]) {
			m[j+1] = m[j]
			j--
		}
		m[j+1] = v
	}
}

// mergeNewSmsgs restores full order when m[:mid] is already sorted and
// [mid:] is a freshly appended tail: sort the tail alone, then fold it into
// the prefix by insertion. New messages are due at or after now+lookahead
// while the sorted prefix holds older traffic, so tail elements usually
// belong near the end and the fold moves almost nothing — the win over
// re-sorting the whole pending set on every merge (or every Inject), which
// turned large fleets quadratic. The (at, to, from, seq) order is total, so
// the result is identical to a full sort.
func mergeNewSmsgs(m []smsg, mid int) {
	sortSmsgs(m[mid:])
	for i := mid; i < len(m); i++ {
		v := m[i]
		j := i - 1
		for j >= 0 && v.less(m[j]) {
			m[j+1] = m[j]
			j--
		}
		m[j+1] = v
	}
}

func heapsortSmsgs(m []smsg) {
	n := len(m)
	for i := n/2 - 1; i >= 0; i-- {
		siftSmsgs(m, i, n)
	}
	for i := n - 1; i > 0; i-- {
		m[0], m[i] = m[i], m[0]
		siftSmsgs(m, 0, i)
	}
}

func siftSmsgs(m []smsg, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && m[c].less(m[c+1]) {
			c++
		}
		if !m[root].less(m[c]) {
			return
		}
		m[root], m[c] = m[c], m[root]
		root = c
	}
}
