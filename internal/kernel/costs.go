package kernel

import (
	"time"

	"enoki/internal/core"
)

// Costs is the calibration table mapping simulated kernel operations to
// virtual time. The values below are the single place absolute numbers enter
// the reproduction: they are fitted once so that CFS on the 8-core machine
// matches the paper's Table 3 baseline (3.0 µs one-core / 3.6 µs two-core
// pipe latency), and then held fixed across every scheduler so all relative
// results are emergent.
type Costs struct {
	// ContextSwitch is charged whenever a CPU switches between two
	// different tasks (register/stack/address-space switch plus the cold
	// cache it drags in).
	ContextSwitch time.Duration
	// SchedBase is the native cost of one pass through __schedule
	// (run-queue locks, class iteration) excluding policy work.
	SchedBase time.Duration
	// WakeLocal is the native try_to_wake_up cost when the target run
	// queue is on the waking CPU.
	WakeLocal time.Duration
	// WakeRemoteExtra is the additional cost of a cross-CPU wake (remote
	// run-queue lock + IPI send).
	WakeRemoteExtra time.Duration
	// IPIDeliver is the latency before the kicked CPU reacts to a remote
	// reschedule interrupt.
	IPIDeliver time.Duration
	// CrossNodeExtra is added to wakes and migrations that cross NUMA
	// nodes.
	CrossNodeExtra time.Duration
	// Tick is the cost of the per-CPU scheduler tick.
	Tick time.Duration
	// TimerArm is the cost of (re)arming a high-resolution reschedule
	// timer, paid by schedulers such as Shinjuku that arm one per
	// operation (§5.2).
	TimerArm time.Duration
	// MigrateTask is the cost of moving a task between run queues.
	MigrateTask time.Duration
	// TickPeriod is the scheduler tick interval (1 ms ≈ CONFIG_HZ 1000).
	TickPeriod time.Duration
	// IdleExitShallow is the cost of waking a briefly idle CPU (C1
	// exit): every wake that targets an idle core pays it.
	IdleExitShallow time.Duration
	// DeepIdleAfter is how long a CPU must idle before cpuidle drops it
	// into a deep C-state.
	DeepIdleAfter time.Duration
	// DeepIdleExit is the extra wakeup latency paid when a wake targets
	// a CPU in a deep C-state. This is what makes spreading
	// latency-sensitive tasks across idle cores expensive (Tables 4 and
	// 6): a co-located wake pays a context switch, a cold-core wake pays
	// the C-state exit.
	DeepIdleExit time.Duration
}

// DefaultCosts returns the calibrated cost table used by every experiment.
func DefaultCosts() Costs {
	return Costs{
		ContextSwitch:   1350 * time.Nanosecond,
		SchedBase:       550 * time.Nanosecond,
		WakeLocal:       700 * time.Nanosecond,
		WakeRemoteExtra: 350 * time.Nanosecond,
		IPIDeliver:      400 * time.Nanosecond,
		CrossNodeExtra:  250 * time.Nanosecond,
		Tick:            150 * time.Nanosecond,
		TimerArm:        450 * time.Nanosecond,
		MigrateTask:     600 * time.Nanosecond,
		TickPeriod:      time.Millisecond,
		IdleExitShallow: 900 * time.Nanosecond,
		DeepIdleAfter:   60 * time.Microsecond,
		DeepIdleExit:    30 * time.Microsecond,
	}
}

// CostsFor returns the cost table calibrated for a machine: the two-socket
// Xeon pays more for cross-node traffic and has deeper C-states (its
// package states and two sockets roughly double observed cold-wake cost).
func CostsFor(m Machine) Costs {
	c := DefaultCosts()
	if m.NumNodes > 1 {
		c.DeepIdleExit = 68 * time.Microsecond
		c.CrossNodeExtra = 400 * time.Nanosecond
	}
	return c
}

// Machine describes a simulated host topology as a three-level hierarchy:
// sockets (NUMA nodes) contain LLC domains, LLC domains contain cores. The
// kernel builds its scheduling domains (core.Topology) from this description
// at construction; balancers steal inside an LLC first and escalate to
// socket-crossing pulls only past the calibrated imbalance thresholds.
type Machine struct {
	// Name labels the machine in experiment output.
	Name string
	// NumCPUs is the number of logical CPUs.
	NumCPUs int
	// NodeOf maps each CPU to its NUMA node.
	NodeOf []int
	// NumNodes is the number of NUMA nodes.
	NumNodes int
	// LLCOf maps each CPU to its last-level-cache domain (globally
	// numbered). Nil means one monolithic LLC per node.
	LLCOf []int
	// NumLLCs is the number of LLC domains (0 when LLCOf is nil).
	NumLLCs int
}

// SameNode reports whether two CPUs share a NUMA node.
func (m Machine) SameNode(a, b int) bool { return m.NodeOf[a] == m.NodeOf[b] }

// SameLLC reports whether two CPUs share a last-level cache domain. With no
// LLC map the node is the cache domain.
func (m Machine) SameLLC(a, b int) bool {
	if m.LLCOf == nil {
		return m.NodeOf[a] == m.NodeOf[b]
	}
	return m.LLCOf[a] == m.LLCOf[b]
}

// Topo builds the immutable scheduling-domain view of the machine.
func (m Machine) Topo() *core.Topology { return core.NewTopology(m.NodeOf, m.LLCOf) }

// MachineNUMA builds a machine of sockets×llcPerSocket×coresPerLLC CPUs:
// the general constructor behind Machine80 and the conformance topologies.
func MachineNUMA(name string, sockets, llcPerSocket, coresPerLLC int) Machine {
	n := sockets * llcPerSocket * coresPerLLC
	node := make([]int, n)
	llc := make([]int, n)
	for i := 0; i < n; i++ {
		node[i] = i / (llcPerSocket * coresPerLLC)
		llc[i] = i / coresPerLLC
	}
	return Machine{
		Name: name, NumCPUs: n,
		NodeOf: node, NumNodes: sockets,
		LLCOf: llc, NumLLCs: sockets * llcPerSocket,
	}
}

// Machine8 models the paper's 8-core one-socket Intel i7-9700: one socket,
// one shared LLC.
func Machine8() Machine {
	return MachineNUMA("i7-9700 (8 cores, 1 socket)", 1, 1, 8)
}

// Machine80 models the paper's 80-core two-socket Xeon Gold 6138: CPUs
// 0-39 on node 0, 40-79 on node 1, each socket split into four 10-core
// LLC groups (sub-NUMA clustering), so per-domain balancing has real
// structure to work with.
func Machine80() Machine {
	m := MachineNUMA("Xeon 6138 (80 cores, 2 sockets)", 2, 4, 10)
	return m
}

// Machine1000 is the cluster-scale stress topology: ten 100-CPU sockets,
// each split into four 25-core LLC groups. It exists for the sharded-executor
// benchmarks — big enough that every O(machine) scan in the single-kernel
// model dominates the run, so the per-node partition has something real to
// win.
func Machine1000() Machine {
	return MachineNUMA("cluster-sim (1000 cores, 10 sockets)", 10, 4, 25)
}
