// Package stats provides the measurement machinery the experiment harnesses
// share: a log-linear latency histogram (HDR-style, constant memory, ~1%
// relative error), streaming mean/stddev, geometric means, and an aligned
// text table renderer used to print paper-style tables.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"time"
)

// Histogram records durations in log-linear buckets: values are grouped by
// power-of-two magnitude and each magnitude is split into 64 linear
// sub-buckets, giving a worst-case relative quantile error under 1.6%. The
// zero value is ready to use.
type Histogram struct {
	buckets [64][64]uint64
	count   uint64
	sum     float64
	min     time.Duration
	max     time.Duration
}

const subBucketBits = 6 // 64 sub-buckets per power of two

func bucketOf(v time.Duration) (int, int) {
	if v < 1 {
		v = 1
	}
	u := uint64(v)
	exp := 63 - bits.LeadingZeros64(u)
	var sub int
	if exp > subBucketBits {
		sub = int((u >> (uint(exp) - subBucketBits)) & 63)
	} else {
		sub = int(u & 63)
	}
	return exp, sub
}

func bucketMid(exp, sub int) time.Duration {
	if exp <= subBucketBits {
		return time.Duration(sub)
	}
	lo := (uint64(1) << uint(exp)) | (uint64(sub) << (uint(exp) - subBucketBits))
	width := uint64(1) << (uint(exp) - subBucketBits)
	return time.Duration(lo + width/2)
}

// Record adds one observation.
func (h *Histogram) Record(v time.Duration) {
	exp, sub := bucketOf(v)
	h.buckets[exp][sub]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += float64(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the arithmetic mean (0 if empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count))
}

// Quantile returns the q-quantile (q in [0,1]), e.g. 0.99 for p99. Results
// use bucket midpoints; with empty data it returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for exp := 0; exp < 64; exp++ {
		for sub := 0; sub < 64; sub++ {
			c := h.buckets[exp][sub]
			if c == 0 {
				continue
			}
			seen += c
			if seen >= rank {
				m := bucketMid(exp, sub)
				if m < h.min {
					m = h.min
				}
				if m > h.max {
					m = h.max
				}
				return m
			}
		}
	}
	return h.max
}

// Merge adds every observation of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for exp := 0; exp < 64; exp++ {
		for sub := 0; sub < 64; sub++ {
			h.buckets[exp][sub] += o.buckets[exp][sub]
		}
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Welford accumulates a streaming mean and standard deviation.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add records one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Stddev returns the sample standard deviation (0 for n < 2).
func (w *Welford) Stddev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Geomean returns the geometric mean of xs; non-positive values contribute
// their absolute value (the Table 5 convention is geomean of |% diff|), and
// zeros are treated as a small epsilon so one exact tie doesn't zero the
// aggregate.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		x = math.Abs(x)
		if x < 1e-9 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Table renders aligned text tables in the style the paper prints.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends one row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// String renders the table with two-space gutters and a rule under the
// header.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
