// Package trace is the observability layer's event tracer: a ring-buffer-
// backed, zero-alloc-on-hot-path recorder of every framework crossing the
// simulated kernel and the Enoki adapter perform — context switches, wakeups,
// ticks, message dispatches, hint pushes, fault trips. Events carry virtual
// timestamps, so traces are byte-deterministic for a fixed seed regardless of
// host scheduling, and the Chrome exporter (chrome.go) renders them as
// per-CPU lanes with task-lifetime flows for Perfetto / chrome://tracing.
//
// The design follows the record channel of §3.4 and the always-on tracing
// argument of the eBPF runtime: the hot path only writes a fixed-size struct
// into a preallocated ring (dropping, never blocking or growing, on
// overflow), and everything expensive — snapshotting, sorting, JSON — happens
// off the hot path on a drained copy.
package trace

import (
	"time"

	"enoki/internal/core"
	"enoki/internal/ringbuf"
)

// Kind classifies one traced event.
type Kind uint8

// Event kinds. KindDispatch, KindTick and KindBalance are "sampled" kinds:
// they dominate event volume, so SetSampleEvery thins them; switch, wake,
// idle, exit and fault events are always recorded because the exporter
// reconstructs run slices and flows from them.
const (
	KindInvalid Kind = iota
	// KindDispatch is one framework crossing through libEnoki's processing
	// function; Arg carries the core.Kind of the message.
	KindDispatch
	// KindSwitch: PID switched in on CPU; Policy is the scheduler class id.
	KindSwitch
	// KindIdle: CPU found no runnable task and went idle.
	KindIdle
	// KindWake: PID woke toward CPU; Arg is the waker CPU (-1 external).
	KindWake
	// KindTick is one scheduler tick on CPU while PID ran.
	KindTick
	// KindBalance is one balance crossing on CPU for class Policy.
	KindBalance
	// KindHint is a hint-queue push; Arg is the queue id.
	KindHint
	// KindWatchdog marks a CPU starting its starvation clock.
	KindWatchdog
	// KindFault is a module fault trip; Arg is the core.FaultCause.
	KindFault
	// KindKill is a completed module kill; Arg is the task count re-homed.
	KindKill
	// KindExit: PID exited on CPU.
	KindExit
	// KindXDomain: PID's placement crossed a scheduling domain onto CPU;
	// Arg is the core.Topology distance (1 = cross-LLC, 2 = cross-node).
	KindXDomain
	// KindHintDrop is a hint-queue push that overflowed the ring and was
	// dropped; Arg is the queue id. Always recorded (never sampled): drops
	// are the overload signal the hint-accounting counters exist to surface.
	KindHintDrop
	// KindVExec is one verified-bytecode hook execution inside the kernel
	// pick/enqueue path (the crossing-free middle tier); Dur is the modeled
	// interpreter overhead. Sampled like KindDispatch: it is the verified
	// tier's crossing analogue and matches its event volume.
	KindVExec
)

func (k Kind) String() string {
	switch k {
	case KindDispatch:
		return "dispatch"
	case KindSwitch:
		return "switch"
	case KindIdle:
		return "idle"
	case KindWake:
		return "wake"
	case KindTick:
		return "tick"
	case KindBalance:
		return "balance"
	case KindHint:
		return "hint"
	case KindWatchdog:
		return "watchdog"
	case KindFault:
		return "fault"
	case KindKill:
		return "kill"
	case KindExit:
		return "exit"
	case KindXDomain:
		return "xdomain"
	case KindHintDrop:
		return "hint-drop"
	case KindVExec:
		return "vexec"
	default:
		return "invalid"
	}
}

// Event is one fixed-size trace record. All fields are plain integers so the
// ring push copies a flat struct and never allocates.
type Event struct {
	// Ts is the virtual timestamp in nanoseconds since simulation start.
	Ts int64
	// Dur is the modeled duration charged to the event (0 for instants).
	Dur  int64
	Kind Kind
	// CPU is the kernel thread the event is attributed to (-1 for user
	// context, e.g. hint pushes).
	CPU int32
	// PID is the task involved (0 when none).
	PID int32
	// Policy is the scheduler class id involved (-1 when not class-scoped).
	Policy int32
	// Arg is kind-specific payload (message kind, fault cause, queue id,
	// waker CPU, re-homed task count).
	Arg int64
}

// Tracer records events into a fixed ring. The zero value is a disabled
// tracer (Emit is a cheap no-op through a nil receiver check at call sites);
// create a live one with New. Tracer is not safe for concurrent use — like
// the simulator itself it is single-threaded over virtual time, and parallel
// experiment cells each own a private tracer.
type Tracer struct {
	ring  *ringbuf.Buffer[Event]
	every uint64 // sample 1-in-every for high-volume kinds (0/1 = all)
	seen  uint64
}

// New returns a tracer with the given ring capacity (minimum 1).
func New(capacity int) *Tracer {
	return &Tracer{ring: ringbuf.New[Event](capacity)}
}

// SetSampleEvery makes the tracer keep only one in n events of the
// high-volume kinds (dispatch, tick, balance); 0 or 1 keeps everything.
// Sampling is a deterministic modular counter, never a random draw, so
// sampled traces replay byte-for-byte.
func (t *Tracer) SetSampleEvery(n uint64) { t.every = n }

// sampled reports whether the next high-volume event passes the sampler.
func (t *Tracer) sampled() bool {
	if t.every <= 1 {
		return true
	}
	t.seen++
	return t.seen%t.every == 1
}

// Emit records ev. On a full ring the event is dropped and counted, matching
// the record channel's overflow semantics; the hot path never blocks and
// never allocates.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	switch ev.Kind {
	case KindDispatch, KindTick, KindBalance, KindVExec:
		if !t.sampled() {
			return
		}
	}
	t.ring.Push(ev)
}

// EmitAlways records ev bypassing the sampler — for callers that classify a
// high-volume kind as too important to thin (e.g. a crossing that faulted).
// Ring overflow still drops.
func (t *Tracer) EmitAlways(ev Event) {
	if t == nil {
		return
	}
	t.ring.Push(ev)
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.ring.Len()
}

// Dropped returns how many events the full ring rejected.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.Dropped()
}

// Events drains every buffered event into a fresh slice, oldest first. This
// is the cold path: call it once, after the run.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.ring.Drain()
}

// TraceCrossing implements core.TraceSink: every message routed through
// core.SafeDispatchTraced lands here as a KindDispatch event (faulted
// crossings carry the fault cause marker in Dur-free form — the kill path
// emits the structured KindFault separately).
func (t *Tracer) TraceCrossing(m *core.Message, faulted bool) {
	ev := Event{
		Ts:     m.Now,
		Kind:   KindDispatch,
		CPU:    int32(m.Thread),
		PID:    int32(m.PID),
		Policy: -1,
		Arg:    int64(m.Kind),
	}
	if faulted {
		// A crossing that panicked is never worth sampling away.
		t.ring.Push(ev)
		return
	}
	t.Emit(ev)
}

var _ core.TraceSink = (*Tracer)(nil)

// FromMessage converts one recorded scheduler message into its trace event,
// so a record log (§3.4) becomes a timeline without re-running anything.
// Messages that carry no timeline information report ok=false.
func FromMessage(m *core.Message) (ev Event, ok bool) {
	if m == nil {
		return Event{}, false
	}
	ev = Event{Ts: m.Now, CPU: int32(m.Thread), PID: int32(m.PID), Policy: -1}
	switch m.Kind {
	case core.MsgPickNextTask:
		if m.RetSched != nil {
			ev.Kind = KindSwitch
			ev.PID = int32(m.RetSched.PID)
		} else {
			ev.Kind = KindIdle
		}
	case core.MsgTaskWakeup:
		ev.Kind = KindWake
		ev.CPU = int32(m.WakeCPU)
		ev.Arg = int64(m.LastCPU)
	case core.MsgTaskTick:
		ev.Kind = KindTick
	case core.MsgBalance:
		ev.Kind = KindBalance
	case core.MsgTaskDead:
		ev.Kind = KindExit
	case core.MsgHintPush, core.MsgEnterQueue:
		ev.Kind = KindHint
		ev.Arg = int64(m.QueueID)
	case core.MsgModuleFault:
		ev.Kind = KindFault
		ev.Arg = int64(m.ErrCode)
	default:
		ev.Kind = KindDispatch
		ev.Arg = int64(m.Kind)
	}
	return ev, true
}

// DurationOf is a small helper converting a modeled time.Duration into the
// Event.Dur field.
func DurationOf(d time.Duration) int64 { return int64(d) }
