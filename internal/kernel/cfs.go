package kernel

import (
	"time"

	"enoki/internal/core"
	"enoki/internal/rbtree"
)

// NICE0Load is the CFS load weight of a nice-0 task.
const NICE0Load = 1024

// niceToWeight is the kernel's sched_prio_to_weight table: each nice step
// changes CPU share by ~10% relative to neighbours.
var niceToWeight = [40]int64{
	88761, 71755, 56483, 46273, 36291,
	29154, 23254, 18705, 14949, 11916,
	9548, 7620, 6100, 4904, 3906,
	3121, 2501, 1991, 1586, 1277,
	1024, 820, 655, 526, 423,
	335, 272, 215, 172, 137,
	110, 87, 70, 56, 45,
	36, 29, 23, 18, 15,
}

// WeightOf returns the CFS load weight for a nice value.
func WeightOf(nice int) int64 {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	return niceToWeight[nice+20]
}

// CFS tuning knobs (kernel defaults with CONFIG_HZ=1000 scaling).
const (
	cfsTargetLatency   = 6 * time.Millisecond
	cfsMinGranularity  = 750 * time.Microsecond
	cfsWakeupGranNS    = int64(time.Millisecond)     // wakeup preemption granularity, vruntime ns
	cfsSleeperCreditNS = int64(3 * time.Millisecond) // GENTLE_FAIR_SLEEPERS: latency/2
	cfsNrLatency       = 8
	cfsBalancePeriod   = 4 * time.Millisecond
	// cfsLLCImbalance is the extra queue depth a same-socket CPU outside
	// the puller's LLC domain must show before a cache-cold pull is worth
	// it; cfsNUMAImbalance is the (larger) threshold for crossing sockets.
	// Balancing is sharded by domain: newidle steals inside the LLC first
	// and escalates outward only past these thresholds.
	cfsLLCImbalance  = 1
	cfsNUMAImbalance = 2
)

// cfsEntity is the per-task CFS state (struct sched_entity analogue).
type cfsEntity struct {
	t           *Task
	weight      int64
	vruntime    int64 // weighted virtual runtime, ns
	prevSum     time.Duration
	lastPickSum time.Duration
	node        *rbtree.Node[int64, *cfsEntity]
	everRan     bool
}

// cfsRq is the per-CPU CFS run queue.
type cfsRq struct {
	tree        *rbtree.Tree[int64, *cfsEntity]
	minV        int64
	curr        *cfsEntity
	totalWeight int64 // queued + running weight
}

func newCfsRq() *cfsRq {
	return &cfsRq{tree: rbtree.New[int64, *cfsEntity](func(a, b int64) bool { return a < b })}
}

// nrTotal is runnable count including the running task.
func (rq *cfsRq) nrTotal() int {
	n := rq.tree.Len()
	if rq.curr != nil {
		n++
	}
	return n
}

func (rq *cfsRq) updateMinV() {
	v := rq.minV
	if rq.curr != nil {
		v = rq.curr.vruntime
	}
	if left := rq.tree.Min(); left != nil {
		lv := left.Value().vruntime
		if rq.curr == nil || lv < v {
			v = lv
		}
	}
	if v > rq.minV {
		rq.minV = v
	}
}

// CFS is the simulated Completely Fair Scheduler: the native weighted
// fair queuing baseline every Enoki experiment compares against. Its
// balancing is sharded by scheduling domain: each CPU holds precomputed
// scan lists — LLC siblings, same-socket CPUs outside the LLC, and remote-
// socket CPUs — and every idle search or pull walks them inside-out.
type CFS struct {
	k           *Kernel
	topo        *core.Topology
	rqs         []*cfsRq
	lastBalance []time.Duration // per-CPU busy stamp of last periodic balance
	nextBal     []int64
	tickCount   []int64

	// llcPeers[cpu] lists cpu's LLC domain (self included, ascending);
	// nodePeers[cpu] the rest of its socket; remotePeers[cpu] everything
	// across sockets. Built once so the balance hot path never rescans
	// the whole machine testing domain membership.
	llcPeers    [][]int
	nodePeers   [][]int
	remotePeers [][]int
}

var _ Class = (*CFS)(nil)

// NewCFS builds a CFS class for kernel k (one run queue per CPU), sharded
// over the kernel's scheduling domains.
func NewCFS(k *Kernel) *CFS { return newCFS(k, k.Topo()) }

// NewCFSFlat builds a CFS that sees the whole machine as one domain —
// load balancing and wake placement ignore sockets and caches (the kernel
// still charges the machine's real cross-node costs). This is the "flat"
// baseline the NUMA experiments compare topology-aware CFS against.
func NewCFSFlat(k *Kernel) *CFS { return newCFS(k, core.FlatTopology(k.NumCPUs())) }

func newCFS(k *Kernel, topo *core.Topology) *CFS {
	c := &CFS{k: k, topo: topo}
	n := k.NumCPUs()
	for i := 0; i < n; i++ {
		c.rqs = append(c.rqs, newCfsRq())
		c.lastBalance = append(c.lastBalance, 0)
		c.nextBal = append(c.nextBal, 0)
		c.tickCount = append(c.tickCount, 0)
	}
	c.llcPeers = make([][]int, n)
	c.nodePeers = make([][]int, n)
	c.remotePeers = make([][]int, n)
	for cpu := 0; cpu < n; cpu++ {
		c.llcPeers[cpu] = topo.Siblings(cpu)
		for i := 0; i < n; i++ {
			switch topo.Distance(cpu, i) {
			case core.DistSameNode:
				c.nodePeers[cpu] = append(c.nodePeers[cpu], i)
			case core.DistCrossNode:
				c.remotePeers[cpu] = append(c.remotePeers[cpu], i)
			}
		}
	}
	return c
}

// Name implements Class.
func (c *CFS) Name() string { return "CFS" }

// OverheadPerCall implements Class: CFS is native, no framework overhead.
func (c *CFS) OverheadPerCall() time.Duration { return 0 }

func (c *CFS) ent(t *Task) *cfsEntity { return t.classData.(*cfsEntity) }

// TaskNew implements Class.
func (c *CFS) TaskNew(t *Task) {
	t.classData = &cfsEntity{t: t, weight: WeightOf(t.Nice())}
}

// TaskDead implements Class.
func (c *CFS) TaskDead(t *Task) { t.classData = nil }

// Detach implements Class.
func (c *CFS) Detach(t *Task) { t.classData = nil }

// updateCurr charges the running entity's execution since the last update to
// its vruntime.
func (c *CFS) updateCurr(cpu int) {
	rq := c.rqs[cpu]
	e := rq.curr
	if e == nil {
		return
	}
	delta := e.t.SumExec() - e.prevSum
	if delta <= 0 {
		return
	}
	e.prevSum = e.t.SumExec()
	e.vruntime += int64(delta) * NICE0Load / e.weight
	rq.updateMinV()
}

// Enqueue implements Class.
func (c *CFS) Enqueue(cpu int, t *Task, wakeup bool) {
	rq := c.rqs[cpu]
	e := c.ent(t)
	e.prevSum = t.SumExec()
	switch {
	case wakeup:
		// place_entity: sleepers get bounded credit so they run soon
		// but cannot monopolise after long sleeps.
		if v := rq.minV - cfsSleeperCreditNS; e.vruntime < v {
			e.vruntime = v
		}
	case !e.everRan:
		// START_DEBIT: a forked task starts one slice behind.
		e.everRan = true
		e.vruntime = rq.minV + c.vslice(rq, e)
	}
	e.node = rq.tree.Insert(e.vruntime, e)
	rq.totalWeight += e.weight
	rq.updateMinV()
}

// Dequeue implements Class.
func (c *CFS) Dequeue(cpu int, t *Task, sleep bool) {
	rq := c.rqs[cpu]
	e := c.ent(t)
	if rq.curr == e {
		c.updateCurr(cpu)
		rq.curr = nil
		rq.totalWeight -= e.weight
		rq.updateMinV()
		return
	}
	if e.node != nil {
		n := e.node
		rq.tree.Delete(n)
		rq.tree.Free(n)
		e.node = nil
		rq.totalWeight -= e.weight
		rq.updateMinV()
	}
}

// Yield implements Class: charge runtime and requeue behind equal peers.
func (c *CFS) Yield(cpu int, t *Task) {
	c.putBack(cpu, t)
}

// PutPrev implements Class.
func (c *CFS) PutPrev(cpu int, t *Task, preempted bool) {
	c.putBack(cpu, t)
}

func (c *CFS) putBack(cpu int, t *Task) {
	rq := c.rqs[cpu]
	e := c.ent(t)
	if rq.curr != e {
		return // task was never current here (already requeued)
	}
	c.updateCurr(cpu)
	rq.curr = nil
	e.node = rq.tree.Insert(e.vruntime, e)
}

// PickNext implements Class: run the leftmost (lowest vruntime) entity.
func (c *CFS) PickNext(cpu int) *Task {
	rq := c.rqs[cpu]
	if rq.curr != nil {
		// Shouldn't happen: kernel always puts prev before picking.
		return rq.curr.t
	}
	n := rq.tree.Min()
	if n == nil {
		return nil
	}
	e := n.Value()
	rq.tree.Delete(n)
	rq.tree.Free(n)
	e.node = nil
	rq.curr = e
	e.prevSum = e.t.SumExec()
	e.lastPickSum = e.t.SumExec()
	return e.t
}

// period returns the fair-share period for nr runnable tasks.
func (c *CFS) period(nr int) time.Duration {
	if nr <= cfsNrLatency {
		return cfsTargetLatency
	}
	return time.Duration(nr) * cfsMinGranularity
}

// slice is the wall-clock slice the entity should get this period.
func (c *CFS) slice(rq *cfsRq, e *cfsEntity) time.Duration {
	tw := rq.totalWeight
	if tw <= 0 {
		tw = e.weight
	}
	s := time.Duration(int64(c.period(rq.nrTotal())) * e.weight / tw)
	if s < cfsMinGranularity {
		s = cfsMinGranularity
	}
	return s
}

// vslice is the slice converted to vruntime units.
func (c *CFS) vslice(rq *cfsRq, e *cfsEntity) int64 {
	return int64(c.slice(rq, e)) * NICE0Load / e.weight
}

// Tick implements Class: slice expiry plus the periodic load balancer.
func (c *CFS) Tick(cpu int, t *Task) {
	rq := c.rqs[cpu]
	c.updateCurr(cpu)
	e := rq.curr
	if e != nil && rq.tree.Len() > 0 {
		ran := t.SumExec() - e.lastPickSum
		if ran >= c.slice(rq, e) {
			c.k.Resched(cpu)
		} else if left := rq.tree.Min(); left != nil {
			// Preempt if the leftmost waiter is far behind us.
			if e.vruntime-left.Value().vruntime > c.vslice(rq, e) {
				c.k.Resched(cpu)
			}
		}
	}
	c.tickCount[cpu]++
	if c.tickCount[cpu]%int64(cfsBalancePeriod/c.k.Costs().TickPeriod) == int64(cpu)%4 {
		c.periodicBalance(cpu)
	}
}

// CheckPreempt implements Class: wakeup preemption within CFS.
func (c *CFS) CheckPreempt(cpu int, woken *Task) {
	rq := c.rqs[cpu]
	if rq.curr == nil {
		return
	}
	c.updateCurr(cpu)
	if c.ent(woken).vruntime+cfsWakeupGranNS < rq.curr.vruntime {
		c.k.Resched(cpu)
	}
}

// SelectRQ implements Class: prefer the previous CPU if idle, then an idle
// sibling inside-out — LLC domain first, then the rest of the socket — and
// only then fall back to the least-loaded allowed CPU (proximity breaking
// ties), so wake placement stays cache- and socket-local when it can.
func (c *CFS) SelectRQ(t *Task, prevCPU int, wakeup bool) int {
	n := len(c.rqs)
	if prevCPU < 0 || prevCPU >= n {
		prevCPU = 0
	}
	if wakeup && t.allowed.has(prevCPU) && c.idleCPU(prevCPU) {
		return prevCPU
	}
	// Idle sibling in the LLC domain, then the rest of the socket.
	for _, i := range c.llcPeers[prevCPU] {
		if t.allowed.has(i) && c.idleCPU(i) {
			return i
		}
	}
	for _, i := range c.nodePeers[prevCPU] {
		if t.allowed.has(i) && c.idleCPU(i) {
			return i
		}
	}
	if wakeup {
		// No idle sibling on the socket: stay put (wake_affine keeps
		// cache warmth and avoids a cross-node placement).
		if t.allowed.has(prevCPU) {
			return prevCPU
		}
	}
	// Fork/exec (or forbidden prev): least-loaded allowed CPU, scanned
	// inside-out so proximity to prev breaks load ties.
	best, bestLoad := -1, int64(0)
	scan := func(peers []int) {
		for _, i := range peers {
			if !t.allowed.has(i) {
				continue
			}
			load := c.rqs[i].totalWeight
			if c.k.CurrentOn(i) == nil && c.rqs[i].tree.Len() == 0 {
				load = 0
			}
			if best == -1 || load < bestLoad {
				best, bestLoad = i, load
			}
		}
	}
	scan(c.llcPeers[prevCPU])
	scan(c.nodePeers[prevCPU])
	scan(c.remotePeers[prevCPU])
	if best == -1 {
		return prevCPU
	}
	return best
}

func (c *CFS) idleCPU(cpu int) bool {
	return c.k.CurrentOn(cpu) == nil && c.rqs[cpu].tree.Len() == 0
}

// Balance implements Class: newidle balancing — when this CPU has no CFS
// work, pull one task, stealing inside the LLC domain first and escalating
// outward only past the per-level imbalance thresholds.
func (c *CFS) Balance(cpu int) {
	rq := c.rqs[cpu]
	if rq.tree.Len() > 0 || rq.curr != nil {
		return
	}
	c.pullFrom(cpu, 1, cfsNUMAImbalance+1)
}

// periodicBalance evens out queue lengths across CPUs.
func (c *CFS) periodicBalance(cpu int) {
	rq := c.rqs[cpu]
	c.pullFrom(cpu, rq.nrTotal()+2, rq.nrTotal()+cfsNUMAImbalance+2)
}

// pullFrom walks cpu's scan lists inside-out — LLC siblings, then the rest
// of the socket at +cfsLLCImbalance, then remote sockets at minRemote — and
// stops at the innermost level that yields a pull. A cache-hot steal inside
// the LLC always beats a colder one further out, so socket crossings happen
// only when every nearer queue is balanced.
func (c *CFS) pullFrom(cpu, minLocal, minRemote int) {
	if c.pullWithin(cpu, c.llcPeers[cpu], minLocal) {
		return
	}
	if c.pullWithin(cpu, c.nodePeers[cpu], minLocal+cfsLLCImbalance) {
		return
	}
	c.pullWithin(cpu, c.remotePeers[cpu], minRemote)
}

// pullWithin moves one task to cpu from the busiest queue among peers whose
// runnable count exceeds min, and reports whether a pull happened.
func (c *CFS) pullWithin(cpu int, peers []int, min int) bool {
	busiest, busiestNr := -1, 0
	for _, i := range peers {
		if i == cpu {
			continue
		}
		nr := c.rqs[i].nrTotal()
		if nr > min && nr > busiestNr {
			busiest, busiestNr = i, nr
		}
	}
	if busiest == -1 {
		return false
	}
	// Steal the entity with the highest vruntime (least urgent): walk to
	// the tree's last element.
	src := c.rqs[busiest]
	var victim *cfsEntity
	src.tree.Ascend(func(n *rbtree.Node[int64, *cfsEntity]) bool {
		if n.Value().t.allowed.has(cpu) {
			victim = n.Value()
		}
		return true
	})
	if victim == nil {
		return false
	}
	c.k.MoveTask(victim.t, cpu)
	return true
}

// Migrate implements Class: renormalise vruntime between queues so a task
// carries its relative (not absolute) progress.
func (c *CFS) Migrate(t *Task, src, dst int) {
	e := c.ent(t)
	e.vruntime = e.vruntime - c.rqs[src].minV + c.rqs[dst].minV
}

// PrioChanged implements Class.
func (c *CFS) PrioChanged(t *Task) {
	e := c.ent(t)
	old := e.weight
	e.weight = WeightOf(t.Nice())
	if e.node != nil || c.rqs[t.CPU()].curr == e {
		c.rqs[t.CPU()].totalWeight += e.weight - old
	}
}

// AffinityChanged implements Class: nothing cached beyond the mask.
func (c *CFS) AffinityChanged(t *Task) {}

// NRunnable implements Class.
func (c *CFS) NRunnable(cpu int) int { return c.rqs[cpu].tree.Len() }
