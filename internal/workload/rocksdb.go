package workload

import (
	"time"

	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/stats"
)

// RocksDBConfig is the Fig 2 dispersive load: an open-loop Poisson stream
// of requests, 99.5% short GETs and 0.5% long range queries, served by a
// pool of workers pinned to a few cores. Three cores are reserved as in the
// paper: background, load generator, and (when a scheduler needs one) the
// scheduling core.
type RocksDBConfig struct {
	Policy  int
	Workers int
	// WorkerCores are the CPUs the workers may use (the paper's five).
	WorkerCores []int
	// Rate is the offered load in requests/second.
	Rate float64
	// GetService and RangeService are the assigned request costs (4 µs
	// and 10 ms in §5.4); RangeFrac is the range-query fraction.
	GetService   time.Duration
	RangeService time.Duration
	RangeFrac    float64
	Warmup       time.Duration
	Duration     time.Duration
	Seed         uint64
}

func (c *RocksDBConfig) defaults() {
	if c.Workers == 0 {
		c.Workers = 50
	}
	if len(c.WorkerCores) == 0 {
		c.WorkerCores = []int{3, 4, 5, 6, 7}
	}
	if c.GetService == 0 {
		c.GetService = 4 * time.Microsecond
	}
	if c.RangeService == 0 {
		c.RangeService = 10 * time.Millisecond
	}
	if c.RangeFrac == 0 {
		c.RangeFrac = 0.005
	}
	if c.Warmup == 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 0xdb
	}
}

// RocksDBResult reports request latencies and achieved throughput.
type RocksDBResult struct {
	P50, P99, Mean time.Duration
	Completed      uint64
	// Achieved is completed requests / measurement duration, in req/s.
	Achieved float64
}

type rocksReq struct {
	arrival ktime.Time
	service time.Duration
}

// RocksDB is a running instance; it exposes Start so a batch app can be
// co-located before the simulation runs.
type RocksDB struct {
	k       *kernel.Kernel
	cfg     RocksDBConfig
	queue   []rocksReq
	workers []*kernel.Task
	hist    stats.Histogram
	started ktime.Time
	warmEnd ktime.Time
	done    uint64
}

// NewRocksDB builds the server and its worker tasks on k.
func NewRocksDB(k *kernel.Kernel, cfg RocksDBConfig) *RocksDB {
	cfg.defaults()
	r := &RocksDB{k: k, cfg: cfg}
	var mask kernel.CPUMask
	for _, c := range cfg.WorkerCores {
		mask.Set(c)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &rocksWorker{r: r}
		w.task = k.Spawn("rocksdb-worker", cfg.Policy, kernel.BehaviorFunc(w.next),
			kernel.WithAffinity(mask))
		r.workers = append(r.workers, w.task)
	}
	return r
}

// rocksWorker is the two-phase request loop: pop+serve, then account.
type rocksWorker struct {
	r       *RocksDB
	task    *kernel.Task
	current *rocksReq
}

func (w *rocksWorker) next(k *kernel.Kernel, t *kernel.Task) kernel.Action {
	r := w.r
	if w.current != nil {
		// Service segment finished: account the sojourn time.
		if k.Now().After(r.warmEnd) {
			r.hist.Record(k.Now().Sub(w.current.arrival))
			r.done++
		}
		w.current = nil
	}
	if len(r.queue) == 0 {
		return kernel.Action{Op: kernel.OpBlock, Recheck: func() bool {
			return len(r.queue) > 0
		}}
	}
	req := r.queue[0]
	r.queue = r.queue[1:]
	w.current = &req
	return kernel.Action{Run: req.service, Op: kernel.OpContinue}
}

// Start begins the open-loop load generator and runs warmup + measurement;
// call after any co-located apps are set up.
func (r *RocksDB) Start() RocksDBResult {
	k := r.k
	cfg := r.cfg
	rng := ktime.NewRand(cfg.Seed)
	gap := time.Duration(float64(time.Second) / cfg.Rate)
	end := k.Now().Add(cfg.Warmup + cfg.Duration)
	r.warmEnd = k.Now().Add(cfg.Warmup)
	var arrive func()
	arrive = func() {
		if k.Now().After(end) {
			return
		}
		service := cfg.GetService
		if rng.Float64() < cfg.RangeFrac {
			service = cfg.RangeService
		}
		r.queue = append(r.queue, rocksReq{arrival: k.Now(), service: service})
		// Wake one parked worker. The scan is state-based (not a wake
		// list) so a worker whose block raced an earlier pop is found
		// again on the next arrival; in-flight blocks are covered by
		// the futex recheck.
		for _, t := range r.workers {
			if t.State() == kernel.StateBlocked {
				k.Wake(t)
				break
			}
		}
		k.Engine().After(rng.ExpDuration(gap), arrive)
	}
	k.Engine().After(0, arrive)
	// Run the load plus drain time for in-flight range queries.
	k.RunFor(cfg.Warmup + cfg.Duration + 100*time.Millisecond)
	return RocksDBResult{
		P50:       r.hist.Quantile(0.50),
		P99:       r.hist.Quantile(0.99),
		Mean:      r.hist.Mean(),
		Completed: r.done,
		Achieved:  float64(r.done) / cfg.Duration.Seconds(),
	}
}

// BatchApp is the co-located CPU-hungry application of Fig 2b/2c: plain
// CPU-bound tasks, usually niced down, whose CPU share is the measurement.
type BatchApp struct {
	tasks []*kernel.Task
}

// NewBatchApp spawns n spinner tasks with the given nice in policy,
// restricted to cores.
func NewBatchApp(k *kernel.Kernel, policy, n, nice int, cores []int) *BatchApp {
	var mask kernel.CPUMask
	for _, c := range cores {
		mask.Set(c)
	}
	b := &BatchApp{}
	for i := 0; i < n; i++ {
		t := k.Spawn("batch", policy, kernel.BehaviorFunc(
			func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
				return kernel.Action{Run: 500 * time.Microsecond, Op: kernel.OpContinue}
			}),
			kernel.WithAffinity(mask), kernel.WithNice(nice))
		b.tasks = append(b.tasks, t)
	}
	return b
}

// CPUTime returns the batch app's total accumulated CPU time.
func (b *BatchApp) CPUTime() time.Duration {
	var sum time.Duration
	for _, t := range b.tasks {
		sum += t.SumExec()
	}
	return sum
}

// Share returns the batch app's CPU consumption in cores-worth over the
// window since the given CPUTime baseline (the Fig 2c y-axis).
func (b *BatchApp) Share(window, baseline time.Duration) float64 {
	return float64(b.CPUTime()-baseline) / float64(window)
}
