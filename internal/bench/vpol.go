// Crossing-cost ablation: the same FIFO policy attached at the module tier
// (full enokic message crossing) and at the verified tier (bytecode
// interpreted in the kernel pick path), driven through the identical
// ping-pong workload. The ns/op gap is the measured cost of the framework
// crossing the verified fast lane skips.
package bench

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/fifo"
	"enoki/internal/sim"
	"enoki/internal/vpol"
)

// pingPong runs the ScheduleOp workload — two tasks pinned to CPU 0, each
// waking the other and blocking — with the tasks spawned into policy.
func pingPong(b *testing.B, eng *sim.Engine, k *kernel.Kernel, policy int) {
	var a, c *kernel.Task
	count := 0
	mk := func(peer **kernel.Task, starts bool) kernel.Behavior {
		started := false
		wake := make([]*kernel.Task, 1)
		return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			wake[0] = *peer
			if starts && !started {
				started = true
				return kernel.Action{Run: 100 * time.Nanosecond, Wake: wake, Op: kernel.OpBlock}
			}
			count++
			return kernel.Action{Run: 100 * time.Nanosecond, Wake: wake, Op: kernel.OpBlock}
		})
	}
	a = k.Spawn("a", policy, mk(&c, true), kernel.WithAffinity(kernel.SingleCPU(0)))
	c = k.Spawn("b", policy, mk(&a, false), kernel.WithAffinity(kernel.SingleCPU(0)))
	// Warm up past first-wake state and free-list fills before measuring.
	for count < 64 {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	target := count
	for i := 0; i < b.N; i++ {
		target++
		for count < target {
			if !eng.Step() {
				b.Fatal("engine drained")
			}
		}
	}
}

// ScheduleOpModuleFIFO is the module-tier arm of the crossing ablation: the
// ping-pong round trip scheduled by the FIFO policy as a full Enoki module,
// every hook a message build + dispatch + reply copy-back.
func ScheduleOpModuleFIFO(b *testing.B) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	const policy = 1
	enokic.Load(k, policy, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		return fifo.New(env, policy)
	})
	k.RegisterClass(0, kernel.NewCFS(k))
	pingPong(b, eng, k, policy)
}

// ScheduleOpVerifiedFIFO is the verified-tier arm: the same FIFO policy as
// bytecode, interpreted directly in the pick path with no crossing. Must
// stay at 0 allocs/op (pinned by TestScheduleOpVerifiedFIFOZeroAlloc).
func ScheduleOpVerifiedFIFO(b *testing.B) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	const policy = 1
	if _, err := vpol.Load(k, policy, vpol.FIFOProgram(), vpol.DefaultConfig()); err != nil {
		b.Fatalf("vpol load: %v", err)
	}
	k.RegisterClass(0, kernel.NewCFS(k))
	pingPong(b, eng, k, policy)
}

// CrossingAblation is the measured module-vs-verified comparison the hotpath
// JSON carries: one schedule round trip per op, identical workload, only the
// attachment tier changed.
type CrossingAblation struct {
	ModuleNsPerOp       float64 `json:"module_ns_per_op"`
	VerifiedNsPerOp     float64 `json:"verified_ns_per_op"`
	ModuleAllocsPerOp   int64   `json:"module_allocs_per_op"`
	VerifiedAllocsPerOp int64   `json:"verified_allocs_per_op"`
	// ModuleOverVerified is ModuleNsPerOp / VerifiedNsPerOp: how many times
	// more a schedule op costs through the full crossing.
	ModuleOverVerified float64 `json:"module_over_verified"`
}

// MeasureCrossingAblation runs both ablation arms via testing.Benchmark.
func MeasureCrossingAblation() CrossingAblation {
	mod := testing.Benchmark(ScheduleOpModuleFIFO)
	ver := testing.Benchmark(ScheduleOpVerifiedFIFO)
	out := CrossingAblation{
		ModuleNsPerOp:       float64(mod.T.Nanoseconds()) / float64(mod.N),
		VerifiedNsPerOp:     float64(ver.T.Nanoseconds()) / float64(ver.N),
		ModuleAllocsPerOp:   mod.AllocsPerOp(),
		VerifiedAllocsPerOp: ver.AllocsPerOp(),
	}
	if out.VerifiedNsPerOp > 0 {
		out.ModuleOverVerified = out.ModuleNsPerOp / out.VerifiedNsPerOp
	}
	return out
}
