package fifo

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/ktime"
)

type fakeEnv struct{ cpus int }

type nopLock struct{}

func (nopLock) Lock()   {}
func (nopLock) Unlock() {}

func (e *fakeEnv) Now() ktime.Time                   { return 0 }
func (e *fakeEnv) NumCPUs() int                      { return e.cpus }
func (e *fakeEnv) SameNode(a, b int) bool            { return true }
func (e *fakeEnv) Topology() *core.Topology          { return core.FlatTopology(e.cpus) }
func (e *fakeEnv) ArmTimer(cpu int, d time.Duration) {}
func (e *fakeEnv) Resched(cpu int)                   {}
func (e *fakeEnv) Rand() *ktime.Rand                 { return ktime.NewRand(1) }
func (e *fakeEnv) NewMutex(string) core.Locker       { return nopLock{} }

func tok(pid, cpu int) *core.Schedulable { return core.NewSchedulable(pid, cpu, 1) }

func TestFIFOOrder(t *testing.T) {
	s := New(&fakeEnv{cpus: 2}, 1)
	for pid := 1; pid <= 3; pid++ {
		s.TaskNew(pid, 0, true, nil, tok(pid, 0))
	}
	for want := 1; want <= 3; want++ {
		got := s.PickNextTask(0, nil, 0)
		if got == nil || got.PID() != want {
			t.Fatalf("pick %d = %v", want, got)
		}
	}
	if s.PickNextTask(0, nil, 0) != nil {
		t.Fatal("empty queue returned a task")
	}
}

func TestWakeupGoesToBack(t *testing.T) {
	s := New(&fakeEnv{cpus: 1}, 1)
	s.TaskNew(1, 0, true, nil, tok(1, 0))
	s.TaskNew(2, 0, false, nil, nil)
	s.TaskWakeup(2, 0, true, 0, 0, tok(2, 0))
	if got := s.PickNextTask(0, nil, 0); got.PID() != 1 {
		t.Fatalf("first = %d", got.PID())
	}
	if got := s.PickNextTask(0, nil, 0); got.PID() != 2 {
		t.Fatalf("second = %d", got.PID())
	}
}

func TestSelectPicksShortestQueue(t *testing.T) {
	s := New(&fakeEnv{cpus: 3}, 1)
	s.TaskNew(1, 0, true, nil, tok(1, 0))
	s.TaskNew(2, 0, true, nil, tok(2, 0))
	s.TaskNew(3, 0, true, nil, tok(3, 1))
	if got := s.SelectTaskRQ(9, 0, false); got != 2 {
		t.Fatalf("fork select = %d, want empty cpu 2", got)
	}
	if got := s.SelectTaskRQ(9, 1, true); got != 1 {
		t.Fatalf("wakeup select = %d, want prev", got)
	}
}

func TestMigrateMovesEntry(t *testing.T) {
	s := New(&fakeEnv{cpus: 2}, 1)
	old := tok(1, 0)
	s.TaskNew(1, 0, true, nil, old)
	got := s.MigrateTaskRQ(1, 1, tok(1, 1))
	if got != old {
		t.Fatalf("migrate returned %v", got)
	}
	if s.QueueLen(0) != 0 || s.QueueLen(1) != 1 {
		t.Fatalf("queues = %d/%d", s.QueueLen(0), s.QueueLen(1))
	}
}

func TestPntErrRequeuesAtHead(t *testing.T) {
	s := New(&fakeEnv{cpus: 1}, 1)
	s.TaskNew(1, 0, true, nil, tok(1, 0))
	s.TaskNew(2, 0, true, nil, tok(2, 0))
	first := s.PickNextTask(0, nil, 0)
	s.PntErr(0, first.PID(), core.PickStale, first)
	if got := s.PickNextTask(0, nil, 0); got != first {
		t.Fatalf("pnt_err should requeue at head, got %v", got)
	}
}

func TestUpgradeTransfersQueues(t *testing.T) {
	env := &fakeEnv{cpus: 2}
	s1 := New(env, 1)
	s1.TaskNew(1, 0, true, nil, tok(1, 0))
	out := s1.ReregisterPrepare()
	s2 := New(env, 1)
	s2.ReregisterInit(&core.TransferIn{State: out.State})
	if got := s2.PickNextTask(0, nil, 0); got == nil || got.PID() != 1 {
		t.Fatalf("state not adopted: %v", got)
	}
}

func TestDepartedRemoves(t *testing.T) {
	s := New(&fakeEnv{cpus: 2}, 1)
	proof := tok(1, 1)
	s.TaskNew(1, 0, true, nil, proof)
	if got := s.TaskDeparted(1, 1); got != proof {
		t.Fatalf("departed = %v", got)
	}
	if s.QueueLen(1) != 0 {
		t.Fatal("entry not removed")
	}
}
