package kernel

import (
	"testing"
	"time"

	"enoki/internal/sim"
)

// Micro-benchmarks of the hot simulator paths: these bound how much virtual
// work the harness can push per host second.

func BenchmarkScheduleOp(b *testing.B) {
	// One full block→wake→schedule round trip per iteration.
	eng := sim.New()
	k := New(eng, Machine8(), DefaultCosts())
	k.RegisterClass(0, NewCFS(k))
	var a, c *Task
	count := 0
	mk := func(peer **Task, starts bool) Behavior {
		started := false
		return BehaviorFunc(func(k *Kernel, t *Task) Action {
			if starts && !started {
				started = true
				return Action{Run: 100 * time.Nanosecond, Wake: []*Task{*peer}, Op: OpBlock}
			}
			count++
			return Action{Run: 100 * time.Nanosecond, Wake: []*Task{*peer}, Op: OpBlock}
		})
	}
	a = k.Spawn("a", 0, mk(&c, true), WithAffinity(SingleCPU(0)))
	c = k.Spawn("b", 0, mk(&a, false), WithAffinity(SingleCPU(0)))
	b.ReportAllocs()
	b.ResetTimer()
	target := 0
	for i := 0; i < b.N; i++ {
		target += 1
		for count < target {
			if !eng.Step() {
				b.Fatal("engine drained")
			}
		}
	}
}

func BenchmarkSpawnExit(b *testing.B) {
	eng := sim.New()
	k := New(eng, Machine8(), DefaultCosts())
	k.RegisterClass(0, NewCFS(k))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Spawn("s", 0, BehaviorFunc(func(*Kernel, *Task) Action {
			return Action{Run: time.Microsecond, Op: OpExit}
		}))
		k.RunFor(100 * time.Microsecond)
	}
	if k.NumTasks() != 0 {
		b.Fatal("tasks leaked")
	}
}

func BenchmarkTickPath(b *testing.B) {
	eng := sim.New()
	k := New(eng, Machine8(), DefaultCosts())
	k.RegisterClass(0, NewCFS(k))
	for i := 0; i < 16; i++ {
		k.Spawn("t", 0, BehaviorFunc(func(*Kernel, *Task) Action {
			return Action{Run: 10 * time.Millisecond, Op: OpContinue}
		}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunFor(time.Millisecond) // ≥8 ticks + preemptions per iteration
	}
}
