package experiments

import (
	"fmt"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/stats"
	"enoki/internal/workload"
)

// Table4Cell is one scheduler's schbench percentiles for one worker count.
type Table4Cell struct {
	Sched    string
	P50, P99 time.Duration
}

// Table4Result reproduces Table 4: schbench on the 80-core machine with 2
// message threads and 2 or 40 workers per message thread.
type Table4Result struct {
	TwoWorkers   []Table4Cell
	FortyWorkers []Table4Cell
	Duration     time.Duration
}

// Name implements the experiment naming convention.
func (r *Table4Result) Name() string { return "table4" }

func (r *Table4Result) String() string {
	t := stats.NewTable("Worker Threads", "", "CFS", "GhOSt SOL", "GhOSt FIFO", "WFQ", "Shinjuku", "Locality", "Arachne")
	row := func(label, q string, cells []Table4Cell, pick func(Table4Cell) time.Duration) {
		args := []any{label, q}
		for _, c := range cells {
			args = append(args, fmt.Sprintf("%d", pick(c)/time.Microsecond))
		}
		t.Row(args...)
	}
	row("2 Tasks (µs)", "50th", r.TwoWorkers, func(c Table4Cell) time.Duration { return c.P50 })
	row("", "99th", r.TwoWorkers, func(c Table4Cell) time.Duration { return c.P99 })
	row("40 Tasks (µs)", "50th", r.FortyWorkers, func(c Table4Cell) time.Duration { return c.P50 })
	row("", "99th", r.FortyWorkers, func(c Table4Cell) time.Duration { return c.P99 })
	return "Table 4: schbench thread wakeup latency, 2 message threads, 80-core machine\n" +
		fmt.Sprintf("measurement window: %v\n", r.Duration) + t.String()
}

// Table4 runs schbench across the Table 4 schedulers on the 80-core
// machine.
func Table4(o Options) *Table4Result {
	warmup := scaleDur(o, 5*time.Second, 100*time.Millisecond)
	duration := scaleDur(o, 5*time.Second, 400*time.Millisecond)
	res := &Table4Result{Duration: duration}

	kinds := []Kind{KindCFS, KindGhostSOL, KindGhostFIFO, KindWFQ, KindShinjuku, KindLocality}
	workerCounts := []int{2, 40}
	// Cells are (worker-count, scheduler) pairs; the last column per worker
	// count is Arachne. Index-addressed so fan-out keeps table order.
	perRow := len(kinds) + 1
	cells := make([]Table4Cell, len(workerCounts)*perRow)
	parDo(o, len(cells), func(ci int) {
		workers := workerCounts[ci/perRow]
		col := ci % perRow
		if col < len(kinds) {
			kind := kinds[col]
			r := NewRig(kernel.Machine80(), kind)
			sr := workload.RunSchbench(r.K, workload.SchbenchConfig{
				Policy:         r.Policy,
				MessageThreads: 2,
				WorkersPerMsg:  workers,
				Warmup:         warmup,
				Duration:       duration,
			})
			cells[ci] = Table4Cell{Sched: kind.String(), P50: sr.P50, P99: sr.P99}
			return
		}
		// Arachne: user-level message/worker dispatch.
		r, rt := NewArachneRig(kernel.Machine80(), 2, 79)
		rt.StartEstimator()
		sr := workload.RunArachneSchbench(r.K, rt, workload.SchbenchConfig{
			Policy:         PolicyEnoki,
			MessageThreads: 2,
			WorkersPerMsg:  workers,
			Warmup:         warmup,
			Duration:       duration,
		})
		cells[ci] = Table4Cell{Sched: "Arachne", P50: sr.P50, P99: sr.P99}
	})
	res.TwoWorkers = cells[:perRow]
	res.FortyWorkers = cells[perRow:]
	return res
}
