package enokic

import (
	"fmt"

	"enoki/internal/core"
)

// UserQueue is the userspace handle to a registered hint queue: the analogue
// of a process's mmap'd ring plus the notification path into the module
// (§3.3). Workload models send scheduler-defined hints through it.
type UserQueue struct {
	a  *Adapter
	q  *core.HintQueue
	id int
}

// ID returns the module-assigned queue id.
func (u *UserQueue) ID() int { return u.id }

// Send pushes a hint and notifies the module via enter_queue. It reports
// false if the ring overflowed (the hint was dropped, as in shared memory).
func (u *UserQueue) Send(h core.Hint) bool {
	if u.a.recorder != nil {
		u.a.recorder.RecordMessage(&core.Message{
			Kind: core.MsgHintPush, Seq: u.a.nextSeq(), Thread: -1,
			Now: int64(u.a.k.Now()), QueueID: u.id, Hint: h,
		})
	}
	if !u.q.Push(h) {
		return false
	}
	// notify (not dispatch): hint delivery queues behind an in-flight
	// upgrade like every other module entry (§3.2's quiesce).
	u.a.notify(&core.Message{
		Kind: core.MsgEnterQueue, Thread: -1, QueueID: u.id, Count: 1,
	})
	return true
}

// SendSync delivers a hint through the synchronous parse_hint path (it too
// waits out an in-flight upgrade).
func (u *UserQueue) SendSync(h core.Hint) {
	u.a.notify(&core.Message{Kind: core.MsgParseHint, Thread: -1, Hint: h})
}

// Close unregisters the queue from the module.
func (u *UserQueue) Close() {
	got := u.a.sched.UnregisterQueue(u.id)
	u.a.record(&core.Message{Kind: core.MsgUnregisterQueue, Thread: -1, QueueID: u.id})
	if got != u.q {
		panic(fmt.Sprintf("enokic: module returned wrong queue for id %d", u.id))
	}
}

func (a *Adapter) nextSeq() uint64 {
	s := a.seq
	a.seq++
	return s
}

func (a *Adapter) record(m *core.Message) {
	if a.recorder != nil {
		m.Seq = a.nextSeq()
		m.Now = int64(a.k.Now())
		a.recorder.RecordMessage(m)
	}
}

// CreateHintQueue builds a user-to-kernel hint queue of the given capacity
// and registers it with the module, returning the userspace handle. A module
// that does not support hints (returns a negative id) yields a nil handle.
func (a *Adapter) CreateHintQueue(capacity int) *UserQueue {
	q := core.NewHintQueue(capacity)
	id := a.sched.RegisterQueue(q)
	a.record(&core.Message{Kind: core.MsgRegisterQueue, Thread: -1, QueueID: id, Count: capacity})
	if id < 0 {
		return nil
	}
	a.queues[id] = q
	return &UserQueue{a: a, q: q, id: id}
}

// CreateRevQueue builds a kernel-to-user queue, registers it, and returns it
// for the user side to drain (or observe via OnPush). Returns nil if the
// module rejects it.
func (a *Adapter) CreateRevQueue(capacity int) *core.RevQueue {
	q := core.NewRevQueue(capacity)
	q.Deferrer = func(fn func()) { a.k.Engine().After(0, fn) }
	id := a.sched.RegisterReverseQueue(q)
	a.record(&core.Message{Kind: core.MsgRegisterRevQueue, Thread: -1, QueueID: id, Count: capacity})
	if id < 0 {
		return nil
	}
	a.revQueues[id] = q
	return q
}
