package nest_test

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/nest"
	"enoki/internal/sim"
	"enoki/internal/stats"
)

const (
	policyCFS  = 0
	policyNest = 1
)

func rig() (*kernel.Kernel, *enokic.Adapter, *nest.Sched) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.CostsFor(kernel.Machine8()))
	var sched *nest.Sched
	a := enokic.Load(k, policyNest, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		sched = nest.New(env, policyNest)
		return sched
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	return k, a, sched
}

// periodic spawns a task that runs `work` then sleeps `nap`, n rounds.
func periodic(k *kernel.Kernel, policy int, work, nap time.Duration, rounds int, hist *stats.Histogram) *kernel.Task {
	n := 0
	opts := []kernel.SpawnOption{}
	if hist != nil {
		opts = append(opts, kernel.WithWakeObserver(func(d time.Duration) { hist.Record(d) }))
	}
	return k.Spawn("periodic", policy, kernel.BehaviorFunc(
		func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			n++
			if n > rounds {
				return kernel.Action{Op: kernel.OpExit}
			}
			return kernel.Action{Run: work, Op: kernel.OpSleep, SleepFor: nap}
		}), opts...)
}

func TestNestStaysSmallForLightLoad(t *testing.T) {
	k, a, sched := rig()
	for i := 0; i < 2; i++ {
		periodic(k, policyNest, 30*time.Microsecond, 200*time.Microsecond, 2000, nil)
	}
	k.RunFor(500 * time.Millisecond)
	if st := a.Stats(); st.PntErrs != 0 {
		t.Fatalf("pnt_errs: %+v", st)
	}
	if size := sched.NestSize(); size > 3 {
		t.Fatalf("nest grew to %d cores for a 2-task load", size)
	}
	// The cold cores must have stayed cold.
	busy := 0
	for c := 0; c < 8; c++ {
		if k.CPUBusy(c) > 10*time.Millisecond {
			busy++
		}
	}
	if busy > 3 {
		t.Fatalf("light load touched %d cores", busy)
	}
}

func TestNestExpandsUnderLoadAndShrinksAfter(t *testing.T) {
	k, _, sched := rig()
	done := 0
	for i := 0; i < 6; i++ {
		remaining := 30 * time.Millisecond
		k.Spawn("burst", policyNest, kernel.BehaviorFunc(
			func(k *kernel.Kernel, tk *kernel.Task) kernel.Action {
				if remaining <= 0 {
					done++
					return kernel.Action{Op: kernel.OpExit}
				}
				remaining -= 500 * time.Microsecond
				return kernel.Action{Run: 500 * time.Microsecond, Op: kernel.OpContinue}
			}))
	}
	// One periodic task keeps ticks alive after the burst so the nest
	// can age-out.
	periodic(k, policyNest, 200*time.Microsecond, 300*time.Microsecond, 100000, nil)
	k.RunFor(40 * time.Millisecond)
	grown := sched.NestSize()
	if grown < 3 {
		t.Fatalf("nest only %d cores during a 7-task burst", grown)
	}
	k.RunFor(80 * time.Millisecond)
	if done != 6 {
		t.Fatalf("burst tasks finished: %d/6", done)
	}
	k.RunFor(300 * time.Millisecond)
	if sched.NestSize() >= grown {
		t.Fatalf("nest did not shrink after the burst: %d -> %d", grown, sched.NestSize())
	}
	if sched.Shrinks == 0 {
		t.Fatal("no shrink decisions recorded")
	}
}

func TestNestConsolidatesAtComparableLatency(t *testing.T) {
	// The Nest claim on this substrate: a light periodic load runs on a
	// couple of cores (the rest stay in deep C-states — the energy
	// proxy) at wakeup latency comparable to CFS's spread placement.
	measure := func(policy int, build func() *kernel.Kernel) (time.Duration, int) {
		k := build()
		var hist stats.Histogram
		for i := 0; i < 3; i++ {
			periodic(k, policy, 20*time.Microsecond, 300*time.Microsecond, 3000, &hist)
		}
		k.RunFor(800 * time.Millisecond)
		touched := 0
		for c := 0; c < 8; c++ {
			if k.CPUBusy(c) > 5*time.Millisecond {
				touched++
			}
		}
		return hist.Quantile(0.5), touched
	}
	nestP50, nestCores := measure(policyNest, func() *kernel.Kernel {
		k, _, _ := rig()
		return k
	})
	cfsP50, cfsCores := measure(policyCFS, func() *kernel.Kernel {
		eng := sim.New()
		k := kernel.New(eng, kernel.Machine8(), kernel.CostsFor(kernel.Machine8()))
		k.RegisterClass(policyCFS, kernel.NewCFS(k))
		return k
	})
	if nestCores > 2 {
		t.Fatalf("nest used %d cores for a 3-task light load", nestCores)
	}
	if cfsCores < 3 {
		t.Fatalf("CFS consolidated to %d cores; expected spread", cfsCores)
	}
	if nestP50 > 3*cfsP50 {
		t.Fatalf("nest p50 %v too far above CFS %v", nestP50, cfsP50)
	}
}
