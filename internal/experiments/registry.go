package experiments

import "fmt"

// Result is what every experiment harness returns: a named, printable
// reproduction of one table or figure.
type Result interface {
	fmt.Stringer
	Name() string
}

// Spec describes one runnable experiment.
type Spec struct {
	Name  string
	What  string
	Run   func(Options) Result
	Heavy bool // excluded from "all" in quick CLI runs unless asked
}

// All lists every experiment in paper order.
func All() []Spec {
	return []Spec{
		{Name: "table2", What: "Table 2: lines of code per component",
			Run: func(o Options) Result { return Table2(o) }},
		{Name: "table3", What: "Table 3: perf pipe latency per scheduler",
			Run: func(o Options) Result { return Table3(o) }},
		{Name: "table4", What: "Table 4: schbench wakeup latency, 80 cores",
			Run: func(o Options) Result { return Table4(o) }},
		{Name: "table5", What: "Table 5: NAS + Phoronix apps, CFS vs WFQ",
			Run: func(o Options) Result { return Table5(o) }},
		{Name: "table6", What: "Table 6: locality hints on schbench",
			Run: func(o Options) Result { return Table6(o) }},
		{Name: "fig2a", What: "Fig 2a: RocksDB tail latency vs load",
			Run: func(o Options) Result { return Fig2(o, false) }},
		{Name: "fig2b", What: "Fig 2b/2c: RocksDB + batch app co-location",
			Run: func(o Options) Result { return Fig2(o, true) }},
		{Name: "fig3", What: "Fig 3: memcached on CFS / Arachne / Enoki-Arachne",
			Run: func(o Options) Result { return Fig3(o) }},
		{Name: "upgrade", What: "§5.7: live-upgrade blackout",
			Run: func(o Options) Result { return Upgrade(o) }},
		{Name: "recordreplay", What: "§5.8: record and replay overheads",
			Run: func(o Options) Result { return RecordReplay(o) }},
		{Name: "equivalence", What: "Appendix A.1: WFQ functional equivalence",
			Run: func(o Options) Result { return Equivalence(o) }},
		{Name: "numa", What: "Extension (not in paper): NUMA-sharded domains vs flat balancing, batched IPIs",
			Run: func(o Options) Result { return NUMA(o) }},
		{Name: "ext-nest", What: "Extension (not in paper): Nest-style warm-core scheduler",
			Run: func(o Options) Result { return ExtNest(o) }},
		{Name: "faults", What: "Extension (not in paper): module fault isolation, kill + CFS fallback",
			Run: func(o Options) Result { return Faults(o) }},
	}
}

// Find returns the spec with the given name.
func Find(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
