package cluster

import (
	"errors"
	"testing"
	"time"

	"enoki/internal/kernel"
)

// TestClusterLifecycle walks the happy path: jobs are placed, run, and
// complete, and the control-plane accounting agrees with the machines.
func TestClusterLifecycle(t *testing.T) {
	c := New(Config{Machines: 2})
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Submit(JobSpec{Cycles: 3, Run: 150 * time.Microsecond, Sleep: 200 * time.Microsecond})
	}
	c.RunUntilIdle()
	st := c.Stats()
	if st.Done != 5 || st.Submitted != 5 {
		t.Fatalf("done/submitted = %d/%d, want 5/5", st.Done, st.Submitted)
	}
	if st.TasksSpawned != 5 {
		t.Fatalf("machines spawned %d tasks, want 5", st.TasksSpawned)
	}
	if st.PlaceP99 <= 0 || st.E2EP99 < st.PlaceP50 {
		t.Fatalf("latency accounting broken: place p99 %v, e2e p99 %v", st.PlaceP99, st.E2EP99)
	}
	for i := 0; i < c.NumJobs(); i++ {
		j := c.Job(i)
		if j.State != JobDone || j.CyclesLeft != 0 {
			t.Fatalf("job %d finished as %v with %d cycles left", i, j.State, j.CyclesLeft)
		}
		if j.DoneAt <= j.StartedAt || j.StartedAt <= j.SubmittedAt {
			t.Fatalf("job %d timeline out of order: %v / %v / %v", i, j.SubmittedAt, j.StartedAt, j.DoneAt)
		}
	}
	if st.MsgsDelivered == 0 || st.MsgsDropped != 0 {
		t.Fatalf("fleet delivered %d dropped %d, want >0 and 0", st.MsgsDelivered, st.MsgsDropped)
	}
}

// TestClusterRoundRobinSpreads pins the round-robin placer: six jobs on
// three machines land two per machine.
func TestClusterRoundRobinSpreads(t *testing.T) {
	c := New(Config{Machines: 3, Placer: &RoundRobin{}})
	defer c.Close()
	for i := 0; i < 6; i++ {
		c.Submit(JobSpec{Cycles: 2})
	}
	c.RunUntilIdle()
	perMachine := map[int]int{}
	for i := 0; i < c.NumJobs(); i++ {
		j := c.Job(i)
		if j.State != JobDone {
			t.Fatalf("job %d not done: %v", i, j.State)
		}
		perMachine[j.Machine]++
	}
	for m := 0; m < 3; m++ {
		if perMachine[m] != 2 {
			t.Fatalf("machine loads %v, want 2 each", perMachine)
		}
	}
}

// TestClusterRebalanceMigrates packs everything onto machine 0, then lets
// the rebalancer migrate jobs toward machine 1 mid-run: migrations must
// checkpoint progress and every job must still finish.
func TestClusterRebalanceMigrates(t *testing.T) {
	c := New(Config{
		Machines:        2,
		Placer:          &Pack{PerCPU: 8},
		RebalanceSpread: 1,
	})
	defer c.Close()
	for i := 0; i < 12; i++ {
		c.Submit(JobSpec{Cycles: 40, Run: 100 * time.Microsecond})
	}
	c.RunUntilIdle()
	st := c.Stats()
	if st.Done != 12 {
		t.Fatalf("done = %d, want 12", st.Done)
	}
	if st.Migrations == 0 || st.StopsSent == 0 {
		t.Fatalf("rebalancer idle: %d migrations, %d stops", st.Migrations, st.StopsSent)
	}
	moved := 0
	for i := 0; i < c.NumJobs(); i++ {
		if j := c.Job(i); j.Migrations > 0 {
			moved++
			if j.CyclesLeft != 0 {
				t.Fatalf("migrated job %d lost its checkpoint: %d cycles left", i, j.CyclesLeft)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no job records a migration")
	}
}

// TestClusterFailover kills a machine mid-run: its jobs restart from their
// last checkpoint on the survivor and everything still completes.
func TestClusterFailover(t *testing.T) {
	c := New(Config{Machines: 2, Placer: &RoundRobin{}})
	defer c.Close()
	for i := 0; i < 8; i++ {
		c.Submit(JobSpec{Cycles: 20, Run: 150 * time.Microsecond, Sleep: 100 * time.Microsecond})
	}
	c.FailMachine(0, 2*time.Millisecond)
	c.RunUntilIdle()
	st := c.Stats()
	if st.Done != 8 {
		t.Fatalf("done = %d, want 8 (stats %+v)", st.Done, st)
	}
	if st.Lost == 0 {
		t.Fatal("no job was lost to the failure")
	}
	if st.MachinesAlive != 1 {
		t.Fatalf("machines alive = %d, want 1", st.MachinesAlive)
	}
	restarted := 0
	for i := 0; i < c.NumJobs(); i++ {
		j := c.Job(i)
		if j.State != JobDone {
			t.Fatalf("job %d not done: %v", i, j.State)
		}
		if j.Restarts > 0 {
			restarted++
			if j.Machine != 1 {
				t.Fatalf("restarted job %d finished on dead machine %d", i, j.Machine)
			}
		}
	}
	if restarted != st.Lost {
		t.Fatalf("restarted jobs %d != lost placements %d", restarted, st.Lost)
	}
	// The frozen machine's clock must trail the fleet floor.
	if now := c.Machine(0).Sharded().Now(); now >= c.Now() {
		t.Fatalf("dead machine clock %v reached fleet floor %v", now, c.Now())
	}
}

// TestClusterAllDeadTerminates pins the liveness of the control loop: with
// every machine dead and jobs stranded Pending, the reconciler goes
// quiescent instead of ticking forever, so RunUntilIdle returns.
func TestClusterAllDeadTerminates(t *testing.T) {
	c := New(Config{Machines: 1})
	defer c.Close()
	c.Submit(JobSpec{Cycles: 1 << 20, Run: time.Millisecond})
	c.FailMachine(0, time.Millisecond)
	c.RunUntilIdle()
	st := c.Stats()
	if st.Done != 0 || st.MachinesAlive != 0 {
		t.Fatalf("done/alive = %d/%d, want 0/0", st.Done, st.MachinesAlive)
	}
	if j := c.Job(0); j.State != JobPending || j.Restarts != 1 {
		t.Fatalf("stranded job state %v restarts %d, want pending/1", j.State, j.Restarts)
	}
}

// TestClusterCloseIdempotence mirrors the system-level Close hardening:
// first Close succeeds, the second reports ErrClosed, and post-Close use
// panics.
func TestClusterCloseIdempotence(t *testing.T) {
	c := New(Config{Machines: 1, Parallel: true})
	c.Submit(JobSpec{})
	c.Run(5 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	err := c.Close()
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Submit on closed cluster did not panic")
		}
	}()
	c.Submit(JobSpec{})
}

// TestClusterNUMAMachines runs two-node machines inside the fleet: jobs
// spread across shards by id, exercising the nested (fleet-over-IPI)
// executor stack.
func TestClusterNUMAMachines(t *testing.T) {
	m := kernel.MachineNUMA("fleet16", 2, 2, 4)
	c := New(Config{Machines: 3, Machine: m})
	defer c.Close()
	for i := 0; i < 12; i++ {
		c.Submit(JobSpec{Cycles: 4, Run: 120 * time.Microsecond, Sleep: 80 * time.Microsecond})
	}
	c.RunUntilIdle()
	if st := c.Stats(); st.Done != 12 {
		t.Fatalf("done = %d, want 12", st.Done)
	}
	shards := map[int]bool{}
	for i := 0; i < c.NumJobs(); i++ {
		shards[c.Job(i).Shard] = true
	}
	if !shards[0] || !shards[1] {
		t.Fatalf("jobs used shards %v, want both NUMA nodes", shards)
	}
}

// TestPlacerByName covers the CLI mapping.
func TestPlacerByName(t *testing.T) {
	for _, name := range []string{"roundrobin", "leastloaded", "pack"} {
		p := PlacerByName(name)
		if p == nil || p.Name() != name {
			t.Fatalf("PlacerByName(%q) = %v", name, p)
		}
	}
	if PlacerByName("nope") != nil {
		t.Fatal("unknown placer name must map to nil")
	}
}
