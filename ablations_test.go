// Ablation benchmarks for the design choices DESIGN.md calls out: the
// Shinjuku preemption quantum, WFQ's idle-time work stealing, the Enoki
// per-invocation overhead, and the deep-C-state wakeup cost that drives the
// schbench/locality results.
package enoki_test

import (
	"fmt"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/shinjuku"
	"enoki/internal/sched/wfq"
	"enoki/internal/sim"
	"enoki/internal/workload"
)

const (
	ablPolicyCFS   = 0
	ablPolicyEnoki = 1
)

// BenchmarkAblation_ShinjukuSlice sweeps the preemption quantum on the
// dispersive RocksDB load: too coarse strands short requests behind long
// ones, too fine burns the CPUs on preemption (the paper chose 10µs "to
// prevent overloading the scheduler").
func BenchmarkAblation_ShinjukuSlice(b *testing.B) {
	for _, slice := range []time.Duration{5 * time.Microsecond, 10 * time.Microsecond,
		20 * time.Microsecond, 50 * time.Microsecond, 200 * time.Microsecond} {
		b.Run(fmt.Sprintf("slice=%v", slice), func(b *testing.B) {
			var p99 time.Duration
			for i := 0; i < b.N; i++ {
				eng := sim.New()
				k := kernel.New(eng, kernel.Machine8(), kernel.CostsFor(kernel.Machine8()))
				enokic.Load(k, ablPolicyEnoki, enokic.DefaultConfig(),
					func(env core.Env) core.Scheduler {
						return shinjuku.New(env, ablPolicyEnoki, slice)
					})
				k.RegisterClass(ablPolicyCFS, kernel.NewCFS(k))
				db := workload.NewRocksDB(k, workload.RocksDBConfig{
					Policy: ablPolicyEnoki, Rate: 55000,
					Warmup: 100 * time.Millisecond, Duration: 300 * time.Millisecond,
				})
				p99 = db.Start().P99
			}
			b.ReportMetric(float64(p99)/float64(time.Microsecond), "p99_µs")
		})
	}
}

// BenchmarkAblation_WFQStealing disables WFQ's only balancing mechanism and
// measures a pinned-then-released burst: without stealing, released work
// stays piled on one core.
func BenchmarkAblation_WFQStealing(b *testing.B) {
	run := func(noSteal bool) time.Duration {
		eng := sim.New()
		k := kernel.New(eng, kernel.Machine8(), kernel.CostsFor(kernel.Machine8()))
		var sched *wfq.Sched
		enokic.Load(k, ablPolicyEnoki, enokic.DefaultConfig(),
			func(env core.Env) core.Scheduler {
				sched = wfq.New(env, ablPolicyEnoki)
				sched.NoSteal = noSteal
				return sched
			})
		k.RegisterClass(ablPolicyCFS, kernel.NewCFS(k))
		var finish time.Duration
		done := 0
		var tasks []*kernel.Task
		for i := 0; i < 8; i++ {
			remaining := 10 * time.Millisecond
			tasks = append(tasks, k.Spawn("w", ablPolicyEnoki, kernel.BehaviorFunc(
				func(kk *kernel.Kernel, t *kernel.Task) kernel.Action {
					if remaining <= 0 {
						done++
						if done == 8 {
							finish = time.Duration(kk.Now())
						}
						return kernel.Action{Op: kernel.OpExit}
					}
					remaining -= 500 * time.Microsecond
					return kernel.Action{Run: 500 * time.Microsecond, Op: kernel.OpContinue}
				}), kernel.WithAffinity(kernel.SingleCPU(0))))
		}
		k.RunFor(time.Millisecond)
		for _, t := range tasks {
			k.SetAffinity(t, kernel.AllCPUs(8))
		}
		k.RunFor(200 * time.Millisecond)
		return finish
	}
	b.Run("steal=on", func(b *testing.B) {
		var d time.Duration
		for i := 0; i < b.N; i++ {
			d = run(false)
		}
		b.ReportMetric(float64(d)/float64(time.Millisecond), "makespan_ms")
	})
	b.Run("steal=off", func(b *testing.B) {
		var d time.Duration
		for i := 0; i < b.N; i++ {
			d = run(true)
		}
		b.ReportMetric(float64(d)/float64(time.Millisecond), "makespan_ms")
	})
}

// BenchmarkAblation_FrameworkOverhead sweeps the per-invocation cost to
// show how Table 3's WFQ column would move if the framework were cheaper or
// pricier than the measured 100-150ns.
func BenchmarkAblation_FrameworkOverhead(b *testing.B) {
	for _, oh := range []time.Duration{0, 60 * time.Nanosecond, 130 * time.Nanosecond,
		300 * time.Nanosecond, 1000 * time.Nanosecond} {
		b.Run(fmt.Sprintf("overhead=%v", oh), func(b *testing.B) {
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				eng := sim.New()
				k := kernel.New(eng, kernel.Machine8(), kernel.CostsFor(kernel.Machine8()))
				cfg := enokic.DefaultConfig()
				cfg.CallOverhead = oh
				enokic.Load(k, ablPolicyEnoki, cfg, func(env core.Env) core.Scheduler {
					return wfq.New(env, ablPolicyEnoki)
				})
				k.RegisterClass(ablPolicyCFS, kernel.NewCFS(k))
				lat = workload.RunPipe(k, workload.PipeConfig{
					Policy: ablPolicyEnoki, Messages: 10000, SameCore: true,
				}).PerWakeup
			}
			b.ReportMetric(float64(lat)/float64(time.Microsecond), "pipe_µs")
		})
	}
}

// BenchmarkAblation_DeepIdleExit removes the deep-C-state wakeup cost: the
// schbench medians collapse toward the context-switch floor, demonstrating
// it is the dominant term in Tables 4 and 6.
func BenchmarkAblation_DeepIdleExit(b *testing.B) {
	run := func(exit time.Duration) time.Duration {
		eng := sim.New()
		costs := kernel.CostsFor(kernel.Machine8())
		costs.DeepIdleExit = exit
		k := kernel.New(eng, kernel.Machine8(), costs)
		k.RegisterClass(ablPolicyCFS, kernel.NewCFS(k))
		return workload.RunSchbench(k, workload.SchbenchConfig{
			Policy: ablPolicyCFS, MessageThreads: 2, WorkersPerMsg: 2,
			Warmup: 50 * time.Millisecond, Duration: 200 * time.Millisecond,
			WorkerBurst: 2 * time.Microsecond, MsgWork: 2 * time.Microsecond,
			RoundPause: 150 * time.Microsecond,
		}).P50
	}
	for _, exit := range []time.Duration{0, 30 * time.Microsecond, 68 * time.Microsecond} {
		b.Run(fmt.Sprintf("exit=%v", exit), func(b *testing.B) {
			var p50 time.Duration
			for i := 0; i < b.N; i++ {
				p50 = run(exit)
			}
			b.ReportMetric(float64(p50)/float64(time.Microsecond), "schbench_p50_µs")
		})
	}
}
