package traffic_test

import (
	"testing"
	"time"

	"enoki/internal/cluster"
	"enoki/internal/kernel"
	"enoki/internal/overload"
	"enoki/internal/workload/traffic"
)

func fleetScenario() traffic.Scenario {
	return traffic.Scenario{
		Seed:     42,
		Rate:     120_000,
		Duration: 3 * time.Millisecond,
		Classes: []traffic.Class{
			{Name: "api", Weight: 0.7, Work: 80 * time.Microsecond,
				ReqPerConn: 2, Think: 100 * time.Microsecond},
			{Name: "batch", Admission: 1, Weight: 0.3, Work: 150 * time.Microsecond},
		},
		Regions: []traffic.Region{
			{Name: "us", Share: 0.5},
			{Name: "eu", Share: 0.5, Offset: 1500 * time.Microsecond},
		},
		Shapes: []traffic.Shape{
			{Kind: traffic.Flash, Class: 0, At: time.Millisecond, Dur: time.Millisecond, Mult: 6},
		},
	}
}

func fleetAdmission() []overload.ClassConfig {
	return []overload.ClassConfig{
		{Name: "api", MaxInflight: 24, MaxRetries: 2, Backoff: 400 * time.Microsecond},
		{Name: "batch"},
	}
}

func fleetDrive(t *testing.T, parallel bool) (*traffic.FleetDriver, cluster.Stats, []overload.Counters) {
	t.Helper()
	c := cluster.New(cluster.Config{
		Machines:  4,
		Machine:   kernel.Machine8(),
		Admission: fleetAdmission(),
		Parallel:  parallel,
	})
	defer c.Close()
	f := traffic.NewFleetDriver(c, fleetScenario())
	f.Start()
	c.RunUntilIdle()
	if v := f.CheckConservation(); len(v) != 0 {
		t.Fatalf("fleet conservation violations: %v", v)
	}
	cs := []overload.Counters{c.Overload().Counters(0), c.Overload().Counters(1)}
	return f, c.Stats(), cs
}

func TestFleetDriveShedsAndConserves(t *testing.T) {
	f, st, cs := fleetDrive(t, false)
	if f.Connections() < 100 {
		t.Fatalf("only %d connections offered", f.Connections())
	}
	api := cs[0]
	if api.Shed == 0 || api.Dropped == 0 {
		t.Fatalf("flash crowd never shed at the fleet front door: %+v", api)
	}
	if api.Admitted == 0 {
		t.Fatal("everything shed")
	}
	if cs[1].Shed != 0 {
		t.Fatalf("unlimited batch class shed %d", cs[1].Shed)
	}
	total := f.Counters()
	if int(total.Admitted) != st.Done {
		t.Fatalf("admitted %d jobs, %d done", total.Admitted, st.Done)
	}
}

func TestFleetDriveSerialParallelIdentical(t *testing.T) {
	_, sst, scs := fleetDrive(t, false)
	_, pst, pcs := fleetDrive(t, true)
	if sst.Done != pst.Done || sst.Submitted != pst.Submitted {
		t.Fatalf("serial %d/%d vs parallel %d/%d done/submitted",
			sst.Done, sst.Submitted, pst.Done, pst.Submitted)
	}
	for i := range scs {
		if scs[i] != pcs[i] {
			t.Fatalf("class %d counters differ: serial %+v parallel %+v", i, scs[i], pcs[i])
		}
	}
}
