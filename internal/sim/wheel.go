// The hierarchical timer queue behind Engine: a near wheel of fixed-grain
// slots covering the next ~2 ms of virtual time, plus an overflow min-heap
// for everything beyond the wheel horizon. Arm and cancel are O(1) for the
// near window — the hot path, since the kernel's kicks, slice timers, and
// segment completions all land within a couple of milliseconds of now — and
// far-future events (long sleeps, drain timers) pay one heap push plus one
// batch promotion when the window advances over them.
//
// Ordering is identical to the old global binary heap: events fire in
// (time, sequence) order, ties in insertion order. The wheel stores value
// entries {at, seq, ev}; an Event can be re-armed while queued by pushing a
// fresh entry and letting the stale one (seq mismatch) be skipped on pop,
// which is what keeps arm/cancel O(1) without index maintenance. Stale and
// tombstoned entries are dropped lazily on pop and in bulk by maybeCompact.
package sim

import "enoki/internal/ktime"

const (
	// slotShift/slotGrain: each near-wheel slot covers 2^11 ns ≈ 2 µs.
	slotShift = 11
	slotGrain = 1 << slotShift
	// numSlots slots give the near wheel a ~2.1 ms horizon — wide enough
	// that tick timers (1 ms) and typical sleeps stay out of the overflow
	// heap.
	numSlots = 1024
)

// entry is one queued occurrence of an event. The (at, seq) pair is the
// global firing order and doubles as the staleness check: if it no longer
// matches the event's current arming, the entry is dead.
type entry struct {
	at  ktime.Time
	seq uint64
	ev  *Event
}

// less orders entries by (time, sequence).
func (a entry) less(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// slot is one near-wheel bucket. Entries [idx:sorted) are in firing order;
// [sorted:] is the unsorted tail appended since the last sort (same-slot
// pushes while the slot is draining — zero-delay kicks). The tail is folded
// in lazily by slotMin/slotPop.
type slot struct {
	ents   []entry
	idx    int
	sorted int
}

func (s *slot) reset() {
	s.ents = s.ents[:0]
	s.idx, s.sorted = 0, 0
}

func (s *slot) empty() bool { return s.idx >= len(s.ents) }

// normalize folds the unsorted tail into the sorted region. Ticks and wake
// bursts push same-time entries in seq order, so the tail is usually already
// sorted and the insertion pass is near-linear; a large disordered tail
// falls back to heapsort.
func (s *slot) normalize() {
	if s.sorted >= len(s.ents) {
		return
	}
	// Drop the consumed prefix so the sort works on live entries only.
	if s.idx > 0 {
		n := copy(s.ents, s.ents[s.idx:])
		s.ents = s.ents[:n]
		s.sorted -= s.idx
		s.idx = 0
	}
	if tail := len(s.ents) - s.sorted; tail > 48 {
		heapsortEntries(s.ents[s.sorted:])
	} else {
		insertionSortEntries(s.ents[s.sorted:])
	}
	// Merge the (now sorted) tail with the sorted head in place: standard
	// binary-insertion of the tail block, cheap because the tail is short
	// or the head is exhausted.
	mergeSortedEntries(s.ents, s.sorted)
	s.sorted = len(s.ents)
}

// peek returns the slot's earliest live-ordered entry without consuming it.
func (s *slot) peek() entry {
	s.normalize()
	return s.ents[s.idx]
}

// pop consumes and returns the slot's earliest entry.
func (s *slot) pop() entry {
	s.normalize()
	e := s.ents[s.idx]
	s.ents[s.idx] = entry{}
	s.idx++
	if s.idx >= len(s.ents) {
		s.reset()
	}
	return e
}

// insertionSortEntries sorts a short or nearly sorted run in place.
func insertionSortEntries(e []entry) {
	for i := 1; i < len(e); i++ {
		v := e[i]
		j := i - 1
		for j >= 0 && v.less(e[j]) {
			e[j+1] = e[j]
			j--
		}
		e[j+1] = v
	}
}

// heapsortEntries is the allocation-free O(n log n) fallback for large
// disordered tails (sort.Slice would allocate its closure on the hot path).
func heapsortEntries(e []entry) {
	n := len(e)
	for i := n/2 - 1; i >= 0; i-- {
		siftEntries(e, i, n)
	}
	for i := n - 1; i > 0; i-- {
		e[0], e[i] = e[i], e[0]
		siftEntries(e, 0, i)
	}
}

func siftEntries(e []entry, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && e[c].less(e[c+1]) {
			c++
		}
		if !e[root].less(e[c]) {
			return
		}
		e[root], e[c] = e[c], e[root]
		root = c
	}
}

// mergeSortedEntries merges e[:mid] and e[mid:], both sorted, into one
// sorted slice in place by repeated insertion of tail elements. The tail is
// short in steady state, so this beats an allocating merge buffer.
func mergeSortedEntries(e []entry, mid int) {
	for i := mid; i < len(e); i++ {
		v := e[i]
		j := i - 1
		for j >= 0 && v.less(e[j]) {
			e[j+1] = e[j]
			j--
		}
		e[j+1] = v
	}
}

// overflow is a manual min-heap of entries (container/heap would box every
// entry through interface{} and allocate on each push).
type overflow struct {
	ents []entry
}

func (o *overflow) empty() bool { return len(o.ents) == 0 }

func (o *overflow) push(e entry) {
	o.ents = append(o.ents, e)
	i := len(o.ents) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !o.ents[i].less(o.ents[p]) {
			break
		}
		o.ents[i], o.ents[p] = o.ents[p], o.ents[i]
		i = p
	}
}

func (o *overflow) pop() entry {
	e := o.ents[0]
	n := len(o.ents) - 1
	o.ents[0] = o.ents[n]
	o.ents[n] = entry{}
	o.ents = o.ents[:n]
	if n > 0 {
		o.siftDown(0)
	}
	return e
}

func (o *overflow) siftDown(i int) {
	n := len(o.ents)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && o.ents[c+1].less(o.ents[c]) {
			c++
		}
		if !o.ents[c].less(o.ents[i]) {
			return
		}
		o.ents[i], o.ents[c] = o.ents[c], o.ents[i]
		i = c
	}
}

// wheelQueue is the full hierarchical structure: near wheel + overflow
// level. base is the absolute slot number (at >> slotShift) of the window
// start; the window covers slot numbers [base, base+numSlots).
type wheelQueue struct {
	slots    [numSlots]slot
	base     int64 // absolute slot number of window start
	nearCnt  int   // entries in the near wheel
	over     overflow
	nentries int // total entries, live + stale + tombstoned
}

func slotOf(t ktime.Time) int64 { return int64(t) >> slotShift }

// windowEnd returns the first absolute time beyond the near window.
func (w *wheelQueue) windowEnd() ktime.Time {
	return ktime.Time((w.base + numSlots) << slotShift)
}

// push files an entry into the near wheel or the overflow level.
func (w *wheelQueue) push(e entry) {
	w.nentries++
	s := slotOf(e.at)
	if s < w.base {
		// Window already advanced past this time: only possible when the
		// clock sits mid-window (pushes are never in the past), so the
		// current base slot is the right home.
		s = w.base
	}
	if s < w.base+numSlots {
		w.slots[s%numSlots].ents = append(w.slots[s%numSlots].ents, e)
		w.nearCnt++
		return
	}
	w.over.push(e)
}

// advanceTo moves the window start forward to absolute slot s (never
// backward) and promotes overflow entries that now fall inside the window.
// Callers only invoke it when the slots being skipped are empty.
func (w *wheelQueue) advanceTo(s int64) {
	if s <= w.base {
		return
	}
	w.base = s
	end := w.windowEnd()
	for !w.over.empty() && w.over.ents[0].at < end {
		e := w.over.pop()
		w.nentries-- // push re-counts it
		w.push(e)
	}
}

// next locates the earliest entry. When extract is true the entry is
// consumed; otherwise it is left in place. The second result is false when
// the queue holds no entries at all.
func (w *wheelQueue) next(extract bool) (entry, bool) {
	if w.nentries == 0 {
		return entry{}, false
	}
	for {
		if w.nearCnt > 0 {
			// Scan forward from the window start to the first non-empty
			// slot. The scan is amortized: base only moves forward, and
			// each slot is visited once per window traversal.
			for i := int64(0); i < numSlots; i++ {
				sl := &w.slots[(w.base+i)%numSlots]
				if sl.empty() {
					continue
				}
				if i > 0 {
					w.advanceTo(w.base + i)
					// Promotion may have refilled earlier slots — the
					// promoted entries land at or after the new base, so
					// restart the scan from it.
					sl = &w.slots[w.base%numSlots]
					if sl.empty() {
						break // rescan from the top
					}
				}
				if extract {
					e := sl.pop()
					w.nearCnt--
					w.nentries--
					return e, true
				}
				return sl.peek(), true
			}
			continue
		}
		if w.over.empty() {
			return entry{}, false
		}
		// Near wheel empty: jump the window to the overflow root, which
		// promotes it (and any peers) into the wheel.
		w.advanceTo(slotOf(w.over.ents[0].at))
		if w.nearCnt == 0 {
			// Defensive: promotion must have moved the root in.
			panic("sim: overflow promotion moved no entries")
		}
	}
}

// compact rebuilds every slot and the overflow without stale or tombstoned
// entries. Consumed prefixes are dropped and slots are left unsorted (the
// next pop re-normalizes), which keeps the pass a single O(n) sweep.
// Tombstoned fire-and-forget events cannot exist (no handle, no Cancel), so
// dropped entries never need free-list release.
func (w *wheelQueue) compact(liveEntry func(entry) bool) {
	total := 0
	for i := range w.slots {
		sl := &w.slots[i]
		kept := sl.ents[:0]
		for _, e := range sl.ents[sl.idx:] {
			if liveEntry(e) {
				kept = append(kept, e)
			}
		}
		for j := len(kept); j < len(sl.ents); j++ {
			sl.ents[j] = entry{}
		}
		sl.ents = kept
		sl.idx, sl.sorted = 0, 0
		total += len(kept)
	}
	w.nearCnt = total
	keptOver := w.over.ents[:0]
	for _, e := range w.over.ents {
		if liveEntry(e) {
			keptOver = append(keptOver, e)
		}
	}
	for j := len(keptOver); j < len(w.over.ents); j++ {
		w.over.ents[j] = entry{}
	}
	w.over.ents = keptOver
	// Re-heapify: order within the kept slice was heap order, not sorted.
	for i := len(w.over.ents)/2 - 1; i >= 0; i-- {
		w.over.siftDown(i)
	}
	w.nentries = total + len(w.over.ents)
}
