// Package core is the Go analogue of libEnoki: the library that is "compiled
// with the scheduler code into a module". It defines the EnokiScheduler
// trait (Table 1 of the paper) as the Scheduler interface, the Schedulable
// proof-of-runnability token, the message structures that cross the
// framework boundary, the bidirectional user/kernel hint queues, the lock
// shims whose acquisition order the record system logs, and the state-
// transfer capsules live upgrade passes between module versions.
//
// Scheduler modules import only this package (plus the standard library);
// internal/enokic drives them inside the simulated kernel, and
// internal/replay drives the exact same code at userspace from a record log.
package core

import "time"

// PickError explains why a pick_next_task return value was rejected; it is
// delivered to the scheduler through PntErr so the module can recover the
// task (§3.1).
type PickError int

// Pick rejection causes.
const (
	// PickWrongCPU: the token's CPU does not match the CPU being picked
	// for. Running the task there would corrupt kernel state; this is
	// the crash the Schedulable type exists to prevent.
	PickWrongCPU PickError = iota + 1
	// PickStale: the token's generation is not current (the scheduler
	// held onto proof it had already returned).
	PickStale
	// PickNotQueued: the task is not runnable on this run queue at all.
	PickNotQueued
	// PickConsumed: the exact token object was already spent.
	PickConsumed
)

func (e PickError) String() string {
	switch e {
	case PickWrongCPU:
		return "wrong-cpu"
	case PickStale:
		return "stale-schedulable"
	case PickNotQueued:
		return "not-queued"
	case PickConsumed:
		return "consumed-schedulable"
	default:
		return "unknown"
	}
}

// Error makes each cause constant an errors.Is-able sentinel: code holding a
// wrapped pick failure can test it with errors.Is(err, core.PickWrongCPU)
// instead of unwrapping to the concrete type. PickError is a comparable
// value type, so errors.Is needs no Is method.
func (e PickError) Error() string { return "enoki: pick rejected: " + e.String() }

// TransferOut is the state capsule an outgoing module exports from
// reregister_prepare during live upgrade (§3.2). State is completely custom;
// the only contract is that the incoming module understands it.
type TransferOut struct {
	State any
}

// TransferIn delivers the previous module's capsule to reregister_init.
type TransferIn struct {
	State any
}

// Hint is a userspace-to-kernel scheduling hint (§3.3). Schedulers define
// their own concrete types; record/replay serialises them with encoding/gob,
// so workload hint types must be gob-registered.
type Hint any

// RevMessage is a kernel-to-userspace message on a reverse queue (§3.3).
type RevMessage any

// Scheduler is the EnokiScheduler trait (Table 1): the API a scheduler
// module must implement to be loadable. Most functions manage task state in
// response to kernel events; the reregister pair handles live upgrade; the
// queue functions and ParseHint handle user communication.
//
// A scheduler is only expected to manage its own state in response to these
// calls: the kernel's core scheduling code decides when each is invoked, and
// Enoki-C (internal/enokic) owns all kernel state. Runtime values are
// tracked by the framework and passed in, so a correct module needs no
// timing source of its own — which is what makes record/replay exact.
type Scheduler interface {
	// GetPolicy returns the policy number the module registers under.
	GetPolicy() int

	// PickNextTask picks the task cpu should run, returning its
	// Schedulable as proof, or nil to leave the CPU to lower classes.
	// curr is the Schedulable of the task currently on the CPU, if any;
	// currRuntime is that task's total runtime.
	PickNextTask(cpu int, curr *Schedulable, currRuntime time.Duration) *Schedulable

	// PntErr reports that the chosen task could not be scheduled; sched
	// returns ownership of the rejected token.
	PntErr(cpu int, pid int, err PickError, sched *Schedulable)

	// TaskDead reports that a task died.
	TaskDead(pid int)

	// TaskBlocked reports that a task blocked on cpu with the given
	// total runtime.
	TaskBlocked(pid int, runtime time.Duration, cpu int)

	// TaskWakeup reports a wakeup: the task last ran on lastCPU and was
	// enqueued on wakeCPU; sched is the fresh proof for wakeCPU.
	// deferrable distinguishes interruptible sleeps.
	TaskWakeup(pid int, runtime time.Duration, deferrable bool, lastCPU, wakeCPU int, sched *Schedulable)

	// TaskNew reports a new task joining the scheduler with its proof;
	// allowed is the task's CPU affinity list (nil means all CPUs).
	TaskNew(pid int, runtime time.Duration, runnable bool, allowed []int, sched *Schedulable)

	// TaskPreempt reports that the task was descheduled on cpu and is
	// runnable again there; sched is fresh proof. preempted is true for
	// an involuntary preemption (a higher-priority class or resched took
	// the CPU) and false when the framework requeued the task for its own
	// reasons (affinity or policy moves), letting latency-sensitive
	// policies boost genuinely preempted tasks.
	TaskPreempt(pid int, runtime time.Duration, cpu int, preempted bool, sched *Schedulable)

	// TaskYield reports a voluntary yield; sched is fresh proof.
	TaskYield(pid int, runtime time.Duration, cpu int, sched *Schedulable)

	// TaskDeparted reports the task is leaving this scheduler (e.g.
	// sched_setscheduler away); the module returns the task's token.
	TaskDeparted(pid, cpu int) *Schedulable

	// TaskAffinityChanged reports a new allowed-CPU list for the task.
	TaskAffinityChanged(pid int, allowed []int)

	// TaskPrioChanged reports a priority (nice) change.
	TaskPrioChanged(pid, prio int)

	// TaskTick runs on every scheduler tick on cpu while one of the
	// module's tasks is current; currPID/currRuntime describe that task
	// (the framework tracks runtime on the module's behalf, §3.1).
	TaskTick(cpu int, queued bool, currPID int, currRuntime time.Duration)

	// SelectTaskRQ chooses the CPU for a waking or newly attached task.
	SelectTaskRQ(pid, prevCPU int, wakeup bool) int

	// MigrateTaskRQ reports the kernel moved the task to newCPU; sched
	// is the proof for the new CPU and the module must return the old
	// token so it holds proof for exactly one CPU.
	MigrateTaskRQ(pid, newCPU int, sched *Schedulable) *Schedulable

	// Balance asks the module for the pid of a task it wants migrated to
	// cpu; ok=false means no rebalancing is needed.
	Balance(cpu int) (pid uint64, ok bool)

	// BalanceErr reports the chosen task could not be moved; sched, when
	// non-nil, returns ownership of the task's token.
	BalanceErr(cpu int, pid uint64, sched *Schedulable)

	// ReregisterPrepare quiesces the module for live upgrade and exports
	// the state capsule handed to the next version.
	ReregisterPrepare() *TransferOut

	// ReregisterInit initialises the module from the previous version's
	// capsule (nil on first load).
	ReregisterInit(in *TransferIn)

	// RegisterQueue attaches a user-to-kernel hint queue; the module
	// returns the queue id it will be addressed by.
	RegisterQueue(q *HintQueue) int

	// RegisterReverseQueue attaches a kernel-to-user queue and returns
	// its id.
	RegisterReverseQueue(q *RevQueue) int

	// EnterQueue tells the module count hints await it on queue id.
	EnterQueue(id, count int)

	// UnregisterQueue detaches and returns the hint queue.
	UnregisterQueue(id int) *HintQueue

	// UnregisterRevQueue detaches and returns the reverse queue.
	UnregisterRevQueue(id int) *RevQueue

	// ParseHint synchronously processes a single hint.
	ParseHint(hint Hint)
}

// BaseScheduler provides default no-op implementations for the optional
// parts of the trait, mirroring Rust trait default methods: embed it and
// implement only what the policy needs.
type BaseScheduler struct{}

// PntErr implements Scheduler.
func (BaseScheduler) PntErr(cpu int, pid int, err PickError, sched *Schedulable) {}

// TaskDead implements Scheduler.
func (BaseScheduler) TaskDead(pid int) {}

// TaskBlocked implements Scheduler.
func (BaseScheduler) TaskBlocked(pid int, runtime time.Duration, cpu int) {}

// TaskAffinityChanged implements Scheduler.
func (BaseScheduler) TaskAffinityChanged(pid int, allowed []int) {}

// TaskPrioChanged implements Scheduler.
func (BaseScheduler) TaskPrioChanged(pid, prio int) {}

// TaskTick implements Scheduler.
func (BaseScheduler) TaskTick(cpu int, queued bool, currPID int, currRuntime time.Duration) {}

// Balance implements Scheduler: no rebalancing.
func (BaseScheduler) Balance(cpu int) (uint64, bool) { return 0, false }

// BalanceErr implements Scheduler.
func (BaseScheduler) BalanceErr(cpu int, pid uint64, sched *Schedulable) {}

// ReregisterPrepare implements Scheduler: no state to transfer.
func (BaseScheduler) ReregisterPrepare() *TransferOut { return &TransferOut{} }

// ReregisterInit implements Scheduler.
func (BaseScheduler) ReregisterInit(in *TransferIn) {}

// RegisterQueue implements Scheduler: queues unsupported by default.
func (BaseScheduler) RegisterQueue(q *HintQueue) int { return -1 }

// RegisterReverseQueue implements Scheduler.
func (BaseScheduler) RegisterReverseQueue(q *RevQueue) int { return -1 }

// EnterQueue implements Scheduler.
func (BaseScheduler) EnterQueue(id, count int) {}

// UnregisterQueue implements Scheduler.
func (BaseScheduler) UnregisterQueue(id int) *HintQueue { return nil }

// UnregisterRevQueue implements Scheduler.
func (BaseScheduler) UnregisterRevQueue(id int) *RevQueue { return nil }

// ParseHint implements Scheduler.
func (BaseScheduler) ParseHint(hint Hint) {}
