// Package sim implements the discrete-event simulation engine underneath the
// simulated kernel. The engine owns a hierarchical timer queue — a near
// wheel covering the next ~2 ms of virtual time plus an overflow level for
// far-future events (wheel.go) — ordered by (virtual time, insertion
// sequence); ties in time execute in insertion order, which makes every run
// fully deterministic.
//
// The engine is deliberately tiny: the kernel package layers CPUs, run
// queues, and timers on top of it. Events are plain closures. An event can be
// cancelled by its handle; cancellation is O(1) (the event is tombstoned and
// skipped when popped), which matters because the kernel cancels and re-arms
// per-CPU completion events on every preemption. Arming is O(1) too: the
// near wheel files the event straight into its time slot, and re-arming a
// queued event just files a fresh slot entry and lets the stale one be
// skipped.
//
// The hot paths are allocation-free in steady state:
//
//   - Post/PostAt schedule fire-and-forget events drawn from an internal
//     free list; because no handle escapes, the Event is recycled the moment
//     it fires.
//   - NewEvent + Reschedule give timer owners (the kernel's per-CPU tick and
//     reschedule timers, per-task completion events) one persistent Event
//     that is re-armed in place instead of allocating a closure + Event per
//     arm.
//
// Tombstones and stale re-arm entries do not accumulate: the engine tracks
// the live count, and when dead entries dominate the queue it compacts every
// slot and the overflow in one O(n) pass.
package sim

import (
	"fmt"

	"enoki/internal/ktime"
)

// Event is a scheduled closure. The zero value is invalid; events are created
// through Engine.At / Engine.After / Engine.NewEvent.
type Event struct {
	at        ktime.Time
	seq       uint64 // sequence of the current arming; older queue entries are stale
	fn        func()
	cancelled bool
	// recycle marks a fire-and-forget event (Post/PostAt): no handle
	// escaped, so the engine returns it to the free list once it fires.
	recycle bool
	// armed means a queue entry with matching seq exists.
	armed bool
	eng   *Engine
}

// Cancel tombstones the event. Cancelling an already-fired or
// already-cancelled event is a no-op. The event object stays valid: a later
// Engine.Reschedule re-arms it.
func (e *Event) Cancel() {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.armed && e.eng != nil {
		e.eng.live--
		e.eng.nextValid = false // the cancelled event may have been the minimum
		e.eng.maybeCompact()
	}
}

// Cancelled reports whether Cancel was called after the event was last
// armed.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Time returns the virtual instant the event is (or was) scheduled for.
func (e *Event) Time() ktime.Time { return e.at }

// Queued reports whether the event is currently armed (in the queue and not
// tombstoned).
func (e *Event) Queued() bool { return e != nil && e.armed && !e.cancelled }

// compactFloor is the minimum queue size before dead-entry compaction is
// considered; below it the garbage is too small to matter.
const compactFloor = 64

// compactSlack is the dead-entry allowance on top of 2×live before a
// compaction pass is worth its O(n): persistent timers re-armed in place
// legitimately keep one stale entry each, so steady state sits near 2×live
// and must not trigger a sweep per cancel.
const compactSlack = 128

// Engine is a deterministic discrete-event executor. It is not safe for
// concurrent use; all simulation state mutates from event closures running on
// the caller's goroutine. For multi-goroutine simulations, see Sharded,
// which runs one Engine per shard and merges at epoch boundaries.
type Engine struct {
	now     ktime.Time
	seq     uint64
	wq      wheelQueue
	live    int // queued events that are neither tombstoned nor stale
	free    []*Event
	stopped bool

	fired    uint64
	recycled uint64

	// Next-event cache for NextEventTime: a fleet coordinator peeks every
	// machine every epoch, and most machines are quiescent between peeks —
	// without the cache each peek re-walks the timer wheel. The cache is
	// tightened in place by push (a new event can only lower the minimum)
	// and invalidated by anything that can raise it (fire, Cancel,
	// Reschedule of a queued event).
	nextAt    ktime.Time
	nextOK    bool
	nextValid bool
}

// New returns an engine with the clock at T+0 and an empty queue.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() ktime.Time { return e.now }

// Fired returns how many events have executed, a useful determinism probe in
// tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live (non-cancelled) queued events.
func (e *Engine) Pending() int { return e.live }

// QueueLen returns the raw queue length — live entries plus tombstones plus
// stale re-arm entries (tests and diagnostics; QueueLive is the meaningful
// count).
func (e *Engine) QueueLen() int { return e.wq.nentries }

// QueueLive returns the number of queued entries that will actually fire:
// tombstoned and stale entries are excluded. It equals Pending and exists so
// queue-size diagnostics don't mistake compaction garbage for load.
func (e *Engine) QueueLive() int { return e.live }

// Recycled returns how many fire-and-forget events have been returned to the
// free list, an allocation-behaviour probe for tests.
func (e *Engine) Recycled() uint64 { return e.recycled }

// NextEventTime returns the virtual time of the earliest live event, or
// false when the queue holds none. The sharded executor uses it to plan
// epochs; dead entries encountered on the way are discarded.
func (e *Engine) NextEventTime() (ktime.Time, bool) {
	if e.nextValid {
		return e.nextAt, e.nextOK
	}
	en, ok := e.peekLive()
	e.nextAt, e.nextOK, e.nextValid = en.at, ok, true
	if !ok {
		return 0, false
	}
	return en.at, true
}

// alloc produces an Event, reusing a recycled one when available.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{eng: e}
}

// release returns a fire-and-forget event to the free list once it has left
// the queue. Handle-returning events are never recycled: a retained handle
// could otherwise cancel an unrelated future event.
func (e *Engine) release(ev *Event) {
	if !ev.recycle || ev.armed {
		return
	}
	ev.fn = nil
	ev.cancelled = false
	e.recycled++
	e.free = append(e.free, ev)
}

func (e *Engine) checkFuture(t ktime.Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < now %v)", t, e.now))
	}
}

// arm files a queue entry for ev at t with a fresh sequence number. The
// caller accounts for live.
func (e *Engine) arm(ev *Event, t ktime.Time) {
	ev.at = t
	ev.seq = e.seq
	e.seq++
	ev.armed = true
	e.wq.push(entry{at: t, seq: ev.seq, ev: ev})
}

// push arms ev at t as a new live event.
func (e *Engine) push(ev *Event, t ktime.Time) {
	e.arm(ev, t)
	e.live++
	// A new live event can only lower the cached minimum — tighten in place.
	if e.nextValid && (!e.nextOK || t < e.nextAt) {
		e.nextAt, e.nextOK = t, true
	}
}

// At schedules fn at absolute virtual time t and returns a cancellable
// handle. Scheduling in the past panics: it always indicates a kernel
// accounting bug, and silently clamping would hide it.
func (e *Engine) At(t ktime.Time, fn func()) *Event {
	e.checkFuture(t)
	ev := e.alloc()
	ev.fn = fn
	ev.recycle = false
	e.push(ev, t)
	return ev
}

// After schedules fn d from now. Negative d panics via At.
func (e *Engine) After(d ktime.Duration, fn func()) *Event {
	return e.At(e.now.Add(d), fn)
}

// PostAt schedules fn at absolute time t as a fire-and-forget event: no
// handle is returned, so the Event object is drawn from and returned to the
// engine's free list — the steady-state cost is zero allocations. Use it for
// one-shot work that is never cancelled (kicks, self-wakes).
func (e *Engine) PostAt(t ktime.Time, fn func()) {
	e.checkFuture(t)
	ev := e.alloc()
	ev.fn = fn
	ev.recycle = true
	e.push(ev, t)
}

// Post schedules fn d from now, fire-and-forget (see PostAt).
func (e *Engine) Post(d ktime.Duration, fn func()) {
	e.PostAt(e.now.Add(d), fn)
}

// NewEvent returns an unarmed event bound to fn, intended to be armed (and
// re-armed, and cancelled) many times via Reschedule: one Event object per
// recurring timer instead of one per arm. The handle owner must not share it.
func (e *Engine) NewEvent(fn func()) *Event {
	if fn == nil {
		panic("sim: NewEvent with nil function")
	}
	return &Event{eng: e, fn: fn}
}

// Reschedule (re-)arms ev at absolute time t, keeping its function. It
// accepts an event in any state: queued (the old entry goes stale), tombstoned
// (revived), or fired/unarmed (pushed again) — including the event currently
// executing, which is how recurring timers re-arm themselves. A fresh
// sequence number is assigned, so ordering is exactly as if a new event had
// been scheduled.
func (e *Engine) Reschedule(ev *Event, t ktime.Time) {
	if ev == nil || ev.fn == nil {
		panic("sim: Reschedule of an event without a function")
	}
	if ev.recycle {
		panic("sim: Reschedule of a fire-and-forget event")
	}
	e.checkFuture(t)
	if ev.eng == nil {
		ev.eng = e
	}
	if ev.armed {
		if ev.cancelled {
			ev.cancelled = false
			e.live++
		}
		// The entry carrying the old seq goes stale and is skipped on pop;
		// dead-entry growth is bounded by compaction. Moving a queued event
		// may raise the minimum, so the cache cannot be tightened in place.
		e.nextValid = false
		e.arm(ev, t)
		e.maybeCompact()
		return
	}
	ev.cancelled = false
	e.push(ev, t)
}

// RescheduleAfter re-arms ev d from now (see Reschedule).
func (e *Engine) RescheduleAfter(ev *Event, d ktime.Duration) {
	e.Reschedule(ev, e.now.Add(d))
}

// entryDead reports whether a queue entry will never fire: it is stale (the
// event was re-armed since) or its event is tombstoned. A dropped tombstone
// entry un-arms its event so a later Reschedule pushes cleanly.
func entryDead(en entry) bool {
	if en.ev.seq != en.seq {
		return true
	}
	if en.ev.cancelled {
		en.ev.armed = false
		return true
	}
	return false
}

// maybeCompact rebuilds the queue without dead entries once they outgrow the
// live set by more than the steady-state slack and the queue is big enough
// for the O(n) pass to pay off.
func (e *Engine) maybeCompact() {
	if e.wq.nentries < compactFloor || 2*e.live+compactSlack > e.wq.nentries {
		return
	}
	e.wq.compact(func(en entry) bool { return !entryDead(en) })
}

// peekLive returns the earliest live entry without consuming it, discarding
// dead entries along the way.
func (e *Engine) peekLive() (entry, bool) {
	for {
		en, ok := e.wq.next(false)
		if !ok {
			return entry{}, false
		}
		if !entryDead(en) {
			return en, true
		}
		e.wq.next(true) // discard the dead minimum
		e.release(en.ev)
	}
}

// fire executes the event behind a live entry just extracted from the queue.
func (e *Engine) fire(en entry) {
	ev := en.ev
	ev.armed = false
	e.live--
	e.nextValid = false // the minimum is being consumed
	e.now = en.at
	e.fired++
	ev.fn()
	// The closure may have re-armed ev (recurring timers); only a
	// still-unqueued fire-and-forget event is recyclable.
	e.release(ev)
}

// stepBounded fires the earliest live event if its time is at or before
// bound, reporting whether an event ran.
func (e *Engine) stepBounded(bound ktime.Time) bool {
	en, ok := e.peekLive()
	if !ok || en.at > bound {
		return false
	}
	e.wq.next(true)
	e.fire(en)
	return true
}

// Stop makes the currently executing Run return after the current event
// completes. Queued events remain queued and a later Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event (skipping tombstones) and
// reports whether an event ran.
func (e *Engine) Step() bool {
	return e.stepBounded(ktime.Time(int64(^uint64(0) >> 1)))
}

// RunUntil executes events in order until the queue drains or the next event
// lies strictly beyond t. The clock finishes at exactly t (even if the queue
// drained earlier), so back-to-back RunUntil calls compose.
func (e *Engine) RunUntil(t ktime.Time) {
	e.stopped = false
	for !e.stopped && e.stepBounded(t) {
	}
	if e.now < t {
		e.now = t
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}
