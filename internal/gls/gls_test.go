package gls

import (
	"sync"
	"testing"
)

func TestSetGetClear(t *testing.T) {
	if Get() != 0 {
		t.Fatal("unset value not zero")
	}
	Set(42)
	if Get() != 42 {
		t.Fatal("Set/Get broken")
	}
	Clear()
	if Get() != 0 {
		t.Fatal("Clear broken")
	}
}

func TestPerGoroutineIsolation(t *testing.T) {
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan int, n)
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			Set(i)
			// Yield to force interleaving.
			for j := 0; j < 100; j++ {
				if Get() != i {
					errs <- i
					return
				}
			}
			Clear()
		}()
	}
	wg.Wait()
	close(errs)
	for i := range errs {
		t.Errorf("goroutine %d saw another goroutine's value", i)
	}
}
