// Cluster-scale throughput measurement for the sharded executor: the same
// saturated machine simulated three ways — one kernel over every CPU (the
// pre-sharding model), one kernel per NUMA node driven serially, and the
// same sharded machine driven on worker goroutines — at 80 and 1,000 CPUs.
// The artifact (BENCH_cluster.json, `make bench-cluster`) records simulated
// events per wall-clock second for each mode.
//
// The sharded win on a single-core host is algorithmic, not parallel: every
// O(machine) pass in the single-kernel model — most visibly the NOHZ idle
// scan each busy tick performs — becomes O(node), and each shard's timer
// wheel holds a node's worth of events instead of the whole machine's. The
// parallel drive adds goroutine fan-out on top when real cores exist;
// GOMAXPROCS is recorded so the artifact is honest about which effect it
// measured.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/sim"
)

// clusterSpawn loads one kernel with the saturating per-CPU mix used by
// every cluster mode: two pinned spinners per CPU (one running, one queued —
// so each tick sees a backlog and pays the idle-scan) and one pinned
// sleeper per eight CPUs (wake-path traffic).
func clusterSpawn(k *kernel.Kernel, policy int) {
	n := k.NumCPUs()
	for cpu := 0; cpu < n; cpu++ {
		for j := 0; j < 2; j++ {
			k.Spawn("spin", policy, kernel.BehaviorFunc(
				func(*kernel.Kernel, *kernel.Task) kernel.Action {
					return kernel.Action{Run: 10 * time.Millisecond, Op: kernel.OpContinue}
				}), kernel.WithAffinity(kernel.SingleCPU(cpu)))
		}
		if cpu%8 == 0 {
			k.Spawn("sleep", policy, kernel.BehaviorFunc(
				func(*kernel.Kernel, *kernel.Task) kernel.Action {
					return kernel.Action{Run: 100 * time.Microsecond,
						Op: kernel.OpSleep, SleepFor: 400 * time.Microsecond}
				}), kernel.WithAffinity(kernel.SingleCPU(cpu)))
		}
	}
}

// ClusterResult is one (machine, mode) measurement.
type ClusterResult struct {
	CPUs         int     `json:"cpus"`
	Mode         string  `json:"mode"` // single | sharded-serial | sharded-parallel
	Shards       int     `json:"shards"`
	VirtualMS    float64 `json:"virtual_ms"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	CtxSwitches  uint64  `json:"ctx_switches"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// clusterSingle simulates d of virtual time on one kernel over the whole
// machine.
func clusterSingle(m kernel.Machine, d time.Duration) ClusterResult {
	eng := sim.New()
	k := kernel.New(eng, m, kernel.CostsFor(m))
	k.RegisterClass(0, kernel.NewCFS(k))
	clusterSpawn(k, 0)
	start := time.Now()
	k.RunFor(d)
	wall := time.Since(start)
	return ClusterResult{
		CPUs: m.NumCPUs, Mode: "single", Shards: 1,
		VirtualMS: float64(d) / float64(time.Millisecond),
		WallMS:    float64(wall) / float64(time.Millisecond),
		Events:    eng.Fired(), CtxSwitches: k.CtxSwitches,
		EventsPerSec: float64(eng.Fired()) / wall.Seconds(),
	}
}

// clusterSharded simulates the same machine partitioned per NUMA node.
func clusterSharded(m kernel.Machine, d time.Duration, parallel bool) ClusterResult {
	sk := kernel.NewShardedKernel(m, kernel.CostsFor(m), 0)
	defer sk.Close()
	sk.SetParallel(parallel)
	for i := 0; i < sk.NumShards(); i++ {
		k := sk.ShardKernel(i)
		k.RegisterClass(0, kernel.NewCFS(k))
		clusterSpawn(k, 0)
	}
	mode := "sharded-serial"
	if parallel {
		mode = "sharded-parallel"
	}
	start := time.Now()
	sk.RunFor(d)
	wall := time.Since(start)
	return ClusterResult{
		CPUs: m.NumCPUs, Mode: mode, Shards: sk.NumShards(),
		VirtualMS: float64(d) / float64(time.Millisecond),
		WallMS:    float64(wall) / float64(time.Millisecond),
		Events:    sk.EventsFired(), CtxSwitches: sk.CtxSwitches(),
		EventsPerSec: float64(sk.EventsFired()) / wall.Seconds(),
	}
}

// ClusterOutput is the BENCH_cluster.json document.
type ClusterOutput struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`
	// SpeedupAt1000 / SpeedupAt80 are sharded-serial events/sec over the
	// single-kernel events/sec at each scale.
	SpeedupAt80   float64         `json:"speedup_at_80"`
	SpeedupAt1000 float64         `json:"speedup_at_1000"`
	Results       []ClusterResult `json:"results"`
	// Fleet is the cluster-of-machines benchmark section, present when the
	// artifact was produced by `enokibench -fleet` (WriteFleetJSON) or
	// `enokibench -rollout` (WriteRolloutJSON).
	Fleet *FleetResult `json:"fleet,omitempty"`
	// Rollout is the canary-upgrade benchmark section, present when the
	// artifact was produced by `enokibench -rollout` (WriteRolloutJSON).
	Rollout *RolloutBenchResult `json:"rollout,omitempty"`
	// Overload is the internet-scale traffic-plane benchmark section,
	// present when the artifact was produced by `enokibench -overload`
	// (WriteOverloadJSON).
	Overload *OverloadBenchResult `json:"overload,omitempty"`
}

// RunCluster measures every (machine, mode) cell. Virtual durations are
// chosen so each cell fires enough events for a stable wall-clock read while
// the whole sweep stays under a minute of host time.
func RunCluster() *ClusterOutput {
	out := &ClusterOutput{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "speedups are algorithmic (per-node event queues and O(node) scans); " +
			"the parallel drive only adds on multi-core hosts",
	}
	cells := []struct {
		m kernel.Machine
		d time.Duration
	}{
		{kernel.Machine80(), 200 * time.Millisecond},
		{kernel.Machine1000(), 50 * time.Millisecond},
	}
	bySpec := map[string]float64{}
	for _, c := range cells {
		single := clusterSingle(c.m, c.d)
		serial := clusterSharded(c.m, c.d, false)
		par := clusterSharded(c.m, c.d, true)
		out.Results = append(out.Results, single, serial, par)
		bySpec[fmt.Sprintf("%d", c.m.NumCPUs)] = serial.EventsPerSec / single.EventsPerSec
	}
	out.SpeedupAt80 = bySpec["80"]
	out.SpeedupAt1000 = bySpec["1000"]
	return out
}

// WriteClusterJSON runs the cluster sweep and writes the document to path.
func WriteClusterJSON(path string) (*ClusterOutput, error) {
	return writeClusterDoc(path, RunCluster())
}

// writeClusterDoc marshals one BENCH_cluster.json document to path.
func writeClusterDoc(path string, out *ClusterOutput) (*ClusterOutput, error) {
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return out, nil
}

// ScheduleOpSharded is the sharded-executor allocation ratchet: the
// block→wake→schedule ping-pong of ScheduleOp running on every shard of a
// two-node machine under the epoch-merge executor (serial drive). One
// iteration advances the whole sharded simulation by a fixed slice of
// virtual time; after warmup — free lists filled, every wheel slot's backing
// slice touched — the steady state must allocate nothing (pinned by
// TestScheduleOpShardedZeroAlloc).
func ScheduleOpSharded(b *testing.B) {
	m := kernel.MachineNUMA("bench-2node", 2, 1, 4)
	sk := kernel.NewShardedKernel(m, kernel.CostsFor(m), 0)
	defer sk.Close()
	counts := make([]int, sk.NumShards())
	for i := 0; i < sk.NumShards(); i++ {
		i := i
		k := sk.ShardKernel(i)
		k.RegisterClass(0, kernel.NewCFS(k))
		var a, c *kernel.Task
		mk := func(peer **kernel.Task) kernel.Behavior {
			wake := make([]*kernel.Task, 1)
			return kernel.BehaviorFunc(func(*kernel.Kernel, *kernel.Task) kernel.Action {
				wake[0] = *peer
				counts[i]++
				return kernel.Action{Run: 100 * time.Nanosecond, Wake: wake, Op: kernel.OpBlock}
			})
		}
		a = k.Spawn("a", 0, mk(&c), kernel.WithAffinity(kernel.SingleCPU(0)))
		c = k.Spawn("b", 0, mk(&a), kernel.WithAffinity(kernel.SingleCPU(0)))
	}
	// Warm past a full timer-wheel rotation so every slot's slice exists.
	sk.RunFor(5 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.RunFor(20 * time.Microsecond)
	}
	b.StopTimer()
	for i, n := range counts {
		if n == 0 {
			b.Fatalf("shard %d made no progress", i)
		}
	}
}
