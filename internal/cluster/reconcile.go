// The control plane follows the jobScheduler/transformer/state-machine split
// of cluster schedulers: the placer (Placer) decides *where* each job should
// run (desired state), the reconciler diffs desired against actual and emits
// start/stop operations toward machine agents, and each job advances through
// an explicit state machine driven only by acknowledged reports — never by
// assumptions about in-flight operations. Everything here runs on the
// control-plane engine (fleet node 0), so the whole scheduler is a
// deterministic single-threaded program even when the fleet drive is
// parallel.
package cluster

import (
	"time"

	"enoki/internal/ktime"
	"enoki/internal/stats"
)

// JobState is one stage of a job's lifecycle.
type JobState uint8

// Job lifecycle states. A job is Pending until placed, Starting while its
// start operation is in flight, Running once the machine acknowledged the
// spawn, Stopping while a migration stop is in flight, and Done when its
// final cycle completed. Machine failure knocks a job from any in-flight
// state back to Pending with Restarts incremented.
const (
	JobPending JobState = iota
	JobStarting
	JobRunning
	JobStopping
	JobDone
)

func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobStarting:
		return "starting"
	case JobRunning:
		return "running"
	case JobStopping:
		return "stopping"
	case JobDone:
		return "done"
	default:
		return "invalid"
	}
}

// JobSpec describes the work of one job: Cycles compute segments of Run
// each, separated by Sleep (pure CPU hogs use Sleep 0). Zero fields take
// defaults sized so a default job finishes in a few reconcile intervals.
type JobSpec struct {
	Name   string
	Cycles int
	Run    time.Duration
	Sleep  time.Duration
}

func (s JobSpec) withDefaults() JobSpec {
	if s.Name == "" {
		s.Name = "job"
	}
	if s.Cycles <= 0 {
		s.Cycles = 3
	}
	if s.Run <= 0 {
		s.Run = 200 * time.Microsecond
	}
	return s
}

// Job is the control plane's record of one submitted job. Callers get
// copies; the scheduler owns the canonical struct.
type Job struct {
	ID   int
	Spec JobSpec
	// State is the lifecycle stage; Machine is where the job is (or was
	// last) placed, -1 when unplaced. Desired is the placement target, -1
	// until the placer picks one; it differs from Machine only while a
	// migration is underway.
	State   JobState
	Machine int
	Desired int
	// Shard is the NUMA shard of Machine the job was spawned on.
	Shard int
	// CyclesLeft is the last checkpointed progress: migrations resume from
	// the stopped report's count, machine failures resume from the last
	// checkpoint (work since then is lost and re-done — at-least-once).
	CyclesLeft  int
	Restarts    int
	Migrations  int
	SubmittedAt ktime.Time
	StartedAt   ktime.Time // first successful placement ack
	DoneAt      ktime.Time
	placed      bool
	startSent   ktime.Time // when the latest start op left the control plane
}

// MachineView is the control plane's model of one machine: liveness as
// detected (not ground truth — a dead machine stays Alive until the failure
// detector fires) and the assigned-job count the placers balance on.
type MachineView struct {
	ID       int
	Alive    bool
	CPUs     int
	Assigned int
}

// jobScheduler is the control plane: desired state, reconciliation, and the
// job state machine. All methods run on the control-plane engine.
type jobScheduler struct {
	c      *Cluster
	placer Placer
	jobs   []*Job // job id == index
	view   []MachineView
	queue  []int // Pending job ids awaiting placement, FIFO
	live   int   // jobs not yet Done
	// ticking is true while a reconcile tick is armed; ticks re-arm only
	// while there is schedulable work, so an idle cluster goes quiescent
	// and RunUntilIdle terminates.
	ticking bool

	placeHist stats.LogHist // submit → first running ack
	e2eHist   stats.LogHist // submit → done

	// doneByMachine counts completions per machine; the rollout verdicts
	// difference it across a soak window for per-machine completion rates.
	doneByMachine []int

	starts, stops, migrations, lost, done int
}

func newJobScheduler(c *Cluster) *jobScheduler {
	s := &jobScheduler{c: c, placer: c.cfg.Placer}
	for i, m := range c.machines {
		s.view = append(s.view, MachineView{ID: i, Alive: true, CPUs: m.sk.Machine().NumCPUs})
	}
	s.doneByMachine = make([]int, len(c.machines))
	return s
}

func (s *jobScheduler) anyAlive() bool {
	for i := range s.view {
		if s.view[i].Alive {
			return true
		}
	}
	return false
}

// arm schedules a reconcile tick if none is pending.
func (s *jobScheduler) arm() {
	if s.ticking || s.c.closed {
		return
	}
	s.ticking = true
	s.c.ctrl.Post(ktime.Duration(s.c.cfg.ReconcileEvery), s.tick)
}

// tick is the reconcile loop body. It re-arms itself while live jobs remain
// and at least one machine is alive; otherwise the control plane goes
// quiescent until a Submit or failure-detection event re-arms it.
func (s *jobScheduler) tick() {
	s.ticking = false
	s.reconcile()
	if s.live > 0 && s.anyAlive() {
		s.arm()
	}
}

// reconcile drives actual state toward desired state: rebalance migrations
// first (they create new desired placements), then place every queued
// Pending job.
func (s *jobScheduler) reconcile() {
	s.maybeRebalance()
	if len(s.queue) == 0 {
		return
	}
	q := s.queue
	s.queue = s.queue[:0]
	for _, id := range q {
		j := s.jobs[id]
		if j.State != JobPending {
			continue // stale queue entry; the state machine moved on
		}
		target := j.Desired
		if target < 0 || !s.view[target].Alive {
			target = s.placer.Pick(j, s.view)
		}
		if target < 0 || !s.view[target].Alive {
			s.queue = append(s.queue, id) // nowhere to go; retry next tick
			continue
		}
		j.Desired = target
		s.start(j, target)
	}
}

// maybeRebalance migrates one job per tick from the most to the least
// loaded machine when the assigned-count spread exceeds the configured
// threshold. One per tick keeps the control loop gentle and the decision
// sequence trivially deterministic.
func (s *jobScheduler) maybeRebalance() {
	spread := s.c.cfg.RebalanceSpread
	if spread <= 0 {
		return
	}
	hi, lo := -1, -1
	for m := range s.view {
		v := &s.view[m]
		if !v.Alive {
			continue
		}
		if hi == -1 || v.Assigned > s.view[hi].Assigned {
			hi = m
		}
		if lo == -1 || v.Assigned < s.view[lo].Assigned {
			lo = m
		}
	}
	if hi == -1 || lo == -1 || hi == lo || s.view[hi].Assigned-s.view[lo].Assigned <= spread {
		return
	}
	// Lowest-id Running job on the overloaded machine migrates.
	for _, j := range s.jobs {
		if j.State == JobRunning && j.Machine == hi {
			j.Desired = lo
			s.migrations++
			s.stop(j)
			return
		}
	}
}

// start sends a start operation to machine mi: the transformer's "create"
// op. The job's shard is derived from its id so placement inside a machine
// is deterministic and spread across NUMA nodes.
func (s *jobScheduler) start(j *Job, mi int) {
	c := s.c
	m := c.machines[mi]
	j.State = JobStarting
	j.Machine = mi
	j.Shard = j.ID % m.sk.NumShards()
	s.view[mi].Assigned++
	s.starts++
	id, shard, cycles, spec := j.ID, j.Shard, j.CyclesLeft, j.Spec
	j.startSent = c.ctrl.Now()
	at := c.ctrl.Now().Add(ktime.Duration(c.cfg.NetLatency))
	c.fl.SendHandoff(c.ctrlSrc, m.node, at, func() {
		m.sk.Inject(shard, at, func() { m.applyStart(id, shard, cycles, spec) })
	})
}

// stop sends a cooperative stop toward a Running job: the migration path.
// The machine checkpoints remaining cycles at the next cycle boundary and
// reports back; onStopped requeues the job toward its Desired machine.
func (s *jobScheduler) stop(j *Job) {
	c := s.c
	m := c.machines[j.Machine]
	j.State = JobStopping
	s.stops++
	id, shard := j.ID, j.Shard
	at := c.ctrl.Now().Add(ktime.Duration(c.cfg.NetLatency))
	c.fl.SendHandoff(c.ctrlSrc, m.node, at, func() {
		m.sk.Inject(shard, at, func() { m.applyStop(id) })
	})
}

// onStarted handles a machine's spawn acknowledgement. Guards drop stale
// acks: a machine that died after acking (job already requeued elsewhere)
// must not resurrect the old placement.
func (s *jobScheduler) onStarted(id, mi int) {
	j := s.jobs[id]
	if j.State != JobStarting || j.Machine != mi {
		return
	}
	j.State = JobRunning
	if !j.placed {
		j.placed = true
		j.StartedAt = s.c.ctrl.Now()
		s.placeHist.Record(time.Duration(j.StartedAt - j.SubmittedAt))
	}
	if r := s.c.rollout; r != nil {
		r.noteStartAck(mi, time.Duration(s.c.ctrl.Now()-j.startSent))
	}
}

// onDone handles a completion report. A job may complete while Stopping — a
// migration raced with the final cycle and the job won; that counts as done,
// not as a migration.
func (s *jobScheduler) onDone(id, mi int) {
	j := s.jobs[id]
	if j.State == JobDone || j.Machine != mi {
		return
	}
	s.view[mi].Assigned--
	s.doneByMachine[mi]++
	j.State = JobDone
	j.CyclesLeft = 0
	j.DoneAt = s.c.ctrl.Now()
	s.e2eHist.Record(time.Duration(j.DoneAt - j.SubmittedAt))
	s.done++
	s.live--
	s.c.jobDone(id)
}

// onStopped handles a migration checkpoint: the job left machine mi with
// cyclesLeft cycles to go and is requeued toward its Desired machine.
func (s *jobScheduler) onStopped(id, mi, cyclesLeft int) {
	j := s.jobs[id]
	if j.State != JobStopping || j.Machine != mi {
		return
	}
	s.view[mi].Assigned--
	j.CyclesLeft = cyclesLeft
	j.State = JobPending
	j.Machine = -1
	j.Migrations++
	s.queue = append(s.queue, id)
	s.arm()
}

// machineDead is the failure detector's verdict: mark the machine dead and
// requeue every job that was placed there from its last checkpoint. Reports
// already in flight from the victim were sent before the kill instant and
// remain valid; the state-machine guards (Machine == mi checks against a
// machine the job no longer occupies) reject anything stale.
func (s *jobScheduler) machineDead(mi int) {
	if !s.view[mi].Alive {
		return
	}
	s.view[mi].Alive = false
	s.view[mi].Assigned = 0
	for _, j := range s.jobs {
		switch j.State {
		case JobStarting, JobRunning, JobStopping:
			if j.Machine != mi {
				continue
			}
			j.State = JobPending
			j.Machine = -1
			if j.Desired == mi {
				j.Desired = -1
			}
			j.Restarts++
			s.lost++
			s.queue = append(s.queue, j.ID)
		case JobPending:
			if j.Desired == mi {
				j.Desired = -1
			}
		}
	}
	s.arm()
	if r := s.c.rollout; r != nil {
		r.machineDead(mi)
	}
}
