package kernel

import (
	"testing"
	"time"

	"enoki/internal/sim"
)

// Direct CFS-policy tests, complementing the behavioural tests in
// kernel_test.go.

func cfsRig() (*Kernel, *CFS) {
	eng := sim.New()
	k := New(eng, Machine8(), DefaultCosts())
	c := NewCFS(k)
	k.RegisterClass(0, c)
	return k, c
}

func TestCFSVruntimeOrdersPicks(t *testing.T) {
	k, c := cfsRig()
	mk := func() *Task {
		return k.Spawn("t", 0, BehaviorFunc(func(*Kernel, *Task) Action {
			return Action{Run: time.Millisecond, Op: OpContinue}
		}), WithAffinity(SingleCPU(0)))
	}
	a, b := mk(), mk()
	k.RunFor(10 * time.Millisecond)
	// Both runnable on cpu0; their vruntimes should stay within one
	// slice of each other under tick-driven alternation.
	ea, eb := c.ent(a), c.ent(b)
	diff := ea.vruntime - eb.vruntime
	if diff < 0 {
		diff = -diff
	}
	if time.Duration(diff) > 2*cfsTargetLatency {
		t.Fatalf("vruntime divergence %v exceeds fairness bound", time.Duration(diff))
	}
}

func TestCFSSleeperCreditBounded(t *testing.T) {
	k, c := cfsRig()
	runner := k.Spawn("runner", 0, BehaviorFunc(func(*Kernel, *Task) Action {
		return Action{Run: time.Millisecond, Op: OpContinue}
	}), WithAffinity(SingleCPU(0)))
	sleeper := k.Spawn("sleeper", 0, BehaviorFunc(func(*Kernel, *Task) Action {
		return Action{Op: OpBlock}
	}), WithAffinity(SingleCPU(0)))
	k.RunFor(50 * time.Millisecond) // sleeper blocks; runner accrues vruntime
	if sleeper.State() != StateBlocked {
		t.Fatalf("sleeper state = %v", sleeper.State())
	}
	k.Wake(sleeper)
	k.RunFor(time.Millisecond)
	es, er := c.ent(sleeper), c.ent(runner)
	// The woken sleeper is placed at most sleeperCredit behind: its
	// vruntime must not lag the runner by more than the credit (plus a
	// tick of slack).
	lag := er.vruntime - es.vruntime
	if lag > cfsSleeperCreditNS+int64(2*time.Millisecond) {
		t.Fatalf("sleeper credit unbounded: lag %v", time.Duration(lag))
	}
	if lag < 0 {
		t.Fatalf("woken sleeper ahead is fine, but runner should have accrued: lag %v", time.Duration(lag))
	}
}

func TestCFSSliceShrinksWithLoad(t *testing.T) {
	_, c := cfsRig()
	rq := c.rqs[0]
	e := &cfsEntity{weight: NICE0Load}
	// Single task: full latency target.
	rq.totalWeight = NICE0Load
	soloSlice := c.slice(rq, e)
	if soloSlice != cfsTargetLatency {
		t.Fatalf("solo slice = %v", soloSlice)
	}
	// Crowded queue: per-task slice shrinks but respects min granularity.
	for i := 0; i < 20; i++ {
		rq.tree.Insert(int64(i), &cfsEntity{weight: NICE0Load})
	}
	rq.totalWeight = 21 * NICE0Load
	crowded := c.slice(rq, e)
	if crowded >= soloSlice {
		t.Fatalf("slice did not shrink: %v", crowded)
	}
	if crowded < cfsMinGranularity {
		t.Fatalf("slice below min granularity: %v", crowded)
	}
}

func TestCFSPeriodScalesPastNrLatency(t *testing.T) {
	_, c := cfsRig()
	if c.period(4) != cfsTargetLatency {
		t.Fatal("small-n period should be the latency target")
	}
	if got := c.period(16); got != 16*cfsMinGranularity {
		t.Fatalf("period(16) = %v", got)
	}
}

func TestCFSSelectPrefersIdlePrev(t *testing.T) {
	k, c := cfsRig()
	busy := k.Spawn("busy", 0, BehaviorFunc(func(*Kernel, *Task) Action {
		return Action{Run: time.Second, Op: OpContinue}
	}), WithAffinity(SingleCPU(2)))
	k.RunFor(time.Millisecond)
	_ = busy
	idleTask := k.Spawn("idle", 0, BehaviorFunc(func(*Kernel, *Task) Action {
		return Action{Op: OpBlock}
	}), WithAffinity(AllCPUs(8)))
	k.RunFor(time.Millisecond)
	// Waking with prev=5 (idle): stays.
	if got := c.SelectRQ(idleTask, 5, true); got != 5 {
		t.Fatalf("idle prev not kept: %d", got)
	}
	// Waking with prev=2 (busy): an idle sibling is chosen.
	if got := c.SelectRQ(idleTask, 2, true); got == 2 {
		t.Fatal("stayed on busy cpu despite idle siblings")
	}
}

func TestCFSNewidleBalancePullsOnlyWhenQueued(t *testing.T) {
	k, c := cfsRig()
	// Two runnable tasks stacked on cpu0 (one runs, one queues).
	for i := 0; i < 2; i++ {
		k.Spawn("s", 0, BehaviorFunc(func(*Kernel, *Task) Action {
			return Action{Run: 100 * time.Millisecond, Op: OpContinue}
		}), WithAffinity(SingleCPU(0)))
	}
	k.RunFor(time.Millisecond)
	for pid := 1; pid <= 2; pid++ {
		k.SetAffinity(k.TaskByPID(pid), AllCPUs(8))
	}
	before := c.NRunnable(0)
	if before != 1 {
		t.Fatalf("queued on cpu0 = %d, want 1", before)
	}
	c.Balance(3) // newidle pull toward cpu3
	if c.NRunnable(0) != 0 {
		t.Fatal("newidle balance did not pull the waiter")
	}
	// Nothing left to pull: balancing again must be a no-op.
	c.Balance(4)
	if c.NRunnable(3) != 1 && k.CurrentOn(3) == nil {
		t.Fatal("pulled task vanished")
	}
}

func TestKernelRecheckCancelsBlock(t *testing.T) {
	// Futex semantics: a block whose Recheck returns true never parks.
	k, _ := cfsRig()
	passes := 0
	flag := true
	task := k.Spawn("f", 0, BehaviorFunc(func(kk *Kernel, tk *Task) Action {
		passes++
		if passes >= 3 {
			return Action{Op: OpExit}
		}
		return Action{Run: time.Microsecond, Op: OpBlock,
			Recheck: func() bool { return flag }}
	}))
	k.RunFor(time.Millisecond)
	if task.State() != StateDead || passes != 3 {
		t.Fatalf("recheck did not cancel blocks: passes=%d state=%v", passes, task.State())
	}
	// And with the flag false, the block really parks.
	flag = false
	parked := k.Spawn("p", 0, BehaviorFunc(func(kk *Kernel, tk *Task) Action {
		return Action{Run: time.Microsecond, Op: OpBlock,
			Recheck: func() bool { return flag }}
	}))
	k.RunFor(time.Millisecond)
	if parked.State() != StateBlocked {
		t.Fatalf("parked state = %v", parked.State())
	}
}

func TestCFSCrossNodeBalanceThreshold(t *testing.T) {
	// On the two-socket machine, a single queued task on the remote node
	// must not be pulled; a big pile must.
	eng := sim.New()
	k := New(eng, Machine80(), CostsFor(Machine80()))
	c := NewCFS(k)
	k.RegisterClass(0, c)
	// Pile 5 runnable tasks on cpu0 (node 0).
	for i := 0; i < 5; i++ {
		k.Spawn("p", 0, BehaviorFunc(func(*Kernel, *Task) Action {
			return Action{Run: 100 * time.Millisecond, Op: OpContinue}
		}), WithAffinity(SingleCPU(0)))
	}
	k.RunFor(time.Millisecond)
	for pid := 1; pid <= 5; pid++ {
		k.SetAffinity(k.TaskByPID(pid), AllCPUs(80))
	}
	// cpu79 is on node 1: the pile of 4 queued exceeds the NUMA
	// threshold, so a cross-node pull is allowed.
	c.Balance(79)
	if c.NRunnable(0) >= 4 {
		t.Fatal("cross-node balance refused a large imbalance")
	}
}

func TestCFSCrossNodeBalanceRefusesSmallImbalance(t *testing.T) {
	// The sharded balancer's whole point: one waiter on a remote socket is
	// below the NUMA threshold, so a newidle CPU on the other socket leaves
	// it alone — but a CPU in the same LLC domain takes it immediately.
	eng := sim.New()
	k := New(eng, Machine80(), CostsFor(Machine80()))
	c := NewCFS(k)
	k.RegisterClass(0, c)
	for i := 0; i < 2; i++ {
		k.Spawn("s", 0, BehaviorFunc(func(*Kernel, *Task) Action {
			return Action{Run: 100 * time.Millisecond, Op: OpContinue}
		}), WithAffinity(SingleCPU(0)))
	}
	k.RunFor(time.Millisecond)
	for pid := 1; pid <= 2; pid++ {
		k.SetAffinity(k.TaskByPID(pid), AllCPUs(80))
	}
	if got := c.NRunnable(0); got != 1 {
		t.Fatalf("queued on cpu0 = %d, want 1", got)
	}
	c.Balance(79) // remote socket: must refuse
	if c.NRunnable(0) != 1 {
		t.Fatal("cross-node balance stole a single waiter below the NUMA threshold")
	}
	c.Balance(5) // same LLC domain as cpu0: must pull
	if c.NRunnable(0) != 0 {
		t.Fatal("intra-LLC newidle balance left the waiter queued")
	}
}
