package enokic

import (
	"time"

	"enoki/internal/core"
)

// UpgradeReport describes one live upgrade (§3.2, evaluated in §5.7).
type UpgradeReport struct {
	// Blackout is the simulated service interruption: the window during
	// which the module RW-lock is held in write mode and schedule
	// operations fall through to lower classes or idle.
	Blackout time.Duration
	// WallSwap is host wall-clock time spent in prepare + init + pointer
	// swap, the actual Go work of the upgrade.
	WallSwap time.Duration
	// DeferredDelivered is how many notifications queued up behind the
	// write lock and were delivered to the new module afterwards.
	DeferredDelivered int
}

// pendingUpgrade is an upgrade requested while another was in flight; it
// starts once the blackout ahead of it completes.
type pendingUpgrade struct {
	factory func(core.Env) core.Scheduler
	done    func(UpgradeReport)
}

// Upgrade replaces the running module with a new version built by factory,
// transferring state through reregister_prepare/reregister_init. It models
// the paper's quiesce protocol: a per-module read-write lock is taken in
// write mode, in-flight calls drain (modelled as UpgradeBase +
// UpgradePerCPU×cores of blackout), state transfers, the dispatch pointer
// swaps, and deferred calls proceed against the new module.
//
// An Upgrade requested while another is in flight queues behind it — the
// write lock serialises upgraders the same way it serialises them against
// schedule operations — and runs (with its own blackout and done callback)
// once the earlier swap completes. Upgrading a module the fault layer has
// killed is a no-op: there is nothing left to swap, and done never fires.
//
// Upgrade must be called from simulation context (inside an event or before
// Run); done fires when the upgrade completes. It returns ErrModuleKilled
// when the fault layer has already killed the module (done never fires);
// a queued or started upgrade returns nil.
func (a *Adapter) Upgrade(factory func(core.Env) core.Scheduler, done func(UpgradeReport)) error {
	if a.killed {
		return ErrModuleKilled
	}
	if a.upgrading {
		a.pendingUpgrades = append(a.pendingUpgrades, pendingUpgrade{factory, done})
		return nil
	}
	a.startUpgrade(factory, done)
	return nil
}

func (a *Adapter) startUpgrade(factory func(core.Env) core.Scheduler, done func(UpgradeReport)) {
	a.upgrading = true
	a.stats.Upgrades++
	blackout := a.cfg.UpgradeBase + time.Duration(a.k.NumCPUs())*a.cfg.UpgradePerCPU
	a.k.Engine().After(blackout, func() {
		if a.killed {
			// The module died during the blackout; the swap is moot and
			// any queued upgraders die with it.
			a.upgrading = false
			a.pendingUpgrades = nil
			return
		}
		wallStart := time.Now()
		out := a.sched.ReregisterPrepare()
		next := factory(a.env)
		if next.GetPolicy() != a.policy {
			panic("enokic: upgraded module changed policy id")
		}
		var in *core.TransferIn
		if out != nil {
			in = &core.TransferIn{State: out.State}
		}
		next.ReregisterInit(in)
		a.sched = next
		wall := time.Since(wallStart)

		a.upgrading = false
		queued := a.deferred
		a.deferred = nil
		for _, m := range queued {
			a.dispatch(m)
			a.putMsg(m)
		}
		for i := range a.kickPending {
			a.kickPending[i] = false
		}
		for i := 0; i < a.k.NumCPUs(); i++ {
			a.k.Resched(i)
		}
		if done != nil {
			done(UpgradeReport{
				Blackout:          blackout,
				WallSwap:          wall,
				DeferredDelivered: len(queued),
			})
		}
		if len(a.pendingUpgrades) > 0 && !a.killed {
			nextUp := a.pendingUpgrades[0]
			a.pendingUpgrades = a.pendingUpgrades[1:]
			a.startUpgrade(nextUp.factory, nextUp.done)
		}
	})
}

// kickAfterUpgrade notes that cpu asked for work during the blackout; the
// post-upgrade kick of all CPUs covers it, this just keeps a flag per CPU so
// the hot pick path stays cheap.
func (a *Adapter) kickAfterUpgrade(cpu int) {
	a.kickPending[cpu] = true
}
