package core

import "time"

// KernelFaultInjector is the kernel-plane fault hook: an implementation
// installed via kernel.SetFaultInjector intercepts cross-CPU kicks (the
// simulation's resched/wake IPIs) and high-resolution timer arms, letting a
// chaos engine model IPI loss, delay, and duplication and timer skew without
// the kernel knowing anything about fault schedules.
//
// The contract is zero-cost-when-disabled: the kernel holds a nil interface
// by default and every hook site is a single pointer test, so the scheduling
// hot path stays allocation-free and branch-cheap (pinned by the
// ScheduleOpFaultHooks alloc ratchet). Implementations must also not
// allocate per call, and must be deterministic — the simulation is
// single-threaded, so an injector drawing from a seeded PRNG at each
// interception replays bit-for-bit.
type KernelFaultInjector interface {
	// InterceptKick is consulted once per scheduled kick toward target
	// (delay is what the kernel intends to apply). The returned fate is
	// applied on top: Delay postpones delivery — an "IPI drop" is modelled
	// as a recovery-bounded postponement, the analogue of a lost resched
	// IPI being noticed at the next tick's TIF_NEED_RESCHED check, so
	// liveness is degraded but never destroyed. Duplicate posts a second,
	// spurious kick DupDelay after the first — the redundant-IPI case a
	// correct scheduler must tolerate (the kernel's schedule() treats a
	// kick with nothing to do as a no-op).
	InterceptKick(target int, delay time.Duration) KickFate

	// SkewTimer is consulted when a reschedule timer is armed on cpu for
	// duration d; the return value replaces d (the kernel clamps negative
	// results to zero). Skewing timers late models a coarse or drifting
	// clock source; modules must not starve under it.
	SkewTimer(cpu int, d time.Duration) time.Duration
}

// KickFate is a KernelFaultInjector's verdict on one kick.
type KickFate struct {
	// Delay is added to the kick's delivery delay (0 = deliver on time).
	Delay time.Duration
	// Duplicate requests a second kick DupDelay after the (possibly
	// delayed) original.
	Duplicate bool
	// DupDelay positions the duplicate relative to the original delivery.
	DupDelay time.Duration
}
