// Package sim implements the discrete-event simulation engine underneath the
// simulated kernel. The engine owns a binary-heap event queue ordered by
// (virtual time, insertion sequence); ties in time execute in insertion
// order, which makes every run fully deterministic.
//
// The engine is deliberately tiny: the kernel package layers CPUs, run
// queues, and timers on top of it. Events are plain closures. An event can be
// cancelled by its handle; cancellation is O(1) (the event is tombstoned and
// skipped when popped), which matters because the kernel cancels and re-arms
// per-CPU completion events on every preemption.
package sim

import (
	"container/heap"
	"fmt"

	"enoki/internal/ktime"
)

// Event is a scheduled closure. The zero value is invalid; events are created
// through Engine.At / Engine.After.
type Event struct {
	at        ktime.Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel tombstones the event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
		e.fn = nil
	}
}

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Time returns the virtual instant the event is (or was) scheduled for.
func (e *Event) Time() ktime.Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event executor. It is not safe for
// concurrent use; all simulation state mutates from event closures running on
// the caller's goroutine.
type Engine struct {
	now     ktime.Time
	seq     uint64
	pq      eventHeap
	stopped bool
	fired   uint64
}

// New returns an engine with the clock at T+0 and an empty queue.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() ktime.Time { return e.now }

// Fired returns how many events have executed, a useful determinism probe in
// tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of queued (possibly tombstoned) events.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn at absolute virtual time t and returns a cancellable
// handle. Scheduling in the past panics: it always indicates a kernel
// accounting bug, and silently clamping would hide it.
func (e *Engine) At(t ktime.Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < now %v)", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// After schedules fn d from now. Negative d panics via At.
func (e *Engine) After(d ktime.Duration, fn func()) *Event {
	return e.At(e.now.Add(d), fn)
}

// Stop makes the currently executing Run return after the current event
// completes. Queued events remain queued and a later Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event (skipping tombstones) and
// reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the queue drains or the next event
// lies strictly beyond t. The clock finishes at exactly t (even if the queue
// drained earlier), so back-to-back RunUntil calls compose.
func (e *Engine) RunUntil(t ktime.Time) {
	e.stopped = false
	for !e.stopped && len(e.pq) > 0 {
		// Peek without popping: heap root is pq[0].
		for len(e.pq) > 0 && e.pq[0].cancelled {
			heap.Pop(&e.pq)
		}
		if len(e.pq) == 0 || e.pq[0].at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}
