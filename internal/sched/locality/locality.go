// Package locality is the Enoki locality-aware scheduler of §4.2.3 (203
// lines of Rust in the paper): it co-locates tasks that communicate heavily
// or share cache, steered entirely by userspace hints. The application sends
// (task id, locality value) hints through the Enoki hint queue; tasks with
// the same locality value are placed on the same core. Unlike cgroups, hints
// name only the co-location group, never a core, and the scheduler is free
// to ignore a hint when honouring it would overload a core.
//
// Run without hints it degenerates to random placement, which is the
// "Random" baseline in Table 6.
package locality

import (
	"encoding/gob"
	"time"

	"enoki/internal/core"
)

func init() {
	// Hints cross the record/replay log as gob-encoded interface values.
	gob.Register(HintMsg{})
}

// HintMsg is the scheduler's hint type: task PID plus an opaque locality
// value. Applications define what the value means (thread pools, message
// groups, NUMA-sharing sets).
type HintMsg struct {
	PID      int
	Locality int
}

// maxGroupQueue is the queue depth beyond which a locality hint is ignored
// ("which the scheduler can ignore if non-optimal, such as when there are
// too many tasks on a given core").
const maxGroupQueue = 8

type task struct {
	pid    int
	sched  *core.Schedulable
	cpu    int
	queued bool
	// home is the core the task's locality group maps to (-1 if none).
	home int
}

type state struct {
	tasks     map[int]*task
	queues    [][]*task
	groupCore map[int]int // locality value → core
	taskGroup map[int]int // pid → locality value
	nextCore  int
	queue     *core.HintQueue
	rev       *core.RevQueue
}

// Sched is the locality-aware Enoki scheduler module.
type Sched struct {
	core.BaseScheduler
	env    core.Env
	policy int
	mu     core.Locker
	st     *state

	// HintsApplied and HintsIgnored count hint outcomes;
	// HintsRedirected counts hints honoured approximately — the group's
	// home core was overloaded, so placement spilled to an LLC sibling,
	// keeping the group cache-adjacent instead of falling back to random.
	HintsApplied    uint64
	HintsIgnored    uint64
	HintsRedirected uint64

	// degraded is the brownout mode (core.BrownoutMode): under overload
	// the module stops scanning LLC siblings for spillover — an
	// overloaded home core goes straight to random fallback, dropping
	// the O(siblings) scan from every placement while queues are deep.
	degraded bool
}

var (
	_ core.Scheduler    = (*Sched)(nil)
	_ core.BrownoutMode = (*Sched)(nil)
)

// New constructs the module.
func New(env core.Env, policy int) *Sched {
	s := &Sched{env: env, policy: policy, mu: env.NewMutex("locality")}
	s.st = &state{
		tasks:     make(map[int]*task),
		queues:    make([][]*task, env.NumCPUs()),
		groupCore: make(map[int]int),
		taskGroup: make(map[int]int),
	}
	return s
}

// GetPolicy implements core.Scheduler.
func (s *Sched) GetPolicy() int { return s.policy }

// SetDegraded implements core.BrownoutMode: degraded locality gives up
// LLC-sibling spillover, keeping only the exact-home fast path of the
// hint. Placement quality degrades gracefully (spills land random, as if
// unhinted) and recovers when the overload plane exits brownout.
func (s *Sched) SetDegraded(on bool) {
	s.mu.Lock()
	s.degraded = on
	s.mu.Unlock()
}

func (s *Sched) push(t *task, cpu int, sched *core.Schedulable) {
	t.cpu = cpu
	t.queued = true
	t.sched = sched
	s.st.queues[cpu] = append(s.st.queues[cpu], t)
}

func (s *Sched) remove(t *task) {
	q := s.st.queues[t.cpu]
	for i, e := range q {
		if e == t {
			s.st.queues[t.cpu] = append(append([]*task{}, q[:i]...), q[i+1:]...)
			break
		}
	}
	t.queued = false
}

// placeFor picks the CPU for a task: its locality group's core when one is
// hinted and not overloaded. An overloaded home core spills to the least-
// loaded sibling in its LLC domain — co-location's value is the shared
// cache, so the nearest core that still shares it is the best approximation
// of the hint — and only when the whole domain is saturated does placement
// fall back to random.
func (s *Sched) placeFor(pid, fallback int) int {
	if group, ok := s.st.taskGroup[pid]; ok {
		coreID, ok := s.st.groupCore[group]
		if !ok {
			// First placement of this group: claim the next core
			// round-robin so distinct groups land apart.
			coreID = s.st.nextCore % s.env.NumCPUs()
			s.st.nextCore++
			s.st.groupCore[group] = coreID
		}
		if len(s.st.queues[coreID]) < maxGroupQueue {
			s.HintsApplied++
			return coreID
		}
		if !s.degraded {
			best, bestLen := -1, 0
			for _, sib := range s.env.Topology().Siblings(coreID) {
				if sib == coreID {
					continue
				}
				if n := len(s.st.queues[sib]); best == -1 || n < bestLen {
					best, bestLen = sib, n
				}
			}
			if best >= 0 && bestLen < maxGroupQueue {
				s.HintsRedirected++
				return best
			}
		}
		s.HintsIgnored++
	}
	return s.env.Rand().Intn(s.env.NumCPUs())
}

// TaskNew implements core.Scheduler.
func (s *Sched) TaskNew(pid int, runtime time.Duration, runnable bool, allowed []int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &task{pid: pid, home: -1}
	s.st.tasks[pid] = t
	if runnable && sched != nil {
		s.push(t, sched.CPU(), sched)
	}
}

// TaskWakeup implements core.Scheduler.
func (s *Sched) TaskWakeup(pid int, runtime time.Duration, deferrable bool, lastCPU, wakeCPU int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.st.tasks[pid]; t != nil {
		s.push(t, wakeCPU, sched)
	}
}

// TaskPreempt implements core.Scheduler.
func (s *Sched) TaskPreempt(pid int, runtime time.Duration, cpu int, preempted bool, sched *core.Schedulable) {
	s.requeue(pid, cpu, sched)
}

// TaskYield implements core.Scheduler.
func (s *Sched) TaskYield(pid int, runtime time.Duration, cpu int, sched *core.Schedulable) {
	s.requeue(pid, cpu, sched)
}

func (s *Sched) requeue(pid, cpu int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.st.tasks[pid]; t != nil {
		s.push(t, cpu, sched)
	}
}

// TaskBlocked implements core.Scheduler.
func (s *Sched) TaskBlocked(pid int, runtime time.Duration, cpu int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.st.tasks[pid]; t != nil {
		t.sched = nil
	}
}

// TaskDead implements core.Scheduler.
func (s *Sched) TaskDead(pid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.st.tasks[pid]; t != nil {
		if t.queued {
			s.remove(t)
		}
		delete(s.st.tasks, pid)
		delete(s.st.taskGroup, pid)
	}
}

// TaskDeparted implements core.Scheduler.
func (s *Sched) TaskDeparted(pid, cpu int) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return nil
	}
	if t.queued {
		s.remove(t)
	}
	delete(s.st.tasks, pid)
	delete(s.st.taskGroup, pid)
	tok := t.sched
	t.sched = nil
	return tok
}

// PickNextTask implements core.Scheduler: FIFO per core.
func (s *Sched) PickNextTask(cpu int, curr *core.Schedulable, currRuntime time.Duration) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.st.queues[cpu]
	if len(q) == 0 {
		return nil
	}
	t := q[0]
	s.st.queues[cpu] = q[1:]
	t.queued = false
	tok := t.sched
	t.sched = nil
	return tok
}

// PntErr implements core.Scheduler.
func (s *Sched) PntErr(cpu int, pid int, err core.PickError, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil || sched == nil {
		return
	}
	if !t.queued {
		s.push(t, sched.CPU(), sched)
	}
}

// TaskTick implements core.Scheduler: simple round-robin when peers wait.
func (s *Sched) TaskTick(cpu int, queued bool, currPID int, currRuntime time.Duration) {
	s.mu.Lock()
	waiting := len(s.st.queues[cpu]) > 0
	s.mu.Unlock()
	if waiting {
		s.env.Resched(cpu)
	}
}

// SelectTaskRQ implements core.Scheduler: the hint-driven placement.
func (s *Sched) SelectTaskRQ(pid, prevCPU int, wakeup bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.placeFor(pid, prevCPU)
}

// MigrateTaskRQ implements core.Scheduler.
func (s *Sched) MigrateTaskRQ(pid, newCPU int, sched *core.Schedulable) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return nil
	}
	old := t.sched
	if t.queued {
		s.remove(t)
	}
	s.push(t, newCPU, sched)
	return old
}

// RegisterQueue implements core.Scheduler.
func (s *Sched) RegisterQueue(q *core.HintQueue) int {
	s.st.queue = q
	return 1
}

// RegisterReverseQueue implements core.Scheduler.
func (s *Sched) RegisterReverseQueue(q *core.RevQueue) int {
	s.st.rev = q
	return 2
}

// UnregisterQueue implements core.Scheduler.
func (s *Sched) UnregisterQueue(id int) *core.HintQueue {
	q := s.st.queue
	s.st.queue = nil
	return q
}

// UnregisterRevQueue implements core.Scheduler.
func (s *Sched) UnregisterRevQueue(id int) *core.RevQueue {
	q := s.st.rev
	s.st.rev = nil
	return q
}

// EnterQueue implements core.Scheduler: drain pending hints.
func (s *Sched) EnterQueue(id, count int) {
	if s.st.queue == nil {
		return
	}
	for i := 0; i < count; i++ {
		h, ok := s.st.queue.Pop()
		if !ok {
			return
		}
		s.ParseHint(h)
	}
}

// ParseHint implements core.Scheduler: adopt a co-location hint.
func (s *Sched) ParseHint(hint core.Hint) {
	h, ok := hint.(HintMsg)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.taskGroup[h.PID] = h.Locality
}

// GroupCore exposes the group→core map for tests.
func (s *Sched) GroupCore(group int) (int, bool) {
	c, ok := s.st.groupCore[group]
	return c, ok
}

// ReregisterPrepare implements core.Scheduler. Queues ride along in the
// state capsule, as §3.3 prescribes for same-format upgrades.
func (s *Sched) ReregisterPrepare() *core.TransferOut { return &core.TransferOut{State: s.st} }

// ReregisterInit implements core.Scheduler.
func (s *Sched) ReregisterInit(in *core.TransferIn) {
	if in == nil || in.State == nil {
		return
	}
	if st, ok := in.State.(*state); ok {
		s.st = st
	}
}
