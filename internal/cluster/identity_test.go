package cluster_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"enoki/internal/cluster"
	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/record"
	"enoki/internal/schedtest/conformance"
)

// fleetRun is everything a fleet drive produces that must be identical
// between the serial and parallel modes: the per-(machine, shard) record
// logs and the full control-plane outcome.
type fleetRun struct {
	logs  [][][]byte // [machine][shard]
	jobs  []cluster.Job
	stats cluster.Stats
}

// recordFleetRun drives one seeded cluster workload for case c on machine
// template m: every machine loads the case's module above CFS on each
// shard with a record channel, a seeded job mix is submitted up front, one
// machine is killed mid-run, and the cluster runs to completion.
func recordFleetRun(c conformance.Case, m kernel.Machine, seed uint64, parallel bool) fleetRun {
	const machines = 10
	bufs := make([][]*bytes.Buffer, machines)
	recs := make([][]*record.Recorder, machines)
	policy := conformance.PolicyCFS
	if c.NewModule != nil {
		policy = conformance.PolicyTest
	}
	cl := cluster.New(cluster.Config{
		Machines:        machines,
		Machine:         m,
		Parallel:        parallel,
		Policy:          policy,
		Placer:          &cluster.Pack{PerCPU: 2},
		RebalanceSpread: 3,
		Setup: func(mi int, sk *kernel.ShardedKernel) {
			bufs[mi] = make([]*bytes.Buffer, sk.NumShards())
			recs[mi] = make([]*record.Recorder, sk.NumShards())
			for s := 0; s < sk.NumShards(); s++ {
				k := sk.ShardKernel(s)
				var ad *enokic.Adapter
				if c.NewModule != nil {
					ad = enokic.Load(k, conformance.PolicyTest, enokic.Config{},
						func(env core.Env) core.Scheduler { return c.NewModule(env, k.NumCPUs()) })
				}
				k.RegisterClass(conformance.PolicyCFS, kernel.NewCFS(k))
				if ad != nil {
					bufs[mi][s] = &bytes.Buffer{}
					recs[mi][s] = record.New(k, bufs[mi][s], conformance.PolicyCFS, record.DefaultCosts())
					ad.SetRecorder(recs[mi][s])
				}
			}
		},
	})
	defer cl.Close()

	rng := ktime.NewRand(seed)
	for i := 0; i < 80; i++ {
		cl.Submit(cluster.JobSpec{
			Cycles: 2 + rng.Intn(5),
			Run:    time.Duration(80+rng.Intn(250)) * time.Microsecond,
			Sleep:  time.Duration(rng.Intn(2)) * 150 * time.Microsecond,
		})
	}
	cl.FailMachine(3, 2*time.Millisecond)
	// A fixed virtual budget, not RunUntilIdle: the record drain tasks tick
	// forever, so a recorded cluster never goes idle. The bound is part of
	// the workload seed — identical in both drives.
	cl.Run(60 * time.Millisecond)

	out := fleetRun{logs: make([][][]byte, machines), stats: cl.Stats()}
	for mi := 0; mi < machines; mi++ {
		out.logs[mi] = make([][]byte, len(bufs[mi]))
		for s := range bufs[mi] {
			if recs[mi][s] != nil {
				recs[mi][s].Close()
				out.logs[mi][s] = bufs[mi][s].Bytes()
			}
		}
	}
	for i := 0; i < cl.NumJobs(); i++ {
		out.jobs = append(out.jobs, cl.Job(i))
	}
	return out
}

// TestFleetClusterIdentity is the cluster-level determinism oracle: for
// three scheduler classes on a ten-machine fleet — including a machine
// failure and rebalance migrations mid-run — the serial and
// worker-goroutine fleet drives must produce byte-identical per-machine
// record logs and identical control-plane outcomes. One class runs on
// two-node machines so the fleet epochs nest over inner IPI epochs. Under
// -race this is also the data-race gate for the whole cluster stack.
func TestFleetClusterIdentity(t *testing.T) {
	classes := map[string]kernel.Machine{
		"fifo":     kernel.Machine8(),
		"wfq":      kernel.MachineNUMA("fleet16", 2, 2, 4),
		"shinjuku": kernel.Machine8(),
	}
	for _, c := range conformance.Cases() {
		m, ok := classes[c.Name]
		if !ok {
			continue
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			seed := uint64(0xc1a55e5) ^ uint64(len(c.Name))
			serial := recordFleetRun(c, m, seed, false)
			par := recordFleetRun(c, m, seed, true)

			if serial.stats != par.stats {
				t.Fatalf("stats diverge:\nserial   %+v\nparallel %+v", serial.stats, par.stats)
			}
			if len(serial.jobs) != len(par.jobs) {
				t.Fatalf("job counts diverge: %d vs %d", len(serial.jobs), len(par.jobs))
			}
			for i := range serial.jobs {
				if serial.jobs[i] != par.jobs[i] {
					t.Fatalf("job %d diverges:\nserial   %+v\nparallel %+v", i, serial.jobs[i], par.jobs[i])
				}
			}
			for mi := range serial.logs {
				for s := range serial.logs[mi] {
					if !bytes.Equal(serial.logs[mi][s], par.logs[mi][s]) {
						t.Fatalf("machine %d shard %d: record logs diverge (%d vs %d bytes)",
							mi, s, len(serial.logs[mi][s]), len(par.logs[mi][s]))
					}
				}
			}
			// The run must have exercised the interesting paths, or the
			// identity proves nothing.
			st := serial.stats
			if st.Done != st.Submitted {
				t.Fatalf("only %d/%d jobs completed", st.Done, st.Submitted)
			}
			if st.Lost == 0 {
				t.Fatal("machine failure lost no placements — failover path not exercised")
			}
			if st.Migrations == 0 {
				t.Fatal("no rebalance migrations — migration path not exercised")
			}
			if c.NewModule != nil {
				total := 0
				for _, perShard := range serial.logs {
					for _, l := range perShard {
						total += len(l)
					}
				}
				if total == 0 {
					t.Fatal("record logs are empty — modules saw no scheduling traffic")
				}
			}
		})
	}
}

// TestFleetClusterSeedSensitivity guards against a trivially-constant
// fingerprint: different seeds must produce different record logs, so the
// identity test above cannot pass vacuously.
func TestFleetClusterSeedSensitivity(t *testing.T) {
	var c conformance.Case
	for _, cc := range conformance.Cases() {
		if cc.Name == "fifo" {
			c = cc
		}
	}
	a := recordFleetRun(c, kernel.Machine8(), 1, false)
	b := recordFleetRun(c, kernel.Machine8(), 2, false)
	if fmt.Sprint(a.stats) == fmt.Sprint(b.stats) && func() bool {
		for mi := range a.logs {
			for s := range a.logs[mi] {
				if !bytes.Equal(a.logs[mi][s], b.logs[mi][s]) {
					return false
				}
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical runs — workload is not seed-sensitive")
	}
}
