// Package rbtree provides a generic red-black tree with an ordering function
// supplied by the caller, O(1) cached minimum, and node-handle deletion.
//
// It exists because both CFS and the Enoki WFQ scheduler key their run queues
// by vruntime, where many entities can share a key: deletion must therefore
// operate on the exact node handle returned by Insert, not on a key search.
// The structure mirrors what kernel/sched/fair.c gets from the kernel's
// rb_tree with a cached leftmost pointer.
//
// The implementation is CLRS-style with a per-tree sentinel leaf.
package rbtree

type color bool

const (
	red   color = false
	black color = true
)

// Node is a handle to an inserted element. Callers keep it to delete the
// element in O(log n) without a search.
type Node[K, V any] struct {
	key                 K
	val                 V
	left, right, parent *Node[K, V]
	color               color
	tree                *Tree[K, V] // owner; nil after removal
}

// Key returns the node's key.
func (n *Node[K, V]) Key() K { return n.key }

// Value returns the node's value.
func (n *Node[K, V]) Value() V { return n.val }

// SetValue replaces the node's value without reordering.
func (n *Node[K, V]) SetValue(v V) { n.val = v }

// Tree is a red-black tree ordered by a strict-weak less function. Equal keys
// are allowed; among equal keys, later insertions land to the right, so
// iteration is stable in insertion order within a key (this matches CFS,
// where an entity re-enqueued with an equal vruntime queues behind its
// peers).
type Tree[K, V any] struct {
	less     func(a, b K) bool
	root     *Node[K, V]
	nilNode  *Node[K, V]
	leftmost *Node[K, V]
	size     int
	// pool chains removed nodes handed back via Free (linked through
	// .right); Insert reuses them so steady-state enqueue/dequeue cycles
	// allocate no nodes.
	pool *Node[K, V]
}

// New returns an empty tree ordered by less.
func New[K, V any](less func(a, b K) bool) *Tree[K, V] {
	t := &Tree[K, V]{less: less}
	t.nilNode = &Node[K, V]{color: black}
	t.root = t.nilNode
	t.leftmost = t.nilNode
	return t
}

// Len returns the number of elements.
func (t *Tree[K, V]) Len() int { return t.size }

// Min returns the node with the smallest key, or nil if the tree is empty.
// It is O(1): the leftmost pointer is maintained across inserts and deletes.
func (t *Tree[K, V]) Min() *Node[K, V] {
	if t.leftmost == t.nilNode {
		return nil
	}
	return t.leftmost
}

// Insert adds (key, val) and returns the node handle.
func (t *Tree[K, V]) Insert(key K, val V) *Node[K, V] {
	n := t.pool
	if n != nil {
		t.pool = n.right
		n.key, n.val = key, val
		n.left, n.right, n.parent = t.nilNode, t.nilNode, t.nilNode
		n.color = red
		n.tree = t
	} else {
		n = &Node[K, V]{
			key: key, val: val,
			left: t.nilNode, right: t.nilNode, parent: t.nilNode,
			color: red, tree: t,
		}
	}
	y := t.nilNode
	x := t.root
	isLeftmost := true
	for x != t.nilNode {
		y = x
		if t.less(n.key, x.key) {
			x = x.left
		} else {
			x = x.right
			isLeftmost = false
		}
	}
	n.parent = y
	switch {
	case y == t.nilNode:
		t.root = n
	case t.less(n.key, y.key):
		y.left = n
	default:
		y.right = n
	}
	if isLeftmost {
		t.leftmost = n
	}
	t.size++
	t.insertFixup(n)
	return n
}

// Delete removes the node from the tree. Deleting a node twice, or a node
// from another tree, panics: it would silently corrupt a run queue.
func (t *Tree[K, V]) Delete(n *Node[K, V]) {
	if n == nil || n.tree != t {
		panic("rbtree: Delete of node not in this tree")
	}
	if n == t.leftmost {
		t.leftmost = t.successor(n)
	}
	t.deleteNode(n)
	n.tree = nil
	n.left, n.right, n.parent = nil, nil, nil
	t.size--
}

// Free hands a removed node back to the tree for reuse by a later Insert.
// It is an explicit opt-in, not part of Delete, because PopMin callers read
// the node after removal. The node must already be out of the tree; freeing
// a queued node or double-freeing panics. After Free the caller must drop
// every reference to n — it will be recycled as a different element.
func (t *Tree[K, V]) Free(n *Node[K, V]) {
	if n == nil || n.tree != nil {
		panic("rbtree: Free of nil or still-inserted node")
	}
	if n.parent == n {
		panic("rbtree: double Free")
	}
	var zk K
	var zv V
	n.key, n.val = zk, zv
	n.parent = n // free-marker, cleared by Insert
	n.left = nil
	n.right = t.pool
	t.pool = n
}

// PopMin removes and returns the minimum node, or nil if empty.
func (t *Tree[K, V]) PopMin() *Node[K, V] {
	n := t.Min()
	if n == nil {
		return nil
	}
	t.Delete(n)
	return n
}

// Next returns the in-order successor of n, or nil at the maximum.
func (t *Tree[K, V]) Next(n *Node[K, V]) *Node[K, V] {
	s := t.successor(n)
	if s == t.nilNode {
		return nil
	}
	return s
}

// Ascend calls fn for each node in ascending key order until fn returns
// false. The tree must not be modified during iteration.
func (t *Tree[K, V]) Ascend(fn func(n *Node[K, V]) bool) {
	for n := t.Min(); n != nil; n = t.Next(n) {
		if !fn(n) {
			return
		}
	}
}

func (t *Tree[K, V]) successor(n *Node[K, V]) *Node[K, V] {
	if n.right != t.nilNode {
		x := n.right
		for x.left != t.nilNode {
			x = x.left
		}
		return x
	}
	y := n.parent
	x := n
	for y != t.nilNode && x == y.right {
		x = y
		y = y.parent
	}
	return y
}

func (t *Tree[K, V]) leftRotate(x *Node[K, V]) {
	y := x.right
	x.right = y.left
	if y.left != t.nilNode {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nilNode:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[K, V]) rightRotate(x *Node[K, V]) {
	y := x.left
	x.left = y.right
	if y.right != t.nilNode {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nilNode:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[K, V]) insertFixup(z *Node[K, V]) {
	for z.parent.color == red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.leftRotate(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rightRotate(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rightRotate(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.leftRotate(z.parent.parent)
			}
		}
	}
	t.root.color = black
}

func (t *Tree[K, V]) transplant(u, v *Node[K, V]) {
	switch {
	case u.parent == t.nilNode:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *Tree[K, V]) deleteNode(z *Node[K, V]) {
	y := z
	yOrigColor := y.color
	var x *Node[K, V]
	switch {
	case z.left == t.nilNode:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nilNode:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = z.right
		for y.left != t.nilNode {
			y = y.left
		}
		yOrigColor = y.color
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yOrigColor == black {
		t.deleteFixup(x)
	}
	// Scrub the sentinel's transient parent link so later operations see a
	// clean leaf.
	t.nilNode.parent = nil
	t.nilNode.left = nil
	t.nilNode.right = nil
	t.nilNode.color = black
}

func (t *Tree[K, V]) deleteFixup(x *Node[K, V]) {
	for x != t.root && x.color == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.leftRotate(x.parent)
				w = x.parent.right
			}
			if w.left.color == black && w.right.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.right.color == black {
					w.left.color = black
					w.color = red
					t.rightRotate(w)
					w = x.parent.right
				}
				w.color = x.parent.color
				x.parent.color = black
				w.right.color = black
				t.leftRotate(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rightRotate(x.parent)
				w = x.parent.left
			}
			if w.right.color == black && w.left.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.left.color == black {
					w.right.color = black
					w.color = red
					t.leftRotate(w)
					w = x.parent.left
				}
				w.color = x.parent.color
				x.parent.color = black
				w.left.color = black
				t.rightRotate(x.parent)
				x = t.root
			}
		}
	}
	x.color = black
}

// checkInvariants validates the red-black properties and the cached leftmost
// pointer; it returns the black-height or panics on violation. It is exported
// to tests via export_test.go.
func (t *Tree[K, V]) checkInvariants() int {
	if t.root.color != black {
		panic("rbtree: root is red")
	}
	var walkMin *Node[K, V]
	if t.size > 0 {
		walkMin = t.root
		for walkMin.left != t.nilNode {
			walkMin = walkMin.left
		}
	}
	if walkMin != nil && walkMin != t.leftmost {
		panic("rbtree: cached leftmost is stale")
	}
	if t.size == 0 && t.leftmost != t.nilNode {
		panic("rbtree: leftmost set on empty tree")
	}
	var check func(n *Node[K, V]) int
	check = func(n *Node[K, V]) int {
		if n == t.nilNode {
			return 1
		}
		if n.color == red && (n.left.color == red || n.right.color == red) {
			panic("rbtree: red node with red child")
		}
		if n.left != t.nilNode && t.less(n.key, n.left.key) {
			panic("rbtree: BST order violated (left)")
		}
		if n.right != t.nilNode && t.less(n.right.key, n.key) {
			panic("rbtree: BST order violated (right)")
		}
		lh := check(n.left)
		rh := check(n.right)
		if lh != rh {
			panic("rbtree: black-height mismatch")
		}
		if n.color == black {
			return lh + 1
		}
		return lh
	}
	return check(t.root)
}
