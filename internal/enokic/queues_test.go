package enokic

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/sched/fifo"
)

// TestUserQueueDoubleCloseSafe pins the Close idempotence contract: a
// second Close on the same handle is a no-op — no dispatch, no queue-lie
// kill, no table churn.
func TestUserQueueDoubleCloseSafe(t *testing.T) {
	var hs *hintScheduler
	k, a := newRig(t, func(env core.Env) core.Scheduler {
		hs = &hintScheduler{fifo: fifo.New(env, policyEnoki)}
		return hs
	})
	uq := a.CreateHintQueue(8)
	if uq == nil {
		t.Fatal("queue registration failed")
	}
	uq.Close()
	k.RunFor(time.Millisecond)
	before := a.Stats().Messages

	uq.Close()
	uq.Close()
	k.RunFor(time.Millisecond)

	if got := a.Stats().Messages; got != before {
		t.Errorf("double Close dispatched %d extra messages", got-before)
	}
	if a.Killed() {
		t.Fatalf("double Close killed an honest module: %+v", a.Failure())
	}
	if len(a.queues) != 0 {
		t.Errorf("queue table has %d entries, want 0", len(a.queues))
	}
}

// TestUserQueueStaleCloseAfterIDReuse is the reason the Close guard checks
// ownership rather than a closed flag: the test module hands out id 1 for
// every registration, so after close + re-create the stale handle's id
// names a different live queue. Its Close must not tear that queue down.
func TestUserQueueStaleCloseAfterIDReuse(t *testing.T) {
	var hs *hintScheduler
	k, a := newRig(t, func(env core.Env) core.Scheduler {
		hs = &hintScheduler{fifo: fifo.New(env, policyEnoki)}
		return hs
	})
	stale := a.CreateHintQueue(8)
	if stale == nil {
		t.Fatal("queue registration failed")
	}
	stale.Close()
	k.RunFor(time.Millisecond)

	fresh := a.CreateHintQueue(8)
	if fresh == nil {
		t.Fatal("re-registration failed")
	}
	if fresh.ID() != stale.ID() {
		t.Skipf("module did not reuse the id (%d vs %d); hazard not reproducible", fresh.ID(), stale.ID())
	}

	stale.Close() // must be a no-op: the id now belongs to fresh
	k.RunFor(time.Millisecond)
	if len(a.queues) != 1 {
		t.Fatalf("stale Close tore down the fresh queue: table has %d entries, want 1", len(a.queues))
	}
	if !fresh.Send("hello") {
		t.Error("fresh queue unusable after stale Close")
	}
	k.RunFor(time.Millisecond)
	if len(hs.hints) != 1 {
		t.Errorf("module drained %d hints, want 1", len(hs.hints))
	}
	if a.Killed() {
		t.Fatalf("module killed: %+v", a.Failure())
	}
}

// TestRevQueueDoubleCloseSafe pins the same contract for reverse queues:
// CloseRevQueue looks the queue up by pointer, so a repeat close finds no
// table entry and does nothing.
func TestRevQueueDoubleCloseSafe(t *testing.T) {
	var hs *hintScheduler
	k, a := newRig(t, func(env core.Env) core.Scheduler {
		hs = &hintScheduler{fifo: fifo.New(env, policyEnoki)}
		return hs
	})
	rev := a.CreateRevQueue(8)
	if rev == nil {
		t.Fatal("rev queue registration failed")
	}
	a.CloseRevQueue(rev)
	k.RunFor(time.Millisecond)
	before := a.Stats().Messages

	a.CloseRevQueue(rev)
	a.CloseRevQueue(rev)
	k.RunFor(time.Millisecond)

	if got := a.Stats().Messages; got != before {
		t.Errorf("double CloseRevQueue dispatched %d extra messages", got-before)
	}
	if a.Killed() {
		t.Fatalf("double CloseRevQueue killed an honest module: %+v", a.Failure())
	}
	if len(a.revQueues) != 0 {
		t.Errorf("rev queue table has %d entries, want 0", len(a.revQueues))
	}
}
