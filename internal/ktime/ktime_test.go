package ktime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(3 * time.Microsecond)
	if t1 != Time(3000) {
		t.Fatalf("Add: got %d, want 3000", t1)
	}
	if d := t1.Sub(t0); d != 3*time.Microsecond {
		t.Fatalf("Sub: got %v", d)
	}
	if !t0.Before(t1) || t1.Before(t0) {
		t.Fatal("Before ordering wrong")
	}
	if !t1.After(t0) || t0.After(t1) {
		t.Fatal("After ordering wrong")
	}
}

func TestTimeString(t *testing.T) {
	if s := Time(1500).String(); s != "T+1.5µs" {
		t.Fatalf("String: got %q", s)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds too similar: %d collisions", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn not covering range: %d values", len(seen))
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(13)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestExpDuration(t *testing.T) {
	r := NewRand(17)
	var sum time.Duration
	const n = 100000
	for i := 0; i < n; i++ {
		d := r.ExpDuration(10 * time.Microsecond)
		if d < time.Nanosecond {
			t.Fatalf("ExpDuration below clamp: %v", d)
		}
		sum += d
	}
	mean := sum / n
	if mean < 9500*time.Nanosecond || mean > 10500*time.Nanosecond {
		t.Fatalf("ExpDuration mean %v, want ~10µs", mean)
	}
}

func TestUniformDuration(t *testing.T) {
	r := NewRand(19)
	lo, hi := 5*time.Microsecond, 15*time.Microsecond
	for i := 0; i < 10000; i++ {
		d := r.UniformDuration(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("UniformDuration out of range: %v", d)
		}
	}
	if d := r.UniformDuration(lo, lo); d != lo {
		t.Fatalf("degenerate UniformDuration: %v", d)
	}
}

func TestUniformDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("hi < lo did not panic")
		}
	}()
	NewRand(1).UniformDuration(10, 5)
}

func TestNormDurationClamped(t *testing.T) {
	r := NewRand(23)
	for i := 0; i < 10000; i++ {
		if d := r.NormDuration(time.Microsecond, 10*time.Microsecond); d < 0 {
			t.Fatalf("NormDuration negative: %v", d)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := NewRand(29)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", p)
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	r := NewRand(31)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[500] {
		t.Fatalf("Zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	if counts[0] < n/100 {
		t.Fatalf("Zipf head too light: %d", counts[0])
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(NewRand(1), 0, 1)
}

// Property: Float64 is a pure function of generator state — two generators
// with equal seeds produce equal values for any seed.
func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRand(seed), NewRand(seed)
		for i := 0; i < 16; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
