// Command enoki-chaos drives the deterministic chaos engine: seeded fault
// campaigns across every scheduler class, an always-on invariant oracle, and
// automatic minimization of failing seeds down to a replayable one-liner.
//
// Usage:
//
//	enoki-chaos [-runs N] [-seed S] [-class NAME] [-norollback] [-v]
//	enoki-chaos -replay SPEC [-norollback]
//
// A campaign round-robins seeded fault schedules over the target classes
// (all of them by default) and judges every run with the invariant oracle.
// Each failure is shrunk to a minimal fault schedule and printed with the
// exact command that replays it:
//
//	enoki-chaos -replay v1:shinjuku:37467eec32c27644:2
//
// Because the simulator is single-threaded over virtual time and every fault
// trigger is a seeded draw, a call count, or a virtual timestamp, the spec
// string is the entire reproducer — no transcript, no flake.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"enoki/internal/chaos"
)

func main() {
	runs := flag.Int("runs", 100, "number of seeded campaign runs")
	seed := flag.Uint64("seed", 1, "campaign master seed")
	class := flag.String("class", "", "restrict to one scheduler class (default: all, round-robin)")
	replay := flag.String("replay", "", "replay one failing spec (v1:/t1:<class>:<seed>:<mask>) instead of a campaign")
	noRollback := flag.Bool("norollback", false, "disable transactional upgrade rollback (the seeded-bug configuration)")
	leakShed := flag.Bool("leakshed", false, "plant the shed-accounting leak (the traffic plane's seeded-bug configuration)")
	verified := flag.Bool("verified", false, "mount the verified-bytecode tier above each class under test")
	maxFailures := flag.Int("maxfailures", 3, "stop the campaign after minimizing this many failures")
	verbose := flag.Bool("v", false, "print one line per campaign run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: enoki-chaos [-runs N] [-seed S] [-class NAME] [-norollback] [-verified] [-v]\n"+
			"       enoki-chaos -replay SPEC [-norollback] [-verified]\n\nclasses: %s\n",
			strings.Join(chaos.ClassNames(), " "))
	}
	flag.Parse()

	rc := chaos.RunConfig{NoRollback: *noRollback, VerifiedTier: *verified}

	if strings.HasPrefix(*replay, "t1:") {
		s, err := chaos.ParseTrafficSpec(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "enoki-chaos: %v\n", err)
			os.Exit(2)
		}
		res := chaos.RunTraffic(s, chaos.TrafficRunConfig{LeakShed: *leakShed})
		fmt.Printf("replay %s  class=%s  events=%v\n", s.Spec(), s.Class, s.Enabled())
		n := res.Report.Total
		fmt.Printf("  conns=%d offered=%d admitted=%d shed=%d retried=%d dropped=%d killed=%v\n",
			res.Report.Connections, n.Offered, n.Admitted, n.Shed, n.Retried, n.Dropped, res.Killed)
		if !res.Failed() {
			fmt.Println("  oracle: PASS")
			return
		}
		fmt.Println("  oracle: FAIL")
		for _, v := range res.Violations {
			fmt.Printf("    violation: %s\n", v)
		}
		os.Exit(1)
	}

	if *replay != "" {
		s, err := chaos.ParseSpec(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "enoki-chaos: %v\n", err)
			os.Exit(2)
		}
		res := chaos.Run(s, rc)
		fmt.Printf("replay %s  class=%s  events=%v\n", s.Spec(), s.Class, s.Enabled())
		fmt.Printf("  completed %d/%d tasks, killed=%v, upgrades=%d\n",
			res.Completed, res.Tasks, res.Killed, len(res.Upgrades))
		if res.Failure != nil {
			fmt.Printf("  module failure: %s at %v\n", res.Failure.Fault, res.Failure.At)
		}
		if !res.Failed() {
			fmt.Println("  oracle: PASS")
			return
		}
		fmt.Println("  oracle: FAIL")
		for _, v := range res.Violations {
			fmt.Printf("    violation: %s\n", v)
		}
		os.Exit(1)
	}

	cfg := chaos.CampaignConfig{
		Runs:        *runs,
		Seed:        *seed,
		MaxFailures: *maxFailures,
		Run:         rc,
	}
	if *class != "" {
		cfg.Classes = []string{*class}
	}
	if *verbose {
		cfg.Progress = func(line string) { fmt.Println(line) }
	}
	res := chaos.Campaign(cfg)
	fmt.Printf("campaign: %d runs, %d failures (seed %#x)\n", res.Runs, len(res.Failures), *seed)
	for _, f := range res.Failures {
		fmt.Printf("\nFAIL %s\n", f.Result.Schedule.Spec())
		fmt.Printf("  events:    %v\n", f.Result.Schedule.Enabled())
		fmt.Printf("  minimized: %v\n", f.Minimized.Enabled())
		for _, v := range f.MinResult.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
		fmt.Printf("  reproduce: %s\n", f.Replay)
	}
	if !res.OK() {
		os.Exit(1)
	}
}
