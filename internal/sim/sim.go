// Package sim implements the discrete-event simulation engine underneath the
// simulated kernel. The engine owns a binary-heap event queue ordered by
// (virtual time, insertion sequence); ties in time execute in insertion
// order, which makes every run fully deterministic.
//
// The engine is deliberately tiny: the kernel package layers CPUs, run
// queues, and timers on top of it. Events are plain closures. An event can be
// cancelled by its handle; cancellation is O(1) (the event is tombstoned and
// skipped when popped), which matters because the kernel cancels and re-arms
// per-CPU completion events on every preemption.
//
// The hot paths are allocation-free in steady state:
//
//   - Post/PostAt schedule fire-and-forget events drawn from an internal
//     free list; because no handle escapes, the Event is recycled the moment
//     it fires.
//   - NewEvent + Reschedule give timer owners (the kernel's per-CPU tick and
//     reschedule timers, per-task completion events) one persistent Event
//     that is re-armed in place instead of allocating a closure + Event per
//     arm.
//
// Tombstones do not accumulate: the engine tracks the live count, and when
// more than half the heap is cancelled events it compacts the heap in one
// O(n) pass.
package sim

import (
	"container/heap"
	"fmt"

	"enoki/internal/ktime"
)

// Event is a scheduled closure. The zero value is invalid; events are created
// through Engine.At / Engine.After / Engine.NewEvent.
type Event struct {
	at        ktime.Time
	seq       uint64
	fn        func()
	cancelled bool
	// recycle marks a fire-and-forget event (Post/PostAt): no handle
	// escaped, so the engine returns it to the free list once it leaves
	// the heap.
	recycle bool
	index   int // heap index, -1 when not queued
	eng     *Engine
}

// Cancel tombstones the event. Cancelling an already-fired or
// already-cancelled event is a no-op. The event object stays valid: a later
// Engine.Reschedule re-arms it.
func (e *Event) Cancel() {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 && e.eng != nil {
		e.eng.live--
		e.eng.maybeCompact()
	}
}

// Cancelled reports whether Cancel was called after the event was last
// armed.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Time returns the virtual instant the event is (or was) scheduled for.
func (e *Event) Time() ktime.Time { return e.at }

// Queued reports whether the event is currently armed (in the heap and not
// tombstoned).
func (e *Event) Queued() bool { return e != nil && e.index >= 0 && !e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// compactFloor is the minimum heap size before tombstone compaction is
// considered; below it the garbage is too small to matter.
const compactFloor = 64

// Engine is a deterministic discrete-event executor. It is not safe for
// concurrent use; all simulation state mutates from event closures running on
// the caller's goroutine.
type Engine struct {
	now     ktime.Time
	seq     uint64
	pq      eventHeap
	live    int // queued events that are not tombstoned
	free    []*Event
	stopped bool
	fired    uint64
	recycled uint64
}

// New returns an engine with the clock at T+0 and an empty queue.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() ktime.Time { return e.now }

// Fired returns how many events have executed, a useful determinism probe in
// tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live (non-cancelled) queued events.
func (e *Engine) Pending() int { return e.live }

// QueueLen returns the raw heap length, tombstones included (tests and
// diagnostics; Pending is the meaningful count).
func (e *Engine) QueueLen() int { return len(e.pq) }

// Recycled returns how many fire-and-forget events have been returned to the
// free list, an allocation-behaviour probe for tests.
func (e *Engine) Recycled() uint64 { return e.recycled }

// alloc produces an Event, reusing a recycled one when available.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{eng: e, index: -1}
}

// release returns a fire-and-forget event to the free list once it is out of
// the heap. Handle-returning events are never recycled: a retained handle
// could otherwise cancel an unrelated future event.
func (e *Engine) release(ev *Event) {
	if !ev.recycle || ev.index >= 0 {
		return
	}
	ev.fn = nil
	ev.cancelled = false
	e.recycled++
	e.free = append(e.free, ev)
}

func (e *Engine) checkFuture(t ktime.Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < now %v)", t, e.now))
	}
}

// push arms ev at t with a fresh sequence number.
func (e *Engine) push(ev *Event, t ktime.Time) {
	ev.at = t
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.pq, ev)
	e.live++
}

// At schedules fn at absolute virtual time t and returns a cancellable
// handle. Scheduling in the past panics: it always indicates a kernel
// accounting bug, and silently clamping would hide it.
func (e *Engine) At(t ktime.Time, fn func()) *Event {
	e.checkFuture(t)
	ev := e.alloc()
	ev.fn = fn
	ev.recycle = false
	e.push(ev, t)
	return ev
}

// After schedules fn d from now. Negative d panics via At.
func (e *Engine) After(d ktime.Duration, fn func()) *Event {
	return e.At(e.now.Add(d), fn)
}

// PostAt schedules fn at absolute time t as a fire-and-forget event: no
// handle is returned, so the Event object is drawn from and returned to the
// engine's free list — the steady-state cost is zero allocations. Use it for
// one-shot work that is never cancelled (kicks, self-wakes).
func (e *Engine) PostAt(t ktime.Time, fn func()) {
	e.checkFuture(t)
	ev := e.alloc()
	ev.fn = fn
	ev.recycle = true
	e.push(ev, t)
}

// Post schedules fn d from now, fire-and-forget (see PostAt).
func (e *Engine) Post(d ktime.Duration, fn func()) {
	e.PostAt(e.now.Add(d), fn)
}

// NewEvent returns an unarmed event bound to fn, intended to be armed (and
// re-armed, and cancelled) many times via Reschedule: one Event object per
// recurring timer instead of one per arm. The handle owner must not share it.
func (e *Engine) NewEvent(fn func()) *Event {
	if fn == nil {
		panic("sim: NewEvent with nil function")
	}
	return &Event{eng: e, index: -1, fn: fn}
}

// Reschedule (re-)arms ev at absolute time t, keeping its function. It
// accepts an event in any state: queued (moved in place), tombstoned
// (revived), or fired/unarmed (pushed again) — including the event currently
// executing, which is how recurring timers re-arm themselves. A fresh
// sequence number is assigned, so ordering is exactly as if a new event had
// been scheduled.
func (e *Engine) Reschedule(ev *Event, t ktime.Time) {
	if ev == nil || ev.fn == nil {
		panic("sim: Reschedule of an event without a function")
	}
	if ev.recycle {
		panic("sim: Reschedule of a fire-and-forget event")
	}
	e.checkFuture(t)
	if ev.eng == nil {
		ev.eng = e
	}
	if ev.index >= 0 {
		if ev.cancelled {
			ev.cancelled = false
			e.live++
		}
		ev.at = t
		ev.seq = e.seq
		e.seq++
		heap.Fix(&e.pq, ev.index)
		return
	}
	ev.cancelled = false
	e.push(ev, t)
}

// RescheduleAfter re-arms ev d from now (see Reschedule).
func (e *Engine) RescheduleAfter(ev *Event, d ktime.Duration) {
	e.Reschedule(ev, e.now.Add(d))
}

// maybeCompact rebuilds the heap without tombstones once they outnumber live
// events and the heap is big enough for the O(n) pass to pay off.
func (e *Engine) maybeCompact() {
	if len(e.pq) < compactFloor || 2*e.live > len(e.pq) {
		return
	}
	kept := e.pq[:0]
	for _, ev := range e.pq {
		if ev.cancelled {
			ev.index = -1
			e.release(ev)
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(e.pq); i++ {
		e.pq[i] = nil
	}
	e.pq = kept
	for i, ev := range e.pq {
		ev.index = i
	}
	heap.Init(&e.pq)
}

// Stop makes the currently executing Run return after the current event
// completes. Queued events remain queued and a later Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event (skipping tombstones) and
// reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.cancelled {
			e.release(ev)
			continue
		}
		e.live--
		e.now = ev.at
		e.fired++
		ev.fn()
		// The closure may have re-armed ev (recurring timers); only a
		// still-unqueued fire-and-forget event is recyclable.
		e.release(ev)
		return true
	}
	return false
}

// RunUntil executes events in order until the queue drains or the next event
// lies strictly beyond t. The clock finishes at exactly t (even if the queue
// drained earlier), so back-to-back RunUntil calls compose.
func (e *Engine) RunUntil(t ktime.Time) {
	e.stopped = false
	for !e.stopped && len(e.pq) > 0 {
		// Peek without popping: heap root is pq[0].
		for len(e.pq) > 0 && e.pq[0].cancelled {
			ev := heap.Pop(&e.pq).(*Event)
			e.release(ev)
		}
		if len(e.pq) == 0 || e.pq[0].at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}
