package chaos

import (
	"bytes"
	"fmt"
	"testing"
)

// fleetSpec is the pinned machine-failure reproducer: the whole campaign —
// two machine kills mid-run, the seeded job mix, the rescheduling that
// follows — replays from this one line. The seed was chosen so the kills
// land while placements are in flight (Lost > 0); if GenerateFleet's draw
// logic changes, re-pick a seed with the same property.
const fleetSpec = "f1:wfq:5eed:3"

// TestFleetCampaignReplayFromSpec is the machine-failure chaos gate: the
// one-line spec string reconstructs the exact kill plan, the campaign loses
// placements to the kills and finishes every job on the survivors, and the
// serial and worker-goroutine fleet drives of the same spec agree on every
// control-plane outcome and every record-log byte.
func TestFleetCampaignReplayFromSpec(t *testing.T) {
	s, err := ParseFleetSpec(fleetSpec)
	if err != nil {
		t.Fatalf("ParseFleetSpec(%q): %v", fleetSpec, err)
	}
	if got := s.Spec(); got != fleetSpec {
		t.Fatalf("spec round-trip: %q -> %q", fleetSpec, got)
	}
	if len(s.Enabled()) != 2 {
		t.Fatalf("spec %q enables %d kills, want 2", fleetSpec, len(s.Enabled()))
	}

	serial := FleetCampaign(s, false)
	par := FleetCampaign(s, true)

	for _, v := range serial.Violations {
		t.Errorf("serial: %s", v)
	}
	for _, v := range par.Violations {
		t.Errorf("parallel: %s", v)
	}
	if serial.Stats != par.Stats {
		t.Fatalf("stats diverge:\nserial   %+v\nparallel %+v", serial.Stats, par.Stats)
	}
	if len(serial.Jobs) != len(par.Jobs) {
		t.Fatalf("job counts diverge: %d vs %d", len(serial.Jobs), len(par.Jobs))
	}
	for i := range serial.Jobs {
		if serial.Jobs[i] != par.Jobs[i] {
			t.Fatalf("job %d diverges:\nserial   %+v\nparallel %+v", i, serial.Jobs[i], par.Jobs[i])
		}
	}
	total := 0
	for mi := range serial.Logs {
		for sh := range serial.Logs[mi] {
			if !bytes.Equal(serial.Logs[mi][sh], par.Logs[mi][sh]) {
				t.Fatalf("machine %d shard %d: record logs diverge (%d vs %d bytes)",
					mi, sh, len(serial.Logs[mi][sh]), len(par.Logs[mi][sh]))
			}
			total += len(serial.Logs[mi][sh])
		}
	}
	if total == 0 {
		t.Fatal("record logs are empty — modules saw no scheduling traffic")
	}
	// The replay must exercise the failure path, or the identity proves
	// nothing about failover.
	if serial.Stats.Lost == 0 {
		t.Fatal("kills lost no placements — pick a seed whose kills land mid-flight")
	}
	if serial.Stats.MachinesAlive != fleetMachines-2 {
		t.Fatalf("machines alive = %d, want %d", serial.Stats.MachinesAlive, fleetMachines-2)
	}
}

// TestFleetCampaignMaskSubset pins the minimizer contract: masking off a
// kill removes exactly that fault from the replay, and the reduced campaign
// still upholds every invariant.
func TestFleetCampaignMaskSubset(t *testing.T) {
	s, err := ParseFleetSpec("f1:wfq:5eed:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Enabled()) != 1 {
		t.Fatalf("mask 1 enables %d kills, want 1", len(s.Enabled()))
	}
	r := FleetCampaign(s, false)
	for _, v := range r.Violations {
		t.Errorf("masked campaign: %s", v)
	}
	if r.Stats.MachinesAlive != fleetMachines-1 {
		t.Fatalf("machines alive = %d, want %d", r.Stats.MachinesAlive, fleetMachines-1)
	}
}

// TestFleetSpecErrors pins the parser's rejection of malformed specs.
func TestFleetSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"v1:wfq:5eed:3",     // single-machine prefix on a fleet parser
		"f1:nosuch:5eed:3",  // unknown class
		"f1:wfq:zz:3",       // bad seed hex
		"f1:wfq:5eed:gg",    // bad mask hex
		"f1:wfq:5eed",       // missing mask
		"f1:wfq:5eed:3:bad", // trailing part
	} {
		if _, err := ParseFleetSpec(spec); err == nil {
			t.Errorf("ParseFleetSpec(%q) succeeded, want error", spec)
		}
	}
}

// TestFleetCampaignSeedsDiffer guards against the campaign ignoring its
// seed: different seeds must not produce identical runs.
func TestFleetCampaignSeedsDiffer(t *testing.T) {
	a := FleetCampaign(GenerateFleet(0xa11ce, "wfq"), false)
	b := FleetCampaign(GenerateFleet(0xf1ee7, "wfq"), false)
	if fmt.Sprint(a.Stats) == fmt.Sprint(b.Stats) && func() bool {
		for mi := range a.Logs {
			for sh := range a.Logs[mi] {
				if !bytes.Equal(a.Logs[mi][sh], b.Logs[mi][sh]) {
					return false
				}
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical fleet runs")
	}
}
