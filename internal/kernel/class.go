package kernel

import "time"

// Class is the kernel-facing scheduler-class interface, the analogue of
// struct sched_class in kernel/sched/sched.h. The core scheduling code calls
// these hooks; a class only manages its own view of which tasks are queued
// where. CFS implements it natively; the Enoki adapter (internal/enokic)
// implements it by translating every call into a message for the loaded
// scheduler module; the ghOSt adapter forwards events to userspace agents.
//
// Contract:
//
//   - PickNext returns the task the CPU should run and treats it as the
//     class's current task; a picked task must not remain in the class's
//     queue while it runs.
//   - PutPrev requeues a still-runnable task that is being switched out.
//   - Dequeue removes a task that blocked, died, or is migrating away. It
//     may be called for the class's current (running) task, in which case
//     the class just forgets it.
//   - The kernel, not the class, owns task state transitions.
type Class interface {
	// Name identifies the class in logs and experiment tables.
	Name() string

	// OverheadPerCall is the framework overhead charged to the CPU for
	// each hook invocation. Native classes return 0; the Enoki adapter
	// returns the paper's ~100-150 ns; ghOSt charges per-message costs
	// separately.
	OverheadPerCall() time.Duration

	// TaskNew tells the class a task joined it (fork or setscheduler).
	// The task is not yet enqueued.
	TaskNew(t *Task)

	// TaskDead tells the class a task exited; the task was already
	// dequeued.
	TaskDead(t *Task)

	// Detach removes a task that is leaving the class for another one
	// (setscheduler away); the task was already dequeued.
	Detach(t *Task)

	// Enqueue makes t runnable on cpu's queue. wakeup distinguishes a
	// wake from a fork/migration enqueue.
	Enqueue(cpu int, t *Task, wakeup bool)

	// Dequeue removes t from cpu's queue. sleep is true when the task is
	// blocking (as opposed to dying or migrating).
	Dequeue(cpu int, t *Task, sleep bool)

	// Yield repositions the class's current task after sched_yield; t
	// stays runnable and must be queued again.
	Yield(cpu int, t *Task)

	// PutPrev requeues the class's current task t, which remains
	// runnable; preempted is true when an involuntary switch caused it.
	PutPrev(cpu int, t *Task, preempted bool)

	// PickNext chooses the next task for cpu, or nil if the class has
	// nothing runnable there.
	PickNext(cpu int) *Task

	// Tick runs scheduler-tick policy for the running task t on cpu.
	Tick(cpu int, t *Task)

	// SelectRQ picks the CPU for a waking (or newly forked) task.
	SelectRQ(t *Task, prevCPU int, wakeup bool) int

	// CheckPreempt decides whether the newly woken t should preempt
	// cpu's current task of the same class (kernel handles cross-class
	// priority).
	CheckPreempt(cpu int, t *Task)

	// Balance lets the class pull work toward cpu; it runs at the top of
	// every schedule pass, before PickNext.
	Balance(cpu int)

	// Migrate transfers class-private state when the kernel moves t from
	// src to dst; it runs between the Dequeue on src and the Enqueue on
	// dst.
	Migrate(t *Task, src, dst int)

	// PrioChanged tells the class t's nice value changed.
	PrioChanged(t *Task)

	// AffinityChanged tells the class t's allowed-CPU mask changed.
	AffinityChanged(t *Task)

	// NRunnable returns the number of queued (not running) tasks the
	// class has on cpu; the kernel uses it for idle checks and
	// instrumentation.
	NRunnable(cpu int) int
}

// CrossingTierer is the optional tier tag a Class may implement to declare
// which policy tier it runs at: "verified" for the in-kernel bytecode
// interpreter (internal/vpol), "module" for the full message-crossing
// adapter (internal/enokic). Classes without the method — CFS, RT, and any
// other native Go class — are "builtin".
type CrossingTierer interface {
	CrossingTier() string
}

// CrossingTierOf resolves a class's tier tag, defaulting to "builtin".
func CrossingTierOf(c Class) string {
	if tt, ok := c.(CrossingTierer); ok {
		return tt.CrossingTier()
	}
	return "builtin"
}

// classSlot binds a registered class to its policy ID and priority position.
type classSlot struct {
	id    int
	class Class
}
