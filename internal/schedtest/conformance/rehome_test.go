package conformance

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/record"
	"enoki/internal/schedtest"
)

// rehomeRun executes one kill-under-maximum-load scenario and returns its
// observables: a module is upgraded with a deliberately wide blackout while
// every CPU is running one pinned task and holding more queued behind it,
// then killed mid-blackout by a task departing through an injected
// task_departed panic. The fault layer must rehome every task to CFS with
// none lost and none double-enqueued, the in-flight upgrade must resolve
// with ErrModuleKilled, and the whole run must be deterministic — the
// returned record log is compared byte for byte across repeats.
func rehomeRun(t *testing.T) (completed int, report enokic.UpgradeReport, resolved bool, violations []Violation, log []byte) {
	t.Helper()
	var wfqCase Case
	for _, c := range Cases() {
		if c.Name == "wfq" {
			wfqCase = c
		}
	}
	cfg := enokic.DefaultConfig()
	// Stretch the blackout from ~1.5µs to >5ms so the kill lands squarely
	// inside it, with queued work piling up behind the write lock.
	cfg.UpgradeBase = 5 * time.Millisecond

	inj := &schedtest.Injector{PanicSite: core.MsgTaskDeparted}
	r := NewRig(wfqCase, cfg, func(m core.Scheduler) core.Scheduler {
		inj.Scheduler = m
		return inj
	})
	k := r.K

	var buf bytes.Buffer
	rec := record.New(k, &buf, PolicyCFS, record.DefaultCosts())
	r.Adapter.SetRecorder(rec)

	ch := StartChecker(r, 250*time.Microsecond)

	// Three pinned tasks per CPU: one running, two queued — every CPU has
	// work in flight when the kill hits.
	ncpu := k.NumCPUs()
	var victim *kernel.Task
	for cpu := 0; cpu < ncpu; cpu++ {
		for j := 0; j < 3; j++ {
			task := k.Spawn(fmt.Sprintf("p%d.%d", cpu, j), PolicyTest,
				Loop(8, time.Millisecond, kernel.OpContinue, 0),
				kernel.WithAffinity(kernel.SingleCPU(cpu)),
				kernel.WithExitObserver(func() { completed++ }))
			if victim == nil {
				victim = task
			}
		}
	}

	k.Engine().After(2*time.Millisecond, func() {
		r.Adapter.Upgrade(func(env core.Env) core.Scheduler {
			return wfqCase.NewModule(env, ncpu)
		}, func(rep enokic.UpgradeReport) { report = rep; resolved = true })
	})
	// 1ms into the 5ms blackout: move the victim to CFS. Detach needs a
	// synchronous task_departed reply, the injector panics inside it, and
	// the module dies mid-upgrade with every CPU loaded.
	k.Engine().After(3*time.Millisecond, func() {
		k.SetScheduler(victim, PolicyCFS)
	})

	k.RunFor(500 * time.Millisecond)
	ch.Stop()

	if !r.Adapter.Killed() {
		t.Fatal("module survived the injected task_departed panic")
	}
	// Closing the recorder lets its drain task exit on the next poll; after
	// that the kernel table must be fully drained.
	rec.Close()
	k.RunFor(5 * time.Millisecond)
	if k.NumTasks() != 0 {
		t.Fatalf("task table leaked %d entries", k.NumTasks())
	}
	return completed, report, resolved, append([]Violation(nil), ch.Violations...), buf.Bytes()
}

func TestRehomeUnderLoadDuringUpgrade(t *testing.T) {
	completed, report, resolved, violations, log := rehomeRun(t)

	if completed != 24 {
		t.Errorf("lost tasks: %d/24 completed under CFS after the kill", completed)
	}
	for _, v := range violations {
		t.Errorf("invariant violation (double-run/state breach): %v", v)
	}
	if !resolved {
		t.Fatal("in-flight upgrade never resolved after the kill")
	}
	if report.Err != enokic.ErrModuleKilled {
		t.Errorf("upgrade resolved with %v, want ErrModuleKilled", report.Err)
	}
	if report.RolledBack {
		t.Error("a mid-blackout kill has nothing to roll back to")
	}
	if _, err := record.Load(bytes.NewReader(log)); err != nil {
		t.Errorf("record log not decodable after kill: %v", err)
	}

	// Same scenario, bit-for-bit: the record log is the determinism witness.
	completed2, _, _, _, log2 := rehomeRun(t)
	if completed2 != completed {
		t.Errorf("repeat run completed %d tasks, first run %d", completed2, completed)
	}
	if !bytes.Equal(log, log2) {
		t.Errorf("record logs differ across identical runs: %d vs %d bytes", len(log), len(log2))
	}
}
