package core

// Topology is the scheduling-domain view of the machine a module (and the
// kernel's own balancers) sees: CPUs grouped into LLC domains, LLC domains
// grouped into NUMA nodes (sockets). It is immutable after construction and
// shared — callers must treat every returned slice as read-only.
//
// Distances follow the Linux sched-domain convention collapsed to three
// levels: 0 inside an LLC domain (cache-hot migration), 1 across LLC domains
// on one socket (cache-cold but memory-local), 2 across sockets (the
// paper-style cross-NUMA cost every balancer should escalate to only under
// real imbalance).
type Topology struct {
	numCPUs  int
	nodeOf   []int
	llcOf    []int
	numNodes int
	numLLCs  int
	// llcCPUs[d] lists the CPUs of LLC domain d in ascending order;
	// nodeCPUs[n] likewise per node.
	llcCPUs  [][]int
	nodeCPUs [][]int
}

// Topology distance levels.
const (
	// DistSameLLC: the CPUs share a last-level cache.
	DistSameLLC = 0
	// DistSameNode: same socket, different LLC domain.
	DistSameNode = 1
	// DistCrossNode: different sockets.
	DistCrossNode = 2
)

// NewTopology builds a topology from per-CPU node and LLC-domain maps.
// llcOf may be nil, in which case each node is one LLC domain (a monolithic
// cache per socket). Domain and node ids must be dense, starting at 0.
func NewTopology(nodeOf, llcOf []int) *Topology {
	n := len(nodeOf)
	if llcOf == nil {
		llcOf = nodeOf
	}
	if len(llcOf) != n {
		panic("core: NewTopology llcOf/nodeOf length mismatch")
	}
	t := &Topology{
		numCPUs: n,
		nodeOf:  append([]int(nil), nodeOf...),
		llcOf:   append([]int(nil), llcOf...),
	}
	for cpu := 0; cpu < n; cpu++ {
		if nd := nodeOf[cpu]; nd >= t.numNodes {
			t.numNodes = nd + 1
		}
		if d := llcOf[cpu]; d >= t.numLLCs {
			t.numLLCs = d + 1
		}
	}
	t.llcCPUs = make([][]int, t.numLLCs)
	t.nodeCPUs = make([][]int, t.numNodes)
	for cpu := 0; cpu < n; cpu++ {
		d, nd := llcOf[cpu], nodeOf[cpu]
		t.llcCPUs[d] = append(t.llcCPUs[d], cpu)
		t.nodeCPUs[nd] = append(t.nodeCPUs[nd], cpu)
	}
	return t
}

// FlatTopology returns an n-CPU topology with a single node and a single
// LLC domain: every CPU is distance 0 from every other. It is the replay
// default and the "flat" baseline the NUMA experiments compare against.
func FlatTopology(n int) *Topology {
	return NewTopology(make([]int, n), nil)
}

// NumCPUs returns the machine's CPU count.
func (t *Topology) NumCPUs() int { return t.numCPUs }

// NumNodes returns the number of NUMA nodes (sockets).
func (t *Topology) NumNodes() int { return t.numNodes }

// NumDomains returns the number of LLC domains.
func (t *Topology) NumDomains() int { return t.numLLCs }

// DomainOf returns the LLC domain id of cpu.
func (t *Topology) DomainOf(cpu int) int { return t.llcOf[cpu] }

// NodeOf returns the NUMA node id of cpu.
func (t *Topology) NodeOf(cpu int) int { return t.nodeOf[cpu] }

// SameLLC reports whether two CPUs share a last-level cache domain.
func (t *Topology) SameLLC(a, b int) bool { return t.llcOf[a] == t.llcOf[b] }

// SameNode reports whether two CPUs share a NUMA node.
func (t *Topology) SameNode(a, b int) bool { return t.nodeOf[a] == t.nodeOf[b] }

// Distance returns the scheduling distance between two CPUs: DistSameLLC,
// DistSameNode, or DistCrossNode.
func (t *Topology) Distance(a, b int) int {
	switch {
	case t.llcOf[a] == t.llcOf[b]:
		return DistSameLLC
	case t.nodeOf[a] == t.nodeOf[b]:
		return DistSameNode
	default:
		return DistCrossNode
	}
}

// DomainCPUs returns the CPUs of LLC domain d in ascending order. The slice
// is shared; callers must not mutate it.
func (t *Topology) DomainCPUs(d int) []int { return t.llcCPUs[d] }

// NodeCPUs returns the CPUs of node n in ascending order (read-only).
func (t *Topology) NodeCPUs(n int) []int { return t.nodeCPUs[n] }

// Siblings returns cpu's LLC-domain siblings, cpu included, in ascending
// order (read-only). Modules use this for cache-aware spill decisions.
func (t *Topology) Siblings(cpu int) []int { return t.llcCPUs[t.llcOf[cpu]] }
