package sim

import (
	"testing"
	"time"

	"enoki/internal/ktime"
)

// wheelHorizon is the near-wheel window in virtual time; events beyond it
// take the overflow path.
const wheelHorizon = numSlots * slotGrain * time.Nanosecond

// TestFarFutureOverflowPromotion schedules events far beyond the near-wheel
// horizon and checks they are promoted and fire in exact (time, seq) order,
// interleaved with near events.
func TestFarFutureOverflowPromotion(t *testing.T) {
	e := New()
	var order []int
	// Far events, out of order, several wheel rotations out.
	e.After(5*wheelHorizon, func() { order = append(order, 5) })
	e.After(3*wheelHorizon, func() { order = append(order, 3) })
	e.After(9*wheelHorizon, func() { order = append(order, 9) })
	// Near events.
	e.After(10*time.Microsecond, func() { order = append(order, 0) })
	e.After(wheelHorizon/2, func() { order = append(order, 1) })
	if e.wq.over.empty() {
		t.Fatal("far-future events did not take the overflow path")
	}
	e.Run()
	want := []int{0, 1, 3, 5, 9}
	if len(order) != len(want) {
		t.Fatalf("fired %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if !e.wq.over.empty() {
		t.Fatal("overflow not drained")
	}
}

// TestOverflowPromotionPreservesTies: far-future events at the same instant
// must fire in insertion order after promotion, exactly like near ties.
func TestOverflowPromotionPreservesTies(t *testing.T) {
	e := New()
	var order []int
	at := ktime.Time(0).Add(4 * wheelHorizon)
	for i := 0; i < 20; i++ {
		i := i
		e.At(at, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("promotion broke tie order at %d: %v", i, order)
		}
	}
}

// TestRearmFromFiringClosureAcrossHorizon is the recurring-timer edge case:
// an event re-arming itself from inside its own firing closure, alternating
// between near and far-future (overflow) target times.
func TestRearmFromFiringClosureAcrossHorizon(t *testing.T) {
	e := New()
	var times []ktime.Time
	var ev *Event
	ev = e.NewEvent(func() {
		times = append(times, e.Now())
		switch len(times) {
		case 1:
			e.RescheduleAfter(ev, 2*wheelHorizon) // into overflow
		case 2:
			e.RescheduleAfter(ev, 5*time.Microsecond) // back into the wheel
		}
	})
	e.RescheduleAfter(ev, 10*time.Nanosecond)
	e.Run()
	if len(times) != 3 {
		t.Fatalf("recurring timer fired %d times, want 3", len(times))
	}
	if times[1].Sub(times[0]) != 2*wheelHorizon {
		t.Fatalf("far re-arm fired after %v, want %v", times[1].Sub(times[0]), 2*wheelHorizon)
	}
	if times[2].Sub(times[1]) != 5*time.Microsecond {
		t.Fatalf("near re-arm fired after %v, want 5µs", times[2].Sub(times[1]))
	}
}

// TestCancelThenRearmRecycledEvent exercises the free-list safety contract
// under the wheel: a fire-and-forget event fires and is recycled, its Event
// object is reused by a later Post, and a retained handle from an unrelated
// cancelled+re-armed event must neither fire twice nor disturb the recycled
// object.
func TestCancelThenRearmRecycledEvent(t *testing.T) {
	e := New()
	fired := 0
	e.Post(10, func() { fired++ })
	e.Run()
	if e.Recycled() != 1 {
		t.Fatalf("Recycled = %d", e.Recycled())
	}

	// Handle event: cancel while queued, then re-arm (revive), then cancel
	// and re-arm once more after it fired.
	hits := 0
	ev := e.NewEvent(func() { hits++ })
	e.RescheduleAfter(ev, 20)
	ev.Cancel()
	e.RescheduleAfter(ev, 30)
	// The Post here must draw the recycled Event from the free list and
	// coexist with ev's stale tombstone entry.
	e.Post(5, func() { fired++ })
	e.Run()
	if hits != 1 {
		t.Fatalf("revived event fired %d times, want 1", hits)
	}
	if fired != 2 {
		t.Fatalf("fire-and-forget events fired %d times, want 2", fired)
	}
	ev.Cancel() // cancel after fire: no-op
	e.RescheduleAfter(ev, 10)
	e.Run()
	if hits != 2 {
		t.Fatalf("re-armed-after-fire event fired %d times total, want 2", hits)
	}
}

// TestRearmWhileQueuedLeavesOneFiring: re-arming a queued event many times
// must fire it exactly once, at the last target, despite the stale entries
// the wheel accumulates.
func TestRearmWhileQueuedLeavesOneFiring(t *testing.T) {
	e := New()
	count := 0
	ev := e.NewEvent(func() { count++ })
	for i := 1; i <= 50; i++ {
		e.Reschedule(ev, ktime.Time(1000+i))
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if count != 1 {
		t.Fatalf("event fired %d times, want 1", count)
	}
	if e.Now() != ktime.Time(1050) {
		t.Fatalf("fired at %v, want 1050", e.Now())
	}
}

// TestQueueLiveExcludesDeadEntries: QueueLen counts tombstones and stale
// re-arm entries, QueueLive does not.
func TestQueueLiveExcludesDeadEntries(t *testing.T) {
	e := New()
	ev1 := e.After(100, func() {})
	e.After(200, func() {})
	ev3 := e.NewEvent(func() {})
	e.Reschedule(ev3, ktime.Time(300))
	e.Reschedule(ev3, ktime.Time(400)) // stale entry at 300
	ev1.Cancel()                       // tombstone at 100

	if got := e.QueueLen(); got != 4 {
		t.Fatalf("QueueLen = %d, want 4 (2 live + tombstone + stale)", got)
	}
	if got := e.QueueLive(); got != 2 {
		t.Fatalf("QueueLive = %d, want 2", got)
	}
	if e.QueueLive() != e.Pending() {
		t.Fatalf("QueueLive (%d) != Pending (%d)", e.QueueLive(), e.Pending())
	}
	e.Run()
	if e.QueueLive() != 0 || e.QueueLen() != 0 {
		t.Fatalf("after drain: live=%d raw=%d", e.QueueLive(), e.QueueLen())
	}
}

// TestCompactionMidDrainWithRetainedHandle triggers compaction from inside a
// firing closure — mid-drain, while the wheel's current slot is partially
// consumed — with a retained handle that is re-armed afterwards. The
// compaction pass must not disturb the drain order or the handle's revival.
func TestCompactionMidDrainWithRetainedHandle(t *testing.T) {
	e := New()
	var evs []*Event
	// Everything lands in one ~2µs wheel slot so the compaction runs while
	// that slot is mid-drain.
	base := ktime.Time(10000)
	hits := 0
	retained := e.NewEvent(func() { hits++ })
	e.Reschedule(retained, base.Add(500))

	for i := 0; i < 300; i++ {
		at := base.Add(ktime.Duration(i))
		evs = append(evs, e.At(at, func() {}))
	}
	var fired []ktime.Time
	// The trigger event fires first (earliest in the slot), cancels most of
	// the slot's remaining events plus the retained handle — pushing dead
	// entries past the compaction threshold mid-drain — then re-arms the
	// retained handle beyond the slot.
	e.At(base, func() {
		for _, ev := range evs {
			ev.Cancel()
		}
		retained.Cancel()
		if e.QueueLen() > 150 {
			t.Fatalf("compaction did not run mid-drain: raw=%d live=%d",
				e.QueueLen(), e.QueueLive())
		}
		e.Reschedule(retained, base.Add(5000))
	})
	e.At(base.Add(700), func() { fired = append(fired, e.Now()) })
	e.Run()

	if hits != 1 {
		t.Fatalf("retained handle fired %d times, want 1", hits)
	}
	if e.Now() != base.Add(5000) {
		t.Fatalf("final event at %v, want %v", e.Now(), base.Add(5000))
	}
	if len(fired) != 1 || fired[0] != base.Add(700) {
		t.Fatalf("surviving event fired at %v", fired)
	}
}

// TestCompactionReleasesNothingLive: the compaction sweep must never free or
// reorder live entries even when interleaved with the overflow level.
func TestCompactionReleasesNothingLive(t *testing.T) {
	e := New()
	var fired []int
	var evs []*Event
	for i := 0; i < 900; i++ {
		i := i
		var at ktime.Time
		if i%3 != 0 {
			at = ktime.Time(1000 + i) // near
		} else {
			at = ktime.Time(0).Add(3 * wheelHorizon).Add(ktime.Duration(i)) // far
		}
		evs = append(evs, e.At(at, func() { fired = append(fired, i) }))
	}
	// Cancel every near event: 600 tombstones against 300 live far events
	// forces a compaction pass that straddles wheel and overflow.
	for i := 0; i < 900; i++ {
		if i%3 != 0 {
			evs[i].Cancel()
		}
	}
	if e.QueueLen() > 450 {
		t.Fatalf("compaction did not run: raw=%d live=%d", e.QueueLen(), e.QueueLive())
	}
	// Only far events survive and must fire in insertion (= index) order.
	e.Run()
	if len(fired) != 300 {
		t.Fatalf("fired %d events, want 300", len(fired))
	}
	for j := 1; j < len(fired); j++ {
		if fired[j] < fired[j-1] {
			t.Fatalf("overflow order broken at %d: %v...", j, fired[:j+1])
		}
	}
}
