package cluster

import (
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
)

// Machine is the agent side of the control loop: one simulated machine — a
// full sharded kernel under its own epoch-merge executor — executing start
// and stop operations the control plane injects, and reporting lifecycle
// transitions back over the simulated network. Operations and reports both
// ride the fleet's deterministic message order, so the agent is a state
// machine with no hidden concurrency: applyStart/applyStop run inside the
// target shard's execution context, exit observers run on the owning shard,
// and every cross-machine send goes through a per-shard fleet source.
//
// A machine's executor is always driven serially (the fleet's parallel mode
// already gives each machine its own worker goroutine; nesting another
// parallel drive inside it would oversubscribe without adding determinism).
type Machine struct {
	c  *Cluster
	id int
	sk *kernel.ShardedKernel
	// node is this machine's fleet index; src[s] is the fleet send context
	// owned by shard s, so reports from concurrently-driven machines never
	// race.
	node int
	src  []int
	// jobs is the agent's running-set, keyed by job id. Only shard contexts
	// of this machine touch it, and the machine drive is serial, so no
	// locking.
	jobs    map[int]*jobRun
	spawned uint64
	// ads are the per-shard upgradable modules (index = shard, nil where
	// Config.SetupModules registered none). Each adapter is mutated only by
	// its own shard's engine; the rollout agent ops in rollout.go fan
	// in/out through shard injections, never cross-shard reads.
	ads []*enokic.Adapter
}

// jobRun is the on-machine state of one placed job.
type jobRun struct {
	id         int
	shard      int
	cyclesLeft int
	stop       bool // cooperative stop flag, checked at cycle boundaries
	spec       JobSpec
}

func newMachine(c *Cluster, id int) *Machine {
	sk := kernel.NewShardedKernel(c.cfg.Machine, kernel.CostsFor(c.cfg.Machine), 0)
	m := &Machine{c: c, id: id, sk: sk, jobs: make(map[int]*jobRun)}
	m.node = c.fl.AddNode(sk)
	for s := 0; s < sk.NumShards(); s++ {
		m.src = append(m.src, c.fl.AddSource(m.node))
	}
	if c.cfg.SetupModules != nil {
		m.ads = c.cfg.SetupModules(id, sk)
	} else if c.cfg.Setup != nil {
		c.cfg.Setup(id, sk)
	} else {
		for s := 0; s < sk.NumShards(); s++ {
			k := sk.ShardKernel(s)
			k.RegisterClass(0, kernel.NewCFS(k))
		}
	}
	return m
}

// ID returns the machine's cluster-wide id.
func (m *Machine) ID() int { return m.id }

// Sharded returns the machine's kernel stack, for per-shard instrumentation
// (recorders, tracers, extra workload) between runs.
func (m *Machine) Sharded() *kernel.ShardedKernel { return m.sk }

// TasksSpawned returns how many job tasks this machine has spawned. Read it
// between runs.
func (m *Machine) TasksSpawned() uint64 { return m.spawned }

// Adapters returns the per-shard upgradable modules Config.SetupModules
// registered (nil entries for shards without one; nil slice when the
// machine was built without SetupModules). Read adapter state between runs
// only — mid-run the shards own it.
func (m *Machine) Adapters() []*enokic.Adapter { return m.ads }

// report sends a lifecycle report from shard context back to the control
// plane, one network latency away.
func (m *Machine) report(shard int, fn func(s *jobScheduler)) {
	c := m.c
	at := m.sk.ShardKernel(shard).Now().Add(ktime.Duration(c.cfg.NetLatency))
	c.fl.SendHandoff(m.src[shard], c.ctrlNode, at, func() {
		c.ctrl.PostAt(at, func() { fn(c.sched) })
	})
}

// applyStart executes a start operation inside shard context: spawn the
// job's task into the configured policy class and ack the placement. The
// task runs cyclesLeft compute segments, parking between them per the spec,
// and honors the cooperative stop flag at every cycle boundary.
func (m *Machine) applyStart(id, shard, cycles int, spec JobSpec) {
	k := m.sk.ShardKernel(shard)
	jr := &jobRun{id: id, shard: shard, cyclesLeft: cycles, spec: spec}
	m.jobs[id] = jr
	m.spawned++
	k.Spawn(spec.Name, m.c.cfg.Policy, kernel.BehaviorFunc(
		func(*kernel.Kernel, *kernel.Task) kernel.Action {
			if jr.stop || jr.cyclesLeft <= 0 {
				return kernel.Action{Op: kernel.OpExit}
			}
			jr.cyclesLeft--
			if spec.Sleep > 0 {
				return kernel.Action{Run: spec.Run, Op: kernel.OpSleep, SleepFor: spec.Sleep}
			}
			return kernel.Action{Run: spec.Run, Op: kernel.OpYield}
		}), kernel.WithExitObserver(func() { m.onExit(jr) }))
	m.report(shard, func(s *jobScheduler) { s.onStarted(id, m.id) })
}

// applyStop executes a stop operation: raise the cooperative flag so the
// task exits at its next cycle boundary with its progress checkpointed. A
// job that already finished (its done report is in flight) is a no-op — the
// control plane resolves the race from the reports.
func (m *Machine) applyStop(id int) {
	if jr, ok := m.jobs[id]; ok {
		jr.stop = true
	}
}

// onExit runs on the owning shard when a job task dies: report either the
// completion or the migration checkpoint.
func (m *Machine) onExit(jr *jobRun) {
	delete(m.jobs, jr.id)
	id := jr.id
	if jr.stop && jr.cyclesLeft > 0 {
		left := jr.cyclesLeft
		m.report(jr.shard, func(s *jobScheduler) { s.onStopped(id, m.id, left) })
		return
	}
	m.report(jr.shard, func(s *jobScheduler) { s.onDone(id, m.id) })
}
