#!/usr/bin/env bash
# API compatibility gate for package enoki.
#
# Two layers, best available wins:
#
#  1. Semantic (optional): when golang.org/x/exp/cmd/apidiff is on PATH and
#     the baseline git ref is reachable, compare the baseline's export data
#     against the working tree and fail on incompatible changes.
#  2. Textual (always): regenerate the exported-surface listing with
#     scripts/apisurface and diff it against the committed api/enoki.txt.
#     Removed or changed lines fail; additions fail softly until the
#     baseline is refreshed.
#
# Deliberate breaks are shipped by adding a pattern to api/allowlist.txt
# (see its header) and regenerating the baseline with `-update`.
#
# Usage:
#   scripts/apicheck.sh            # run the gate
#   scripts/apicheck.sh -update    # refresh api/enoki.txt from the tree
#   APICHECK_BASE=origin/main scripts/apicheck.sh   # semantic-gate base ref
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=api/enoki.txt
allowlist=api/allowlist.txt

if [ "${1:-}" = "-update" ]; then
    go run ./scripts/apisurface . > "$baseline"
    echo "apicheck: wrote $(wc -l < "$baseline") symbols to $baseline"
    exit 0
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# allowed() filters stdin, dropping lines matched by an allowlist pattern.
allowed_patterns=$(grep -Ev '^[[:space:]]*(#|$)' "$allowlist" || true)
allowed() {
    if [ -n "$allowed_patterns" ]; then
        grep -Evf <(printf '%s\n' "$allowed_patterns") || true
    else
        cat
    fi
}

fail=0

# --- layer 1: semantic gate via apidiff, when available ----------------------
if command -v apidiff >/dev/null 2>&1; then
    base_ref=${APICHECK_BASE:-HEAD}
    if git worktree add --quiet --detach "$tmp/base" "$base_ref" 2>/dev/null; then
        if (cd "$tmp/base" && apidiff -w "$tmp/enoki.export" . >/dev/null 2>&1); then
            report=$(apidiff -incompatible "$tmp/enoki.export" . 2>/dev/null | allowed)
            if [ -n "$report" ]; then
                echo "apicheck: apidiff found incompatible changes vs $base_ref:" >&2
                printf '%s\n' "$report" >&2
                fail=1
            else
                echo "apicheck: apidiff: no unallowlisted incompatible changes vs $base_ref"
            fi
        else
            echo "apicheck: apidiff could not export the base API; relying on the textual gate" >&2
        fi
        git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true
    else
        echo "apicheck: base ref '$base_ref' unavailable; relying on the textual gate" >&2
    fi
else
    echo "apicheck: apidiff not installed (go install golang.org/x/exp/cmd/apidiff@latest); using the textual surface gate"
fi

# --- layer 2: textual surface gate, always on --------------------------------
go run ./scripts/apisurface . > "$tmp/surface"

removed=$(comm -23 <(sort "$baseline") <(sort "$tmp/surface") | allowed)
added=$(comm -13 <(sort "$baseline") <(sort "$tmp/surface"))

if [ -n "$removed" ]; then
    echo "apicheck: exported API removed or changed (incompatible):" >&2
    printf '%s\n' "$removed" | sed 's/^/  - /' >&2
    echo "apicheck: if deliberate, add a pattern to $allowlist and run scripts/apicheck.sh -update" >&2
    fail=1
fi
if [ -n "$added" ]; then
    echo "apicheck: new exported API (compatible, but the baseline is stale):" >&2
    printf '%s\n' "$added" | sed 's/^/  + /' >&2
    echo "apicheck: run scripts/apicheck.sh -update and commit $baseline" >&2
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "apicheck: package enoki surface matches $baseline ($(wc -l < "$baseline") symbols)"
fi
exit "$fail"
