// Command enokibench regenerates every table and figure from the paper's
// evaluation (§5). Each experiment prints the paper-style table it
// reproduces; DESIGN.md maps experiment ids to modules and EXPERIMENTS.md
// records paper-vs-measured.
//
// Usage:
//
//	enokibench [-quick] [-parallel N] [-list] [experiment ...]
//	enokibench -benchjson [file]
//	enokibench -cluster [file]
//	enokibench -fleet [-machine 8|80|1000] [-shards N] [file]
//	enokibench -rollout [-machine 8|80|1000] [-shards N] [file]
//	enokibench -overload [-machine 8|80|1000] [-shards N] [file]
//
// With no experiment names, everything runs in paper order. -quick shrinks
// message counts and durations so the full suite finishes in well under a
// minute; without it, runs use paper-scale durations. -parallel N runs up
// to N independent experiment cells concurrently, each on its own simulated
// machine — results are byte-identical to a serial run. -benchjson runs the
// hot-path micro-benchmarks instead and writes ns/op + allocs/op to
// BENCH_hotpath.json (or the given file). -cluster measures single-kernel vs
// sharded simulation throughput at 80 and 1,000 CPUs and writes
// BENCH_cluster.json (or the given file). -fleet additionally runs the
// cluster-of-machines benchmark — 1,000 simulated machines under the fleet
// executor with a machine failure mid-run, serial and parallel — and writes
// its SLO verdicts into the same document. -rollout is a superset of -fleet:
// it also drives a wave-based canary upgrade across the fleet — clean and
// with a seeded faulty build that halts the rollout and rolls every upgraded
// machine back — plus a chaos replay of the halt from its one-line r1: spec,
// and appends those verdicts to the document. -overload is a superset of
// -rollout: it also runs the internet-scale traffic-plane benchmark — an
// open-loop scenario with a diurnal curve, flash crowd, antagonist tenant,
// and churn storm against the admission/brownout control plane, serial and
// parallel, plus a pinned t1: chaos replay of the seeded LeakShed bug —
// and appends its SLO verdicts to the document.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"enoki/internal/bench"
	"enoki/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink durations/message counts for a fast pass")
	parallel := flag.Int("parallel", 1, "run up to N experiment cells concurrently (same output as serial)")
	benchjson := flag.Bool("benchjson", false, "run hot-path micro-benchmarks, write BENCH_hotpath.json, and exit")
	clusterMode := flag.Bool("cluster", false, "run cluster-scale sharded-vs-single throughput sweep, write BENCH_cluster.json, and exit")
	fleet := flag.Bool("fleet", false, "run the cluster sweep plus the 1,000-machine fleet benchmark, write BENCH_cluster.json, and exit")
	rollout := flag.Bool("rollout", false, "run the cluster sweep, fleet benchmark, and canary-rollout benchmark, write BENCH_cluster.json, and exit")
	overloadMode := flag.Bool("overload", false, "run the cluster sweep, fleet, rollout, and traffic-plane overload benchmarks, write BENCH_cluster.json, and exit")
	machine := flag.Int("machine", 8, "per-machine CPUs for -fleet/-rollout/-overload: 8, 80, or 1000")
	shards := flag.Int("shards", 0, "shards per machine for -fleet/-rollout/-overload (0 = one per NUMA node; must match the machine)")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: enokibench [-quick] [-parallel N] [-list] [experiment ...]\n"+
			"       enokibench -benchjson [file]\n"+
			"       enokibench -cluster [file]\n"+
			"       enokibench -fleet [-machine 8|80|1000] [-shards N] [file]\n"+
			"       enokibench -rollout [-machine 8|80|1000] [-shards N] [file]\n"+
			"       enokibench -overload [-machine 8|80|1000] [-shards N] [file]\n\nexperiments:\n")
		for _, s := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", s.Name, s.What)
		}
	}
	flag.Parse()

	f := benchFlags{
		Quick: *quick, Parallel: *parallel, BenchJSON: *benchjson,
		Cluster: *clusterMode, Fleet: *fleet, Rollout: *rollout,
		Overload: *overloadMode, List: *list,
		MachineCPUs: *machine, Shards: *shards, Args: flag.Args(),
	}
	flag.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "machine":
			f.MachineSet = true
		case "shards":
			f.ShardsSet = true
		}
	})
	if err := validate(f); err != nil {
		fmt.Fprintf(os.Stderr, "enokibench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *benchjson {
		path := "BENCH_hotpath.json"
		if flag.NArg() > 0 {
			path = flag.Arg(0)
		}
		out, err := bench.WriteJSON(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "enokibench: %v\n", err)
			os.Exit(1)
		}
		for _, r := range out.Benchmarks {
			fmt.Printf("%-28s %12.1f ns/op %8d B/op %6d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
		ab := out.CrossingAblation
		fmt.Printf("\ncrossing ablation (FIFO ping-pong): module %.1f ns/op (%d allocs) vs verified %.1f ns/op (%d allocs) — %.2fx\n",
			ab.ModuleNsPerOp, ab.ModuleAllocsPerOp, ab.VerifiedNsPerOp, ab.VerifiedAllocsPerOp, ab.ModuleOverVerified)
		fmt.Printf("\ntraced run: %d events (%d dropped)\n", out.Trace.Events, out.Trace.Dropped)
		for _, cs := range out.TraceHistograms {
			fmt.Printf("%-12s crossings=%d picks=%d faults=%d dispatch p50/p99=%d/%dns pickwait p50/p99=%d/%dns wake2run p50/p99=%d/%dns depth p90=%d\n",
				cs.Name, cs.Crossings, cs.Picks, cs.Faults,
				cs.DispatchLat.P50, cs.DispatchLat.P99,
				cs.PickWait.P50, cs.PickWait.P99,
				cs.WakeToRun.P50, cs.WakeToRun.P99,
				cs.QueueDepth.P90)
		}
		fmt.Printf("wrote %s\n", path)
		return
	}

	if *clusterMode || *fleet || *rollout || *overloadMode {
		path := "BENCH_cluster.json"
		if flag.NArg() > 0 {
			path = flag.Arg(0)
		}
		var out *bench.ClusterOutput
		var err error
		switch {
		case *overloadMode:
			m, _ := machineFor(f.MachineCPUs)
			out, err = bench.WriteOverloadJSON(path, m)
		case *rollout:
			m, _ := machineFor(f.MachineCPUs)
			out, err = bench.WriteRolloutJSON(path, m)
		case *fleet:
			m, _ := machineFor(f.MachineCPUs)
			out, err = bench.WriteFleetJSON(path, m)
		default:
			out, err = bench.WriteClusterJSON(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "enokibench: %v\n", err)
			os.Exit(1)
		}
		for _, r := range out.Results {
			fmt.Printf("%5d CPUs  %-17s %2d shards  %10.1f wall ms  %12.0f events/s\n",
				r.CPUs, r.Mode, r.Shards, r.WallMS, r.EventsPerSec)
		}
		fmt.Printf("\nsharded-serial vs single: %.2fx at 80 CPUs, %.2fx at 1000 CPUs (GOMAXPROCS=%d)\n",
			out.SpeedupAt80, out.SpeedupAt1000, out.GOMAXPROCS)
		printSLOs := func(slos []bench.FleetSLO) {
			for _, s := range slos {
				verdict := "PASS"
				if !s.Pass {
					verdict = "FAIL"
				}
				fmt.Printf("  [%s] %-14s %s (target: %s)\n", verdict, s.Name, s.Measured, s.Target)
			}
		}
		var failed []string
		if fl := out.Fleet; fl != nil {
			fmt.Printf("\nfleet: %d machines × %d CPUs, %d jobs, %.1f virtual ms — serial %.0f ms, parallel %.0f ms wall\n",
				fl.Machines, fl.MachineCPUs, fl.Jobs, fl.VirtualMS, fl.WallSerialMS, fl.WallParallelMS)
			printSLOs(fl.SLOs)
			if !fl.Pass {
				failed = append(failed, "fleet")
			}
		}
		if ro := out.Rollout; ro != nil {
			fmt.Printf("\nrollout: %s %s over %d machines (canary %d, %d clean waves; faulty from machine %d halts wave %d, %d rolled back)\n",
				ro.Class, ro.Version, ro.Machines, ro.Canary, ro.CleanWaves,
				ro.FaultyFrom, ro.FaultyHaltedWave, ro.FaultyRolledBack)
			printSLOs(ro.SLOs)
			if !ro.Pass {
				failed = append(failed, "rollout")
			}
		}
		if ov := out.Overload; ov != nil {
			fmt.Printf("\noverload: %d CPUs × %d shards, %d connections, %d requests, %.1f virtual ms — serial %.0f ms, parallel %.0f ms wall\n",
				ov.MachineCPUs, ov.Shards, ov.Connections, ov.Requests,
				ov.VirtualMS, ov.WallSerialMS, ov.WallParallelMS)
			fmt.Printf("  admission: offered=%d admitted=%d shed=%d retried=%d dropped=%d (brownout enters=%d)\n",
				ov.Offered, ov.Admitted, ov.Shed, ov.Retried, ov.Dropped, ov.BrownoutEnters)
			printSLOs(ov.SLOs)
			if !ov.Pass {
				failed = append(failed, "overload")
			}
		}
		fmt.Printf("wrote %s\n", path)
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "enokibench: %s SLO verdicts failed\n", strings.Join(failed, " and "))
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-13s %s\n", s.Name, s.What)
		}
		return
	}

	names := flag.Args()
	var specs []experiments.Spec
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		specs = experiments.All()
	} else {
		for _, n := range names {
			s, ok := experiments.Find(n)
			if !ok {
				fmt.Fprintf(os.Stderr, "enokibench: unknown experiment %q (try -list)\n", n)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}

	opts := experiments.Options{Quick: *quick, Parallel: *parallel}
	for i, s := range specs {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		res := s.Run(opts)
		fmt.Print(res.String())
		fmt.Printf("[%s finished in %v]\n", s.Name, time.Since(start).Round(time.Millisecond))
	}
}
