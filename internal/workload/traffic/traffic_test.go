package traffic_test

import (
	"bytes"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/overload"
	"enoki/internal/record"
	"enoki/internal/sched/shinjuku"
	"enoki/internal/schedtest"
	"enoki/internal/sim"
	"enoki/internal/workload/traffic"
)

const (
	policyCFS  = 0
	policyTest = 1
)

func admission() overload.Config {
	return overload.Config{Classes: []overload.ClassConfig{
		{Name: "api", Policy: policyTest, MaxInflight: 96, MaxRetries: 2,
			Backoff: 150 * time.Microsecond, EnterDepth: 60, ExitDepth: 10},
		{Name: "batch", Policy: policyCFS},
	}}
}

func scenario() traffic.Scenario {
	return traffic.Scenario{
		Seed:     42,
		Rate:     400_000,
		Duration: 10 * time.Millisecond,
		Classes: []traffic.Class{
			{Name: "api", Policy: policyTest, Admission: 0, Weight: 0.7,
				Work: 30 * time.Microsecond, Fanout: 2, ReqPerConn: 2, Think: 300 * time.Microsecond},
			{Name: "batch", Policy: policyCFS, Admission: 1, Weight: 0.3,
				Work: 100 * time.Microsecond},
		},
		Regions: []traffic.Region{
			{Name: "us", Share: 0.5},
			{Name: "eu", Share: 0.5, Offset: 5 * time.Millisecond},
		},
		Shapes: []traffic.Shape{
			{Kind: traffic.Flash, Class: 0, At: 4 * time.Millisecond, Dur: 3 * time.Millisecond, Mult: 8},
		},
	}
}

// shardedDrive runs the scenario on the two-socket machine, one driver,
// controller, and record log per NUMA shard. panicAt > 0 arms a
// deterministic module panic on shard 0 after that many picks (the
// module-kill-mid-flash case); killed reports whether it tripped.
func shardedDrive(t *testing.T, sc traffic.Scenario, parallel bool, panicAt int) (traffic.Report, [][]byte, bool) {
	t.Helper()
	m := kernel.Machine80()
	sk := kernel.NewShardedKernel(m, kernel.CostsFor(m), 0)
	defer sk.Close()
	sk.SetParallel(parallel)

	n := sk.NumShards()
	drivers := make([]*traffic.Driver, n)
	adapters := make([]*enokic.Adapter, n)
	bufs := make([]*bytes.Buffer, n)
	recs := make([]*record.Recorder, n)
	for i := 0; i < n; i++ {
		k := sk.ShardKernel(i)
		inj := &schedtest.Injector{}
		if i == 0 && panicAt > 0 {
			inj.PanicSite = core.MsgPickNextTask
			inj.PanicAt = panicAt
		}
		adapters[i] = enokic.Load(k, policyTest, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
			inj.Scheduler = shinjuku.New(env, policyTest, 0)
			return inj
		})
		k.RegisterClass(policyCFS, kernel.NewCFS(k))
		bufs[i] = &bytes.Buffer{}
		recs[i] = record.New(k, bufs[i], policyCFS, record.DefaultCosts())
		adapters[i].SetRecorder(recs[i])
		drivers[i] = traffic.NewDriver(k, sc, traffic.DriverConfig{
			Controller:  overload.New(admission()),
			Adapters:    map[int]*enokic.Adapter{policyTest: adapters[i]},
			Shard:       i,
			Shards:      n,
			SampleEvery: 250 * time.Microsecond,
		})
		drivers[i].Start()
	}
	// The recorder's userspace drain task sleeps and wakes forever until
	// Close, so the rig never goes event-idle: drive to a fixed virtual
	// deadline with drain slack instead (the chaos campaigns' idiom),
	// which is also what keeps serial and parallel drives comparable.
	sk.RunFor(sc.Duration + 40*time.Millisecond)
	logs := make([][]byte, n)
	killed := false
	for i := 0; i < n; i++ {
		recs[i].Close()
		logs[i] = bufs[i].Bytes()
		if adapters[i].Killed() {
			killed = true
		}
	}
	return traffic.Collect(drivers...), logs, killed
}

func TestFlashCrowdShedsAndRecovers(t *testing.T) {
	rep, _, killed := shardedDrive(t, scenario(), false, 0)
	if killed {
		t.Fatal("module killed in a fault-free drive")
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("conservation violations: %v", rep.Violations)
	}
	if rep.Connections < 3000 {
		t.Fatalf("only %d connections generated", rep.Connections)
	}
	n := rep.Admission[0]
	if n.Shed == 0 || n.Dropped == 0 || n.Retried == 0 {
		t.Fatalf("flash crowd never exercised shedding: %+v", n)
	}
	if n.Admitted == 0 {
		t.Fatal("everything shed")
	}
	// Batch is unlimited: never shed.
	if rep.Admission[1].Shed != 0 {
		t.Fatalf("unlimited class shed %d", rep.Admission[1].Shed)
	}
	if !rep.BrownoutEntered {
		t.Fatal("flash crowd never entered brownout")
	}
	if !rep.Recovered || rep.MaxRecovery <= 0 {
		t.Fatalf("brownout never recovered: recovered=%v rec=%v", rep.Recovered, rep.MaxRecovery)
	}
	// Every admitted request completed (drained rig).
	for ci, c := range rep.Classes {
		if c.Requests != c.Completed {
			t.Fatalf("class %d: %d admitted, %d completed", ci, c.Requests, c.Completed)
		}
	}
	if rep.Classes[0].FlashCount == 0 || rep.Classes[0].FlashP99 <= 0 {
		t.Fatal("no flash-window latency measured")
	}
}

func TestShardedSerialParallelIdentical(t *testing.T) {
	ser, serLogs, _ := shardedDrive(t, scenario(), false, 0)
	par, parLogs, _ := shardedDrive(t, scenario(), true, 0)
	if ser.Fingerprint() != par.Fingerprint() {
		t.Fatalf("fingerprint mismatch: serial %x parallel %x", ser.Fingerprint(), par.Fingerprint())
	}
	for i := range serLogs {
		if !bytes.Equal(serLogs[i], parLogs[i]) {
			t.Fatalf("shard %d record logs differ: serial %d bytes, parallel %d bytes",
				i, len(serLogs[i]), len(parLogs[i]))
		}
	}
}

// TestModuleKillMidFlashConservation is the shed-accounting invariant
// under the worst case: the module dies in the middle of the flash crowd
// and every admitted in-flight request must be rehomed to CFS and still
// complete — no leaked inflight slots, no double counts — with serial
// and parallel drives byte-identical, kill included.
func TestModuleKillMidFlashConservation(t *testing.T) {
	const panicAt = 1500 // lands inside the flash window's backlog
	ser, serLogs, killed := shardedDrive(t, scenario(), false, panicAt)
	if !killed {
		t.Fatal("armed panic never tripped the module kill")
	}
	if len(ser.Violations) != 0 {
		t.Fatalf("conservation broke across the kill/rehome: %v", ser.Violations)
	}
	for ci, c := range ser.Classes {
		if c.Requests != c.Completed {
			t.Fatalf("class %d leaked requests across rehome: %d admitted, %d completed",
				ci, c.Requests, c.Completed)
		}
	}
	par, parLogs, pkilled := shardedDrive(t, scenario(), true, panicAt)
	if !pkilled {
		t.Fatal("parallel drive missed the armed panic")
	}
	if ser.Fingerprint() != par.Fingerprint() {
		t.Fatalf("kill drive fingerprints differ: %x vs %x", ser.Fingerprint(), par.Fingerprint())
	}
	for i := range serLogs {
		if !bytes.Equal(serLogs[i], parLogs[i]) {
			t.Fatalf("shard %d record logs differ under module kill", i)
		}
	}
}

// singleDrive runs a scenario on one 8-CPU kernel with CFS only.
func singleDrive(sc traffic.Scenario, oc overload.Config) traffic.Report {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	d := traffic.NewDriver(k, sc, traffic.DriverConfig{Controller: overload.New(oc)})
	d.Start()
	k.RunUntilIdle()
	return traffic.Collect(d)
}

func TestFanoutCompletesOnLastSubrequest(t *testing.T) {
	sc := traffic.Scenario{
		Seed: 7, Rate: 50_000, Duration: 5 * time.Millisecond, DiurnalAmp: -1,
		Classes: []traffic.Class{
			{Name: "fan", Policy: policyCFS, Weight: 1, Work: 40 * time.Microsecond, Fanout: 4},
		},
	}
	rep := singleDrive(sc, overload.Config{Classes: []overload.ClassConfig{{Name: "fan"}}})
	c := rep.Classes[0]
	if c.Requests == 0 || c.Requests != c.Completed {
		t.Fatalf("fanout requests %d completed %d", c.Requests, c.Completed)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if c.P99 <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestChurnStormCollapsesConnections(t *testing.T) {
	base := traffic.Scenario{
		Seed: 11, Rate: 40_000, Duration: 5 * time.Millisecond, DiurnalAmp: -1,
		Classes: []traffic.Class{
			{Name: "kv", Policy: policyCFS, Weight: 1, Work: 10 * time.Microsecond,
				ReqPerConn: 4, Think: 100 * time.Microsecond},
		},
	}
	oc := overload.Config{Classes: []overload.ClassConfig{{Name: "kv"}}}
	calm := singleDrive(base, oc)

	churny := base
	churny.Shapes = []traffic.Shape{{Kind: traffic.Churn, Class: -1, At: 0, Dur: 5 * time.Millisecond, Mult: 1}}
	storm := singleDrive(churny, oc)

	// Same connection arrivals (Mult 1), but churned connections issue a
	// single request instead of 4.
	if calm.Requests < 3*storm.Requests {
		t.Fatalf("churn storm did not collapse request counts: calm %d, storm %d",
			calm.Requests, storm.Requests)
	}
	if storm.Connections == 0 || storm.Requests < storm.Connections {
		t.Fatalf("storm: %d conns, %d reqs", storm.Connections, storm.Requests)
	}
}

func TestDiurnalRegionalOffsets(t *testing.T) {
	sc := traffic.Scenario{
		Duration: 10 * time.Millisecond,
		Classes:  []traffic.Class{{Name: "c", Weight: 1}},
		Regions: []traffic.Region{
			{Name: "us", Share: 0.5},
			{Name: "eu", Share: 0.5, Offset: 5 * time.Millisecond},
		},
	}.WithDefaults()
	// Peak of us (t=2.5ms, sin=1) is the trough of eu (half-period off).
	fUS := sc.Factor(0, 2500*time.Microsecond, sc.Regions[0].Offset)
	fEU := sc.Factor(0, 2500*time.Microsecond, sc.Regions[1].Offset)
	if fUS < 1.35 || fUS > 1.45 {
		t.Fatalf("us peak factor %v, want ~1.4", fUS)
	}
	if fEU > 0.65 || fEU < 0.55 {
		t.Fatalf("eu trough factor %v, want ~0.6", fEU)
	}
}
