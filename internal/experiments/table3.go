package experiments

import (
	"fmt"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/stats"
	"enoki/internal/workload"
)

// Table3Row is one scheduler's pipe latency.
type Table3Row struct {
	Sched   string
	OneCore time.Duration
	TwoCore time.Duration
}

// Table3Result reproduces Table 3: perf bench sched pipe latency per wakeup
// for every scheduler, one- and two-core configurations.
type Table3Result struct {
	Rows     []Table3Row
	Messages int
}

// Name implements the experiment naming convention.
func (r *Table3Result) Name() string { return "table3" }

func (r *Table3Result) String() string {
	t := stats.NewTable("Message Latency (µs)", "One Core", "Two Cores")
	for _, row := range r.Rows {
		t.Row(row.Sched, usNum(row.OneCore), usNum(row.TwoCore))
	}
	return "Table 3: scheduler latency for perf bench sched pipe (µs per wakeup)\n" +
		fmt.Sprintf("messages per run: %d\n", r.Messages) + t.String()
}

func usNum(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// Table3 runs the pipe benchmark across all Table 3 schedulers.
func Table3(o Options) *Table3Result {
	messages := scaleInt(o, 300000, 20000)
	res := &Table3Result{Messages: messages}

	kinds := []Kind{KindCFS, KindGhostSOL, KindGhostFIFO, KindWFQ, KindShinjuku, KindLocality}
	// One cell per (row, core-config); the last row is Arachne, whose
	// ping-pong runs as user threads on the runtime. Cells are independent
	// rigs, so they fan out across parDo workers; lats is index-addressed
	// to keep the table order deterministic.
	lats := make([][2]time.Duration, len(kinds)+1)
	parDo(o, 2*len(lats), func(ci int) {
		row, i := ci/2, ci%2
		if row < len(kinds) {
			r := NewRig(kernel.Machine8(), kinds[row])
			pr := workload.RunPipe(r.K, workload.PipeConfig{
				Policy:   r.Policy,
				Messages: messages,
				SameCore: i == 0,
			})
			lats[row][i] = pr.PerWakeup
		} else {
			cores := i + 1
			r, rt := NewArachneRig(kernel.Machine8(), cores, cores)
			pr := workload.RunArachnePipe(r.K, rt, messages, cores == 2)
			lats[row][i] = pr.PerWakeup
		}
	})
	for row, kind := range kinds {
		res.Rows = append(res.Rows, Table3Row{Sched: kind.String(), OneCore: lats[row][0], TwoCore: lats[row][1]})
	}
	last := lats[len(kinds)]
	res.Rows = append(res.Rows, Table3Row{Sched: "Arachne", OneCore: last[0], TwoCore: last[1]})
	return res
}
