// Fleet chaos: the machine-kill plane. Where the single-kernel campaigns
// sabotage one machine from the inside (module panics, IPI loss, timer
// skew), the fleet campaign sabotages the cluster from the outside: whole
// machines fail-stop mid-run and the control plane must detect each death,
// requeue the lost placements, and finish every job on the survivors. The
// same discipline applies as everywhere else in this package — every kill
// is a seeded draw over virtual time, so a failing fleet run replays
// bit-for-bit from its one-line spec string (`f1:<class>:<seed>:<mask>`),
// and the serial and worker-goroutine fleet drives of one spec must agree
// byte for byte.

package chaos

import (
	"bytes"
	"fmt"
	"time"

	"enoki/internal/cluster"
	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/record"
	"enoki/internal/schedtest/conformance"
)

// Fleet campaign shape: small enough to replay in a test, big enough that
// kills land while jobs are in flight and the survivors still have the
// capacity to finish everything.
const (
	fleetMachines = 10
	fleetJobs     = 60
	fleetBudget   = 60 * time.Millisecond
	// Fixed in the campaign's cluster config (not left to defaults) because
	// the oracle reasons about them: a done report sent just before a kill
	// is still in flight for fleetNetLatency, and the control plane keeps
	// accepting reports for a dead machine until detection fires.
	fleetNetLatency  = 50 * time.Microsecond
	fleetDetectDelay = 500 * time.Microsecond
)

// killSalt separates the kill-schedule stream from the workload stream that
// shares the campaign seed.
const killSalt uint64 = 0xd6e8feb86659fd93

// FleetEvent is one machine-kill fault: machine Machine fail-stops at
// virtual time At (ns). The fleet drops its in-flight messages, the control
// plane notices after its detection delay, and every placement it held is
// requeued.
type FleetEvent struct {
	Machine int
	At      int64
}

func (e FleetEvent) String() string {
	return fmt.Sprintf("%v[m%d@%v]", PlaneMachineKill, e.Machine, time.Duration(e.At))
}

// FleetSchedule is one fleet run's fault plan, the cluster-level analogue of
// Schedule: a class, the seed every draw derives from, the generated kill
// events, and the enable mask a minimizer clears bits in.
type FleetSchedule struct {
	Seed   uint64
	Class  string
	Events []FleetEvent
	Mask   uint64
}

// EnabledAt reports whether kill i survives the mask.
func (s FleetSchedule) EnabledAt(i int) bool { return s.Mask>>uint(i)&1 == 1 }

// Enabled returns the surviving kills, for reporting.
func (s FleetSchedule) Enabled() []FleetEvent {
	out := make([]FleetEvent, 0, len(s.Events))
	for i, ev := range s.Events {
		if s.EnabledAt(i) {
			out = append(out, ev)
		}
	}
	return out
}

// Spec renders the schedule as its replay string. GenerateFleet is a pure
// function of (seed, class), so seed + mask reconstructs the exact kill
// plan: the spec is the whole reproducer.
func (s FleetSchedule) Spec() string {
	return fmt.Sprintf("f1:%s:%x:%x", s.Class, s.Seed, s.Mask)
}

// ParseFleetSpec reconstructs a fleet schedule from a replay spec
// (f1:<class>:<seed hex>:<mask hex>), regenerating the kills from the seed
// and applying the mask.
func ParseFleetSpec(spec string) (FleetSchedule, error) {
	class, seed, mask, err := splitSpec(spec, "f1", "f1:<class>:<seed>:<mask>")
	if err != nil {
		return FleetSchedule{}, err
	}
	if _, ok := caseByName(class); !ok {
		return FleetSchedule{}, &SpecError{Spec: spec, Field: "class",
			Msg: fmt.Sprintf("unknown class %q", class)}
	}
	s := GenerateFleet(seed, class)
	if err := checkMask(spec, mask, s.Mask, len(s.Events)); err != nil {
		return FleetSchedule{}, err
	}
	s.Mask = mask
	return s, nil
}

// GenerateFleet derives a kill schedule from a seed for one scheduler class
// — a pure function, so the seed alone reproduces the plan. It draws one to
// three distinct victims (never a majority, so the survivors always have
// the capacity to finish the workload) with kill times early enough that
// placements are still in flight.
func GenerateFleet(seed uint64, class string) FleetSchedule {
	rng := ktime.NewRand(seed ^ killSalt)
	n := 1 + rng.Intn(3)
	used := make(map[int]bool, n)
	evs := make([]FleetEvent, 0, n)
	for len(evs) < n {
		m := rng.Intn(fleetMachines)
		if used[m] {
			continue
		}
		used[m] = true
		evs = append(evs, FleetEvent{
			Machine: m,
			At:      (int64(1) + int64(rng.Intn(4))) * int64(time.Millisecond),
		})
	}
	return FleetSchedule{Seed: seed, Class: class, Events: evs, Mask: 1<<uint(n) - 1}
}

// FleetOutcome is one fleet campaign's observable result plus the oracle's
// verdict. Logs holds the raw per-(machine, shard) record bytes; a serial
// and a parallel drive of the same spec must match field for field, Logs
// byte for byte.
type FleetOutcome struct {
	Schedule FleetSchedule
	Stats    cluster.Stats
	Jobs     []cluster.Job
	Logs     [][][]byte
	// Violations is the oracle's verdict: empty means the cluster upheld
	// every invariant under the kill plan.
	Violations []string
}

// Failed reports whether the oracle found any invariant breach.
func (r *FleetOutcome) Failed() bool { return len(r.Violations) > 0 }

// FleetCampaign runs one kill schedule against a ten-machine cluster of the
// schedule's class and judges the outcome. Every machine loads the class's
// module above CFS on each shard with a record channel; a seeded job mix is
// submitted up front; each enabled kill fail-stops its machine mid-run.
// Deterministic end to end: same schedule + same parallel flag → same
// FleetOutcome, and the serial/parallel pair must agree byte for byte.
func FleetCampaign(s FleetSchedule, parallel bool) FleetOutcome {
	c, ok := caseByName(s.Class)
	if !ok {
		return FleetOutcome{Schedule: s, Violations: []string{fmt.Sprintf("unknown class %q", s.Class)}}
	}

	bufs := make([][]*bytes.Buffer, fleetMachines)
	recs := make([][]*record.Recorder, fleetMachines)
	policy := conformance.PolicyCFS
	if c.NewModule != nil {
		policy = conformance.PolicyTest
	}
	cl := cluster.New(cluster.Config{
		Machines:        fleetMachines,
		Machine:         kernel.Machine8(),
		Parallel:        parallel,
		Policy:          policy,
		Placer:          &cluster.Pack{PerCPU: 2},
		RebalanceSpread: 3,
		NetLatency:      fleetNetLatency,
		DetectDelay:     fleetDetectDelay,
		Setup: func(mi int, sk *kernel.ShardedKernel) {
			bufs[mi] = make([]*bytes.Buffer, sk.NumShards())
			recs[mi] = make([]*record.Recorder, sk.NumShards())
			for sh := 0; sh < sk.NumShards(); sh++ {
				k := sk.ShardKernel(sh)
				var ad *enokic.Adapter
				if c.NewModule != nil {
					ad = enokic.Load(k, conformance.PolicyTest, enokic.Config{},
						func(env core.Env) core.Scheduler { return c.NewModule(env, k.NumCPUs()) })
				}
				k.RegisterClass(conformance.PolicyCFS, kernel.NewCFS(k))
				if ad != nil {
					bufs[mi][sh] = &bytes.Buffer{}
					recs[mi][sh] = record.New(k, bufs[mi][sh], conformance.PolicyCFS, record.DefaultCosts())
					ad.SetRecorder(recs[mi][sh])
				}
			}
		},
	})
	defer cl.Close()

	rng := ktime.NewRand(s.Seed ^ workloadSalt)
	for i := 0; i < fleetJobs; i++ {
		cl.Submit(cluster.JobSpec{
			Cycles: 2 + rng.Intn(5),
			Run:    time.Duration(80+rng.Intn(250)) * time.Microsecond,
			Sleep:  time.Duration(rng.Intn(2)) * 150 * time.Microsecond,
		})
	}
	for i, ev := range s.Events {
		if s.EnabledAt(i) {
			cl.FailMachine(ev.Machine, time.Duration(ev.At))
		}
	}
	// A fixed virtual budget, not RunUntilIdle: the record drain tasks tick
	// forever, so a recorded cluster never goes idle. The budget is part of
	// the campaign definition — identical in both drives.
	cl.Run(fleetBudget)

	res := FleetOutcome{Schedule: s, Stats: cl.Stats(), Logs: make([][][]byte, fleetMachines)}
	for mi := 0; mi < fleetMachines; mi++ {
		res.Logs[mi] = make([][]byte, len(bufs[mi]))
		for sh := range bufs[mi] {
			if recs[mi][sh] != nil {
				recs[mi][sh].Close()
				res.Logs[mi][sh] = bufs[mi][sh].Bytes()
			}
		}
	}
	for i := 0; i < cl.NumJobs(); i++ {
		res.Jobs = append(res.Jobs, cl.Job(i))
	}
	res.Violations = fleetOracle(&res, cl)
	return res
}

// fleetOracle evaluates the campaign's invariants. As with the single-
// machine oracle, every rule is a property any correct cluster must uphold
// under any kill plan, so the verdict never needs to know what the kills
// "should" have done.
func fleetOracle(r *FleetOutcome, cl *cluster.Cluster) []string {
	var v []string
	add := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	kills := r.Schedule.Enabled()

	// Survivor accounting: exactly the killed machines are dead at the end.
	if want := fleetMachines - len(kills); r.Stats.MachinesAlive != want {
		add("machines alive: %d, want %d (%d kills)", r.Stats.MachinesAlive, want, len(kills))
	}
	// No lost jobs: the survivors always have the capacity (kills are a
	// minority by construction), so every submitted job must finish.
	if r.Stats.Done != r.Stats.Submitted {
		add("lost jobs: %d of %d completed within budget", r.Stats.Done, r.Stats.Submitted)
	}
	// No job may finish on a dead machine. A done report sent just before
	// the kill legitimately lands up to NetLatency later, and the control
	// plane keeps accepting a dead machine's reports until detection fires
	// — anything past that horizon is a stale-report guard failure.
	dead := make(map[int]bool, len(kills))
	for _, ev := range kills {
		dead[ev.Machine] = true
	}
	horizon := int64(fleetDetectDelay + fleetNetLatency)
	for _, j := range r.Jobs {
		if j.State == cluster.JobDone && dead[j.Machine] &&
			int64(j.DoneAt) > killAtFor(kills, j.Machine)+horizon {
			add("job %d reported done on machine %d at %v, past its kill horizon %v",
				j.ID, j.Machine, time.Duration(j.DoneAt),
				time.Duration(killAtFor(kills, j.Machine)+horizon))
		}
	}
	// A dead machine's clock freezes: it can never advance past the fleet's
	// lookahead horizon beyond its kill time.
	for _, ev := range kills {
		if now := int64(cl.Machine(ev.Machine).Sharded().Now()); now >= int64(fleetBudget) {
			add("killed machine %d ran to the end of the budget (now %v, killed at %v)",
				ev.Machine, time.Duration(now), time.Duration(ev.At))
		}
	}
	// The record logs survive whatever the kills did to the fleet.
	for mi, perShard := range r.Logs {
		for sh, l := range perShard {
			if l == nil {
				continue
			}
			if _, err := record.Load(bytes.NewReader(l)); err != nil {
				add("machine %d shard %d record log not decodable: %v", mi, sh, err)
			}
		}
	}
	return v
}

// killAtFor returns machine m's kill time, or a sentinel far past the
// budget when m was never killed.
func killAtFor(kills []FleetEvent, m int) int64 {
	for _, ev := range kills {
		if ev.Machine == m {
			return ev.At
		}
	}
	return int64(fleetBudget) * 2
}
