package rbtree

// CheckInvariants exposes the internal red-black validation to tests.
func (t *Tree[K, V]) CheckInvariants() int { return t.checkInvariants() }
