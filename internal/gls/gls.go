// Package gls provides goroutine-local storage for the replay runtime: each
// replay goroutine is named with the kernel thread id of the message it
// replays (§3.4), and the gating locks read that identity from inside the
// scheduler code, which cannot be changed to pass it explicitly — the whole
// point of replay is running the exact same module code.
//
// The goroutine id is parsed from runtime.Stack, the standard (if inelegant)
// trick; it is only used on replay paths, never in the simulator hot path.
package gls

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

var (
	mu     sync.RWMutex
	values = make(map[uint64]int)
)

// goid returns the current goroutine's id.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Stack header: "goroutine 123 [running]:"
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return 0
	}
	id, _ := strconv.ParseUint(string(fields[1]), 10, 64)
	return id
}

// Set binds v to the current goroutine.
func Set(v int) {
	id := goid()
	mu.Lock()
	values[id] = v
	mu.Unlock()
}

// Get returns the value bound to the current goroutine (0 if none).
func Get() int {
	id := goid()
	mu.RLock()
	v := values[id]
	mu.RUnlock()
	return v
}

// Clear removes the current goroutine's binding.
func Clear() {
	id := goid()
	mu.Lock()
	delete(values, id)
	mu.Unlock()
}
