package overload

import (
	"testing"
	"time"
)

func twoClass(leak bool) *Controller {
	return New(Config{
		LeakShed: leak,
		Classes: []ClassConfig{
			{Name: "api", Policy: 1, MaxInflight: 2, MaxRetries: 2, Backoff: 100 * time.Microsecond, EnterDepth: 8, ExitDepth: 2},
			{Name: "batch", Policy: 0},
		},
	})
}

func TestAdmitShedDropAccounting(t *testing.T) {
	c := twoClass(false)

	// Fill the inflight ceiling.
	for i := 0; i < 2; i++ {
		if v := c.Admit(0, 0); v != Admitted {
			t.Fatalf("admit %d: got %v", i, v)
		}
	}
	// Next offers shed: first two attempts retry, the third drops.
	if v := c.Admit(0, 0); v != Retry {
		t.Fatalf("attempt 0 over ceiling: got %v, want Retry", v)
	}
	if v := c.Admit(0, 1); v != Retry {
		t.Fatalf("attempt 1 over ceiling: got %v, want Retry", v)
	}
	if v := c.Admit(0, 2); v != Dropped {
		t.Fatalf("attempt 2 over ceiling: got %v, want Dropped", v)
	}
	n := c.Counters(0)
	want := Counters{Offered: 5, Admitted: 2, Shed: 3, Retried: 2, Dropped: 1}
	if n != want {
		t.Fatalf("counters %+v, want %+v", n, want)
	}
	if vs := c.CheckConservation(false); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
	// Inflight must balance before the finalInflight check passes.
	if vs := c.CheckConservation(true); len(vs) != 1 {
		t.Fatalf("want 1 inflight violation, got %v", vs)
	}
	c.Done(0)
	c.Done(0)
	if vs := c.CheckConservation(true); len(vs) != 0 {
		t.Fatalf("drained controller still violating: %v", vs)
	}

	// Unlimited class never sheds.
	for i := 0; i < 100; i++ {
		if v := c.Admit(1, 0); v != Admitted {
			t.Fatalf("unlimited class shed at %d: %v", i, v)
		}
	}
}

func TestLeakShedBreaksConservation(t *testing.T) {
	c := twoClass(true)
	for i := 0; i < 2; i++ {
		c.Admit(0, 0)
	}
	if v := c.Admit(0, 99); v != Dropped {
		t.Fatalf("want Dropped, got %v", v)
	}
	vs := c.CheckConservation(false)
	if len(vs) != 1 {
		t.Fatalf("seeded LeakShed bug not caught: violations %v", vs)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	c := twoClass(false)
	base := 100 * time.Microsecond
	if d := c.Backoff(0, 0); d != base {
		t.Fatalf("attempt 0 backoff %v, want %v", d, base)
	}
	if d := c.Backoff(0, 3); d != base<<3 {
		t.Fatalf("attempt 3 backoff %v, want %v", d, base<<3)
	}
	if d := c.Backoff(0, 40); d != base<<6 {
		t.Fatalf("attempt 40 backoff %v, want cap %v", d, base<<6)
	}
	// Zero base must not loop or grow.
	z := New(Config{Classes: []ClassConfig{{Name: "z"}}})
	if d := z.Backoff(0, 10); d != 0 {
		t.Fatalf("zero-base backoff %v, want 0", d)
	}
}

func TestBrownoutHysteresis(t *testing.T) {
	c := twoClass(false)

	// Below EnterDepth: no transition.
	if c.Sample(0, 7, 10) {
		t.Fatal("sample below EnterDepth flipped state")
	}
	// At EnterDepth: enter.
	if !c.Sample(0, 8, 20) || !c.Degraded(0) {
		t.Fatal("sample at EnterDepth did not enter brownout")
	}
	// Between thresholds: hold (hysteresis).
	if c.Sample(0, 5, 30) || !c.Degraded(0) {
		t.Fatal("mid-band sample should hold the degraded state")
	}
	// At ExitDepth: exit.
	if !c.Sample(0, 2, 40) || c.Degraded(0) {
		t.Fatal("sample at ExitDepth did not exit brownout")
	}
	// Disabled class (EnterDepth 0) never transitions.
	if c.Sample(1, 1000, 50) {
		t.Fatal("brownout-disabled class transitioned")
	}

	wantTr := []Transition{{Class: 0, At: 20, Enter: true}, {Class: 0, At: 40, Enter: false}}
	tr := c.Transitions()
	if len(tr) != len(wantTr) || tr[0] != wantTr[0] || tr[1] != wantTr[1] {
		t.Fatalf("transitions %+v, want %+v", tr, wantTr)
	}
	if rec, ok := c.Recovery(0); !ok || rec != 20 {
		t.Fatalf("recovery = %v, %v; want 20ns, true", rec, ok)
	}
	n := c.Counters(0)
	if n.BrownoutEnters != 1 || n.BrownoutExits != 1 {
		t.Fatalf("brownout counters %+v", n)
	}
}

func TestRecoveryIncompleteEpisode(t *testing.T) {
	c := twoClass(false)
	c.Sample(0, 100, 5)
	if _, ok := c.Recovery(0); ok {
		t.Fatal("open brownout episode reported a recovery time")
	}
}

func TestHysteresisConfigValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExitDepth > EnterDepth must panic")
		}
	}()
	New(Config{Classes: []ClassConfig{{Name: "bad", EnterDepth: 2, ExitDepth: 5}}})
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Offered: 1, Admitted: 1, BrownoutEnters: 2}
	b := Counters{Offered: 2, Shed: 2, Retried: 1, Dropped: 1, BrownoutExits: 1}
	got := a.Add(b)
	want := Counters{Offered: 3, Admitted: 1, Shed: 2, Retried: 1, Dropped: 1, BrownoutEnters: 2, BrownoutExits: 1}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}

func TestVerdictString(t *testing.T) {
	if Admitted.String() != "admitted" || Retry.String() != "retry" || Dropped.String() != "dropped" {
		t.Fatal("verdict strings drifted")
	}
	if Verdict(9).String() != "Verdict(9)" {
		t.Fatal("unknown verdict string")
	}
}

// TestAdmitZeroAlloc is the hot-path allocation ratchet the CI overload
// job runs: the admission check must never allocate, shed or not.
func TestAdmitZeroAlloc(t *testing.T) {
	c := New(Config{Classes: []ClassConfig{
		{Name: "hot", MaxInflight: 1, MaxRetries: 1, Backoff: time.Microsecond},
	}})
	if n := testing.AllocsPerRun(1000, func() {
		if c.Admit(0, 0) == Admitted { // admit path
			c.Done(0)
		}
		c.Admit(0, 0) // fill the slot
		c.Admit(0, 0) // shed→retry path
		c.Admit(0, 9) // shed→drop path
		c.Done(0)
		c.Backoff(0, 3)
	}); n != 0 {
		t.Fatalf("Admit hot path allocates %.1f allocs/op, want 0", n)
	}
}
