package kernel

import "time"

// RT is the simulated SCHED_FIFO/SCHED_RR real-time class — the second of
// Linux's three mainline schedulers (§2). It exists for substrate
// completeness and for experiments that need a strictly-higher-priority
// class above CFS: fixed priorities 0..99 (higher wins), FIFO within a
// priority, optional round-robin slice, strict preemption of lower
// priorities.
type RT struct {
	k *Kernel
	// queues[cpu] is ordered by priority (descending), FIFO within.
	queues  [][]*rtEntity
	curr    []*rtEntity
	rrSlice time.Duration
	picked  []time.Duration // curr's SumExec at pick, for RR
}

type rtEntity struct {
	t    *Task
	prio int
	rr   bool
}

var _ Class = (*RT)(nil)

// NewRT builds the real-time class. rrSlice is the SCHED_RR quantum
// (Linux's default is 100ms); SCHED_FIFO tasks ignore it.
func NewRT(k *Kernel, rrSlice time.Duration) *RT {
	if rrSlice <= 0 {
		rrSlice = 100 * time.Millisecond
	}
	r := &RT{k: k, rrSlice: rrSlice}
	for i := 0; i < k.NumCPUs(); i++ {
		r.queues = append(r.queues, nil)
	}
	r.curr = make([]*rtEntity, k.NumCPUs())
	r.picked = make([]time.Duration, k.NumCPUs())
	return r
}

// RTParams configures a task's real-time priority through UserData-free
// plumbing: attach with SetRTParams after spawn (before it matters).
type RTParams struct {
	// Prio is the real-time priority, 0..99; higher runs first.
	Prio int
	// RoundRobin selects SCHED_RR semantics (sliced among equals).
	RoundRobin bool
}

// SetRTParams sets a task's RT priority; call before or after spawn into
// the RT class (a queued task is repositioned).
func (r *RT) SetRTParams(t *Task, p RTParams) {
	e := r.ent(t)
	if e == nil {
		return
	}
	e.prio = p.Prio
	e.rr = p.RoundRobin
	// Reposition if queued.
	cpu := t.CPU()
	for i, q := range r.queues[cpu] {
		if q == e {
			r.queues[cpu] = append(r.queues[cpu][:i], r.queues[cpu][i+1:]...)
			r.insert(cpu, e)
			break
		}
	}
}

func (r *RT) ent(t *Task) *rtEntity {
	e, _ := t.classData.(*rtEntity)
	return e
}

// insert places e behind equal-priority peers (FIFO within priority).
func (r *RT) insert(cpu int, e *rtEntity) {
	q := r.queues[cpu]
	pos := len(q)
	for i, o := range q {
		if o.prio < e.prio {
			pos = i
			break
		}
	}
	q = append(q, nil)
	copy(q[pos+1:], q[pos:])
	q[pos] = e
	r.queues[cpu] = q
}

// Name implements Class.
func (r *RT) Name() string { return "RT" }

// OverheadPerCall implements Class.
func (r *RT) OverheadPerCall() time.Duration { return 0 }

// TaskNew implements Class.
func (r *RT) TaskNew(t *Task) { t.classData = &rtEntity{t: t} }

// TaskDead implements Class.
func (r *RT) TaskDead(t *Task) { t.classData = nil }

// Detach implements Class.
func (r *RT) Detach(t *Task) { t.classData = nil }

// Enqueue implements Class.
func (r *RT) Enqueue(cpu int, t *Task, wakeup bool) { r.insert(cpu, r.ent(t)) }

// Dequeue implements Class.
func (r *RT) Dequeue(cpu int, t *Task, sleep bool) {
	e := r.ent(t)
	if r.curr[cpu] == e {
		r.curr[cpu] = nil
		return
	}
	for i, o := range r.queues[cpu] {
		if o == e {
			r.queues[cpu] = append(r.queues[cpu][:i], r.queues[cpu][i+1:]...)
			return
		}
	}
}

// Yield implements Class: behind equals.
func (r *RT) Yield(cpu int, t *Task) { r.PutPrev(cpu, t, false) }

// PutPrev implements Class.
func (r *RT) PutPrev(cpu int, t *Task, preempted bool) {
	e := r.ent(t)
	if r.curr[cpu] == e {
		r.curr[cpu] = nil
	}
	r.insert(cpu, e)
}

// PickNext implements Class.
func (r *RT) PickNext(cpu int) *Task {
	q := r.queues[cpu]
	if len(q) == 0 {
		return nil
	}
	e := q[0]
	r.queues[cpu] = q[1:]
	r.curr[cpu] = e
	r.picked[cpu] = e.t.SumExec()
	return e.t
}

// Tick implements Class: SCHED_RR slice expiry among equal priorities.
func (r *RT) Tick(cpu int, t *Task) {
	e := r.curr[cpu]
	if e == nil || !e.rr || len(r.queues[cpu]) == 0 {
		return
	}
	if r.queues[cpu][0].prio != e.prio {
		return
	}
	if t.SumExec()-r.picked[cpu] >= r.rrSlice {
		r.k.Resched(cpu)
	}
}

// SelectRQ implements Class: previous CPU unless forbidden, else the first
// allowed (RT placement in Linux is mostly push/pull; keep it simple).
func (r *RT) SelectRQ(t *Task, prevCPU int, wakeup bool) int {
	if t.allowed.has(prevCPU) {
		return prevCPU
	}
	for _, c := range t.Allowed().List() {
		return c
	}
	return prevCPU
}

// CheckPreempt implements Class: strictly higher priority preempts.
func (r *RT) CheckPreempt(cpu int, t *Task) {
	curr := r.curr[cpu]
	if curr == nil {
		return
	}
	if r.ent(t).prio > curr.prio {
		r.k.Resched(cpu)
	}
}

// Balance implements Class: RT does not load-balance here.
func (r *RT) Balance(cpu int) {}

// Migrate implements Class.
func (r *RT) Migrate(t *Task, src, dst int) {}

// PrioChanged implements Class (nice does not affect RT priorities).
func (r *RT) PrioChanged(t *Task) {}

// AffinityChanged implements Class.
func (r *RT) AffinityChanged(t *Task) {}

// NRunnable implements Class.
func (r *RT) NRunnable(cpu int) int { return len(r.queues[cpu]) }
