// Overload benchmark: the internet-scale traffic-plane artifact. An
// open-loop scenario fires 1M+ simulated connections — diurnal curve with
// regional offsets, a flash crowd, an antagonist tenant, and a churn
// storm — at one sharded machine running shinjuku behind the admission
// plane, twice (serial and parallel drives, fingerprint-compared). The
// artifact's SLO verdicts are the overload-control story: flash-crowd p99
// stays bounded because shedding and brownout cap the backlog, victims
// stay fair under the antagonist, the shed rate stays under its ceiling
// with the conservation books balanced, and every brownout episode
// recovers. A pinned `t1:` chaos replay with the LeakShed bug planted
// proves the oracle catches broken shed accounting and ddmin shrinks the
// reproducer.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"enoki/internal/chaos"
	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/overload"
	"enoki/internal/sched/shinjuku"
	"enoki/internal/workload/traffic"
)

// overloadPolicy is the scheduler class the service tier runs on (CFS
// stays at 0 for the background tiers).
const overloadPolicy = 1

// overloadReplaySpec is the pinned traffic-plane schedule the replay
// verdict runs with the LeakShed bug planted. Pinned, not drawn at bench
// time, so the artifact names a reproducer anyone can run:
//
//	enoki-chaos -replay t1:shinjuku:2a:3 -leakshed
const overloadReplaySpec = "t1:shinjuku:2a:3"

// OverloadReplay is the seeded-bug verdict: the pinned spec must fail
// conservation with LeakShed planted, shrink under ddmin, and pass clean.
type OverloadReplay struct {
	Spec         string `json:"spec"`
	Minimized    string `json:"minimized"`
	Violation    string `json:"violation"`
	EventsBefore int    `json:"events_before"`
	EventsAfter  int    `json:"events_after"`
	CleanPass    bool   `json:"clean_pass"`
	Caught       bool   `json:"caught"`
}

// OverloadBenchResult is the overload section of BENCH_cluster.json.
type OverloadBenchResult struct {
	MachineCPUs int `json:"machine_cpus"`
	Shards      int `json:"shards"`

	Connections uint64 `json:"connections"`
	Requests    uint64 `json:"requests"`
	Offered     uint64 `json:"offered"`
	Admitted    uint64 `json:"admitted"`
	Shed        uint64 `json:"shed"`
	Retried     uint64 `json:"retried"`
	Dropped     uint64 `json:"dropped"`

	VirtualMS      float64 `json:"virtual_ms"`
	WallSerialMS   float64 `json:"wall_serial_ms"`
	WallParallelMS float64 `json:"wall_parallel_ms"`

	BaseP99US      float64 `json:"base_p99_us"`
	FlashP99US     float64 `json:"flash_p99_us"`
	Fairness       float64 `json:"fairness_jain"`
	ShedRate       float64 `json:"shed_rate"`
	BrownoutEnters uint64  `json:"brownout_enters"`
	MaxRecoveryUS  float64 `json:"max_recovery_us"`

	FingerprintSerial   string `json:"fingerprint_serial"`
	FingerprintParallel string `json:"fingerprint_parallel"`
	GOMAXPROCS          int    `json:"gomaxprocs"`

	Replay OverloadReplay `json:"replay"`

	SLOs []FleetSLO `json:"slos"`
	Pass bool       `json:"pass"`
}

// overloadScenario sizes the traffic plan to the machine — the per-CPU
// arrival rate is fixed, so the 80-CPU headline fires over a million
// connections and the 8-CPU CI smoke exercises identical dynamics at a
// tenth the volume. Baseline utilization sits near 60% (internet front
// doors are provisioned for the diurnal peak, not the flash), so overload
// is confined to the shape windows: a high-volume tiny-work edge tier
// carries the connection-count headline, the shinjuku api tier is the
// flash-crowd target and browns out, and the antagonist tenant crowds
// both victims mid-curve.
func overloadScenario(m kernel.Machine) traffic.Scenario {
	const dur = 200 * time.Millisecond
	rate := 70_000 * float64(m.NumCPUs)
	return traffic.Scenario{
		Seed:     42,
		Rate:     rate,
		Duration: dur,
		// Regions partition across shards, so each shard's front door sees
		// its own region's diurnal extreme with no cross-region smoothing;
		// 0.3 amplitude keeps a peak region within provisioning so overload
		// comes from the shape windows, not the time of day.
		DiurnalAmp: 0.3,
		Classes: []traffic.Class{
			{Name: "edge", Policy: 0, Admission: 0, Weight: 0.85,
				Work: 2 * time.Microsecond, ReqPerConn: 2, Think: 500 * time.Microsecond},
			{Name: "api", Policy: overloadPolicy, Admission: 1, Weight: 0.10,
				Work: 20 * time.Microsecond, Fanout: 2, ReqPerConn: 2, Think: 300 * time.Microsecond},
			{Name: "antag", Policy: 0, Admission: 2, Weight: 0.05,
				Work: 20 * time.Microsecond},
		},
		Regions: []traffic.Region{
			{Name: "us", Share: 0.5},
			{Name: "eu", Share: 0.5, Offset: dur / 2},
		},
		Shapes: []traffic.Shape{
			{Kind: traffic.Antagonist, Class: 2, At: dur / 10, Dur: dur / 4, Mult: 3},
			{Kind: traffic.Flash, Class: 1, At: dur * 11 / 20, Dur: dur / 5, Mult: 6},
			{Kind: traffic.Churn, Class: 0, At: dur * 43 / 50, Dur: dur * 3 / 25, Mult: 1},
		},
	}
}

// overloadAdmission is the bench's admission plan: the service tier sheds
// and browns out, the edge tier sheds without brownout, the antagonist is
// deliberately unlimited — containment comes from the victims' admission,
// the way a real multi-tenant front door can't throttle a tenant that is
// merely popular. Budgets scale with the shard's CPU count (arrival rates
// scale with the machine, so a fixed inflight cap would turn admission —
// not CPU capacity — into the bottleneck on bigger machines).
func overloadAdmission(m kernel.Machine) overload.Config {
	cpus := m.NumCPUs
	if m.NumNodes > 1 {
		cpus /= m.NumNodes
	}
	return overload.Config{Classes: []overload.ClassConfig{
		{Name: "edge", Policy: 0, MaxInflight: 64 * cpus, MaxRetries: 1,
			Backoff: 300 * time.Microsecond},
		{Name: "api", Policy: overloadPolicy, MaxInflight: 12 * cpus, MaxRetries: 2,
			Backoff: 150 * time.Microsecond, EnterDepth: 5 * cpus, ExitDepth: cpus},
		{Name: "antag", Policy: 0},
	}}
}

// overloadDrive runs the scenario once on a sharded kernel, one driver and
// controller per NUMA shard, shinjuku behind the admission plane.
func overloadDrive(m kernel.Machine, sc traffic.Scenario, parallel bool) (traffic.Report, time.Duration) {
	sk := kernel.NewShardedKernel(m, kernel.CostsFor(m), 0)
	defer sk.Close()
	sk.SetParallel(parallel)
	n := sk.NumShards()
	drivers := make([]*traffic.Driver, n)
	for i := 0; i < n; i++ {
		k := sk.ShardKernel(i)
		a := enokic.Load(k, overloadPolicy, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
			return shinjuku.New(env, overloadPolicy, 0)
		})
		k.RegisterClass(0, kernel.NewCFS(k))
		drivers[i] = traffic.NewDriver(k, sc, traffic.DriverConfig{
			Controller:  overload.New(overloadAdmission(m)),
			Adapters:    map[int]*enokic.Adapter{overloadPolicy: a},
			Shard:       i,
			Shards:      n,
			SampleEvery: 250 * time.Microsecond,
		})
		drivers[i].Start()
	}
	start := time.Now()
	sk.RunFor(sc.Duration + 40*time.Millisecond)
	wall := time.Since(start)
	return traffic.Collect(drivers...), wall
}

// overloadReplayVerdict runs the pinned LeakShed replay: fail with the bug
// planted, shrink, pass clean.
func overloadReplayVerdict() OverloadReplay {
	rep := OverloadReplay{Spec: overloadReplaySpec}
	s, err := chaos.ParseTrafficSpec(overloadReplaySpec)
	if err != nil {
		rep.Violation = fmt.Sprintf("pinned spec does not parse: %v", err)
		return rep
	}
	rc := chaos.TrafficRunConfig{LeakShed: true}
	res := chaos.RunTraffic(s, rc)
	for _, v := range res.Violations {
		if strings.Contains(v, "conservation") {
			rep.Caught = true
			rep.Violation = v
			break
		}
	}
	if !rep.Caught {
		return rep
	}
	min, _ := chaos.MinimizeTraffic(s, rc)
	rep.Minimized = min.Spec()
	rep.EventsBefore = s.EnabledCount()
	rep.EventsAfter = min.EnabledCount()
	clean := chaos.RunTraffic(min, chaos.TrafficRunConfig{})
	rep.CleanPass = !clean.Failed()
	return rep
}

// RunOverload runs the overload benchmark on the given machine template,
// serial and parallel, and assembles the verdicts.
func RunOverload(m kernel.Machine) *OverloadBenchResult {
	sc := overloadScenario(m)
	serial, wallSerial := overloadDrive(m, sc, false)
	par, wallPar := overloadDrive(m, sc, true)

	api := serial.Classes[1]
	total := serial.Total
	r := &OverloadBenchResult{
		MachineCPUs: m.NumCPUs, Shards: m.NumNodes,
		Connections: serial.Connections, Requests: serial.Requests,
		Offered: total.Offered, Admitted: total.Admitted, Shed: total.Shed,
		Retried: total.Retried, Dropped: total.Dropped,
		VirtualMS:           float64(sc.Duration+40*time.Millisecond) / float64(time.Millisecond),
		WallSerialMS:        float64(wallSerial) / float64(time.Millisecond),
		WallParallelMS:      float64(wallPar) / float64(time.Millisecond),
		BaseP99US:           float64(api.P99) / float64(time.Microsecond),
		FlashP99US:          float64(api.FlashP99) / float64(time.Microsecond),
		Fairness:            serial.Fairness(sc.AntagonistClass()),
		ShedRate:            serial.ShedRate(),
		BrownoutEnters:      total.BrownoutEnters,
		MaxRecoveryUS:       float64(serial.MaxRecovery) / float64(time.Microsecond),
		FingerprintSerial:   fmt.Sprintf("%016x", serial.Fingerprint()),
		FingerprintParallel: fmt.Sprintf("%016x", par.Fingerprint()),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Replay:              overloadReplayVerdict(),
	}
	slo := func(name, target, measured string, pass bool) {
		r.SLOs = append(r.SLOs, FleetSLO{Name: name, Target: target, Measured: measured, Pass: pass})
	}
	connFloor := uint64(m.NumCPUs) * 12_500
	slo("scale", fmt.Sprintf("at least %d connections offered", connFloor),
		fmt.Sprintf("%d connections, %d requests", r.Connections, r.Requests),
		r.Connections >= connFloor)
	slo("flash_crowd_p99", "service p99 inside the flash window under 2ms (shedding caps the backlog)",
		fmt.Sprintf("%.0fµs flash vs %.0fµs baseline, %d flash completions",
			r.FlashP99US, r.BaseP99US, api.FlashCount),
		api.FlashCount > 0 && api.FlashP99 < 2*time.Millisecond)
	slo("antagonist_fairness", "Jain index over victim tiers at least 0.8 inside the antagonist window",
		fmt.Sprintf("%.3f", r.Fairness), r.Fairness >= 0.8)
	// The ceiling is calibrated to the scenario: a ×6 flash crowd on the
	// service tier plus an antagonist storm must shed to survive, but even
	// so at most 40% of unique requests may shed — more means admission is
	// the bottleneck (or the books are broken), not the overload windows.
	slo("shed_ceiling", "shed rate at most 0.40 with the conservation books balanced",
		fmt.Sprintf("%.3f shed rate, %d violations", r.ShedRate, len(serial.Violations)),
		r.ShedRate <= 0.40 && len(serial.Violations) == 0)
	// A brownout episode rightly spans the overload that caused it, so the
	// recovery bound is the flash window plus 10ms of post-overload drain:
	// degradation must lift promptly once the crowd is gone, not linger.
	recoveryBound := sc.Duration/5 + 10*time.Millisecond
	slo("brownout_recovery",
		fmt.Sprintf("every brownout episode recovers; the slowest exits within %v of entry (flash window + 10ms drain)", recoveryBound),
		fmt.Sprintf("%d enters, recovered=%v, slowest %.0fµs",
			r.BrownoutEnters, serial.Recovered, r.MaxRecoveryUS),
		r.BrownoutEnters > 0 && serial.Recovered && serial.MaxRecovery <= recoveryBound)
	slo("determinism", "serial and parallel drives fingerprint identically",
		fmt.Sprintf("%s vs %s", r.FingerprintSerial, r.FingerprintParallel),
		serial.Fingerprint() == par.Fingerprint())
	slo("replay", "pinned LeakShed replay caught by the conservation oracle, ddmin-shrunk, clean without the bug",
		fmt.Sprintf("%s: caught=%v, %d→%d events, clean_pass=%v",
			r.Replay.Spec, r.Replay.Caught, r.Replay.EventsBefore, r.Replay.EventsAfter, r.Replay.CleanPass),
		r.Replay.Caught && r.Replay.CleanPass && r.Replay.EventsAfter <= r.Replay.EventsBefore)
	r.Pass = true
	for _, s := range r.SLOs {
		r.Pass = r.Pass && s.Pass
	}
	return r
}

// WriteOverloadJSON runs everything WriteRolloutJSON runs plus the
// traffic-plane overload benchmark and writes the combined
// BENCH_cluster.json document to path. This is the superset that
// regenerates the committed artifact.
func WriteOverloadJSON(path string, m kernel.Machine) (*ClusterOutput, error) {
	out := RunCluster()
	out.Fleet = RunFleet(m)
	out.Rollout = RunRollout(m)
	out.Overload = RunOverload(m)
	return writeClusterDoc(path, out)
}
