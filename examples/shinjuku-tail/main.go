// Shinjuku tail latency: a specialized research scheduler as a loadable
// module (§4.2.2, §5.4).
//
// A dispersive load — 99.5% short 4µs requests, 0.5% long 10ms requests —
// is served by 50 workers on five cores. Under CFS, long requests hold
// cores for a full CFS slice and short requests queue behind them. The
// Enoki Shinjuku module preempts at a 10µs quantum, so the short requests'
// tail collapses. This regenerates the Fig 2a contrast at one load point.
//
//	go run ./examples/shinjuku-tail
package main

import (
	"fmt"
	"sort"
	"time"

	"enoki"
)

const (
	policyCFS  = 0
	policyShin = 1
)

type request struct {
	arrival enoki.Time
	service time.Duration
}

func serve(useShinjuku bool) (p50, p99 time.Duration) {
	sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine8()))
	k := sys.Kernel()
	workerPolicy := policyCFS
	if useShinjuku {
		sys.MustAttach(policyShin, enoki.GoModule(
			func(env enoki.Env) enoki.Scheduler {
				return enoki.NewShinjukuScheduler(env, policyShin, 10*time.Microsecond)
			}))
		workerPolicy = policyShin
	}
	sys.RegisterCFS(policyCFS)

	var cores enoki.CPUMask
	for _, c := range []int{3, 4, 5, 6, 7} {
		cores.Set(c)
	}

	var queue []request
	var workers []*enoki.Task
	var lats []time.Duration
	warmEnd := k.Now().Add(200 * time.Millisecond)
	for i := 0; i < 50; i++ {
		var current *request
		workers = append(workers, k.Spawn("worker", workerPolicy, enoki.BehaviorFunc(
			func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
				if current != nil {
					if k.Now().After(warmEnd) {
						lats = append(lats, time.Duration(k.Now()-current.arrival))
					}
					current = nil
				}
				if len(queue) == 0 {
					return enoki.Action{Op: enoki.OpBlock,
						Recheck: func() bool { return len(queue) > 0 }}
				}
				req := queue[0]
				queue = queue[1:]
				current = &req
				return enoki.Action{Run: req.service, Op: enoki.OpContinue}
				// nice -20, as the paper runs RocksDB: for CFS it
				// compresses vruntime so wakeup preemption stops
				// rescuing short requests (§5.4's ~750µs slices).
			}), enoki.WithAffinity(cores), enoki.WithNice(-20)))
	}

	// Open-loop Poisson arrivals at 55k req/s; the first 200ms warm up.
	rng := enoki.NewRand(7)
	end := k.Now().Add(time.Second)
	var arrive func()
	arrive = func() {
		if k.Now().After(end) {
			return
		}
		svc := 4 * time.Microsecond
		if rng.Bernoulli(0.005) {
			svc = 10 * time.Millisecond
		}
		queue = append(queue, request{arrival: k.Now(), service: svc})
		for _, w := range workers {
			if w.State() == enoki.StateBlocked {
				k.Wake(w)
				break
			}
		}
		sys.Engine().After(rng.ExpDuration(time.Second/55000), arrive)
	}
	sys.Engine().After(0, arrive)
	k.RunFor(1200 * time.Millisecond)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2], lats[len(lats)*99/100]
}

func main() {
	c50, c99 := serve(false)
	s50, s99 := serve(true)
	fmt.Println("RocksDB-style dispersive load, 55k req/s, 50 workers on 5 cores:")
	fmt.Printf("  CFS:             p50 %8v   p99 %10v\n", c50, c99)
	fmt.Printf("  Enoki-Shinjuku:  p50 %8v   p99 %10v\n", s50, s99)
	fmt.Printf("10µs preemption cuts the tail by %.0fx\n", float64(c99)/float64(s99))
}
