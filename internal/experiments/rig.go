// Package experiments contains one harness per table and figure in the
// paper's evaluation (§5). Each harness builds a fresh simulated machine,
// registers the schedulers under test, runs the workload model, and renders
// a paper-style table; DESIGN.md §3 maps every experiment id to its modules
// and bench target.
package experiments

import (
	"time"

	"enoki"
	"enoki/internal/arachne"
	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/ghost"
	"enoki/internal/kernel"
	"enoki/internal/metrics"
	"enoki/internal/sched/arbiter"
	"enoki/internal/sched/fifo"
	"enoki/internal/sched/locality"
	"enoki/internal/sched/shinjuku"
	"enoki/internal/sched/wfq"
	"enoki/internal/trace"
)

// Scheduler policy numbers used across all experiments.
const (
	PolicyCFS   = 0
	PolicyEnoki = 1
	PolicyGhost = 2
)

// Kind names a scheduler configuration under test.
type Kind int

// Scheduler configurations.
const (
	KindCFS Kind = iota
	KindFIFO
	KindWFQ
	KindShinjuku
	KindLocality
	KindArbiter
	KindGhostFIFO
	KindGhostSOL
	KindGhostShinjuku
)

func (k Kind) String() string {
	switch k {
	case KindCFS:
		return "CFS"
	case KindFIFO:
		return "FIFO"
	case KindWFQ:
		return "WFQ"
	case KindShinjuku:
		return "Shinjuku"
	case KindLocality:
		return "Locality"
	case KindArbiter:
		return "Arachne"
	case KindGhostFIFO:
		return "GhOSt FIFO"
	case KindGhostSOL:
		return "GhOSt SOL"
	case KindGhostShinjuku:
		return "ghOSt-Shinjuku"
	default:
		return "?"
	}
}

// Rig is one simulated machine with schedulers registered.
type Rig struct {
	Sys     *enoki.System
	K       *kernel.Kernel
	Kind    Kind
	Adapter *enokic.Adapter
	Ghost   *ghost.Ghost
	// Policy is the class workload tasks should spawn into.
	Policy int
	// AgentCPU is the ghOSt SOL dedicated core (-1 otherwise).
	AgentCPU int
}

// callOverhead is the per-invocation framework cost of each Enoki module;
// it varies slightly with policy complexity, within the paper's 100-150 ns
// band.
func callOverhead(kind Kind) time.Duration {
	switch kind {
	case KindFIFO:
		return 105 * time.Nanosecond
	case KindWFQ, KindShinjuku:
		return 130 * time.Nanosecond
	case KindArbiter:
		return 115 * time.Nanosecond
	default:
		return 110 * time.Nanosecond
	}
}

// NewRig builds a machine running the given scheduler kind, assembled
// through the public enoki.System constructor. Enoki and ghOSt classes
// register above CFS, matching the experiments' priority setup; CFS is
// always present for background/batch work.
func NewRig(m kernel.Machine, kind Kind) *Rig {
	cfg := enokic.DefaultConfig()
	cfg.CallOverhead = callOverhead(kind)
	sys := enoki.NewSystem(enoki.WithMachine(m), enoki.WithConfig(cfg))
	k := sys.Kernel()
	r := &Rig{Sys: sys, K: k, Kind: kind, Policy: PolicyCFS, AgentCPU: -1}

	load := func(f func(core.Env) core.Scheduler) {
		r.Adapter = sys.MustAttach(PolicyEnoki, enoki.GoModule(func(env enoki.Env) enoki.Scheduler { return f(env) }))
		r.Policy = PolicyEnoki
	}

	switch kind {
	case KindCFS:
		// CFS only.
	case KindFIFO:
		load(func(env core.Env) core.Scheduler { return fifo.New(env, PolicyEnoki) })
	case KindWFQ:
		load(func(env core.Env) core.Scheduler { return wfq.New(env, PolicyEnoki) })
	case KindShinjuku:
		load(func(env core.Env) core.Scheduler {
			return shinjuku.New(env, PolicyEnoki, shinjuku.DefaultSlice)
		})
	case KindLocality:
		load(func(env core.Env) core.Scheduler { return locality.New(env, PolicyEnoki) })
	case KindArbiter:
		managed := make([]int, 0, m.NumCPUs-1)
		for c := 1; c < m.NumCPUs; c++ {
			managed = append(managed, c)
		}
		load(func(env core.Env) core.Scheduler {
			return arbiter.New(env, PolicyEnoki, managed)
		})
	case KindGhostFIFO:
		r.Ghost = ghost.New(k, ghost.ModePerCPU, ghost.NewFIFOPolicy(), -1, ghost.DefaultCosts())
		sys.MustAttach(PolicyGhost, enoki.BuiltinClass(r.Ghost))
		r.Policy = PolicyGhost
	case KindGhostSOL:
		r.AgentCPU = 2
		r.Ghost = ghost.New(k, ghost.ModeSOL, ghost.NewSOLPolicy(), r.AgentCPU, ghost.DefaultCosts())
		sys.MustAttach(PolicyGhost, enoki.BuiltinClass(r.Ghost))
		r.Policy = PolicyGhost
	case KindGhostShinjuku:
		r.AgentCPU = 2
		r.Ghost = ghost.New(k, ghost.ModeSOL, ghost.NewShinjukuPolicy(10*time.Microsecond),
			r.AgentCPU, ghost.DefaultCosts())
		sys.MustAttach(PolicyGhost, enoki.BuiltinClass(r.Ghost))
		r.Policy = PolicyGhost
	}
	sys.RegisterCFS(PolicyCFS)
	if r.Ghost != nil {
		r.Ghost.Start(PolicyGhost)
	}
	return r
}

// Observe installs a shared tracer (ring capacity events) and metric set on
// the rig's kernel and, when an Enoki module is loaded, on its adapter — one
// interleaved timeline and one histogram set covering kernel decisions and
// framework crossings alike. Call before running the workload.
func (r *Rig) Observe(capacity int) (*trace.Tracer, *metrics.Set) {
	tr := trace.New(capacity)
	ms := metrics.NewSet(r.K.NumCPUs())
	r.K.SetTracer(tr)
	r.K.SetMetrics(ms)
	if r.Adapter != nil {
		r.Adapter.SetTracer(tr)
		r.Adapter.SetMetrics(ms)
	}
	return tr, ms
}

// NewArachneRig builds an Enoki-Arachne machine: arbiter module plus an
// attached two-level runtime with maxCores activations.
func NewArachneRig(m kernel.Machine, minCores, maxCores int) (*Rig, *arachne.Runtime) {
	r := NewRig(m, KindArbiter)
	cfg := arachne.DefaultConfig()
	cfg.MinCores = minCores
	cfg.MaxCores = maxCores
	rt := arachne.NewRuntime(r.K, cfg)
	acts := rt.Start(PolicyEnoki, maxCores)
	arachne.AttachEnoki(rt, r.Adapter, 1, acts)
	return r, rt
}

// Options tunes experiment scale: Quick shrinks message counts and
// durations so the full suite runs in seconds (used by `go test -bench`);
// the full scale matches the paper's run lengths. Parallel sets how many
// independent experiment cells may run concurrently (each on its own Rig and
// engine); 0 or 1 runs serially and produces byte-identical output.
type Options struct {
	Quick    bool
	Parallel int
}

// scale returns full when !Quick, quick otherwise.
func scaleInt(o Options, full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

func scaleDur(o Options, full, quick time.Duration) time.Duration {
	if o.Quick {
		return quick
	}
	return full
}
