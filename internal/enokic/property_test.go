package enokic

import (
	"testing"
	"testing/quick"
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/sched/fifo"
	"enoki/internal/sched/locality"
	"enoki/internal/sched/shinjuku"
	"enoki/internal/sched/wfq"
	"enoki/internal/sim"
)

// Property: under a seeded chaos workload, every shipped scheduler module
// completes all tasks with zero framework-caught errors, and runs are
// deterministic. This is the "trusted but clumsy" contract from the other
// side: correct modules never trip validation.

func chaosRun(t *testing.T, seed uint64, factory func(core.Env) core.Scheduler) (fp uint64, stats Stats, leaked int) {
	t.Helper()
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	a := Load(k, policyEnoki, DefaultConfig(), factory)
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	rng := ktime.NewRand(seed)

	n := 3 + rng.Intn(10)
	var tasks []*kernel.Task
	for i := 0; i < n; i++ {
		segments := 2 + rng.Intn(15)
		segLen := rng.UniformDuration(20*time.Microsecond, 1500*time.Microsecond)
		behavior := kernel.BehaviorFunc(func(k *kernel.Kernel, tk *kernel.Task) kernel.Action {
			if segments == 0 {
				return kernel.Action{Op: kernel.OpExit}
			}
			segments--
			switch rng.Intn(4) {
			case 0:
				return kernel.Action{Run: segLen, Op: kernel.OpContinue}
			case 1:
				return kernel.Action{Run: segLen, Op: kernel.OpYield}
			case 2:
				return kernel.Action{Run: segLen, Op: kernel.OpSleep,
					SleepFor: rng.UniformDuration(10*time.Microsecond, 500*time.Microsecond)}
			default:
				return kernel.Action{Run: segLen, Op: kernel.OpBlock}
			}
		})
		opts := []kernel.SpawnOption{kernel.WithNice(rng.Intn(8) - 4)}
		if rng.Bernoulli(0.25) {
			opts = append(opts, kernel.WithAffinity(kernel.SingleCPU(rng.Intn(8))))
		}
		tasks = append(tasks, k.Spawn("chaos", policyEnoki, behavior, opts...))
	}
	var chaos func()
	chaos = func() {
		for _, tk := range tasks {
			if tk.State() == kernel.StateBlocked && rng.Bernoulli(0.8) {
				k.Wake(tk)
			}
			if tk.State() != kernel.StateDead && rng.Bernoulli(0.05) {
				k.SetNice(tk, rng.Intn(40)-20)
			}
			if tk.State() != kernel.StateDead && rng.Bernoulli(0.04) {
				k.SetAffinity(tk, kernel.AllCPUs(8))
			}
			if tk.State() != kernel.StateDead && rng.Bernoulli(0.03) {
				// Bounce through CFS and back: exercises
				// task_departed + re-attach.
				k.SetScheduler(tk, policyCFS)
				k.SetScheduler(tk, policyEnoki)
			}
		}
		eng.After(rng.UniformDuration(100*time.Microsecond, 800*time.Microsecond), chaos)
	}
	eng.After(500*time.Microsecond, chaos)
	k.RunFor(2 * time.Second)

	var sumExec time.Duration
	for _, tk := range tasks {
		sumExec += tk.SumExec()
	}
	return uint64(sumExec) ^ k.CtxSwitches<<1, a.Stats(), k.NumTasks()
}

func moduleFactories() map[string]func(core.Env) core.Scheduler {
	return map[string]func(core.Env) core.Scheduler{
		"fifo": func(env core.Env) core.Scheduler { return fifo.New(env, policyEnoki) },
		"wfq":  func(env core.Env) core.Scheduler { return wfq.New(env, policyEnoki) },
		"shinjuku": func(env core.Env) core.Scheduler {
			return shinjuku.New(env, policyEnoki, 10*time.Microsecond)
		},
		"locality": func(env core.Env) core.Scheduler { return locality.New(env, policyEnoki) },
	}
}

func TestQuickModulesSurviveChaos(t *testing.T) {
	for name, factory := range moduleFactories() {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				_, st, leaked := chaosRun(t, seed, factory)
				if leaked != 0 {
					t.Logf("seed %d: %d tasks leaked", seed, leaked)
					return false
				}
				if st.PntErrs != 0 {
					t.Logf("seed %d: %d pnt_errs", seed, st.PntErrs)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQuickModulesDeterministic(t *testing.T) {
	for name, factory := range moduleFactories() {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				a, _, _ := chaosRun(t, seed, factory)
				b, _, _ := chaosRun(t, seed, factory)
				return a == b
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQuickUpgradeUnderChaos(t *testing.T) {
	// Upgrades injected mid-chaos must never lose tasks or trip
	// validation.
	f := func(seed uint64) bool {
		eng := sim.New()
		k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
		a := Load(k, policyEnoki, DefaultConfig(), wfqFactory)
		k.RegisterClass(policyCFS, kernel.NewCFS(k))
		rng := ktime.NewRand(seed)

		exited := 0
		n := 4 + rng.Intn(8)
		for i := 0; i < n; i++ {
			segments := 5 + rng.Intn(20)
			behavior := kernel.BehaviorFunc(func(k *kernel.Kernel, tk *kernel.Task) kernel.Action {
				if segments == 0 {
					exited++
					return kernel.Action{Op: kernel.OpExit}
				}
				segments--
				if rng.Bernoulli(0.3) {
					return kernel.Action{Run: 200 * time.Microsecond, Op: kernel.OpSleep,
						SleepFor: 300 * time.Microsecond}
				}
				return kernel.Action{Run: 200 * time.Microsecond, Op: kernel.OpContinue}
			})
			k.Spawn("u", policyEnoki, behavior)
		}
		upgrades := 0
		var up func()
		up = func() {
			a.Upgrade(wfqFactory, func(UpgradeReport) {
				upgrades++
				if upgrades < 4 {
					eng.After(rng.UniformDuration(time.Millisecond, 3*time.Millisecond), up)
				}
			})
		}
		eng.After(rng.UniformDuration(time.Millisecond, 2*time.Millisecond), up)
		k.RunFor(time.Second)
		return exited == n && a.Stats().PntErrs == 0 && k.NumTasks() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
