package enoki_test

import (
	"errors"
	"testing"
	"time"

	"enoki"
)

// TestNewClusterQuickstart is the README example: a small fleet, a batch of
// jobs, everything completes, and the handle closes cleanly exactly once.
func TestNewClusterQuickstart(t *testing.T) {
	cl := enoki.NewCluster(
		enoki.WithMachines(4),
		enoki.WithPlacer("leastloaded"),
		enoki.WithFleetParallel(true),
	)
	for i := 0; i < 20; i++ {
		cl.Submit(enoki.JobSpec{Cycles: 3, Run: 100 * time.Microsecond})
	}
	cl.RunUntilIdle()
	st := cl.Stats()
	if st.Done != 20 || st.MachinesAlive != 4 {
		t.Fatalf("done/alive = %d/%d, want 20/4", st.Done, st.MachinesAlive)
	}
	if cl.Job(0).State != enoki.JobDone {
		t.Fatalf("job 0 state %v, want done", cl.Job(0).State)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cl.Close(); !errors.Is(err, enoki.ErrClusterClosed) {
		t.Fatalf("second Close = %v, want ErrClusterClosed", err)
	}
}

// TestNewClusterOptions covers the remaining option plumbing: machine
// template, custom setup, rebalancing, failure injection, and the
// by-instance placer option.
func TestNewClusterOptions(t *testing.T) {
	setupRan := 0
	cl := enoki.NewCluster(
		enoki.WithMachines(3),
		enoki.WithMachineTemplate(enoki.MachineNUMA("api16", 2, 2, 4)),
		enoki.WithNetLatency(30*time.Microsecond),
		enoki.WithReconcileInterval(150*time.Microsecond),
		enoki.WithDetectDelay(300*time.Microsecond),
		enoki.WithClusterPlacer(enoki.PlacerByName("roundrobin")),
		enoki.WithRebalanceSpread(2),
		enoki.WithJobPolicy(0),
		enoki.WithMachineSetup(func(machine int, sk *enoki.ShardedKernel) {
			setupRan++
			for s := 0; s < sk.NumShards(); s++ {
				k := sk.ShardKernel(s)
				k.RegisterClass(0, enoki.NewCFS(k))
			}
		}),
	)
	defer cl.Close()
	if setupRan != 3 {
		t.Fatalf("setup ran %d times, want once per machine", setupRan)
	}
	for i := 0; i < 12; i++ {
		cl.Submit(enoki.JobSpec{Cycles: 40, Run: 120 * time.Microsecond})
	}
	cl.FailMachine(1, 2*time.Millisecond)
	cl.RunUntilIdle()
	st := cl.Stats()
	if st.Done != 12 {
		t.Fatalf("done = %d, want 12 (stats %+v)", st.Done, st)
	}
	if st.Lost == 0 || st.MachinesAlive != 2 {
		t.Fatalf("failure not exercised: lost %d, alive %d", st.Lost, st.MachinesAlive)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("WithPlacer with an unknown name did not panic")
		}
	}()
	enoki.WithPlacer("definitely-not-a-placer")
}
