// Quickstart: write a complete Enoki scheduler in ~60 lines and run real
// workloads on it.
//
// This is the worked example of §3.1: a per-core first-come-first-serve
// scheduler. It implements the EnokiScheduler trait (enoki.Scheduler),
// receives Schedulable proofs as tasks become runnable, and returns them
// from PickNextTask — the framework validates every proof, so even a buggy
// version of this file cannot crash the (simulated) kernel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"enoki"
)

const (
	policyCFS  = 0
	policyMine = 1
)

// myScheduler keeps a FIFO queue of (pid, proof) per core.
type myScheduler struct {
	enoki.BaseScheduler // default no-ops for the trait methods we skip
	queues              [][]*enoki.Schedulable
}

func newMyScheduler(env enoki.Env) *myScheduler {
	return &myScheduler{queues: make([][]*enoki.Schedulable, env.NumCPUs())}
}

func (s *myScheduler) GetPolicy() int { return policyMine }

// Every event that makes a task runnable hands us a proof; we queue it.
func (s *myScheduler) TaskNew(pid int, rt time.Duration, runnable bool, allowed []int, sched *enoki.Schedulable) {
	if sched != nil {
		s.queues[sched.CPU()] = append(s.queues[sched.CPU()], sched)
	}
}
func (s *myScheduler) TaskWakeup(pid int, rt time.Duration, deferrable bool, lastCPU, wakeCPU int, sched *enoki.Schedulable) {
	s.queues[wakeCPU] = append(s.queues[wakeCPU], sched)
}
func (s *myScheduler) TaskPreempt(pid int, rt time.Duration, cpu int, preempted bool, sched *enoki.Schedulable) {
	s.queues[cpu] = append(s.queues[cpu], sched)
}
func (s *myScheduler) TaskYield(pid int, rt time.Duration, cpu int, sched *enoki.Schedulable) {
	s.queues[cpu] = append(s.queues[cpu], sched)
}

// PickNextTask pops the head of this core's queue and returns its proof.
func (s *myScheduler) PickNextTask(cpu int, curr *enoki.Schedulable, rt time.Duration) *enoki.Schedulable {
	q := s.queues[cpu]
	if len(q) == 0 {
		return nil
	}
	s.queues[cpu] = q[1:]
	return q[0]
}

// SelectTaskRQ places new tasks on the shortest queue; wakes stay put.
func (s *myScheduler) SelectTaskRQ(pid, prevCPU int, wakeup bool) int {
	if wakeup {
		return prevCPU
	}
	best := prevCPU
	for cpu, q := range s.queues {
		if best < 0 || best >= len(s.queues) || len(q) < len(s.queues[best]) {
			best = cpu
		}
	}
	return best
}

// TaskDeparted and MigrateTaskRQ return proofs the framework asks back.
func (s *myScheduler) TaskDeparted(pid, cpu int) *enoki.Schedulable {
	for c, q := range s.queues {
		for i, tok := range q {
			if tok.PID() == pid {
				s.queues[c] = append(append([]*enoki.Schedulable{}, q[:i]...), q[i+1:]...)
				return tok
			}
		}
	}
	return nil
}
func (s *myScheduler) MigrateTaskRQ(pid, newCPU int, sched *enoki.Schedulable) *enoki.Schedulable {
	old := s.TaskDeparted(pid, newCPU)
	s.queues[newCPU] = append(s.queues[newCPU], sched)
	return old
}

func main() {
	// Boot a simulated 8-core machine and load the scheduler, with CFS
	// underneath it for everything else — exactly the deployment story
	// of the paper.
	sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine8()))
	ad, err := sys.Attach(policyMine, enoki.GoModule(
		func(env enoki.Env) enoki.Scheduler { return newMyScheduler(env) }))
	if err != nil {
		panic(err)
	}
	sys.RegisterCFS(policyCFS)
	k := sys.Kernel()

	// Workload 1: eight CPU-bound tasks.
	done := 0
	for i := 0; i < 8; i++ {
		remaining := 20 * time.Millisecond
		k.Spawn("spinner", policyMine, enoki.BehaviorFunc(
			func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
				if remaining <= 0 {
					return enoki.Action{Op: enoki.OpExit}
				}
				remaining -= time.Millisecond
				return enoki.Action{Run: time.Millisecond, Op: enoki.OpContinue}
			}), enoki.WithExitObserver(func() { done++ }))
	}
	k.RunFor(100 * time.Millisecond)
	fmt.Printf("spinners finished: %d/8 (sim time %v)\n", done, k.Now())

	// Workload 2: a pipe-style ping-pong measuring scheduling latency.
	var a, b *enoki.Task
	const rounds = 5000
	count := 0
	var finished time.Duration
	mk := func(peer **enoki.Task, starts bool) enoki.Behavior {
		started := false
		return enoki.BehaviorFunc(func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
			if starts && !started {
				started = true
				return enoki.Action{Run: 300 * time.Nanosecond, Wake: []*enoki.Task{*peer}, Op: enoki.OpBlock}
			}
			count++
			if count >= 2*rounds {
				finished = time.Duration(k.Now())
				return enoki.Action{Op: enoki.OpExit}
			}
			return enoki.Action{Run: 300 * time.Nanosecond, Wake: []*enoki.Task{*peer}, Op: enoki.OpBlock}
		})
	}
	start := time.Duration(k.Now())
	a = k.Spawn("ping", policyMine, mk(&b, true), enoki.WithAffinity(enoki.SingleCPU(0)))
	b = k.Spawn("pong", policyMine, mk(&a, false), enoki.WithAffinity(enoki.SingleCPU(0)))
	k.RunFor(time.Second)
	perWakeup := (finished - start) / (2 * rounds)
	fmt.Printf("pipe ping-pong: %d wakeups, %v per wakeup\n", count, perWakeup)

	st := ad.Stats()
	fmt.Printf("framework: %d messages dispatched, %d invalid picks caught\n",
		st.Messages, st.PntErrs)
}
