package kernel_test

import (
	"testing"

	"enoki/internal/bench"
)

// TestScheduleOpTracedZeroAlloc is the allocation ratchet for the
// observability layer at the kernel level: a full block→wake→schedule round
// trip with the tracer ring and per-class histograms live must stay at 0
// allocs/op, same as the untraced path. Run as a test (not only a
// benchmark) so `go test ./...` catches a regression without anyone
// remembering to read benchmark output.
func TestScheduleOpTracedZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	r := testing.Benchmark(bench.ScheduleOpTraced)
	if allocs := r.AllocsPerOp(); allocs != 0 {
		t.Errorf("traced ScheduleOp: %d allocs/op, want 0", allocs)
	}
}

// TestScheduleOpChaosIdleZeroAlloc is the allocation ratchet for the chaos
// engine's kernel fault hooks: with the injector installed but every fault
// window disarmed — how a chaos run spends almost all of its virtual time —
// the window checks on the kick and resched-timer paths must add nothing to
// the schedule round trip.
func TestScheduleOpChaosIdleZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	r := testing.Benchmark(bench.ScheduleOpChaosIdle)
	if allocs := r.AllocsPerOp(); allocs != 0 {
		t.Errorf("ScheduleOp with disarmed fault hooks: %d allocs/op, want 0", allocs)
	}
}

// TestScheduleOpShardedZeroAlloc is the allocation ratchet for the sharded
// executor: the ScheduleOp ping-pong on every shard of a two-node machine,
// driven through the epoch-merge protocol, must stay at 0 allocs/op once the
// free lists and timer-wheel slots are warm. This pins the whole sharded
// stack — epoch loop, message outboxes, per-shard wheels — not just one
// kernel's hot path.
func TestScheduleOpShardedZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	r := testing.Benchmark(bench.ScheduleOpSharded)
	if allocs := r.AllocsPerOp(); allocs != 0 {
		t.Errorf("sharded ScheduleOp: %d allocs/op, want 0", allocs)
	}
}

// TestScheduleOpVerifiedFIFOZeroAlloc is the allocation ratchet for the
// verified-bytecode fast lane: the ScheduleOp ping-pong with both tasks
// scheduled by the interpreted FIFO program — enqueue hook, pick-path
// interpretation, queue pops — must stay at 0 allocs/op. This is the tier's
// core promise: module-free crossing with kernel-native allocation behavior.
func TestScheduleOpVerifiedFIFOZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	r := testing.Benchmark(bench.ScheduleOpVerifiedFIFO)
	if allocs := r.AllocsPerOp(); allocs != 0 {
		t.Errorf("verified-tier ScheduleOp: %d allocs/op, want 0", allocs)
	}
}

// TestWakeBurstZeroAlloc is the allocation ratchet for the batched
// cross-CPU message path: a 16-wake burst on the two-socket Machine80 —
// per-target IPI coalescing, cross-socket delivery, idle exits — must
// allocate nothing in steady state.
func TestWakeBurstZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	r := testing.Benchmark(bench.WakeBurst)
	if allocs := r.AllocsPerOp(); allocs != 0 {
		t.Errorf("batched WakeBurst: %d allocs/op, want 0", allocs)
	}
}
