package experiments

import (
	"fmt"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/nest"
	"enoki/internal/sim"
	"enoki/internal/stats"
)

// ExtNestResult is an extension experiment (not in the paper): the
// Nest-style warm-core scheduler versus CFS on a light periodic load,
// measuring core consolidation (the energy proxy) and wakeup latency. It
// demonstrates the paper's thesis — a new research scheduler built and
// evaluated on the framework in an afternoon.
type ExtNestResult struct {
	CFSCores, NestCores int
	CFSP50, NestP50     time.Duration
	CFSP99, NestP99     time.Duration
	NestPeak            int
}

// Name implements the experiment naming convention.
func (r *ExtNestResult) Name() string { return "ext-nest" }

func (r *ExtNestResult) String() string {
	t := stats.NewTable("Scheduler", "cores used", "wake p50", "wake p99")
	t.Row("CFS", r.CFSCores, r.CFSP50, r.CFSP99)
	t.Row("Nest (extension)", r.NestCores, r.NestP50, r.NestP99)
	return "Extension: Nest-style warm-core consolidation (4 periodic tasks, 8 cores; not in the paper)\n" +
		t.String() +
		fmt.Sprintf("nest peak size during load: %d cores\n", r.NestPeak)
}

// ExtNest runs the comparison.
func ExtNest(o Options) *ExtNestResult {
	duration := scaleDur(o, 3*time.Second, 500*time.Millisecond)
	run := func(useNest bool) (time.Duration, time.Duration, int, int) {
		eng := sim.New()
		k := kernel.New(eng, kernel.Machine8(), kernel.CostsFor(kernel.Machine8()))
		policy := PolicyCFS
		var sched *nest.Sched
		if useNest {
			enokic.Load(k, PolicyEnoki, enokic.DefaultConfig(),
				func(env core.Env) core.Scheduler {
					sched = nest.New(env, PolicyEnoki)
					return sched
				})
			policy = PolicyEnoki
		}
		k.RegisterClass(PolicyCFS, kernel.NewCFS(k))

		var hist stats.Histogram
		for i := 0; i < 4; i++ {
			n := 0
			k.Spawn("periodic", policy, kernel.BehaviorFunc(
				func(kk *kernel.Kernel, t *kernel.Task) kernel.Action {
					n++
					return kernel.Action{Run: 30 * time.Microsecond,
						Op: kernel.OpSleep, SleepFor: 250 * time.Microsecond}
				}),
				kernel.WithWakeObserver(func(d time.Duration) { hist.Record(d) }))
		}
		k.RunFor(duration)
		cores := 0
		for c := 0; c < 8; c++ {
			if k.CPUBusy(c) > duration/100 {
				cores++
			}
		}
		peak := 0
		if sched != nil {
			peak = sched.NestSize()
		}
		return hist.Quantile(0.5), hist.Quantile(0.99), cores, peak
	}
	res := &ExtNestResult{}
	res.CFSP50, res.CFSP99, res.CFSCores, _ = run(false)
	res.NestP50, res.NestP99, res.NestCores, res.NestPeak = run(true)
	return res
}
