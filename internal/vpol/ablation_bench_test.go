package vpol_test

import (
	"testing"

	"enoki/internal/bench"
)

// Thin delegates so the crossing-cost ablation runs under `go test -bench`
// here as well as from `enokibench -benchjson`. Same FIFO policy, same
// ping-pong workload; only the attachment tier differs.

func BenchmarkScheduleOpModuleFIFO(b *testing.B) { bench.ScheduleOpModuleFIFO(b) }

func BenchmarkScheduleOpVerifiedFIFO(b *testing.B) { bench.ScheduleOpVerifiedFIFO(b) }
