package replay_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/record"
	"enoki/internal/replay"
	"enoki/internal/sched/wfq"
	"enoki/internal/sim"
)

const (
	policyCFS = 0
	policyWFQ = 1
)

// recordedRun records a pipe workload on the WFQ scheduler and returns the
// serialised log plus run statistics.
func recordedRun(t *testing.T, messages int) (*bytes.Buffer, *record.Recorder, time.Duration) {
	t.Helper()
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	ad := enokic.Load(k, policyWFQ, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		return wfq.New(env, policyWFQ)
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	var buf bytes.Buffer
	rec := record.New(k, &buf, policyCFS, record.DefaultCosts())
	ad.SetRecorder(rec)

	var a, b *kernel.Task
	count := 0
	var finished time.Duration
	mk := func(peer **kernel.Task, starts bool) kernel.Behavior {
		started := false
		return kernel.BehaviorFunc(func(k *kernel.Kernel, tk *kernel.Task) kernel.Action {
			if starts && !started {
				started = true
				return kernel.Action{Run: 300 * time.Nanosecond, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
			}
			count++
			if count >= 2*messages {
				finished = time.Duration(k.Now())
				return kernel.Action{Op: kernel.OpExit}
			}
			return kernel.Action{Run: 300 * time.Nanosecond, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
		})
	}
	a = k.Spawn("a", policyWFQ, mk(&b, true), kernel.WithAffinity(kernel.SingleCPU(0)))
	b = k.Spawn("b", policyWFQ, mk(&a, false), kernel.WithAffinity(kernel.SingleCPU(0)))
	k.RunFor(10 * time.Second)
	if count < 2*messages {
		t.Fatalf("recorded workload stalled at %d", count)
	}
	rec.Close()
	return &buf, rec, finished
}

func TestRecordProducesLog(t *testing.T) {
	buf, rec, _ := recordedRun(t, 200)
	if rec.Entries == 0 {
		t.Fatal("nothing recorded")
	}
	if buf.Len() == 0 {
		t.Fatal("log file empty")
	}
	entries, err := record.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	msgs, locks := 0, 0
	for _, e := range entries {
		switch {
		case e.Msg != nil:
			msgs++
		case e.Lock != nil:
			locks++
		}
	}
	if msgs < 200 || locks < 200 {
		t.Fatalf("log too small: %d msgs, %d lock ops", msgs, locks)
	}
}

func TestRecordSlowsTheRun(t *testing.T) {
	// §5.8: record mode is several times slower than native operation.
	_, _, recTime := recordedRun(t, 300)

	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	enokic.Load(k, policyWFQ, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		return wfq.New(env, policyWFQ)
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	var a, b *kernel.Task
	count := 0
	var nativeTime time.Duration
	mk := func(peer **kernel.Task, starts bool) kernel.Behavior {
		started := false
		return kernel.BehaviorFunc(func(k *kernel.Kernel, tk *kernel.Task) kernel.Action {
			if starts && !started {
				started = true
				return kernel.Action{Run: 300 * time.Nanosecond, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
			}
			count++
			if count >= 600 {
				nativeTime = time.Duration(k.Now())
				return kernel.Action{Op: kernel.OpExit}
			}
			return kernel.Action{Run: 300 * time.Nanosecond, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
		})
	}
	a = k.Spawn("a", policyWFQ, mk(&b, true), kernel.WithAffinity(kernel.SingleCPU(0)))
	b = k.Spawn("b", policyWFQ, mk(&a, false), kernel.WithAffinity(kernel.SingleCPU(0)))
	k.RunFor(10 * time.Second)

	ratio := float64(recTime) / float64(nativeTime)
	if ratio < 2 || ratio > 20 {
		t.Fatalf("record slowdown = %.1fx (rec %v vs native %v), want several-fold", ratio, recTime, nativeTime)
	}
}

func TestReplayMatchesRecording(t *testing.T) {
	buf, _, _ := recordedRun(t, 300)
	res, err := replay.Replay(bytes.NewReader(buf.Bytes()),
		replay.Config{NumCPUs: 8},
		func(env core.Env) core.Scheduler { return wfq.New(env, policyWFQ) })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Messages < 300 {
		t.Fatalf("replayed only %d messages", res.Messages)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("replay diverged: %v", res.Divergences[:min(3, len(res.Divergences))])
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time measured")
	}
}

func TestReplayDetectsChangedScheduler(t *testing.T) {
	// Replaying a WFQ log against a policy-altered module should produce
	// divergences, not silence: this is the validation §3.4 promises.
	buf, _, _ := recordedRun(t, 200)
	res, err := replay.Replay(bytes.NewReader(buf.Bytes()),
		replay.Config{NumCPUs: 8},
		func(env core.Env) core.Scheduler { return &alwaysIdle{Sched: wfq.New(env, policyWFQ)} })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(res.Divergences) == 0 {
		t.Fatal("modified scheduler replayed without divergence")
	}
	if !strings.Contains(res.Divergences[0], "pick_next_task") {
		t.Fatalf("unexpected divergence: %s", res.Divergences[0])
	}
}

// alwaysIdle wraps WFQ but never picks anything.
type alwaysIdle struct {
	*wfq.Sched
}

func (a *alwaysIdle) PickNextTask(cpu int, curr *core.Schedulable, rt time.Duration) *core.Schedulable {
	a.Sched.PickNextTask(cpu, curr, rt) // keep internal state moving
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
