package conformance

import (
	"fmt"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/schedtest"
)

// TestConformanceAllClasses drives every scheduler class through the same
// seeded randomized workloads (with nice/affinity churn) and asserts the
// shared invariants: every task completes (no lost wakeups), the task table
// drains (no leaks), the invariant checker saw no double-runs or state
// mismatches, and the framework caught zero scheduler mistakes.
func TestConformanceAllClasses(t *testing.T) {
	for _, c := range Cases() {
		for _, seed := range []uint64{1, 0xabcdef} {
			t.Run(fmt.Sprintf("%s/seed=%#x", c.Name, seed), func(t *testing.T) {
				r := NewRig(c, enokic.DefaultConfig(), nil)
				ch := StartChecker(r, 250*time.Microsecond)
				w := Workload{Seed: seed, Tasks: 40, Churn: true}
				done := w.Run(r)

				if done != w.Tasks {
					t.Errorf("%d/%d tasks completed — lost wakeups or starvation", done, w.Tasks)
				}
				if n := r.K.NumTasks(); n != 0 {
					t.Errorf("%d tasks leaked in the kernel table", n)
				}
				for _, v := range ch.Violations {
					t.Errorf("invariant violation: %v", v)
				}
				if r.Adapter != nil {
					if r.Adapter.Killed() {
						t.Fatalf("healthy module was killed: %+v", r.Adapter.Failure())
					}
					if st := r.Adapter.Stats(); st.PntErrs != 0 {
						t.Errorf("module produced %d pick errors", st.PntErrs)
					}
				}
			})
		}
	}
}

// starveCfg shortens only the watchdog window, for injectors whose symptom
// is a stuck or vanishing task.
func starveCfg() enokic.Config {
	cfg := enokic.DefaultConfig()
	cfg.StarveWindow = 2 * time.Millisecond
	return cfg
}

// pntErrCfg drops the pick-error budget to one, so the first forged pick
// trips the kill before any secondary starvation develops (the arbiter goes
// quiet after a single rejected pick).
func pntErrCfg() enokic.Config {
	cfg := enokic.DefaultConfig()
	cfg.PntErrBudget = 1
	return cfg
}

// TestConformanceFaultInjection runs every Enoki-module class with each
// fault injector and asserts rehome-to-CFS completeness: the module is
// killed with the expected cause, its policy id falls back to CFS, every
// task still completes, and the kernel invariants hold throughout.
func TestConformanceFaultInjection(t *testing.T) {
	injectors := []struct {
		name string
		cfg  enokic.Config
		wrap func(core.Scheduler) core.Scheduler
		want core.FaultCause
	}{
		{"panic", enokic.DefaultConfig(), func(s core.Scheduler) core.Scheduler {
			return &schedtest.Panicky{Scheduler: s, PanicAfterPicks: 5}
		}, core.FaultPanic},
		{"stall", starveCfg(), func(s core.Scheduler) core.Scheduler {
			return &schedtest.Staller{Scheduler: s, StallAfterPicks: 5}
		}, core.FaultStarvation},
		{"forge", pntErrCfg(), func(s core.Scheduler) core.Scheduler {
			return &schedtest.Forger{Scheduler: s, ForgeAfterPicks: 5}
		}, core.FaultPickErrors},
		{"leak", starveCfg(), func(s core.Scheduler) core.Scheduler {
			return &schedtest.Leaker{Scheduler: s, DropEvery: 1}
		}, core.FaultStarvation},
	}
	for _, c := range Cases() {
		if c.NewModule == nil {
			continue // the native baseline has no module to kill
		}
		for _, inj := range injectors {
			t.Run(c.Name+"/"+inj.name, func(t *testing.T) {
				r := NewRig(c, inj.cfg, inj.wrap)
				ch := StartChecker(r, 250*time.Microsecond)
				w := Workload{Seed: 7, Tasks: 24}
				done := w.Run(r)

				if !r.Adapter.Killed() {
					t.Fatal("faulty module was not killed")
				}
				rep := r.Adapter.Failure()
				if rep == nil {
					t.Fatal("no FailureReport after kill")
				}
				if rep.Fault.Cause != inj.want {
					t.Errorf("fault cause = %v, want %v", rep.Fault.Cause, inj.want)
				}
				if r.K.ClassByID(PolicyTest) != r.K.ClassByID(PolicyCFS) {
					t.Error("dead policy id does not resolve to the CFS fallback")
				}
				if done != w.Tasks {
					t.Errorf("%d/%d tasks completed after rehome to CFS", done, w.Tasks)
				}
				if n := r.K.NumTasks(); n != 0 {
					t.Errorf("%d tasks leaked after module kill", n)
				}
				for _, v := range ch.Violations {
					t.Errorf("invariant violation: %v", v)
				}
			})
		}
	}
}

// TestConformanceQueueLie covers the hint-queue path for classes that
// support it: a module that lies about a queue on unregister is killed with
// FaultQueueLie and its tasks still complete under CFS.
func TestConformanceQueueLie(t *testing.T) {
	for _, c := range Cases() {
		if !c.SupportsHints {
			continue
		}
		t.Run(c.Name, func(t *testing.T) {
			r := NewRig(c, enokic.DefaultConfig(), func(s core.Scheduler) core.Scheduler {
				return &schedtest.QueueLiar{Scheduler: s}
			})
			ch := StartChecker(r, 250*time.Microsecond)
			uq := r.Adapter.CreateHintQueue(8)
			if uq == nil {
				t.Fatalf("%s advertises hint support but rejected the queue", c.Name)
			}
			done := 0
			for i := 0; i < 16; i++ {
				r.K.Spawn(fmt.Sprintf("w%d", i), r.Policy,
					Loop(20, 100*time.Microsecond, kernel.OpSleep, 80*time.Microsecond),
					kernel.WithExitObserver(func() { done++ }))
			}
			r.K.RunFor(2 * time.Millisecond)
			uq.Close() // the liar hands back a forged queue object
			r.K.RunFor(500 * time.Millisecond)

			if !r.Adapter.Killed() {
				t.Fatal("lying module was not killed")
			}
			if got := r.Adapter.Failure().Fault.Cause; got != core.FaultQueueLie {
				t.Errorf("fault cause = %v, want %v", got, core.FaultQueueLie)
			}
			if done != 16 {
				t.Errorf("%d/16 tasks completed after queue-lie kill", done)
			}
			for _, v := range ch.Violations {
				t.Errorf("invariant violation: %v", v)
			}
		})
	}
}
