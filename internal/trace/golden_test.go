package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"enoki/internal/experiments"
	"enoki/internal/kernel"
	"enoki/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files from the current output")

// goldenRun executes the fixed-seed reference workload — the same mix
// `enoki-trace -demo` uses — on a fresh rig and returns the Chrome JSON it
// produces. Every input is deterministic (virtual time, fixed spawn order,
// no sampling), so the bytes are the run's fingerprint.
func goldenRun(t *testing.T, kind experiments.Kind) []byte {
	t.Helper()
	r := experiments.NewRig(kernel.Machine8(), kind)
	tr, _ := r.Observe(1 << 18)

	mkLoop := func(rounds int, run, sleep time.Duration) kernel.Behavior {
		n := 0
		return kernel.BehaviorFunc(func(*kernel.Kernel, *kernel.Task) kernel.Action {
			n++
			if n > rounds {
				return kernel.Action{Op: kernel.OpExit}
			}
			return kernel.Action{Run: run, Op: kernel.OpSleep, SleepFor: sleep}
		})
	}
	for i := 0; i < 4; i++ {
		r.K.Spawn("worker", r.Policy, mkLoop(30, 120*time.Microsecond, 60*time.Microsecond))
	}
	for i := 0; i < 2; i++ {
		r.K.Spawn("batch", experiments.PolicyCFS, mkLoop(15, 300*time.Microsecond, 100*time.Microsecond))
	}
	r.K.RunFor(5 * time.Millisecond)

	if d := tr.Dropped(); d != 0 {
		t.Fatalf("reference run overflowed the ring (%d dropped) — bytes would be lossy", d)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr.Events()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	return buf.Bytes()
}

// TestChromeGolden locks the exporter's exact bytes for a fixed-seed WFQ
// run. Any change to event emission order, field formatting, or the
// exporter itself shows up as a golden diff — reviewable, not silent.
func TestChromeGolden(t *testing.T) {
	got := goldenRun(t, experiments.KindWFQ)
	path := filepath.Join("testdata", "wfq_demo.trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Chrome trace differs from golden (%d vs %d bytes); rerun with -update and review the diff",
			len(got), len(want))
	}

	// The golden file itself must be valid Chrome trace JSON.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
	}
	for _, ph := range []string{"M", "X", "i", "s", "f"} {
		if phases[ph] == 0 {
			t.Errorf("trace contains no %q records (got %v)", ph, phases)
		}
	}
}

// TestChromeDeterministicUnderConcurrency is the byte-determinism claim:
// several rigs running the identical workload concurrently (as the parallel
// experiment driver does) must each produce output identical to the serial
// run. Virtual timestamps and allocation-free per-rig state are what make
// this hold; run under -race in CI this also proves the rigs share nothing.
func TestChromeDeterministicUnderConcurrency(t *testing.T) {
	serial := goldenRun(t, experiments.KindWFQ)
	const n = 4
	outs := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = goldenRun(t, experiments.KindWFQ)
		}(i)
	}
	wg.Wait()
	for i, out := range outs {
		if !bytes.Equal(out, serial) {
			t.Errorf("concurrent run %d diverged from the serial run (%d vs %d bytes)",
				i, len(out), len(serial))
		}
	}
}
