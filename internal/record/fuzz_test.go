package record

import (
	"bytes"
	"encoding/gob"
	"testing"

	"enoki/internal/core"
)

// validLog builds a well-formed record log in memory: a few message entries
// and a lock entry, gob-encoded exactly as the live Recorder writes them.
func validLog(t testing.TB) []byte {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i := 0; i < 3; i++ {
		m := &core.Message{
			Kind:    core.MsgTaskWakeup,
			Seq:     uint64(i + 1),
			PID:     100 + i,
			WakeCPU: i % 4,
		}
		if err := enc.Encode(&Entry{Msg: m}); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	lk := core.LockEvent{Op: core.LockAcquire, Seq: 4}
	if err := enc.Encode(&Entry{Lock: &lk}); err != nil {
		t.Fatalf("encode lock: %v", err)
	}
	return buf.Bytes()
}

// FuzzLoad feeds arbitrary bytes to Load. A record log is untrusted input —
// a crashed run, a partial copy, a hostile file — so whatever the bytes,
// Load must return (entries, error) and never panic. The harness itself will
// report any panic as a crash; the assertions below pin the contract for the
// non-panicking paths.
func FuzzLoad(f *testing.F) {
	whole := validLog(f)
	f.Add(whole)
	f.Add(whole[:len(whole)/2]) // truncated mid-stream
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)/3] ^= 0x5a
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := Load(bytes.NewReader(data))
		for i, e := range entries {
			// Decoded prefix entries must be structurally sound enough to
			// hand to downstream consumers (replay, enoki-trace).
			if e.Msg == nil && e.Lock == nil {
				t.Fatalf("entry %d has neither Msg nor Lock (err=%v)", i, err)
			}
		}
	})
}

// TestLoadCorruptInputs pins the fuzz findings that matter as plain tests,
// so the contract is enforced even in runs without the fuzz engine.
func TestLoadCorruptInputs(t *testing.T) {
	whole := validLog(t)

	entries, err := Load(bytes.NewReader(whole))
	if err != nil || len(entries) != 4 {
		t.Fatalf("intact log: %d entries, err=%v; want 4, nil", len(entries), err)
	}

	entries, err = Load(bytes.NewReader(whole[:len(whole)-3]))
	if err == nil {
		t.Fatal("truncated log decoded without error")
	}
	if len(entries) == 0 {
		t.Error("truncated log should still yield its decoded prefix")
	}

	if _, err = Load(bytes.NewReader([]byte{0x07, 0xff, 0x82, 0x01})); err == nil {
		t.Error("garbage bytes decoded without error")
	}

	entries, err = Load(bytes.NewReader(nil))
	if err != nil || len(entries) != 0 {
		t.Fatalf("empty log: %d entries, err=%v; want 0, nil", len(entries), err)
	}
}
