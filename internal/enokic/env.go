package enokic

import (
	"time"

	"enoki/internal/core"
	"enoki/internal/ktime"
)

// kernelEnv is the in-kernel implementation of core.Env handed to scheduler
// modules: the safe interfaces onto kernel locks, timers, topology, and
// time.
type kernelEnv struct {
	a      *Adapter
	rand   *ktime.Rand
	nlocks int
}

var _ core.Env = (*kernelEnv)(nil)

func (e *kernelEnv) Now() ktime.Time { return e.a.k.Now() }

func (e *kernelEnv) NumCPUs() int { return e.a.k.NumCPUs() }

func (e *kernelEnv) SameNode(a, b int) bool { return e.a.k.Topology().SameNode(a, b) }

func (e *kernelEnv) Topology() *core.Topology { return e.a.k.Topo() }

func (e *kernelEnv) ArmTimer(cpu int, d time.Duration) { e.a.k.ArmResched(cpu, d) }

func (e *kernelEnv) Resched(cpu int) { e.a.k.Resched(cpu) }

func (e *kernelEnv) Rand() *ktime.Rand { return e.rand }

// NewMutex returns a recording lock shim. The simulation is single-threaded
// over virtual time so the lock never contends; its job is to log the
// create/acquire/release order with the acquiring kernel thread, which is
// all replay needs to reproduce the module's synchronisation schedule
// (§3.4).
func (e *kernelEnv) NewMutex(name string) core.Locker {
	id := e.nlocks
	e.nlocks++
	m := &recMutex{a: e.a, id: id, name: name}
	m.record(core.LockCreate)
	return m
}

type recMutex struct {
	a      *Adapter
	id     int
	name   string
	locked bool
}

func (m *recMutex) record(op core.LockOp) {
	if m.a.recorder == nil {
		return
	}
	m.a.lockSeq++
	m.a.recorder.RecordLock(core.LockEvent{
		Op: op, LockID: m.id, Name: m.name,
		Thread: m.a.thread, Seq: m.a.lockSeq,
	})
}

func (m *recMutex) Lock() {
	if m.locked {
		// Self-deadlock: the one lock bug safe Rust cannot rule out.
		// In the real kernel this hangs the machine; in simulation,
		// fail loudly so it is debuggable.
		panic("enokic: recursive lock acquisition (module deadlock)")
	}
	m.locked = true
	m.record(core.LockAcquire)
}

func (m *recMutex) Unlock() {
	if !m.locked {
		panic("enokic: unlock of unlocked module lock")
	}
	m.locked = false
	m.record(core.LockRelease)
}
