// Shared replay-spec plumbing. All four campaign planes render their
// reproducer as <prefix>:<class>:<seed hex>:<mask hex> — one line that
// regenerates the whole fault plan — so they share one hardened splitter
// rather than four drifting copies. The splitter rejects truncated or
// padded specs, empty fields, and unparseable hex up front with a typed
// error, and never panics: a spec string is untrusted input (a CI log, a
// bug report, a shell history). The per-plane parsers keep only their own
// class rules and the mask-bounds check (which needs the generated event
// count).

package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// SpecError is the typed failure every spec parser returns for malformed
// input: which spec, which field ("shape", "class", "seed", "mask"), and
// why. Callers can errors.As on it to distinguish a bad spec from an
// infrastructure error.
type SpecError struct {
	Spec  string
	Field string
	Msg   string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("chaos: bad %s in spec %q: %s", e.Field, e.Spec, e.Msg)
}

// splitSpec validates the common spec shape and returns its fields. shape
// is the human-readable form for error messages (e.g.
// "r1:<class>:<seed>:<mask>"). All failures are *SpecError.
func splitSpec(spec, prefix, shape string) (class string, seed, mask uint64, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 || parts[0] != prefix {
		return "", 0, 0, &SpecError{Spec: spec, Field: "shape",
			Msg: fmt.Sprintf("want %s", shape)}
	}
	if parts[1] == "" {
		return "", 0, 0, &SpecError{Spec: spec, Field: "class", Msg: "empty"}
	}
	seed, err = strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return "", 0, 0, &SpecError{Spec: spec, Field: "seed", Msg: err.Error()}
	}
	mask, err = strconv.ParseUint(parts[3], 16, 64)
	if err != nil {
		return "", 0, 0, &SpecError{Spec: spec, Field: "mask", Msg: err.Error()}
	}
	return parts[1], seed, mask, nil
}

// checkMask rejects a spec mask with bits beyond the generated event
// count. Silently truncating such a mask (the old behaviour) would make a
// corrupted spec replay a *different*, smaller fault plan and still claim
// to be the reproducer; better to refuse it outright.
func checkMask(spec string, mask, full uint64, n int) error {
	if mask&^full != 0 {
		return &SpecError{Spec: spec, Field: "mask",
			Msg: fmt.Sprintf("mask %x has bits beyond the %d generated events", mask, n)}
	}
	return nil
}
