package ringbuf

import (
	"testing"
)

// FuzzBuffer drives a Buffer through an arbitrary op sequence and checks it
// against a plain-slice reference model: same values in the same order, same
// accept/reject decisions, same drop count, and Len/Cap always in range.
//
// Each byte of the fuzz input is one operation: even values push (the byte
// itself is the payload), odd values pop. The first byte picks the capacity.
func FuzzBuffer(f *testing.F) {
	f.Add([]byte{4, 0, 2, 4, 1, 6, 8, 10, 3, 5})
	f.Add([]byte{1, 2, 2, 2, 1, 1, 1})
	f.Add([]byte{0})
	f.Add([]byte{16, 1, 3, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		capacity := int(ops[0]%32) + 1
		b := New[byte](capacity)
		if b.Cap() != capacity {
			t.Fatalf("Cap() = %d, want %d", b.Cap(), capacity)
		}
		var model []byte
		var drops uint64
		for _, op := range ops[1:] {
			if op%2 == 0 { // push
				ok := b.Push(op)
				wantOK := len(model) < capacity
				if ok != wantOK {
					t.Fatalf("Push(%d) with %d/%d queued: ok=%v, want %v",
						op, len(model), capacity, ok, wantOK)
				}
				if wantOK {
					model = append(model, op)
				} else {
					drops++
				}
			} else { // pop
				v, ok := b.Pop()
				if ok != (len(model) > 0) {
					t.Fatalf("Pop() with %d queued: ok=%v", len(model), ok)
				}
				if ok {
					if v != model[0] {
						t.Fatalf("Pop() = %d, want %d (FIFO order broken)", v, model[0])
					}
					model = model[1:]
				}
			}
			if b.Len() != len(model) {
				t.Fatalf("Len() = %d, model has %d", b.Len(), len(model))
			}
			if b.Dropped() != drops {
				t.Fatalf("Dropped() = %d, model counted %d", b.Dropped(), drops)
			}
		}
		// Drain must return the exact remaining FIFO contents.
		got := b.Drain()
		if len(got) != len(model) {
			t.Fatalf("Drain() returned %d entries, want %d", len(got), len(model))
		}
		for i := range got {
			if got[i] != model[i] {
				t.Fatalf("Drain()[%d] = %d, want %d", i, got[i], model[i])
			}
		}
		if b.Len() != 0 {
			t.Fatalf("Len() = %d after Drain", b.Len())
		}
	})
}
