// Fleet rollouts: the control plane upgrades a named scheduler-module
// generation across the cluster in canary waves. Each wave upgrades a batch
// of machines through enokic's transactional path, soaks them under live
// load, probes their health, and gates widening on per-machine SLO
// verdicts; any failing verdict halts the rollout and rolls every
// already-upgraded machine back to the previous generation. The whole state
// machine runs on the control-plane engine and talks to machines only
// through fleet messages, so a rollout — including a halt-and-rollback — is
// deterministic and byte-identical between serial and parallel fleet
// drives.
//
// Slot state machine (one slot per target machine):
//
//	Pending ──wave──▶ Upgrading ──ack──▶ Observing ──verdict──▶ Healthy
//	                      │                  │                     │
//	                      │ (upgrade failed, │ (SLO verdict        │ (halt)
//	                      │  machine died)   │  failed, died)      ▼
//	                      └───────▶ Failed ◀─┘              RollingBack
//	                                                              │
//	   Dead ◀── (machine died in any state) ──── RolledBack ◀─────┘
package cluster

import (
	"errors"
	"fmt"
	"math"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/ktime"
	"enoki/internal/stats"
)

// Rollout errors.
var (
	// ErrRolloutActive: only one rollout may be in flight per cluster.
	ErrRolloutActive = errors.New("cluster: a rollout is already in flight")
	// ErrNoModules: no alive machine exposes upgradable modules — the
	// cluster was built without Config.SetupModules.
	ErrNoModules = errors.New("cluster: no machine exposes upgradable modules")
)

// RolloutConfig parameterizes one fleet rollout. Version and Factory are
// required; every other zero field takes a default.
type RolloutConfig struct {
	// Version names the new module generation (enokic version lineage).
	Version string
	// Factory builds the new scheduler for one shard of one machine.
	Factory func(machine int, env core.Env) core.Scheduler
	// Canary is the first-wave fraction of target machines (default 0.02,
	// always at least one machine).
	Canary float64
	// Widen multiplies the wave width after each healthy wave (default 4).
	Widen int
	// Observe is the soak window between a wave's last upgrade ack and its
	// health probes (default 2ms).
	Observe time.Duration
	// MaxFaults is the per-machine budget of fault-killed modules found at
	// probe time (default 0: any kill fails the verdict).
	MaxFaults int
	// MinCompletion, when positive, is the floor on done/assigned over the
	// soak window for machines that had jobs assigned at soak start.
	MinCompletion float64
	// MaxStartP99 is the ceiling on the machine's start-op ack p99 during
	// the soak (default 5ms).
	MaxStartP99 time.Duration
	// NoDeathResolve disables the failure-detector resolution of in-flight
	// rollout slots, reintroducing the pre-fix hang where a wave waits
	// forever on a dead canary. Test-only: it exists so the chaos suite has
	// a seeded bug to catch and minimize.
	NoDeathResolve bool
}

func (c RolloutConfig) withDefaults() RolloutConfig {
	if c.Canary <= 0 {
		c.Canary = 0.02
	}
	if c.Widen < 2 {
		c.Widen = 4
	}
	if c.Observe <= 0 {
		c.Observe = 2 * time.Millisecond
	}
	if c.MaxStartP99 <= 0 {
		c.MaxStartP99 = 5 * time.Millisecond
	}
	return c
}

// RolloutOption mutates a RolloutConfig; Cluster.Rollout applies them in
// order.
type RolloutOption func(*RolloutConfig)

// SlotState is one machine's stage in the rollout state machine.
type SlotState uint8

// Slot states. A target machine is Pending until its wave starts, Upgrading
// while the upgrade op is outstanding, Observing through the soak window,
// then Healthy or Failed on the verdict. A halt moves machines that may
// hold the new generation through RollingBack to RolledBack. Dead absorbs
// machines the failure detector removed.
const (
	SlotPending SlotState = iota
	SlotUpgrading
	SlotObserving
	SlotHealthy
	SlotFailed
	SlotRollingBack
	SlotRolledBack
	SlotDead
)

func (s SlotState) String() string {
	switch s {
	case SlotPending:
		return "pending"
	case SlotUpgrading:
		return "upgrading"
	case SlotObserving:
		return "observing"
	case SlotHealthy:
		return "healthy"
	case SlotFailed:
		return "failed"
	case SlotRollingBack:
		return "rollingback"
	case SlotRolledBack:
		return "rolledback"
	case SlotDead:
		return "dead"
	default:
		return "invalid"
	}
}

// upgradeSummary is a machine agent's roll-up of one machine-wide upgrade
// (or rollback) operation: how each shard's transaction resolved.
type upgradeSummary struct {
	Shards     int // shards holding upgradable modules
	Committed  int // transactions that committed (rollback op: shards off the new version)
	RolledBack int // transactions enokic aborted and rolled back
	Errs       int // terminal errors (ErrModuleKilled et al.)
}

// healthSummary is a machine agent's probe report at the end of a soak
// window.
type healthSummary struct {
	Shards   int // shards probed
	OnTarget int // shards serving the rollout version (and not killed)
	Killed   int // shards whose module the fault layer killed
}

// MachineVerdict is the per-machine SLO verdict gating a wave. Healthy is
// the conjunction of every rule; Reasons lists the rules that failed.
type MachineVerdict struct {
	Machine int
	Wave    int
	Healthy bool
	Died    bool // the failure detector removed the machine mid-rollout
	// Upgrade outcome, from the machine's ack.
	Shards            int
	UpgradeRolledBack int // shards whose upgrade transaction aborted
	UpgradeErrs       int // shards whose upgrade died (incl. machine death)
	// Probe outcome.
	ShardsOnTarget int
	Faults         int
	// Soak outcome: jobs assigned at soak start, completions during it, and
	// the start-op ack p99 observed over the window (0 when no starts
	// landed).
	Assigned  int
	Completed int
	StartP99  time.Duration
	Reasons   []string
}

// WaveReport records one wave's membership and casualties.
type WaveReport struct {
	Wave     int
	Machines []int
	Failed   []int
}

// RolloutReport is the replayable record of one rollout: identical across
// serial and parallel drives of the same cluster history.
type RolloutReport struct {
	Version  string // generation rolled out
	Previous string // generation the fleet ran before
	Targets  int    // machines with upgradable modules at start
	Canary   int    // first-wave width
	Waves    []WaveReport
	Verdicts []MachineVerdict
	// Outcome. Completed means every surviving target ended Healthy;
	// Halted means a failing verdict stopped the widening and the rollback
	// executed. HaltedWave is -1 unless halted.
	Completed    bool
	Halted       bool
	HaltedWave   int
	Upgraded     int // machines Healthy on the new generation at resolution
	RolledBack   int // machines restored to the previous generation
	RollbackErrs int // shards whose rollback did not restore the old generation
	Dead         int // target machines lost to failures mid-rollout
	StartedAt    ktime.Time
	ResolvedAt   ktime.Time
}

func (r RolloutReport) clone() RolloutReport {
	out := r
	out.Waves = make([]WaveReport, len(r.Waves))
	for i, w := range r.Waves {
		w.Machines = append([]int(nil), w.Machines...)
		w.Failed = append([]int(nil), w.Failed...)
		out.Waves[i] = w
	}
	out.Verdicts = make([]MachineVerdict, len(r.Verdicts))
	for i, v := range r.Verdicts {
		v.Reasons = append([]string(nil), v.Reasons...)
		out.Verdicts[i] = v
	}
	return out
}

// rolloutPhase is the barrier the orchestrator is currently waiting on.
type rolloutPhase uint8

const (
	phaseIdle     rolloutPhase = iota
	phaseUpgrade               // waiting for the wave's upgrade acks
	phaseObserve               // soak timer armed
	phaseProbe                 // waiting for the wave's probe reports
	phaseRollback              // waiting for rollback acks fleet-wide
)

// rolloutSlot is the control plane's state for one target machine.
type rolloutSlot struct {
	machine  int
	state    SlotState
	wave     int
	awaiting bool // an op toward this machine is unacknowledged
	died     bool
	up       upgradeSummary
	health   healthSummary
	rbErrs   int // rollback shards that failed to restore the old generation
	// Soak baselines and samples.
	done0     int
	assigned0 int
	startHist stats.LogHist
}

// Rollout is one in-flight (or resolved) fleet rollout. Construct it with
// Cluster.Rollout or Cluster.StartRollout between runs; read Report after
// Done reports true.
type Rollout struct {
	c        *Cluster
	cfg      RolloutConfig
	order    []int          // target machine ids, ascending
	slots    []*rolloutSlot // indexed by machine id; nil for non-targets
	wave     int
	waveIDs  []int
	awaiting int // outstanding machine acks on the current barrier
	phase    rolloutPhase
	halted   bool
	resolved bool
	report   RolloutReport
}

// Rollout starts a wave-based canary upgrade of every machine built with
// Config.SetupModules toward generation version. Call it between runs (or
// from a control-plane event); the first wave begins on the next engine
// step and the rollout resolves within the run — RunUntilIdle will not stop
// while one is in flight.
func (c *Cluster) Rollout(version string, factory func(machine int, env core.Env) core.Scheduler, opts ...RolloutOption) (*Rollout, error) {
	cfg := RolloutConfig{Version: version, Factory: factory}
	for _, o := range opts {
		o(&cfg)
	}
	return c.StartRollout(cfg)
}

// StartRollout is Rollout with an explicit config.
func (c *Cluster) StartRollout(cfg RolloutConfig) (*Rollout, error) {
	if c.closed {
		return nil, fmt.Errorf("cluster: StartRollout: %w", ErrClosed)
	}
	if c.rollout != nil && !c.rollout.resolved {
		return nil, ErrRolloutActive
	}
	if cfg.Version == "" {
		return nil, errors.New("cluster: RolloutConfig.Version is required")
	}
	if cfg.Factory == nil {
		return nil, errors.New("cluster: RolloutConfig.Factory is required")
	}
	cfg = cfg.withDefaults()
	r := &Rollout{c: c, cfg: cfg, slots: make([]*rolloutSlot, len(c.machines))}
	prev := ""
	for i, m := range c.machines {
		if !c.sched.view[i].Alive {
			continue
		}
		upgradable := false
		for _, ad := range m.ads {
			if ad != nil {
				upgradable = true
				if prev == "" {
					prev = ad.Version()
				}
			}
		}
		if !upgradable {
			continue
		}
		r.order = append(r.order, i)
		r.slots[i] = &rolloutSlot{machine: i, state: SlotPending, wave: -1}
	}
	if len(r.order) == 0 {
		return nil, ErrNoModules
	}
	canary := int(math.Ceil(cfg.Canary * float64(len(r.order))))
	if canary < 1 {
		canary = 1
	}
	r.report = RolloutReport{
		Version: cfg.Version, Previous: prev,
		Targets: len(r.order), Canary: canary,
		HaltedWave: -1, StartedAt: c.ctrl.Now(),
	}
	c.rollout = r
	c.ctrl.Post(0, r.startWave)
	return r, nil
}

// Done reports whether the rollout has resolved (completed, halted and
// rolled back, or ran out of alive targets).
func (r *Rollout) Done() bool { return r.resolved }

// Halted reports whether a failing verdict stopped the rollout.
func (r *Rollout) Halted() bool { return r.halted }

// Report returns a copy of the rollout record. Read it between runs.
func (r *Rollout) Report() RolloutReport { return r.report.clone() }

// SlotStatus is one target machine's position in the rollout state machine.
type SlotStatus struct {
	Machine int
	State   SlotState
	Wave    int // -1 when the machine never joined a wave
}

// Slots returns every target machine's slot status in id order. Read it
// between runs; once the rollout resolves the states are final and every
// slot is Pending (untouched), Healthy, RolledBack, or Dead.
func (r *Rollout) Slots() []SlotStatus {
	out := make([]SlotStatus, 0, len(r.order))
	for _, mi := range r.order {
		sl := r.slots[mi]
		out = append(out, SlotStatus{Machine: mi, State: sl.state, Wave: sl.wave})
	}
	return out
}

// waveWidth is the wave's machine count: Canary targets widened Widen× per
// healthy wave, capped at the full target set.
func (r *Rollout) waveWidth(wave int) int {
	n := r.report.Canary
	for i := 0; i < wave; i++ {
		n *= r.cfg.Widen
		if n >= len(r.order) {
			return len(r.order)
		}
	}
	return n
}

// startWave opens the next wave: claim up to waveWidth pending alive
// machines in id order and send each an upgrade op. No pending machines
// left means the rollout converged.
func (r *Rollout) startWave() {
	if r.resolved || r.halted {
		return
	}
	width := r.waveWidth(r.wave)
	r.waveIDs = r.waveIDs[:0]
	for _, mi := range r.order {
		sl := r.slots[mi]
		if sl.state != SlotPending {
			continue
		}
		if !r.c.sched.view[mi].Alive || sl.died {
			sl.died = true
			sl.state = SlotDead
			continue
		}
		r.waveIDs = append(r.waveIDs, mi)
		if len(r.waveIDs) == width {
			break
		}
	}
	if len(r.waveIDs) == 0 {
		r.finish(true)
		return
	}
	r.report.Waves = append(r.report.Waves, WaveReport{
		Wave: r.wave, Machines: append([]int(nil), r.waveIDs...),
	})
	r.phase = phaseUpgrade
	for _, mi := range r.waveIDs {
		sl := r.slots[mi]
		sl.state = SlotUpgrading
		sl.wave = r.wave
		sl.awaiting = true
		r.awaiting++
		r.sendUpgrade(mi)
	}
}

// sendUpgrade ships the upgrade op to machine mi over the fleet.
func (r *Rollout) sendUpgrade(mi int) {
	c := r.c
	m := c.machines[mi]
	at := c.ctrl.Now().Add(ktime.Duration(c.cfg.NetLatency))
	c.fl.SendHandoff(c.ctrlSrc, m.node, at, func() { m.applyUpgrade(r, at) })
}

// sendProbe ships the health probe to machine mi.
func (r *Rollout) sendProbe(mi int) {
	c := r.c
	m := c.machines[mi]
	at := c.ctrl.Now().Add(ktime.Duration(c.cfg.NetLatency))
	c.fl.SendHandoff(c.ctrlSrc, m.node, at, func() { m.applyProbe(r, at) })
}

// sendRollback ships the rollback op to machine mi.
func (r *Rollout) sendRollback(mi int) {
	c := r.c
	m := c.machines[mi]
	at := c.ctrl.Now().Add(ktime.Duration(c.cfg.NetLatency))
	c.fl.SendHandoff(c.ctrlSrc, m.node, at, func() { m.applyRollback(r, at) })
}

// ackBarrier retires one outstanding machine ack and advances the phase
// when the barrier clears.
func (r *Rollout) ackBarrier() {
	r.awaiting--
	if r.awaiting > 0 || r.resolved {
		return
	}
	switch r.phase {
	case phaseUpgrade:
		r.waveUpgraded()
	case phaseProbe:
		r.evaluateWave()
	case phaseRollback:
		r.finish(false)
	}
}

// upgradeAck handles a machine's upgrade roll-up.
func (r *Rollout) upgradeAck(mi int, sum upgradeSummary) {
	if r.resolved {
		return
	}
	sl := r.slots[mi]
	if sl == nil || !sl.awaiting || sl.state != SlotUpgrading {
		return // stale: the slot resolved another way (e.g. death detection)
	}
	sl.awaiting = false
	sl.up = sum
	if sum.Errs > 0 || sum.RolledBack > 0 {
		sl.state = SlotFailed
	} else {
		sl.state = SlotObserving
	}
	r.ackBarrier()
}

// waveUpgraded runs when every upgrade in the wave acked (or resolved via
// death detection): start the soak if the wave is clean, otherwise go
// straight to verdicts — the canary already failed.
func (r *Rollout) waveUpgraded() {
	clean := true
	for _, mi := range r.waveIDs {
		if r.slots[mi].state != SlotObserving {
			clean = false
			break
		}
	}
	if !clean {
		r.evaluateWave()
		return
	}
	for _, mi := range r.waveIDs {
		sl := r.slots[mi]
		sl.done0 = r.c.sched.doneByMachine[mi]
		sl.assigned0 = r.c.sched.view[mi].Assigned
		sl.startHist.Reset()
	}
	r.phase = phaseObserve
	r.c.ctrl.Post(ktime.Duration(r.cfg.Observe), r.observeEnd)
}

// noteStartAck records a start-op ack latency against machine mi's slot
// while it soaks. Called from jobScheduler.onStarted.
func (r *Rollout) noteStartAck(mi int, lat time.Duration) {
	if r.resolved || r.phase != phaseObserve {
		return
	}
	if sl := r.slots[mi]; sl != nil && sl.state == SlotObserving {
		sl.startHist.Record(lat)
	}
}

// observeEnd closes the soak window: probe every wave machine still
// observing. Machines that died during the soak skip the probe — their
// verdict fails on the death.
func (r *Rollout) observeEnd() {
	if r.resolved || r.halted {
		return
	}
	r.phase = phaseProbe
	for _, mi := range r.waveIDs {
		sl := r.slots[mi]
		if sl.state != SlotObserving {
			continue
		}
		sl.awaiting = true
		r.awaiting++
		r.sendProbe(mi)
	}
	if r.awaiting == 0 {
		r.evaluateWave()
	}
}

// probeAck handles a machine's health probe report.
func (r *Rollout) probeAck(mi int, sum healthSummary) {
	if r.resolved {
		return
	}
	sl := r.slots[mi]
	if sl == nil || !sl.awaiting || sl.state != SlotObserving {
		return
	}
	sl.awaiting = false
	sl.health = sum
	r.ackBarrier()
}

// verdict applies the SLO rules to one wave slot.
func (r *Rollout) verdict(sl *rolloutSlot) MachineVerdict {
	cfg := r.cfg
	v := MachineVerdict{
		Machine: sl.machine, Wave: sl.wave, Died: sl.died,
		Shards:            sl.up.Shards,
		UpgradeRolledBack: sl.up.RolledBack,
		UpgradeErrs:       sl.up.Errs,
		ShardsOnTarget:    sl.health.OnTarget,
		Faults:            sl.health.Killed,
	}
	if sl.died {
		v.Reasons = append(v.Reasons, "machine died during rollout")
	}
	if sl.up.RolledBack > 0 {
		v.Reasons = append(v.Reasons, fmt.Sprintf(
			"upgrade rolled back on %d/%d shards", sl.up.RolledBack, sl.up.Shards))
	}
	if sl.up.Errs > 0 {
		v.Reasons = append(v.Reasons, fmt.Sprintf(
			"upgrade failed on %d/%d shards", sl.up.Errs, sl.up.Shards))
	}
	if sl.health.Shards > 0 { // probed: soak rules apply
		if sl.health.Killed > cfg.MaxFaults {
			v.Reasons = append(v.Reasons, fmt.Sprintf(
				"%d module faults during soak (budget %d)", sl.health.Killed, cfg.MaxFaults))
		}
		if sl.health.OnTarget < sl.health.Shards {
			v.Reasons = append(v.Reasons, fmt.Sprintf(
				"only %d/%d shards serving %s", sl.health.OnTarget, sl.health.Shards, cfg.Version))
		}
		v.Assigned = sl.assigned0
		v.Completed = r.c.sched.doneByMachine[sl.machine] - sl.done0
		if cfg.MinCompletion > 0 && sl.assigned0 > 0 {
			if rate := float64(v.Completed) / float64(sl.assigned0); rate < cfg.MinCompletion {
				v.Reasons = append(v.Reasons, fmt.Sprintf(
					"completion %.2f below floor %.2f", rate, cfg.MinCompletion))
			}
		}
		if sl.startHist.Count() > 0 {
			v.StartP99 = time.Duration(sl.startHist.Quantile(0.99))
			if v.StartP99 > cfg.MaxStartP99 {
				v.Reasons = append(v.Reasons, fmt.Sprintf(
					"start-ack p99 %v above ceiling %v", v.StartP99, cfg.MaxStartP99))
			}
		}
	}
	v.Healthy = len(v.Reasons) == 0
	return v
}

// evaluateWave turns the wave's slots into verdicts and either widens or
// halts.
func (r *Rollout) evaluateWave() {
	r.phase = phaseIdle
	failed := false
	wr := &r.report.Waves[len(r.report.Waves)-1]
	for _, mi := range r.waveIDs {
		sl := r.slots[mi]
		v := r.verdict(sl)
		r.report.Verdicts = append(r.report.Verdicts, v)
		if v.Healthy {
			sl.state = SlotHealthy
		} else {
			if sl.state != SlotDead {
				sl.state = SlotFailed
			}
			wr.Failed = append(wr.Failed, mi)
			failed = true
		}
	}
	if failed {
		r.halt()
		return
	}
	r.wave++
	r.startWave()
}

// halt stops the widening and rolls back every machine that may hold the
// new generation: Healthy machines from earlier waves and this wave's
// surviving members (a partially-committed upgrade leaves shards on the new
// version; the rollback op is per-shard conditional). Dead machines are
// skipped — there is nothing left to message.
func (r *Rollout) halt() {
	r.halted = true
	r.report.Halted = true
	r.report.HaltedWave = r.wave
	r.phase = phaseRollback
	for _, mi := range r.order {
		sl := r.slots[mi]
		switch sl.state {
		case SlotHealthy, SlotObserving, SlotFailed:
			if sl.died {
				sl.state = SlotDead
				continue
			}
			sl.state = SlotRollingBack
			sl.awaiting = true
			r.awaiting++
			r.sendRollback(mi)
		}
	}
	if r.awaiting == 0 {
		r.finish(false)
	}
}

// rollbackAck handles a machine's rollback roll-up.
func (r *Rollout) rollbackAck(mi int, sum upgradeSummary) {
	if r.resolved {
		return
	}
	sl := r.slots[mi]
	if sl == nil || !sl.awaiting || sl.state != SlotRollingBack {
		return
	}
	sl.awaiting = false
	sl.rbErrs = sum.Errs + sum.RolledBack
	sl.state = SlotRolledBack
	r.ackBarrier()
}

// machineDead resolves machine mi's slot when the failure detector declares
// it dead. An op in flight toward the machine will never be acknowledged —
// the fleet drops messages to dead nodes — so the slot must resolve here:
// the machine-side queued-upgrade death path fires done(ErrModuleKilled)
// for anything mid-blackout, and the control side accounts the death as a
// failed shard and retires the barrier ack so the wave proceeds to its
// verdict instead of waiting forever.
func (r *Rollout) machineDead(mi int) {
	if r.resolved || r.cfg.NoDeathResolve {
		return
	}
	sl := r.slots[mi]
	if sl == nil || sl.died || sl.state == SlotDead {
		return
	}
	sl.died = true
	switch sl.state {
	case SlotPending, SlotHealthy:
		sl.state = SlotDead
	case SlotUpgrading, SlotObserving:
		sl.state = SlotFailed
		if sl.awaiting {
			sl.awaiting = false
			sl.up.Errs++ // the death path's done(ErrModuleKilled), accounted here
			r.ackBarrier()
		}
	case SlotRollingBack:
		sl.state = SlotDead
		if sl.awaiting {
			sl.awaiting = false
			r.ackBarrier()
		}
	}
}

// finish resolves the rollout and totals the report.
func (r *Rollout) finish(converged bool) {
	if r.resolved {
		return
	}
	r.resolved = true
	r.phase = phaseIdle
	r.report.Completed = converged && !r.halted
	for _, mi := range r.order {
		sl := r.slots[mi]
		switch sl.state {
		case SlotHealthy:
			r.report.Upgraded++
		case SlotRolledBack:
			r.report.RolledBack++
			r.report.RollbackErrs += sl.rbErrs
		}
		if sl.died || sl.state == SlotDead {
			r.report.Dead++
		}
	}
	r.report.ResolvedAt = r.c.ctrl.Now()
}

// --- machine agent side -----------------------------------------------
//
// The agent ops below mirror applyStart/applyStop: the fleet delivers them
// at machine-executor level, they fan out to every module-holding shard via
// shard injection, accumulate a machine-local roll-up (the machine drive is
// serial, so plain mutation is safe and deterministic), and the last shard
// to resolve reports the roll-up back over its own fleet source.

// applyUpgrade injects an UpgradeTo into every shard holding a module and
// acks the machine-wide outcome once the last shard's transaction resolves.
func (m *Machine) applyUpgrade(r *Rollout, at ktime.Time) {
	sum := &upgradeSummary{}
	left := 0
	for _, ad := range m.ads {
		if ad != nil {
			left++
		}
	}
	sum.Shards = left
	mid := m.id
	finish := func(shard int) {
		left--
		if left > 0 {
			return
		}
		out := *sum
		m.report(shard, func(*jobScheduler) { r.upgradeAck(mid, out) })
	}
	version := r.cfg.Version
	for s, ad := range m.ads {
		if ad == nil {
			continue
		}
		shard, a := s, ad
		m.sk.Inject(shard, at, func() {
			factory := func(env core.Env) core.Scheduler { return r.cfg.Factory(mid, env) }
			err := a.UpgradeTo(version, factory, func(rep enokic.UpgradeReport) {
				switch {
				case rep.Err != nil:
					sum.Errs++
				case rep.RolledBack:
					sum.RolledBack++
				default:
					sum.Committed++
				}
				finish(shard)
			})
			if err != nil {
				sum.Errs++
				finish(shard)
			}
		})
	}
}

// applyProbe reads each shard's module health inside that shard's own
// context and acks the roll-up.
func (m *Machine) applyProbe(r *Rollout, at ktime.Time) {
	sum := &healthSummary{}
	left := 0
	for _, ad := range m.ads {
		if ad != nil {
			left++
		}
	}
	mid := m.id
	version := r.cfg.Version
	for s, ad := range m.ads {
		if ad == nil {
			continue
		}
		shard, a := s, ad
		m.sk.Inject(shard, at, func() {
			sum.Shards++
			if a.Killed() {
				sum.Killed++
			} else if a.Version() == version {
				sum.OnTarget++
			}
			left--
			if left == 0 {
				out := *sum
				m.report(shard, func(*jobScheduler) { r.probeAck(mid, out) })
			}
		})
	}
}

// applyRollback restores the previous generation on every shard still
// serving the rollout version — shards that never committed (or whose
// module is dead) have nothing to undo and count as already off the new
// generation.
func (m *Machine) applyRollback(r *Rollout, at ktime.Time) {
	sum := &upgradeSummary{}
	left := 0
	for _, ad := range m.ads {
		if ad != nil {
			left++
		}
	}
	sum.Shards = left
	mid := m.id
	finish := func(shard int) {
		left--
		if left > 0 {
			return
		}
		out := *sum
		m.report(shard, func(*jobScheduler) { r.rollbackAck(mid, out) })
	}
	version := r.cfg.Version
	for s, ad := range m.ads {
		if ad == nil {
			continue
		}
		shard, a := s, ad
		m.sk.Inject(shard, at, func() {
			if a.Killed() || a.Version() != version {
				sum.Committed++
				finish(shard)
				return
			}
			err := a.Rollback(func(rep enokic.UpgradeReport) {
				switch {
				case rep.Err != nil:
					sum.Errs++
				case rep.RolledBack:
					// The rollback transaction itself aborted: the new
					// generation kept serving, which defeats the halt.
					sum.RolledBack++
				default:
					sum.Committed++
				}
				finish(shard)
			})
			if err != nil {
				sum.Errs++
				finish(shard)
			}
		})
	}
}
