package cluster

import (
	"testing"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/overload"
)

func admCluster(t *testing.T, machines int, classes []overload.ClassConfig) *Cluster {
	t.Helper()
	c := New(Config{Machines: machines, Machine: kernel.Machine8(), Admission: classes})
	t.Cleanup(func() { c.Close() })
	return c
}

func TestOfferAdmitShedRetryConservation(t *testing.T) {
	c := admCluster(t, 2, []overload.ClassConfig{
		// Backoff outlives a job (reconcile 200µs + net latency + 100µs
		// run), so retries land after the first wave frees slots.
		{Name: "api", MaxInflight: 4, MaxRetries: 1, Backoff: time.Millisecond},
	})
	spec := JobSpec{Name: "req", Cycles: 1, Run: 100 * time.Microsecond}
	admitted, shed := 0, 0
	for i := 0; i < 20; i++ {
		switch c.Offer(0, spec) {
		case overload.Admitted:
			admitted++
		case overload.Retry, overload.Dropped:
			shed++
		}
	}
	if admitted != 4 || shed != 16 {
		t.Fatalf("burst of 20 into MaxInflight 4: admitted %d shed %d", admitted, shed)
	}
	c.RunUntilIdle()
	n := c.Overload().Counters(0)
	// First-attempt sheds retry once; retries that land after completions
	// free slots get admitted, the rest drop.
	if n.Retried != 16 {
		t.Fatalf("retried %d, want 16", n.Retried)
	}
	if n.Admitted <= 4 {
		t.Fatalf("no retry was admitted after slots freed: %+v", n)
	}
	if v := c.Overload().CheckConservation(true); len(v) != 0 {
		t.Fatalf("conservation violations: %v", v)
	}
	if int(n.Admitted) != c.Stats().Done {
		t.Fatalf("admitted %d but %d jobs done", n.Admitted, c.Stats().Done)
	}
	if c.Backlog() != 0 {
		t.Fatalf("drained cluster backlog %d", c.Backlog())
	}
}

func TestSubmitBypassesAdmission(t *testing.T) {
	c := admCluster(t, 1, []overload.ClassConfig{{Name: "api", MaxInflight: 1}})
	c.Submit(JobSpec{Cycles: 1})
	c.RunUntilIdle()
	if n := c.Overload().Total(); n.Offered != 0 {
		t.Fatalf("Submit touched admission: %+v", n)
	}
	if v := c.Overload().CheckConservation(true); len(v) != 0 {
		t.Fatalf("violations on untouched controller: %v", v)
	}
}

func TestOfferWithoutAdmissionPanics(t *testing.T) {
	c := New(Config{Machines: 1, Machine: kernel.Machine8()})
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Offer without Config.Admission did not panic")
		}
	}()
	c.Offer(0, JobSpec{})
}

// TestOfferConservationAcrossMachineFailure is the fleet half of the
// rehome invariant: jobs admitted before a machine dies restart elsewhere
// and still close their admission window exactly once.
func TestOfferConservationAcrossMachineFailure(t *testing.T) {
	c := admCluster(t, 3, []overload.ClassConfig{
		{Name: "api", MaxInflight: 32, MaxRetries: 2, Backoff: 200 * time.Microsecond},
	})
	spec := JobSpec{Name: "req", Cycles: 3, Run: 150 * time.Microsecond, Sleep: 100 * time.Microsecond}
	for i := 0; i < 24; i++ {
		c.Offer(0, spec)
	}
	c.FailMachine(0, 400*time.Microsecond)
	c.RunUntilIdle()
	st := c.Stats()
	if st.Lost == 0 {
		t.Fatal("machine kill lost no placements; failure path untested")
	}
	n := c.Overload().Counters(0)
	if int(n.Admitted) != st.Done {
		t.Fatalf("admitted %d, done %d: rehome leaked or double-counted", n.Admitted, st.Done)
	}
	if v := c.Overload().CheckConservation(true); len(v) != 0 {
		t.Fatalf("conservation across failure: %v", v)
	}
}
