package enoki

import (
	"io"
	"time"

	"enoki/internal/arachne"
	"enoki/internal/core"
	"enoki/internal/record"
	"enoki/internal/replay"
	"enoki/internal/sched/arbiter"
	"enoki/internal/sched/fifo"
	"enoki/internal/sched/locality"
	"enoki/internal/sched/nest"
	"enoki/internal/sched/shinjuku"
	"enoki/internal/sched/wfq"
)

// The schedulers shipped with the framework (§4.2), constructible from the
// public API. Each returns a Scheduler ready to pass to Load.

// NewWFQScheduler builds the weighted fair queuing scheduler of §4.2.1, the
// paper's CFS-comparable headline module.
func NewWFQScheduler(env Env, policy int) Scheduler { return wfq.New(env, policy) }

// NewFIFOScheduler builds the minimal per-core FIFO from §3.1's worked
// example.
func NewFIFOScheduler(env Env, policy int) Scheduler { return fifo.New(env, policy) }

// NewShinjukuScheduler builds the centralized FCFS scheduler with µs-scale
// preemption of §4.2.2 (slice 0 means the paper's 10 µs).
func NewShinjukuScheduler(env Env, policy int, slice time.Duration) Scheduler {
	return shinjuku.New(env, policy, slice)
}

// NewLocalityScheduler builds the hint-driven co-location scheduler of
// §4.2.3; send LocalityHint values through a hint queue.
func NewLocalityScheduler(env Env, policy int) Scheduler { return locality.New(env, policy) }

// LocalityHint asks the locality scheduler to co-locate the task with its
// group.
type LocalityHint = locality.HintMsg

// NewNestScheduler builds the Nest-inspired warm-core extension scheduler:
// it consolidates light loads onto a small set of warm cores, expanding
// only under saturation (not part of the paper's evaluation; see the nest
// package comment).
func NewNestScheduler(env Env, policy int) Scheduler { return nest.New(env, policy) }

// NewArbiterScheduler builds the Enoki port of the Arachne core arbiter
// (§4.2.4) managing the given cores.
func NewArbiterScheduler(env Env, policy int, managed []int) Scheduler {
	return arbiter.New(env, policy, managed)
}

// Arbiter message types for the bidirectional queues.
type (
	CoreRequest        = arbiter.CoreRequest
	RegisterActivation = arbiter.RegisterActivation
	GrantMsg           = arbiter.GrantMsg
	ReclaimMsg         = arbiter.ReclaimMsg
)

// ArachneRuntime is the two-level user threading runtime of §5.6.
type ArachneRuntime = arachne.Runtime

// ArachneConfig tunes the runtime.
type ArachneConfig = arachne.Config

// UserThread is one unit of user-level work.
type UserThread = arachne.UserThread

// NewArachneRuntime builds a runtime; attach it to an Enoki arbiter with
// AttachArachne.
func NewArachneRuntime(k *Kernel, cfg ArachneConfig) *ArachneRuntime {
	return arachne.NewRuntime(k, cfg)
}

// DefaultArachneConfig returns the calibrated runtime parameters.
func DefaultArachneConfig() ArachneConfig { return arachne.DefaultConfig() }

// AttachArachne wires a runtime to an Enoki arbiter through the hint queues.
func AttachArachne(rt *ArachneRuntime, ad *Adapter, procID int, acts []*Task) {
	arachne.AttachEnoki(rt, ad, procID, acts)
}

// --- record and replay (§3.4) ------------------------------------------------

// Recorder captures every scheduler message and lock operation.
type Recorder = record.Recorder

// RecordCosts models what recording costs the live system.
type RecordCosts = record.Costs

// NewRecorder builds a recorder writing to w; drainPolicy is the scheduler
// class its userspace drain task runs in (normally the CFS policy id).
// Install it with Adapter.SetRecorder.
func NewRecorder(k *Kernel, w io.Writer, drainPolicy int) *Recorder {
	return record.New(k, w, drainPolicy, record.DefaultCosts())
}

// ReplayConfig tunes a replay run.
type ReplayConfig = replay.Config

// ReplayResult summarises a replay.
type ReplayResult = replay.Result

// Replay runs a recorded log against a fresh module at userspace,
// validating every decision against the recording.
func Replay(rd io.Reader, cfg ReplayConfig, factory func(Env) Scheduler) (*ReplayResult, error) {
	return replay.Replay(rd, cfg, func(env core.Env) core.Scheduler { return factory(env) })
}
