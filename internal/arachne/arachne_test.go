package arachne_test

import (
	"testing"
	"time"

	"enoki/internal/arachne"
	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/arbiter"
	"enoki/internal/sim"
)

const (
	policyCFS     = 0
	policyArbiter = 11
	procID        = 1
)

func managedCores() []int { return []int{1, 2, 3, 4, 5, 6, 7} }

func rig() (*kernel.Kernel, *enokic.Adapter, *arachne.Runtime) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	ad := enokic.Load(k, policyArbiter, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		return arbiter.New(env, policyArbiter, managedCores())
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	rt := arachne.NewRuntime(k, arachne.DefaultConfig())
	acts := rt.Start(policyArbiter, 7)
	arachne.AttachEnoki(rt, ad, procID, acts)
	return k, ad, rt
}

func TestUserThreadsComplete(t *testing.T) {
	k, ad, rt := rig()
	k.RunFor(time.Millisecond)
	done := 0
	for i := 0; i < 100; i++ {
		rt.Submit(arachne.UserThread{Service: 3 * time.Microsecond, Done: func() { done++ }})
	}
	k.RunFor(50 * time.Millisecond)
	if done != 100 {
		t.Fatalf("user threads completed: %d/100", done)
	}
	if st := ad.Stats(); st.PntErrs != 0 {
		t.Fatalf("pnt_errs: %+v", st)
	}
}

func TestCoreScalingUpAndDown(t *testing.T) {
	k, ad, rt := rig()
	rt.StartEstimator()
	k.RunFor(5 * time.Millisecond)
	sched := ad.Scheduler().(*arbiter.Sched)

	// Heavy load: a steady stream of long user threads should push the
	// request up toward MaxCores.
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for i := 0; i < 8; i++ {
			rt.Submit(arachne.UserThread{Service: 500 * time.Microsecond, Done: func() {}})
		}
		k.Engine().After(400*time.Microsecond, pump)
	}
	k.Engine().After(0, pump)
	k.RunFor(100 * time.Millisecond)
	peak := sched.GrantedCores(procID)
	if peak < 5 {
		t.Fatalf("under load granted %d cores, want near max (7)", peak)
	}

	// Load stops: the estimator should release cores back toward min.
	stop = true
	k.RunFor(200 * time.Millisecond)
	low := sched.GrantedCores(procID)
	if low > 3 {
		t.Fatalf("after idle granted %d cores, want near min (2)", low)
	}
	if sched.Grants == 0 || sched.Reclaims == 0 {
		t.Fatalf("arbitration never exercised: grants=%d reclaims=%d", sched.Grants, sched.Reclaims)
	}
}

func TestActivationsRunOnGrantedCoresOnly(t *testing.T) {
	k, ad, rt := rig()
	rt.StartEstimator()
	var pump func()
	pump = func() {
		for i := 0; i < 4; i++ {
			rt.Submit(arachne.UserThread{Service: 200 * time.Microsecond, Done: func() {}})
		}
		k.Engine().After(200*time.Microsecond, pump)
	}
	k.Engine().After(0, pump)
	k.RunFor(50 * time.Millisecond)
	_ = ad
	// Core 0 is unmanaged: activations must not consume it once cores
	// are granted (tasks may touch it only before registration).
	busy0 := k.CPUBusy(0)
	k.RunFor(50 * time.Millisecond)
	if grow := k.CPUBusy(0) - busy0; grow > 5*time.Millisecond {
		t.Fatalf("unmanaged core 0 consumed %v of activation time", grow)
	}
}

func TestUserLevelLatencyIsSubMicrosecond(t *testing.T) {
	// The Table 3/4 property: user-thread dispatch through a spinning
	// activation never enters the kernel, so latency is ~switch cost.
	k, _, rt := rig()
	k.RunFor(time.Millisecond)
	// Warm up: keep one activation spinning.
	rt.Submit(arachne.UserThread{Service: time.Microsecond, Done: func() {}})
	k.RunFor(time.Millisecond)

	var lat []time.Duration
	var round func()
	n := 0
	round = func() {
		n++
		if n > 50 {
			return
		}
		start := k.Now()
		rt.Submit(arachne.UserThread{Service: 500 * time.Nanosecond, Done: func() {
			lat = append(lat, k.Now().Sub(start))
			k.Engine().After(2*time.Microsecond, round)
		}})
	}
	k.Engine().After(0, round)
	k.RunFor(100 * time.Millisecond)
	if len(lat) < 50 {
		t.Fatalf("rounds completed: %d", len(lat))
	}
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	mean := sum / time.Duration(len(lat))
	if mean > 3*time.Microsecond {
		t.Fatalf("user-level dispatch latency %v, want ~µs or below", mean)
	}
}

func TestNativeArbiterGrants(t *testing.T) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	rt := arachne.NewRuntime(k, arachne.DefaultConfig())
	acts := rt.Start(policyCFS, 7)
	na := arachne.NewNativeArbiter(k, managedCores())
	na.Attach(rt, procID, acts)
	rt.StartEstimator()

	done := 0
	var pump func()
	stop := false
	pump = func() {
		if stop {
			return
		}
		for i := 0; i < 8; i++ {
			rt.Submit(arachne.UserThread{Service: 400 * time.Microsecond, Done: func() { done++ }})
		}
		k.Engine().After(400*time.Microsecond, pump)
	}
	k.Engine().After(0, pump)
	k.RunFor(50 * time.Millisecond)
	peak := rt.Granted()
	stop = true
	k.RunFor(50 * time.Millisecond)
	if done == 0 {
		t.Fatal("native-arbiter runtime did no work")
	}
	if peak < 3 {
		t.Fatalf("native arbiter granted %d cores under load", peak)
	}
}
