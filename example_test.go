package enoki_test

import (
	"bytes"
	"fmt"
	"time"

	"enoki"
)

// Example demonstrates loading a shipped scheduler and running a task on
// it — the smallest complete use of the public API.
func Example() {
	k := enoki.NewKernel(enoki.NewEngine(), enoki.Machine8(), enoki.DefaultCosts())
	ad := enoki.Load(k, 1, enoki.DefaultConfig(),
		func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, 1) })
	k.RegisterClass(0, enoki.NewCFS(k))

	done := false
	remaining := 5 * time.Millisecond
	k.Spawn("hello", 1, enoki.BehaviorFunc(func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
		if remaining <= 0 {
			done = true
			return enoki.Action{Op: enoki.OpExit}
		}
		remaining -= time.Millisecond
		return enoki.Action{Run: time.Millisecond, Op: enoki.OpContinue}
	}))
	k.RunFor(50 * time.Millisecond)

	fmt.Println("task finished:", done)
	fmt.Println("invalid picks caught:", ad.Stats().PntErrs)
	// Output:
	// task finished: true
	// invalid picks caught: 0
}

// ExampleAdapter_Upgrade shows a live upgrade: the module is replaced under
// load with a µs-scale blackout and no lost tasks.
func ExampleAdapter_Upgrade() {
	eng := enoki.NewEngine()
	k := enoki.NewKernel(eng, enoki.Machine8(), enoki.DefaultCosts())
	ad := enoki.Load(k, 1, enoki.DefaultConfig(),
		func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, 1) })
	k.RegisterClass(0, enoki.NewCFS(k))

	finished := 0
	for i := 0; i < 4; i++ {
		remaining := 10 * time.Millisecond
		k.Spawn("w", 1, enoki.BehaviorFunc(func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
			if remaining <= 0 {
				finished++
				return enoki.Action{Op: enoki.OpExit}
			}
			remaining -= 500 * time.Microsecond
			return enoki.Action{Run: 500 * time.Microsecond, Op: enoki.OpContinue}
		}))
	}

	var blackout time.Duration
	eng.After(2*time.Millisecond, func() {
		ad.Upgrade(func(env enoki.Env) enoki.Scheduler {
			return enoki.NewWFQScheduler(env, 1) // version 2
		}, func(r enoki.UpgradeReport) { blackout = r.Blackout })
	})
	k.RunFor(100 * time.Millisecond)

	fmt.Println("tasks finished:", finished)
	fmt.Println("blackout:", blackout)
	// Output:
	// tasks finished: 4
	// blackout: 1.52µs
}

// ExampleReplay records a short run and replays the same scheduler code at
// userspace, validating every decision.
func ExampleReplay() {
	k := enoki.NewKernel(enoki.NewEngine(), enoki.Machine8(), enoki.DefaultCosts())
	ad := enoki.Load(k, 1, enoki.DefaultConfig(),
		func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, 1) })
	k.RegisterClass(0, enoki.NewCFS(k))

	var log bytes.Buffer
	rec := enoki.NewRecorder(k, &log, 0)
	ad.SetRecorder(rec)

	remaining := 2 * time.Millisecond
	k.Spawn("traced", 1, enoki.BehaviorFunc(func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
		if remaining <= 0 {
			return enoki.Action{Op: enoki.OpExit}
		}
		remaining -= 200 * time.Microsecond
		return enoki.Action{Run: 200 * time.Microsecond, Op: enoki.OpSleep, SleepFor: 100 * time.Microsecond}
	}))
	k.RunFor(20 * time.Millisecond)
	rec.Close()

	res, err := enoki.Replay(bytes.NewReader(log.Bytes()),
		enoki.ReplayConfig{NumCPUs: 8},
		func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, 1) })
	if err != nil {
		panic(err)
	}
	fmt.Println("divergences:", len(res.Divergences))
	// Output:
	// divergences: 0
}

// ExampleAdapter_CreateHintQueue sends a userspace hint to the locality
// scheduler, co-locating two tasks.
func ExampleAdapter_CreateHintQueue() {
	k := enoki.NewKernel(enoki.NewEngine(), enoki.Machine8(), enoki.DefaultCosts())
	ad := enoki.Load(k, 1, enoki.DefaultConfig(),
		func(env enoki.Env) enoki.Scheduler { return enoki.NewLocalityScheduler(env, 1) })
	k.RegisterClass(0, enoki.NewCFS(k))

	mk := func() enoki.Behavior {
		n := 0
		return enoki.BehaviorFunc(func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
			n++
			if n > 100 {
				return enoki.Action{Op: enoki.OpExit}
			}
			return enoki.Action{Run: 20 * time.Microsecond, Op: enoki.OpSleep, SleepFor: 80 * time.Microsecond}
		})
	}
	a := k.Spawn("a", 1, mk())
	b := k.Spawn("b", 1, mk())

	q := ad.CreateHintQueue(16)
	q.Send(enoki.LocalityHint{PID: a.PID(), Locality: 42})
	q.Send(enoki.LocalityHint{PID: b.PID(), Locality: 42})
	k.RunFor(5 * time.Millisecond)

	fmt.Println("co-located:", a.CPU() == b.CPU())
	// Output:
	// co-located: true
}
