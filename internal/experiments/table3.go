package experiments

import (
	"fmt"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/stats"
	"enoki/internal/workload"
)

// Table3Row is one scheduler's pipe latency.
type Table3Row struct {
	Sched   string
	OneCore time.Duration
	TwoCore time.Duration
}

// Table3Result reproduces Table 3: perf bench sched pipe latency per wakeup
// for every scheduler, one- and two-core configurations.
type Table3Result struct {
	Rows     []Table3Row
	Messages int
}

// Name implements the experiment naming convention.
func (r *Table3Result) Name() string { return "table3" }

func (r *Table3Result) String() string {
	t := stats.NewTable("Message Latency (µs)", "One Core", "Two Cores")
	for _, row := range r.Rows {
		t.Row(row.Sched, usNum(row.OneCore), usNum(row.TwoCore))
	}
	return "Table 3: scheduler latency for perf bench sched pipe (µs per wakeup)\n" +
		fmt.Sprintf("messages per run: %d\n", r.Messages) + t.String()
}

func usNum(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// Table3 runs the pipe benchmark across all Table 3 schedulers.
func Table3(o Options) *Table3Result {
	messages := scaleInt(o, 300000, 20000)
	res := &Table3Result{Messages: messages}

	kinds := []Kind{KindCFS, KindGhostSOL, KindGhostFIFO, KindWFQ, KindShinjuku, KindLocality}
	for _, kind := range kinds {
		var lat [2]time.Duration
		for i, sameCore := range []bool{true, false} {
			r := NewRig(kernel.Machine8(), kind)
			pr := workload.RunPipe(r.K, workload.PipeConfig{
				Policy:   r.Policy,
				Messages: messages,
				SameCore: sameCore,
			})
			lat[i] = pr.PerWakeup
		}
		res.Rows = append(res.Rows, Table3Row{Sched: kind.String(), OneCore: lat[0], TwoCore: lat[1]})
	}

	// Arachne: the ping-pong runs as user threads on the runtime.
	var lat [2]time.Duration
	for i, cores := range []int{1, 2} {
		r, rt := NewArachneRig(kernel.Machine8(), cores, cores)
		pr := workload.RunArachnePipe(r.K, rt, messages, cores == 2)
		lat[i] = pr.PerWakeup
	}
	res.Rows = append(res.Rows, Table3Row{Sched: "Arachne", OneCore: lat[0], TwoCore: lat[1]})
	return res
}
