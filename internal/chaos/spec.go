// Shared replay-spec plumbing. All three campaign planes render their
// reproducer as <prefix>:<class>:<seed hex>:<mask hex> — one line that
// regenerates the whole fault plan — so they share one hardened splitter
// rather than three drifting copies. The splitter rejects truncated or
// padded specs, empty fields, and unparseable hex up front; the per-plane
// parsers keep only their own class rules and the mask-bounds check
// (which needs the generated event count).

package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// splitSpec validates the common spec shape and returns its fields. shape
// is the human-readable form for error messages (e.g.
// "r1:<class>:<seed>:<mask>").
func splitSpec(spec, prefix, shape string) (class string, seed, mask uint64, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 || parts[0] != prefix {
		return "", 0, 0, fmt.Errorf("chaos: bad spec %q (want %s)", spec, shape)
	}
	if parts[1] == "" {
		return "", 0, 0, fmt.Errorf("chaos: empty class in spec %q", spec)
	}
	seed, err = strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return "", 0, 0, fmt.Errorf("chaos: bad seed in spec %q: %v", spec, err)
	}
	mask, err = strconv.ParseUint(parts[3], 16, 64)
	if err != nil {
		return "", 0, 0, fmt.Errorf("chaos: bad mask in spec %q: %v", spec, err)
	}
	return parts[1], seed, mask, nil
}

// checkMask rejects a spec mask with bits beyond the generated event
// count. Silently truncating such a mask (the old behaviour) would make a
// corrupted spec replay a *different*, smaller fault plan and still claim
// to be the reproducer; better to refuse it outright.
func checkMask(mask, full uint64, n int) error {
	if mask&^full != 0 {
		return fmt.Errorf("chaos: mask %x has bits beyond the %d generated events", mask, n)
	}
	return nil
}
