package enokic

import (
	"enoki/internal/core"
	"enoki/internal/trace"
)

// UserQueue is the userspace handle to a registered hint queue: the analogue
// of a process's mmap'd ring plus the notification path into the module
// (§3.3). Workload models send scheduler-defined hints through it.
type UserQueue struct {
	a  *Adapter
	q  *core.HintQueue
	id int
}

// ID returns the module-assigned queue id.
func (u *UserQueue) ID() int { return u.id }

// Send pushes a hint and notifies the module via enter_queue. It reports
// false if the ring overflowed (the hint was dropped, as in shared memory).
func (u *UserQueue) Send(h core.Hint) bool {
	if u.a.recorder != nil {
		m := u.a.getMsg()
		m.Kind, m.Seq, m.Thread = core.MsgHintPush, u.a.nextSeq(), -1
		m.Now, m.QueueID, m.Hint = int64(u.a.k.Now()), u.id, h
		u.a.recorder.RecordMessage(m)
		u.a.putMsg(m)
	}
	if !u.q.Push(h) {
		// Overflow sheds the hint exactly as a full shared-memory ring
		// would — but never silently: the drop is counted per class, tapped
		// into metrics, and traced unsampled (drops are the overload signal).
		u.a.stats.HintsDropped++
		if u.a.met != nil {
			u.a.met.CPU(-1).HintsDropped++
		}
		if u.a.tracer != nil {
			u.a.tracer.EmitAlways(trace.Event{
				Ts:     int64(u.a.k.Now()),
				Kind:   trace.KindHintDrop,
				CPU:    -1,
				Policy: int32(u.a.policy),
				Arg:    int64(u.id),
			})
		}
		return false
	}
	u.a.stats.HintsDelivered++
	if u.a.met != nil {
		u.a.met.CPU(-1).HintsDelivered++
	}
	if u.a.tracer != nil {
		u.a.tracer.Emit(trace.Event{
			Ts:     int64(u.a.k.Now()),
			Kind:   trace.KindHint,
			CPU:    -1,
			Policy: int32(u.a.policy),
			Arg:    int64(u.id),
		})
	}
	// notify (not dispatch): hint delivery queues behind an in-flight
	// upgrade like every other module entry (§3.2's quiesce).
	m := u.a.getMsg()
	m.Kind, m.Thread, m.QueueID, m.Count = core.MsgEnterQueue, -1, u.id, 1
	u.a.notify(m)
	return true
}

// SendSync delivers a hint through the synchronous parse_hint path (it too
// waits out an in-flight upgrade). The path has no ring, so it counts as
// delivered and can never drop.
func (u *UserQueue) SendSync(h core.Hint) {
	u.a.stats.HintsDelivered++
	if u.a.met != nil {
		u.a.met.CPU(-1).HintsDelivered++
	}
	m := u.a.getMsg()
	m.Kind, m.Thread, m.Hint = core.MsgParseHint, -1, h
	u.a.notify(m)
}

// Close unregisters the queue from the module. Like Send/SendSync it goes
// through the notify path, so a close issued during a live-upgrade blackout
// waits for the swap and unregisters from the new module. The framework
// drops its own table entry when the dispatch completes and kills the
// module if it hands back the wrong queue (FaultQueueLie).
//
// Close is idempotent: calling it again after the queue is unregistered is
// a no-op. The guard is ownership, not a boolean — Close dispatches only
// while the adapter's table still maps this handle's id to this handle's
// queue — so a stale handle can never tear down a newer queue that was
// registered under a reused id. (Modules are free to recycle ids; the
// kernel-side table is the source of truth for who owns one.)
func (u *UserQueue) Close() {
	if u.a.queues[u.id] != u.q {
		return
	}
	m := u.a.getMsg()
	m.Kind, m.Thread, m.QueueID = core.MsgUnregisterQueue, -1, u.id
	u.a.notify(m)
}

func (a *Adapter) nextSeq() uint64 {
	s := a.seq
	a.seq++
	return s
}

// record logs a control-plane message (no dispatch) and recycles it.
func (a *Adapter) record(m *core.Message) {
	if a.recorder != nil {
		m.Seq = a.nextSeq()
		m.Now = int64(a.k.Now())
		a.recorder.RecordMessage(m)
	}
	a.putMsg(m)
}

// CreateHintQueue builds a user-to-kernel hint queue of the given capacity
// and registers it with the module, returning the userspace handle. A module
// that does not support hints (returns a negative id) yields a nil handle.
func (a *Adapter) CreateHintQueue(capacity int) *UserQueue {
	q := core.NewHintQueue(capacity)
	id := a.sched.RegisterQueue(q)
	m := a.getMsg()
	m.Kind, m.Thread, m.QueueID, m.Count = core.MsgRegisterQueue, -1, id, capacity
	a.record(m)
	if id < 0 {
		return nil
	}
	a.queues[id] = q
	return &UserQueue{a: a, q: q, id: id}
}

// CloseRevQueue unregisters a reverse queue previously returned by
// CreateRevQueue, with the same quiesce and lie-detection semantics as
// UserQueue.Close. Closing a queue this adapter does not own is a no-op,
// which makes double-close safe by construction: the lookup is by queue
// pointer, the first close removes the table entry, and a repeat close
// finds nothing to unregister.
func (a *Adapter) CloseRevQueue(q *core.RevQueue) {
	for id, have := range a.revQueues {
		if have == q {
			m := a.getMsg()
			m.Kind, m.Thread, m.QueueID = core.MsgUnregisterRevQueue, -1, id
			a.notify(m)
			return
		}
	}
}

// CreateRevQueue builds a kernel-to-user queue, registers it, and returns it
// for the user side to drain (or observe via OnPush). Returns nil if the
// module rejects it.
func (a *Adapter) CreateRevQueue(capacity int) *core.RevQueue {
	q := core.NewRevQueue(capacity)
	q.Deferrer = func(fn func()) { a.k.Engine().After(0, fn) }
	id := a.sched.RegisterReverseQueue(q)
	m := a.getMsg()
	m.Kind, m.Thread, m.QueueID, m.Count = core.MsgRegisterRevQueue, -1, id, capacity
	a.record(m)
	if id < 0 {
		return nil
	}
	a.revQueues[id] = q
	return q
}
