package core

import (
	"fmt"
	"time"
)

// Kind identifies which trait function a Message invokes. The numbering is
// part of the record-log format.
type Kind int

// Message kinds. The first block are scheduler calls replayed through
// Dispatch; the second block are control-plane events the record log also
// carries (queue registration, hint pushes, lock operations are logged
// separately as LockEvents).
const (
	MsgInvalid Kind = iota
	MsgPickNextTask
	MsgPntErr
	MsgTaskDead
	MsgTaskBlocked
	MsgTaskWakeup
	MsgTaskNew
	MsgTaskPreempt
	MsgTaskYield
	MsgTaskDeparted
	MsgTaskAffinityChanged
	MsgTaskPrioChanged
	MsgTaskTick
	MsgSelectTaskRQ
	MsgMigrateTaskRQ
	MsgBalance
	MsgBalanceErr
	MsgEnterQueue
	MsgParseHint

	MsgRegisterQueue
	MsgRegisterRevQueue
	MsgUnregisterQueue
	MsgUnregisterRevQueue
	MsgHintPush
	MsgModuleFault
)

var kindNames = map[Kind]string{
	MsgPickNextTask:        "pick_next_task",
	MsgPntErr:              "pnt_err",
	MsgTaskDead:            "task_dead",
	MsgTaskBlocked:         "task_blocked",
	MsgTaskWakeup:          "task_wakeup",
	MsgTaskNew:             "task_new",
	MsgTaskPreempt:         "task_preempt",
	MsgTaskYield:           "task_yield",
	MsgTaskDeparted:        "task_departed",
	MsgTaskAffinityChanged: "task_affinity_changed",
	MsgTaskPrioChanged:     "task_prio_changed",
	MsgTaskTick:            "task_tick",
	MsgSelectTaskRQ:        "select_task_rq",
	MsgMigrateTaskRQ:       "migrate_task_rq",
	MsgBalance:             "balance",
	MsgBalanceErr:          "balance_err",
	MsgEnterQueue:          "enter_queue",
	MsgParseHint:           "parse_hint",
	MsgRegisterQueue:       "register_queue",
	MsgRegisterRevQueue:    "register_reverse_queue",
	MsgUnregisterQueue:     "unregister_queue",
	MsgUnregisterRevQueue:  "unregister_rev_queue",
	MsgHintPush:            "hint_push",
	MsgModuleFault:         "module_fault",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Message is the per-function "message" data structure of §3.1: Enoki-C
// pulls the fields the call needs from kernel data structures, places them
// here, and hands the message to libEnoki's processing function (Dispatch),
// which calls the scheduler and writes any return value back in. Because
// every argument and reply crosses in this one flat struct, recording the
// message stream is sufficient to replay the scheduler exactly.
type Message struct {
	Kind   Kind
	Seq    uint64
	Thread int   // kernel thread identity (CPU id; -1 for user context)
	Now    int64 // virtual time, ns

	PID        int
	CPU        int
	Runtime    time.Duration
	LastCPU    int
	WakeCPU    int
	NewCPU     int
	PrevCPU    int
	Prio       int
	Runnable   bool
	Wakeup     bool
	Deferrable bool
	Queued     bool
	Preempted  bool
	ErrCode    int
	BalancePID uint64
	QueueID    int
	Count      int
	Allowed    []int
	Hint       Hint
	Sched      *SchedulableRef

	// Reply fields, written by Dispatch.
	RetSched *SchedulableRef
	RetCPU   int
	RetPID   uint64
	RetOK    bool

	// Live-path token plumbing: the actual token objects, which never
	// enter the record log (unexported ⇒ skipped by gob).
	schedObj    *Schedulable
	retSchedObj *Schedulable

	// retQueue carries the *HintQueue / *RevQueue an unregister call
	// returned; like the tokens it is live-path only and never recorded.
	retQueue any

	// Inline backing storage for Sched/RetSched and the replay-path token.
	// AttachSched/setRet point the exported ref pointers here so building a
	// message allocates nothing; Clone re-points them into the copy.
	schedRef  SchedulableRef
	retRef    SchedulableRef
	replayTok Schedulable
}

// Reset zeroes the message for reuse, keeping the Allowed backing array so a
// pooled message re-fills it without allocating.
func (m *Message) Reset() {
	allowed := m.Allowed[:0]
	*m = Message{}
	m.Allowed = allowed
}

// Clone returns a deep snapshot safe to retain after the original is Reset
// or recycled: the ref pointers are re-pointed at the clone's inline buffers
// and the Allowed slice is copied. Live token objects do not travel — clones
// exist for record logs, which carry only the wire fields.
func (m *Message) Clone() *Message {
	cp := *m
	if m.Sched != nil {
		cp.schedRef = *m.Sched
		cp.Sched = &cp.schedRef
	}
	if m.RetSched != nil {
		cp.retRef = *m.RetSched
		cp.RetSched = &cp.retRef
	}
	if len(m.Allowed) > 0 {
		cp.Allowed = append([]int(nil), m.Allowed...)
	} else {
		cp.Allowed = nil
	}
	cp.schedObj = nil
	cp.retSchedObj = nil
	cp.retQueue = nil
	return &cp
}

// AttachSched sets the live token object the call delivers to the module.
func (m *Message) AttachSched(s *Schedulable) {
	m.schedObj = s
	if s == nil {
		m.Sched = nil
		return
	}
	m.schedRef = SchedulableRef{PID: s.pid, CPU: s.cpu, Gen: s.gen}
	m.Sched = &m.schedRef
}

// TakeRetSched returns the token object the module handed back.
func (m *Message) TakeRetSched() *Schedulable { return m.retSchedObj }

// AttachedSched returns the live token attached with AttachSched (nil when
// the message carries none). The framework uses it to audit queued messages
// — e.g. dropping a deferred notification whose proof was superseded while
// it waited out an upgrade blackout.
func (m *Message) AttachedSched() *Schedulable { return m.schedObj }

// TakeRetQueue returns the queue object an unregister call handed back
// (*HintQueue or *RevQueue, possibly nil if the module lost it).
func (m *Message) TakeRetQueue() any { return m.retQueue }

// inSched returns the token to pass to the module: the live object when the
// framework attached one, otherwise a token materialised from the recorded
// ref into the message's inline scratch slot (replay path — each replayed
// message is a fresh copy, so a module retaining the token is safe).
func (m *Message) inSched() *Schedulable {
	if m.schedObj != nil {
		return m.schedObj
	}
	if m.Sched == nil {
		return nil
	}
	m.replayTok = Schedulable{pid: m.Sched.PID, cpu: m.Sched.CPU, gen: m.Sched.Gen}
	return &m.replayTok
}

func (m *Message) setRet(s *Schedulable) {
	m.retSchedObj = s
	if s == nil {
		m.RetSched = nil
		return
	}
	m.retRef = SchedulableRef{PID: s.pid, CPU: s.cpu, Gen: s.gen}
	m.RetSched = &m.retRef
}

// Dispatch is libEnoki's processing function: it parses the message,
// invokes the corresponding trait function on the scheduler, and writes the
// return value back into the message. The live kernel path and userspace
// replay both go through this one function, which is what guarantees "the
// exact same scheduler code is run during both record and replay" (§3.4).
func Dispatch(s Scheduler, m *Message) {
	switch m.Kind {
	case MsgPickNextTask:
		m.setRet(s.PickNextTask(m.CPU, m.inSched(), m.Runtime))
	case MsgPntErr:
		s.PntErr(m.CPU, m.PID, PickError(m.ErrCode), m.inSched())
	case MsgTaskDead:
		s.TaskDead(m.PID)
	case MsgTaskBlocked:
		s.TaskBlocked(m.PID, m.Runtime, m.CPU)
	case MsgTaskWakeup:
		s.TaskWakeup(m.PID, m.Runtime, m.Deferrable, m.LastCPU, m.WakeCPU, m.inSched())
	case MsgTaskNew:
		s.TaskNew(m.PID, m.Runtime, m.Runnable, m.Allowed, m.inSched())
	case MsgTaskPreempt:
		s.TaskPreempt(m.PID, m.Runtime, m.CPU, m.Preempted, m.inSched())
	case MsgTaskYield:
		s.TaskYield(m.PID, m.Runtime, m.CPU, m.inSched())
	case MsgTaskDeparted:
		m.setRet(s.TaskDeparted(m.PID, m.CPU))
	case MsgTaskAffinityChanged:
		s.TaskAffinityChanged(m.PID, m.Allowed)
	case MsgTaskPrioChanged:
		s.TaskPrioChanged(m.PID, m.Prio)
	case MsgTaskTick:
		s.TaskTick(m.CPU, m.Queued, m.PID, m.Runtime)
	case MsgSelectTaskRQ:
		m.RetCPU = s.SelectTaskRQ(m.PID, m.PrevCPU, m.Wakeup)
	case MsgMigrateTaskRQ:
		m.setRet(s.MigrateTaskRQ(m.PID, m.NewCPU, m.inSched()))
	case MsgBalance:
		m.RetPID, m.RetOK = s.Balance(m.CPU)
	case MsgBalanceErr:
		s.BalanceErr(m.CPU, m.BalancePID, m.inSched())
	case MsgEnterQueue:
		s.EnterQueue(m.QueueID, m.Count)
	case MsgParseHint:
		s.ParseHint(m.Hint)
	case MsgUnregisterQueue:
		m.retQueue = s.UnregisterQueue(m.QueueID)
	case MsgUnregisterRevQueue:
		m.retQueue = s.UnregisterRevQueue(m.QueueID)
	default:
		panic(fmt.Sprintf("core: Dispatch of non-dispatchable message %v", m.Kind))
	}
}

// LockOp is a lock lifecycle event kind in the record log.
type LockOp int

// Lock operations.
const (
	LockCreate LockOp = iota + 1
	LockAcquire
	LockRelease
)

func (op LockOp) String() string {
	switch op {
	case LockCreate:
		return "create"
	case LockAcquire:
		return "acquire"
	case LockRelease:
		return "release"
	default:
		return "invalid"
	}
}

// LockEvent records one lock operation: which lock (by framework-assigned
// id, the analogue of the paper's lock address), which kernel thread, and
// what happened. Replaying acquisitions in id order per lock reproduces the
// scheduler's synchronisation schedule (§3.4).
type LockEvent struct {
	Op     LockOp
	LockID int
	Name   string
	Thread int
	Seq    uint64
}

// Recorder receives the record stream. The live implementation
// (internal/record) pushes into a ring buffer drained by a userspace writer
// task; tests use in-memory recorders.
type Recorder interface {
	// RecordMessage logs a completed scheduler message (reply included).
	RecordMessage(m *Message)
	// RecordLock logs a lock lifecycle event.
	RecordLock(ev LockEvent)
}
