// Package shinjuku is the Enoki version of the Shinjuku scheduler (§4.2.2):
// centralized first-come-first-serve with µs-scale preemption, built for
// workloads that mix short high-priority requests with long low-priority
// ones. The original runs on Dune with a 5 µs quantum; the Enoki port (285
// lines of Rust in the paper) approximates the single FCFS queue across the
// kernel's per-CPU run queues and uses a 10 µs preemption timer "to prevent
// overloading the scheduler".
package shinjuku

import (
	"time"

	"enoki/internal/core"
)

// DefaultSlice is the Enoki Shinjuku preemption quantum.
const DefaultSlice = 10 * time.Microsecond

type task struct {
	pid     int
	seq     uint64 // global FCFS arrival order
	sched   *core.Schedulable
	cpu     int
	queued  bool
	allowed []bool
}

func (t *task) allows(cpu int) bool { return t.allowed == nil || t.allowed[cpu] }

type state struct {
	tasks   map[int]*task
	queues  [][]*task // per-CPU, ascending seq
	busy    []int     // per-CPU running pid (0 = idle)
	nextSeq uint64
}

// Sched is the Enoki Shinjuku scheduler module.
type Sched struct {
	core.BaseScheduler
	env    core.Env
	policy int
	slice  time.Duration
	mu     core.Locker
	st     *state

	// degraded is the brownout mode (core.BrownoutMode): under overload
	// the module gives up its tight preemption slice and runs everything
	// at the long uncontended quantum, shedding the timer/preemption
	// churn that amplifies queueing right when capacity matters most.
	degraded bool

	// Preemptions counts timer-driven requeues (tests/ablations).
	Preemptions uint64
}

var (
	_ core.Scheduler    = (*Sched)(nil)
	_ core.BrownoutMode = (*Sched)(nil)
)

// New constructs the module with the given preemption slice (0 means
// DefaultSlice).
func New(env core.Env, policy int, slice time.Duration) *Sched {
	if slice <= 0 {
		slice = DefaultSlice
	}
	s := &Sched{env: env, policy: policy, slice: slice, mu: env.NewMutex("shinjuku")}
	s.st = &state{
		tasks:  make(map[int]*task),
		queues: make([][]*task, env.NumCPUs()),
		busy:   make([]int, env.NumCPUs()),
	}
	return s
}

// GetPolicy implements core.Scheduler.
func (s *Sched) GetPolicy() int { return s.policy }

// SetDegraded implements core.BrownoutMode: degraded shinjuku stops
// arming the tight quantum (tightSlice returns the long one), trading
// tail-optimal preemption for lower scheduling overhead until the
// overload plane samples the queues back under the exit threshold.
func (s *Sched) SetDegraded(on bool) {
	s.mu.Lock()
	s.degraded = on
	s.mu.Unlock()
}

// tightSlice is the quantum used when another task is waiting. Callers
// hold mu.
func (s *Sched) tightSlice() time.Duration {
	if s.degraded {
		return time.Millisecond
	}
	return s.slice
}

func allowedSet(list []int, ncpu int) []bool {
	if len(list) == 0 || len(list) >= ncpu {
		return nil
	}
	set := make([]bool, ncpu)
	for _, c := range list {
		if c >= 0 && c < ncpu {
			set[c] = true
		}
	}
	return set
}

// push appends t at the global FCFS tail of cpu's queue.
func (s *Sched) push(t *task, cpu int, sched *core.Schedulable) {
	t.seq = s.st.nextSeq
	s.st.nextSeq++
	t.cpu = cpu
	t.queued = true
	t.sched = sched
	s.st.queues[cpu] = append(s.st.queues[cpu], t)
}

func (s *Sched) remove(t *task) {
	q := s.st.queues[t.cpu]
	for i, e := range q {
		if e == t {
			s.st.queues[t.cpu] = append(append([]*task{}, q[:i]...), q[i+1:]...)
			break
		}
	}
	t.queued = false
}

// shortestQueue returns the allowed CPU with the fewest waiting tasks,
// preferring the fallback (previous) CPU on ties for cache warmth.
func (s *Sched) shortestQueue(t *task, fallback int) int {
	best, bestLen := -1, 1<<30
	if fallback >= 0 && fallback < len(s.st.queues) && (t == nil || t.allows(fallback)) {
		best, bestLen = fallback, len(s.st.queues[fallback])
	}
	for cpu, q := range s.st.queues {
		if t != nil && !t.allows(cpu) {
			continue
		}
		if len(q) < bestLen {
			best, bestLen = cpu, len(q)
		}
	}
	return best
}

// TaskNew implements core.Scheduler.
func (s *Sched) TaskNew(pid int, runtime time.Duration, runnable bool, allowed []int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &task{pid: pid, allowed: allowedSet(allowed, s.env.NumCPUs())}
	s.st.tasks[pid] = t
	if runnable && sched != nil {
		s.push(t, sched.CPU(), sched)
	}
}

// TaskWakeup implements core.Scheduler: join the FCFS tail; preempt the
// wake CPU only if it has been running its task beyond the slice (the timer
// normally handles that).
func (s *Sched) TaskWakeup(pid int, runtime time.Duration, deferrable bool, lastCPU, wakeCPU int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return
	}
	s.push(t, wakeCPU, sched)
	if s.st.busy[wakeCPU] != 0 {
		// Someone is running here: slice them at the tight quantum.
		s.env.ArmTimer(wakeCPU, s.tightSlice())
	}
}

// TaskPreempt implements core.Scheduler: back of the queue, new arrival
// order — this is what bounds long requests to slice-sized chunks.
func (s *Sched) TaskPreempt(pid int, runtime time.Duration, cpu int, preempted bool, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return
	}
	if s.st.busy[cpu] == pid {
		s.st.busy[cpu] = 0
	}
	s.Preemptions++
	s.push(t, cpu, sched)
}

// TaskYield implements core.Scheduler.
func (s *Sched) TaskYield(pid int, runtime time.Duration, cpu int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return
	}
	if s.st.busy[cpu] == pid {
		s.st.busy[cpu] = 0
	}
	s.push(t, cpu, sched)
}

// TaskBlocked implements core.Scheduler.
func (s *Sched) TaskBlocked(pid int, runtime time.Duration, cpu int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st.busy[cpu] == pid {
		s.st.busy[cpu] = 0
	}
	if t := s.st.tasks[pid]; t != nil {
		t.sched = nil
	}
}

// TaskDead implements core.Scheduler.
func (s *Sched) TaskDead(pid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.st.tasks[pid]; t != nil {
		if t.queued {
			s.remove(t)
		}
		delete(s.st.tasks, pid)
	}
}

// TaskDeparted implements core.Scheduler.
func (s *Sched) TaskDeparted(pid, cpu int) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return nil
	}
	if t.queued {
		s.remove(t)
	}
	delete(s.st.tasks, pid)
	tok := t.sched
	t.sched = nil
	return tok
}

// TaskAffinityChanged implements core.Scheduler.
func (s *Sched) TaskAffinityChanged(pid int, allowed []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.st.tasks[pid]; t != nil {
		t.allowed = allowedSet(allowed, s.env.NumCPUs())
	}
}

// PickNextTask implements core.Scheduler: run the oldest local arrival and
// arm the preemption timer. Arming on every operation is the cost the paper
// calls out in Table 3.
func (s *Sched) PickNextTask(cpu int, curr *core.Schedulable, currRuntime time.Duration) *core.Schedulable {
	s.mu.Lock()
	q := s.st.queues[cpu]
	if len(q) == 0 {
		s.mu.Unlock()
		return nil
	}
	t := q[0]
	s.st.queues[cpu] = q[1:]
	t.queued = false
	s.st.busy[cpu] = t.pid
	tok := t.sched
	t.sched = nil
	// Arm the reschedule timer on every pick (the per-operation cost
	// Table 3 attributes to this scheduler). The quantum is tight only
	// when another task is waiting here; uncontended tasks get a long
	// one "to prevent overloading the scheduler" (§4.2.2) — a wakeup
	// landing behind a running task re-arms the tight quantum below.
	slice := s.tightSlice()
	if len(s.st.queues[cpu]) == 0 {
		slice = time.Millisecond
	}
	s.mu.Unlock()
	s.env.ArmTimer(cpu, slice)
	return tok
}

// PntErr implements core.Scheduler.
func (s *Sched) PntErr(cpu int, pid int, err core.PickError, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil || sched == nil {
		return
	}
	if !t.queued {
		s.push(t, sched.CPU(), sched)
	}
}

// SelectTaskRQ implements core.Scheduler: shortest allowed queue, the
// centralized-dispatch approximation.
func (s *Sched) SelectTaskRQ(pid, prevCPU int, wakeup bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shortestQueue(s.st.tasks[pid], prevCPU)
}

// Balance implements core.Scheduler: when this CPU is empty, pull the
// globally oldest waiting task — this is what makes the per-CPU queues
// behave like one FCFS queue.
func (s *Sched) Balance(cpu int) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.st.queues[cpu]) > 0 {
		return 0, false
	}
	var oldest *task
	for qcpu, q := range s.st.queues {
		if qcpu == cpu || len(q) == 0 {
			continue
		}
		// A single task queued on an idle core is about to run there;
		// pulling it would just move the wakeup.
		if len(q) < 2 && s.st.busy[qcpu] == 0 {
			continue
		}
		head := q[0]
		if !head.allows(cpu) {
			continue
		}
		if oldest == nil || head.seq < oldest.seq {
			oldest = head
		}
	}
	if oldest == nil {
		return 0, false
	}
	return uint64(oldest.pid), true
}

// MigrateTaskRQ implements core.Scheduler: keep the arrival order, change
// the queue.
func (s *Sched) MigrateTaskRQ(pid, newCPU int, sched *core.Schedulable) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return nil
	}
	old := t.sched
	if t.queued {
		s.remove(t)
	}
	// Preserve seq: insert in order on the new queue.
	t.cpu = newCPU
	t.queued = true
	t.sched = sched
	q := s.st.queues[newCPU]
	pos := len(q)
	for i, e := range q {
		if e.seq > t.seq {
			pos = i
			break
		}
	}
	q = append(q, nil)
	copy(q[pos+1:], q[pos:])
	q[pos] = t
	s.st.queues[newCPU] = q
	if s.st.busy[newCPU] != 0 {
		s.env.ArmTimer(newCPU, s.tightSlice())
	}
	return old
}

// ReregisterPrepare implements core.Scheduler.
func (s *Sched) ReregisterPrepare() *core.TransferOut { return &core.TransferOut{State: s.st} }

// ReregisterInit implements core.Scheduler.
func (s *Sched) ReregisterInit(in *core.TransferIn) {
	if in == nil || in.State == nil {
		return
	}
	if st, ok := in.State.(*state); ok {
		s.st = st
	}
}
