package chaos

import (
	"reflect"
	"testing"
	"time"
)

// The spec parsers are the one place the chaos package consumes untrusted
// input: a spec string pasted from a CI log, a bug report, or a shell
// history. The fuzz targets pin two properties for arbitrary input:
// parsing never panics, and any spec that parses round-trips — rendering
// the schedule and re-parsing it reproduces the identical fault plan, so
// a one-line reproducer can never silently drift.

func FuzzParseRolloutSpec(f *testing.F) {
	f.Add(rolloutSpec)
	f.Add("r1:fifo:dead:1")
	f.Add("r1:shinjuku:5eed7:3")
	f.Add("r1:wfq:ffffffffffffffff:7")
	f.Add("r1:cfs:9:7")
	f.Add("f1:wfq:9:7")
	f.Add("r1:wfq:9:ffff")
	f.Add("r1:wfq:9")
	f.Add("r1::9:7")
	f.Add("r1:wfq:+9:7")
	f.Add("r1:wfq:9:7:")
	f.Add("r1:wfq:9:7\n")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseRolloutSpec(spec)
		if err != nil {
			return
		}
		if s.Mask&^(1<<uint(len(s.Events))-1) != 0 {
			t.Fatalf("spec %q: mask %x exceeds %d events", spec, s.Mask, len(s.Events))
		}
		for _, ev := range s.Events {
			switch ev.Plane {
			case PlaneRolloutKill:
				if ev.Machine < 0 || ev.Machine >= fleetMachines || ev.At <= 0 {
					t.Fatalf("spec %q: malformed kill %+v", spec, ev)
				}
			case PlaneRolloutFaulty:
				if ev.Threshold <= 0 || ev.Threshold >= fleetMachines {
					t.Fatalf("spec %q: malformed faulty threshold %+v", spec, ev)
				}
			case PlaneRolloutDelayDetect:
				if ev.Delay <= 0 || time.Duration(ev.Delay) > 10*time.Millisecond {
					t.Fatalf("spec %q: malformed detect delay %+v", spec, ev)
				}
			default:
				t.Fatalf("spec %q: non-rollout plane %v in schedule", spec, ev.Plane)
			}
		}
		again, err := ParseRolloutSpec(s.Spec())
		if err != nil {
			t.Fatalf("round-trip of %q failed: rendered %q does not parse: %v", spec, s.Spec(), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round-trip of %q diverged:\nfirst  %+v\nsecond %+v", spec, s, again)
		}
	})
}

func FuzzParseFleetSpec(f *testing.F) {
	f.Add(fleetSpec)
	f.Add("f1:fifo:1:1")
	f.Add("f1:cfs:abc:3")
	f.Add("f1:wfq:ffffffffffffffff:7")
	f.Add("v1:wfq:5eed:3")
	f.Add("f1:wfq:5eed:ffff")
	f.Add("f1:wfq::3")
	f.Add("f1:wfq:5eed:0x3")
	f.Add("f1:wfq:5eed:3 ")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseFleetSpec(spec)
		if err != nil {
			return
		}
		if s.Mask&^(1<<uint(len(s.Events))-1) != 0 {
			t.Fatalf("spec %q: mask %x exceeds %d events", spec, s.Mask, len(s.Events))
		}
		seen := map[int]bool{}
		for _, ev := range s.Events {
			if ev.Machine < 0 || ev.Machine >= fleetMachines || ev.At <= 0 {
				t.Fatalf("spec %q: malformed kill %+v", spec, ev)
			}
			if seen[ev.Machine] {
				t.Fatalf("spec %q: machine %d killed twice", spec, ev.Machine)
			}
			seen[ev.Machine] = true
		}
		again, err := ParseFleetSpec(s.Spec())
		if err != nil {
			t.Fatalf("round-trip of %q failed: rendered %q does not parse: %v", spec, s.Spec(), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round-trip of %q diverged:\nfirst  %+v\nsecond %+v", spec, s, again)
		}
	})
}
