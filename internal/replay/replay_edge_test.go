package replay

import (
	"bytes"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/record"
	"enoki/internal/sched/wfq"
)

// Edge-case tests against the replay runtime internals.

func wfqFactory(env core.Env) core.Scheduler { return wfq.New(env, 1) }

func TestReplayEmptyLog(t *testing.T) {
	res, err := Replay(bytes.NewReader(nil), Config{NumCPUs: 4}, wfqFactory)
	if err != nil {
		t.Fatalf("empty log: %v", err)
	}
	if res.Messages != 0 || len(res.Divergences) != 0 {
		t.Fatalf("empty replay: %+v", res)
	}
}

func TestReplayCorruptLog(t *testing.T) {
	if _, err := Replay(bytes.NewReader([]byte("garbage bytes")), Config{NumCPUs: 4}, wfqFactory); err == nil {
		t.Fatal("corrupt log accepted")
	}
}

func TestReplayLockNameMismatchPanics(t *testing.T) {
	entries := []record.Entry{
		{Lock: &core.LockEvent{Op: core.LockCreate, LockID: 0, Name: "other", Seq: 1}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lock creation order not detected")
		}
	}()
	_, _ = ReplayEntries(entries, Config{NumCPUs: 4}, wfqFactory, time.Now())
}

func TestReplayDivergenceCap(t *testing.T) {
	// A log full of select_task_rq calls recorded with impossible
	// replies: divergences must cap at MaxDivergences.
	var entries []record.Entry
	for i := 0; i < 40; i++ {
		entries = append(entries, record.Entry{Msg: &core.Message{
			Kind: core.MsgSelectTaskRQ, Seq: uint64(i), Thread: 0,
			PID: 1, PrevCPU: 0, Wakeup: true, RetCPU: 99,
		}})
	}
	res, err := ReplayEntries(entries, Config{NumCPUs: 4, MaxDivergences: 5},
		func(env core.Env) core.Scheduler { return wfq.New(env, 1) }, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) != 5 {
		t.Fatalf("divergences = %d, want capped at 5", len(res.Divergences))
	}
}

func TestReplayQueueIDDivergence(t *testing.T) {
	entries := []record.Entry{
		{Msg: &core.Message{Kind: core.MsgRegisterQueue, Seq: 0, Thread: -1, QueueID: 42, Count: 8}},
	}
	res, err := ReplayEntries(entries, Config{NumCPUs: 4}, wfqFactory, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// WFQ rejects queues (returns -1), the log claims 42: divergence.
	if len(res.Divergences) != 1 {
		t.Fatalf("divergences = %v", res.Divergences)
	}
}

func TestReplayLockBeyondRecordedOrder(t *testing.T) {
	// A lock acquired more times during replay than recorded must admit
	// the extra acquisitions FCFS rather than deadlock.
	l := newReplayLock("x")
	l.order = []int{7}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// gls not set: tid 0, which mismatches order[0]=7 until the
		// recorded acquisition happens.
	}()
	<-done
	// Recorded thread acquires, then an unrecorded acquisition proceeds.
	acquired := make(chan struct{})
	go func() {
		l.mu.Lock()
		l.order = l.order[:0] // simulate exhausting the order
		l.mu.Unlock()
		l.Lock()
		close(acquired)
		l.Unlock()
	}()
	select {
	case <-acquired:
	case <-timeout(2 * time.Second):
		t.Fatal("unrecorded acquisition deadlocked")
	}
}

func timeout(d time.Duration) <-chan time.Time { return time.After(d) }
