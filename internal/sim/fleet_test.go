package sim

import (
	"fmt"
	"testing"
	"time"

	"enoki/internal/ktime"
)

// fleetPingPong builds a deterministic fleet of plain engines: every node
// runs a local event chain and periodically sends a message to the next
// node, whose commitment posts the log entry into the destination engine at
// the delivery instant. Returns the per-node logs.
func fleetPingPong(parallel bool, nodes, rounds int) [][]string {
	la := 20 * time.Microsecond
	f := NewFleet(la)
	defer f.Close()
	f.SetParallel(parallel)
	engs := make([]*Engine, nodes)
	srcs := make([]int, nodes)
	logs := make([][]string, nodes)
	for i := 0; i < nodes; i++ {
		engs[i] = New()
		f.AddNode(engs[i])
		srcs[i] = f.AddSource(i)
	}
	for i := 0; i < nodes; i++ {
		i := i
		eng := engs[i]
		n := 0
		var local func()
		local = func() {
			n++
			logs[i] = append(logs[i], fmt.Sprintf("local %d @%d", n, eng.Now()))
			if n < rounds {
				eng.Post(ktime.Duration(2+time.Duration(i))*time.Microsecond, local)
			}
			if n%3 == 0 {
				to := (i + 1) % nodes
				at := eng.Now().Add(ktime.Duration(la) + ktime.Duration(i)*100)
				f.Send(srcs[i], to, at, func() {
					// Commitment: hand the payload to the destination
					// engine for execution at the delivery instant.
					engs[to].PostAt(at, func() {
						logs[to] = append(logs[to], fmt.Sprintf("msg from %d @%d", i, engs[to].Now()))
					})
				})
			}
		}
		eng.Post(time.Microsecond, local)
	}
	f.RunUntilIdle()
	return logs
}

// TestFleetSerialParallelIdentity is the fleet-level determinism oracle:
// worker-goroutine and serial drives must produce byte-identical per-node
// logs. Under -race this also proves the epoch barriers are sound.
func TestFleetSerialParallelIdentity(t *testing.T) {
	serial := fleetPingPong(false, 5, 40)
	par := fleetPingPong(true, 5, 40)
	for i := range serial {
		if len(serial[i]) != len(par[i]) {
			t.Fatalf("node %d: %d serial entries vs %d parallel", i, len(serial[i]), len(par[i]))
		}
		for j := range serial[i] {
			if serial[i][j] != par[i][j] {
				t.Fatalf("node %d diverges at %d: %q vs %q", i, j, serial[i][j], par[i][j])
			}
		}
	}
}

// TestFleetShardedNodes runs whole Sharded executors as fleet members: the
// two-level protocol (fleet epochs over machine epochs over shard engines)
// must stay deterministic across all four drive-mode combinations.
func TestFleetShardedNodes(t *testing.T) {
	run := func(fleetPar, machinePar bool) [][]string {
		const machines, shardsPer = 3, 2
		netLA := 50 * time.Microsecond
		ipiLA := 2 * time.Microsecond
		f := NewFleet(netLA)
		defer f.Close()
		f.SetParallel(fleetPar)
		sk := make([]*Sharded, machines)
		srcs := make([]int, machines)
		logs := make([][]string, machines)
		for m := 0; m < machines; m++ {
			sk[m] = NewSharded(shardsPer, ipiLA)
			defer sk[m].Close()
			sk[m].SetParallel(machinePar)
			f.AddNode(sk[m])
			// One fleet source per machine: all sends below originate from
			// shard 0's context.
			srcs[m] = f.AddSource(m)
		}
		for m := 0; m < machines; m++ {
			m := m
			eng := sk[m].Shard(0)
			n := 0
			var local func()
			local = func() {
				n++
				logs[m] = append(logs[m], fmt.Sprintf("m%d local %d @%d", m, n, eng.Now()))
				if n < 25 {
					eng.Post(3*time.Microsecond, local)
				}
				if n%4 == 0 {
					to := (m + 1) % machines
					at := eng.Now().Add(ktime.Duration(netLA))
					f.Send(srcs[m], to, at, func() {
						// Commitment: inject into the destination machine,
						// alternating target shards.
						shard := n % shardsPer
						sk[to].Inject(shard, at, func() {
							logs[to] = append(logs[to], fmt.Sprintf("m%d got msg from %d on shard %d @%d",
								to, m, shard, sk[to].Shard(shard).Now()))
						})
					})
				}
			}
			eng.Post(time.Microsecond, local)
		}
		f.RunUntilIdle()
		return logs
	}
	ref := run(false, false)
	for _, mode := range []struct {
		fleetPar, machinePar bool
		name                 string
	}{{true, false, "fleet-par"}, {false, true, "machine-par"}, {true, true, "both-par"}} {
		got := run(mode.fleetPar, mode.machinePar)
		for i := range ref {
			if len(ref[i]) != len(got[i]) {
				t.Fatalf("%s node %d: %d vs %d entries", mode.name, i, len(ref[i]), len(got[i]))
			}
			for j := range ref[i] {
				if ref[i][j] != got[i][j] {
					t.Fatalf("%s node %d diverges at %d: %q vs %q", mode.name, i, j, ref[i][j], got[i][j])
				}
			}
		}
	}
}

// TestFleetKill checks fail-stop semantics: a killed node freezes at the
// kill instant, later messages to it are dropped and counted, and the rest
// of the fleet keeps running — identically in serial and parallel drives.
func TestFleetKill(t *testing.T) {
	run := func(parallel bool) (survivor []string, victim []string, dropped uint64, victimNow ktime.Time) {
		f := NewFleet(10 * time.Microsecond)
		defer f.Close()
		f.SetParallel(parallel)
		engs := [2]*Engine{New(), New()}
		f.AddNode(engs[0])
		f.AddNode(engs[1])
		src0 := f.AddSource(0)
		var sLog, vLog []string
		for i, log := range []*[]string{&sLog, &vLog} {
			i, log := i, log
			eng := engs[i]
			n := 0
			var tick func()
			tick = func() {
				n++
				*log = append(*log, fmt.Sprintf("tick %d @%d", n, eng.Now()))
				if n < 40 {
					eng.Post(5*time.Microsecond, tick)
				}
			}
			eng.Post(time.Microsecond, tick)
		}
		// Kill node 1 at t=50µs via a fleet message, then keep sending to the
		// corpse: those sends must be dropped.
		killAt := ktime.Time(0).Add(ktime.Duration(50 * time.Microsecond))
		f.Send(src0, 1, killAt, func() { f.Kill(1) })
		for i := 1; i <= 5; i++ {
			at := killAt.Add(ktime.Duration(i) * ktime.Duration(10*time.Microsecond))
			f.Send(src0, 1, at, func() { engs[1].PostAt(at, func() { vLog = append(vLog, "ghost") }) })
		}
		f.RunUntil(ktime.Time(0).Add(ktime.Duration(300 * time.Microsecond)))
		return sLog, vLog, f.MsgsDropped(), engs[1].Now()
	}
	s1, v1, d1, n1 := run(false)
	s2, v2, d2, n2 := run(true)
	if d1 != 5 || d2 != 5 {
		t.Fatalf("dropped = %d serial / %d parallel, want 5", d1, d2)
	}
	if len(s1) != 40 {
		t.Fatalf("survivor ran %d ticks, want all 40", len(s1))
	}
	for _, v := range [][]string{v1, v2} {
		for _, e := range v {
			if e == "ghost" {
				t.Fatal("message delivered to a dead node")
			}
		}
	}
	if fmt.Sprint(s1, v1, n1) != fmt.Sprint(s2, v2, n2) {
		t.Fatalf("serial and parallel kill runs diverge:\n%v %v %v\n%v %v %v", s1, v1, n1, s2, v2, n2)
	}
	// The victim's clock froze at (or before) the epoch boundary of the kill;
	// it must not have reached the fleet bound.
	if n1 >= ktime.Time(0).Add(ktime.Duration(300*time.Microsecond)) {
		t.Fatalf("victim clock advanced to %v after kill", n1)
	}
}

// TestFleetSendUnderLookaheadPanics pins the lookahead floor.
func TestFleetSendUnderLookaheadPanics(t *testing.T) {
	f := NewFleet(10 * time.Microsecond)
	f.AddNode(New())
	f.AddNode(New())
	src := f.AddSource(0)
	defer func() {
		if recover() == nil {
			t.Fatal("send under the lookahead floor did not panic")
		}
	}()
	f.Send(src, 1, ktime.Time(0).Add(ktime.Duration(time.Microsecond)), func() {})
}

// TestFleetRunUntilComposes checks that back-to-back RunUntil calls behave
// like one long run, with live node clocks in lockstep at each bound.
func TestFleetRunUntilComposes(t *testing.T) {
	f := NewFleet(10 * time.Microsecond)
	e0, e1 := New(), New()
	f.AddNode(e0)
	f.AddNode(e1)
	fired := 0
	e1.Post(70*time.Microsecond, func() { fired++ })
	for i := 1; i <= 10; i++ {
		bound := ktime.Time(0).Add(ktime.Duration(i) * ktime.Duration(20*time.Microsecond))
		f.RunUntil(bound)
		if e0.Now() != bound || e1.Now() != bound {
			t.Fatalf("after RunUntil(%v): clocks %v / %v", bound, e0.Now(), e1.Now())
		}
	}
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
}

// TestShardedInjectOrdering pins the Inject contract: injected messages
// deliver at their instant before same-instant shard traffic, in injection
// order, through the normal drain machinery.
func TestShardedInjectOrdering(t *testing.T) {
	la := 5 * time.Microsecond
	run := func(parallel bool) []string {
		s := NewSharded(2, la)
		defer s.Close()
		s.SetParallel(parallel)
		var log []string
		at := ktime.Time(0).Add(ktime.Duration(20 * time.Microsecond))
		// A shard-1 → shard-0 message at the same instant as two injections:
		// the injections (source -1) must deliver first.
		s.Shard(1).Post(10*time.Microsecond, func() {
			s.Send(1, 0, at, func() { log = append(log, "from shard 1") })
		})
		s.Inject(0, at, func() { log = append(log, "inject A") })
		s.Inject(0, at, func() { log = append(log, "inject B") })
		s.RunUntilIdle()
		return log
	}
	want := []string{"inject A", "inject B", "from shard 1"}
	for _, par := range []bool{false, true} {
		got := run(par)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("parallel=%v: delivery order %v, want %v", par, got, want)
		}
	}
}

// TestShardedNextEventTime checks the fleet-facing probe sees both shard
// events and in-flight messages.
func TestShardedNextEventTime(t *testing.T) {
	s := NewSharded(2, 5*time.Microsecond)
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("empty executor reports pending work")
	}
	s.Shard(1).Post(40*time.Microsecond, func() {})
	if at, ok := s.NextEventTime(); !ok || at != ktime.Time(0).Add(ktime.Duration(40*time.Microsecond)) {
		t.Fatalf("NextEventTime = %v,%v want 40µs", at, ok)
	}
	msgAt := ktime.Time(0).Add(ktime.Duration(10 * time.Microsecond))
	s.Inject(0, msgAt, func() {})
	if at, ok := s.NextEventTime(); !ok || at != msgAt {
		t.Fatalf("NextEventTime = %v,%v want 10µs (pending message)", at, ok)
	}
}
