// Package conformance is the cross-scheduler conformance harness: one
// table-driven rig that runs every scheduler class the repo ships — the five
// Enoki modules, the Arachne arbiter, and the native CFS baseline — through
// the same randomized (but seeded, hence reproducible) workloads and fault
// injections, asserting the invariants any correct scheduler must uphold:
//
//   - no lost wakeups: every spawned task makes progress and exits;
//   - no double-run: a task is never current on two CPUs at once, and a
//     running task's recorded CPU matches the CPU running it;
//   - no leaks: the kernel's task table drains to zero;
//   - rehome-to-CFS completeness: if the module is killed by the fault
//     layer, every one of its tasks finishes under the fallback class.
//
// It lives in a subpackage so internal/enokic's in-package tests can keep
// importing internal/schedtest without a cycle.
package conformance

import (
	"fmt"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/sched/arbiter"
	"enoki/internal/sched/fifo"
	"enoki/internal/sched/locality"
	"enoki/internal/sched/nest"
	"enoki/internal/sched/shinjuku"
	"enoki/internal/sched/wfq"
	"enoki/internal/sim"
	"enoki/internal/vpol"
)

// Policy ids: the module under test registers above CFS, like the
// experiment rigs; a verified-tier program (Case.Verified) registers above
// both, the fast-lane position it holds in real deployments.
const (
	PolicyCFS      = 0
	PolicyTest     = 1
	PolicyVerified = 2
)

// Case describes one scheduler class under conformance test.
type Case struct {
	// Name identifies the class in test output.
	Name string
	// NewModule builds the Enoki module, or is nil for the native CFS
	// baseline (which has no module and cannot fault).
	NewModule func(env core.Env, ncpus int) core.Scheduler
	// SupportsHints marks modules whose RegisterQueue accepts a queue, so
	// hint-path cases (queue-lie injection) know where they apply.
	SupportsHints bool
	// Verified, when non-nil, additionally mounts this bytecode program as
	// a verified-tier class under PolicyVerified; Workload then routes
	// every third task through it, so the same invariants cover the
	// interpreter's enqueue/pick path and its coexistence with the tiers
	// below.
	Verified *vpol.Program
}

// Cases lists all seven scheduler classes.
func Cases() []Case {
	return []Case{
		{Name: "cfs"},
		{Name: "fifo", NewModule: func(env core.Env, _ int) core.Scheduler {
			return fifo.New(env, PolicyTest)
		}},
		{Name: "wfq", NewModule: func(env core.Env, _ int) core.Scheduler {
			return wfq.New(env, PolicyTest)
		}},
		{Name: "shinjuku", NewModule: func(env core.Env, _ int) core.Scheduler {
			return shinjuku.New(env, PolicyTest, shinjuku.DefaultSlice)
		}},
		{Name: "arbiter", NewModule: func(env core.Env, ncpus int) core.Scheduler {
			managed := make([]int, 0, ncpus-1)
			for c := 1; c < ncpus; c++ {
				managed = append(managed, c)
			}
			return arbiter.New(env, PolicyTest, managed)
		}, SupportsHints: true},
		{Name: "nest", NewModule: func(env core.Env, _ int) core.Scheduler {
			return nest.New(env, PolicyTest)
		}},
		{Name: "locality", NewModule: func(env core.Env, _ int) core.Scheduler {
			return locality.New(env, PolicyTest)
		}, SupportsHints: true},
	}
}

// Rig is one conformance machine: the case's class loaded above CFS.
type Rig struct {
	K *kernel.Kernel
	// Adapter is nil for the CFS baseline.
	Adapter *enokic.Adapter
	// Policy is the class workload tasks spawn into.
	Policy int
	// Verified is the mounted verified-tier class, nil unless the case
	// carries a bytecode program.
	Verified *vpol.Class
}

// NewRig builds the machine for c on the paper's 8-core box. cfg tunes the
// adapter (fault budgets, watchdog window); wrap, when non-nil, interposes a
// fault injector between the adapter and the module. Both are ignored for
// the CFS baseline.
func NewRig(c Case, cfg enokic.Config, wrap func(core.Scheduler) core.Scheduler) *Rig {
	return NewRigOn(c, kernel.Machine8(), cfg, wrap)
}

// NewRigOn is NewRig on an explicit machine, for conformance runs that need
// real topology (the NUMA suite uses Machine80's two sockets).
func NewRigOn(c Case, m kernel.Machine, cfg enokic.Config, wrap func(core.Scheduler) core.Scheduler) *Rig {
	eng := sim.New()
	k := kernel.New(eng, m, kernel.CostsFor(m))
	r := &Rig{K: k, Policy: PolicyCFS}
	if c.Verified != nil {
		vc, err := vpol.Load(k, PolicyVerified, c.Verified, vpol.Config{Fallback: PolicyCFS})
		if err != nil {
			panic(fmt.Sprintf("conformance: verified load: %v", err))
		}
		r.Verified = vc
	}
	if c.NewModule != nil {
		r.Adapter = enokic.Load(k, PolicyTest, cfg, func(env core.Env) core.Scheduler {
			s := c.NewModule(env, k.NumCPUs())
			if wrap != nil {
				s = wrap(s)
			}
			return s
		})
		r.Policy = PolicyTest
	}
	k.RegisterClass(PolicyCFS, kernel.NewCFS(k))
	return r
}

// Violation is one invariant breach the checker observed.
type Violation struct {
	At   ktime.Time
	What string
}

func (v Violation) String() string { return fmt.Sprintf("t=%v: %s", time.Duration(v.At), v.What) }

// Checker watches kernel-level invariants while a workload runs: an engine
// event fires every Period of virtual time and cross-checks every CPU's
// current task. Violations accumulate for the test to assert on.
type Checker struct {
	r          *Rig
	Violations []Violation
	stop       bool
}

// StartChecker installs an invariant checker sampling every period.
func StartChecker(r *Rig, period time.Duration) *Checker {
	ch := &Checker{r: r}
	eng := r.K.Engine()
	var tick func()
	tick = func() {
		if ch.stop {
			return
		}
		ch.check()
		eng.Post(period, tick)
	}
	eng.Post(period, tick)
	return ch
}

// Stop ends the periodic checks (lets RunUntilIdle drain).
func (ch *Checker) Stop() { ch.stop = true }

func (ch *Checker) check() {
	k := ch.r.K
	now := k.Now()
	seen := make(map[*kernel.Task]int, k.NumCPUs())
	for cpu := 0; cpu < k.NumCPUs(); cpu++ {
		t := k.CurrentOn(cpu)
		if t == nil {
			continue
		}
		if prev, dup := seen[t]; dup {
			ch.Violations = append(ch.Violations, Violation{now,
				fmt.Sprintf("double-run: %s current on CPU %d and %d", t, prev, cpu)})
		}
		seen[t] = cpu
		if t.State() != kernel.StateRunning {
			ch.Violations = append(ch.Violations, Violation{now,
				fmt.Sprintf("current task %s on CPU %d not in running state", t, cpu)})
		}
		if t.CPU() != cpu {
			ch.Violations = append(ch.Violations, Violation{now,
				fmt.Sprintf("cpu mismatch: %s current on CPU %d but records CPU %d", t, cpu, t.CPU())})
		}
		if !t.Allowed().Has(cpu) {
			ch.Violations = append(ch.Violations, Violation{now,
				fmt.Sprintf("affinity breach: %s running on forbidden CPU %d", t, cpu)})
		}
	}
}

// Workload is the randomized task mix one conformance run drives: a seeded
// blend of sleepers (wakeup-dependent progress), spinners (tick/preemption
// pressure), and yielders, plus nice/affinity churn at random virtual times.
// Everything derives from Seed, so a run is reproducible bit-for-bit.
type Workload struct {
	Seed  uint64
	Tasks int
	// Churn enables random SetNice/SetAffinity while the workload runs.
	Churn bool
	// Budget bounds the virtual run time (default 2 s — far beyond what a
	// healthy class needs, so hitting it means tasks lost progress). A
	// bounded run, not RunUntilIdle, keeps periodic checker events from
	// blocking the drain and keeps lost-wakeup failures finite.
	Budget time.Duration
}

// Run spawns the workload on r, runs the simulation for the budget, and
// returns how many tasks completed (out of w.Tasks).
func (w Workload) Run(r *Rig) int {
	if w.Budget == 0 {
		w.Budget = 2 * time.Second
	}
	done := w.Spawn(r)
	r.K.RunFor(w.Budget)
	return done()
}

// Spawn creates the workload's tasks and churn events on r without running
// the simulation; the returned function reports how many tasks have
// completed so far. Sharded rigs use it to populate every shard before the
// executor — not the individual engines — drives the run.
func (w Workload) Spawn(r *Rig) func() int {
	k := r.K
	rand := ktime.NewRand(w.Seed)
	completed := 0
	tasks := make([]*kernel.Task, 0, w.Tasks)
	for i := 0; i < w.Tasks; i++ {
		policy := r.Policy
		if r.Verified != nil && i%3 == 2 {
			policy = PolicyVerified
		}
		var b kernel.Behavior
		switch rand.Intn(3) {
		case 0: // sleeper: progress requires every wakeup to arrive
			iters := 20 + rand.Intn(30)
			run := time.Duration(20+rand.Intn(200)) * time.Microsecond
			sleep := time.Duration(30+rand.Intn(300)) * time.Microsecond
			b = Loop(iters, run, kernel.OpSleep, sleep)
		case 1: // spinner: long segments, exercises tick + preemption
			iters := 3 + rand.Intn(5)
			run := time.Duration(1+rand.Intn(4)) * time.Millisecond
			b = Loop(iters, run, kernel.OpContinue, 0)
		default: // yielder: hammers the yield/requeue path
			iters := 30 + rand.Intn(50)
			run := time.Duration(10+rand.Intn(100)) * time.Microsecond
			b = Loop(iters, run, kernel.OpYield, 0)
		}
		t := k.Spawn(fmt.Sprintf("w%d", i), policy, b,
			kernel.WithExitObserver(func() { completed++ }))
		tasks = append(tasks, t)
	}
	if w.Churn {
		// Random nice and affinity changes from external context while the
		// workload runs, at seeded virtual times.
		eng := k.Engine()
		ncpus := k.NumCPUs()
		for i := 0; i < w.Tasks; i++ {
			t := tasks[i]
			at := time.Duration(1+rand.Intn(20)) * time.Millisecond
			nice := rand.Intn(7) - 3
			cpu := rand.Intn(ncpus)
			eng.Post(at, func() {
				if t.State() == kernel.StateDead {
					return
				}
				k.SetNice(t, nice)
				k.SetAffinity(t, kernel.SingleCPU(cpu))
			})
			back := at + time.Duration(1+rand.Intn(10))*time.Millisecond
			eng.Post(back, func() {
				if t.State() == kernel.StateDead {
					return
				}
				k.SetAffinity(t, kernel.AllCPUs(ncpus))
			})
		}
	}
	return func() int { return completed }
}

// Loop builds an iters-cycle behavior: run a segment, then apply op
// (OpSleep uses sleepFor), then exit after the last cycle.
func Loop(iters int, run time.Duration, op kernel.Op, sleepFor time.Duration) kernel.Behavior {
	n := 0
	return kernel.BehaviorFunc(func(*kernel.Kernel, *kernel.Task) kernel.Action {
		n++
		if n > iters {
			return kernel.Action{Op: kernel.OpExit}
		}
		return kernel.Action{Run: run, Op: op, SleepFor: sleepFor}
	})
}
