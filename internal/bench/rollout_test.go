package bench

import (
	"testing"

	"enoki/internal/kernel"
)

// TestRolloutDriveSmall pins the bench drive's contract at a 40-machine
// scale cheap enough for every test run: a clean campaign converges onto
// the whole fleet, a sabotaged one halts mid-rollout and restores every
// upgraded machine, and the serial and parallel drives of the same campaign
// agree on the full-history fingerprint.
func TestRolloutDriveSmall(t *testing.T) {
	m := kernel.Machine8()
	const machines, jobs = 40, 2400

	clean := rolloutDrive(m, machines, jobs, machines, false)
	if !clean.resolved || !clean.report.Completed || clean.report.Halted {
		t.Fatalf("clean campaign did not converge: resolved=%v report=%+v",
			clean.resolved, clean.report)
	}
	if clean.report.Upgraded != machines {
		t.Fatalf("clean campaign upgraded %d of %d machines", clean.report.Upgraded, machines)
	}
	if clean.onNew == 0 {
		t.Fatalf("no live shard serves %s after a completed rollout", rolloutVersion)
	}

	faulty := rolloutDrive(m, machines, jobs, machines/4, false)
	if !faulty.resolved || !faulty.report.Halted || faulty.report.Completed {
		t.Fatalf("faulty campaign did not halt: resolved=%v report=%+v",
			faulty.resolved, faulty.report)
	}
	if faulty.report.Upgraded != 0 || faulty.onNew != 0 {
		t.Fatalf("halt left machines on %s: upgraded=%d onNew=%d",
			rolloutVersion, faulty.report.Upgraded, faulty.onNew)
	}
	if faulty.report.RolledBack == 0 || faulty.report.RollbackErrs != 0 {
		t.Fatalf("rollback incomplete: rolledback=%d errs=%d",
			faulty.report.RolledBack, faulty.report.RollbackErrs)
	}

	cleanP := rolloutDrive(m, machines, jobs, machines, true)
	if cleanP.fp != clean.fp {
		t.Fatalf("clean fingerprints diverge: serial %016x vs parallel %016x", clean.fp, cleanP.fp)
	}
	faultyP := rolloutDrive(m, machines, jobs, machines/4, true)
	if faultyP.fp != faulty.fp {
		t.Fatalf("faulty fingerprints diverge: serial %016x vs parallel %016x", faulty.fp, faultyP.fp)
	}
}
