// Record and replay: debug a kernel scheduler at userspace (§3.4).
//
// Phase 1 runs a pipe workload on the WFQ scheduler with record mode on:
// every message into the module and the order of its lock operations flow
// through a ring buffer to a userspace record task that writes the log.
//
// Phase 2 replays the log against the exact same scheduler code, entirely
// at userspace — one goroutine per recorded message, lock acquisitions
// gated into their recorded order — and validates every decision.
//
// Phase 3 replays against a *modified* scheduler to show how a policy
// change surfaces as divergences, which is how you debug logic bugs the
// type system cannot catch.
//
//	go run ./examples/record-replay
package main

import (
	"bytes"
	"fmt"
	"time"

	"enoki"
)

const (
	policyCFS = 0
	policyWFQ = 1
)

func main() {
	// Phase 1: record. WithRecorder installs record mode on every module
	// the System loads; the recorder comes alive once its drain class
	// (CFS here) is registered.
	var log bytes.Buffer
	sys := enoki.NewSystem(
		enoki.WithMachine(enoki.Machine8()),
		enoki.WithRecorder(&log, policyCFS))
	if _, err := sys.Attach(policyWFQ, enoki.GoModule(
		func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, policyWFQ) })); err != nil {
		panic(err)
	}
	sys.RegisterCFS(policyCFS)
	k := sys.Kernel()
	rec := sys.Recorder()

	var a, b *enoki.Task
	const rounds = 400
	count := 0
	mk := func(peer **enoki.Task, starts bool) enoki.Behavior {
		started := false
		return enoki.BehaviorFunc(func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
			if starts && !started {
				started = true
				return enoki.Action{Run: 300 * time.Nanosecond, Wake: []*enoki.Task{*peer}, Op: enoki.OpBlock}
			}
			count++
			if count >= 2*rounds {
				return enoki.Action{Op: enoki.OpExit}
			}
			return enoki.Action{Run: 300 * time.Nanosecond, Wake: []*enoki.Task{*peer}, Op: enoki.OpBlock}
		})
	}
	a = k.Spawn("ping", policyWFQ, mk(&b, true), enoki.WithAffinity(enoki.SingleCPU(0)))
	b = k.Spawn("pong", policyWFQ, mk(&a, false), enoki.WithAffinity(enoki.SingleCPU(0)))
	k.RunFor(time.Second)
	rec.Close()
	fmt.Printf("recorded %d entries (%d dropped) into a %d-byte log\n",
		rec.Entries, rec.Dropped, log.Len())

	// Phase 2: faithful replay.
	res, err := enoki.Replay(bytes.NewReader(log.Bytes()),
		enoki.ReplayConfig{NumCPUs: 8},
		func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, policyWFQ) })
	if err != nil {
		panic(err)
	}
	fmt.Printf("replayed %d messages at userspace in %v: %d divergences\n",
		res.Messages, res.Elapsed.Round(time.Millisecond), len(res.Divergences))

	// Phase 3: replay against a "buggy" scheduler that refuses CPU 0.
	res2, err := enoki.Replay(bytes.NewReader(log.Bytes()),
		enoki.ReplayConfig{NumCPUs: 8},
		func(env enoki.Env) enoki.Scheduler {
			return &lazySched{Scheduler: enoki.NewWFQScheduler(env, policyWFQ)}
		})
	if err != nil {
		panic(err)
	}
	fmt.Printf("replaying a modified scheduler: %d divergences, e.g.:\n", len(res2.Divergences))
	for i, d := range res2.Divergences {
		if i == 3 {
			break
		}
		fmt.Println("  ", d)
	}
}

// lazySched wraps WFQ but never schedules anything on CPU 0 — the kind of
// logic bug replay exists to expose.
type lazySched struct {
	enoki.Scheduler
}

func (l *lazySched) PickNextTask(cpu int, curr *enoki.Schedulable, rt time.Duration) *enoki.Schedulable {
	tok := l.Scheduler.PickNextTask(cpu, curr, rt)
	if cpu == 0 {
		return nil
	}
	return tok
}
