package chaos

import (
	"strings"
	"testing"
)

// TestCampaignVerifiedTierSmoke is the verified-tier chaos gate: a seeded
// campaign across every class with the bytecode dual-queue mounted on top.
// The chaos planes sabotage the module and the kernel underneath it; the
// verified tier must keep scheduling its share of the workload and must
// never be killed.
func TestCampaignVerifiedTierSmoke(t *testing.T) {
	runs := 30
	if testing.Short() {
		runs = 7
	}
	res := Campaign(CampaignConfig{
		Runs: runs,
		Seed: 0x7e81f1ed,
		Run:  RunConfig{VerifiedTier: true},
	})
	if res.Runs != runs {
		t.Errorf("campaign stopped early: %d of %d runs", res.Runs, runs)
	}
	for _, f := range res.Failures {
		t.Errorf("FAIL %s\n  minimized: %v\n  violations: %v\n  reproduce: %s",
			f.Result.Schedule.Spec(), f.Minimized.Enabled(), f.MinResult.Violations, f.Replay)
	}
}

// TestRunVerifiedTierReported pins the Result plumbing: a quiet schedule
// with the verified tier mounted reports picks and no kill, and the replay
// command carries the -verified flag.
func TestRunVerifiedTierReported(t *testing.T) {
	s := Generate(42, "wfq")
	for i := range s.Events {
		s.Mask &^= 1 << uint(i) // disable every fault plane
	}
	res := Run(s, RunConfig{VerifiedTier: true})
	if res.Failed() {
		t.Fatalf("quiet verified run failed: %v", res.Violations)
	}
	if res.VerifiedKilled || res.VerifiedFailure != nil {
		t.Fatalf("verified tier reported a kill on a quiet run: %+v", res.VerifiedFailure)
	}
	if res.VerifiedPicks == 0 {
		t.Fatal("verified tier reported zero picks")
	}
	if cmd := ReplayCommand(s, RunConfig{VerifiedTier: true}); !strings.HasSuffix(cmd, " -verified") {
		t.Fatalf("replay command missing -verified: %q", cmd)
	}
}
