package sim

import (
	"testing"
	"time"

	"enoki/internal/ktime"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.After(30*time.Nanosecond, func() { order = append(order, 3) })
	e.After(10*time.Nanosecond, func() { order = append(order, 1) })
	e.After(20*time.Nanosecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != ktime.Time(30) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestTiesFireInInsertionOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(ktime.Time(100), func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	// Cancel after firing is a no-op.
	ev2 := e.After(10, func() {})
	e.Run()
	ev2.Cancel()
}

func TestCancelNilSafe(t *testing.T) {
	var ev *Event
	ev.Cancel() // must not panic
	if ev.Cancelled() {
		t.Fatal("nil event reports cancelled")
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	e := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			e.After(10, chain)
		}
	}
	e.After(10, chain)
	e.Run()
	if count != 5 {
		t.Fatalf("chained events: %d", count)
	}
	if e.Now() != ktime.Time(50) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.After(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(ktime.Time(50), func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []ktime.Time
	for _, at := range []ktime.Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(ktime.Time(25))
	if len(fired) != 2 {
		t.Fatalf("fired %v before T+25", fired)
	}
	if e.Now() != ktime.Time(25) {
		t.Fatalf("clock should land exactly on boundary: %v", e.Now())
	}
	e.RunUntil(ktime.Time(100))
	if len(fired) != 4 {
		t.Fatalf("fired %v after full run", fired)
	}
	if e.Now() != ktime.Time(100) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	e := New()
	fired := false
	e.At(ktime.Time(25), func() { fired = true })
	e.RunUntil(ktime.Time(25))
	if !fired {
		t.Fatal("event exactly at boundary did not fire")
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	e.After(10, func() { count++; e.Stop() })
	e.After(20, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt: %d", count)
	}
	e.Run() // resume
	if count != 2 {
		t.Fatalf("resume failed: %d", count)
	}
}

func TestStepAndPending(t *testing.T) {
	e := New()
	e.After(10, func() {})
	ev := e.After(20, func() {})
	ev.Cancel()
	// Pending counts live events only; the tombstone is excluded.
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	if e.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d", e.QueueLen())
	}
	if !e.Step() {
		t.Fatal("Step should fire the live event")
	}
	if e.Step() {
		t.Fatal("Step should skip tombstone and report empty")
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []ktime.Time {
		e := New()
		r := ktime.NewRand(99)
		var log []ktime.Time
		for i := 0; i < 5000; i++ {
			at := ktime.Time(r.Intn(100000))
			e.At(at, func() { log = append(log, e.Now()) })
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("time went backwards at %d", i)
		}
	}
}

func TestPostFireAndRecycle(t *testing.T) {
	e := New()
	count := 0
	e.Post(10, func() { count++ })
	e.Post(20, func() { count++ })
	e.Run()
	if count != 2 {
		t.Fatalf("posted events fired %d times", count)
	}
	if e.Recycled() != 2 {
		t.Fatalf("Recycled = %d, want 2", e.Recycled())
	}
	// The next Post must reuse a recycled Event object.
	e.Post(10, func() { count++ })
	e.Run()
	if count != 3 || e.Recycled() != 3 {
		t.Fatalf("count=%d recycled=%d", count, e.Recycled())
	}
}

func TestRescheduleRecurring(t *testing.T) {
	e := New()
	var times []ktime.Time
	var ev *Event
	ev = e.NewEvent(func() {
		times = append(times, e.Now())
		if len(times) < 3 {
			e.RescheduleAfter(ev, 10)
		}
	})
	if ev.Queued() {
		t.Fatal("fresh NewEvent reports queued")
	}
	e.RescheduleAfter(ev, 10)
	if !ev.Queued() {
		t.Fatal("armed event not queued")
	}
	e.Run()
	want := []ktime.Time{10, 20, 30}
	if len(times) != 3 || times[0] != want[0] || times[1] != want[1] || times[2] != want[2] {
		t.Fatalf("fired at %v, want %v", times, want)
	}
}

func TestRescheduleMovesQueuedEvent(t *testing.T) {
	e := New()
	var order []int
	ev := e.NewEvent(func() { order = append(order, 1) })
	e.Reschedule(ev, ktime.Time(100))
	e.At(ktime.Time(50), func() { order = append(order, 2) })
	// Move the armed event ahead of the other one.
	e.Reschedule(ev, ktime.Time(10))
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestRescheduleRevivesCancelled(t *testing.T) {
	e := New()
	fired := 0
	ev := e.NewEvent(func() { fired++ })
	e.Reschedule(ev, ktime.Time(10))
	ev.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after cancel", e.Pending())
	}
	e.Reschedule(ev, ktime.Time(20))
	if ev.Cancelled() {
		t.Fatal("rescheduled event still reports cancelled")
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d times", fired)
	}
	if e.Now() != ktime.Time(20) {
		t.Fatalf("fired at %v, want 20", e.Now())
	}
}

func TestRescheduleTieOrderMatchesFreshEvent(t *testing.T) {
	// A rescheduled event must order against same-time events exactly as a
	// freshly created one would: by (re-)arm order.
	e := New()
	var order []int
	ev := e.NewEvent(func() { order = append(order, 1) })
	e.Reschedule(ev, ktime.Time(5))
	e.Run()
	order = nil
	e.At(ktime.Time(100), func() { order = append(order, 2) })
	e.Reschedule(ev, ktime.Time(100)) // re-armed after: fires after
	e.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("tie order = %v, want [2 1]", order)
	}
}

func TestTombstoneCompaction(t *testing.T) {
	e := New()
	var evs []*Event
	for i := 0; i < 1000; i++ {
		evs = append(evs, e.At(ktime.Time(1000+i), func() {}))
	}
	// Cancel 90%: the heap must shrink well below the raw event count.
	for i := 0; i < 900; i++ {
		evs[i].Cancel()
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", e.Pending())
	}
	if e.QueueLen() > 500 {
		t.Fatalf("QueueLen = %d after mass cancel; compaction did not run", e.QueueLen())
	}
	e.Run()
	if e.Fired() != 100 {
		t.Fatalf("Fired = %d, want 100", e.Fired())
	}
}

func TestCompactionPreservesOrder(t *testing.T) {
	e := New()
	r := ktime.NewRand(7)
	var fired []ktime.Time
	var evs []*Event
	for i := 0; i < 500; i++ {
		at := ktime.Time(r.Intn(10000))
		evs = append(evs, e.At(at, func() { fired = append(fired, e.Now()) }))
	}
	for i := 0; i < 400; i++ {
		evs[i].Cancel()
	}
	e.Run()
	if len(fired) != 100 {
		t.Fatalf("fired %d events", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("time went backwards at %d after compaction", i)
		}
	}
}

func TestHotPathsAllocationFree(t *testing.T) {
	e := New()
	tick := e.NewEvent(func() {})
	fn := func() {}
	// Warm the free list.
	e.Post(1, fn)
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Post(1, fn)
		e.RescheduleAfter(tick, 2)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("Post+Reschedule steady state allocates %.1f/op, want 0", allocs)
	}
}
