// Package arbiter is the Enoki reimplementation of the Arachne core arbiter
// (§4.2.4): the kernel half of a two-level scheduling system. Applications
// request dedicated cores; the arbiter assigns managed cores to processes
// and runs exactly one scheduler activation per granted core. It exercises
// both directions of Enoki's user communication: core requests arrive on the
// user-to-kernel hint queue, core reclamation requests flow back on the
// kernel-to-user queue — where the original Arachne used Linux cpusets and
// a socket, the Enoki arbiter "uses standard kernel scheduling mechanisms
// for assigning, moving, and blocking user scheduler activations" (579
// lines of Rust in the paper).
package arbiter

import (
	"encoding/gob"
	"time"

	"enoki/internal/core"
)

func init() {
	// Arbiter hints and reverse messages cross the record/replay log as
	// gob-encoded interface values.
	gob.Register(CoreRequest{})
	gob.Register(RegisterActivation{})
	gob.Register(GrantMsg{})
	gob.Register(ReclaimMsg{})
}

// CoreRequest is the user→kernel hint: a process asks for a number of
// dedicated cores.
type CoreRequest struct {
	ProcID int
	Cores  int
}

// RegisterActivation is the user→kernel hint announcing that a task is a
// scheduler activation belonging to a process.
type RegisterActivation struct {
	ProcID int
	PID    int
}

// GrantMsg is the kernel→user message telling a process its grant changed.
type GrantMsg struct {
	ProcID int
	Cores  int
}

// ReclaimMsg is the kernel→user message asking a process to release cores
// (the paper sends "a single boolean value"; the count generalises it).
type ReclaimMsg struct {
	ProcID int
	Cores  int
}

type activation struct {
	pid     int
	procID  int
	core    int // assigned core, -1 if none
	sched   *core.Schedulable
	queued  bool
	queueOn int
	blocked bool
}

type proc struct {
	id        int
	requested int
	granted   []int // cores
	acts      []int // activation pids
	// reclaimOwed counts cores the process was asked to release but has
	// not yet freed (a core frees when one of its activations parks).
	reclaimOwed int
}

type state struct {
	managed   []int   // cores the arbiter may hand out
	queues    [][]int // per-CPU queued activation pids, FIFO
	coreOwner map[int]int
	coreAct   map[int]int // core → activation pid
	acts      map[int]*activation
	procs     map[int]*proc
	procOrder []int
	queue     *core.HintQueue
	rev       *core.RevQueue
}

// Sched is the Enoki core-arbiter scheduler module.
type Sched struct {
	core.BaseScheduler
	env    core.Env
	policy int
	mu     core.Locker
	st     *state

	// Grants and Reclaims count arbitration decisions.
	Grants   uint64
	Reclaims uint64
}

var _ core.Scheduler = (*Sched)(nil)

// New constructs the arbiter managing the given cores (every other core is
// left to lower scheduler classes, e.g. CFS for background work).
func New(env core.Env, policy int, managed []int) *Sched {
	s := &Sched{env: env, policy: policy, mu: env.NewMutex("arbiter")}
	s.st = &state{
		managed:   managed,
		queues:    make([][]int, env.NumCPUs()),
		coreOwner: make(map[int]int),
		coreAct:   make(map[int]int),
		acts:      make(map[int]*activation),
		procs:     make(map[int]*proc),
	}
	return s
}

// GetPolicy implements core.Scheduler.
func (s *Sched) GetPolicy() int { return s.policy }

// enq queues an activation on cpu with its proof.
func (s *Sched) enq(a *activation, cpu int, sched *core.Schedulable) {
	if a.queued {
		s.deq(a)
	}
	a.sched = sched
	a.queued = true
	a.queueOn = cpu
	s.st.queues[cpu] = append(s.st.queues[cpu], a.pid)
}

// deq removes an activation from its queue.
func (s *Sched) deq(a *activation) {
	if !a.queued {
		return
	}
	q := s.st.queues[a.queueOn]
	for i, pid := range q {
		if pid == a.pid {
			s.st.queues[a.queueOn] = append(append([]int{}, q[:i]...), q[i+1:]...)
			break
		}
	}
	a.queued = false
}

func (s *Sched) procOf(id int) *proc {
	p := s.st.procs[id]
	if p == nil {
		p = &proc{id: id}
		s.st.procs[id] = p
		s.st.procOrder = append(s.st.procOrder, id)
	}
	return p
}

// rebalance recomputes core grants after a request change: processes are
// served in registration order, each capped by its request. Over-grants are
// owed back through the reverse queue and collected as activations park;
// under-grants are filled from the free pool.
func (s *Sched) rebalance() {
	for _, pid := range s.st.procOrder {
		p := s.st.procs[pid]
		// Cancel owed reclaims when the request climbed back up.
		for p.reclaimOwed > 0 && len(p.granted)-p.reclaimOwed < p.requested {
			p.reclaimOwed--
			if s.st.rev != nil {
				s.st.rev.Push(GrantMsg{ProcID: p.id, Cores: len(p.granted) - p.reclaimOwed})
			}
		}
		// Ask for cores back when over-granted.
		for len(p.granted)-p.reclaimOwed > p.requested {
			p.reclaimOwed++
			s.Reclaims++
			if s.st.rev != nil {
				s.st.rev.Push(ReclaimMsg{ProcID: p.id, Cores: 1})
			}
		}
		s.collectOwed(p)
	}
	free := make([]int, 0, len(s.st.managed))
	for _, c := range s.st.managed {
		if s.st.coreOwner[c] == 0 {
			free = append(free, c)
		}
	}
	for _, pid := range s.st.procOrder {
		p := s.st.procs[pid]
		for len(p.granted) < p.requested && len(free) > 0 {
			c := free[0]
			free = free[1:]
			s.st.coreOwner[c] = p.id
			p.granted = append(p.granted, c)
			s.Grants++
			if s.st.rev != nil {
				s.st.rev.Push(GrantMsg{ProcID: p.id, Cores: len(p.granted)})
			}
		}
	}
}

// collectOwed frees owed cores whose activations are parked (or which have
// no activation at all).
func (s *Sched) collectOwed(p *proc) {
	for p.reclaimOwed > 0 {
		freed := -1
		for _, c := range p.granted {
			pid, bound := s.st.coreAct[c]
			if !bound {
				freed = c
				break
			}
			if a := s.st.acts[pid]; a == nil || a.blocked {
				if a != nil {
					a.core = -1
				}
				delete(s.st.coreAct, c)
				freed = c
				break
			}
		}
		if freed < 0 {
			return // wait for the runtime to park an activation
		}
		for i, c := range p.granted {
			if c == freed {
				p.granted = append(append([]int{}, p.granted[:i]...), p.granted[i+1:]...)
				break
			}
		}
		s.st.coreOwner[freed] = 0
		p.reclaimOwed--
	}
}

// assignCore binds a waking activation to one of its process's granted
// cores, if any is free of running activations.
func (s *Sched) assignCore(a *activation) int {
	if a.core >= 0 {
		return a.core
	}
	p := s.st.procs[a.procID]
	if p == nil {
		return -1
	}
	spare := len(p.granted) - p.reclaimOwed
	for _, c := range p.granted {
		if spare <= 0 {
			break
		}
		if _, busy := s.st.coreAct[c]; !busy {
			a.core = c
			s.st.coreAct[c] = a.pid
			return c
		}
		spare--
	}
	return -1
}

// --- trait implementation ---------------------------------------------------

// TaskNew implements core.Scheduler. Activations are only recognised once
// the runtime registers them via hints; until then they queue where they
// land.
func (s *Sched) TaskNew(pid int, runtime time.Duration, runnable bool, allowed []int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := &activation{pid: pid, core: -1, procID: -1}
	s.st.acts[pid] = a
	if runnable && sched != nil {
		s.enq(a, sched.CPU(), sched)
	}
}

// TaskWakeup implements core.Scheduler.
func (s *Sched) TaskWakeup(pid int, runtime time.Duration, deferrable bool, lastCPU, wakeCPU int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.st.acts[pid]
	if a == nil {
		return
	}
	a.blocked = false
	s.enq(a, wakeCPU, sched)
}

// TaskBlocked implements core.Scheduler: a parked activation may free a
// reclaim-pending core.
func (s *Sched) TaskBlocked(pid int, runtime time.Duration, cpu int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.st.acts[pid]
	if a == nil {
		return
	}
	a.blocked = true
	s.deq(a)
	a.sched = nil
	// Unbind the core; an owed reclamation collects it, otherwise it is
	// immediately re-assignable.
	if a.core >= 0 {
		delete(s.st.coreAct, a.core)
		a.core = -1
		if p := s.st.procs[a.procID]; p != nil && p.reclaimOwed > 0 {
			s.collectOwed(p)
			s.rebalance()
		}
	}
}

// TaskPreempt implements core.Scheduler.
func (s *Sched) TaskPreempt(pid int, runtime time.Duration, cpu int, preempted bool, sched *core.Schedulable) {
	s.requeue(pid, cpu, sched)
}

// TaskYield implements core.Scheduler.
func (s *Sched) TaskYield(pid int, runtime time.Duration, cpu int, sched *core.Schedulable) {
	s.requeue(pid, cpu, sched)
}

func (s *Sched) requeue(pid, cpu int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a := s.st.acts[pid]; a != nil {
		s.enq(a, cpu, sched)
	}
}

// TaskDead implements core.Scheduler.
func (s *Sched) TaskDead(pid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.st.acts[pid]
	if a == nil {
		return
	}
	s.deq(a)
	if a.core >= 0 {
		delete(s.st.coreAct, a.core)
		a.core = -1
	}
	delete(s.st.acts, pid)
	if p := s.st.procs[a.procID]; p != nil && p.reclaimOwed > 0 {
		s.collectOwed(p)
		s.rebalance()
	}
}

// TaskDeparted implements core.Scheduler.
func (s *Sched) TaskDeparted(pid, cpu int) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.st.acts[pid]
	if a == nil {
		return nil
	}
	s.deq(a)
	if a.core >= 0 {
		delete(s.st.coreAct, a.core)
	}
	delete(s.st.acts, pid)
	tok := a.sched
	a.sched = nil
	return tok
}

// PickNextTask implements core.Scheduler: run the activation queued here.
func (s *Sched) PickNextTask(cpu int, curr *core.Schedulable, currRuntime time.Duration) *core.Schedulable {
	s.mu.Lock()
	q := s.st.queues[cpu]
	var nudge []int
	var pick *activation
	for _, pid := range q {
		a := s.st.acts[pid]
		if a.core == cpu {
			pick = a
			break
		}
		// Queued here but belongs (or can be bound) to a granted
		// core: leave it queued and nudge that core to pull it via
		// balance/migrate.
		if home := s.assignCore(a); home >= 0 && home != cpu {
			nudge = append(nudge, home)
			continue
		}
		// No grant anywhere: run it here (work conservation on the
		// shared core).
		pick = a
		break
	}
	if pick != nil {
		s.deq(pick)
	}
	var tok *core.Schedulable
	if pick != nil {
		tok = pick.sched
		pick.sched = nil
	}
	s.mu.Unlock()
	for _, c := range nudge {
		s.env.Resched(c)
	}
	return tok
}

// PntErr implements core.Scheduler.
func (s *Sched) PntErr(cpu int, pid int, err core.PickError, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a := s.st.acts[pid]; a != nil && sched != nil {
		s.enq(a, sched.CPU(), sched)
	}
}

// SelectTaskRQ implements core.Scheduler: an activation goes to its
// process's granted core; without one it shares the first unmanaged core.
func (s *Sched) SelectTaskRQ(pid, prevCPU int, wakeup bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.st.acts[pid]
	if a == nil {
		return prevCPU
	}
	if c := s.assignCore(a); c >= 0 {
		return c
	}
	// No grant: share the lowest non-managed core.
	managed := make(map[int]bool, len(s.st.managed))
	for _, c := range s.st.managed {
		managed[c] = true
	}
	for c := 0; c < s.env.NumCPUs(); c++ {
		if !managed[c] {
			return c
		}
	}
	return prevCPU
}

// MigrateTaskRQ implements core.Scheduler: the kernel moved the activation,
// so its core binding follows — if newCPU belongs to the activation's
// process and is free, rebind there.
func (s *Sched) MigrateTaskRQ(pid, newCPU int, sched *core.Schedulable) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.st.acts[pid]
	if a == nil {
		return nil
	}
	if a.core != newCPU && s.st.coreOwner[newCPU] == a.procID && a.procID != -1 {
		if _, busy := s.st.coreAct[newCPU]; !busy {
			if a.core >= 0 {
				delete(s.st.coreAct, a.core)
			}
			a.core = newCPU
			s.st.coreAct[newCPU] = pid
		}
	}
	old := a.sched
	a.sched = nil
	s.enq(a, newCPU, sched)
	return old
}

// Balance implements core.Scheduler: this is how activations reach their
// granted cores — when a granted core runs dry, pull the activation bound
// to it (or bind one queued on a wrong core) using the kernel's standard
// migration path.
func (s *Sched) Balance(cpu int) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.st.queues[cpu]) > 0 {
		return 0, false
	}
	owner := s.st.coreOwner[cpu]
	if owner == 0 {
		return 0, false
	}
	if pid, bound := s.st.coreAct[cpu]; bound {
		a := s.st.acts[pid]
		if a != nil && a.queued && a.queueOn != cpu {
			return uint64(pid), true
		}
		return 0, false
	}
	// No binding yet: adopt an activation of the owning process that is
	// queued on a core it has no claim to.
	p := s.st.procs[owner]
	if p == nil {
		return 0, false
	}
	for _, pid := range p.acts {
		a := s.st.acts[pid]
		if a == nil || !a.queued || a.queueOn == cpu {
			continue
		}
		if a.core == -1 {
			a.core = cpu
			s.st.coreAct[cpu] = pid
			return uint64(pid), true
		}
	}
	return 0, false
}

// BalanceErr implements core.Scheduler: drop the binding so the next
// balance pass can retry cleanly.
func (s *Sched) BalanceErr(cpu int, pid uint64, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bound, ok := s.st.coreAct[cpu]; ok && bound == int(pid) {
		if a := s.st.acts[int(pid)]; a != nil && a.queueOn != cpu {
			a.core = -1
			delete(s.st.coreAct, cpu)
		}
	}
}

// TaskTick implements core.Scheduler: round-robin activations sharing a
// core, and evict an activation running on a core it is not assigned to —
// once requeued, the Balance hook migrates it to its granted core.
func (s *Sched) TaskTick(cpu int, queued bool, currPID int, currRuntime time.Duration) {
	s.mu.Lock()
	resched := len(s.st.queues[cpu]) > 0
	if a := s.st.acts[currPID]; a != nil && a.core != cpu {
		resched = true
	}
	s.mu.Unlock()
	if resched {
		s.env.Resched(cpu)
	}
}

// RegisterQueue implements core.Scheduler.
func (s *Sched) RegisterQueue(q *core.HintQueue) int { s.st.queue = q; return 1 }

// RegisterReverseQueue implements core.Scheduler.
func (s *Sched) RegisterReverseQueue(q *core.RevQueue) int { s.st.rev = q; return 2 }

// UnregisterQueue implements core.Scheduler.
func (s *Sched) UnregisterQueue(id int) *core.HintQueue {
	q := s.st.queue
	s.st.queue = nil
	return q
}

// UnregisterRevQueue implements core.Scheduler.
func (s *Sched) UnregisterRevQueue(id int) *core.RevQueue {
	q := s.st.rev
	s.st.rev = nil
	return q
}

// EnterQueue implements core.Scheduler.
func (s *Sched) EnterQueue(id, count int) {
	if s.st.queue == nil {
		return
	}
	for i := 0; i < count; i++ {
		h, ok := s.st.queue.Pop()
		if !ok {
			return
		}
		s.ParseHint(h)
	}
}

// ParseHint implements core.Scheduler: core requests and activation
// registrations.
func (s *Sched) ParseHint(hint core.Hint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch h := hint.(type) {
	case CoreRequest:
		p := s.procOf(h.ProcID)
		p.requested = h.Cores
		s.rebalance()
	case RegisterActivation:
		p := s.procOf(h.ProcID)
		p.acts = append(p.acts, h.PID)
		if a := s.st.acts[h.PID]; a != nil {
			a.procID = h.ProcID
		}
	}
}

// GrantedCores reports how many cores a process currently holds (tests).
func (s *Sched) GrantedCores(procID int) int {
	if p := s.st.procs[procID]; p != nil {
		return len(p.granted)
	}
	return 0
}

// ReregisterPrepare implements core.Scheduler: the whole arbitration state,
// queues included, transfers (§3.3).
func (s *Sched) ReregisterPrepare() *core.TransferOut { return &core.TransferOut{State: s.st} }

// ReregisterInit implements core.Scheduler.
func (s *Sched) ReregisterInit(in *core.TransferIn) {
	if in == nil || in.State == nil {
		return
	}
	if st, ok := in.State.(*state); ok {
		s.st = st
	}
}
