package enokic

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/sched/locality"
	"enoki/internal/sched/shinjuku"
	"enoki/internal/sched/wfq"
	"enoki/internal/sim"
)

// Two Enoki scheduler modules loaded side by side, sharing the machine with
// CFS — the §2 resource-sharing goal ("different applications can use
// different schedulers, sharing cores and cycles between the schedulers").
func TestTwoEnokiModulesCoexist(t *testing.T) {
	const (
		policyShin = 1
		policyWFQ  = 2
	)
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	aShin := Load(k, policyShin, DefaultConfig(), func(env core.Env) core.Scheduler {
		return shinjuku.New(env, policyShin, 10*time.Microsecond)
	})
	aWFQ := Load(k, policyWFQ, DefaultConfig(), func(env core.Env) core.Scheduler {
		return wfq.New(env, policyWFQ)
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))

	done := map[int]int{}
	spawnSpinners := func(policy, n int, each time.Duration) {
		for i := 0; i < n; i++ {
			remaining := each
			k.Spawn("w", policy, kernel.BehaviorFunc(
				func(kk *kernel.Kernel, tk *kernel.Task) kernel.Action {
					if remaining <= 0 {
						done[policy]++
						return kernel.Action{Op: kernel.OpExit}
					}
					remaining -= 250 * time.Microsecond
					return kernel.Action{Run: 250 * time.Microsecond, Op: kernel.OpContinue}
				}))
		}
	}
	spawnSpinners(policyShin, 4, 10*time.Millisecond)
	spawnSpinners(policyWFQ, 4, 10*time.Millisecond)
	spawnSpinners(policyCFS, 4, 10*time.Millisecond)

	// A latency task on each module, to exercise wakeups concurrently.
	for _, p := range []int{policyShin, policyWFQ} {
		rounds := 0
		k.Spawn("lat", p, kernel.BehaviorFunc(
			func(kk *kernel.Kernel, tk *kernel.Task) kernel.Action {
				rounds++
				if rounds > 200 {
					done[p] += 100 // sentinel
					return kernel.Action{Op: kernel.OpExit}
				}
				return kernel.Action{Run: 20 * time.Microsecond, Op: kernel.OpSleep,
					SleepFor: 100 * time.Microsecond}
			}))
	}

	k.RunFor(300 * time.Millisecond)
	if done[policyShin] != 104 || done[policyWFQ] != 104 || done[policyCFS] != 4 {
		t.Fatalf("completions by policy: %v", done)
	}
	if st := aShin.Stats(); st.PntErrs != 0 {
		t.Fatalf("shinjuku pnt_errs: %+v", st)
	}
	if st := aWFQ.Stats(); st.PntErrs != 0 {
		t.Fatalf("wfq pnt_errs: %+v", st)
	}
	if k.NumTasks() != 0 {
		t.Fatalf("leaked tasks: %d", k.NumTasks())
	}
}

// Moving a task between two live Enoki modules exercises task_departed on
// one and task_new on the other, with token ownership handed through the
// framework.
func TestTaskMovesBetweenModules(t *testing.T) {
	const (
		policyA = 1
		policyB = 2
	)
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	aA := Load(k, policyA, DefaultConfig(), func(env core.Env) core.Scheduler {
		return wfq.New(env, policyA)
	})
	aB := Load(k, policyB, DefaultConfig(), func(env core.Env) core.Scheduler {
		return wfq.New(env, policyB)
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))

	finished := false
	remaining := 20 * time.Millisecond
	task := k.Spawn("mover", policyA, kernel.BehaviorFunc(
		func(kk *kernel.Kernel, tk *kernel.Task) kernel.Action {
			if remaining <= 0 {
				finished = true
				return kernel.Action{Op: kernel.OpExit}
			}
			remaining -= 100 * time.Microsecond
			return kernel.Action{Run: 100 * time.Microsecond, Op: kernel.OpContinue}
		}))

	// Bounce the task A→B→A every few ms while it runs.
	hop := 0
	var bounce func()
	bounce = func() {
		if task.State() == kernel.StateDead {
			return
		}
		hop++
		if hop%2 == 1 {
			k.SetScheduler(task, policyB)
		} else {
			k.SetScheduler(task, policyA)
		}
		eng.After(3*time.Millisecond, bounce)
	}
	eng.After(2*time.Millisecond, bounce)

	k.RunFor(200 * time.Millisecond)
	if !finished {
		t.Fatalf("task lost while hopping schedulers (state %v)", task.State())
	}
	if hop < 5 {
		t.Fatalf("only %d hops", hop)
	}
	if aA.Stats().PntErrs != 0 || aB.Stats().PntErrs != 0 {
		t.Fatalf("pnt_errs: A=%+v B=%+v", aA.Stats(), aB.Stats())
	}
}

// Queues survive a live upgrade when both versions share the hint format
// (§3.3): the old module passes them in its state capsule.
func TestHintQueueSurvivesUpgrade(t *testing.T) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	var sched *locality.Sched
	a := Load(k, policyEnoki, DefaultConfig(), func(env core.Env) core.Scheduler {
		sched = locality.New(env, policyEnoki)
		return sched
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	q := a.CreateHintQueue(16)

	task := k.Spawn("t", policyEnoki, kernel.BehaviorFunc(
		func(kk *kernel.Kernel, tk *kernel.Task) kernel.Action {
			return kernel.Action{Run: 20 * time.Microsecond, Op: kernel.OpSleep,
				SleepFor: 100 * time.Microsecond}
		}))
	q.Send(locality.HintMsg{PID: task.PID(), Locality: 4})
	k.RunFor(5 * time.Millisecond)

	upgraded := false
	k.Engine().After(0, func() {
		a.Upgrade(func(env core.Env) core.Scheduler {
			sched = locality.New(env, policyEnoki)
			return sched
		}, func(UpgradeReport) { upgraded = true })
	})
	k.RunFor(5 * time.Millisecond)
	if !upgraded {
		t.Fatal("upgrade incomplete")
	}
	// The new module adopted the old state, including the hint queue and
	// the group map: the pre-upgrade hint still steers placement...
	if _, ok := sched.GroupCore(4); !ok {
		t.Fatal("group map lost across upgrade")
	}
	// ...and the SAME queue handle keeps working against the new module.
	task2 := k.Spawn("t2", policyEnoki, kernel.BehaviorFunc(
		func(kk *kernel.Kernel, tk *kernel.Task) kernel.Action {
			return kernel.Action{Run: 20 * time.Microsecond, Op: kernel.OpSleep,
				SleepFor: 100 * time.Microsecond}
		}))
	if !q.Send(locality.HintMsg{PID: task2.PID(), Locality: 4}) {
		t.Fatal("queue handle dead after upgrade")
	}
	k.RunFor(5 * time.Millisecond)
	if task.CPU() != task2.CPU() {
		t.Fatalf("post-upgrade hint not applied: %d vs %d", task.CPU(), task2.CPU())
	}
	if st := a.Stats(); st.PntErrs != 0 {
		t.Fatalf("pnt_errs: %+v", st)
	}
}
