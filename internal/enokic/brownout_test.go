package enokic

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/sched/fifo"
	"enoki/internal/sched/shinjuku"
)

// degradeSpy wraps a module with a recordable (and optionally explosive)
// BrownoutMode.
type degradeSpy struct {
	core.Scheduler
	on      []bool
	explode bool
}

func (d *degradeSpy) SetDegraded(on bool) {
	if d.explode {
		panic("brownout handler exploded")
	}
	d.on = append(d.on, on)
}

func TestSetDegradedDelivery(t *testing.T) {
	spy := &degradeSpy{}
	_, a := faultRig(DefaultConfig(), func(env core.Env) core.Scheduler {
		spy.Scheduler = shinjuku.New(env, policyEnoki, 0)
		return spy
	})
	if !a.Degradable() {
		t.Fatal("BrownoutMode module not reported Degradable")
	}
	if !a.SetDegraded(true) || !a.SetDegraded(false) {
		t.Fatal("SetDegraded not delivered to a live module")
	}
	if len(spy.on) != 2 || !spy.on[0] || spy.on[1] {
		t.Fatalf("delivered sequence %v, want [true false]", spy.on)
	}
}

func TestSetDegradedNotImplemented(t *testing.T) {
	// fifo has no degraded mode: delivery must report false, not panic.
	_, a := faultRig(DefaultConfig(), func(env core.Env) core.Scheduler {
		return fifo.New(env, policyEnoki)
	})
	if a.Degradable() {
		t.Fatal("fifo reported Degradable")
	}
	if a.SetDegraded(true) {
		t.Fatal("SetDegraded claimed delivery to a module without BrownoutMode")
	}
}

func TestSetDegradedPanicTripsKill(t *testing.T) {
	k, a := faultRig(DefaultConfig(), func(env core.Env) core.Scheduler {
		return &degradeSpy{Scheduler: fifo.New(env, policyEnoki), explode: true}
	})
	if a.SetDegraded(true) {
		t.Fatal("a panicking SetDegraded claimed delivery")
	}
	if !a.Killed() {
		t.Fatal("panic inside SetDegraded did not trip the kill road")
	}
	k.RunFor(time.Millisecond) // let the kill event run
	rep := a.Failure()
	if rep == nil || rep.Fault.Cause != core.FaultPanic {
		t.Fatalf("failure report %+v, want FaultPanic", rep)
	}
	// A dead module never sees another crossing.
	if a.SetDegraded(false) {
		t.Fatal("SetDegraded delivered to a killed module")
	}
}
