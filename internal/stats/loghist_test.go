package stats

import (
	"math"
	"testing"
	"time"
)

func TestLogHistEmpty(t *testing.T) {
	var h LogHist
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero-value LogHist should report all zeros")
	}
	s := h.Summarize()
	if s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestLogHistBasics(t *testing.T) {
	var h LogHist
	h.Record(100 * time.Nanosecond)
	h.Record(200 * time.Nanosecond)
	h.Record(300 * time.Nanosecond)
	if h.Count() != 3 || h.Min() != 100 || h.Max() != 300 {
		t.Errorf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if h.Mean() != 200 {
		t.Errorf("mean = %v, want 200", h.Mean())
	}
	// Negative values clamp to zero rather than corrupting the buckets.
	h.RecordValue(-5)
	if h.Min() != 0 || h.Count() != 4 {
		t.Errorf("after negative record: min=%d count=%d", h.Min(), h.Count())
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset left data behind")
	}
}

// TestLogHistQuantileAccuracy pins the documented precision: 8 sub-buckets
// per octave bounds relative quantile error at ~12.5%.
func TestLogHistQuantileAccuracy(t *testing.T) {
	var h LogHist
	for v := int64(1); v <= 100000; v++ {
		h.RecordValue(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := float64(q) * 100000
		got := float64(h.Quantile(q))
		if relErr := math.Abs(got-exact) / exact; relErr > 0.13 {
			t.Errorf("q=%v: got %v, exact %v (rel err %.3f > 0.13)", q, got, exact, relErr)
		}
	}
	// Quantiles clamp to observed extremes and handle out-of-range q.
	if h.Quantile(0) < h.Min() || h.Quantile(1) != h.Max() {
		t.Error("quantile endpoints exceed observed range")
	}
	if h.Quantile(-1) < h.Min() || h.Quantile(2) != h.Max() {
		t.Error("out-of-range q not clamped")
	}
}

func TestLogHistMerge(t *testing.T) {
	var a, b, whole LogHist
	for v := int64(1); v <= 1000; v++ {
		whole.RecordValue(v)
		if v%2 == 0 {
			a.RecordValue(v)
		} else {
			b.RecordValue(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged count/min/max = %d/%d/%d, want %d/%d/%d",
			a.Count(), a.Min(), a.Max(), whole.Count(), whole.Min(), whole.Max())
	}
	if a.Mean() != whole.Mean() {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%v: merged %d != whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging an empty histogram is a no-op.
	before := a.Summarize()
	var empty LogHist
	a.Merge(&empty)
	if a.Summarize() != before {
		t.Error("merging an empty histogram changed the target")
	}
}

// TestLogHistRecordZeroAlloc pins the always-on contract: Record never
// allocates on any value magnitude.
func TestLogHistRecordZeroAlloc(t *testing.T) {
	var h LogHist
	avg := testing.AllocsPerRun(1000, func() {
		h.RecordValue(1)
		h.RecordValue(130)
		h.RecordValue(1 << 20)
		h.RecordValue(1 << 50)
	})
	if avg != 0 {
		t.Errorf("RecordValue: %v allocs/op, want 0", avg)
	}
}
