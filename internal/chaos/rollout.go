// Rollout chaos: the fleet-rollout fault plane. The fleet campaign
// (fleet.go) sabotages a steady-state cluster; the rollout campaign
// sabotages the cluster while it is *changing* — a canary rollout of a new
// module generation is in flight when machines die, the new generation is
// seeded faulty above a threshold, or failure detection is delayed. The
// oracle holds the rollout machinery to its contract: the rollout always
// resolves, a halted rollout leaves no machine on the new generation, and
// the report's upgrade/rollback counts balance against the final slot
// states. As everywhere in this package, every fault is a seeded draw, so
// a failing run replays bit-for-bit from its one-line spec string
// (`r1:<class>:<seed>:<mask>`).

package chaos

import (
	"bytes"
	"fmt"
	"time"

	"enoki/internal/cluster"
	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/record"
	"enoki/internal/schedtest"
	"enoki/internal/schedtest/conformance"
)

// Rollout campaign shape: the ten-machine recorded cluster of the fleet
// plane, with a canary rollout started at t=0 whose waves (canary 1, widen
// 2, 1ms soak) span the first handful of milliseconds — the window the
// fault draws target.
const (
	rolloutCanary  = 0.1
	rolloutWiden   = 2
	rolloutObserve = time.Millisecond
	rolloutVersion = "v2"
)

// rolloutSalt separates the rollout fault stream from the workload stream
// that shares the campaign seed.
const rolloutSalt uint64 = 0x94d049bb133111eb

// RolloutEvent is one rollout-plane fault. Field meaning is plane-specific:
// RolloutKill fail-stops Machine at At; RolloutFaulty makes the new
// generation panic in init on machines >= Threshold; RolloutDelayDetect
// adds Delay to the cluster's failure-detection bound.
type RolloutEvent struct {
	Plane     Plane
	Machine   int
	At        int64
	Threshold int
	Delay     int64
}

func (e RolloutEvent) String() string {
	switch e.Plane {
	case PlaneRolloutKill:
		return fmt.Sprintf("%v[m%d@%v]", e.Plane, e.Machine, time.Duration(e.At))
	case PlaneRolloutFaulty:
		return fmt.Sprintf("%v[m>=%d]", e.Plane, e.Threshold)
	case PlaneRolloutDelayDetect:
		return fmt.Sprintf("%v[+%v]", e.Plane, time.Duration(e.Delay))
	default:
		return e.Plane.String()
	}
}

// RolloutSchedule is one rollout run's fault plan: a class, the seed every
// draw derives from, the generated events, and the enable mask a minimizer
// clears bits in.
type RolloutSchedule struct {
	Seed   uint64
	Class  string
	Events []RolloutEvent
	Mask   uint64
}

// EnabledAt reports whether event i survives the mask.
func (s RolloutSchedule) EnabledAt(i int) bool { return s.Mask>>uint(i)&1 == 1 }

// Enabled returns the surviving events, for reporting.
func (s RolloutSchedule) Enabled() []RolloutEvent {
	out := make([]RolloutEvent, 0, len(s.Events))
	for i, ev := range s.Events {
		if s.EnabledAt(i) {
			out = append(out, ev)
		}
	}
	return out
}

// EnabledCount returns how many events survive the mask.
func (s RolloutSchedule) EnabledCount() int { return len(s.Enabled()) }

// Spec renders the schedule as its replay string. GenerateRollout is a pure
// function of (seed, class), so seed + mask reconstructs the exact fault
// plan: the spec is the whole reproducer.
func (s RolloutSchedule) Spec() string {
	return fmt.Sprintf("r1:%s:%x:%x", s.Class, s.Seed, s.Mask)
}

// ParseRolloutSpec reconstructs a rollout schedule from a replay spec
// (r1:<class>:<seed hex>:<mask hex>), regenerating the events from the
// seed and applying the mask.
func ParseRolloutSpec(spec string) (RolloutSchedule, error) {
	class, seed, mask, err := splitSpec(spec, "r1", "r1:<class>:<seed>:<mask>")
	if err != nil {
		return RolloutSchedule{}, err
	}
	c, ok := caseByName(class)
	if !ok {
		return RolloutSchedule{}, &SpecError{Spec: spec, Field: "class",
			Msg: fmt.Sprintf("unknown class %q", class)}
	}
	if c.NewModule == nil {
		return RolloutSchedule{}, fmt.Errorf("chaos: class %q has no upgradable module", class)
	}
	s := GenerateRollout(seed, class)
	if err := checkMask(spec, mask, s.Mask, len(s.Events)); err != nil {
		return RolloutSchedule{}, err
	}
	s.Mask = mask
	return s, nil
}

// GenerateRollout derives a rollout fault plan from a seed for one
// scheduler class — a pure function, so the seed alone reproduces the
// plan. The first draw is always a machine kill timed inside the rollout's
// wave window; up to two more draws add a faulty new generation above a
// threshold, a detection delay, or a second kill (never more than two
// kills, so the survivors keep the capacity to finish the workload).
func GenerateRollout(seed uint64, class string) RolloutSchedule {
	rng := ktime.NewRand(seed ^ rolloutSalt)
	n := 1 + rng.Intn(3)
	evs := make([]RolloutEvent, 0, n)
	kills := map[int]bool{}
	drawKill := func() RolloutEvent {
		for {
			m := rng.Intn(fleetMachines)
			if kills[m] {
				continue
			}
			kills[m] = true
			return RolloutEvent{
				Plane:   PlaneRolloutKill,
				Machine: m,
				At:      int64(300*time.Microsecond) + int64(rng.Intn(3000))*int64(time.Microsecond),
			}
		}
	}
	evs = append(evs, drawKill())
	for len(evs) < n {
		switch rng.Intn(3) {
		case 0:
			if len(kills) >= 2 {
				continue
			}
			evs = append(evs, drawKill())
		case 1:
			evs = append(evs, RolloutEvent{
				Plane:     PlaneRolloutFaulty,
				Threshold: 1 + rng.Intn(fleetMachines-1),
			})
		case 2:
			evs = append(evs, RolloutEvent{
				Plane: PlaneRolloutDelayDetect,
				Delay: int64(1+rng.Intn(3)) * int64(500*time.Microsecond),
			})
		}
	}
	return RolloutSchedule{Seed: seed, Class: class, Events: evs, Mask: 1<<uint(len(evs)) - 1}
}

// RolloutRunConfig tunes one rollout campaign run.
type RolloutRunConfig struct {
	// Parallel drives the fleet on worker goroutines; serial and parallel
	// runs of one schedule must agree byte for byte.
	Parallel bool
	// NoDeathResolve re-introduces the seeded bug where a dead machine's
	// in-flight rollout slot is never resolved and the wave barrier hangs.
	// The campaign exists to prove the oracle catches this.
	NoDeathResolve bool
}

// RolloutOutcome is one rollout campaign's observable result plus the
// oracle's verdict.
type RolloutOutcome struct {
	Schedule RolloutSchedule
	Stats    cluster.Stats
	Jobs     []cluster.Job
	Logs     [][][]byte
	// Resolved reports whether the rollout finished within the budget;
	// Report is only meaningful when it did (an unresolved rollout is
	// itself a violation).
	Resolved bool
	Report   cluster.RolloutReport
	Slots    []cluster.SlotStatus
	// Violations is the oracle's verdict: empty means the rollout
	// machinery upheld every invariant under the fault plan.
	Violations []string
}

// Failed reports whether the oracle found any invariant breach.
func (r *RolloutOutcome) Failed() bool { return len(r.Violations) > 0 }

// RolloutCampaign runs one rollout fault plan against a ten-machine
// recorded cluster of the schedule's class: every machine loads the
// class's module above CFS on each shard, a seeded job mix is submitted up
// front, a canary rollout of a fresh generation starts at t=0, and the
// enabled faults land while its waves are in flight. Deterministic end to
// end: same schedule + same config → same RolloutOutcome.
func RolloutCampaign(s RolloutSchedule, rc RolloutRunConfig) RolloutOutcome {
	c, ok := caseByName(s.Class)
	if !ok || c.NewModule == nil {
		return RolloutOutcome{Schedule: s, Violations: []string{fmt.Sprintf("class %q has no upgradable module", s.Class)}}
	}

	detect := fleetDetectDelay
	faultyThreshold := fleetMachines // above every machine: no faults
	for i, ev := range s.Events {
		if !s.EnabledAt(i) {
			continue
		}
		switch ev.Plane {
		case PlaneRolloutDelayDetect:
			detect += time.Duration(ev.Delay)
		case PlaneRolloutFaulty:
			if ev.Threshold < faultyThreshold {
				faultyThreshold = ev.Threshold
			}
		}
	}

	bufs := make([][]*bytes.Buffer, fleetMachines)
	recs := make([][]*record.Recorder, fleetMachines)
	cl := cluster.New(cluster.Config{
		Machines:        fleetMachines,
		Machine:         kernel.Machine8(),
		Parallel:        rc.Parallel,
		Policy:          conformance.PolicyTest,
		Placer:          &cluster.Pack{PerCPU: 2},
		RebalanceSpread: 3,
		NetLatency:      fleetNetLatency,
		DetectDelay:     detect,
		SetupModules: func(mi int, sk *kernel.ShardedKernel) []*enokic.Adapter {
			bufs[mi] = make([]*bytes.Buffer, sk.NumShards())
			recs[mi] = make([]*record.Recorder, sk.NumShards())
			ads := make([]*enokic.Adapter, sk.NumShards())
			for sh := 0; sh < sk.NumShards(); sh++ {
				k := sk.ShardKernel(sh)
				ads[sh] = enokic.Load(k, conformance.PolicyTest, enokic.DefaultConfig(),
					func(env core.Env) core.Scheduler { return c.NewModule(env, k.NumCPUs()) })
				k.RegisterClass(conformance.PolicyCFS, kernel.NewCFS(k))
				bufs[mi][sh] = &bytes.Buffer{}
				recs[mi][sh] = record.New(k, bufs[mi][sh], conformance.PolicyCFS, record.DefaultCosts())
				ads[sh].SetRecorder(recs[mi][sh])
			}
			return ads
		},
	})
	defer cl.Close()

	rng := ktime.NewRand(s.Seed ^ workloadSalt)
	for i := 0; i < fleetJobs; i++ {
		cl.Submit(cluster.JobSpec{
			Cycles: 2 + rng.Intn(5),
			Run:    time.Duration(80+rng.Intn(250)) * time.Microsecond,
			Sleep:  time.Duration(rng.Intn(2)) * 150 * time.Microsecond,
		})
	}
	factory := func(mi int, env core.Env) core.Scheduler {
		sched := c.NewModule(env, env.NumCPUs())
		if mi >= faultyThreshold {
			return &schedtest.Injector{Scheduler: sched, PanicInInit: true}
		}
		return sched
	}
	ro, err := cl.StartRollout(cluster.RolloutConfig{
		Version: rolloutVersion, Factory: factory,
		Canary: rolloutCanary, Widen: rolloutWiden, Observe: rolloutObserve,
		NoDeathResolve: rc.NoDeathResolve,
	})
	if err != nil {
		return RolloutOutcome{Schedule: s, Violations: []string{fmt.Sprintf("StartRollout: %v", err)}}
	}
	for i, ev := range s.Events {
		if s.EnabledAt(i) && ev.Plane == PlaneRolloutKill {
			cl.FailMachine(ev.Machine, time.Duration(ev.At))
		}
	}
	// A fixed virtual budget, not RunUntilIdle: the record drain tasks
	// tick forever — and an unresolved rollout (the seeded bug this
	// campaign hunts) would hold RunUntilIdle open forever anyway.
	cl.Run(fleetBudget)

	res := RolloutOutcome{
		Schedule: s, Stats: cl.Stats(),
		Resolved: ro.Done(), Report: ro.Report(), Slots: ro.Slots(),
		Logs: make([][][]byte, fleetMachines),
	}
	for mi := 0; mi < fleetMachines; mi++ {
		res.Logs[mi] = make([][]byte, len(bufs[mi]))
		for sh := range bufs[mi] {
			recs[mi][sh].Close()
			res.Logs[mi][sh] = bufs[mi][sh].Bytes()
		}
	}
	for i := 0; i < cl.NumJobs(); i++ {
		res.Jobs = append(res.Jobs, cl.Job(i))
	}
	res.Violations = rolloutOracle(&res, cl)
	return res
}

// rolloutOracle evaluates the rollout invariants. Every rule is a property
// any correct rollout machinery must uphold under any fault plan drawn
// from this plane, so the verdict never needs to know what the faults
// "should" have done.
func rolloutOracle(r *RolloutOutcome, cl *cluster.Cluster) []string {
	var v []string
	add := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	// The rollout always resolves: every wave barrier is retired by acks
	// or by death detection. An unresolved rollout at the end of a budget
	// an order of magnitude past the wave span is the hang this plane
	// exists to catch.
	if !r.Resolved {
		add("rollout unresolved at end of budget: a wave barrier hung")
		return v // the remaining rules assume a final report
	}

	rep := r.Report
	// Upgrade/rollback report counts balance against the final slot
	// states, and no slot is stuck in a transient state.
	var healthy, rolledBack, dead, pending int
	for _, sl := range r.Slots {
		switch sl.State {
		case cluster.SlotHealthy:
			healthy++
		case cluster.SlotRolledBack:
			rolledBack++
		case cluster.SlotDead:
			dead++
		case cluster.SlotPending:
			pending++
		default:
			add("machine %d stuck in transient rollout state %v", sl.Machine, sl.State)
		}
	}
	if healthy != rep.Upgraded || rolledBack != rep.RolledBack || dead != rep.Dead {
		add("report counts unbalanced: upgraded %d/%d, rolled back %d/%d, dead %d/%d (slots/report)",
			healthy, rep.Upgraded, rolledBack, rep.RolledBack, dead, rep.Dead)
	}
	if healthy+rolledBack+dead+pending != rep.Targets {
		add("slots don't cover targets: %d+%d+%d+%d != %d", healthy, rolledBack, dead, pending, rep.Targets)
	}

	if rep.Halted {
		// A halted rollout leaves no machine upgraded...
		if rep.Upgraded != 0 {
			add("halted rollout reports %d machines still upgraded", rep.Upgraded)
		}
		// ...and at least one verdict must justify the halt.
		justified := false
		for _, vd := range rep.Verdicts {
			if !vd.Healthy {
				justified = true
			}
		}
		if !justified {
			add("halted rollout has no failing verdict")
		}
		// No machine left on the new module after a halted rollout: every
		// alive machine's every live shard serves the previous generation.
		views := cl.Views()
		for mi := 0; mi < cl.NumMachines(); mi++ {
			if !views[mi].Alive {
				continue
			}
			for sh, ad := range cl.Machine(mi).Adapters() {
				if ad == nil || ad.Killed() {
					continue
				}
				if ad.Version() == rolloutVersion {
					add("halted rollout left machine %d shard %d on %s", mi, sh, rolloutVersion)
				}
			}
		}
	} else if rep.Completed {
		// A completed rollout converged: every surviving target serves the
		// new generation on every live shard.
		views := cl.Views()
		for _, sl := range r.Slots {
			if sl.State != cluster.SlotHealthy {
				continue
			}
			if !views[sl.Machine].Alive {
				continue // died after resolution; nothing to check
			}
			for sh, ad := range cl.Machine(sl.Machine).Adapters() {
				if ad == nil || ad.Killed() {
					continue
				}
				if ad.Version() != rolloutVersion {
					add("completed rollout left machine %d shard %d on %s", sl.Machine, sh, ad.Version())
				}
			}
		}
	} else {
		add("resolved rollout neither completed nor halted: %+v", rep)
	}

	// The cluster still delivers: kills are a minority by construction, so
	// every submitted job finishes within the budget.
	if r.Stats.Done != r.Stats.Submitted {
		add("lost jobs: %d of %d completed within budget", r.Stats.Done, r.Stats.Submitted)
	}
	// The record logs survive whatever the faults did to the fleet.
	for mi, perShard := range r.Logs {
		for sh, l := range perShard {
			if l == nil {
				continue
			}
			if _, err := record.Load(bytes.NewReader(l)); err != nil {
				add("machine %d shard %d record log not decodable: %v", mi, sh, err)
			}
		}
	}
	return v
}

// MinimizeRollout shrinks a failing rollout schedule to a minimal
// reproducer: greedy ddmin over the event mask, exactly as Minimize does
// for single-machine schedules. The surviving spec string is the whole
// reproducer.
func MinimizeRollout(s RolloutSchedule, rc RolloutRunConfig) (RolloutSchedule, RolloutOutcome) {
	res := RolloutCampaign(s, rc)
	if !res.Failed() {
		return s, res
	}
	for changed := true; changed; {
		changed = false
		for i := range s.Events {
			if !s.EnabledAt(i) || s.EnabledCount() == 1 {
				continue
			}
			trial := s
			trial.Mask &^= 1 << uint(i)
			if tr := RolloutCampaign(trial, rc); tr.Failed() {
				s, res = trial, tr
				changed = true
			}
		}
	}
	return s, res
}
