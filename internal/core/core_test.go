package core

import (
	"testing"
	"time"
)

func TestSchedulableLifecycle(t *testing.T) {
	s := NewSchedulable(42, 3, 7)
	if s.PID() != 42 || s.CPU() != 3 || s.Gen() != 7 {
		t.Fatalf("fields: %v", s)
	}
	if s.Consumed() {
		t.Fatal("fresh token consumed")
	}
	s.Consume()
	if !s.Consumed() {
		t.Fatal("Consume did not stick")
	}
}

func TestSchedulableRefRoundTrip(t *testing.T) {
	s := NewSchedulable(1, 2, 3)
	r := s.Ref()
	if !r.Equal(&SchedulableRef{PID: 1, CPU: 2, Gen: 3}) {
		t.Fatalf("ref = %+v", r)
	}
	m := r.Materialize()
	if m.PID() != 1 || m.CPU() != 2 || m.Gen() != 3 {
		t.Fatalf("materialized = %v", m)
	}
	var nilSched *Schedulable
	if nilSched.Ref() != nil {
		t.Fatal("nil token ref not nil")
	}
	var nilRef *SchedulableRef
	if nilRef.Materialize() != nil {
		t.Fatal("nil ref materialized")
	}
	if !nilRef.Equal(nil) || nilRef.Equal(r) {
		t.Fatal("nil ref equality wrong")
	}
	if nilSched.String() != "Schedulable(nil)" {
		t.Fatal("nil token String")
	}
}

// traceScheduler records which trait functions Dispatch invoked.
type traceScheduler struct {
	BaseScheduler
	calls []string
	lastS *Schedulable
}

func (s *traceScheduler) GetPolicy() int { return 9 }
func (s *traceScheduler) PickNextTask(cpu int, curr *Schedulable, rt time.Duration) *Schedulable {
	s.calls = append(s.calls, "pick")
	return NewSchedulable(5, cpu, 1)
}
func (s *traceScheduler) TaskNew(pid int, rt time.Duration, r bool, allowed []int, sc *Schedulable) {
	s.calls = append(s.calls, "new")
	s.lastS = sc
}
func (s *traceScheduler) TaskWakeup(pid int, rt time.Duration, d bool, l, w int, sc *Schedulable) {
	s.calls = append(s.calls, "wakeup")
	s.lastS = sc
}
func (s *traceScheduler) TaskPreempt(pid int, rt time.Duration, cpu int, preempted bool, sc *Schedulable) {
	s.calls = append(s.calls, "preempt")
}
func (s *traceScheduler) TaskYield(pid int, rt time.Duration, cpu int, sc *Schedulable) {
	s.calls = append(s.calls, "yield")
}
func (s *traceScheduler) TaskDeparted(pid, cpu int) *Schedulable {
	s.calls = append(s.calls, "departed")
	return nil
}
func (s *traceScheduler) SelectTaskRQ(pid, prev int, wakeup bool) int {
	s.calls = append(s.calls, "select")
	return prev + 1
}
func (s *traceScheduler) MigrateTaskRQ(pid, newCPU int, sc *Schedulable) *Schedulable {
	s.calls = append(s.calls, "migrate")
	return sc
}

func TestDispatchRoutesEveryKind(t *testing.T) {
	s := &traceScheduler{}
	cases := []struct {
		m    *Message
		want string
	}{
		{&Message{Kind: MsgPickNextTask, CPU: 2}, "pick"},
		{&Message{Kind: MsgTaskNew, PID: 1}, "new"},
		{&Message{Kind: MsgTaskWakeup, PID: 1}, "wakeup"},
		{&Message{Kind: MsgTaskPreempt, PID: 1}, "preempt"},
		{&Message{Kind: MsgTaskYield, PID: 1}, "yield"},
		{&Message{Kind: MsgTaskDeparted, PID: 1}, "departed"},
		{&Message{Kind: MsgSelectTaskRQ, PrevCPU: 3}, "select"},
		{&Message{Kind: MsgMigrateTaskRQ, PID: 1, NewCPU: 2}, "migrate"},
	}
	for _, c := range cases {
		before := len(s.calls)
		Dispatch(s, c.m)
		if len(s.calls) != before+1 || s.calls[len(s.calls)-1] != c.want {
			t.Fatalf("kind %v routed to %v, want %s", c.m.Kind, s.calls, c.want)
		}
	}
	// No-op base methods must be reachable without panic.
	for _, kind := range []Kind{
		MsgPntErr, MsgTaskDead, MsgTaskBlocked, MsgTaskAffinityChanged,
		MsgTaskPrioChanged, MsgTaskTick, MsgBalance, MsgBalanceErr,
		MsgEnterQueue, MsgParseHint,
	} {
		Dispatch(s, &Message{Kind: kind})
	}
}

func TestDispatchFillsReplies(t *testing.T) {
	s := &traceScheduler{}
	m := &Message{Kind: MsgPickNextTask, CPU: 4}
	Dispatch(s, m)
	if m.RetSched == nil || m.RetSched.PID != 5 || m.RetSched.CPU != 4 {
		t.Fatalf("RetSched = %+v", m.RetSched)
	}
	if m.TakeRetSched() == nil {
		t.Fatal("live token object missing")
	}
	m = &Message{Kind: MsgSelectTaskRQ, PrevCPU: 3}
	Dispatch(s, m)
	if m.RetCPU != 4 {
		t.Fatalf("RetCPU = %d", m.RetCPU)
	}
}

func TestDispatchMaterializesTokensFromRefs(t *testing.T) {
	// Replay path: no live object attached, only the recorded ref.
	s := &traceScheduler{}
	m := &Message{Kind: MsgTaskWakeup, PID: 7, Sched: &SchedulableRef{PID: 7, CPU: 2, Gen: 9}}
	Dispatch(s, m)
	if s.lastS == nil || s.lastS.PID() != 7 || s.lastS.Gen() != 9 {
		t.Fatalf("materialized token = %v", s.lastS)
	}
}

func TestDispatchAttachedObjectWins(t *testing.T) {
	s := &traceScheduler{}
	tok := NewSchedulable(7, 2, 9)
	m := &Message{Kind: MsgTaskNew, PID: 7}
	m.AttachSched(tok)
	Dispatch(s, m)
	if s.lastS != tok {
		t.Fatal("live token object not delivered")
	}
	if m.Sched == nil || m.Sched.Gen != 9 {
		t.Fatalf("ref not derived: %+v", m.Sched)
	}
}

func TestDispatchRejectsControlPlane(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("control-plane kind dispatched")
		}
	}()
	Dispatch(&traceScheduler{}, &Message{Kind: MsgRegisterQueue})
}

func TestHintQueue(t *testing.T) {
	q := NewHintQueue(2)
	if !q.Push("a") || !q.Push("b") || q.Push("c") {
		t.Fatal("capacity semantics broken")
	}
	if q.Dropped() != 1 || q.Len() != 2 {
		t.Fatalf("dropped=%d len=%d", q.Dropped(), q.Len())
	}
	got := q.Drain()
	if len(got) != 2 || got[0] != "a" {
		t.Fatalf("drain = %v", got)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty")
	}
}

func TestRevQueueObserver(t *testing.T) {
	q := NewRevQueue(4)
	var seen []RevMessage
	q.OnPush = func(m RevMessage) { seen = append(seen, m) }
	q.Push(1)
	q.Push(2)
	if len(seen) != 2 {
		t.Fatalf("observer saw %v", seen)
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("pop = %v", v)
	}
	if got := q.Drain(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("drain = %v", got)
	}
}

func TestKindStrings(t *testing.T) {
	if MsgPickNextTask.String() != "pick_next_task" {
		t.Fatal("kind name wrong")
	}
	if Kind(999).String() != "kind(999)" {
		t.Fatal("unknown kind formatting")
	}
	if LockAcquire.String() != "acquire" || LockCreate.String() != "create" || LockRelease.String() != "release" {
		t.Fatal("lock op names")
	}
	if PickWrongCPU.String() != "wrong-cpu" || PickStale.String() != "stale-schedulable" {
		t.Fatal("pick error names")
	}
}
