package chaos

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestGenerateDeterministic pins the property the whole engine rests on:
// Generate is a pure function of (seed, class), so a spec string alone can
// reconstruct a fault plan months later.
func TestGenerateDeterministic(t *testing.T) {
	for _, class := range ClassNames() {
		a := Generate(42, class)
		b := Generate(42, class)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Generate(42) differs across calls:\n%+v\n%+v", class, a, b)
		}
		if n := len(a.Events); n < 2 || n > 5 {
			t.Errorf("%s: generated %d events, want 2..5", class, n)
		}
		if want := uint64(1)<<uint(len(a.Events)) - 1; a.Mask != want {
			t.Errorf("%s: fresh schedule mask %x, want all-enabled %x", class, a.Mask, want)
		}
	}
}

// TestGenerateRespectsClassCapabilities: the CFS baseline has no module to
// sabotage and non-hint classes have no ring to storm, so those planes must
// never be drawn for them.
func TestGenerateRespectsClassCapabilities(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		for _, ev := range Generate(seed, "cfs").Events {
			switch ev.Plane {
			case PlaneIPIDrop, PlaneIPIDelay, PlaneIPIDup, PlaneTimerSkew:
			default:
				t.Fatalf("seed %d: module plane %v generated for moduleless cfs", seed, ev.Plane)
			}
		}
		for _, ev := range Generate(seed, "wfq").Events {
			if ev.Plane == PlaneHintStorm {
				t.Fatalf("seed %d: hint storm generated for hintless wfq", seed)
			}
		}
	}
}

// TestSpecRoundTrip: Spec → ParseSpec reconstructs the schedule exactly,
// including a minimizer-narrowed mask, and malformed specs are rejected.
func TestSpecRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		for _, class := range []string{"cfs", "wfq", "shinjuku", "arbiter"} {
			s := Generate(seed, class)
			s.Mask &= 0b101 // a partial mask, as the minimizer would leave
			got, err := ParseSpec(s.Spec())
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", s.Spec(), err)
			}
			if !reflect.DeepEqual(got, s) {
				t.Fatalf("round trip of %q:\n got %+v\nwant %+v", s.Spec(), got, s)
			}
		}
	}
	for _, bad := range []string{
		"", "v1", "v1:wfq:1", "v1:wfq:1:1:1", "v2:wfq:1:1",
		"v1:nosuchclass:1:1", "v1:wfq:xyz:1", "v1:wfq:1:xyz",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", bad)
		}
	}
}

// TestRunDeterministic: one schedule, two runs, identical Results down to the
// record-log bytes — the engine's reproducibility claim, mechanically checked.
func TestRunDeterministic(t *testing.T) {
	s := Generate(7, "wfq")
	a := Run(s, RunConfig{})
	b := Run(s, RunConfig{})
	if a.Completed != b.Completed || a.Killed != b.Killed {
		t.Errorf("runs diverged: completed %d/%d killed %v/%v",
			a.Completed, b.Completed, a.Killed, b.Killed)
	}
	if !reflect.DeepEqual(a.Violations, b.Violations) {
		t.Errorf("verdicts diverged: %v vs %v", a.Violations, b.Violations)
	}
	if len(a.RecordLog) == 0 {
		t.Fatal("run produced no record log")
	}
	if !bytes.Equal(a.RecordLog, b.RecordLog) {
		t.Errorf("record logs differ across identical runs: %d vs %d bytes",
			len(a.RecordLog), len(b.RecordLog))
	}
}

// TestCampaignAllClassesClean is the acceptance gate: a ≥500-run seeded
// campaign round-robining every scheduler class, every fault plane enabled,
// judged by the oracle — and the shipped configuration survives all of it.
func TestCampaignAllClassesClean(t *testing.T) {
	runs := 550
	if testing.Short() {
		runs = 77
	}
	res := Campaign(CampaignConfig{Runs: runs, Seed: 0xe120c1})
	if res.Runs != runs {
		t.Errorf("campaign stopped early: %d of %d runs", res.Runs, runs)
	}
	for _, f := range res.Failures {
		t.Errorf("FAIL %s\n  minimized: %v\n  violations: %v\n  reproduce: %s",
			f.Result.Schedule.Spec(), f.Minimized.Enabled(), f.MinResult.Violations, f.Replay)
	}
}

// TestSeededRollbackBugCaughtAndMinimized runs the campaign against the
// deliberately seeded bug — transactional rollback disabled, so a faulty
// upgrade kills the module — and requires the engine to (1) catch it, (2)
// shrink the failing schedule to ≤5 events, (3) hand back a spec that still
// reproduces under ParseSpec, and (4) show the shipped rollback configuration
// passes the very same schedule.
func TestSeededRollbackBugCaughtAndMinimized(t *testing.T) {
	buggy := RunConfig{NoRollback: true}
	res := Campaign(CampaignConfig{Runs: 60, Seed: 0xbadcafe, MaxFailures: 1, Run: buggy})
	if len(res.Failures) == 0 {
		t.Fatalf("campaign (%d runs) never caught the seeded rollback bug", res.Runs)
	}
	f := res.Failures[0]
	if n := f.Minimized.EnabledCount(); n > 5 {
		t.Errorf("minimized to %d events, want ≤5: %v", n, f.Minimized.Enabled())
	}
	hasUpgradeKill := false
	for _, ev := range f.Minimized.Enabled() {
		if ev.Plane == PlaneUpgradeKill {
			hasUpgradeKill = true
		}
	}
	if !hasUpgradeKill {
		t.Errorf("minimized schedule lost the causal event: %v", f.Minimized.Enabled())
	}
	if !strings.Contains(f.Replay, "-norollback") {
		t.Errorf("reproducer %q does not carry the buggy configuration", f.Replay)
	}

	// The one-liner is the whole reproducer: parse it back and re-run.
	replayed, err := ParseSpec(f.Minimized.Spec())
	if err != nil {
		t.Fatalf("minimized spec does not parse: %v", err)
	}
	if r := Run(replayed, buggy); !r.Failed() {
		t.Error("replayed minimized spec no longer fails under the buggy config")
	}
	if r := Run(replayed, RunConfig{}); r.Failed() {
		t.Errorf("transactional rollback does not fix the minimized schedule: %v", r.Violations)
	}
}

// TestHintStormDropsAccounted pins the drop-accounting invariant where drops
// are guaranteed: the module is first killed by a permanent stall (a
// kill-justifying plane), then a 40-hint storm hits the orphaned capacity-8
// ring. Eight pushes land, the rest must surface as counted drops — and the
// oracle must accept the run, because shedding is not a correctness breach.
func TestHintStormDropsAccounted(t *testing.T) {
	s := Schedule{
		Seed:  99,
		Class: "arbiter",
		Events: []Event{
			{Plane: PlaneStall, At: int64(time.Millisecond)}, // Dur 0: permanent
			{Plane: PlaneHintStorm, At: int64(40 * time.Millisecond), Count: 40},
		},
		Mask: 0b11,
	}
	r := Run(s, RunConfig{})
	if r.Failed() {
		t.Fatalf("storm-after-kill run failed the oracle: %v", r.Violations)
	}
	if !r.Killed {
		t.Fatal("permanent stall did not kill the module")
	}
	if r.HintAttempts != 40 {
		t.Fatalf("storm pushed %d hints, want 40", r.HintAttempts)
	}
	if r.Stats.HintsDropped == 0 {
		t.Error("no counted drops from 40 pushes into an undrained capacity-8 ring")
	}
	if got := r.Stats.HintsDelivered + r.Stats.HintsDropped; got != r.HintAttempts {
		t.Errorf("accounting leak: %d delivered + %d dropped != %d attempts",
			r.Stats.HintsDelivered, r.Stats.HintsDropped, r.HintAttempts)
	}
}

// TestHintStormHealthyModuleDeliversAll is the complementary case: a live
// module drains each notification synchronously, so the same storm sheds
// nothing and every push is counted delivered.
func TestHintStormHealthyModuleDeliversAll(t *testing.T) {
	s := Schedule{
		Seed:  99,
		Class: "arbiter",
		Events: []Event{
			{Plane: PlaneHintStorm, At: int64(5 * time.Millisecond), Count: 40},
		},
		Mask: 0b1,
	}
	r := Run(s, RunConfig{})
	if r.Failed() {
		t.Fatalf("healthy storm run failed the oracle: %v", r.Violations)
	}
	if r.Killed {
		t.Fatal("hint storm killed the module")
	}
	if r.Stats.HintsDropped != 0 {
		t.Errorf("healthy module dropped %d hints", r.Stats.HintsDropped)
	}
	if r.Stats.HintsDelivered < r.HintAttempts {
		t.Errorf("delivered %d of %d storm hints", r.Stats.HintsDelivered, r.HintAttempts)
	}
}

// TestMinimizeIsGreedyStable: minimizing an already-minimal failing schedule
// returns it unchanged, and minimizing a passing schedule is the identity.
func TestMinimizeIsGreedyStable(t *testing.T) {
	pass := Generate(3, "fifo")
	min, res := Minimize(pass, RunConfig{})
	if res.Failed() {
		t.Fatalf("seed 3 fifo unexpectedly fails: %v", res.Violations)
	}
	if min.Mask != pass.Mask {
		t.Errorf("Minimize narrowed a passing schedule: %x → %x", pass.Mask, min.Mask)
	}
}
