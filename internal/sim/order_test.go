package sim

import (
	"fmt"
	"testing"
	"time"

	"enoki/internal/ktime"
)

// TestSmsgOrderTotal is the ordering audit's property test: for random
// message populations (including heavy collisions on at/to/from), every
// shuffle must sort to the same sequence, and no two distinct messages may
// compare equal under the (at, to, from, seq) order — totality is what makes
// the serial and parallel drives byte-identical, and it holds only because
// per-source seq counters are unique for the executor's life.
func TestSmsgOrderTotal(t *testing.T) {
	rng := ktime.NewRand(0xf1ee7)
	for round := 0; round < 50; round++ {
		// Build a population the way executors do: per-source monotonic
		// sequences, clustered timestamps and destinations so ties on
		// (at, to) and (at, to, from) are common.
		nsrc := 2 + int(rng.Intn(5))
		seqs := make([]uint64, nsrc)
		n := 20 + int(rng.Intn(200))
		msgs := make([]smsg, 0, n)
		for i := 0; i < n; i++ {
			src := rng.Intn(nsrc)
			seqs[src]++
			msgs = append(msgs, smsg{
				at:   ktime.Time(rng.Intn(8)), // few instants → many ties
				to:   int(rng.Intn(3)),
				from: src,
				seq:  seqs[src],
			})
		}
		key := func(m smsg) string { return fmt.Sprintf("%d/%d/%d/%d", m.at, m.to, m.from, m.seq) }

		// Totality: distinct messages never compare equal both ways.
		for i := range msgs {
			for j := range msgs {
				if i != j && !msgs[i].less(msgs[j]) && !msgs[j].less(msgs[i]) {
					t.Fatalf("round %d: messages %s and %s are order-equal", round, key(msgs[i]), key(msgs[j]))
				}
			}
		}

		// Shuffle-invariance: every delivery interleaving sorts identically.
		ref := make([]smsg, len(msgs))
		copy(ref, msgs)
		sortSmsgs(ref)
		for shuffle := 0; shuffle < 8; shuffle++ {
			got := make([]smsg, len(msgs))
			copy(got, msgs)
			for i := len(got) - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				got[i], got[j] = got[j], got[i]
			}
			sortSmsgs(got)
			for i := range ref {
				if key(ref[i]) != key(got[i]) {
					t.Fatalf("round %d shuffle %d: position %d has %s, reference %s",
						round, shuffle, i, key(got[i]), key(ref[i]))
				}
			}
		}
	}
}

// TestSmsgSeqResetWouldBreakTotality documents why the audit matters: with a
// (hypothetically) reset sequence counter, two distinct messages from one
// source collide and the order stops being total. The assertion is inverted
// — it proves the property test above would catch the regression.
func TestSmsgSeqResetWouldBreakTotality(t *testing.T) {
	a := smsg{at: 5, to: 1, from: 0, seq: 1}
	b := smsg{at: 5, to: 1, from: 0, seq: 1} // same seq: what a per-epoch reset would produce
	if a.less(b) || b.less(a) {
		t.Fatal("expected order-equality for colliding seq — the totality check depends on it")
	}
	b.seq = 2
	if !a.less(b) || b.less(a) {
		t.Fatal("monotonic seq must order same-(at,to,from) messages")
	}
}

// TestShardedSeqMonotonicAcrossEpochs pins the no-reset property on the real
// executor: two messages submitted from the same shard in different epochs
// (and different RunUntil calls), due at the same instant at the same
// destination, must deliver in submission order — which holds only if the
// sender's seq counter survives epoch merges and run boundaries.
func TestShardedSeqMonotonicAcrossEpochs(t *testing.T) {
	la := 5 * time.Microsecond
	s := NewSharded(2, la)
	defer s.Close()
	var log []string
	target := ktime.Time(0).Add(ktime.Duration(100 * time.Microsecond))
	// Epoch 1 (first run window): shard 1 sends "first" due at 100µs.
	s.Shard(1).Post(2*time.Microsecond, func() {
		s.Send(1, 0, target, func() { log = append(log, "first") })
	})
	s.RunUntil(ktime.Time(0).Add(ktime.Duration(20 * time.Microsecond)))
	// Later epoch, separate run: shard 1 sends "second", same (at, to, from).
	s.Shard(1).Post(20*time.Microsecond, func() {
		s.Send(1, 0, target, func() { log = append(log, "second") })
	})
	s.RunUntilIdle()
	if fmt.Sprint(log) != "[first second]" {
		t.Fatalf("cross-epoch same-instant delivery order %v, want [first second]", log)
	}
	if s.MsgsSent() != 2 || s.MsgsDelivered() != 2 {
		t.Fatalf("sent/delivered = %d/%d, want 2/2", s.MsgsSent(), s.MsgsDelivered())
	}
}

// TestFleetSeqMonotonicAcrossRuns is the same pin one level up, on the
// fleet executor's per-source counters.
func TestFleetSeqMonotonicAcrossRuns(t *testing.T) {
	f := NewFleet(10 * time.Microsecond)
	defer f.Close()
	e0, e1 := New(), New()
	f.AddNode(e0)
	f.AddNode(e1)
	src := f.AddSource(0)
	var log []string
	target := ktime.Time(0).Add(ktime.Duration(200 * time.Microsecond))
	e0.Post(time.Microsecond, func() {
		f.Send(src, 1, target, func() { log = append(log, "first") })
	})
	f.RunUntil(ktime.Time(0).Add(ktime.Duration(50 * time.Microsecond)))
	e0.Post(10*time.Microsecond, func() { // fires at 60µs, a later fleet run
		f.Send(src, 1, target, func() { log = append(log, "second") })
	})
	f.RunUntilIdle()
	if fmt.Sprint(log) != "[first second]" {
		t.Fatalf("cross-run same-instant commitment order %v, want [first second]", log)
	}
}
