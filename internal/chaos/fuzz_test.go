package chaos

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// The spec parsers are the one place the chaos package consumes untrusted
// input: a spec string pasted from a CI log, a bug report, or a shell
// history. The fuzz targets pin two properties for arbitrary input:
// parsing never panics, and any spec that parses round-trips — rendering
// the schedule and re-parsing it reproduces the identical fault plan, so
// a one-line reproducer can never silently drift.

func FuzzParseRolloutSpec(f *testing.F) {
	f.Add(rolloutSpec)
	f.Add("r1:fifo:dead:1")
	f.Add("r1:shinjuku:5eed7:3")
	f.Add("r1:wfq:ffffffffffffffff:7")
	f.Add("r1:cfs:9:7")
	f.Add("f1:wfq:9:7")
	f.Add("r1:wfq:9:ffff")
	f.Add("r1:wfq:9")
	f.Add("r1::9:7")
	f.Add("r1:wfq:+9:7")
	f.Add("r1:wfq:9:7:")
	f.Add("r1:wfq:9:7\n")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseRolloutSpec(spec)
		if err != nil {
			return
		}
		if s.Mask&^(1<<uint(len(s.Events))-1) != 0 {
			t.Fatalf("spec %q: mask %x exceeds %d events", spec, s.Mask, len(s.Events))
		}
		for _, ev := range s.Events {
			switch ev.Plane {
			case PlaneRolloutKill:
				if ev.Machine < 0 || ev.Machine >= fleetMachines || ev.At <= 0 {
					t.Fatalf("spec %q: malformed kill %+v", spec, ev)
				}
			case PlaneRolloutFaulty:
				if ev.Threshold <= 0 || ev.Threshold >= fleetMachines {
					t.Fatalf("spec %q: malformed faulty threshold %+v", spec, ev)
				}
			case PlaneRolloutDelayDetect:
				if ev.Delay <= 0 || time.Duration(ev.Delay) > 10*time.Millisecond {
					t.Fatalf("spec %q: malformed detect delay %+v", spec, ev)
				}
			default:
				t.Fatalf("spec %q: non-rollout plane %v in schedule", spec, ev.Plane)
			}
		}
		again, err := ParseRolloutSpec(s.Spec())
		if err != nil {
			t.Fatalf("round-trip of %q failed: rendered %q does not parse: %v", spec, s.Spec(), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round-trip of %q diverged:\nfirst  %+v\nsecond %+v", spec, s, again)
		}
	})
}

func FuzzParseTrafficSpec(f *testing.F) {
	f.Add(trafficSpec)
	f.Add("t1:fifo:1:1")
	f.Add("t1:cfs:abc:3")
	f.Add("t1:shinjuku:5eed7:7")
	f.Add("t1:wfq:ffffffffffffffff:f")
	f.Add("v1:shinjuku:2a:3")
	f.Add("t1:shinjuku:2a:ffff")
	f.Add("t1::2a:3")
	f.Add("t1:shinjuku:+2a:3")
	f.Add("t1:shinjuku:2a:3:")
	f.Add("t1:shinjuku:2a:3\n")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseTrafficSpec(spec)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("spec %q: rejection %v is not a *SpecError", spec, err)
			}
			return
		}
		if s.Mask&^(1<<uint(len(s.Events))-1) != 0 {
			t.Fatalf("spec %q: mask %x exceeds %d events", spec, s.Mask, len(s.Events))
		}
		if len(s.Events) > 0 {
			switch s.Events[0].Plane {
			case PlaneTrafficFlash, PlaneTrafficAntag, PlaneTrafficChurn:
			default:
				t.Fatalf("spec %q: first event %v is not a traffic shape", spec, s.Events[0].Plane)
			}
		}
		for _, ev := range s.Events {
			switch ev.Plane {
			case PlaneTrafficFlash, PlaneTrafficAntag, PlaneTrafficChurn:
				if ev.At <= 0 || ev.Dur <= 0 || ev.Count < 1 {
					t.Fatalf("spec %q: malformed shape %+v", spec, ev)
				}
			case PlanePanic, PlaneStall, PlaneIPIDrop, PlaneIPIDelay, PlaneTimerSkew:
			default:
				t.Fatalf("spec %q: plane %v cannot appear in a traffic schedule", spec, ev.Plane)
			}
		}
		again, err := ParseTrafficSpec(s.Spec())
		if err != nil {
			t.Fatalf("round-trip of %q failed: rendered %q does not parse: %v", spec, s.Spec(), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round-trip of %q diverged:\nfirst  %+v\nsecond %+v", spec, s, again)
		}
	})
}

func FuzzParseFleetSpec(f *testing.F) {
	f.Add(fleetSpec)
	f.Add("f1:fifo:1:1")
	f.Add("f1:cfs:abc:3")
	f.Add("f1:wfq:ffffffffffffffff:7")
	f.Add("v1:wfq:5eed:3")
	f.Add("f1:wfq:5eed:ffff")
	f.Add("f1:wfq::3")
	f.Add("f1:wfq:5eed:0x3")
	f.Add("f1:wfq:5eed:3 ")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseFleetSpec(spec)
		if err != nil {
			return
		}
		if s.Mask&^(1<<uint(len(s.Events))-1) != 0 {
			t.Fatalf("spec %q: mask %x exceeds %d events", spec, s.Mask, len(s.Events))
		}
		seen := map[int]bool{}
		for _, ev := range s.Events {
			if ev.Machine < 0 || ev.Machine >= fleetMachines || ev.At <= 0 {
				t.Fatalf("spec %q: malformed kill %+v", spec, ev)
			}
			if seen[ev.Machine] {
				t.Fatalf("spec %q: machine %d killed twice", spec, ev.Machine)
			}
			seen[ev.Machine] = true
		}
		again, err := ParseFleetSpec(s.Spec())
		if err != nil {
			t.Fatalf("round-trip of %q failed: rendered %q does not parse: %v", spec, s.Spec(), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round-trip of %q diverged:\nfirst  %+v\nsecond %+v", spec, s, again)
		}
	})
}
