package traffic

import (
	"time"

	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/overload"
	"enoki/internal/stats"
)

// shardSalt decorrelates per-shard arrival streams drawn from one
// scenario seed.
const shardSalt = 0x9e3779b97f4a7c15

// DriverConfig wires one Driver to its kernel shard.
type DriverConfig struct {
	// Controller is the shard's admission/brownout control plane
	// (required). Each shard owns its own controller; reports merge.
	Controller *overload.Controller
	// Adapters maps scheduler policy id → enokic adapter for brownout
	// delivery. Policies absent from the map (or mapped to nil) still
	// run the hysteresis machine but degrade nothing.
	Adapters map[int]*enokic.Adapter
	// Shard and Shards partition the scenario's regions: this driver
	// generates arrivals for regions r with r % Shards == Shard.
	// Shards 0 means a single unsharded driver owning every region.
	Shard, Shards int
	// SampleEvery is the brownout sampler period; 0 disables sampling.
	SampleEvery time.Duration
}

type classStats struct {
	requests  uint64 // admitted and spawned
	completed uint64
	latSum    uint64
	all       stats.LogHist
	flash     stats.LogHist // admissions that arrived inside a flash window
	antagDone uint64        // completions of arrivals inside antagonist windows
}

// Driver generates one scenario partition open-loop against one kernel.
// Construct with NewDriver, call Start before running the engine, and
// merge results with Collect once the rig has drained.
type Driver struct {
	sc      Scenario
	k       *kernel.Kernel
	ctl     *overload.Controller
	ads     map[int]*enokic.Adapter
	rng     *ktime.Rand
	regions []int
	sample  time.Duration

	conns uint64
	cs    []classStats
}

// NewDriver builds a driver for its shard's slice of the scenario.
func NewDriver(k *kernel.Kernel, sc Scenario, dc DriverConfig) *Driver {
	if dc.Controller == nil {
		panic("traffic: NewDriver without a Controller")
	}
	sc = sc.WithDefaults()
	shards := dc.Shards
	if shards <= 0 {
		shards = 1
	}
	d := &Driver{
		sc:     sc,
		k:      k,
		ctl:    dc.Controller,
		ads:    dc.Adapters,
		rng:    ktime.NewRand(sc.Seed ^ (uint64(dc.Shard)+1)*shardSalt),
		sample: dc.SampleEvery,
		cs:     make([]classStats, len(sc.Classes)),
	}
	for ri := range sc.Regions {
		if ri%shards == dc.Shard%shards {
			d.regions = append(d.regions, ri)
		}
	}
	return d
}

// Start arms the arrival tick loop and the brownout sampler on the
// driver's engine. Call once, before running.
func (d *Driver) Start() {
	if len(d.regions) > 0 {
		d.k.Engine().Post(0, d.tick)
	}
	if d.sample > 0 {
		d.k.Engine().Post(d.sample, d.brownoutSample)
	}
}

// Connections returns how many connections this driver has opened.
func (d *Driver) Connections() uint64 { return d.conns }

// Controller returns the shard's overload controller.
func (d *Driver) Controller() *overload.Controller { return d.ctl }

func (d *Driver) now() time.Duration { return time.Duration(d.k.Now()) }

// tick generates one arrival quantum for every owned region × class and
// re-arms itself until the scenario's Duration.
func (d *Driver) tick() {
	now := d.now()
	if now >= d.sc.Duration {
		return
	}
	for _, ri := range d.regions {
		for ci := range d.sc.Classes {
			d.arrivals(ci, ri, now)
		}
	}
	d.k.Engine().Post(d.sc.Tick, d.tick)
}

// arrivals opens this tick's connections for one region × class pair.
// The expected count is rate × tick; the fractional remainder becomes
// one extra connection by a seeded Bernoulli draw, so the long-run rate
// is exact without per-connection Poisson machinery.
func (d *Driver) arrivals(ci, ri int, now time.Duration) {
	c := &d.sc.Classes[ci]
	r := &d.sc.Regions[ri]
	rate := d.sc.Rate * c.Weight * r.Share * d.sc.Factor(ci, now, r.Offset)
	if rate <= 0 {
		return
	}
	exp := rate * d.sc.Tick.Seconds()
	n := int(exp)
	if d.rng.Bernoulli(exp - float64(n)) {
		n++
	}
	churn := d.sc.churnAt(ci, now)
	for i := 0; i < n; i++ {
		d.conns++
		reqs := c.ReqPerConn
		if churn {
			reqs = 1
		}
		d.offer(ci, 0, now)
		for j := 1; j < reqs; j++ {
			at := now + time.Duration(j)*c.Think
			ci := ci
			d.k.Engine().PostAt(ktime.Time(at), func() { d.offer(ci, 0, at) })
		}
	}
}

// offer runs one request attempt through admission. Shed requests cost
// no kernel events: a Retry re-offers after backoff, a Drop vanishes
// (the controller keeps the books either way).
func (d *Driver) offer(ci, attempt int, arrival time.Duration) {
	ac := d.sc.Classes[ci].Admission
	switch d.ctl.Admit(ac, attempt) {
	case overload.Admitted:
		d.spawn(ci, arrival)
	case overload.Retry:
		d.k.Engine().Post(d.ctl.Backoff(ac, attempt), func() {
			d.offer(ci, attempt+1, arrival)
		})
	case overload.Dropped:
	}
}

// spawn runs one admitted request: a single service task, or Fanout
// backend subrequests that complete the request when the last one exits
// (the nginx model — one frontend request fans to upstream workers and
// responds at the slowest one).
func (d *Driver) spawn(ci int, arrival time.Duration) {
	c := &d.sc.Classes[ci]
	d.cs[ci].requests++
	if c.Fanout <= 1 {
		work := d.rng.ExpDuration(c.Work)
		d.k.Spawn(c.Name, c.Policy, oneShot(work),
			kernel.WithExitObserver(func() { d.complete(ci, arrival) }))
		return
	}
	remaining := c.Fanout
	share := c.Work / time.Duration(c.Fanout)
	for i := 0; i < c.Fanout; i++ {
		work := d.rng.ExpDuration(share)
		d.k.Spawn(c.Name, c.Policy, oneShot(work),
			kernel.WithExitObserver(func() {
				if remaining--; remaining == 0 {
					d.complete(ci, arrival)
				}
			}))
	}
}

// complete closes one admitted request's books and records its latency.
func (d *Driver) complete(ci int, arrival time.Duration) {
	d.ctl.Done(d.sc.Classes[ci].Admission)
	lat := d.now() - arrival
	cs := &d.cs[ci]
	cs.completed++
	cs.latSum += uint64(lat)
	cs.all.Record(lat)
	if d.sc.inShape(Flash, ci, arrival) {
		cs.flash.Record(lat)
	}
	if d.sc.antagonistActive(arrival) {
		cs.antagDone++
	}
}

// oneShot is a request task: one service burst, then exit.
func oneShot(run time.Duration) kernel.Behavior {
	return kernel.BehaviorFunc(func(*kernel.Kernel, *kernel.Task) kernel.Action {
		return kernel.Action{Run: run, Op: kernel.OpExit}
	})
}

// brownoutSample feeds per-admission-class queue depths into the
// hysteresis machine and delivers state changes to the class's module.
// It re-arms itself until arrivals have stopped and every class has
// recovered, so a drained rig goes idle.
func (d *Driver) brownoutSample() {
	now := d.k.Now()
	active := false
	for ac := 0; ac < d.ctl.NumClasses(); ac++ {
		cc := d.ctl.Class(ac)
		if cc.EnterDepth <= 0 {
			continue
		}
		depth := d.k.ClassDepth(cc.Policy)
		if d.ctl.Sample(ac, depth, int64(now)) {
			if a := d.ads[cc.Policy]; a != nil {
				a.SetDegraded(d.ctl.Degraded(ac))
			}
		}
		if d.ctl.Degraded(ac) {
			active = true
		}
	}
	if time.Duration(now) < d.sc.Duration || active {
		d.k.Engine().Post(d.sample, d.brownoutSample)
	}
}
