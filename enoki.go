// Package enoki is the public API of the Enoki reproduction: a framework
// for high velocity development of (simulated) Linux kernel schedulers,
// after "Enoki: High Velocity Linux Kernel Scheduler Development"
// (EuroSys '24).
//
// A scheduler is a type implementing Scheduler (the EnokiScheduler trait,
// Table 1 of the paper), written only against this package. Attach it to a
// simulated kernel and it schedules tasks exactly where a sched_class
// would:
//
//	sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine8()))
//	ad, err := sys.Attach(myPolicyID, enoki.GoModule(
//	        func(env enoki.Env) enoki.Scheduler { return mysched.New(env) }))
//	sys.RegisterCFS(0) // CFS below it, as in the paper
//	sys.Kernel().Spawn(...)
//	sys.Run(20 * time.Millisecond)
//
// System.Attach is the single attachment surface for the three-tier policy
// spectrum: GoModule (full framework crossing), VerifiedProgram (bytecode
// verified and interpreted in the kernel pick path, ~7× cheaper per hook),
// and BuiltinClass (native Go classes like CFS/RT). See PolicySource.
//
// The framework provides the paper's headline features:
//
//   - Schedulable proofs: the framework validates every pick_next_task
//     return against its authoritative table and bounces bad ones through
//     pnt_err, so a buggy module cannot run a task on the wrong CPU.
//   - Live upgrade: Adapter.Upgrade quiesces the module behind a
//     write-locked boundary, transfers state via reregister_prepare/init,
//     and swaps the dispatch pointer with a µs-scale blackout.
//   - Bidirectional hints: Adapter.CreateHintQueue / CreateRevQueue carry
//     scheduler-defined messages between userspace and the module.
//   - Record and replay: record.New captures every message and lock
//     operation; replay.Replay runs the same module code at userspace and
//     validates its decisions.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results.
package enoki

import (
	"io"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/sim"
	"enoki/internal/trace"
	"enoki/internal/vpol"
)

// --- scheduler-facing API (libEnoki) ----------------------------------------

// Scheduler is the EnokiScheduler trait (Table 1): implement it to build a
// loadable scheduler.
type Scheduler = core.Scheduler

// BaseScheduler supplies default no-op implementations of the optional
// trait methods; embed it in your scheduler.
type BaseScheduler = core.BaseScheduler

// Schedulable is the proof-of-runnability token (§3.1).
type Schedulable = core.Schedulable

// SchedulableRef is the serialisable form of a Schedulable.
type SchedulableRef = core.SchedulableRef

// Env is the safe interface a module gets for kernel services (locks,
// timers, topology, time).
type Env = core.Env

// Locker is the lock handle Env.NewMutex returns.
type Locker = core.Locker

// PickError explains a rejected pick_next_task result. Each cause constant
// is an errors.Is-able sentinel (PickError implements error), so code that
// wraps a pick failure can be tested with errors.Is(err, enoki.PickStale).
type PickError = core.PickError

// Pick rejection causes (see PickError).
const (
	PickWrongCPU  = core.PickWrongCPU
	PickStale     = core.PickStale
	PickNotQueued = core.PickNotQueued
	PickConsumed  = core.PickConsumed
)

// Topology is the machine's scheduling-domain structure (sockets → LLC
// domains → cores), available to modules via Env.Topology.
type Topology = core.Topology

// Topology distances returned by Topology.Distance.
const (
	DistSameLLC   = core.DistSameLLC
	DistSameNode  = core.DistSameNode
	DistCrossNode = core.DistCrossNode
)

// TransferOut and TransferIn are the live-upgrade state capsules (§3.2).
type (
	TransferOut = core.TransferOut
	TransferIn  = core.TransferIn
)

// Hint and RevMessage are the user↔kernel communication payloads (§3.3).
type (
	Hint       = core.Hint
	RevMessage = core.RevMessage
)

// HintQueue and RevQueue are the boundary ring buffers.
type (
	HintQueue = core.HintQueue
	RevQueue  = core.RevQueue
)

// --- kernel substrate ---------------------------------------------------------

// Kernel is the simulated Linux scheduling core.
type Kernel = kernel.Kernel

// ShardedKernel is the NUMA-partitioned machine: one sub-kernel per node
// under the deterministic epoch-merge executor (see WithShards).
type ShardedKernel = kernel.ShardedKernel

// Task is the simulated task_struct.
type Task = kernel.Task

// TaskState is a task's lifecycle state.
type TaskState = kernel.State

// Task lifecycle states.
const (
	StateNew      = kernel.StateNew
	StateRunnable = kernel.StateRunnable
	StateRunning  = kernel.StateRunning
	StateBlocked  = kernel.StateBlocked
	StateDead     = kernel.StateDead
)

// Action and Behavior define workload task bodies.
type (
	Action   = kernel.Action
	Behavior = kernel.Behavior
)

// BehaviorFunc adapts a function to Behavior.
type BehaviorFunc = kernel.BehaviorFunc

// Segment-completion operations for Action.Op.
const (
	OpContinue = kernel.OpContinue
	OpBlock    = kernel.OpBlock
	OpSleep    = kernel.OpSleep
	OpYield    = kernel.OpYield
	OpExit     = kernel.OpExit
)

// Machine and Costs describe the simulated host.
type (
	Machine = kernel.Machine
	Costs   = kernel.Costs
)

// CPUMask is a set of allowed CPUs.
type CPUMask = kernel.CPUMask

// Time is a virtual-time instant.
type Time = ktime.Time

// Rand is the deterministic random generator workloads use.
type Rand = ktime.Rand

// NewRand creates a seeded deterministic random stream.
func NewRand(seed uint64) *Rand { return ktime.NewRand(seed) }

// Engine is the discrete-event executor everything runs on.
type Engine = sim.Engine

// Class is a native scheduler class slot in the kernel's pick order; CFS
// and RT implement it, and System.RegisterClass accepts it.
type Class = kernel.Class

// NewEngine creates a fresh event engine.
//
// Deprecated: use NewSystem, which owns the engine; reach it with
// System.Engine when an experiment needs direct event access.
func NewEngine() *Engine { return sim.New() }

// NewKernel builds a simulated kernel on eng.
//
// Deprecated: use NewSystem(WithMachine(m), WithCosts(c)) and
// System.Kernel. NewSystem wires the kernel, engine, and any recorder or
// tracer together in the order their registration contracts require.
func NewKernel(eng *Engine, m Machine, c Costs) *Kernel { return kernel.New(eng, m, c) }

// MachineNUMA builds a custom sockets×llcPerSocket×coresPerLLC machine.
func MachineNUMA(name string, sockets, llcPerSocket, coresPerLLC int) Machine {
	return kernel.MachineNUMA(name, sockets, llcPerSocket, coresPerLLC)
}

// Machine8 is the paper's 8-core one-socket machine.
func Machine8() Machine { return kernel.Machine8() }

// Machine80 is the paper's 80-core two-socket machine.
func Machine80() Machine { return kernel.Machine80() }

// DefaultCosts is the calibrated cost table.
func DefaultCosts() Costs { return kernel.DefaultCosts() }

// CostsFor calibrates costs for a machine.
func CostsFor(m Machine) Costs { return kernel.CostsFor(m) }

// NewCFS builds the native CFS baseline class, sharded over the kernel's
// scheduling domains.
func NewCFS(k *Kernel) *kernel.CFS { return kernel.NewCFS(k) }

// NewCFSFlat builds a CFS that ignores topology — one flat domain — as the
// baseline the NUMA experiments compare domain-aware CFS against.
func NewCFSFlat(k *Kernel) *kernel.CFS { return kernel.NewCFSFlat(k) }

// NewRT builds the native SCHED_FIFO/SCHED_RR real-time class (rrSlice 0
// uses Linux's 100ms default).
func NewRT(k *Kernel, rrSlice time.Duration) *kernel.RT { return kernel.NewRT(k, rrSlice) }

// RTParams configures a task's real-time priority for the RT class.
type RTParams = kernel.RTParams

// Spawn options re-exported for workload construction.
var (
	WithAffinity     = kernel.WithAffinity
	WithNice         = kernel.WithNice
	WithWakeObserver = kernel.WithWakeObserver
	WithExitObserver = kernel.WithExitObserver
	WithUserData     = kernel.WithUserData
)

// AllCPUs and SingleCPU build affinity masks.
var (
	AllCPUs   = kernel.AllCPUs
	SingleCPU = kernel.SingleCPU
)

// --- framework (Enoki-C) -------------------------------------------------------

// Adapter connects a loaded scheduler module to the kernel: registration,
// message dispatch, Schedulable validation, hint queues, live upgrade.
type Adapter = enokic.Adapter

// Config tunes framework costs.
type Config = enokic.Config

// UpgradeReport describes a completed live upgrade.
type UpgradeReport = enokic.UpgradeReport

// UserQueue is the userspace handle to a registered hint queue.
type UserQueue = enokic.UserQueue

// Tracer is the observability ring recording kernel and framework events;
// install one with NewSystem(WithTraceSink(...)). TraceEvent is one record.
type (
	Tracer     = trace.Tracer
	TraceEvent = trace.Event
)

// NewTracer creates a tracer with the given ring capacity.
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// WriteChromeTrace renders drained trace events as a Chrome/Perfetto JSON
// timeline.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return trace.WriteChrome(w, events)
}

// DefaultConfig returns the calibrated framework costs.
func DefaultConfig() Config { return enokic.DefaultConfig() }

// Typed load/upgrade failures, testable with errors.Is.
var (
	// ErrPolicyMismatch: the module's GetPolicy disagrees with the policy
	// it was loaded under.
	ErrPolicyMismatch = enokic.ErrPolicyMismatch
	// ErrDuplicatePolicy: the policy id already has a registered class.
	ErrDuplicatePolicy = enokic.ErrDuplicatePolicy
	// ErrModuleKilled: the module was killed by fault isolation.
	ErrModuleKilled = enokic.ErrModuleKilled
)

// Load constructs a scheduler module via factory and registers it with the
// kernel under the given policy number, panicking on failure.
//
// Deprecated: use System.Attach with a GoModule source, which returns typed
// errors (ErrDuplicatePolicy, ErrPolicyMismatch) and installs the System's
// recorder and tracer on the new module.
func Load(k *Kernel, policy int, cfg Config, factory func(Env) Scheduler) *Adapter {
	return enokic.Load(k, policy, cfg, factory)
}

// --- verified tier (vpol) ------------------------------------------------------

// VProgram is a verified-tier policy: a register-machine bytecode program
// (see Assemble for the text format) that System.Attach(VerifiedProgram(p))
// verifies and mounts as a kernel class, interpreted directly in the pick
// path with no framework crossing.
type VProgram = vpol.Program

// VInst is one bytecode instruction of a VProgram.
type VInst = vpol.Inst

// VClass is a mounted verified-tier class; System.VerifiedClass returns it.
type VClass = vpol.Class

// VerifiedConfig tunes a verified-tier attachment (per-hook overhead,
// fallback policy for trap rehoming, initial queue capacity).
type VerifiedConfig = vpol.Config

// VerifiedFailure reports a verified class's death by runtime trap.
type VerifiedFailure = vpol.FailureReport

// Trap is the runtime fault class of a verified-tier failure.
type Trap = vpol.Trap

// Verified-tier runtime traps (see Trap).
const (
	TrapNone          = vpol.TrapNone
	TrapDivZero       = vpol.TrapDivZero
	TrapFuel          = vpol.TrapFuel
	TrapLoopDepth     = vpol.TrapLoopDepth
	TrapNoEnqueue     = vpol.TrapNoEnqueue
	TrapDoubleEnqueue = vpol.TrapDoubleEnqueue
)

// DefaultVerifiedConfig returns the calibrated verified-tier costs (~15 ns
// per hook) with CFS at policy 0 as the trap fallback.
func DefaultVerifiedConfig() VerifiedConfig { return vpol.DefaultConfig() }

// Assemble compiles verified-policy assembly text into a VProgram (not yet
// verified; Attach verifies, or call VerifyProgram directly).
func Assemble(src string) (*VProgram, error) { return vpol.Assemble(src) }

// MustAssemble is Assemble panicking on error, for static programs.
func MustAssemble(src string) *VProgram { return vpol.MustAssemble(src) }

// VerifyProgram runs the static verifier: register/program-size limits,
// bounded loops, all-paths-terminate, typed queue handles, hook-legal
// instructions. Attach calls it automatically; exposed for tooling.
func VerifyProgram(p *VProgram) error { return vpol.Verify(p) }

// EncodeProgram and DecodeProgram are the portable binary codec for
// VPrograms (e.g. to ship a program through a file or a hint queue).
func EncodeProgram(p *VProgram) []byte             { return vpol.Encode(p) }
func DecodeProgram(data []byte) (*VProgram, error) { return vpol.Decode(data) }

// Example verified policies: VFIFOSource is a single shared FIFO queue;
// VDualQueueSource is the paper's §1 priority dual-queue (negative-nice
// tasks in an express queue picked first). Assemble-ready text.
const (
	VFIFOSource      = vpol.FIFOSource
	VDualQueueSource = vpol.DualQueueSource
)

// VFIFOProgram and VDualQueueProgram return the assembled example programs.
func VFIFOProgram() *VProgram      { return vpol.FIFOProgram() }
func VDualQueueProgram() *VProgram { return vpol.DualQueueProgram() }
