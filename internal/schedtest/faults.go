package schedtest

import (
	"fmt"
	"time"

	"enoki/internal/core"
)

// Faulty-module wrappers: each wraps a correct scheduler module and injects
// exactly one class of failure at the trait boundary, for exercising the
// framework's fault-isolation layer. Every wrapper is deterministic — the
// injection point is a fixed call count, never a clock or random draw — so
// fault-injection runs replay bit-for-bit.
//
// The wrappers embed the inner module, forwarding every trait function they
// do not sabotage, so the workload runs normally up to the injection point.

// Panicky panics inside pick_next_task once PanicAfterPicks calls have
// completed — the module crash the Dispatch recovery wrapper must contain.
type Panicky struct {
	core.Scheduler
	// PanicAfterPicks is how many picks succeed before the panic.
	PanicAfterPicks int
	picks           int
}

// PickNextTask implements core.Scheduler.
func (p *Panicky) PickNextTask(cpu int, curr *core.Schedulable, rt time.Duration) *core.Schedulable {
	p.picks++
	if p.picks > p.PanicAfterPicks {
		panic(fmt.Sprintf("schedtest: injected panic on pick %d", p.picks))
	}
	return p.Scheduler.PickNextTask(cpu, curr, rt)
}

// Staller goes silent after StallAfterPicks picks: every later
// pick_next_task returns nil while the module still holds queued tasks —
// the quiet starvation the watchdog exists to catch.
type Staller struct {
	core.Scheduler
	// StallAfterPicks is how many picks succeed before the stall.
	StallAfterPicks int
	// Gate, when set, serializes the pick counter under a framework lock.
	// The record/replay contract requires all cross-thread module state to
	// be guarded by Env locks (lock order is what replay gates on); a
	// Staller whose log will be replayed must be given one, or the stall
	// decision races against replay's concurrent dispatch.
	Gate  core.Locker
	picks int
}

// PickNextTask implements core.Scheduler.
func (s *Staller) PickNextTask(cpu int, curr *core.Schedulable, rt time.Duration) *core.Schedulable {
	if s.Gate != nil {
		s.Gate.Lock()
		defer s.Gate.Unlock()
	}
	s.picks++
	if s.picks > s.StallAfterPicks {
		return nil
	}
	return s.Scheduler.PickNextTask(cpu, curr, rt)
}

// Forger returns counterfeit Schedulables: after ForgeAfterPicks honest
// picks it swaps the real token for one with a fabricated generation, the
// attack the proof-of-runnability validation rejects (PickStale). Each
// forged pick burns one unit of the adapter's PntErr budget.
type Forger struct {
	core.Scheduler
	// ForgeAfterPicks is how many picks stay honest before forging.
	ForgeAfterPicks int
	picks           int
}

// PickNextTask implements core.Scheduler.
func (f *Forger) PickNextTask(cpu int, curr *core.Schedulable, rt time.Duration) *core.Schedulable {
	tok := f.Scheduler.PickNextTask(cpu, curr, rt)
	f.picks++
	if tok == nil || f.picks <= f.ForgeAfterPicks {
		return tok
	}
	return core.NewSchedulable(tok.PID(), tok.CPU(), tok.Gen()+1000)
}

// QueueLiar corrupts its queue bookkeeping: unregister_queue hands back a
// queue object the framework never registered (after letting the inner
// module clean up), which the adapter detects against its own table.
type QueueLiar struct {
	core.Scheduler
}

// UnregisterQueue implements core.Scheduler.
func (q *QueueLiar) UnregisterQueue(id int) *core.HintQueue {
	q.Scheduler.UnregisterQueue(id)
	return core.NewHintQueue(1)
}

// Leaker silently drops task_wakeup notifications (every DropEvery-th one;
// 1 drops all). The kernel's authoritative table counts the task as queued
// but the module never learns it exists, so the CPU starves on it — the
// lost-task leak that only the watchdog, not validation, can see.
type Leaker struct {
	core.Scheduler
	// DropEvery drops every DropEvery-th wakeup (1 = every wakeup).
	DropEvery int
	wakes     int
}

// TaskWakeup implements core.Scheduler.
func (l *Leaker) TaskWakeup(pid int, rt time.Duration, deferrable bool, lastCPU, wakeCPU int, sched *core.Schedulable) {
	l.wakes++
	if l.DropEvery > 0 && l.wakes%l.DropEvery == 0 {
		return
	}
	l.Scheduler.TaskWakeup(pid, rt, deferrable, lastCPU, wakeCPU, sched)
}
