package kernel

import (
	"fmt"
	"math/bits"
	"time"

	"enoki/internal/ktime"
	"enoki/internal/sim"
)

// State is a task's lifecycle state, mirroring the subset of Linux task
// states the scheduler cares about.
type State uint8

// Task states.
const (
	StateNew State = iota
	StateRunnable
	StateRunning
	StateBlocked
	StateDead
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDead:
		return "dead"
	default:
		return "invalid"
	}
}

// Op is what a task does when its current compute segment finishes.
type Op uint8

// Segment-completion operations.
const (
	// OpContinue fetches the next action immediately (the task keeps the
	// CPU unless a reschedule is pending).
	OpContinue Op = iota
	// OpBlock parks the task until Kernel.Wake.
	OpBlock
	// OpSleep parks the task for Action.SleepFor, then self-wakes.
	OpSleep
	// OpYield calls sched_yield: the task stays runnable but offers the
	// CPU.
	OpYield
	// OpExit terminates the task.
	OpExit
)

// Action is one step of a task's behaviour: compute for Run, then wake the
// listed tasks, then apply Op. Zero Run is allowed (pure wake/block steps).
type Action struct {
	Run      time.Duration
	Op       Op
	SleepFor time.Duration // used by OpSleep
	Wake     []*Task       // woken after Run completes, before Op applies
	// Recheck, when set on an OpBlock action, is evaluated at the moment
	// the kernel is about to park the task; returning true cancels the
	// block and the task continues with its next action instead. This is
	// futex_wait semantics: "sleep unless the world changed since I
	// decided to", and it is how workloads avoid lost wakeups that race
	// with an in-flight block decision.
	Recheck func() bool
}

// Behavior generates a task's next action each time the kernel asks. It is
// the workload model: pipe ping-pong, schbench trees, request servers, batch
// loops are all Behaviors.
type Behavior interface {
	Next(k *Kernel, t *Task) Action
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(k *Kernel, t *Task) Action

// Next calls f.
func (f BehaviorFunc) Next(k *Kernel, t *Task) Action { return f(k, t) }

// maskWords sizes CPUMask for the largest supported machine: the 1,000-CPU
// cluster-sim topology (16 × 64 = 1024 bits).
const maskWords = 16

// CPUMask is a set of allowed CPUs, wide enough for the 1,000-CPU
// cluster-sim machine.
type CPUMask struct {
	bits [maskWords]uint64
}

// AllCPUs returns a mask allowing CPUs [0, n).
func AllCPUs(n int) CPUMask {
	var m CPUMask
	for w := 0; w < n>>6; w++ {
		m.bits[w] = ^uint64(0)
	}
	if r := n & 63; r != 0 {
		m.bits[n>>6] = 1<<uint(r) - 1
	}
	return m
}

// SingleCPU returns a mask allowing only cpu.
func SingleCPU(cpu int) CPUMask {
	var m CPUMask
	m.Set(cpu)
	return m
}

// Set adds cpu to the mask.
func (m *CPUMask) Set(cpu int) { m.bits[cpu>>6] |= 1 << uint(cpu&63) }

// Clear removes cpu from the mask.
func (m *CPUMask) Clear(cpu int) { m.bits[cpu>>6] &^= 1 << uint(cpu&63) }

// Has reports whether cpu is allowed.
func (m CPUMask) Has(cpu int) bool { return m.has(cpu) }

// has is the pointer-receiver twin of Has for the kernel's own hot loops:
// calling the value-receiver method copies the whole 128-byte mask per call,
// which the placement scans would pay once per candidate CPU.
func (m *CPUMask) has(cpu int) bool {
	if cpu < 0 || cpu >= maskWords*64 {
		return false
	}
	return m.bits[cpu>>6]&(1<<uint(cpu&63)) != 0
}

// List returns the allowed CPUs in ascending order.
func (m CPUMask) List() []int {
	return m.AppendTo(make([]int, 0, m.Count()))
}

// AppendTo appends the allowed CPUs in ascending order to dst and returns
// the extended slice. It allocates only when dst lacks capacity, which lets
// hot paths reuse one backing array across calls. Cost scales with the set
// bits, not the mask width: empty words are skipped whole.
func (m CPUMask) AppendTo(dst []int) []int {
	for i, w := range m.bits {
		base := i << 6
		for ; w != 0; w &= w - 1 {
			dst = append(dst, base+bits.TrailingZeros64(w))
		}
	}
	return dst
}

// Count returns the number of allowed CPUs.
func (m CPUMask) Count() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Task is the simulated task_struct. Fields are mutated only by the kernel
// (single-threaded over virtual time); workloads read public accessors.
type Task struct {
	pid  int
	name string
	nice int

	class Class
	cpu   int // cpu whose run queue holds (or last held) the task
	state State

	behavior Behavior
	// pending is an inline action slot, valid only while hasPending is set;
	// storing the Action by value keeps the segment hot path free of the
	// per-segment box the old *Action field required.
	pending    Action
	hasPending bool
	segLeft    time.Duration

	sumExec   time.Duration
	execStart ktime.Time // start of the currently running stretch

	lastWake    ktime.Time
	wakePending bool
	// queuedAt is when the task last became queued-waiting (enqueue, yield,
	// put-prev); the metrics layer derives pick-wait latency from it.
	queuedAt ktime.Time

	allowed CPUMask

	// runEvent is the task's persistent segment-completion event, re-armed
	// in place (sim.Reschedule) for every compute segment. wakeFn is the
	// lazily built OpSleep self-wake closure, posted fire-and-forget.
	runEvent *sim.Event
	wakeFn   func()

	// classData is private per-class state (e.g. the CFS entity).
	classData any

	// OnWake, if set, observes each wakeup-to-running latency.
	OnWake func(lat time.Duration)
	// OnExit, if set, runs when the task dies.
	OnExit func()

	// UserData is free space for workload models.
	UserData any
}

// PID returns the task's process ID.
func (t *Task) PID() int { return t.pid }

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// Nice returns the task's nice value (-20 highest priority .. 19 lowest).
func (t *Task) Nice() int { return t.nice }

// State returns the task's lifecycle state.
func (t *Task) State() State { return t.state }

// CPU returns the CPU whose run queue currently holds (or last held) the
// task.
func (t *Task) CPU() int { return t.cpu }

// SumExec returns the task's accumulated CPU time. The kernel tracks this on
// behalf of Enoki schedulers, as §3.1 describes.
func (t *Task) SumExec() time.Duration { return t.sumExec }

// Allowed returns the task's CPU affinity mask.
func (t *Task) Allowed() CPUMask { return t.allowed }

// AllowedOn reports whether cpu is in the task's affinity mask without
// copying the mask, for per-candidate checks on hot paths (the verified-tier
// shared-queue pop filters every scan step through it).
func (t *Task) AllowedOn(cpu int) bool { return t.allowed.has(cpu) }

// ClassData returns the class-private per-task state installed by the
// owning scheduler class, and SetClassData installs it. They exist for
// native classes that live outside this package (internal/vpol); a class
// must only touch entries it installed itself.
func (t *Task) ClassData() any { return t.classData }

// SetClassData installs class-private per-task state; see ClassData.
func (t *Task) SetClassData(v any) { t.classData = v }

// String renders a compact description for logs and test failures.
func (t *Task) String() string {
	return fmt.Sprintf("%s[%d](%s cpu%d)", t.name, t.pid, t.state, t.cpu)
}
