package wfq

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/ktime"
)

// fakeEnv drives the module directly, without a kernel: the unit-test
// harness a module developer would use before loading anything.
type fakeEnv struct {
	cpus     int
	rescheds []int
	timers   []int
	rand     *ktime.Rand
	now      ktime.Time
}

type fakeLock struct{ held bool }

func (l *fakeLock) Lock() {
	if l.held {
		panic("recursive lock")
	}
	l.held = true
}
func (l *fakeLock) Unlock() {
	if !l.held {
		panic("unlock of unlocked")
	}
	l.held = false
}

func (e *fakeEnv) Now() ktime.Time                   { return e.now }
func (e *fakeEnv) NumCPUs() int                      { return e.cpus }
func (e *fakeEnv) SameNode(a, b int) bool            { return true }
func (e *fakeEnv) Topology() *core.Topology          { return core.FlatTopology(e.cpus) }
func (e *fakeEnv) ArmTimer(cpu int, d time.Duration) { e.timers = append(e.timers, cpu) }
func (e *fakeEnv) Resched(cpu int)                   { e.rescheds = append(e.rescheds, cpu) }
func (e *fakeEnv) Rand() *ktime.Rand                 { return e.rand }
func (e *fakeEnv) NewMutex(name string) core.Locker  { return &fakeLock{} }

func newEnv(cpus int) *fakeEnv { return &fakeEnv{cpus: cpus, rand: ktime.NewRand(1)} }

func tok(pid, cpu int, gen uint64) *core.Schedulable {
	return core.NewSchedulable(pid, cpu, gen)
}

func TestPickReturnsIssuedToken(t *testing.T) {
	s := New(newEnv(4), 1)
	proof := tok(10, 2, 1)
	s.TaskNew(10, 0, true, nil, proof)
	got := s.PickNextTask(2, nil, 0)
	if got != proof {
		t.Fatalf("pick returned %v, want the issued token", got)
	}
	if s.PickNextTask(2, nil, 0) != nil {
		t.Fatal("second pick should be empty")
	}
}

func TestPickOrderIsVruntime(t *testing.T) {
	s := New(newEnv(1), 1)
	// Three tasks; run the first for a while so its vruntime grows.
	s.TaskNew(1, 0, true, nil, tok(1, 0, 1))
	s.TaskNew(2, 0, true, nil, tok(2, 0, 1))
	if got := s.PickNextTask(0, nil, 0); got.PID() != 1 {
		t.Fatalf("first pick = %d", got.PID())
	}
	// Task 1 ran 10ms, got preempted: it should requeue behind task 2.
	s.TaskPreempt(1, 10*time.Millisecond, 0, true, tok(1, 0, 2))
	if got := s.PickNextTask(0, nil, 0); got.PID() != 2 {
		t.Fatalf("pick after preempt = %d, want the unrun task", got.PID())
	}
}

func TestSleeperCreditIsBounded(t *testing.T) {
	s := New(newEnv(1), 1)
	s.TaskNew(1, 0, true, nil, tok(1, 0, 1))
	s.TaskNew(2, 0, true, nil, tok(2, 0, 1))
	s.PickNextTask(0, nil, 0)
	// Task 1 runs 10ms then blocks; task 2 accumulates 50ms meanwhile.
	s.TaskBlocked(1, 10*time.Millisecond, 0)
	s.PickNextTask(0, nil, 0)
	s.TaskPreempt(2, 50*time.Millisecond, 0, true, tok(2, 0, 2))
	// Task 1 wakes with bounded sleeper credit: it runs next, but only
	// a few ms ahead — not its whole 40ms sleep.
	s.TaskWakeup(1, 10*time.Millisecond, true, 0, 0, tok(1, 0, 2))
	if got := s.PickNextTask(0, nil, 0); got.PID() != 1 {
		t.Fatalf("woken sleeper should run first, got %d", got.PID())
	}
	// After a short run the sleeper must NOT still be ahead by its full
	// sleep: 5ms of running exceeds the ~3ms credit, so task 2 is next.
	s.TaskPreempt(1, 15*time.Millisecond, 0, true, tok(1, 0, 3))
	if got := s.PickNextTask(0, nil, 0); got.PID() != 2 {
		t.Fatalf("sleeper credit not bounded: picked %d", got.PID())
	}
}

func TestWakeupPreemptionRequested(t *testing.T) {
	env := newEnv(2)
	s := New(env, 1)
	s.TaskNew(1, 0, true, nil, tok(1, 0, 1))
	s.TaskNew(2, 0, false, nil, nil) // created while minV is still 0
	s.PickNextTask(0, nil, 0)
	// Charge lots of runtime to the running task via a tick.
	s.TaskTick(0, false, 1, 20*time.Millisecond)
	// The old task wakes far behind in vruntime: preemption requested.
	s.TaskWakeup(2, 0, true, 0, 0, tok(2, 0, 1))
	found := false
	for _, c := range env.rescheds {
		if c == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no preemption requested for far-behind wakeup")
	}
}

func TestBalanceStealsFromBusiestOnly(t *testing.T) {
	s := New(newEnv(4), 1)
	// CPU 0: running task + two waiting; CPU 1 busy with one waiting.
	for pid := 1; pid <= 3; pid++ {
		s.TaskNew(pid, 0, true, nil, tok(pid, 0, 1))
	}
	s.PickNextTask(0, nil, 0)
	s.TaskNew(4, 0, true, nil, tok(4, 1, 1))
	s.TaskNew(5, 0, true, nil, tok(5, 1, 1))
	s.PickNextTask(1, nil, 0)

	pid, ok := s.Balance(2)
	if !ok {
		t.Fatal("idle cpu did not steal")
	}
	if got := int(pid); got != 2 && got != 3 {
		t.Fatalf("stole pid %d, want one of cpu 0's waiters", got)
	}
	// A busy queue must not steal.
	if _, ok := s.Balance(0); ok {
		t.Fatal("busy cpu stole work")
	}
}

func TestBalanceLeavesLoneWakeups(t *testing.T) {
	s := New(newEnv(4), 1)
	// One task queued on an idle cpu (it is about to run there).
	s.TaskNew(1, 0, true, nil, tok(1, 0, 1))
	if _, ok := s.Balance(2); ok {
		t.Fatal("stole the only waiting task from an idle core")
	}
}

func TestMigrateReturnsOldToken(t *testing.T) {
	s := New(newEnv(4), 1)
	old := tok(1, 0, 1)
	s.TaskNew(1, 0, true, nil, old)
	newTok := tok(1, 2, 2)
	got := s.MigrateTaskRQ(1, 2, newTok)
	if got != old {
		t.Fatalf("migrate returned %v, want the old token", got)
	}
	if picked := s.PickNextTask(2, nil, 0); picked != newTok {
		t.Fatalf("task did not move to new queue: %v", picked)
	}
}

func TestDepartedReturnsToken(t *testing.T) {
	s := New(newEnv(2), 1)
	proof := tok(1, 0, 1)
	s.TaskNew(1, 0, true, nil, proof)
	if got := s.TaskDeparted(1, 0); got != proof {
		t.Fatalf("departed returned %v", got)
	}
	if s.PickNextTask(0, nil, 0) != nil {
		t.Fatal("departed task still queued")
	}
	if s.TaskDeparted(99, 0) != nil {
		t.Fatal("unknown departed returned a token")
	}
}

func TestPntErrRequeues(t *testing.T) {
	s := New(newEnv(2), 1)
	proof := tok(1, 0, 1)
	s.TaskNew(1, 0, true, nil, proof)
	got := s.PickNextTask(0, nil, 0)
	// The kernel rejects the pick and hands the proof back.
	s.PntErr(0, 1, core.PickWrongCPU, got)
	if again := s.PickNextTask(0, nil, 0); again != got {
		t.Fatalf("task not requeued after pnt_err: %v", again)
	}
}

func TestPrioChangedReweights(t *testing.T) {
	s := New(newEnv(1), 1)
	s.TaskNew(1, 0, true, nil, tok(1, 0, 1))
	s.TaskNew(2, 0, true, nil, tok(2, 0, 1))
	s.TaskPrioChanged(2, 19) // minimum priority
	s.PickNextTask(0, nil, 0)
	// pid 1 at nice 0 runs 10ms: its vruntime grows ~10ms-worth;
	// pid 2's weight is 15, so had pid 2 run the same wall time its
	// vruntime would be ~68x larger. After requeue, pid 2 (never ran)
	// still goes first, then running it briefly sends it far back.
	s.TaskPreempt(1, 10*time.Millisecond, 0, true, tok(1, 0, 2))
	if got := s.PickNextTask(0, nil, 0); got.PID() != 2 {
		t.Fatalf("unrun low-prio task should still pick first, got %d", got.PID())
	}
	s.TaskPreempt(2, time.Millisecond, 0, true, tok(2, 0, 2))
	if got := s.PickNextTask(0, nil, 0); got.PID() != 1 {
		t.Fatalf("after 1ms at weight 15, pid 2 should be far behind; got %d", got.PID())
	}
}

func TestUpgradeStateTransfer(t *testing.T) {
	env := newEnv(2)
	s1 := New(env, 1)
	s1.TaskNew(1, 0, true, nil, tok(1, 0, 1))
	s1.TaskNew(2, 0, true, nil, tok(2, 1, 1))
	out := s1.ReregisterPrepare()
	if out == nil || out.State == nil {
		t.Fatal("no state exported")
	}
	s2 := New(env, 1)
	s2.ReregisterInit(&core.TransferIn{State: out.State})
	if got := s2.PickNextTask(0, nil, 0); got == nil || got.PID() != 1 {
		t.Fatalf("new version lost cpu0 task: %v", got)
	}
	if got := s2.PickNextTask(1, nil, 0); got == nil || got.PID() != 2 {
		t.Fatalf("new version lost cpu1 task: %v", got)
	}
}

func TestAffinityRestrictsStealing(t *testing.T) {
	s := New(newEnv(4), 1)
	// Two tasks pinned to cpu 0, queued there with one running.
	s.TaskNew(1, 0, true, []int{0}, tok(1, 0, 1))
	s.TaskNew(2, 0, true, []int{0}, tok(2, 0, 1))
	s.TaskNew(3, 0, true, []int{0}, tok(3, 0, 1))
	s.PickNextTask(0, nil, 0)
	if _, ok := s.Balance(2); ok {
		t.Fatal("stole a task pinned elsewhere")
	}
}

func TestSelectPrefersIdlePrev(t *testing.T) {
	s := New(newEnv(4), 1)
	s.TaskNew(1, 0, false, nil, nil)
	if got := s.SelectTaskRQ(1, 3, true); got != 3 {
		t.Fatalf("wakeup select = %d, want idle prev 3", got)
	}
	// Make cpu 3 busy; select should move off it for fork placement.
	s.TaskNew(2, 0, true, nil, tok(2, 3, 1))
	s.PickNextTask(3, nil, 0)
	if got := s.SelectTaskRQ(1, 3, false); got == 3 {
		t.Fatal("fork select kept the busy cpu despite idle ones")
	}
}

func TestTickSliceExpiry(t *testing.T) {
	env := newEnv(1)
	s := New(env, 1)
	if s.GetPolicy() != 1 {
		t.Fatal("policy")
	}
	s.TaskNew(1, 0, true, nil, tok(1, 0, 1))
	s.TaskNew(2, 0, true, nil, tok(2, 0, 1))
	s.PickNextTask(0, nil, 0)
	// Before the slice is used up: no resched.
	s.TaskTick(0, false, 1, time.Millisecond)
	if len(env.rescheds) != 0 {
		t.Fatalf("early resched: %v", env.rescheds)
	}
	// After exceeding the fair slice (6ms/2 tasks = 3ms): resched.
	s.TaskTick(0, false, 1, 10*time.Millisecond)
	if len(env.rescheds) == 0 {
		t.Fatal("slice expiry did not resched")
	}
	// Tick for a stale pid is ignored.
	env.rescheds = nil
	s.TaskTick(0, false, 99, time.Second)
	if len(env.rescheds) != 0 {
		t.Fatal("stale tick resched")
	}
}

func TestYieldDeadAndCounters(t *testing.T) {
	s := New(newEnv(2), 1)
	s.TaskNew(1, 0, true, nil, tok(1, 0, 1))
	got := s.PickNextTask(0, nil, 0)
	_ = got
	s.TaskYield(1, time.Millisecond, 0, tok(1, 0, 2))
	if s.NRunnable(0) != 1 {
		t.Fatalf("NRunnable = %d", s.NRunnable(0))
	}
	s.TaskDead(1)
	if s.NRunnable(0) != 0 {
		t.Fatal("dead task still queued")
	}
	s.TaskDead(1) // idempotent
	s.TaskAffinityChanged(99, nil)
	s.TaskAffinityChanged(1, []int{0})
}

func TestPeriodScaling(t *testing.T) {
	if period(4) != targetLatency {
		t.Fatal("small period")
	}
	if period(20) != 20*minGranularity {
		t.Fatal("scaled period")
	}
}

func TestRunqNr(t *testing.T) {
	rq := newRunq()
	if rq.nr() != 0 {
		t.Fatal("empty nr")
	}
	tk := &task{pid: 1, weight: 1024}
	tk.node = rq.tree.Insert(0, tk)
	rq.curr = &task{pid: 2, weight: 1024}
	if rq.nr() != 2 {
		t.Fatalf("nr = %d", rq.nr())
	}
}
