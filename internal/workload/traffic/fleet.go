package traffic

import (
	"time"

	"enoki/internal/cluster"
	"enoki/internal/ktime"
	"enoki/internal/overload"
)

// FleetDriver feeds a scenario's connection arrivals through a cluster's
// admission ingress: every connection becomes one job offer (Cycles =
// requests per connection, Run = per-request work, Sleep = think time),
// shed exactly like requests on a single machine — at the front door,
// before the placer sees them. One driver owns the whole scenario; the
// arrival tick chain runs on the control-plane engine, so fleet drives
// stay deterministic serial or parallel.
type FleetDriver struct {
	cl    *cluster.Cluster
	sc    Scenario
	rng   *ktime.Rand
	conns uint64
}

// NewFleetDriver builds a fleet ingress driver. The cluster must have been
// built with Config.Admission covering every class the scenario offers to.
func NewFleetDriver(cl *cluster.Cluster, sc Scenario) *FleetDriver {
	if cl.Overload() == nil {
		panic("traffic: NewFleetDriver on a cluster without admission")
	}
	return &FleetDriver{cl: cl, sc: sc.WithDefaults(), rng: ktime.NewRand(sc.Seed ^ shardSalt)}
}

// Start arms the arrival tick chain. Call once, before running the fleet.
func (f *FleetDriver) Start() { f.post(0) }

// Connections returns how many connections the driver has offered.
func (f *FleetDriver) Connections() uint64 { return f.conns }

// post arms the tick for scenario time at. The tick carries its own
// timestamp: the fleet's Now is the cross-machine floor, which can lag
// the control engine's clock mid-drive, and re-arming off the floor
// would post into the engine's past and livelock.
func (f *FleetDriver) post(at time.Duration) {
	f.cl.PostAt(at, func() { f.tick(at) })
}

func (f *FleetDriver) tick(now time.Duration) {
	if now >= f.sc.Duration {
		return
	}
	for ri := range f.sc.Regions {
		for ci := range f.sc.Classes {
			f.arrivals(ci, ri, now)
		}
	}
	f.post(now + f.sc.Tick)
}

// arrivals mirrors Driver.arrivals at job granularity: expected count is
// rate × tick with a Bernoulli fractional remainder; a churn window
// collapses each connection to a single-cycle job.
func (f *FleetDriver) arrivals(ci, ri int, now time.Duration) {
	c := &f.sc.Classes[ci]
	r := &f.sc.Regions[ri]
	rate := f.sc.Rate * c.Weight * r.Share * f.sc.Factor(ci, now, r.Offset)
	if rate <= 0 {
		return
	}
	exp := rate * f.sc.Tick.Seconds()
	n := int(exp)
	if f.rng.Bernoulli(exp - float64(n)) {
		n++
	}
	cycles := c.ReqPerConn
	if f.sc.churnAt(ci, now) {
		cycles = 1
	}
	for i := 0; i < n; i++ {
		f.conns++
		f.cl.Offer(c.Admission, cluster.JobSpec{
			Name:   c.Name,
			Cycles: cycles,
			Run:    c.Work,
			Sleep:  c.Think,
		})
	}
}

// CheckConservation runs the fleet-level shed-accounting oracle: the
// admission books must balance and, on a drained cluster, every admitted
// job must be Done.
func (f *FleetDriver) CheckConservation() []string {
	return f.cl.Overload().CheckConservation(true)
}

// Counters returns the merged admission accounting across classes.
func (f *FleetDriver) Counters() overload.Counters {
	return f.cl.Overload().Total()
}
