// Package ringbuf implements the fixed-capacity ring buffers Enoki uses at
// the user/kernel boundary: the hint queues of §3.3 and the record channel of
// §3.4.
//
// Two behaviours exist in the paper and both are provided here:
//
//   - Buffer: single-producer/single-consumer, non-blocking, drop-on-overflow.
//     This is the record queue: "If the buffer overruns, events may be
//     dropped." Overflows are counted so experiments can report loss.
//   - Buffer is also used for hints, where the scheduler drains on
//     enter_queue; a full queue makes Push report failure and the producer
//     decides (hint senders drop, matching shared-memory queue semantics).
//
// The simulator is single-threaded over virtual time, so no atomics are
// needed; the record drainer that runs on a real goroutine receives batches
// handed off at event boundaries instead of sharing the buffer.
package ringbuf

// Buffer is a fixed-capacity FIFO ring. The zero value is unusable; create
// with New.
type Buffer[T any] struct {
	buf       []T
	head, len int
	dropped   uint64
}

// New returns a ring with the given capacity (minimum 1).
func New[T any](capacity int) *Buffer[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer[T]{buf: make([]T, capacity)}
}

// Len returns the number of queued entries.
func (b *Buffer[T]) Len() int { return b.len }

// Cap returns the ring capacity.
func (b *Buffer[T]) Cap() int { return len(b.buf) }

// Dropped returns how many pushes were rejected because the ring was full.
func (b *Buffer[T]) Dropped() uint64 { return b.dropped }

// Push appends v and reports success. On a full ring the value is dropped and
// the drop counter advances, matching the paper's overflow semantics.
func (b *Buffer[T]) Push(v T) bool {
	if b.len == len(b.buf) {
		b.dropped++
		return false
	}
	b.buf[(b.head+b.len)%len(b.buf)] = v
	b.len++
	return true
}

// Pop removes and returns the oldest entry; ok is false on an empty ring.
func (b *Buffer[T]) Pop() (v T, ok bool) {
	if b.len == 0 {
		return v, false
	}
	v = b.buf[b.head]
	var zero T
	b.buf[b.head] = zero
	b.head = (b.head + 1) % len(b.buf)
	b.len--
	return v, true
}

// Drain pops every queued entry into a fresh slice (nil if empty).
func (b *Buffer[T]) Drain() []T {
	if b.len == 0 {
		return nil
	}
	out := make([]T, 0, b.len)
	for {
		v, ok := b.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
