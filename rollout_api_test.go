package enoki_test

import (
	"errors"
	"testing"
	"time"

	"enoki"
)

// modulesSetup builds the WithMachineModules setup every rollout API test
// uses: each shard loads a WFQ module under policy 1 and registers CFS
// under policy 0 for the cluster's own plumbing.
func modulesSetup(t *testing.T, loads *int) func(int, *enoki.ShardedKernel) []*enoki.Adapter {
	t.Helper()
	return func(machine int, sk *enoki.ShardedKernel) []*enoki.Adapter {
		ads := make([]*enoki.Adapter, sk.NumShards())
		for s := 0; s < sk.NumShards(); s++ {
			k := sk.ShardKernel(s)
			ads[s] = enoki.Load(k, 1, enoki.DefaultConfig(),
				func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, 1) })
			k.RegisterClass(0, enoki.NewCFS(k))
		}
		*loads += len(ads)
		return ads
	}
}

// TestClusterRolloutQuickstart is the README rollout example: a modular
// fleet upgrades to a new generation in canary waves and the report records
// full convergence.
func TestClusterRolloutQuickstart(t *testing.T) {
	loads := 0
	cl := enoki.NewCluster(
		enoki.WithMachines(6),
		enoki.WithJobPolicy(1),
		enoki.WithMachineModules(modulesSetup(t, &loads)),
	)
	defer cl.Close()
	if loads == 0 {
		t.Fatal("module setup never ran")
	}
	for i := 0; i < 60; i++ {
		cl.Submit(enoki.JobSpec{Cycles: 4, Run: 150 * time.Microsecond})
	}
	ro, err := cl.Rollout("v2", func(machine int, env enoki.Env) enoki.Scheduler {
		return enoki.NewWFQScheduler(env, 1)
	},
		enoki.WithCanaryFraction(0.2),
		enoki.WithWidenFactor(2),
		enoki.WithObserveWindow(time.Millisecond),
		enoki.WithMaxStartP99(5*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("Rollout: %v", err)
	}
	if _, err := cl.Rollout("v3", func(int, enoki.Env) enoki.Scheduler { return nil }); !errors.Is(err, enoki.ErrRolloutActive) {
		t.Fatalf("second Rollout = %v, want ErrRolloutActive", err)
	}
	cl.Run(30 * time.Millisecond)
	if !ro.Done() || ro.Halted() {
		t.Fatalf("rollout unresolved: done=%v halted=%v", ro.Done(), ro.Halted())
	}
	rep := ro.Report()
	if !rep.Completed || rep.Upgraded != 6 || rep.Version != "v2" {
		t.Fatalf("report %+v, want completed with all 6 machines on v2", rep)
	}
	for _, s := range ro.Slots() {
		if s.State != enoki.SlotHealthy {
			t.Fatalf("machine %d ended %v, want healthy", s.Machine, s.State)
		}
	}
}

// TestClusterRolloutErrNoModules pins the error for fleets built without
// upgradable modules.
func TestClusterRolloutErrNoModules(t *testing.T) {
	cl := enoki.NewCluster(enoki.WithMachines(2))
	defer cl.Close()
	_, err := cl.Rollout("v2", func(int, enoki.Env) enoki.Scheduler { return nil })
	if !errors.Is(err, enoki.ErrNoModules) {
		t.Fatalf("Rollout on a module-less fleet = %v, want ErrNoModules", err)
	}
}
