package experiments

import (
	"fmt"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/stats"
	"enoki/internal/workload"
)

// Table6Row is one placement policy's wakeup latency.
type Table6Row struct {
	Config   string
	P50, P99 time.Duration
}

// Table6Result reproduces Table 6: the modified schbench under CFS, CFS
// confined to one core via cgroups, the locality scheduler with random
// placement (no hints), and the locality scheduler with co-location hints.
type Table6Result struct {
	Rows []Table6Row
}

// Name implements the experiment naming convention.
func (r *Table6Result) Name() string { return "table6" }

func (r *Table6Result) String() string {
	t := stats.NewTable("Latency", "CFS", "CFS One Core", "Random", "Hints")
	p50 := []any{"50th (µs)"}
	p99 := []any{"99th (µs)"}
	for _, row := range r.Rows {
		p50 = append(p50, fmt.Sprintf("%d", row.P50/time.Microsecond))
		p99 = append(p99, fmt.Sprintf("%d", row.P99/time.Microsecond))
	}
	t.Row(p50...)
	t.Row(p99...)
	return "Table 6: schbench wakeup latency with locality hints (2 msg × 2 workers)\n" + t.String()
}

// Table6 runs the modified schbench in the four placement configurations.
func Table6(o Options) *Table6Result {
	warmup := scaleDur(o, 5*time.Second, 100*time.Millisecond)
	duration := scaleDur(o, 30*time.Second, 500*time.Millisecond)
	base := workload.SchbenchConfig{
		MessageThreads: 2,
		WorkersPerMsg:  2,
		Warmup:         warmup,
		Duration:       duration,
		// The modified schbench of §5.5: short message handling paced
		// by a per-round pause, so the wakeup path itself is what is
		// measured.
		WorkerBurst: 2 * time.Microsecond,
		MsgWork:     2 * time.Microsecond,
		RoundPause:  150 * time.Microsecond,
	}
	res := &Table6Result{}

	specs := []struct {
		config string
		kind   Kind
		mutate func(*Rig, *workload.SchbenchConfig)
	}{
		{"CFS", KindCFS, nil},
		{"CFS One Core", KindCFS, func(r *Rig, cfg *workload.SchbenchConfig) {
			cfg.OneCore = true
		}},
		{"Random", KindLocality, nil},
		{"Hints", KindLocality, func(r *Rig, cfg *workload.SchbenchConfig) {
			cfg.Hints = r.Adapter.CreateHintQueue(64)
		}},
	}
	res.Rows = make([]Table6Row, len(specs))
	parDo(o, len(specs), func(si int) {
		s := specs[si]
		r := NewRig(kernel.Machine8(), s.kind)
		cfg := base
		cfg.Policy = r.Policy
		if s.mutate != nil {
			s.mutate(r, &cfg)
		}
		sr := workload.RunSchbench(r.K, cfg)
		res.Rows[si] = Table6Row{Config: s.config, P50: sr.P50, P99: sr.P99}
	})
	return res
}
