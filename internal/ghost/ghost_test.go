package ghost

import (
	"testing"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/sim"
)

const (
	policyCFS   = 0
	policyGhost = 20
)

func rig(mode Mode, policy AgentPolicy) (*kernel.Kernel, *Ghost) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	g := New(k, mode, policy, 7, DefaultCosts())
	k.RegisterClass(policyGhost, g)
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	g.Start(policyGhost)
	return k, g
}

func spin(total, chunk time.Duration) kernel.Behavior {
	remaining := total
	return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
		if remaining <= 0 {
			return kernel.Action{Op: kernel.OpExit}
		}
		c := chunk
		if c > remaining {
			c = remaining
		}
		remaining -= c
		return kernel.Action{Run: c, Op: kernel.OpContinue}
	})
}

func TestPerCPUFIFOCompletesWork(t *testing.T) {
	k, g := rig(ModePerCPU, NewFIFOPolicy())
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyGhost, spin(3*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(200 * time.Millisecond)
	if done != 4 {
		t.Fatalf("completed %d/4 under ghOSt per-CPU FIFO", done)
	}
	if g.AgentActivations == 0 {
		t.Fatal("agents never ran")
	}
}

func TestSOLCompletesWork(t *testing.T) {
	k, g := rig(ModeSOL, NewSOLPolicy())
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyGhost, spin(3*time.Millisecond, 500*time.Microsecond),
			kernel.WithAffinity(kernel.AllCPUs(7)), // keep off the agent core
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(200 * time.Millisecond)
	if done != 4 {
		t.Fatalf("completed %d/4 under ghOSt SOL", done)
	}
	if g.AgentActivations == 0 {
		t.Fatal("global agent never ran")
	}
}

func TestGhostPipeSlowerThanDirect(t *testing.T) {
	// The asynchronous agent round-trip must add latency versus a
	// synchronous in-kernel scheduler (Table 3's central comparison).
	pipe := func(build func(k *kernel.Kernel) int) time.Duration {
		eng := sim.New()
		k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
		policy := build(k)
		const rounds = 300
		var a, b *kernel.Task
		count := 0
		var finished time.Duration
		mk := func(peer **kernel.Task, starts bool) kernel.Behavior {
			started := false
			return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
				if starts && !started {
					started = true
					return kernel.Action{Run: 300 * time.Nanosecond, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
				}
				count++
				if count >= 2*rounds {
					finished = time.Duration(k.Now())
					return kernel.Action{Op: kernel.OpExit}
				}
				return kernel.Action{Run: 300 * time.Nanosecond, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
			})
		}
		a = k.Spawn("a", policy, mk(&b, true), kernel.WithAffinity(kernel.SingleCPU(0)))
		b = k.Spawn("b", policy, mk(&a, false), kernel.WithAffinity(kernel.SingleCPU(0)))
		k.RunFor(10 * time.Second)
		if count < 2*rounds {
			t.Fatalf("pipe stalled at %d", count)
		}
		return finished / (2 * rounds)
	}
	cfsLat := pipe(func(k *kernel.Kernel) int {
		k.RegisterClass(policyCFS, kernel.NewCFS(k))
		return policyCFS
	})
	ghostLat := pipe(func(k *kernel.Kernel) int {
		g := New(k, ModePerCPU, NewFIFOPolicy(), 7, DefaultCosts())
		k.RegisterClass(policyGhost, g)
		k.RegisterClass(policyCFS, kernel.NewCFS(k))
		g.Start(policyGhost)
		return policyGhost
	})
	if ghostLat < cfsLat+2*time.Microsecond {
		t.Fatalf("ghOSt per-CPU FIFO latency %v vs CFS %v: agent cost missing", ghostLat, cfsLat)
	}
	if ghostLat > cfsLat+15*time.Microsecond {
		t.Fatalf("ghOSt latency %v implausibly high (CFS %v)", ghostLat, cfsLat)
	}
}

func TestShinjukuPolicyPreemptsLongTasks(t *testing.T) {
	// One long task and a stream of short tasks on a single worker core:
	// with a 10µs quantum the short tasks must not wait for the long one
	// to finish.
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	g := New(k, ModeSOL, NewShinjukuPolicy(10*time.Microsecond), 7, DefaultCosts())
	k.RegisterClass(policyGhost, g)
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	g.Start(policyGhost)

	workerMask := kernel.SingleCPU(0)
	k.Spawn("long", policyGhost, spin(50*time.Millisecond, 50*time.Millisecond),
		kernel.WithAffinity(workerMask))
	k.RunFor(2 * time.Millisecond)

	var shortDone []time.Duration
	start := k.Now()
	for i := 0; i < 3; i++ {
		k.Spawn("short", policyGhost, spin(5*time.Microsecond, 5*time.Microsecond),
			kernel.WithAffinity(workerMask),
			kernel.WithExitObserver(func() {
				shortDone = append(shortDone, k.Now().Sub(start))
			}))
	}
	k.RunFor(20 * time.Millisecond)
	if len(shortDone) != 3 {
		t.Fatalf("short tasks finished: %d/3", len(shortDone))
	}
	for _, d := range shortDone {
		if d > 5*time.Millisecond {
			t.Fatalf("short task waited %v behind a long task; preemption broken", d)
		}
	}
}

func TestStaleCommitsDetected(t *testing.T) {
	// Kill tasks racily so some commits go stale; the class must survive.
	k, _ := rig(ModeSOL, NewSOLPolicy())
	for i := 0; i < 20; i++ {
		k.Spawn("flash", policyGhost, spin(30*time.Microsecond, 30*time.Microsecond),
			kernel.WithAffinity(kernel.AllCPUs(7)))
	}
	k.RunFor(100 * time.Millisecond)
	if k.NumTasks() != 1 { // only the agent remains
		t.Fatalf("tasks leaked: %d", k.NumTasks())
	}
}

func TestAgentSharesCoreInPerCPUMode(t *testing.T) {
	// In per-CPU mode the agent consumes cycles on the workload's core.
	k, g := rig(ModePerCPU, NewFIFOPolicy())
	k.Spawn("sleeper", policyGhost, kernel.BehaviorFunc(
		func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			return kernel.Action{Run: 10 * time.Microsecond, Op: kernel.OpSleep, SleepFor: 90 * time.Microsecond}
		}), kernel.WithAffinity(kernel.SingleCPU(0)))
	k.RunFor(100 * time.Millisecond)
	agent := g.agents[0]
	if agent.SumExec() == 0 {
		t.Fatal("per-CPU agent consumed no cycles despite scheduling activity")
	}
}
