package arachne

import (
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/arbiter"
)

// AttachEnoki wires a runtime to the Enoki core arbiter through the
// bidirectional hint queues (§4.2.4): core requests out, grants and
// reclamation requests back.
func AttachEnoki(rt *Runtime, ad *enokic.Adapter, procID int, acts []*kernel.Task) {
	uq := ad.CreateHintQueue(64)
	rev := ad.CreateRevQueue(64)
	rev.OnPush = func(m core.RevMessage) {
		switch v := m.(type) {
		case arbiter.GrantMsg:
			if v.ProcID == procID {
				rt.SetGranted(v.Cores)
			}
		case arbiter.ReclaimMsg:
			if v.ProcID == procID {
				rt.Reclaim(v.Cores)
			}
		}
	}
	for _, t := range acts {
		uq.Send(arbiter.RegisterActivation{ProcID: procID, PID: t.PID()})
	}
	rt.RequestCores = func(n int) {
		uq.Send(arbiter.CoreRequest{ProcID: procID, Cores: n})
	}
	rt.InitialRequest()
}

// NativeArbiter models the original Arachne core arbiter: a userspace
// process reached over a socket, assigning cores with cpuset-style affinity
// pinning. Functionally it allocates like the Enoki arbiter; the differences
// are the socket round-trip on every request and affinity-based placement
// instead of a scheduler class.
type NativeArbiter struct {
	k       *kernel.Kernel
	managed []int
	// SocketRTT is the request/response latency over the arbiter socket.
	SocketRTT time.Duration

	procs map[int]*nativeProc
}

type nativeProc struct {
	rt      *Runtime
	acts    []*kernel.Task
	granted []int
}

// NewNativeArbiter builds the userspace arbiter owning the managed cores.
func NewNativeArbiter(k *kernel.Kernel, managed []int) *NativeArbiter {
	return &NativeArbiter{
		k: k, managed: managed,
		SocketRTT: 25 * time.Microsecond,
		procs:     make(map[int]*nativeProc),
	}
}

// Attach registers a runtime with the native arbiter.
func (na *NativeArbiter) Attach(rt *Runtime, procID int, acts []*kernel.Task) {
	na.procs[procID] = &nativeProc{rt: rt, acts: acts}
	rt.RequestCores = func(n int) {
		// Socket round trip to the arbiter process, then cpuset moves.
		na.k.Engine().After(na.SocketRTT, func() { na.grant(procID, n) })
	}
	rt.InitialRequest()
}

// grant reallocates cores for one process (single-tenant simplification:
// each managed core belongs to at most one proc here, which matches the
// Fig 3 setup of one memcached instance).
func (na *NativeArbiter) grant(procID, want int) {
	p := na.procs[procID]
	if p == nil {
		return
	}
	if want > len(na.managed) {
		want = len(na.managed)
	}
	if want < len(p.granted) {
		n := len(p.granted) - want
		p.granted = p.granted[:want]
		p.rt.Reclaim(n)
		return
	}
	for len(p.granted) < want {
		c := na.managed[len(p.granted)]
		p.granted = append(p.granted, c)
	}
	// cpuset: pin unparked activations one-per-granted-core.
	idx := 0
	for _, t := range p.acts {
		if idx >= len(p.granted) {
			break
		}
		if t.State() == kernel.StateDead {
			continue
		}
		na.k.SetAffinity(t, kernel.SingleCPU(p.granted[idx]))
		idx++
	}
	p.rt.SetGranted(want)
}
