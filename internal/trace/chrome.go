package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteChrome renders events as Chrome trace-event JSON ("JSON Array
// Format") suitable for Perfetto or chrome://tracing: one lane per CPU,
// run intervals reconstructed from switch/idle/exit events as complete ("X")
// slices, wakeup→run handoffs as flow ("s"/"f") arrows, and everything else
// as thread-scoped instants. The output is fully deterministic: events are
// rendered in input order with hand-rolled formatting (no maps, no floats
// beyond fixed-precision timestamps), so a fixed-seed run produces
// byte-identical JSON no matter how the host schedules the exporter.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw}

	cw.metadata(events)

	// Per-CPU open run slice, keyed by lane.
	type openSlice struct {
		start  int64
		pid    int32
		policy int32
		open   bool
	}
	slices := map[int32]*openSlice{}
	// Pending wake per PID: flow start already emitted, arrow lands at the
	// next switch-in of that PID.
	type pendingWake struct {
		id int64
	}
	wakes := map[int32]pendingWake{}
	var flowID int64
	var maxTs int64

	laneOf := func(cpu int32) int32 { return cw.lane(cpu) }

	closeSlice := func(lane int32, ts int64) {
		s := slices[lane]
		if s == nil || !s.open {
			return
		}
		cw.complete(lane, s.start, ts-s.start, fmt.Sprintf("pid %d", s.pid), s.pid, s.policy)
		s.open = false
	}

	for _, ev := range events {
		if ev.Ts > maxTs {
			maxTs = ev.Ts
		}
		lane := laneOf(ev.CPU)
		switch ev.Kind {
		case KindSwitch:
			closeSlice(lane, ev.Ts)
			s := slices[lane]
			if s == nil {
				s = &openSlice{}
				slices[lane] = s
			}
			*s = openSlice{start: ev.Ts, pid: ev.PID, policy: ev.Policy, open: true}
			if pw, ok := wakes[ev.PID]; ok {
				cw.flowEnd(lane, ev.Ts, pw.id)
				delete(wakes, ev.PID)
			}
		case KindIdle:
			closeSlice(lane, ev.Ts)
			cw.instant(lane, ev.Ts, "idle")
		case KindExit:
			closeSlice(lane, ev.Ts)
			cw.instant(lane, ev.Ts, fmt.Sprintf("exit pid %d", ev.PID))
			delete(wakes, ev.PID)
		case KindWake:
			flowID++
			wakes[ev.PID] = pendingWake{id: flowID}
			cw.instant(lane, ev.Ts, fmt.Sprintf("wake pid %d", ev.PID))
			cw.flowStart(lane, ev.Ts, flowID)
		case KindTick:
			cw.instant(lane, ev.Ts, "tick")
		case KindBalance:
			cw.instant(lane, ev.Ts, "balance")
		case KindHint:
			cw.instant(lane, ev.Ts, fmt.Sprintf("hint q%d", ev.Arg))
		case KindWatchdog:
			cw.instant(lane, ev.Ts, "watchdog arm")
		case KindFault:
			cw.instant(lane, ev.Ts, fmt.Sprintf("FAULT cause=%d", ev.Arg))
		case KindKill:
			cw.instant(lane, ev.Ts, fmt.Sprintf("module kill rehomed=%d", ev.Arg))
		case KindDispatch:
			cw.instant(lane, ev.Ts, fmt.Sprintf("dispatch %d", ev.Arg))
		default:
			cw.instant(lane, ev.Ts, ev.Kind.String())
		}
	}

	// Close any slice still running at the trace horizon.
	lanes := make([]int32, 0, len(slices))
	for lane := range slices {
		lanes = append(lanes, lane)
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
	for _, lane := range lanes {
		closeSlice(lane, maxTs)
	}

	cw.finish()
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// userLane is the synthetic lane for user-context events (CPU == -1).
const userLane = int32(1 << 20)

// chromeWriter hand-rolls the JSON so output is deterministic and
// allocation-light. All events share pid 0 ("enoki"); tid is the CPU lane.
type chromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (c *chromeWriter) lane(cpu int32) int32 {
	if cpu < 0 {
		return userLane
	}
	return cpu
}

// metadata emits the process/thread naming block. Lanes are discovered from
// the event slice and emitted in ascending order so the block is stable.
func (c *chromeWriter) metadata(events []Event) {
	c.first = true
	c.emitf(`{"traceEvents":[`)
	c.event(`{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"enoki"}}`)

	seen := map[int32]bool{}
	lanes := []int32{}
	for _, ev := range events {
		lane := c.lane(ev.CPU)
		if !seen[lane] {
			seen[lane] = true
			lanes = append(lanes, lane)
		}
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
	for _, lane := range lanes {
		name := fmt.Sprintf("cpu %d", lane)
		if lane == userLane {
			name = "user"
		}
		c.event(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"%s"}}`, lane, name))
		c.event(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, lane, lane))
	}
}

// ts renders a nanosecond virtual timestamp as microseconds with three
// decimal places — Chrome's unit is µs, and fixed-width fractions keep the
// bytes identical across runs.
func chromeTs(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

func (c *chromeWriter) complete(lane int32, ts, dur int64, name string, pid, policy int32) {
	c.event(fmt.Sprintf(`{"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"name":"%s","args":{"pid":%d,"policy":%d}}`,
		lane, chromeTs(ts), chromeTs(dur), name, pid, policy))
}

func (c *chromeWriter) instant(lane int32, ts int64, name string) {
	c.event(fmt.Sprintf(`{"ph":"i","pid":0,"tid":%d,"ts":%s,"s":"t","name":"%s"}`,
		lane, chromeTs(ts), name))
}

func (c *chromeWriter) flowStart(lane int32, ts int64, id int64) {
	c.event(fmt.Sprintf(`{"ph":"s","pid":0,"tid":%d,"ts":%s,"id":%d,"cat":"wake","name":"wake"}`,
		lane, chromeTs(ts), id))
}

func (c *chromeWriter) flowEnd(lane int32, ts int64, id int64) {
	c.event(fmt.Sprintf(`{"ph":"f","bp":"e","pid":0,"tid":%d,"ts":%s,"id":%d,"cat":"wake","name":"wake"}`,
		lane, chromeTs(ts), id))
}

func (c *chromeWriter) event(s string) {
	if c.first {
		c.first = false
		c.emitf("\n%s", s)
		return
	}
	c.emitf(",\n%s", s)
}

func (c *chromeWriter) finish() {
	c.emitf("\n],\"displayTimeUnit\":\"ns\"}\n")
}

func (c *chromeWriter) emitf(format string, args ...any) {
	if c.err != nil {
		return
	}
	_, c.err = fmt.Fprintf(c.w, format, args...)
}
