package kernel_test

import (
	"testing"

	"enoki/internal/bench"
)

// Micro-benchmarks of the hot simulator paths: these bound how much virtual
// work the harness can push per host second. The bodies live in
// internal/bench so `enokibench -benchjson` can run the same code.

func BenchmarkScheduleOp(b *testing.B) { bench.ScheduleOp(b) }

func BenchmarkScheduleOpTraced(b *testing.B) { bench.ScheduleOpTraced(b) }

func BenchmarkScheduleOpChaosIdle(b *testing.B) { bench.ScheduleOpChaosIdle(b) }

func BenchmarkWakeBurst(b *testing.B) { bench.WakeBurst(b) }

func BenchmarkSpawnExit(b *testing.B) { bench.SpawnExit(b) }

func BenchmarkTickPath(b *testing.B) { bench.TickPath(b) }
