package workload

import (
	"testing"
	"time"

	"enoki/internal/arachne"
	"enoki/internal/kernel"
	"enoki/internal/sim"
)

func cfsKernel(m kernel.Machine) *kernel.Kernel {
	eng := sim.New()
	k := kernel.New(eng, m, kernel.CostsFor(m))
	k.RegisterClass(0, kernel.NewCFS(k))
	return k
}

func TestPipeCompletesAndMeasures(t *testing.T) {
	k := cfsKernel(kernel.Machine8())
	r := RunPipe(k, PipeConfig{Policy: 0, Messages: 2000, SameCore: true})
	if r.Messages != 4000 {
		t.Fatalf("messages = %d", r.Messages)
	}
	if r.PerWakeup < time.Microsecond || r.PerWakeup > 20*time.Microsecond {
		t.Fatalf("per-wakeup = %v", r.PerWakeup)
	}
	// Two-core configuration also completes.
	k2 := cfsKernel(kernel.Machine8())
	r2 := RunPipe(k2, PipeConfig{Policy: 0, Messages: 2000})
	if r2.Messages != 4000 {
		t.Fatalf("two-core messages = %d", r2.Messages)
	}
}

func TestSchbenchProducesSamples(t *testing.T) {
	k := cfsKernel(kernel.Machine8())
	r := RunSchbench(k, SchbenchConfig{
		Policy: 0, MessageThreads: 2, WorkersPerMsg: 2,
		Warmup: 20 * time.Millisecond, Duration: 100 * time.Millisecond,
	})
	if r.Samples < 100 {
		t.Fatalf("samples = %d", r.Samples)
	}
	if r.P99 < r.P50 {
		t.Fatalf("p99 %v < p50 %v", r.P99, r.P50)
	}
}

func TestSchbenchPacedMode(t *testing.T) {
	k := cfsKernel(kernel.Machine8())
	r := RunSchbench(k, SchbenchConfig{
		Policy: 0, MessageThreads: 1, WorkersPerMsg: 2,
		Warmup: 10 * time.Millisecond, Duration: 50 * time.Millisecond,
		WorkerBurst: 2 * time.Microsecond, MsgWork: 2 * time.Microsecond,
		RoundPause: 100 * time.Microsecond,
	})
	if r.Samples < 100 {
		t.Fatalf("paced samples = %d", r.Samples)
	}
}

func TestRocksDBServesOfferedLoad(t *testing.T) {
	k := cfsKernel(kernel.Machine8())
	db := NewRocksDB(k, RocksDBConfig{
		Policy: 0, Rate: 20000,
		Warmup: 50 * time.Millisecond, Duration: 200 * time.Millisecond,
	})
	r := db.Start()
	// Achieved should be within 15% of offered at this low load.
	if r.Achieved < 17000 || r.Achieved > 23000 {
		t.Fatalf("achieved = %.0f of 20000 offered", r.Achieved)
	}
	if r.P99 <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestBatchAppAccounting(t *testing.T) {
	k := cfsKernel(kernel.Machine8())
	b := NewBatchApp(k, 0, 2, 19, []int{0, 1})
	k.RunFor(100 * time.Millisecond)
	cpu := b.CPUTime()
	// Two tasks on two otherwise idle cores for 100ms.
	if cpu < 190*time.Millisecond || cpu > 205*time.Millisecond {
		t.Fatalf("batch cpu = %v", cpu)
	}
	if s := b.Share(100*time.Millisecond, 0); s < 1.9 || s > 2.1 {
		t.Fatalf("share = %.2f", s)
	}
}

func TestMemcachedThreadsLowLoad(t *testing.T) {
	k := cfsKernel(kernel.Machine8())
	r := RunMemcachedThreads(k, 0, 8, MemcachedConfig{
		Rate: 50000, Warmup: 50 * time.Millisecond, Duration: 200 * time.Millisecond,
	})
	if r.Achieved < 42000 || r.Achieved > 58000 {
		t.Fatalf("achieved = %.0f of 50000", r.Achieved)
	}
}

func TestMemcachedArachne(t *testing.T) {
	k := cfsKernel(kernel.Machine8())
	rt := arachne.NewRuntime(k, arachne.DefaultConfig())
	acts := rt.Start(0, 7)
	na := arachne.NewNativeArbiter(k, []int{1, 2, 3, 4, 5, 6, 7})
	na.Attach(rt, 1, acts)
	rt.StartEstimator()
	r := RunMemcachedArachne(k, rt, MemcachedConfig{
		Rate: 50000, Warmup: 50 * time.Millisecond, Duration: 200 * time.Millisecond,
	})
	if r.Achieved < 42000 || r.Achieved > 58000 {
		t.Fatalf("achieved = %.0f of 50000", r.Achieved)
	}
}

func TestAppProfilesAllComplete(t *testing.T) {
	profiles := Table5Profiles()
	if len(profiles) != 36 {
		t.Fatalf("profiles = %d, want 36", len(profiles))
	}
	names := map[string]bool{}
	kinds := map[AppKind]int{}
	for _, p := range profiles {
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		kinds[p.Kind]++
		if p.PaperCFS <= 0 {
			t.Fatalf("%q missing anchor", p.Name)
		}
	}
	if kinds[AppBarrier] == 0 || kinds[AppForkJoin] == 0 || kinds[AppPipeline] == 0 {
		t.Fatalf("kind coverage: %v", kinds)
	}
	// Run one profile of each kind end to end.
	for _, idx := range []int{0, 9, 11} {
		p := profiles[idx]
		k := cfsKernel(kernel.Machine8())
		d := RunApp(k, 0, p, 42)
		if d <= 0 || d >= time.Hour {
			t.Fatalf("%q did not complete: %v", p.Name, d)
		}
	}
}

func TestAppDeterminism(t *testing.T) {
	p := Table5Profiles()[11] // Cassandra pipeline
	run := func() time.Duration {
		k := cfsKernel(kernel.Machine8())
		return RunApp(k, 0, p, 7)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic app run: %v vs %v", a, b)
	}
}

func TestProbes(t *testing.T) {
	k := cfsKernel(kernel.Machine8())
	times := FairnessProbe(k, 0, true, 50*time.Millisecond)
	if len(times) != 5 {
		t.Fatalf("fairness times = %d", len(times))
	}
	for _, d := range times {
		// 5 tasks × 50ms on one core ≈ 250ms each under fair sharing.
		if d < 200*time.Millisecond || d > 300*time.Millisecond {
			t.Fatalf("co-located completion = %v", d)
		}
	}
	k2 := cfsKernel(kernel.Machine8())
	wt := WeightProbe(k2, 0, 50*time.Millisecond)
	if wt[4] <= wt[0] {
		t.Fatalf("nice-19 task finished before normal tasks: %v", wt)
	}
	k3 := cfsKernel(kernel.Machine8())
	pt := PlacementProbe(k3, 0, 50*time.Millisecond, false)
	if len(pt) != 8 {
		t.Fatalf("placement times = %d", len(pt))
	}
}

func TestArachnePipe(t *testing.T) {
	k := cfsKernel(kernel.Machine8())
	rt := arachne.NewRuntime(k, arachne.DefaultConfig())
	rt.Start(0, 2)
	rt.SetGranted(2)
	r := RunArachnePipe(k, rt, 2000, false)
	if r.Messages != 4000 {
		t.Fatalf("messages = %d", r.Messages)
	}
	if r.PerWakeup > time.Microsecond {
		t.Fatalf("user-level per-wakeup = %v", r.PerWakeup)
	}
}
