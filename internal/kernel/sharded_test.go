package kernel

import (
	"testing"
	"time"

	"enoki/internal/ktime"
)

// TestRemoteWake pins the cross-shard wake path at the kernel level: a task
// blocked on shard 1 is woken from shard 0's execution context, the wake
// lands no earlier than one lookahead after the send, and the cross-wake
// counter records the submission.
func TestRemoteWake(t *testing.T) {
	m := MachineNUMA("2node", 2, 1, 4)
	sk := NewShardedKernel(m, CostsFor(m), 0)
	defer sk.Close()
	for i := 0; i < sk.NumShards(); i++ {
		k := sk.ShardKernel(i)
		k.RegisterClass(testPolicyCFS, NewCFS(k))
	}

	k1 := sk.ShardKernel(1)
	var wokeAt ktime.Time
	calls := 0
	task := k1.Spawn("sleeper", testPolicyCFS, BehaviorFunc(func(k *Kernel, _ *Task) Action {
		calls++
		if calls == 1 {
			return Action{Run: 5 * time.Microsecond, Op: OpBlock}
		}
		wokeAt = k.Now()
		return Action{Op: OpExit}
	}))

	var sentAt ktime.Time
	sk.ShardKernel(0).Engine().Post(50*time.Microsecond, func() {
		sentAt = sk.ShardKernel(0).Now()
		sk.RemoteWake(0, 1, task)
	})

	sk.RunFor(time.Millisecond)

	if calls != 2 {
		t.Fatalf("task ran %d segments, want 2 (block, then remote wake)", calls)
	}
	if task.State() != StateDead {
		t.Errorf("task state = %v, want Dead", task.State())
	}
	if got, want := sk.CrossWakes(), uint64(1); got != want {
		t.Errorf("CrossWakes = %d, want %d", got, want)
	}
	la := ktime.Duration(sk.Executor().Lookahead())
	if wokeAt < sentAt.Add(la) {
		t.Errorf("wake ran at %v, before send %v + lookahead %v", wokeAt, sentAt, la)
	}
}

// TestRemoteWakeBatched pins the batch-window bracketing: a burst of remote
// wakes arriving at one instant on one shard drains inside a single IPI
// batch window, coalescing the kicks the same way a local wake burst does.
func TestRemoteWakeBatched(t *testing.T) {
	m := MachineNUMA("2node", 2, 1, 4)
	sk := NewShardedKernel(m, CostsFor(m), 0)
	defer sk.Close()
	for i := 0; i < sk.NumShards(); i++ {
		k := sk.ShardKernel(i)
		k.RegisterClass(testPolicyCFS, NewCFS(k))
	}

	k1 := sk.ShardKernel(1)
	// Four tasks pinned to one CPU of shard 1 block, leaving it idle; every
	// wake in the burst then wants a kick at that same idle target.
	var tasks []*Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, k1.Spawn("blocked", testPolicyCFS,
			BehaviorFunc(func(*Kernel, *Task) Action {
				return Action{Run: time.Microsecond, Op: OpBlock}
			}), WithAffinity(SingleCPU(0))))
	}
	sk.RunFor(20 * time.Microsecond) // everyone spawned and blocked

	sk.ShardKernel(0).Engine().Post(10*time.Microsecond, func() {
		for _, tk := range tasks {
			sk.RemoteWake(0, 1, tk)
		}
	})
	before := k1.IPIsCoalesced
	sk.RunFor(100 * time.Microsecond)

	if got := sk.CrossWakes(); got != 4 {
		t.Fatalf("CrossWakes = %d, want 4", got)
	}
	if got, want := k1.IPIsCoalesced-before, uint64(3); got != want {
		t.Errorf("coalesced %d IPIs in the 4-wake burst, want %d (one kick per target)", got, want)
	}
}
