package chaos

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/ktime"
	"enoki/internal/record"
	"enoki/internal/schedtest"
	"enoki/internal/schedtest/conformance"
	"enoki/internal/vpol"
)

// StormHint is the hint payload PlaneHintStorm pushes. Modules ignore
// unknown hint types by contract, so a storm stresses only the ring and the
// notification path, never module semantics.
type StormHint struct{ N int }

func init() { gob.Register(StormHint{}) }

// Seed salts: every stream a run draws from derives from Schedule.Seed, but
// through distinct salts so the workload, the kernel fault draws, and the
// schedule generation never share a sequence.
const (
	workloadSalt uint64 = 0x9e3779b97f4a7c15
	kernelSalt   uint64 = 0xbf58476d1ce4e5b9
)

// RunConfig tunes one chaos run. The zero value selects the defaults below;
// Rollback is intentionally "on unless disabled" via NoRollback so the zero
// value tests the shipped (transactional) configuration.
type RunConfig struct {
	// Tasks is the workload size (default 24).
	Tasks int
	// Budget bounds virtual run time (default 1s — far beyond what any
	// healthy run needs, so starved tasks are visible as lost progress).
	Budget time.Duration
	// StarveWindow is the watchdog window for the run (default 5ms: tight,
	// so starvation faults resolve quickly inside the budget).
	StarveWindow time.Duration
	// PntErrBudget is the pick-error budget (default 64).
	PntErrBudget int
	// NoRollback disables transactional upgrades, reverting to kill-on-
	// upgrade-fault — the deliberately seeded bug the oracle must catch.
	NoRollback bool
	// NoRecord skips the record log and its decodability check.
	NoRecord bool
	// VerifiedTier additionally mounts the verified-bytecode dual-queue
	// program above the class under test, routing every third workload
	// task through the interpreter. No chaos plane targets the verified
	// tier, so the oracle treats a verified-class kill as a violation.
	VerifiedTier bool
}

func (rc RunConfig) withDefaults() RunConfig {
	if rc.Tasks == 0 {
		rc.Tasks = 24
	}
	if rc.Budget == 0 {
		rc.Budget = time.Second
	}
	if rc.StarveWindow == 0 {
		rc.StarveWindow = 5 * time.Millisecond
	}
	if rc.PntErrBudget == 0 {
		rc.PntErrBudget = 64
	}
	return rc
}

// UpgradeOutcome pairs one scheduled upgrade with what the adapter reported.
type UpgradeOutcome struct {
	// Faulty marks a PlaneUpgradeKill upgrade (new version panics in init).
	Faulty bool
	Report enokic.UpgradeReport
}

// Result is one chaos run's observable outcome plus the oracle's verdict.
type Result struct {
	Schedule  Schedule
	Tasks     int
	Completed int
	Killed    bool
	Failure   *enokic.FailureReport
	Stats     enokic.Stats
	Upgrades  []UpgradeOutcome
	// VerifiedKilled/VerifiedFailure/VerifiedPicks report the verified
	// tier's fate when RunConfig.VerifiedTier mounted it.
	VerifiedKilled  bool
	VerifiedFailure *vpol.FailureReport
	VerifiedPicks   uint64
	// UpgradesScheduled counts upgrades the schedule requested; every one
	// must produce exactly one outcome (possibly ErrModuleKilled).
	UpgradesScheduled int
	// HintAttempts counts storm pushes, checked against delivered+dropped.
	HintAttempts uint64
	// RecordLog is the raw record-channel bytes (nil with NoRecord), kept
	// so determinism tests can compare runs byte for byte.
	RecordLog []byte
	// Violations is the oracle's verdict: empty means the run upheld every
	// invariant.
	Violations []string
}

// Failed reports whether the oracle found any invariant breach.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

func caseByName(name string) (conformance.Case, bool) {
	for _, c := range conformance.Cases() {
		if c.Name == name {
			return c, true
		}
	}
	return conformance.Case{}, false
}

// ClassNames lists every scheduler class a campaign can target.
func ClassNames() []string {
	cases := conformance.Cases()
	out := make([]string, len(cases))
	for i, c := range cases {
		out[i] = c.Name
	}
	return out
}

// kernelFaults implements core.KernelFaultInjector for the kernel planes:
// window-gated IPI drop/delay/duplication and timer skew. All draws come
// from a dedicated seeded stream and the methods never allocate, honouring
// the injector contract.
type kernelFaults struct {
	clock func() int64
	rng   *ktime.Rand

	dropFrom, dropUntil   int64
	dropMag               int64
	delayFrom, delayUntil int64
	delayMag              int64
	dupFrom, dupUntil     int64
	dupMag                int64
	skewFrom, skewUntil   int64
	skewMag               int64
}

func within(now, from, until int64) bool {
	return until > from && now >= from && now < until
}

// DisarmedInjector returns the engine's kernel fault injector with no fault
// window armed — the steady state every chaos run's kick and timer paths see
// between events. Exported so the allocation ratchet can pin "disabled fault
// hooks are free" against the real injector code rather than a stand-in.
func DisarmedInjector(clock func() int64, seed uint64) core.KernelFaultInjector {
	return &kernelFaults{clock: clock, rng: ktime.NewRand(seed)}
}

func (f *kernelFaults) InterceptKick(target int, delay time.Duration) core.KickFate {
	now := f.clock()
	var fate core.KickFate
	if within(now, f.dropFrom, f.dropUntil) {
		fate.Delay += time.Duration(f.dropMag)
	}
	if within(now, f.delayFrom, f.delayUntil) && f.delayMag > 0 {
		fate.Delay += time.Duration(f.rng.Uint64() % uint64(f.delayMag))
	}
	if within(now, f.dupFrom, f.dupUntil) {
		fate.Duplicate = true
		fate.DupDelay = time.Duration(f.dupMag)
	}
	return fate
}

func (f *kernelFaults) SkewTimer(cpu int, d time.Duration) time.Duration {
	now := f.clock()
	if within(now, f.skewFrom, f.skewUntil) && f.skewMag > 0 {
		d += time.Duration(f.rng.Uint64() % uint64(f.skewMag))
	}
	return d
}

// Run executes one fault schedule against its class and judges the outcome
// with the invariant oracle. Deterministic end to end: same schedule + same
// config → same Result, byte-identical record log included.
func Run(s Schedule, rc RunConfig) Result {
	rc = rc.withDefaults()
	c, ok := caseByName(s.Class)
	if !ok {
		return Result{Schedule: s, Violations: []string{fmt.Sprintf("unknown class %q", s.Class)}}
	}

	cfg := enokic.DefaultConfig()
	cfg.StarveWindow = rc.StarveWindow
	cfg.PntErrBudget = rc.PntErrBudget
	cfg.UpgradeRollback = !rc.NoRollback
	if rc.VerifiedTier {
		c.Verified = vpol.DualQueueProgram()
	}

	inj := &schedtest.Injector{}
	var rig *conformance.Rig
	if c.NewModule == nil {
		rig = conformance.NewRig(c, cfg, nil)
	} else {
		rig = conformance.NewRig(c, cfg, func(m core.Scheduler) core.Scheduler {
			inj.Scheduler = m
			return inj
		})
	}
	k := rig.K
	eng := k.Engine()
	inj.Clock = func() int64 { return int64(k.Now()) }

	res := Result{Schedule: s, Tasks: rc.Tasks}

	var buf bytes.Buffer
	var rec *record.Recorder
	if !rc.NoRecord && rig.Adapter != nil {
		rec = record.New(k, &buf, conformance.PolicyCFS, record.DefaultCosts())
		rig.Adapter.SetRecorder(rec)
	}

	kf := &kernelFaults{clock: inj.Clock, rng: ktime.NewRand(s.Seed ^ kernelSalt)}
	armedKernel := false
	var storms []Event

	for i, ev := range s.Events {
		if !s.EnabledAt(i) {
			continue
		}
		switch ev.Plane {
		case PlanePanic:
			if rig.Adapter != nil {
				inj.PanicSite, inj.PanicAt = ev.Site, ev.Count
			}
		case PlaneStall:
			if rig.Adapter != nil {
				inj.StallFrom = ev.At
				inj.StallUntil = 0
				if ev.Dur > 0 {
					inj.StallUntil = ev.At + ev.Dur
				}
			}
		case PlaneForge:
			if rig.Adapter != nil {
				inj.ForgeFrom, inj.ForgeCount = int(ev.Mag), ev.Count
			}
		case PlaneHintStorm:
			if rig.Adapter != nil && c.SupportsHints {
				storms = append(storms, ev)
			}
		case PlaneIPIDrop:
			kf.dropFrom, kf.dropUntil, kf.dropMag = ev.At, ev.At+ev.Dur, ev.Mag
			armedKernel = true
		case PlaneIPIDelay:
			kf.delayFrom, kf.delayUntil, kf.delayMag = ev.At, ev.At+ev.Dur, ev.Mag
			armedKernel = true
		case PlaneIPIDup:
			kf.dupFrom, kf.dupUntil, kf.dupMag = ev.At, ev.At+ev.Dur, ev.Mag
			armedKernel = true
		case PlaneTimerSkew:
			kf.skewFrom, kf.skewUntil, kf.skewMag = ev.At, ev.At+ev.Dur, ev.Mag
			armedKernel = true
		case PlaneUpgrade, PlaneUpgradeKill:
			if rig.Adapter == nil {
				break
			}
			faulty := ev.Plane == PlaneUpgradeKill
			res.UpgradesScheduled++
			eng.Post(time.Duration(ev.At), func() {
				factory := func(env core.Env) core.Scheduler {
					m := c.NewModule(env, k.NumCPUs())
					if faulty {
						m = &schedtest.Injector{Scheduler: m, PanicInInit: true}
					}
					return m
				}
				err := rig.Adapter.Upgrade(factory, func(rep enokic.UpgradeReport) {
					res.Upgrades = append(res.Upgrades, UpgradeOutcome{Faulty: faulty, Report: rep})
				})
				if err != nil {
					// Module already dead: the refusal is the outcome.
					res.Upgrades = append(res.Upgrades, UpgradeOutcome{
						Faulty: faulty, Report: enokic.UpgradeReport{Err: err},
					})
				}
			})
		}
	}
	if armedKernel {
		k.SetFaultInjector(kf)
	}
	if len(storms) > 0 {
		// A tiny ring makes overflow certain; the accounting must balance.
		q := rig.Adapter.CreateHintQueue(8)
		if q != nil {
			for _, ev := range storms {
				n := ev.Count
				eng.Post(time.Duration(ev.At), func() {
					for j := 0; j < n; j++ {
						res.HintAttempts++
						q.Send(StormHint{N: j})
					}
				})
			}
		}
	}

	checker := conformance.StartChecker(rig, 200*time.Microsecond)
	w := conformance.Workload{
		Seed:   s.Seed ^ workloadSalt,
		Tasks:  rc.Tasks,
		Churn:  true,
		Budget: rc.Budget,
	}
	res.Completed = w.Run(rig)
	checker.Stop()

	if rig.Adapter != nil {
		res.Killed = rig.Adapter.Killed()
		res.Failure = rig.Adapter.Failure()
		res.Stats = rig.Adapter.Stats()
	}
	if rig.Verified != nil {
		res.VerifiedKilled = rig.Verified.Killed()
		res.VerifiedFailure = rig.Verified.Failure()
		res.VerifiedPicks = rig.Verified.Stats().Picks
	}
	if rec != nil {
		rec.Close()
		res.RecordLog = buf.Bytes()
	}

	res.Violations = oracle(&res, rc, checker)
	return res
}

// killJustified reports whether any enabled event belongs to a plane for
// which killing the module is a legitimate fault-layer response. Upgrade
// planes never justify a kill (the transaction must roll back), nor do hint
// storms (overflow sheds, it does not corrupt) or kernel planes (IPI and
// timer degradation bound liveness but never destroy it).
func killJustified(s Schedule) bool {
	for i, ev := range s.Events {
		if !s.EnabledAt(i) {
			continue
		}
		switch ev.Plane {
		case PlanePanic, PlaneStall, PlaneForge:
			return true
		}
	}
	return false
}

// oracle evaluates the run's invariants. Every rule is a property any
// correct configuration must uphold under any fault schedule, so a verdict
// never needs to know what the faults "should" have done — only what the
// stack guarantees.
func oracle(r *Result, rc RunConfig, checker *conformance.Checker) []string {
	var v []string
	add := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	// No lost tasks: whatever faulted, every task finishes — under the
	// module, or under CFS after a rehome.
	if r.Completed != r.Tasks {
		add("lost tasks: %d of %d completed within budget", r.Completed, r.Tasks)
	}
	// No double-run / state / affinity breaches.
	for _, cv := range checker.Violations {
		add("checker: %s", cv)
	}
	// The verified tier is untargeted by every chaos plane and its
	// programs are statically verified, so any verified-class kill is a
	// bug in the interpreter or verifier — and an idle verified tier
	// means its share of the workload was never scheduled through it.
	if r.VerifiedKilled {
		trap := "unknown"
		if r.VerifiedFailure != nil {
			trap = r.VerifiedFailure.Trap.String()
		}
		add("verified class killed (no chaos plane targets the verified tier): %s", trap)
	}
	if rc.VerifiedTier && r.VerifiedPicks == 0 {
		add("verified tier mounted but never picked a task")
	}
	// Kills must be earned by a module-sabotage plane.
	if r.Killed && !killJustified(r.Schedule) {
		cause := "unknown"
		if r.Failure != nil {
			cause = r.Failure.Fault.String()
		}
		add("module killed without a kill-justifying fault plane: %s", cause)
	}
	// The watchdog must fire within its budget: detection lag is bounded
	// by the window plus one re-arm granularity (with slack for stacked
	// fault timing).
	if r.Failure != nil && r.Failure.Fault.Cause == core.FaultStarvation {
		if r.Failure.Downtime > 4*rc.StarveWindow {
			add("watchdog exceeded budget: starved %v with window %v",
				r.Failure.Downtime, rc.StarveWindow)
		}
	}
	// Every scheduled upgrade resolves exactly once — success, rollback,
	// or ErrModuleKilled — never silence.
	if len(r.Upgrades) != r.UpgradesScheduled {
		add("upgrade callbacks: %d scheduled, %d resolved", r.UpgradesScheduled, len(r.Upgrades))
	}
	// Upgrade transactionality, judged only while the module is alive (a
	// justified kill makes ErrModuleKilled the right answer; an unjustified
	// one is already reported above).
	if !r.Killed {
		for _, u := range r.Upgrades {
			switch {
			case u.Report.Err != nil:
				add("upgrade resolved with error on a live module: %v", u.Report.Err)
			case u.Faulty && !u.Report.RolledBack:
				add("faulty upgrade did not roll back (new module's init panicked)")
			case !u.Faulty && u.Report.RolledBack:
				add("clean upgrade rolled back: %v", u.Report.Fault)
			}
		}
	}
	// Hint accounting balances: every storm push is either delivered or a
	// counted drop — overload is observable, never silent.
	if r.HintAttempts > 0 && r.Stats.HintsDelivered+r.Stats.HintsDropped != r.HintAttempts {
		add("hint accounting leak: %d delivered + %d dropped != %d attempts",
			r.Stats.HintsDelivered, r.Stats.HintsDropped, r.HintAttempts)
	}
	// The record log survives whatever the run did to the module.
	if r.RecordLog != nil {
		if _, err := record.Load(bytes.NewReader(r.RecordLog)); err != nil {
			add("record log not decodable: %v", err)
		}
	}
	return v
}
