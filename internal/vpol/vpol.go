// Package vpol is the verified-policy fast lane: a tiny register-machine
// scheduling bytecode executed directly inside the kernel's enqueue/pick
// path, after the sched_ext/eBPF model. A policy that fits the bytecode —
// compares, branches, bounded loops, task-field loads, enqueue-to and
// pick-from typed queues — runs with no module crossing at all: no message
// build, no dispatch, no Schedulable validation, no allocation. The static
// verifier (verify.go) proves every program terminates within a constant
// step budget before it is ever run, and the interpreter (class.go) backs
// that proof with a fuel counter and a trap-to-CFS kill path, so the middle
// tier keeps the fault-isolation story of the full module tier.
//
// The three policy tiers the repo now spans:
//
//	built-in (CFS/RT)   native Go, zero overhead, fixed policy
//	verified (vpol)     bytecode, ~15 ns/hook, verifier-bounded
//	module (enokic)     full EnokiScheduler, ~110 ns/hook crossing,
//	                    panic containment + watchdog
//
// Programs are written in the assembler text format (asm.go), verified with
// Verify, and attached through enoki.System.Attach(policy,
// enoki.VerifiedProgram(prog)).
package vpol

import "time"

// Machine limits. The verifier enforces every one of them; the interpreter
// sizes its fixed state from them, which is what keeps the hook path free of
// allocation.
const (
	// NumRegs is the register-file size (r0..r7). r1 is preloaded with the
	// hook's CPU; everything else starts at zero.
	NumRegs = 8
	// MaxInsts bounds one hook's instruction count.
	MaxInsts = 256
	// MaxSharedQueues and MaxLocalQueues bound the declared queue tables.
	MaxSharedQueues = 8
	MaxLocalQueues  = 4
	// MaxLoopIter bounds one OpLoop's static trip count.
	MaxLoopIter = 64
	// MaxLoopDepth bounds loop nesting.
	MaxLoopDepth = 4
	// MaxSteps bounds the statically-computed worst-case instruction count
	// of one hook invocation (loop bodies weighted by their trip counts).
	MaxSteps = 4096
	// MinSlice is the smallest non-zero preemption quantum a program may
	// declare; anything shorter would livelock the pick path in overhead.
	MinSlice = 10 * time.Microsecond
)

// Op is one bytecode opcode.
type Op uint8

// Opcodes. Operand conventions: A and B are register indices unless noted;
// Imm is the 64-bit immediate (also the branch target, as an absolute
// instruction index).
const (
	OpInvalid Op = iota
	// OpRet ends the hook. In the enqueue hook the context task must have
	// been enqueued exactly once by now, or the program traps.
	OpRet
	// OpLdi: rA = Imm.
	OpLdi
	// OpMov: rA = rB.
	OpMov
	// Arithmetic: rA = rA <op> rB. Div and Mod trap on a zero divisor.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	// OpAddi: rA += Imm.
	OpAddi
	// OpJmp: unconditional forward jump to Imm.
	OpJmp
	// Conditional forward jumps to Imm on rA <cond> rB.
	OpJeq
	OpJne
	OpJlt
	OpJle
	OpJgt
	OpJge
	// Conditional forward jumps to Imm on rA <cond> 0.
	OpJeqz
	OpJnez
	OpJltz
	OpJgez
	// OpLoop: bounded backward jump. B is the static trip count (the block
	// from Imm through this instruction executes B times total); Imm is the
	// backward target. The verifier requires proper nesting and weights the
	// step budget by the trip count.
	OpLoop
	// OpLdf: rA = field B of the context task (enqueue hook only).
	OpLdf
	// OpQlen: rA = live length of queue (B = kind, Imm = index).
	OpQlen
	// OpEnq: enqueue the context task onto queue (A = kind, Imm = index).
	// Enqueue hook only; exactly one must execute per invocation.
	OpEnq
	// OpTryPop: pop the first runnable, affinity-allowed task from queue
	// (A = kind, Imm = index) and terminate the hook returning it; falls
	// through when the queue has none. Pick hook only.
	OpTryPop

	opMax // sentinel
)

// Queue kinds: a shared queue is machine-wide (any CPU may pop); a local
// queue is per-CPU (the enqueue hook writes the target CPU's instance, the
// pick hook reads the picking CPU's).
const (
	QShared uint8 = 0
	QLocal  uint8 = 1
)

// Field is a task field readable with OpLdf.
type Field uint8

// Task fields.
const (
	// FieldPID is the task's pid.
	FieldPID Field = iota
	// FieldCPU is the enqueue target CPU (the hook's cpu argument).
	FieldCPU
	// FieldNice is the task's nice value.
	FieldNice
	// FieldWeight is the CFS load weight for the task's nice value.
	FieldWeight
	// FieldVruntime is the task's accumulated CPU time in nanoseconds.
	FieldVruntime
	// FieldLastCPU is the CPU whose queue last held the task.
	FieldLastCPU
	// FieldFlags carries enqueue-context bits (FlagWakeup, FlagRequeue).
	FieldFlags

	fieldMax // sentinel
)

// FieldFlags bits.
const (
	// FlagWakeup: the enqueue is a wakeup (vs fork/migration).
	FlagWakeup int64 = 1 << 0
	// FlagRequeue: the enqueue re-queues the CPU's previous task (yield or
	// preemption put-prev), not a newly runnable one.
	FlagRequeue int64 = 1 << 1
)

// Inst is one fixed-size instruction.
type Inst struct {
	Op   Op
	A, B uint8
	Imm  int64
}

// Program is one verified policy: the queue declaration, an optional
// preemption quantum, and the two hook bodies. A Program must pass Verify
// before Load accepts it; Verify also computes the static fuel bounds the
// interpreter enforces at run time.
type Program struct {
	// SharedQueues and LocalQueues declare the queue tables; every queue
	// handle in the code is checked against them.
	SharedQueues int
	LocalQueues  int
	// Slice, when non-zero, is the preemption quantum: a task that has run
	// at least Slice since its pick is rescheduled on the next tick if the
	// class has other work for its CPU. Zero means run-to-block.
	Slice time.Duration
	// Enqueue runs when a task becomes runnable (r1 = target CPU); it must
	// OpEnq the task exactly once. Pick runs when a CPU asks for work
	// (r1 = CPU); OpTryPop both pops and returns.
	Enqueue []Inst
	Pick    []Inst

	// Verify's products: the flag gating Load and the per-hook worst-case
	// step counts used as runtime fuel.
	verified  bool
	enqSteps  int64
	pickSteps int64
}

// Verified reports whether the program has passed Verify since its last
// mutation-free construction. (Mutating a verified Program and re-loading it
// without re-verifying is not supported; Load always re-verifies.)
func (p *Program) Verified() bool { return p.verified }
