// Package kernel implements the simulated Linux scheduling core the Enoki
// reproduction runs on: per-CPU run states, scheduler classes in priority
// order, ticks, reschedule timers, wake/block/yield/exit paths, migrations,
// and calibrated cost accounting. It is the substrate the paper calls "the
// core scheduling code"; internal/enokic plugs into it exactly where Enoki-C
// plugs into kernel/sched/core.c.
//
// The whole kernel runs inside a deterministic discrete-event simulation
// (internal/sim): there is no host concurrency, so runs are reproducible
// bit-for-bit for a given seed and workload.
package kernel

import (
	"fmt"
	"sort"
	"time"

	"enoki/internal/core"
	"enoki/internal/ktime"
	"enoki/internal/metrics"
	"enoki/internal/sim"
	"enoki/internal/trace"
)

// CPU is the per-CPU scheduling state (struct rq analogue).
type CPU struct {
	id          int
	curr        *Task
	needResched bool
	kickPending bool
	idleSince   ktime.Time
	wakingUntil ktime.Time
	wasIdle     bool

	// tickEvent and reschedTimer are persistent events re-armed in place
	// (sim.Reschedule): one Event object per CPU for the life of the kernel
	// instead of a closure + Event allocation per arm.
	tickEvent    *sim.Event
	reschedTimer *sim.Event
	tickRunning  bool

	// kickFn and kick0Fn are the pre-built closures behind kick(): delayed
	// and coalesced zero-delay kicks post them fire-and-forget, keeping the
	// kick path allocation-free.
	kickFn  func()
	kick0Fn func()

	busy        time.Duration
	pendingCost time.Duration
	switches    uint64

	// inPick marks that this CPU is inside its own schedule pass; a slice
	// timer armed for it during the pass (a class arming its quantum from
	// PickNext) is deferred into pickTimer and armed relative to when the
	// picked task actually starts running, so schedule-pass overhead never
	// eats the quantum. pickTimer -1 means no deferred arm.
	inPick    bool
	pickTimer time.Duration
}

// ID returns the CPU index.
func (c *CPU) ID() int { return c.id }

// Kernel is the simulated scheduling core.
type Kernel struct {
	eng     *sim.Engine
	machine Machine
	topo    *core.Topology
	costs   Costs
	cpus    []*CPU
	classes []classSlot
	byID    map[int]Class
	idOf    map[Class]int
	tasks   map[int]*Task
	nextPID int

	rand *ktime.Rand

	// tracer and met are the optional observability taps (observe.go); nil
	// means off, and every hook guards on that.
	tracer *trace.Tracer
	met    *metrics.Set

	// finj is the optional kernel-plane fault hook (faults.go): nil in
	// normal operation, so the kick and timer paths pay one pointer test.
	finj core.KernelFaultInjector

	// Batched cross-CPU signal path: while a batch window is open (multi-
	// task wake bursts), kicks destined for other CPUs are coalesced per
	// target — pending flag, minimum delay, arrival order — and drained in
	// one flush at the event boundary, so an N-task futex wake posts one
	// IPI per distinct target instead of one per wake. All slices are
	// preallocated; the path allocates nothing.
	ipiEnabled bool
	ipiOpen    bool
	// ipiWindow mirrors the burst window even when batching is off, so
	// unbatched wake kicks are still counted as sent IPIs.
	ipiWindow bool
	// ipiDepth counts nested window opens: the sharded executor brackets a
	// whole cross-shard delivery batch in one window, and each Wake inside
	// it opens its own. Only the outermost close flushes, so a burst of
	// remote wakes coalesces exactly like a local futex burst.
	ipiDepth int
	ipiPend  []bool
	ipiDelay []time.Duration
	ipiOrder []int

	// CtxSwitches counts context switches machine-wide.
	CtxSwitches uint64
	// Wakeups counts successful task wakeups.
	Wakeups uint64
	// XLLCMoves counts task placements (wake re-targets and migrations)
	// that crossed an LLC domain; XNodeMoves counts the subset that also
	// crossed a socket — the cost the NUMA experiments measure.
	XLLCMoves  uint64
	XNodeMoves uint64
	// IPIsSent counts flushed cross-CPU kicks; IPIsCoalesced counts kicks
	// absorbed into an already-pending one by the batcher.
	IPIsSent      uint64
	IPIsCoalesced uint64
}

// New creates a kernel for the given machine and cost table on engine eng.
func New(eng *sim.Engine, m Machine, costs Costs) *Kernel {
	k := &Kernel{
		eng:        eng,
		machine:    m,
		topo:       m.Topo(),
		costs:      costs,
		byID:       make(map[int]Class),
		idOf:       make(map[Class]int),
		tasks:      make(map[int]*Task),
		nextPID:    1,
		rand:       ktime.NewRand(0x1d1e),
		ipiEnabled: true,
		ipiPend:    make([]bool, m.NumCPUs),
		ipiDelay:   make([]time.Duration, m.NumCPUs),
		ipiOrder:   make([]int, 0, m.NumCPUs),
	}
	for i := 0; i < m.NumCPUs; i++ {
		c := &CPU{id: i}
		c.tickEvent = eng.NewEvent(func() { k.tickFire(c) })
		c.reschedTimer = eng.NewEvent(func() { k.Resched(c.id) })
		c.kickFn = func() { k.schedule(c.id) }
		c.kick0Fn = func() {
			c.kickPending = false
			k.schedule(c.id)
		}
		k.cpus = append(k.cpus, c)
	}
	return k
}

// Engine returns the underlying event engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Now returns the current virtual time.
func (k *Kernel) Now() ktime.Time { return k.eng.Now() }

// NumCPUs returns the machine's CPU count.
func (k *Kernel) NumCPUs() int { return k.machine.NumCPUs }

// Topology returns the machine description.
func (k *Kernel) Topology() Machine { return k.machine }

// Topo returns the machine's scheduling-domain structure, built once at
// kernel construction and shared with every class and module environment.
func (k *Kernel) Topo() *core.Topology { return k.topo }

// SetIPIBatching enables or disables the batched cross-CPU signal path
// (enabled by default). The unbatched mode posts one kick event per wake and
// exists for the batched-vs-unbatched equivalence tests and ablations.
func (k *Kernel) SetIPIBatching(on bool) { k.ipiEnabled = on }

// Costs returns the calibrated cost table.
func (k *Kernel) Costs() Costs { return k.costs }

// RegisterClass registers a scheduler class under policy id. Registration
// order is priority order: earlier classes preempt later ones. Registering a
// duplicate id panics.
func (k *Kernel) RegisterClass(id int, c Class) {
	if _, dup := k.byID[id]; dup {
		panic(fmt.Sprintf("kernel: duplicate class id %d", id))
	}
	k.byID[id] = c
	k.idOf[c] = id
	k.classes = append(k.classes, classSlot{id: id, class: c})
	if k.met != nil {
		k.met.RegisterTiered(id, c.Name(), CrossingTierOf(c))
	}
}

// ClassByID returns the class registered under id, or nil.
func (k *Kernel) ClassByID(id int) Class { return k.byID[id] }

// ClassDepth sums the runnable (queued, not running) backlog of the class
// registered under id across every CPU — the queue-depth signal the
// overload plane's brownout sampler consumes. Unknown ids report zero.
func (k *Kernel) ClassDepth(id int) int {
	c := k.byID[id]
	if c == nil {
		return 0
	}
	n := 0
	for cpu := 0; cpu < k.NumCPUs(); cpu++ {
		n += c.NRunnable(cpu)
	}
	return n
}

// DeregisterClass removes the class registered under id from the scheduling
// pick order and re-points the id at the class registered under fallbackID.
// Later Spawn or SetScheduler calls naming the dead policy silently land in
// the fallback class — the userspace-visible behaviour of a scheduler module
// being killed out from under its processes. The dead class must hold no
// tasks (rehome them first); panics on unknown ids or id == fallbackID.
func (k *Kernel) DeregisterClass(id, fallbackID int) {
	dead, ok := k.byID[id]
	if !ok {
		panic(fmt.Sprintf("kernel: DeregisterClass of unregistered class %d", id))
	}
	fb, ok := k.byID[fallbackID]
	if !ok {
		panic(fmt.Sprintf("kernel: DeregisterClass fallback %d not registered", fallbackID))
	}
	if fb == dead {
		panic(fmt.Sprintf("kernel: DeregisterClass %d onto itself", id))
	}
	for _, t := range k.tasks {
		if t.class == dead {
			panic(fmt.Sprintf("kernel: DeregisterClass %d still owns task %s", id, t))
		}
	}
	for i, s := range k.classes {
		if s.id == id {
			k.classes = append(k.classes[:i], k.classes[i+1:]...)
			break
		}
	}
	k.byID[id] = fb
}

// RehomeTasks moves every live task owned by class from into the class
// registered under toID (SetScheduler per task, in pid order so the
// migration sequence is deterministic). It returns how many tasks moved.
// This is the mass-migration half of killing a faulty module: the caller
// rehomes, then deregisters the empty class.
func (k *Kernel) RehomeTasks(from Class, toID int) int {
	pids := make([]int, 0, len(k.tasks))
	for pid, t := range k.tasks {
		if t.class == from {
			pids = append(pids, pid)
		}
	}
	sort.Ints(pids)
	for _, pid := range pids {
		k.SetScheduler(k.tasks[pid], toID)
	}
	return len(pids)
}

func (k *Kernel) classPrio(c Class) int {
	for i, s := range k.classes {
		if s.class == c {
			return i
		}
	}
	return len(k.classes)
}

// CurrentOn returns the task running on cpu, or nil when idle.
func (k *Kernel) CurrentOn(cpu int) *Task { return k.cpus[cpu].curr }

// CPUBusy returns the accumulated busy time of cpu (task execution plus
// kernel overheads charged to it).
func (k *Kernel) CPUBusy(cpu int) time.Duration { return k.cpus[cpu].busy }

// CPUSwitches returns the context-switch count of cpu.
func (k *Kernel) CPUSwitches(cpu int) uint64 { return k.cpus[cpu].switches }

// TaskByPID looks up a live task.
func (k *Kernel) TaskByPID(pid int) *Task { return k.tasks[pid] }

// NumTasks returns the number of live tasks.
func (k *Kernel) NumTasks() int { return len(k.tasks) }

// SpawnOption customises Spawn.
type SpawnOption func(*Task)

// WithAffinity restricts the task to the given CPUs.
func WithAffinity(m CPUMask) SpawnOption { return func(t *Task) { t.allowed = m } }

// WithNice sets the task's nice value.
func WithNice(n int) SpawnOption { return func(t *Task) { t.nice = n } }

// WithWakeObserver installs a wakeup-latency callback.
func WithWakeObserver(f func(time.Duration)) SpawnOption {
	return func(t *Task) { t.OnWake = f }
}

// WithExitObserver installs an exit callback.
func WithExitObserver(f func()) SpawnOption { return func(t *Task) { t.OnExit = f } }

// WithUserData attaches workload state to the task.
func WithUserData(v any) SpawnOption { return func(t *Task) { t.UserData = v } }

// Spawn creates a task in the class registered under classID and makes it
// runnable. It panics on an unknown class; that is always a harness bug.
func (k *Kernel) Spawn(name string, classID int, b Behavior, opts ...SpawnOption) *Task {
	class, ok := k.byID[classID]
	if !ok {
		panic(fmt.Sprintf("kernel: Spawn into unregistered class %d", classID))
	}
	t := &Task{
		pid:      k.nextPID,
		name:     name,
		class:    class,
		behavior: b,
		state:    StateNew,
		allowed:  AllCPUs(k.machine.NumCPUs),
	}
	k.nextPID++
	for _, o := range opts {
		o(t)
	}
	k.tasks[t.pid] = t
	class.TaskNew(t)
	target := class.SelectRQ(t, t.cpu, false)
	target = k.clampToAffinity(t, target)
	t.cpu = target
	t.state = StateRunnable
	class.Enqueue(target, t, false)
	k.afterEnqueue(t, target, false, 0)
	return t
}

func (k *Kernel) clampToAffinity(t *Task, cpu int) int {
	if cpu >= 0 && cpu < k.machine.NumCPUs && t.allowed.has(cpu) {
		return cpu
	}
	for i := 0; i < k.machine.NumCPUs; i++ {
		if t.allowed.has(i) {
			return i
		}
	}
	panic(fmt.Sprintf("kernel: task %s has empty affinity mask", t))
}

// Wake transitions a blocked task to runnable from interrupt/external
// context (timers, load generators). Waking an already-runnable task is a
// no-op, like try_to_wake_up.
func (k *Kernel) Wake(t *Task) {
	if t.state != StateBlocked {
		return
	}
	k.beginBatch()
	k.doWake(t, -1, 0)
	k.flushBatch()
}

// doWake performs the wake. wakerCPU is the CPU doing the waking, or -1 for
// external context; offset is kernel work the waker has already queued ahead
// of this wake (bulk futex wakes serialise on the waker). It returns the
// cost charged to the waker.
func (k *Kernel) doWake(t *Task, wakerCPU int, offset time.Duration) time.Duration {
	now := k.eng.Now()
	t.state = StateRunnable
	t.lastWake = now
	t.wakePending = true
	k.Wakeups++

	oh := k.costs.WakeLocal + t.class.OverheadPerCall()
	prev := t.cpu
	target := t.class.SelectRQ(t, prev, true)
	target = k.clampToAffinity(t, target)
	if wakerCPU >= 0 && target != wakerCPU {
		oh += k.costs.WakeRemoteExtra
		if !k.machine.SameNode(target, wakerCPU) {
			oh += k.costs.CrossNodeExtra
		}
	}
	if target != prev {
		t.class.Migrate(t, prev, target)
		k.noteCrossing(prev, target, t)
	}
	t.cpu = target
	oh += t.class.OverheadPerCall()
	t.class.Enqueue(target, t, true)
	k.traceEvent(trace.KindWake, target, t.pid, k.classID(t.class), int64(wakerCPU))
	k.afterEnqueue(t, target, wakerCPU >= 0 && target != wakerCPU, offset)
	return oh
}

// afterEnqueue handles preemption and idle kicks once t is queued on target.
func (k *Kernel) afterEnqueue(t *Task, target int, remote bool, offset time.Duration) {
	t.queuedAt = k.eng.Now()
	if k.met != nil {
		cm := k.met.Class(k.classID(t.class)).CPU(target)
		cm.QueueDepth.RecordValue(int64(t.class.NRunnable(target)))
	}
	tc := k.cpus[target]
	delay := offset
	if remote {
		delay += k.costs.IPIDeliver
	}
	switch {
	case tc.curr == nil:
		k.kick(target, delay)
	case k.classPrio(t.class) < k.classPrio(tc.curr.class):
		// Higher-priority class preempts unconditionally.
		k.Resched(target)
	case t.class == tc.curr.class:
		t.class.CheckPreempt(target, t)
	}
}

// Resched marks cpu for rescheduling and kicks it.
func (k *Kernel) Resched(cpu int) {
	c := k.cpus[cpu]
	if c.curr != nil {
		c.needResched = true
	}
	k.kick(cpu, 0)
}

// ArmResched arms (or re-arms) cpu's high-resolution reschedule timer d from
// now, cancelling any previously armed timer. The arming cost is charged to
// the CPU.
//
// When the arm comes from inside cpu's own schedule pass (a class arming its
// preemption quantum during PickNext), d is measured from when the picked
// task starts executing, not from mid-pass: the pass's accumulated overhead
// is added before the timer is armed. Without that offset a quantum shorter
// than the pass overhead (e.g. Shinjuku's 10 µs slice under record-mode
// per-call costs) fires before the task has run at all, and every pick
// preempts into the next — a round-robin livelock with zero progress.
func (k *Kernel) ArmResched(cpu int, d time.Duration) {
	c := k.cpus[cpu]
	c.pendingCost += k.costs.TimerArm
	if k.finj != nil {
		if d = k.finj.SkewTimer(cpu, d); d < 0 {
			d = 0
		}
	}
	if c.inPick {
		// Deferred: schedule() arms it once the pass overhead is known.
		// Re-arms supersede, matching RescheduleAfter semantics.
		c.pickTimer = d
		return
	}
	// Reschedule moves an already-armed timer in place (the old arm is
	// superseded, matching the previous cancel + re-create semantics).
	k.eng.RescheduleAfter(c.reschedTimer, d)
}

// beginBatch opens the cross-CPU signal batch window: until flushBatch,
// kicks are coalesced per target instead of posted immediately. With
// batching disabled the window still opens for accounting — kicks post
// immediately but are counted as sent IPIs, so batched and unbatched runs
// report comparable IPIsSent numbers. Windows nest: the kernel opens one
// per wake burst (segmentDone's wake loop, external Wake), and the sharded
// executor opens an outer one around a whole cross-shard delivery batch;
// only the outermost close flushes.
func (k *Kernel) beginBatch() {
	k.ipiDepth++
	k.ipiWindow = true
	if k.ipiEnabled {
		k.ipiOpen = true
	}
}

// flushBatch closes the batch window and drains the flush queue: one kick
// per distinct target, at the minimum delay requested for it, in first-
// request order (which keeps runs deterministic).
func (k *Kernel) flushBatch() {
	if k.ipiDepth > 0 {
		k.ipiDepth--
	}
	if k.ipiDepth > 0 {
		return
	}
	k.ipiWindow = false
	if !k.ipiOpen {
		return
	}
	k.ipiOpen = false
	for _, cpu := range k.ipiOrder {
		k.ipiPend[cpu] = false
		k.IPIsSent++
		k.kick(cpu, k.ipiDelay[cpu])
	}
	k.ipiOrder = k.ipiOrder[:0]
}

// batchKick records a kick in the flush queue, coalescing into an already-
// pending kick for the same target (keeping the earliest delay) — the
// simulation analogue of not re-sending a resched IPI to a CPU whose
// TIF_NEED_RESCHED is already set.
func (k *Kernel) batchKick(cpu int, delay time.Duration) {
	if k.ipiPend[cpu] {
		k.IPIsCoalesced++
		if delay < k.ipiDelay[cpu] {
			k.ipiDelay[cpu] = delay
		}
		return
	}
	k.ipiPend[cpu] = true
	k.ipiDelay[cpu] = delay
	k.ipiOrder = append(k.ipiOrder, cpu)
}

// kick schedules a __schedule pass on cpu after delay. Inside a batch
// window the kick is deferred to the flush queue (see batchKick); this is
// transparent to callers because the whole window runs at one virtual
// instant. Kicking an idle CPU pays its C-state exit latency: at least the
// shallow (C1) exit, plus the jittered deep exit when cpuidle has had time
// to descend — this is the cold-core wakeup cost that dominates Tables 4
// and 6. The exit gates the CPU itself: kicks arriving while an exit is
// already in flight wait for it rather than bypassing it. Zero-delay kicks
// coalesce.
func (k *Kernel) kick(cpu int, delay time.Duration) {
	if k.ipiOpen {
		k.batchKick(cpu, delay)
		return
	}
	if k.ipiWindow {
		// Unbatched wake-burst kick: counted here so the batching ablation
		// compares like with like (flushBatch counts the batched ones).
		k.IPIsSent++
	}
	if k.finj != nil {
		// Fault hook: every delivered kick (batched flushes arrive here with
		// the window closed, so each is intercepted exactly once). Drops are
		// modelled as recovery-bounded delays; duplicates bypass the idle-
		// exit gate below — a spurious schedule pass is a no-op by design.
		fate := k.finj.InterceptKick(cpu, delay)
		delay += fate.Delay
		if fate.Duplicate {
			k.eng.Post(delay+fate.DupDelay, k.cpus[cpu].kickFn)
		}
	}
	c := k.cpus[cpu]
	now := k.eng.Now()
	if c.curr == nil {
		if now.Before(c.wakingUntil) {
			// Exit already in flight; this kick lands after it.
			if readyIn := c.wakingUntil.Sub(now); readyIn > delay {
				delay = readyIn
			}
		} else {
			exit := k.costs.IdleExitShallow
			if idle := now.Sub(c.idleSince); c.wasIdle && idle >= k.costs.DeepIdleAfter {
				exit += time.Duration(float64(k.costs.DeepIdleExit) * (0.65 + 0.75*k.rand.Float64()))
			}
			delay += exit
			c.wakingUntil = now.Add(delay)
		}
	}
	if delay == 0 {
		if c.kickPending {
			return
		}
		c.kickPending = true
		k.eng.Post(0, c.kick0Fn)
		return
	}
	k.eng.Post(delay, c.kickFn)
}

// noteCrossing counts (and traces) a task placement that crossed a
// scheduling domain: wake re-targets and balancer migrations alike. The
// distance travels in the trace event's Arg so the Chrome export can tell a
// cache-cold pull from a socket crossing.
func (k *Kernel) noteCrossing(src, dst int, t *Task) {
	d := k.topo.Distance(src, dst)
	if d == core.DistSameLLC {
		return
	}
	k.XLLCMoves++
	if d == core.DistCrossNode {
		k.XNodeMoves++
	}
	if k.tracer != nil {
		k.traceEvent(trace.KindXDomain, dst, t.pid, k.classID(t.class), int64(d))
	}
}

// account charges cpu's current task for the time it has run since the last
// accounting point.
func (k *Kernel) account(c *CPU) {
	t := c.curr
	if t == nil {
		return
	}
	now := k.eng.Now()
	if now <= t.execStart {
		return
	}
	ran := now.Sub(t.execStart)
	t.sumExec += ran
	c.busy += ran
	if ran >= t.segLeft {
		t.segLeft = 0
	} else {
		t.segLeft -= ran
	}
	t.execStart = now
}

// schedule is __schedule: put the previous task, balance, pick, switch.
func (k *Kernel) schedule(cpu int) {
	c := k.cpus[cpu]
	prev := c.curr
	if prev != nil && prev.state == StateRunning && !c.needResched {
		return
	}
	c.needResched = false
	c.inPick, c.pickTimer = true, -1

	oh := k.costs.SchedBase + c.pendingCost
	c.pendingCost = 0

	if prev != nil {
		k.account(c)
		prev.runEvent.Cancel()
		if prev.state == StateRunning {
			prev.state = StateRunnable
			oh += prev.class.OverheadPerCall()
			prev.class.PutPrev(cpu, prev, true)
			prev.queuedAt = k.eng.Now()
		}
		c.curr = nil
	}

	var next *Task
	nextPolicy := -1
	for _, slot := range k.classes {
		oh += 2 * slot.class.OverheadPerCall() // balance + pick crossings
		slot.class.Balance(cpu)
		if k.tracer != nil {
			k.traceEvent(trace.KindBalance, cpu, 0, slot.id, 0)
		}
		if next = slot.class.PickNext(cpu); next != nil {
			nextPolicy = slot.id
			break
		}
	}
	// Costs incurred during balance/pick (timer arms, pulled-task
	// migration) delay this schedule pass.
	oh += c.pendingCost
	c.pendingCost = 0
	c.inPick = false
	if next == nil {
		c.busy += oh
		if c.pickTimer >= 0 {
			k.eng.RescheduleAfter(c.reschedTimer, oh+c.pickTimer)
		}
		if !c.wasIdle {
			c.wasIdle = true
			c.idleSince = k.eng.Now()
		}
		k.traceEvent(trace.KindIdle, cpu, 0, -1, 0)
		return
	}
	c.wasIdle = false
	if next != prev {
		oh += k.costs.ContextSwitch
		c.switches++
		k.CtxSwitches++
	}
	c.busy += oh
	if c.pickTimer >= 0 {
		// The quantum starts when the task does (execStart = now + oh).
		k.eng.RescheduleAfter(c.reschedTimer, oh+c.pickTimer)
	}
	c.curr = next
	next.state = StateRunning
	next.cpu = cpu
	if k.tracer != nil {
		k.traceEvent(trace.KindSwitch, cpu, next.pid, nextPolicy, 0)
	}
	if k.met != nil {
		cm := k.met.Class(nextPolicy).CPU(cpu)
		cm.Picks++
		cm.PickWait.Record(k.eng.Now().Sub(next.queuedAt))
	}
	k.startSegment(c, next, oh)
	k.ensureTick(c)
}

// startSegment arms the completion event for the task's current compute
// segment, fetching the next action if none is pending. delay is kernel work
// (already charged) that precedes user execution.
func (k *Kernel) startSegment(c *CPU, t *Task, delay time.Duration) {
	if !t.hasPending {
		t.pending = t.behavior.Next(k, t)
		t.hasPending = true
		t.segLeft = t.pending.Run
	}
	now := k.eng.Now()
	t.execStart = now.Add(delay)
	if t.wakePending {
		t.wakePending = false
		lat := t.execStart.Sub(t.lastWake)
		if k.met != nil {
			k.met.Class(k.classID(t.class)).CPU(c.id).WakeToRun.Record(lat)
		}
		if t.OnWake != nil {
			t.OnWake(lat)
		}
	}
	if t.runEvent == nil {
		t.runEvent = k.eng.NewEvent(func() { k.segmentDone(k.cpus[t.cpu], t) })
	}
	k.eng.Reschedule(t.runEvent, t.execStart.Add(t.segLeft))
}

// segmentDone completes the task's current segment: perform its wakes, then
// apply its operation.
func (k *Kernel) segmentDone(c *CPU, t *Task) {
	if c.curr != t || t.state != StateRunning {
		return // stale completion; the task was preempted or moved
	}
	k.account(c)
	// Copy the action out of the inline slot: a startSegment below refills
	// t.pending for the next segment.
	act := t.pending

	// The wake burst runs inside one batch window: module messages flow
	// per-wake as always, but remote kicks coalesce per target and drain
	// in one flush at the end of the burst (the event boundary).
	extra := time.Duration(0)
	k.beginBatch()
	for _, w := range act.Wake {
		if w.state == StateBlocked {
			extra += k.doWake(w, c.id, extra)
		}
	}
	k.flushBatch()
	c.busy += extra

	switch act.Op {
	case OpContinue:
		t.hasPending = false
		if c.needResched {
			c.pendingCost += extra
			k.schedule(c.id)
		} else {
			k.startSegment(c, t, extra)
		}
	case OpYield:
		t.hasPending = false
		t.state = StateRunnable
		c.curr = nil
		c.pendingCost += extra + t.class.OverheadPerCall()
		t.class.Yield(c.id, t)
		t.queuedAt = k.eng.Now()
		k.schedule(c.id)
	case OpBlock, OpSleep:
		if act.Op == OpBlock && act.Recheck != nil && act.Recheck() {
			// Futex-style recheck: a wake raced with the block
			// decision; keep running.
			t.hasPending = false
			if c.needResched {
				c.pendingCost += extra
				k.schedule(c.id)
			} else {
				k.startSegment(c, t, extra)
			}
			return
		}
		t.hasPending = false
		t.state = StateBlocked
		c.curr = nil
		c.pendingCost += extra + t.class.OverheadPerCall()
		t.class.Dequeue(c.id, t, true)
		if act.Op == OpSleep {
			if t.wakeFn == nil {
				t.wakeFn = func() { k.Wake(t) }
			}
			k.eng.Post(act.SleepFor, t.wakeFn)
		}
		k.schedule(c.id)
	case OpExit:
		t.hasPending = false
		t.state = StateDead
		c.curr = nil
		c.pendingCost += extra + 2*t.class.OverheadPerCall()
		t.class.Dequeue(c.id, t, false)
		t.class.TaskDead(t)
		delete(k.tasks, t.pid)
		k.traceEvent(trace.KindExit, c.id, t.pid, k.classID(t.class), 0)
		if t.OnExit != nil {
			t.OnExit()
		}
		k.schedule(c.id)
	default:
		panic(fmt.Sprintf("kernel: invalid op %d from %s", act.Op, t))
	}
}

// ensureTick starts the per-CPU scheduler tick chain if it is not running.
// The chain self-stops when the CPU goes idle.
func (k *Kernel) ensureTick(c *CPU) {
	if c.tickRunning {
		return
	}
	c.tickRunning = true
	k.eng.RescheduleAfter(c.tickEvent, k.costs.TickPeriod)
}

// tickFire is one scheduler tick on c: charge the tick cost, let the current
// task's class account and preempt, then re-arm the persistent tick event.
func (k *Kernel) tickFire(c *CPU) {
	if c.curr == nil {
		c.tickRunning = false
		return
	}
	c.busy += k.costs.Tick
	k.account(c)
	t := c.curr
	c.busy += t.class.OverheadPerCall()
	t.class.Tick(c.id, t)
	k.traceEvent(trace.KindTick, c.id, t.pid, k.classID(t.class), 0)
	k.nohzKick(c)
	k.eng.RescheduleAfter(c.tickEvent, k.costs.TickPeriod)
}

// nohzKick is the NOHZ idle-balance analogue: a busy CPU with queued work
// kicks the nearest idle CPU — LLC sibling first, then same socket, then
// anywhere — so that CPU runs a schedule pass and its classes get a Balance
// opportunity to pull the backlog with the least cache damage.
func (k *Kernel) nohzKick(c *CPU) {
	queued := 0
	for _, s := range k.classes {
		queued += s.class.NRunnable(c.id)
	}
	if queued == 0 {
		return
	}
	n := k.machine.NumCPUs
	best, bestDist := -1, 0
	for i := 1; i < n; i++ {
		cpu := (c.id + i) % n
		if k.cpus[cpu].curr != nil {
			continue
		}
		d := k.topo.Distance(cpu, c.id)
		if d == core.DistSameLLC {
			best = cpu
			break
		}
		if best == -1 || d < bestDist {
			best, bestDist = cpu, d
		}
	}
	if best >= 0 {
		k.kick(best, k.costs.IPIDeliver)
	}
}

// MoveTask migrates a runnable (not running) task to dst, honouring
// affinity. It reports whether the move happened. Balancers call this; the
// migration cost is charged to dst's next schedule pass.
func (k *Kernel) MoveTask(t *Task, dst int) bool {
	if t.state != StateRunnable || !t.allowed.has(dst) || dst == t.cpu {
		return false
	}
	if k.cpus[t.cpu].curr == t {
		return false
	}
	src := t.cpu
	t.class.Dequeue(src, t, false)
	t.class.Migrate(t, src, dst)
	k.noteCrossing(src, dst, t)
	t.cpu = dst
	t.class.Enqueue(dst, t, false)
	c := k.cpus[dst]
	c.pendingCost += k.costs.MigrateTask
	if !k.machine.SameNode(src, dst) {
		c.pendingCost += k.costs.CrossNodeExtra
	}
	if c.curr == nil {
		k.kick(dst, 0)
	}
	return true
}

// SetNice changes a task's nice value and notifies its class.
func (k *Kernel) SetNice(t *Task, nice int) {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	if t.state == StateRunning {
		k.account(k.cpus[t.cpu])
	}
	t.nice = nice
	t.class.PrioChanged(t)
}

// SetAffinity changes a task's allowed CPUs. A running or queued task on a
// now-forbidden CPU is moved to an allowed one.
func (k *Kernel) SetAffinity(t *Task, m CPUMask) {
	if m.Count() == 0 {
		panic("kernel: SetAffinity with empty mask")
	}
	t.allowed = m
	t.class.AffinityChanged(t)
	if t.state == StateDead || m.Has(t.cpu) {
		return
	}
	dst := k.clampToAffinity(t, -1)
	switch t.state {
	case StateRunnable:
		if k.cpus[t.cpu].curr != t {
			k.MoveTask(t, dst)
		}
	case StateRunning:
		// Force the task off its CPU; it re-selects a queue on requeue.
		c := k.cpus[t.cpu]
		k.account(c)
		t.runEvent.Cancel()
		t.state = StateRunnable
		t.class.PutPrev(t.cpu, t, true)
		t.class.Dequeue(t.cpu, t, false)
		t.class.Migrate(t, t.cpu, dst)
		src := t.cpu
		t.cpu = dst
		t.class.Enqueue(dst, t, false)
		t.queuedAt = k.eng.Now()
		c.curr = nil
		k.schedule(src)
		k.kick(dst, 0)
	}
}

// SetScheduler moves a task to the class registered under classID
// (sched_setscheduler). The task keeps running; its queueing moves to the
// new class.
func (k *Kernel) SetScheduler(t *Task, classID int) {
	newClass, ok := k.byID[classID]
	if !ok {
		panic(fmt.Sprintf("kernel: SetScheduler to unregistered class %d", classID))
	}
	if newClass == t.class {
		return
	}
	old := t.class
	switch t.state {
	case StateDead:
		return
	case StateBlocked:
		old.Detach(t)
		t.class = newClass
		newClass.TaskNew(t)
	case StateRunnable:
		running := k.cpus[t.cpu].curr == t
		if running {
			// Impossible by state invariant, but guard anyway.
			panic("kernel: runnable task is current")
		}
		old.Dequeue(t.cpu, t, false)
		old.Detach(t)
		t.class = newClass
		newClass.TaskNew(t)
		target := k.clampToAffinity(t, newClass.SelectRQ(t, t.cpu, false))
		t.cpu = target
		newClass.Enqueue(target, t, false)
		k.afterEnqueue(t, target, false, 0)
	case StateRunning:
		c := k.cpus[t.cpu]
		k.account(c)
		t.runEvent.Cancel()
		t.state = StateRunnable
		old.PutPrev(t.cpu, t, true)
		old.Dequeue(t.cpu, t, false)
		old.Detach(t)
		t.class = newClass
		newClass.TaskNew(t)
		target := k.clampToAffinity(t, newClass.SelectRQ(t, t.cpu, false))
		src := t.cpu
		t.cpu = target
		newClass.Enqueue(target, t, false)
		c.curr = nil
		k.schedule(src)
		k.afterEnqueue(t, target, false, 0)
	}
}

// RunFor advances the simulation by d.
func (k *Kernel) RunFor(d time.Duration) {
	k.eng.RunUntil(k.eng.Now().Add(d))
}

// RunUntilIdle runs the simulation until the event queue drains (all tasks
// exited or blocked with no timers pending).
func (k *Kernel) RunUntilIdle() { k.eng.Run() }
