package enokic

import (
	"fmt"
	"time"

	"enoki/internal/core"
)

// UpgradeReport describes one live upgrade (§3.2, evaluated in §5.7).
type UpgradeReport struct {
	// Blackout is the simulated service interruption: the window during
	// which the module RW-lock is held in write mode and schedule
	// operations fall through to lower classes or idle.
	Blackout time.Duration
	// WallSwap is host wall-clock time spent in prepare + init + pointer
	// swap, the actual Go work of the upgrade.
	WallSwap time.Duration
	// DeferredDelivered is how many notifications queued up behind the
	// write lock and were delivered to the module that ended up running —
	// the new one on success, the restored old one after a rollback.
	DeferredDelivered int
	// RolledBack reports that the new module faulted during the swap and
	// the framework restored the old module from its pre-transfer snapshot
	// (Config.UpgradeRollback) — the class kept running the old version
	// and no task was lost.
	RolledBack bool
	// Fault is the contained module failure that aborted the swap: set on
	// rollback and on fatal aborts, nil on a clean upgrade.
	Fault *core.ModuleFault
	// Err is the terminal outcome: nil while the module is still serving
	// (clean upgrade or rollback), ErrModuleKilled when the upgrade died
	// with the module — killed mid-blackout, an unrecoverable fault in the
	// old module's prepare, a swap fault with rollback disabled, or a
	// queued upgrade orphaned by a kill.
	Err error
}

// pendingUpgrade is an upgrade requested while another was in flight; it
// starts once the blackout ahead of it completes.
type pendingUpgrade struct {
	version string
	factory func(core.Env) core.Scheduler
	done    func(UpgradeReport)
}

// Upgrade replaces the running module with a new version built by factory,
// transferring state through reregister_prepare/reregister_init. It models
// the paper's quiesce protocol: a per-module read-write lock is taken in
// write mode, in-flight calls drain (modelled as UpgradeBase +
// UpgradePerCPU×cores of blackout), state transfers, the dispatch pointer
// swaps, and deferred calls proceed against the new module.
//
// With Config.UpgradeRollback (the default) the swap is transactional: the
// pre-transfer snapshot doubles as an undo log, and a new module that
// panics while being built, initialised, or fed the deferred backlog is
// discarded — the old module is restored from the snapshot, the backlog is
// redelivered to it, and done reports RolledBack with the contained fault.
// Only a fault in the old module's own prepare (nothing healthy left to
// restore) or a mid-swap kill remains fatal.
//
// An Upgrade requested while another is in flight queues behind it — the
// write lock serialises upgraders the same way it serialises them against
// schedule operations — and runs (with its own blackout and done callback)
// once the earlier swap completes. If the module is killed while upgrades
// are queued, each queued done fires once with Err = ErrModuleKilled.
//
// Upgrade must be called from simulation context (inside an event or before
// Run); done fires when the upgrade completes or dies. It returns
// ErrModuleKilled when the fault layer has already killed the module (done
// never fires); a queued or started upgrade returns nil.
func (a *Adapter) Upgrade(factory func(core.Env) core.Scheduler, done func(UpgradeReport)) error {
	return a.UpgradeTo(a.version, factory, done)
}

// UpgradeTo is Upgrade with version lineage: when the swap commits, the
// adapter's module version becomes version and the replaced (version,
// factory) pair is remembered as the rollback target. A transactional
// rollback or a fatal abort leaves the lineage untouched — the old module
// kept serving, so the old version is still the truth. This is the
// cluster-drivable form of the upgrade action: a fleet rollout upgrades
// every shard with UpgradeTo and, on a halted wave, restores the previous
// generation with Rollback.
func (a *Adapter) UpgradeTo(version string, factory func(core.Env) core.Scheduler, done func(UpgradeReport)) error {
	if a.killed {
		return ErrModuleKilled
	}
	if a.upgrading {
		a.pendingUpgrades = append(a.pendingUpgrades, pendingUpgrade{version, factory, done})
		return nil
	}
	a.startUpgrade(version, factory, done)
	return nil
}

// Version returns the name of the module generation currently serving:
// InitialVersion after Load, the committed UpgradeTo name after an upgrade
// (unchanged by a rolled-back or aborted swap).
func (a *Adapter) Version() string { return a.version }

// Rollback re-upgrades to the module generation the last committed
// UpgradeTo replaced, through the same transactional quiesce/transfer path
// as any upgrade — a rollback is just an upgrade whose target is the
// previous version's factory. It returns ErrNoPreviousVersion when no
// upgrade has committed and ErrModuleKilled when the module is dead.
func (a *Adapter) Rollback(done func(UpgradeReport)) error {
	if a.killed {
		return ErrModuleKilled
	}
	if a.prevFactory == nil {
		return ErrNoPreviousVersion
	}
	return a.UpgradeTo(a.prevVersion, a.prevFactory, done)
}

func (a *Adapter) startUpgrade(version string, factory func(core.Env) core.Scheduler, done func(UpgradeReport)) {
	a.upgrading = true
	a.stats.Upgrades++
	blackout := a.cfg.UpgradeBase + time.Duration(a.k.NumCPUs())*a.cfg.UpgradePerCPU
	a.k.Engine().After(blackout, func() { a.finishUpgrade(version, factory, done, blackout) })
}

// transferIn converts a prepare snapshot into the init argument.
func transferIn(out *core.TransferOut) *core.TransferIn {
	if out == nil {
		return nil
	}
	return &core.TransferIn{State: out.State}
}

// finishUpgrade runs at the end of the blackout: snapshot, build, commit.
// Every module crossing is panic-contained; which phase faulted decides
// whether the transaction can roll back.
func (a *Adapter) finishUpgrade(version string, factory func(core.Env) core.Scheduler, done func(UpgradeReport), blackout time.Duration) {
	if a.killed {
		// The module died during the blackout: the swap is moot. killModule
		// already failed any queued upgraders; the in-flight one learns the
		// same way instead of silently never completing.
		a.upgrading = false
		if done != nil {
			done(UpgradeReport{Blackout: blackout, Err: ErrModuleKilled})
		}
		return
	}
	wallStart := time.Now()
	old := a.sched

	// Phase 1 — snapshot. The old module exports its state; the snapshot is
	// both the transfer payload and the rollback undo log. A panic here
	// means the OLD version is already broken — there is no healthy module
	// to restore — so the fault layer takes over.
	var out *core.TransferOut
	if fault := core.SafeCall(func() { out = old.ReregisterPrepare() }); fault != nil {
		a.failUpgrade(done, UpgradeReport{
			Blackout: blackout, WallSwap: time.Since(wallStart), Fault: fault,
		}, fault)
		return
	}

	// Phase 2 — build and initialise the NEW module. Faults here (factory
	// or init panic, policy lie) are the new version's bugs: with rollback
	// enabled the old module is restored from the snapshot and keeps
	// serving, so a bad upgrade is an aborted transaction, not an outage.
	var next core.Scheduler
	fault := core.SafeCall(func() {
		next = factory(a.env)
		if got := next.GetPolicy(); got != a.policy {
			panic(fmt.Sprintf("enokic: upgraded module changed policy id (%d, loaded under %d)", got, a.policy))
		}
		next.ReregisterInit(transferIn(out))
	})
	if fault != nil {
		a.abortSwap(old, out, nil, done, blackout, fault, wallStart)
		return
	}

	// Phase 3 — commit: swap the dispatch pointer and flush the deferred
	// backlog into the new module. A fault mid-flush also rolls back; the
	// snapshot predates every deferred message, so the restored old module
	// must see the WHOLE backlog again — nothing is lost, nothing applied
	// to a module that survives.
	a.sched = next
	a.upgrading = false
	queued := a.deferred
	a.deferred = nil
	flushed, flushFault := a.flushDeferred(queued)
	if a.killed {
		// A queue lie inside the flush tripped the kill path: the module is
		// gone regardless of which version lied, nothing to roll back.
		a.recycleDeferred(queued)
		if done != nil {
			done(UpgradeReport{
				Blackout: blackout, WallSwap: time.Since(wallStart),
				DeferredDelivered: flushed, Fault: flushFault, Err: ErrModuleKilled,
			})
		}
		return
	}
	if flushFault != nil {
		a.abortSwap(old, out, queued, done, blackout, flushFault, wallStart)
		return
	}
	// The transaction is committed: the new module generation is serving.
	// Record the lineage — the replaced pair is what Rollback restores.
	a.prevVersion, a.prevFactory = a.version, a.factory
	a.version, a.factory = version, factory
	a.recycleDeferred(queued)
	a.settleUpgrade(done, UpgradeReport{
		Blackout: blackout, WallSwap: time.Since(wallStart),
		DeferredDelivered: flushed,
	})
}

// abortSwap rolls a faulted swap back to the old module — or, with rollback
// disabled or impossible, escalates to the kill path. redeliver is the
// deferred backlog to replay against the restored module (nil when the fault
// predates the commit flush, in which case a.deferred still holds it).
func (a *Adapter) abortSwap(old core.Scheduler, out *core.TransferOut, redeliver []*core.Message, done func(UpgradeReport), blackout time.Duration, fault *core.ModuleFault, wallStart time.Time) {
	report := UpgradeReport{Blackout: blackout, Fault: fault}
	if !a.cfg.UpgradeRollback {
		a.recycleDeferred(redeliver)
		report.WallSwap = time.Since(wallStart)
		a.failUpgrade(done, report, fault)
		return
	}
	// Restore the old module from the snapshot. Its own init panicking on
	// state it exported moments ago means the old version is broken too —
	// then the kill is unavoidable.
	if rf := core.SafeCall(func() { old.ReregisterInit(transferIn(out)) }); rf != nil {
		a.recycleDeferred(redeliver)
		report.WallSwap = time.Since(wallStart)
		a.failUpgrade(done, report, rf)
		return
	}
	a.sched = old
	a.upgrading = false
	if redeliver == nil {
		redeliver = a.deferred
		a.deferred = nil
	}
	flushed, rf := a.flushDeferred(redeliver)
	a.recycleDeferred(redeliver)
	if rf != nil {
		// The restored old module faulted on messages it was always going
		// to receive: not an upgrade problem, a dead module.
		report.WallSwap = time.Since(wallStart)
		report.DeferredDelivered = flushed
		a.failUpgrade(done, report, rf)
		return
	}
	if a.killed { // queue lie during redelivery
		report.WallSwap = time.Since(wallStart)
		report.DeferredDelivered = flushed
		report.Err = ErrModuleKilled
		if done != nil {
			done(report)
		}
		return
	}
	report.WallSwap = time.Since(wallStart)
	report.DeferredDelivered = flushed
	report.RolledBack = true
	a.settleUpgrade(done, report)
}

// failUpgrade is the fatal exit: trip the fault layer (idempotent) and tell
// the requester the upgrade died with the module.
func (a *Adapter) failUpgrade(done func(UpgradeReport), report UpgradeReport, fault *core.ModuleFault) {
	a.upgrading = false
	a.trip(*fault, 0)
	report.Err = ErrModuleKilled
	if done != nil {
		done(report)
	}
}

// flushDeferred delivers the queued backlog to the current module, stopping
// at the first contained fault or mid-flush kill. Messages are NOT recycled
// here: the caller owns them until the transaction resolves, because a
// rollback redelivers the very same backlog (live Schedulable tokens still
// attached) to the restored module.
//
// Messages whose proof token was superseded while they waited out the
// blackout are dropped, not delivered: a task can be preempted, migrated,
// and woken again all inside one blackout, and each crossing issues a fresh
// generation. Only the last message per task carries the live proof —
// delivering the earlier ones would plant queue entries the module can never
// redeem (every pick of one costs a pick error and modules legitimately
// re-push errored tokens, so a single zombie entry loops until the budget
// kills an otherwise healthy module).
func (a *Adapter) flushDeferred(queued []*core.Message) (int, *core.ModuleFault) {
	delivered := 0
	for _, m := range queued {
		if a.killed {
			return delivered, nil
		}
		if a.superseded(m) {
			continue
		}
		if f := a.deliver(m); f != nil {
			return delivered, f
		}
		delivered++
	}
	return delivered, nil
}

// superseded reports whether a deferred message's attached token was
// invalidated (task gone, or generation reissued) while it sat behind the
// upgrade blackout. Token-less notifications are never superseded: their
// ordering carries the state.
func (a *Adapter) superseded(m *core.Message) bool {
	tok := m.AttachedSched()
	if tok == nil {
		return false
	}
	ti := a.info[tok.PID()]
	return ti == nil || tok.Gen() != ti.gen
}

// recycleDeferred returns a resolved backlog to the message pool.
func (a *Adapter) recycleDeferred(queued []*core.Message) {
	for _, m := range queued {
		a.putMsg(m)
	}
}

// settleUpgrade completes a transaction that left a live module serving
// (clean swap or rollback): wake every CPU out of the blackout, report, and
// start the next queued upgrade.
func (a *Adapter) settleUpgrade(done func(UpgradeReport), report UpgradeReport) {
	for i := range a.kickPending {
		a.kickPending[i] = false
	}
	for i := 0; i < a.k.NumCPUs(); i++ {
		a.k.Resched(i)
	}
	if done != nil {
		done(report)
	}
	if len(a.pendingUpgrades) > 0 && !a.killed {
		nextUp := a.pendingUpgrades[0]
		a.pendingUpgrades = a.pendingUpgrades[1:]
		a.startUpgrade(nextUp.version, nextUp.factory, nextUp.done)
	}
}

// kickAfterUpgrade notes that cpu asked for work during the blackout; the
// post-upgrade kick of all CPUs covers it, this just keeps a flag per CPU so
// the hot pick path stays cheap.
func (a *Adapter) kickAfterUpgrade(cpu int) {
	a.kickPending[cpu] = true
}
