package schedtest

import (
	"fmt"
	"time"

	"enoki/internal/core"
)

// Injector is the generic fault wrapper the chaos engine drives: where the
// single-fault wrappers above each sabotage one hard-coded site, an Injector
// composes panic, stall, and forge faults from a schedule — any trait
// function, any call count, any virtual-time window. Like the single-fault
// wrappers it is strictly deterministic: every trigger is a call count or a
// virtual timestamp, never a host clock or random draw, so a failing fault
// schedule replays bit-for-bit from its seed.
//
// The zero value (plus an inner Scheduler) injects nothing and forwards
// every call, which is what lets a chaos campaign wrap every module
// unconditionally and arm only the faults the schedule names.
type Injector struct {
	core.Scheduler

	// Clock supplies virtual time for window-triggered faults (the stall
	// plane). The chaos rig wires it to the engine's clock; leaving it nil
	// disables time-windowed faults.
	Clock func() int64

	// PanicSite arms a panic inside the named trait call (a core.Msg* kind)
	// once PanicAt earlier calls of that kind have completed — PanicAt 0
	// panics on the first call. MsgInvalid (the zero value) disarms.
	PanicSite core.Kind
	PanicAt   int
	// PanicInInit makes ReregisterInit panic: the transfer-time fault of a
	// broken new module version, which the transactional upgrade path must
	// roll back from rather than kill through.
	PanicInInit bool

	// StallFrom/StallUntil bound a virtual-time window (ns) during which
	// every pick returns nil while the module still holds tasks — the
	// quiet starvation the watchdog must catch. StallUntil 0 makes the
	// stall permanent; both 0 disarms.
	StallFrom  int64
	StallUntil int64

	// ForgeFrom/ForgeCount corrupt up to ForgeCount returned Schedulables
	// starting at pick number ForgeFrom (1-based), fabricating generations
	// the proof validation must reject. ForgeCount 0 disarms.
	ForgeFrom  int
	ForgeCount int

	calls  [core.MsgModuleFault + 1]int
	picks  int
	forged int
}

// enter counts one call of kind and fires the armed panic when its turn
// comes. The panic value is a fixed, schedule-derived string so the fault
// report is as deterministic as the trigger.
func (i *Injector) enter(kind core.Kind) {
	n := i.calls[kind]
	i.calls[kind] = n + 1
	if i.PanicSite == kind && i.PanicSite != core.MsgInvalid && n >= i.PanicAt {
		panic(fmt.Sprintf("schedtest: injected panic in %v (call %d)", kind, n))
	}
}

// stalled reports whether virtual time is inside the stall window.
func (i *Injector) stalled() bool {
	if i.Clock == nil || (i.StallFrom == 0 && i.StallUntil == 0) {
		return false
	}
	now := i.Clock()
	return now >= i.StallFrom && (i.StallUntil == 0 || now < i.StallUntil)
}

// PickNextTask implements core.Scheduler: the site where panic, stall, and
// forge planes all act.
func (i *Injector) PickNextTask(cpu int, curr *core.Schedulable, rt time.Duration) *core.Schedulable {
	i.enter(core.MsgPickNextTask)
	if i.stalled() {
		return nil
	}
	tok := i.Scheduler.PickNextTask(cpu, curr, rt)
	i.picks++
	if tok != nil && i.ForgeCount > 0 && i.picks >= i.ForgeFrom && i.forged < i.ForgeCount {
		i.forged++
		return core.NewSchedulable(tok.PID(), tok.CPU(), tok.Gen()+1000)
	}
	return tok
}

// PntErr implements core.Scheduler.
func (i *Injector) PntErr(cpu int, pid int, err core.PickError, sched *core.Schedulable) {
	i.enter(core.MsgPntErr)
	i.Scheduler.PntErr(cpu, pid, err, sched)
}

// TaskDead implements core.Scheduler.
func (i *Injector) TaskDead(pid int) {
	i.enter(core.MsgTaskDead)
	i.Scheduler.TaskDead(pid)
}

// TaskBlocked implements core.Scheduler.
func (i *Injector) TaskBlocked(pid int, rt time.Duration, cpu int) {
	i.enter(core.MsgTaskBlocked)
	i.Scheduler.TaskBlocked(pid, rt, cpu)
}

// TaskWakeup implements core.Scheduler.
func (i *Injector) TaskWakeup(pid int, rt time.Duration, deferrable bool, lastCPU, wakeCPU int, sched *core.Schedulable) {
	i.enter(core.MsgTaskWakeup)
	i.Scheduler.TaskWakeup(pid, rt, deferrable, lastCPU, wakeCPU, sched)
}

// TaskNew implements core.Scheduler.
func (i *Injector) TaskNew(pid int, rt time.Duration, runnable bool, allowed []int, sched *core.Schedulable) {
	i.enter(core.MsgTaskNew)
	i.Scheduler.TaskNew(pid, rt, runnable, allowed, sched)
}

// TaskPreempt implements core.Scheduler.
func (i *Injector) TaskPreempt(pid int, rt time.Duration, cpu int, preempted bool, sched *core.Schedulable) {
	i.enter(core.MsgTaskPreempt)
	i.Scheduler.TaskPreempt(pid, rt, cpu, preempted, sched)
}

// TaskYield implements core.Scheduler.
func (i *Injector) TaskYield(pid int, rt time.Duration, cpu int, sched *core.Schedulable) {
	i.enter(core.MsgTaskYield)
	i.Scheduler.TaskYield(pid, rt, cpu, sched)
}

// TaskDeparted implements core.Scheduler.
func (i *Injector) TaskDeparted(pid, cpu int) *core.Schedulable {
	i.enter(core.MsgTaskDeparted)
	return i.Scheduler.TaskDeparted(pid, cpu)
}

// TaskAffinityChanged implements core.Scheduler.
func (i *Injector) TaskAffinityChanged(pid int, allowed []int) {
	i.enter(core.MsgTaskAffinityChanged)
	i.Scheduler.TaskAffinityChanged(pid, allowed)
}

// TaskPrioChanged implements core.Scheduler.
func (i *Injector) TaskPrioChanged(pid, prio int) {
	i.enter(core.MsgTaskPrioChanged)
	i.Scheduler.TaskPrioChanged(pid, prio)
}

// TaskTick implements core.Scheduler.
func (i *Injector) TaskTick(cpu int, queued bool, currPID int, currRuntime time.Duration) {
	i.enter(core.MsgTaskTick)
	i.Scheduler.TaskTick(cpu, queued, currPID, currRuntime)
}

// SelectTaskRQ implements core.Scheduler.
func (i *Injector) SelectTaskRQ(pid, prevCPU int, wakeup bool) int {
	i.enter(core.MsgSelectTaskRQ)
	return i.Scheduler.SelectTaskRQ(pid, prevCPU, wakeup)
}

// MigrateTaskRQ implements core.Scheduler.
func (i *Injector) MigrateTaskRQ(pid, newCPU int, sched *core.Schedulable) *core.Schedulable {
	i.enter(core.MsgMigrateTaskRQ)
	return i.Scheduler.MigrateTaskRQ(pid, newCPU, sched)
}

// Balance implements core.Scheduler.
func (i *Injector) Balance(cpu int) (uint64, bool) {
	i.enter(core.MsgBalance)
	return i.Scheduler.Balance(cpu)
}

// BalanceErr implements core.Scheduler.
func (i *Injector) BalanceErr(cpu int, pid uint64, sched *core.Schedulable) {
	i.enter(core.MsgBalanceErr)
	i.Scheduler.BalanceErr(cpu, pid, sched)
}

// EnterQueue implements core.Scheduler.
func (i *Injector) EnterQueue(id, count int) {
	i.enter(core.MsgEnterQueue)
	i.Scheduler.EnterQueue(id, count)
}

// ParseHint implements core.Scheduler.
func (i *Injector) ParseHint(hint core.Hint) {
	i.enter(core.MsgParseHint)
	i.Scheduler.ParseHint(hint)
}

// UnregisterQueue implements core.Scheduler.
func (i *Injector) UnregisterQueue(id int) *core.HintQueue {
	i.enter(core.MsgUnregisterQueue)
	return i.Scheduler.UnregisterQueue(id)
}

// UnregisterRevQueue implements core.Scheduler.
func (i *Injector) UnregisterRevQueue(id int) *core.RevQueue {
	i.enter(core.MsgUnregisterRevQueue)
	return i.Scheduler.UnregisterRevQueue(id)
}

// ReregisterInit implements core.Scheduler: PanicInInit is the broken-new-
// version fault of the upgrade rollback tests.
func (i *Injector) ReregisterInit(in *core.TransferIn) {
	if i.PanicInInit {
		panic("schedtest: injected panic in reregister_init")
	}
	i.Scheduler.ReregisterInit(in)
}
