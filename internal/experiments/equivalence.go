package experiments

import (
	"fmt"
	"math"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/stats"
	"enoki/internal/workload"
)

// EquivalenceResult reproduces Appendix A.1: the functional-equivalence
// probes comparing CFS and the Enoki WFQ scheduler — fair sharing, weight
// handling, and task placement.
type EquivalenceResult struct {
	Work time.Duration

	// Fair sharing: completion times when spread vs co-located.
	SpreadCFS, SpreadWFQ   time.Duration
	OneCoreCFS, OneCoreWFQ time.Duration

	// Weights: others' mean completion and the nice-19 task's completion.
	WeightOthersCFS, WeightLowCFS time.Duration
	WeightOthersWFQ, WeightLowWFQ time.Duration

	// Placement: completion stddev without and with a forced move.
	PlaceStillCFS, PlaceMovedCFS time.Duration
	PlaceStillWFQ, PlaceMovedWFQ time.Duration
}

// Name implements the experiment naming convention.
func (r *EquivalenceResult) Name() string { return "equivalence" }

func (r *EquivalenceResult) String() string {
	t := stats.NewTable("Probe", "CFS", "Enoki WFQ")
	t.Row("5 tasks, own cores (completion)", r.SpreadCFS, r.SpreadWFQ)
	t.Row("5 tasks, one core (completion)", r.OneCoreCFS, r.OneCoreWFQ)
	t.Row("weights: 4 normal tasks", r.WeightOthersCFS, r.WeightOthersWFQ)
	t.Row("weights: nice-19 task", r.WeightLowCFS, r.WeightLowWFQ)
	t.Row("placement stddev (no move)", r.PlaceStillCFS, r.PlaceStillWFQ)
	t.Row("placement stddev (one moved)", r.PlaceMovedCFS, r.PlaceMovedWFQ)
	return fmt.Sprintf("Appendix A.1: WFQ functional equivalence (%v of work per task)\n", r.Work) +
		t.String()
}

func maxOf(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

func meanOf(ds []time.Duration) time.Duration {
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func stddevOf(ds []time.Duration) time.Duration {
	var w stats.Welford
	for _, d := range ds {
		w.Add(float64(d))
	}
	return time.Duration(w.Stddev())
}

// Equivalence runs the three probes on both schedulers.
func Equivalence(o Options) *EquivalenceResult {
	work := scaleDur(o, 4600*time.Millisecond, 400*time.Millisecond)
	res := &EquivalenceResult{Work: work}

	fair := func(kind Kind, oneCore bool) time.Duration {
		r := NewRig(kernel.Machine8(), kind)
		return maxOf(workload.FairnessProbe(r.K, r.Policy, oneCore, work))
	}
	res.SpreadCFS = fair(KindCFS, false)
	res.SpreadWFQ = fair(KindWFQ, false)
	res.OneCoreCFS = fair(KindCFS, true)
	res.OneCoreWFQ = fair(KindWFQ, true)

	weight := func(kind Kind) (others, low time.Duration) {
		r := NewRig(kernel.Machine8(), kind)
		times := workload.WeightProbe(r.K, r.Policy, work)
		return meanOf(times[:4]), times[4]
	}
	res.WeightOthersCFS, res.WeightLowCFS = weight(KindCFS)
	res.WeightOthersWFQ, res.WeightLowWFQ = weight(KindWFQ)

	place := func(kind Kind, move bool) time.Duration {
		r := NewRig(kernel.Machine8(), kind)
		return stddevOf(workload.PlacementProbe(r.K, r.Policy, 2*work, move))
	}
	res.PlaceStillCFS = place(KindCFS, false)
	res.PlaceMovedCFS = place(KindCFS, true)
	res.PlaceStillWFQ = place(KindWFQ, false)
	res.PlaceMovedWFQ = place(KindWFQ, true)
	return res
}

// CheckEquivalence validates the appendix's qualitative claims and returns
// the violations (empty means equivalent behaviour).
func (r *EquivalenceResult) CheckEquivalence() []string {
	var bad []string
	rel := func(a, b time.Duration) float64 {
		return math.Abs(float64(a-b)) / float64(b)
	}
	if rel(r.SpreadCFS, r.SpreadWFQ) > 0.05 {
		bad = append(bad, "spread completion differs >5%")
	}
	if rel(r.OneCoreCFS, r.OneCoreWFQ) > 0.10 {
		bad = append(bad, "one-core completion differs >10%")
	}
	if float64(r.OneCoreCFS) < 4.5*float64(r.SpreadCFS) {
		bad = append(bad, "CFS co-located slowdown below ~5x")
	}
	if r.WeightLowCFS <= r.WeightOthersCFS || r.WeightLowWFQ <= r.WeightOthersWFQ {
		bad = append(bad, "nice-19 task did not finish last")
	}
	return bad
}
