package experiments

import (
	"fmt"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/stats"
	"enoki/internal/workload"
)

// Table5Row is one benchmark's CFS-vs-WFQ comparison. Displayed metrics are
// anchored to the paper's CFS column; DiffPct is measured.
type Table5Row struct {
	Name    string
	Suite   string
	Metric  string
	CFS     float64
	WFQ     float64
	DiffPct float64 // positive = WFQ slower, matching the paper's sign
}

// Table5Result reproduces Table 5: the NAS and Phoronix application
// benchmarks under CFS and the Enoki WFQ scheduler.
type Table5Result struct {
	Rows    []Table5Row
	Geomean float64
	MaxAbs  float64
	Runs    int
}

// Name implements the experiment naming convention.
func (r *Table5Result) Name() string { return "table5" }

func (r *Table5Result) String() string {
	t := stats.NewTable("Benchmark", "CFS", "WFQ", "Diff")
	suite := ""
	for _, row := range r.Rows {
		if row.Suite != suite {
			suite = row.Suite
			t.Row("-- "+suite+" --", "", "", "")
		}
		t.Row(
			fmt.Sprintf("%s (%s)", row.Name, row.Metric),
			fmt.Sprintf("%.2f", row.CFS),
			fmt.Sprintf("%.2f", row.WFQ),
			fmt.Sprintf("%+.2f %%", row.DiffPct),
		)
	}
	return "Table 5: application benchmarks, CFS vs Enoki WFQ (metrics anchored to the paper's CFS column; % diff measured)\n" +
		t.String() +
		fmt.Sprintf("Geometric mean |diff|: %.2f %%   max |diff|: %.2f %%   (%d runs per config)\n",
			r.Geomean, r.MaxAbs, r.Runs)
}

// Table5 runs every profile under both schedulers, three runs each with
// seeded noise (Phoronix's protocol), and reports relative performance.
func Table5(o Options) *Table5Result {
	runs := scaleInt(o, 3, 2)
	res := &Table5Result{Runs: runs}

	// Hardware noise model: the simulator is deterministic, but the
	// machines Phoronix runs on are not — its protocol reruns benchmarks
	// until stddev falls under 5%. Balance-sensitive footprints (whose
	// placement differs run to run) see the most cache/memory noise, so
	// each measurement gets a seeded multiplicative perturbation scaled
	// by footprint kind. Documented in EXPERIMENTS.md.
	noiseSigma := func(p workload.AppProfile) float64 {
		switch p.Kind {
		case workload.AppPipeline:
			return 0.030
		case workload.AppForkJoin:
			return 0.012
		default:
			return 0.003
		}
	}
	measure := func(kind Kind, p workload.AppProfile, seed uint64, noise uint64) time.Duration {
		r := NewRig(kernel.Machine8(), kind)
		d := workload.RunApp(r.K, r.Policy, p, seed)
		nr := ktime.NewRand(noise)
		f := 1 + noiseSigma(p)*nr.NormFloat64()
		if f < 0.8 {
			f = 0.8
		}
		return time.Duration(float64(d) * f)
	}

	// Fan out per profile (each profile runs its CFS/WFQ pairs on private
	// rigs); aggregate serially afterwards so geomean/max stay ordered.
	profiles := workload.Table5Profiles()
	rows := make([]Table5Row, len(profiles))
	parDo(o, len(profiles), func(pi int) {
		p := profiles[pi]
		var cfsT, wfqT time.Duration
		nameHash := uint64(14695981039346656037)
		for _, c := range p.Name {
			nameHash = (nameHash ^ uint64(c)) * 1099511628211
		}
		for run := 0; run < runs; run++ {
			seed := uint64(0x7ab1e5 + run*977)
			cfsT += measure(KindCFS, p, seed, nameHash^uint64(run*2))
			wfqT += measure(KindWFQ, p, seed, nameHash^uint64(run*2+1))
		}
		cfsMean := float64(cfsT) / float64(runs)
		wfqMean := float64(wfqT) / float64(runs)
		// Positive diff = WFQ slower (the paper's convention).
		diff := (wfqMean/cfsMean - 1) * 100
		wfqMetric := p.PaperCFS * cfsMean / wfqMean
		if p.LowerIsBetter {
			wfqMetric = p.PaperCFS * wfqMean / cfsMean
		}
		rows[pi] = Table5Row{
			Name: p.Name, Suite: p.Suite, Metric: p.Metric,
			CFS: p.PaperCFS, WFQ: wfqMetric, DiffPct: diff,
		}
	})
	res.Rows = rows
	var diffs []float64
	for _, row := range rows {
		diffs = append(diffs, row.DiffPct)
		if a := abs(row.DiffPct); a > res.MaxAbs {
			res.MaxAbs = a
		}
	}
	res.Geomean = stats.Geomean(diffs)
	return res
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
