package cluster_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"enoki/internal/cluster"
	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/record"
	"enoki/internal/schedtest"
	"enoki/internal/schedtest/conformance"
)

// rolloutRun is everything a fleet drive with a rollout produces that must
// be identical between serial and parallel modes.
type rolloutRun struct {
	logs   [][][]byte // [machine][shard]
	jobs   []cluster.Job
	stats  cluster.Stats
	report cluster.RolloutReport
}

// recordRolloutRun drives one seeded cluster workload for case c with a
// canary rollout of a new module generation started at t=0. When faulty is
// true the new generation panics in init on every machine, so the canary
// wave trips the transactional rollback and the rollout halts.
func recordRolloutRun(c conformance.Case, m kernel.Machine, seed uint64, parallel, faulty bool) rolloutRun {
	const machines = 10
	bufs := make([][]*bytes.Buffer, machines)
	recs := make([][]*record.Recorder, machines)
	cl := cluster.New(cluster.Config{
		Machines:        machines,
		Machine:         m,
		Parallel:        parallel,
		Policy:          conformance.PolicyTest,
		Placer:          &cluster.Pack{PerCPU: 2},
		RebalanceSpread: 3,
		SetupModules: func(mi int, sk *kernel.ShardedKernel) []*enokic.Adapter {
			bufs[mi] = make([]*bytes.Buffer, sk.NumShards())
			recs[mi] = make([]*record.Recorder, sk.NumShards())
			ads := make([]*enokic.Adapter, sk.NumShards())
			for s := 0; s < sk.NumShards(); s++ {
				k := sk.ShardKernel(s)
				ads[s] = enokic.Load(k, conformance.PolicyTest, enokic.DefaultConfig(),
					func(env core.Env) core.Scheduler { return c.NewModule(env, k.NumCPUs()) })
				k.RegisterClass(conformance.PolicyCFS, kernel.NewCFS(k))
				bufs[mi][s] = &bytes.Buffer{}
				recs[mi][s] = record.New(k, bufs[mi][s], conformance.PolicyCFS, record.DefaultCosts())
				ads[s].SetRecorder(recs[mi][s])
			}
			return ads
		},
	})
	defer cl.Close()

	rng := ktime.NewRand(seed)
	for i := 0; i < 80; i++ {
		cl.Submit(cluster.JobSpec{
			Cycles: 2 + rng.Intn(5),
			Run:    time.Duration(80+rng.Intn(250)) * time.Microsecond,
			Sleep:  time.Duration(rng.Intn(2)) * 150 * time.Microsecond,
		})
	}
	factory := func(mi int, env core.Env) core.Scheduler {
		s := c.NewModule(env, env.NumCPUs())
		if faulty {
			return &schedtest.Injector{Scheduler: s, PanicInInit: true}
		}
		return s
	}
	r, err := cl.Rollout("v2", factory)
	if err != nil {
		panic(err)
	}
	// Fixed virtual budgets, not RunUntilIdle: the record drain tasks tick
	// forever, so a recorded cluster never goes idle. First let the rollout
	// resolve (waves finish within a few ms), then put fresh load on the
	// post-rollout fleet and kill a machine under it so the run also
	// exercises failover — deterministically in both drives.
	cl.Run(25 * time.Millisecond)
	if !r.Done() {
		panic("rollout unresolved within the run budget")
	}
	for i := 0; i < 80; i++ {
		cl.Submit(cluster.JobSpec{
			Cycles: 12 + rng.Intn(8),
			Run:    time.Duration(80+rng.Intn(250)) * time.Microsecond,
			Sleep:  time.Duration(rng.Intn(2)) * 150 * time.Microsecond,
		})
	}
	cl.FailMachine(3, 30*time.Millisecond)
	cl.Run(35 * time.Millisecond)

	out := rolloutRun{logs: make([][][]byte, machines), stats: cl.Stats(), report: r.Report()}
	for mi := 0; mi < machines; mi++ {
		out.logs[mi] = make([][]byte, len(bufs[mi]))
		for s := range bufs[mi] {
			recs[mi][s].Close()
			out.logs[mi][s] = bufs[mi][s].Bytes()
		}
	}
	for i := 0; i < cl.NumJobs(); i++ {
		out.jobs = append(out.jobs, cl.Job(i))
	}
	return out
}

// TestRolloutIdentity is the rollout determinism oracle: for three
// scheduler classes on a ten-machine fleet, a canary rollout — clean
// convergence in one variant, canary failure plus fleet rollback in the
// other — must produce byte-identical per-(machine, shard) record logs,
// identical control-plane outcomes, and an identical RolloutReport between
// the serial and worker-goroutine fleet drives. Under -race this is the
// data-race gate for the rollout stack.
func TestRolloutIdentity(t *testing.T) {
	classes := map[string]kernel.Machine{
		"fifo":     kernel.Machine8(),
		"wfq":      kernel.MachineNUMA("fleet16", 2, 2, 4),
		"shinjuku": kernel.Machine8(),
	}
	for _, c := range conformance.Cases() {
		m, ok := classes[c.Name]
		if !ok || c.NewModule == nil {
			continue
		}
		c := c
		for _, variant := range []struct {
			name   string
			faulty bool
		}{{"clean", false}, {"canaryfail", true}} {
			variant := variant
			t.Run(c.Name+"/"+variant.name, func(t *testing.T) {
				t.Parallel()
				seed := uint64(0x8011ed) ^ uint64(len(c.Name))
				serial := recordRolloutRun(c, m, seed, false, variant.faulty)
				par := recordRolloutRun(c, m, seed, true, variant.faulty)

				if serial.stats != par.stats {
					t.Fatalf("stats diverge:\nserial   %+v\nparallel %+v", serial.stats, par.stats)
				}
				if !reflect.DeepEqual(serial.report, par.report) {
					t.Fatalf("rollout reports diverge:\nserial   %+v\nparallel %+v", serial.report, par.report)
				}
				if len(serial.jobs) != len(par.jobs) {
					t.Fatalf("job counts diverge: %d vs %d", len(serial.jobs), len(par.jobs))
				}
				for i := range serial.jobs {
					if serial.jobs[i] != par.jobs[i] {
						t.Fatalf("job %d diverges:\nserial   %+v\nparallel %+v", i, serial.jobs[i], par.jobs[i])
					}
				}
				for mi := range serial.logs {
					for s := range serial.logs[mi] {
						if !bytes.Equal(serial.logs[mi][s], par.logs[mi][s]) {
							t.Fatalf("machine %d shard %d: record logs diverge (%d vs %d bytes)",
								mi, s, len(serial.logs[mi][s]), len(par.logs[mi][s]))
						}
					}
				}
				// The run must have exercised the paths it claims to pin.
				rep := serial.report
				if variant.faulty {
					if !rep.Halted || rep.Upgraded != 0 || rep.RolledBack == 0 {
						t.Fatalf("canary failure not exercised: %+v", rep)
					}
				} else {
					if !rep.Completed || rep.Upgraded != 10 || rep.Halted {
						t.Fatalf("clean rollout did not converge: %+v", rep)
					}
				}
				st := serial.stats
				if st.Done != st.Submitted {
					t.Fatalf("only %d/%d jobs completed", st.Done, st.Submitted)
				}
				if st.Lost == 0 {
					t.Fatal("machine failure lost no placements — failover path not exercised")
				}
				total := 0
				for _, perShard := range serial.logs {
					for _, l := range perShard {
						total += len(l)
					}
				}
				if total == 0 {
					t.Fatal("record logs are empty — modules saw no scheduling traffic")
				}
			})
		}
	}
}
