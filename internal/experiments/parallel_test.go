package experiments

import (
	"bytes"
	"sync"
	"testing"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/record"
	"enoki/internal/replay"
	"enoki/internal/sched/wfq"
	"enoki/internal/workload"
)

// These tests pin the parallel runner's contract: every experiment cell owns
// its own sim.Engine, so a parallel run must be bit-for-bit identical to a
// serial same-seed run — the fan-out buys wall clock, never determinism.

// TestParallelMatchesSerialTable3 renders Table 3 serially and with four
// workers; the tables must be byte-identical.
func TestParallelMatchesSerialTable3(t *testing.T) {
	serial := Table3(Options{Quick: true}).String()
	par := Table3(Options{Quick: true, Parallel: 4}).String()
	if serial != par {
		t.Errorf("parallel Table3 diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
}

// TestParallelMatchesSerialFig2 does the same for the Fig 2 load sweep.
func TestParallelMatchesSerialFig2(t *testing.T) {
	serial := Fig2(Options{Quick: true}, false).String()
	par := Fig2(Options{Quick: true, Parallel: 4}, false).String()
	if serial != par {
		t.Errorf("parallel Fig2 diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
}

// recordedPipeLog runs the §5.8 recorded pipe workload on a fresh rig and
// returns the raw record log bytes.
func recordedPipeLog(messages int) []byte {
	r := NewRig(kernel.Machine8(), KindWFQ)
	var buf bytes.Buffer
	recorder := record.New(r.K, &buf, PolicyCFS, record.DefaultCosts())
	r.Adapter.SetRecorder(recorder)
	workload.RunPipe(r.K, workload.PipeConfig{
		Policy: PolicyEnoki, Messages: messages, SameCore: true,
	})
	recorder.Close()
	return buf.Bytes()
}

// TestParallelRecordLogByteIdentical records the same workload once
// serially and four times concurrently. Pooled messages are snapshotted
// (Clone) at record time, so every log must be byte-identical regardless of
// which goroutine produced it.
func TestParallelRecordLogByteIdentical(t *testing.T) {
	const messages = 300
	serial := recordedPipeLog(messages)
	if len(serial) == 0 {
		t.Fatal("empty record log")
	}

	logs := make([][]byte, 4)
	var wg sync.WaitGroup
	for i := range logs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			logs[i] = recordedPipeLog(messages)
		}(i)
	}
	wg.Wait()
	for i, log := range logs {
		if !bytes.Equal(serial, log) {
			t.Errorf("concurrent record log %d differs from serial (%d vs %d bytes)", i, len(log), len(serial))
		}
	}

	// The log must still replay exactly: message recycling on the live path
	// cannot leak into the recorded stream.
	rres, err := replay.Replay(bytes.NewReader(serial),
		replay.Config{NumCPUs: 8},
		func(env core.Env) core.Scheduler { return wfq.New(env, PolicyEnoki) })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(rres.Divergences) != 0 {
		t.Errorf("replay diverged %d times with pooled messages", len(rres.Divergences))
	}
	if rres.Messages == 0 {
		t.Error("replay processed no messages")
	}
}
