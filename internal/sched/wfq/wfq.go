// Package wfq is the Enoki weighted fair queuing scheduler of §4.2.1: the
// paper's headline module, written against the libEnoki API and compared
// head-to-head with CFS across Tables 3-5.
//
// Like the paper's 646-line Rust version, it computes vruntime for per-core
// time slices but uses a much simpler placement policy than CFS: when a core
// is about to go idle and another core has waiting work, it steals from the
// core with the longest queue; otherwise it does not rebalance.
package wfq

import (
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/rbtree"
)

// Tuning constants, mirroring the CFS defaults the module approximates.
const (
	targetLatency  = 6 * time.Millisecond
	minGranularity = 750 * time.Microsecond
	sleeperCredit  = int64(3 * time.Millisecond)
	wakeupGran     = int64(time.Millisecond)
	nrLatency      = 8
)

// task is the module's view of one task.
type task struct {
	pid      int
	weight   int64
	vruntime int64
	lastRun  time.Duration // runtime at last vruntime update
	sched    *core.Schedulable
	node     *rbtree.Node[int64, *task]
	cpu      int
	queued   bool
	allowed  []bool // nil means all CPUs
}

// allows reports whether the task may run on cpu.
func (t *task) allows(cpu int) bool { return t.allowed == nil || t.allowed[cpu] }

// allowedSet converts an affinity list to a lookup table; a full list
// collapses to nil.
func allowedSet(list []int, ncpu int) []bool {
	if len(list) == 0 || len(list) >= ncpu {
		return nil
	}
	set := make([]bool, ncpu)
	for _, c := range list {
		if c >= 0 && c < ncpu {
			set[c] = true
		}
	}
	return set
}

// runq is one core's weighted fair queue.
type runq struct {
	tree        *rbtree.Tree[int64, *task]
	minV        int64
	curr        *task
	currPicked  time.Duration // curr's runtime when picked
	totalWeight int64
}

func newRunq() *runq {
	return &runq{tree: rbtree.New[int64, *task](func(a, b int64) bool { return a < b })}
}

func (rq *runq) nr() int {
	n := rq.tree.Len()
	if rq.curr != nil {
		n++
	}
	return n
}

func (rq *runq) updateMinV() {
	v := rq.minV
	if rq.curr != nil {
		v = rq.curr.vruntime
	}
	if left := rq.tree.Min(); left != nil {
		lv := left.Value().vruntime
		if rq.curr == nil || lv < v {
			v = lv
		}
	}
	if v > rq.minV {
		rq.minV = v
	}
}

// state is the transferable whole of the scheduler, passed across live
// upgrades (§3.2): the new version adopts it in reregister_init.
type state struct {
	tasks map[int]*task
	rqs   []*runq
}

// Sched is the Enoki WFQ scheduler module.
type Sched struct {
	core.BaseScheduler
	env    core.Env
	policy int
	mu     core.Locker
	st     *state

	// Picks and Steals are policy counters used by tests and ablations.
	Picks  uint64
	Steals uint64

	// NoSteal disables idle-time work stealing (the DESIGN.md ablation:
	// without it, WFQ has no load balancing at all).
	NoSteal bool
}

var _ core.Scheduler = (*Sched)(nil)

// New constructs the module.
func New(env core.Env, policy int) *Sched {
	s := &Sched{env: env, policy: policy, mu: env.NewMutex("wfq")}
	s.st = &state{tasks: make(map[int]*task)}
	for i := 0; i < env.NumCPUs(); i++ {
		s.st.rqs = append(s.st.rqs, newRunq())
	}
	return s
}

// GetPolicy implements core.Scheduler.
func (s *Sched) GetPolicy() int { return s.policy }

// charge updates a task's vruntime from the framework-tracked runtime.
func (s *Sched) charge(t *task, runtime time.Duration) {
	delta := runtime - t.lastRun
	if delta <= 0 {
		return
	}
	t.lastRun = runtime
	t.vruntime += int64(delta) * kernel.NICE0Load / t.weight
}

func (s *Sched) enqueue(rq *runq, t *task, cpu int) {
	t.cpu = cpu
	t.queued = true
	t.node = rq.tree.Insert(t.vruntime, t)
	rq.totalWeight += t.weight
	rq.updateMinV()
}

func (s *Sched) dequeue(rq *runq, t *task) {
	if t.node != nil {
		n := t.node
		rq.tree.Delete(n)
		rq.tree.Free(n)
		t.node = nil
	}
	t.queued = false
	rq.totalWeight -= t.weight
	rq.updateMinV()
}

// TaskNew implements core.Scheduler.
func (s *Sched) TaskNew(pid int, runtime time.Duration, runnable bool, allowed []int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cpu := 0
	if sched != nil {
		cpu = sched.CPU()
	}
	rq := s.st.rqs[cpu]
	t := &task{
		pid: pid, weight: kernel.NICE0Load,
		vruntime: rq.minV, lastRun: runtime, sched: sched,
		allowed: allowedSet(allowed, s.env.NumCPUs()),
	}
	s.st.tasks[pid] = t
	if runnable && sched != nil {
		s.enqueue(rq, t, cpu)
	}
}

// TaskWakeup implements core.Scheduler: grant bounded sleeper credit and
// request preemption when the woken task is far behind the current one.
func (s *Sched) TaskWakeup(pid int, runtime time.Duration, deferrable bool, lastCPU, wakeCPU int, sched *core.Schedulable) {
	s.mu.Lock()
	t := s.st.tasks[pid]
	if t == nil {
		s.mu.Unlock()
		return
	}
	rq := s.st.rqs[wakeCPU]
	t.lastRun = runtime
	if v := rq.minV - sleeperCredit; t.vruntime < v {
		t.vruntime = v
	}
	t.sched = sched
	s.enqueue(rq, t, wakeCPU)
	preempt := rq.curr != nil && t.vruntime+wakeupGran < rq.curr.vruntime
	s.mu.Unlock()
	if preempt {
		s.env.Resched(wakeCPU)
	}
}

// TaskPreempt implements core.Scheduler.
func (s *Sched) TaskPreempt(pid int, runtime time.Duration, cpu int, preempted bool, sched *core.Schedulable) {
	s.requeue(pid, runtime, cpu, sched)
}

// TaskYield implements core.Scheduler.
func (s *Sched) TaskYield(pid int, runtime time.Duration, cpu int, sched *core.Schedulable) {
	s.requeue(pid, runtime, cpu, sched)
}

func (s *Sched) requeue(pid int, runtime time.Duration, cpu int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return
	}
	s.charge(t, runtime)
	rq := s.st.rqs[cpu]
	if rq.curr == t {
		rq.curr = nil
		rq.totalWeight -= t.weight
	}
	t.sched = sched
	s.enqueue(rq, t, cpu)
}

// TaskBlocked implements core.Scheduler.
func (s *Sched) TaskBlocked(pid int, runtime time.Duration, cpu int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return
	}
	s.charge(t, runtime)
	rq := s.st.rqs[cpu]
	if rq.curr == t {
		rq.curr = nil
		rq.totalWeight -= t.weight
		rq.updateMinV()
	}
	t.sched = nil
}

// TaskDead implements core.Scheduler.
func (s *Sched) TaskDead(pid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return
	}
	if t.queued {
		s.dequeue(s.st.rqs[t.cpu], t)
	}
	delete(s.st.tasks, pid)
}

// TaskDeparted implements core.Scheduler.
func (s *Sched) TaskDeparted(pid, cpu int) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return nil
	}
	if t.queued {
		s.dequeue(s.st.rqs[t.cpu], t)
	}
	if rq := s.st.rqs[t.cpu]; rq.curr == t {
		rq.curr = nil
		rq.totalWeight -= t.weight
	}
	delete(s.st.tasks, pid)
	tok := t.sched
	t.sched = nil
	return tok
}

// PickNextTask implements core.Scheduler: run the lowest-vruntime task.
func (s *Sched) PickNextTask(cpu int, curr *core.Schedulable, currRuntime time.Duration) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	rq := s.st.rqs[cpu]
	n := rq.tree.Min()
	if n == nil {
		return nil
	}
	t := n.Value()
	rq.tree.Delete(n)
	rq.tree.Free(n)
	t.node = nil
	t.queued = false
	rq.curr = t
	rq.currPicked = t.lastRun
	s.Picks++
	tok := t.sched
	t.sched = nil
	return tok
}

// PntErr implements core.Scheduler: accept the proof back and requeue.
func (s *Sched) PntErr(cpu int, pid int, err core.PickError, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil || sched == nil {
		return
	}
	rq := s.st.rqs[cpu]
	if rq.curr == t {
		rq.curr = nil
		rq.totalWeight -= t.weight
	}
	t.sched = sched
	if !t.queued {
		s.enqueue(rq, t, sched.CPU())
	}
}

// period returns the fair period for nr runnable tasks.
func period(nr int) time.Duration {
	if nr <= nrLatency {
		return targetLatency
	}
	return time.Duration(nr) * minGranularity
}

// TaskTick implements core.Scheduler: expire the current task's slice.
func (s *Sched) TaskTick(cpu int, queued bool, currPID int, currRuntime time.Duration) {
	s.mu.Lock()
	rq := s.st.rqs[cpu]
	t := rq.curr
	resched := false
	if t != nil && t.pid == currPID {
		// Keep the running task's vruntime current even when nothing
		// waits, so wakeup-preemption comparisons are not stale.
		s.charge(t, currRuntime)
		rq.updateMinV()
	}
	if t != nil && t.pid == currPID && rq.tree.Len() > 0 {
		tw := rq.totalWeight
		if tw <= 0 {
			tw = t.weight
		}
		slice := time.Duration(int64(period(rq.nr())) * t.weight / tw)
		if slice < minGranularity {
			slice = minGranularity
		}
		if currRuntime-rq.currPicked >= slice {
			resched = true
		} else if left := rq.tree.Min(); left != nil &&
			t.vruntime-left.Value().vruntime > int64(slice)*kernel.NICE0Load/t.weight {
			resched = true
		}
	}
	s.mu.Unlock()
	if resched {
		s.env.Resched(cpu)
	}
}

// SelectTaskRQ implements core.Scheduler: previous CPU if free, otherwise
// the lightest allowed queue.
func (s *Sched) SelectTaskRQ(pid, prevCPU int, wakeup bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	allowedPrev := prevCPU >= 0 && prevCPU < len(s.st.rqs) && (t == nil || t.allows(prevCPU))
	if allowedPrev {
		rq := s.st.rqs[prevCPU]
		if wakeup && rq.curr == nil && rq.tree.Len() == 0 {
			return prevCPU
		}
	}
	best, bestW := prevCPU, int64(1<<62)
	for cpu, rq := range s.st.rqs {
		if t != nil && !t.allows(cpu) {
			continue
		}
		if w := rq.totalWeight; w < bestW {
			best, bestW = cpu, w
		}
	}
	if wakeup && allowedPrev && s.st.rqs[prevCPU].totalWeight <= bestW {
		return prevCPU
	}
	return best
}

// Balance implements core.Scheduler, the paper's deliberately simple
// policy: only when this core is about to go idle, steal the least-urgent
// waiting task from the core with the longest queue.
func (s *Sched) Balance(cpu int) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.NoSteal || s.st.rqs[cpu].tree.Len() > 0 {
		return 0, false
	}
	busiest, busiestLen := -1, 0
	for i, rq := range s.st.rqs {
		if i == cpu {
			continue
		}
		n := rq.tree.Len()
		// A single waiting task on an otherwise idle core is about to
		// run there; stealing it only moves the wakeup.
		if rq.curr == nil && n < 2 {
			continue
		}
		if n > busiestLen {
			busiest, busiestLen = i, n
		}
	}
	if busiest == -1 || busiestLen < 1 {
		return 0, false
	}
	// Steal the waiting task with the highest vruntime (least urgent)
	// that may run here.
	var victim *task
	s.st.rqs[busiest].tree.Ascend(func(n *rbtree.Node[int64, *task]) bool {
		if n.Value().allows(cpu) {
			victim = n.Value()
		}
		return true
	})
	if victim == nil {
		return 0, false
	}
	s.Steals++
	return uint64(victim.pid), true
}

// MigrateTaskRQ implements core.Scheduler: adopt the new proof, renormalise
// vruntime onto the new queue, and return the old proof.
func (s *Sched) MigrateTaskRQ(pid, newCPU int, sched *core.Schedulable) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return nil
	}
	old := t.sched
	if t.queued {
		src := s.st.rqs[t.cpu]
		s.dequeue(src, t)
		t.vruntime = t.vruntime - src.minV + s.st.rqs[newCPU].minV
	}
	t.sched = sched
	s.enqueue(s.st.rqs[newCPU], t, newCPU)
	return old
}

// TaskAffinityChanged implements core.Scheduler.
func (s *Sched) TaskAffinityChanged(pid int, allowed []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.st.tasks[pid]; t != nil {
		t.allowed = allowedSet(allowed, len(s.st.rqs))
	}
}

// TaskPrioChanged implements core.Scheduler.
func (s *Sched) TaskPrioChanged(pid, prio int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return
	}
	old := t.weight
	t.weight = kernel.WeightOf(prio)
	if t.queued {
		s.st.rqs[t.cpu].totalWeight += t.weight - old
	}
}

// ReregisterPrepare implements core.Scheduler: export the whole state.
func (s *Sched) ReregisterPrepare() *core.TransferOut {
	return &core.TransferOut{State: s.st}
}

// ReregisterInit implements core.Scheduler: adopt the previous version's
// state capsule.
func (s *Sched) ReregisterInit(in *core.TransferIn) {
	if in == nil || in.State == nil {
		return
	}
	if st, ok := in.State.(*state); ok {
		s.st = st
	}
}

// NRunnable reports the queued count on cpu (tests and ablations).
func (s *Sched) NRunnable(cpu int) int { return s.st.rqs[cpu].tree.Len() }
