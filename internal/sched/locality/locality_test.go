package locality_test

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/locality"
	"enoki/internal/sim"
)

const (
	policyCFS = 0
	policyLoc = 9
)

func rig() (*kernel.Kernel, *enokic.Adapter, *locality.Sched) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	var sched *locality.Sched
	a := enokic.Load(k, policyLoc, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		sched = locality.New(env, policyLoc)
		return sched
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	return k, a, sched
}

func sleeper(work, nap time.Duration, rounds int) kernel.Behavior {
	n := 0
	return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
		n++
		if n > rounds {
			return kernel.Action{Op: kernel.OpExit}
		}
		return kernel.Action{Run: work, Op: kernel.OpSleep, SleepFor: nap}
	})
}

func TestHintsColocateTasks(t *testing.T) {
	k, a, sched := rig()
	q := a.CreateHintQueue(64)
	if q == nil {
		t.Fatal("hint queue rejected")
	}
	var group1, group2 []*kernel.Task
	for i := 0; i < 3; i++ {
		group1 = append(group1, k.Spawn("g1", policyLoc, sleeper(50*time.Microsecond, 200*time.Microsecond, 500)))
		group2 = append(group2, k.Spawn("g2", policyLoc, sleeper(50*time.Microsecond, 200*time.Microsecond, 500)))
	}
	for _, task := range group1 {
		q.Send(locality.HintMsg{PID: task.PID(), Locality: 1})
	}
	for _, task := range group2 {
		q.Send(locality.HintMsg{PID: task.PID(), Locality: 2})
	}
	k.RunFor(50 * time.Millisecond)
	core1, ok1 := sched.GroupCore(1)
	core2, ok2 := sched.GroupCore(2)
	if !ok1 || !ok2 {
		t.Fatal("groups never placed")
	}
	if core1 == core2 {
		t.Fatalf("distinct groups share core %d", core1)
	}
	for _, task := range group1 {
		if task.State() != kernel.StateDead && task.CPU() != core1 {
			t.Fatalf("group-1 task on cpu %d, want %d", task.CPU(), core1)
		}
	}
	if sched.HintsApplied == 0 {
		t.Fatal("no hints applied")
	}
}

func TestWithoutHintsPlacementIsSpread(t *testing.T) {
	k, _, sched := rig()
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		task := k.Spawn("r", policyLoc, sleeper(50*time.Microsecond, 200*time.Microsecond, 200))
		_ = task
	}
	k.RunFor(20 * time.Millisecond)
	for pid := 1; pid <= 16; pid++ {
		if task := k.TaskByPID(pid); task != nil {
			seen[task.CPU()] = true
		}
	}
	if len(seen) < 3 {
		t.Fatalf("random placement used only %d CPUs", len(seen))
	}
	if sched.HintsApplied != 0 {
		t.Fatal("hints applied without any hints sent")
	}
}

func TestOverloadedHintIgnored(t *testing.T) {
	k, a, sched := rig()
	q := a.CreateHintQueue(256)
	var tasks []*kernel.Task
	// Far more tasks than maxGroupQueue in one group: the scheduler must
	// start ignoring the hint rather than stack them all.
	for i := 0; i < 30; i++ {
		tasks = append(tasks, k.Spawn("g", policyLoc, sleeper(500*time.Microsecond, 100*time.Microsecond, 2000)))
	}
	for _, task := range tasks {
		q.Send(locality.HintMsg{PID: task.PID(), Locality: 5})
	}
	k.RunFor(100 * time.Millisecond)
	// Overload must stop exact placement: either the hint spilled to an
	// LLC sibling (redirect) or, with the whole domain full, was ignored.
	if sched.HintsIgnored == 0 && sched.HintsRedirected == 0 {
		t.Fatal("overloaded group never triggered hint spillover or ignoring")
	}
}

func TestOverloadSpillsWithinLLCOnNUMA(t *testing.T) {
	// On the two-socket machine the spillover target must honour cache
	// structure: when the hinted core's queue is full, redirected tasks go
	// to a sibling inside the same LLC domain, never across it.
	eng := sim.New()
	m := kernel.Machine80()
	k := kernel.New(eng, m, kernel.CostsFor(m))
	var sched *locality.Sched
	a := enokic.Load(k, policyLoc, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		sched = locality.New(env, policyLoc)
		return sched
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	topo := k.Topo()

	q := a.CreateHintQueue(256)
	var tasks []*kernel.Task
	for i := 0; i < 30; i++ {
		tasks = append(tasks, k.Spawn("g", policyLoc,
			sleeper(500*time.Microsecond, 100*time.Microsecond, 2000)))
	}
	for _, task := range tasks {
		q.Send(locality.HintMsg{PID: task.PID(), Locality: 7})
	}
	k.RunFor(100 * time.Millisecond)

	if sched.HintsRedirected == 0 {
		t.Fatal("30 tasks on one hint never spilled past the hinted core")
	}
	if sched.HintsIgnored != 0 {
		t.Fatalf("%d hints ignored — a 10-core LLC domain should absorb the group", sched.HintsIgnored)
	}
	core7, ok := sched.GroupCore(7)
	if !ok {
		t.Fatal("group never placed")
	}
	for _, task := range tasks {
		if task.State() == kernel.StateDead {
			continue
		}
		if !topo.SameLLC(task.CPU(), core7) {
			t.Fatalf("task on cpu %d, outside group core %d's LLC domain", task.CPU(), core7)
		}
	}
}

func TestSyncParseHint(t *testing.T) {
	k, a, sched := rig()
	task := k.Spawn("s", policyLoc, sleeper(20*time.Microsecond, 100*time.Microsecond, 1000))
	q := a.CreateHintQueue(8)
	q.SendSync(locality.HintMsg{PID: task.PID(), Locality: 3})
	k.RunFor(20 * time.Millisecond)
	if _, ok := sched.GroupCore(3); !ok {
		t.Fatal("sync hint not applied")
	}
}
