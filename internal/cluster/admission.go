// Cluster admission is the fleet's front door: job offers pass through an
// overload.Controller before Submit, so a flash crowd sheds at the control
// plane instead of piling unbounded Pending jobs onto the placer. Shed
// offers with retries left re-offer themselves on the control-plane engine
// after the class backoff (bounded, per overload.ClassConfig.MaxRetries);
// completions feed back through the job state machine's done path, closing
// the inflight window. Brownout degradation stays machine-level (each
// machine's traffic driver samples its own shards); the cluster plane does
// admission and shedding only.
package cluster

import (
	"time"

	"enoki/internal/ktime"
	"enoki/internal/overload"
)

// Overload returns the cluster's admission controller, nil when
// Config.Admission is empty. Read its counters between runs; its
// conservation check is the fleet-level shed-accounting oracle.
func (c *Cluster) Overload() *overload.Controller { return c.adm }

// Backlog returns how many admitted jobs are not yet Done — the
// control-plane queue depth admission hysteresis samples.
func (c *Cluster) Backlog() int { return c.sched.live }

// PostAt schedules fn on the control-plane engine at absolute virtual time
// at (which must not be in the past). Traffic drivers use it for their
// arrival tick chains; fn runs as a control-plane event and may Offer or
// Submit.
func (c *Cluster) PostAt(at time.Duration, fn func()) {
	if c.closed {
		panic("cluster: PostAt on a closed cluster")
	}
	c.ctrl.PostAt(ktime.Time(0).Add(ktime.Duration(at)), fn)
}

// Offer runs one job through admission class class: Admitted submits the
// job, Retry re-offers it after the class backoff (self-driving, up to
// MaxRetries), Dropped sheds it for good. The returned verdict is the
// first attempt's; a retried offer's eventual fate shows up only in the
// controller's counters. Requires Config.Admission.
func (c *Cluster) Offer(class int, spec JobSpec) overload.Verdict {
	if c.adm == nil {
		panic("cluster: Offer without Config.Admission")
	}
	return c.offer(class, spec, 0)
}

func (c *Cluster) offer(class int, spec JobSpec, attempt int) overload.Verdict {
	v := c.adm.Admit(class, attempt)
	switch v {
	case overload.Admitted:
		id := c.Submit(spec)
		c.jobClass[id] = class
	case overload.Retry:
		c.ctrl.Post(ktime.Duration(c.adm.Backoff(class, attempt)), func() {
			c.offer(class, spec, attempt+1)
		})
	}
	return v
}

// jobDone closes the admission window of a completed job (no-op for jobs
// submitted directly, which never entered admission).
func (c *Cluster) jobDone(id int) {
	if c.adm == nil {
		return
	}
	if class, ok := c.jobClass[id]; ok {
		c.adm.Done(class)
	}
}
