package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestCPUSlotMapping(t *testing.T) {
	c := NewClassMetrics(1, "test", 4)
	if c.NCPUs() != 4 {
		t.Fatalf("NCPUs() = %d, want 4", c.NCPUs())
	}
	// Each real CPU gets a distinct slot; -1 and out-of-range ids share the
	// unattributed slot instead of panicking or allocating.
	if c.CPU(0) == c.CPU(1) {
		t.Error("CPU 0 and 1 share a slot")
	}
	if c.CPU(-1) != c.CPU(99) || c.CPU(-1) != c.CPU(-7) {
		t.Error("user-context and out-of-range ids should share the unattributed slot")
	}
	if c.CPU(-1) == c.CPU(0) {
		t.Error("unattributed slot collides with CPU 0")
	}
}

func TestTotalsAndSummarizeMergeAcrossCPUs(t *testing.T) {
	c := NewClassMetrics(1, "test", 2)
	c.CPU(0).Crossings = 3
	c.CPU(1).Crossings = 4
	c.CPU(-1).Crossings = 1
	c.CPU(0).Picks = 2
	c.CPU(1).Faults = 1
	c.CPU(0).DispatchLat.Record(100 * time.Nanosecond)
	c.CPU(1).DispatchLat.Record(300 * time.Nanosecond)

	crossings, picks, faults := c.Totals()
	if crossings != 8 || picks != 2 || faults != 1 {
		t.Errorf("Totals() = %d, %d, %d; want 8, 2, 1", crossings, picks, faults)
	}
	cs := c.Summarize()
	if cs.Crossings != 8 || cs.DispatchLat.Count != 2 {
		t.Errorf("summary = %+v", cs)
	}
	if cs.DispatchLat.Min > cs.DispatchLat.P50 || cs.DispatchLat.P50 > cs.DispatchLat.Max {
		t.Errorf("merged quantiles out of order: %+v", cs.DispatchLat)
	}
}

func TestSetRegisterAndOrdering(t *testing.T) {
	s := NewSet(4)
	s.Register(2, "beta")
	s.Register(0, "alpha")
	if !s.Has(2) || s.Has(1) {
		t.Error("Has() wrong after Register")
	}
	// Class() on an unregistered policy creates a placeholder; on a
	// registered one it returns the same object Register handed out.
	if s.Class(0) != s.Register(0, "") {
		t.Error("Class(0) is not the registered object")
	}
	if got := s.Class(7).Name; got != "policy-7" {
		t.Errorf("placeholder name = %q", got)
	}
	// Re-registering renames in place without discarding recorded data.
	s.Class(7).CPU(0).Picks = 5
	s.Register(7, "gamma")
	if s.Class(7).Name != "gamma" || s.Class(7).CPU(0).Picks != 5 {
		t.Error("Register dropped data or name on rename")
	}

	cls := s.Classes()
	for i := 1; i < len(cls); i++ {
		if cls[i-1].Policy >= cls[i].Policy {
			t.Fatalf("Classes() not sorted by policy: %d before %d", cls[i-1].Policy, cls[i].Policy)
		}
	}
	sums := s.Summaries()
	if len(sums) != 3 || sums[0].Name != "alpha" || sums[2].Name != "gamma" {
		t.Errorf("Summaries() = %+v", sums)
	}
	table := s.Table()
	for _, want := range []string{"class", "alpha", "beta", "gamma", "dispatch p50"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table() missing %q:\n%s", want, table)
		}
	}
}

// TestRecordPathZeroAlloc pins the metrics half of the hot-path invariant:
// once a class is registered, recording into any of its histograms or
// counters never allocates.
func TestRecordPathZeroAlloc(t *testing.T) {
	s := NewSet(8)
	s.Register(1, "enoki")
	avg := testing.AllocsPerRun(1000, func() {
		m := s.Class(1).CPU(3)
		m.Crossings++
		m.DispatchLat.Record(130 * time.Nanosecond)
		m.PickWait.RecordValue(2500)
		m.WakeToRun.RecordValue(8000)
		m.QueueDepth.RecordValue(3)
	})
	if avg != 0 {
		t.Errorf("record path: %v allocs/op, want 0", avg)
	}
}
