// Assembler for the vpol text format. A program is a header (queue
// declaration, optional slice) followed by the two hook sections. Example —
// the shipped dual-queue policy:
//
//	queues shared=2 local=0
//	slice 500us
//
//	enqueue:
//	        ldf r2, nice
//	        jltz r2, express
//	        enq shared, 1
//	        ret
//	express:
//	        enq shared, 0
//	        ret
//
//	pick:
//	        trypop shared, 0
//	        trypop shared, 1
//	        ret
//
// Comments run from ';' or '#' to end of line. Operands may be separated by
// commas or spaces. Registers are r0..r7; queue operands are the kind
// (shared|local) plus an index; branch targets are labels, scoped to their
// section. Assemble only parses — callers still run Verify (Load always
// does), but the assembler enforces the grammar strictly enough that
// anything it emits is structurally well-formed.
package vpol

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// AsmError reports an assembly failure with its 1-based source line.
type AsmError struct {
	Line   int
	Reason string
}

func (e *AsmError) Error() string {
	return fmt.Sprintf("vpol: asm line %d: %s", e.Line, e.Reason)
}

func aerr(line int, format string, args ...any) error {
	return &AsmError{Line: line, Reason: fmt.Sprintf(format, args...)}
}

// patch is an unresolved label reference.
type patch struct {
	pc    int
	label string
	line  int
}

// section accumulates one hook's code during assembly.
type section struct {
	code    []Inst
	labels  map[string]int
	patches []patch
}

// Assemble parses the text format into a Program. The result is unverified;
// run Verify (or just Load) before use.
func Assemble(src string) (*Program, error) {
	p := &Program{}
	sawQueues := false
	secs := map[string]*section{
		"enqueue": {labels: map[string]int{}},
		"pick":    {labels: map[string]int{}},
	}
	var cur *section

	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := raw
		if j := strings.IndexAny(text, ";#"); j >= 0 {
			text = text[:j]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		head := strings.ToLower(fields[0])

		// Section headers and labels end in ':'.
		if strings.HasSuffix(head, ":") && len(fields) == 1 {
			name := strings.TrimSuffix(head, ":")
			if s, ok := secs[name]; ok {
				cur = s
				continue
			}
			if cur == nil {
				return nil, aerr(line, "label %q outside any section", name)
			}
			if !validLabel(name) {
				return nil, aerr(line, "bad label %q", name)
			}
			if _, dup := cur.labels[name]; dup {
				return nil, aerr(line, "duplicate label %q", name)
			}
			cur.labels[name] = len(cur.code)
			continue
		}

		// Header directives before the first section.
		if cur == nil {
			switch head {
			case "queues":
				if sawQueues {
					return nil, aerr(line, "duplicate queues directive")
				}
				sawQueues = true
				for _, f := range fields[1:] {
					k, v, ok := strings.Cut(f, "=")
					n, err := strconv.Atoi(v)
					if !ok || err != nil {
						return nil, aerr(line, "bad queues operand %q (want shared=N or local=N)", f)
					}
					switch strings.ToLower(k) {
					case "shared":
						p.SharedQueues = n
					case "local":
						p.LocalQueues = n
					default:
						return nil, aerr(line, "unknown queue kind %q", k)
					}
				}
				continue
			case "slice":
				if len(fields) != 2 {
					return nil, aerr(line, "slice wants one duration operand")
				}
				if fields[1] == "0" {
					p.Slice = 0
					continue
				}
				d, err := time.ParseDuration(fields[1])
				if err != nil {
					return nil, aerr(line, "bad slice %q: %v", fields[1], err)
				}
				p.Slice = d
				continue
			default:
				return nil, aerr(line, "%q before any section (want queues/slice directives or enqueue:/pick:)", head)
			}
		}

		in, lbl, err := parseInst(line, head, fields[1:])
		if err != nil {
			return nil, err
		}
		if lbl != "" {
			cur.patches = append(cur.patches, patch{pc: len(cur.code), label: lbl, line: line})
		}
		cur.code = append(cur.code, in)
	}

	if !sawQueues {
		return nil, aerr(0, "missing queues directive")
	}
	for name, s := range secs {
		for _, pt := range s.patches {
			tgt, ok := s.labels[pt.label]
			if !ok {
				return nil, aerr(pt.line, "undefined label %q in %s", pt.label, name)
			}
			s.code[pt.pc].Imm = int64(tgt)
		}
	}
	p.Enqueue = secs["enqueue"].code
	p.Pick = secs["pick"].code
	if len(p.Enqueue) == 0 {
		return nil, aerr(0, "missing enqueue section")
	}
	if len(p.Pick) == 0 {
		return nil, aerr(0, "missing pick section")
	}
	return p, nil
}

// MustAssemble is Assemble for known-good sources (the shipped examples).
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
			return false
		}
	}
	return r0f(s)
}

// r0f rejects label names that collide with register syntax.
func r0f(s string) bool {
	if len(s) == 2 && s[0] == 'r' && s[1] >= '0' && s[1] <= '9' {
		return false
	}
	return true
}

var fieldNames = map[string]Field{
	"pid":      FieldPID,
	"cpu":      FieldCPU,
	"nice":     FieldNice,
	"weight":   FieldWeight,
	"vruntime": FieldVruntime,
	"lastcpu":  FieldLastCPU,
	"flags":    FieldFlags,
}

func parseReg(line int, s string) (uint8, error) {
	ls := strings.ToLower(s)
	if len(ls) >= 2 && ls[0] == 'r' {
		if n, err := strconv.Atoi(ls[1:]); err == nil && n >= 0 && n < NumRegs {
			return uint8(n), nil
		}
	}
	return 0, aerr(line, "bad register %q (want r0..r%d)", s, NumRegs-1)
}

func parseImm(line int, s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, aerr(line, "bad immediate %q", s)
	}
	return v, nil
}

func parseQueue(line int, ops []string) (kind uint8, idx int64, err error) {
	if len(ops) != 2 {
		return 0, 0, aerr(line, "queue operand wants <shared|local> <index>")
	}
	switch strings.ToLower(ops[0]) {
	case "shared":
		kind = QShared
	case "local":
		kind = QLocal
	default:
		return 0, 0, aerr(line, "bad queue kind %q (want shared or local)", ops[0])
	}
	idx, err = parseImm(line, ops[1])
	return kind, idx, err
}

// parseInst assembles one instruction; a non-empty label return marks an
// unresolved branch target to patch.
func parseInst(line int, mn string, ops []string) (Inst, string, error) {
	want := func(n int) error {
		if len(ops) != n {
			return aerr(line, "%s wants %d operand(s), got %d", mn, n, len(ops))
		}
		return nil
	}
	regReg := func(op Op) (Inst, string, error) {
		if err := want(2); err != nil {
			return Inst{}, "", err
		}
		a, err := parseReg(line, ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		b, err := parseReg(line, ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: op, A: a, B: b}, "", nil
	}
	regImm := func(op Op) (Inst, string, error) {
		if err := want(2); err != nil {
			return Inst{}, "", err
		}
		a, err := parseReg(line, ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		imm, err := parseImm(line, ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: op, A: a, Imm: imm}, "", nil
	}
	regRegLabel := func(op Op) (Inst, string, error) {
		if err := want(3); err != nil {
			return Inst{}, "", err
		}
		a, err := parseReg(line, ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		b, err := parseReg(line, ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: op, A: a, B: b}, strings.ToLower(ops[2]), nil
	}
	regLabel := func(op Op) (Inst, string, error) {
		if err := want(2); err != nil {
			return Inst{}, "", err
		}
		a, err := parseReg(line, ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: op, A: a}, strings.ToLower(ops[1]), nil
	}
	queueOp := func(op Op) (Inst, string, error) {
		kind, idx, err := parseQueue(line, ops)
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: op, A: kind, Imm: idx}, "", nil
	}

	switch mn {
	case "ret":
		if err := want(0); err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: OpRet}, "", nil
	case "ldi":
		return regImm(OpLdi)
	case "addi":
		return regImm(OpAddi)
	case "mov":
		return regReg(OpMov)
	case "add":
		return regReg(OpAdd)
	case "sub":
		return regReg(OpSub)
	case "mul":
		return regReg(OpMul)
	case "div":
		return regReg(OpDiv)
	case "mod":
		return regReg(OpMod)
	case "and":
		return regReg(OpAnd)
	case "or":
		return regReg(OpOr)
	case "xor":
		return regReg(OpXor)
	case "jmp":
		if err := want(1); err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: OpJmp}, strings.ToLower(ops[0]), nil
	case "jeq":
		return regRegLabel(OpJeq)
	case "jne":
		return regRegLabel(OpJne)
	case "jlt":
		return regRegLabel(OpJlt)
	case "jle":
		return regRegLabel(OpJle)
	case "jgt":
		return regRegLabel(OpJgt)
	case "jge":
		return regRegLabel(OpJge)
	case "jeqz":
		return regLabel(OpJeqz)
	case "jnez":
		return regLabel(OpJnez)
	case "jltz":
		return regLabel(OpJltz)
	case "jgez":
		return regLabel(OpJgez)
	case "loop":
		if err := want(2); err != nil {
			return Inst{}, "", err
		}
		n, err := parseImm(line, ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		if n < 1 || n > MaxLoopIter {
			return Inst{}, "", aerr(line, "loop count %d out of range [1,%d]", n, MaxLoopIter)
		}
		return Inst{Op: OpLoop, B: uint8(n)}, strings.ToLower(ops[1]), nil
	case "ldf":
		if err := want(2); err != nil {
			return Inst{}, "", err
		}
		a, err := parseReg(line, ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		f, ok := fieldNames[strings.ToLower(ops[1])]
		if !ok {
			return Inst{}, "", aerr(line, "unknown task field %q", ops[1])
		}
		return Inst{Op: OpLdf, A: a, B: uint8(f)}, "", nil
	case "qlen":
		if len(ops) != 3 {
			return Inst{}, "", aerr(line, "qlen wants rD <shared|local> <index>")
		}
		a, err := parseReg(line, ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		kind, idx, err := parseQueue(line, ops[1:])
		if err != nil {
			return Inst{}, "", err
		}
		return Inst{Op: OpQlen, A: a, B: kind, Imm: idx}, "", nil
	case "enq":
		return queueOp(OpEnq)
	case "trypop":
		return queueOp(OpTryPop)
	default:
		return Inst{}, "", aerr(line, "unknown mnemonic %q", mn)
	}
}
