package kernel

import (
	"testing"
	"time"

	"enoki/internal/sim"
)

const testPolicyRT = 5

func rtRig() (*Kernel, *RT) {
	eng := sim.New()
	k := New(eng, Machine8(), DefaultCosts())
	rt := NewRT(k, 10*time.Millisecond)
	k.RegisterClass(testPolicyRT, rt) // above CFS
	k.RegisterClass(testPolicyCFS, NewCFS(k))
	return k, rt
}

func TestRTPreemptsCFS(t *testing.T) {
	k, _ := rtRig()
	batch := k.Spawn("batch", testPolicyCFS, spinFor(time.Hour, time.Millisecond),
		WithAffinity(SingleCPU(0)))
	k.RunFor(time.Millisecond)
	if batch.State() != StateRunning {
		t.Fatalf("batch state = %v", batch.State())
	}
	var lat time.Duration
	rtTask := k.Spawn("rt", testPolicyRT, spinFor(5*time.Millisecond, time.Millisecond),
		WithAffinity(SingleCPU(0)),
		WithWakeObserver(func(d time.Duration) { lat = d }))
	k.RunFor(100 * time.Microsecond)
	if rtTask.State() != StateRunning {
		t.Fatalf("RT task did not preempt CFS: %v", rtTask.State())
	}
	_ = lat
	k.RunFor(20 * time.Millisecond)
	if rtTask.State() != StateDead {
		t.Fatal("RT task unfinished")
	}
	if batch.SumExec() < 10*time.Millisecond {
		t.Fatalf("CFS starved beyond the RT task's needs: %v", batch.SumExec())
	}
}

func TestRTPriorityOrdering(t *testing.T) {
	k, rt := rtRig()
	var order []int
	mk := func(id, prio int) *Task {
		task := k.Spawn("rt", testPolicyRT, BehaviorFunc(
			func(kk *Kernel, tk *Task) Action {
				order = append(order, id)
				return Action{Run: time.Millisecond, Op: OpExit}
			}), WithAffinity(SingleCPU(0)))
		rt.SetRTParams(task, RTParams{Prio: prio})
		return task
	}
	// Created low-prio first; the high-prio must run first regardless.
	mk(1, 10)
	mk(2, 50)
	mk(3, 30)
	k.RunFor(50 * time.Millisecond)
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 1 {
		t.Fatalf("RT order = %v, want [2 3 1]", order)
	}
}

func TestRTFIFORunsToCompletion(t *testing.T) {
	// Equal-priority SCHED_FIFO: first runs until it blocks/exits.
	k, _ := rtRig()
	var second *Task
	firstDone := false
	k.Spawn("f1", testPolicyRT, BehaviorFunc(func(kk *Kernel, tk *Task) Action {
		if second != nil && second.SumExec() > 0 && !firstDone {
			// Should never happen before first finishes.
			t.Error("FIFO peer ran before first completed")
		}
		if tk.SumExec() >= 30*time.Millisecond {
			firstDone = true
			return Action{Op: OpExit}
		}
		return Action{Run: time.Millisecond, Op: OpContinue}
	}), WithAffinity(SingleCPU(0)))
	second = k.Spawn("f2", testPolicyRT, spinFor(5*time.Millisecond, time.Millisecond),
		WithAffinity(SingleCPU(0)))
	k.RunFor(100 * time.Millisecond)
	if !firstDone || second.State() != StateDead {
		t.Fatalf("FIFO completion broken: firstDone=%v second=%v", firstDone, second.State())
	}
}

func TestRTRoundRobinShares(t *testing.T) {
	k, rt := rtRig()
	var a, b *Task
	a = k.Spawn("rr1", testPolicyRT, spinFor(time.Hour, time.Millisecond), WithAffinity(SingleCPU(0)))
	b = k.Spawn("rr2", testPolicyRT, spinFor(time.Hour, time.Millisecond), WithAffinity(SingleCPU(0)))
	rt.SetRTParams(a, RTParams{Prio: 20, RoundRobin: true})
	rt.SetRTParams(b, RTParams{Prio: 20, RoundRobin: true})
	k.RunFor(200 * time.Millisecond)
	ra, rb := a.SumExec(), b.SumExec()
	if ra == 0 || rb == 0 {
		t.Fatalf("RR starved a peer: %v / %v", ra, rb)
	}
	ratio := float64(ra) / float64(rb)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("RR share ratio = %.2f", ratio)
	}
}

func TestRTSleepWakeCycle(t *testing.T) {
	k, rt := rtRig()
	n := 0
	task := k.Spawn("period", testPolicyRT, BehaviorFunc(func(kk *Kernel, tk *Task) Action {
		n++
		if n > 100 {
			return Action{Op: OpExit}
		}
		return Action{Run: 100 * time.Microsecond, Op: OpSleep, SleepFor: 400 * time.Microsecond}
	}))
	rt.SetRTParams(task, RTParams{Prio: 80})
	k.RunFor(time.Second)
	if task.State() != StateDead {
		t.Fatalf("periodic RT task stalled at %d rounds", n)
	}
}
