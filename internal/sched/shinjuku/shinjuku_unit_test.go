package shinjuku

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/schedtest"
)

func unit() (*Sched, *schedtest.Env) {
	env := schedtest.NewEnv(4)
	return New(env, 8, 10*time.Microsecond), env
}

func TestUnitFCFSAcrossQueues(t *testing.T) {
	s, _ := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	s.TaskNew(2, 0, true, nil, schedtest.Tok(2, 1, 1))
	s.TaskNew(3, 0, true, nil, schedtest.Tok(3, 0, 1))
	// An empty cpu pulls the globally oldest waiting task from a BUSY
	// queue (cpu0 has two waiting, so its head is stealable).
	pid, ok := s.Balance(3)
	if !ok || pid != 1 {
		t.Fatalf("balance = %d,%v; want oldest (1)", pid, ok)
	}
	// Busy queues don't pull.
	if _, ok := s.Balance(0); ok {
		t.Fatal("non-empty cpu pulled")
	}
}

func TestUnitBalanceLeavesLoneWakeOnIdleCore(t *testing.T) {
	s, _ := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 1, 1))
	if _, ok := s.Balance(2); ok {
		t.Fatal("stole a lone wakeup racing its own core's C-state exit")
	}
}

func TestUnitTimerArming(t *testing.T) {
	s, env := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	s.PickNextTask(0, nil, 0)
	if len(env.Timers) != 1 {
		t.Fatalf("timers = %d", len(env.Timers))
	}
	// Uncontended pick arms the long quantum.
	if env.Timers[0].D != time.Millisecond {
		t.Fatalf("uncontended quantum = %v", env.Timers[0].D)
	}
	// A wakeup behind the running task re-arms the tight quantum.
	s.TaskNew(2, 0, false, nil, nil)
	s.TaskWakeup(2, 0, true, 0, 0, schedtest.Tok(2, 0, 1))
	last := env.Timers[len(env.Timers)-1]
	if last.CPU != 0 || last.D != 10*time.Microsecond {
		t.Fatalf("contended re-arm = %+v", last)
	}
	// Contended pick arms the tight quantum too.
	s.TaskPreempt(1, 0, 0, true, schedtest.Tok(1, 0, 2))
	s.PickNextTask(0, nil, 0)
	last = env.Timers[len(env.Timers)-1]
	if last.D != 10*time.Microsecond {
		t.Fatalf("contended pick quantum = %v", last.D)
	}
}

func TestUnitPreemptGoesToGlobalTail(t *testing.T) {
	s, _ := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	s.PickNextTask(0, nil, 0)
	s.TaskNew(2, 0, true, nil, schedtest.Tok(2, 0, 1))
	s.TaskPreempt(1, 10*time.Microsecond, 0, true, schedtest.Tok(1, 0, 2))
	if got := s.PickNextTask(0, nil, 0); got.PID() != 2 {
		t.Fatalf("preempted task kept its slot: %d", got.PID())
	}
	if s.Preemptions != 1 {
		t.Fatalf("Preemptions = %d", s.Preemptions)
	}
}

func TestUnitMigratePreservesArrivalOrder(t *testing.T) {
	s, _ := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1)) // oldest
	s.TaskNew(2, 0, true, nil, schedtest.Tok(2, 1, 1))
	// Move task 1 to cpu1: it must insert AHEAD of task 2 (older seq).
	old := s.MigrateTaskRQ(1, 1, schedtest.Tok(1, 1, 2))
	if old == nil || old.PID() != 1 {
		t.Fatalf("old token = %v", old)
	}
	if got := s.PickNextTask(1, nil, 0); got.PID() != 1 {
		t.Fatalf("arrival order lost on migrate: %d", got.PID())
	}
}

func TestUnitLifecycle(t *testing.T) {
	s, _ := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	got := s.PickNextTask(0, nil, 0)
	s.PntErr(0, 1, core.PickStale, got)
	if s.PickNextTask(0, nil, 0) != got {
		t.Fatal("pnt_err token lost")
	}
	s.TaskBlocked(1, 0, 0)
	s.TaskWakeup(1, 0, true, 0, 2, schedtest.Tok(1, 2, 2))
	if dep := s.TaskDeparted(1, 2); dep == nil || dep.Gen() != 2 {
		t.Fatalf("departed = %v", dep)
	}
	s.TaskDead(99) // unknown: no-op
	// Yield requeues.
	s.TaskNew(5, 0, true, nil, schedtest.Tok(5, 0, 1))
	s.PickNextTask(0, nil, 0)
	s.TaskYield(5, 0, 0, schedtest.Tok(5, 0, 2))
	if got := s.PickNextTask(0, nil, 0); got == nil || got.PID() != 5 {
		t.Fatal("yield lost the task")
	}
	s.TaskDead(5)
	if _, ok := s.Balance(1); ok {
		t.Fatal("dead task still balancing")
	}
}

func TestUnitAffinityRespected(t *testing.T) {
	s, _ := unit()
	s.TaskNew(1, 0, true, []int{2}, schedtest.Tok(1, 2, 1))
	if got := s.SelectTaskRQ(1, 0, true); got != 2 {
		t.Fatalf("select ignored affinity: %d", got)
	}
	if _, ok := s.Balance(3); ok {
		t.Fatal("balance ignored affinity")
	}
	s.TaskAffinityChanged(1, nil) // widen
	s.TaskNew(2, 0, true, nil, schedtest.Tok(2, 2, 1))
	if _, ok := s.Balance(3); !ok {
		t.Fatal("widened affinity still restricted")
	}
}

func TestUnitUpgradeCarriesQueues(t *testing.T) {
	s, env := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	out := s.ReregisterPrepare()
	s2 := New(env, 8, 0)
	s2.ReregisterInit(&core.TransferIn{State: out.State})
	if got := s2.PickNextTask(0, nil, 0); got == nil || got.PID() != 1 {
		t.Fatal("queue lost across upgrade")
	}
}

func TestUnitDefaultSlice(t *testing.T) {
	env := schedtest.NewEnv(2)
	s := New(env, 8, 0)
	if s.slice != DefaultSlice {
		t.Fatalf("default slice = %v", s.slice)
	}
}

func TestUnitDegradedDropsTightSlice(t *testing.T) {
	s, env := unit()
	// Two tasks waiting on cpu 0: a contended pick arms the tight quantum.
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	s.TaskNew(2, 0, true, nil, schedtest.Tok(2, 0, 1))
	s.PickNextTask(0, nil, 0)
	if got := env.Timers[len(env.Timers)-1].D; got != 10*time.Microsecond {
		t.Fatalf("contended healthy quantum = %v, want 10µs", got)
	}

	// Degraded: the same contended pick runs at the long quantum, and a
	// wakeup behind a running task no longer slices it tightly.
	s.SetDegraded(true)
	s.TaskNew(3, 0, true, nil, schedtest.Tok(3, 0, 1))
	s.PickNextTask(0, nil, 0)
	if got := env.Timers[len(env.Timers)-1].D; got != time.Millisecond {
		t.Fatalf("contended degraded quantum = %v, want 1ms", got)
	}
	s.TaskNew(4, 0, true, nil, schedtest.Tok(4, 0, 1))
	s.TaskWakeup(4, 0, false, 0, 0, schedtest.Tok(4, 0, 1))
	if got := env.Timers[len(env.Timers)-1].D; got != time.Millisecond {
		t.Fatalf("degraded wakeup slice = %v, want 1ms", got)
	}

	// Recovery restores the tight quantum.
	s.SetDegraded(false)
	s.TaskWakeup(4, 0, false, 0, 0, schedtest.Tok(4, 0, 1))
	if got := env.Timers[len(env.Timers)-1].D; got != 10*time.Microsecond {
		t.Fatalf("recovered wakeup slice = %v, want 10µs", got)
	}
}
