# Development entry points. `make check` is the tier-1 gate; `make bench`
# regenerates the hot-path benchmark snapshot committed as
# BENCH_hotpath.json (compare runs with benchstat on `go test -bench` output).

GO ?= go

.PHONY: check build test race vet bench quick

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/enokibench -benchjson BENCH_hotpath.json

# Fast full-suite pass of every table/figure, fanned out across all cores.
quick:
	$(GO) run ./cmd/enokibench -quick -parallel $$($(GO) env GOMAXPROCS 2>/dev/null || nproc)
