// Command enoki-replay replays a recorded scheduler log at userspace
// (§3.4): the exact same scheduler code that ran in the simulated kernel is
// driven from the log, with lock acquisitions gated into their recorded
// order, and every decision validated against the recording.
//
// Usage:
//
//	enoki-replay [-sched wfq|fifo|shinjuku|locality] [-cpus N] <log-file>
//
// Record logs are produced by attaching record.New to an adapter (see
// examples/record-replay, which writes one and replays it).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enoki/internal/core"
	"enoki/internal/replay"
	"enoki/internal/sched/fifo"
	"enoki/internal/sched/locality"
	"enoki/internal/sched/shinjuku"
	"enoki/internal/sched/wfq"
)

func main() {
	schedName := flag.String("sched", "wfq", "scheduler module the log was recorded against")
	cpus := flag.Int("cpus", 8, "CPU count of the recorded machine")
	policy := flag.Int("policy", 1, "policy number the module registered under")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: enoki-replay [-sched name] [-cpus N] <log-file>")
		os.Exit(2)
	}

	var factory func(core.Env) core.Scheduler
	switch *schedName {
	case "wfq":
		factory = func(env core.Env) core.Scheduler { return wfq.New(env, *policy) }
	case "fifo":
		factory = func(env core.Env) core.Scheduler { return fifo.New(env, *policy) }
	case "shinjuku":
		factory = func(env core.Env) core.Scheduler { return shinjuku.New(env, *policy, 0) }
	case "locality":
		factory = func(env core.Env) core.Scheduler { return locality.New(env, *policy) }
	default:
		fmt.Fprintf(os.Stderr, "enoki-replay: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "enoki-replay: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	res, err := replay.Replay(f, replay.Config{NumCPUs: *cpus}, factory)
	if err != nil {
		fmt.Fprintf(os.Stderr, "enoki-replay: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("replayed %d messages, %d lock ops in %v (parse %v)\n",
		res.Messages, res.LockOps, res.Elapsed.Round(time.Millisecond),
		res.ParseTime.Round(time.Millisecond))
	if len(res.Divergences) == 0 {
		fmt.Println("scheduler decisions match the recording exactly")
		return
	}
	fmt.Printf("%d divergences from the recording:\n", len(res.Divergences))
	for _, d := range res.Divergences {
		fmt.Println("  ", d)
	}
	os.Exit(1)
}
