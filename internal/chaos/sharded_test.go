package chaos

import (
	"bytes"
	"testing"
	"time"
)

// TestShardedCampaignIdentity is the chaos arm of the sharded determinism
// gate: with kernel fault windows armed on every shard, the serial and
// parallel drives of the same seeded campaign must agree on every counter
// and produce byte-identical per-shard record logs. Fault draws happen
// inside shard event closures, so this also proves the injectors stay
// shard-owned under the parallel drive.
func TestShardedCampaignIdentity(t *testing.T) {
	for _, seed := range []uint64{1, 0x5eed, 0xbeefcafe} {
		serial := ShardedCampaign(seed, "wfq", 120*time.Millisecond, 16, false)
		par := ShardedCampaign(seed, "wfq", 120*time.Millisecond, 16, true)

		if serial.MsgsDelivered == 0 {
			t.Fatalf("seed %#x: no cross-shard messages delivered", seed)
		}
		if serial.EventsFired != par.EventsFired || serial.CtxSwitches != par.CtxSwitches {
			t.Fatalf("seed %#x: serial fired %d events / %d switches, parallel %d / %d",
				seed, serial.EventsFired, serial.CtxSwitches, par.EventsFired, par.CtxSwitches)
		}
		if serial.WorkloadDone != par.WorkloadDone || serial.PingersDone != par.PingersDone {
			t.Fatalf("seed %#x: completion diverges: %d/%d workload, %d/%d pingers",
				seed, serial.WorkloadDone, par.WorkloadDone, serial.PingersDone, par.PingersDone)
		}
		for _, v := range serial.Violations {
			t.Errorf("seed %#x serial: %s", seed, v)
		}
		for _, v := range par.Violations {
			t.Errorf("seed %#x parallel: %s", seed, v)
		}
		for i := range serial.Logs {
			if !bytes.Equal(serial.Logs[i], par.Logs[i]) {
				j := 0
				for j < len(serial.Logs[i]) && j < len(par.Logs[i]) && serial.Logs[i][j] == par.Logs[i][j] {
					j++
				}
				t.Fatalf("seed %#x shard %d: record logs diverge (%d vs %d bytes, first difference at byte %d)",
					seed, i, len(serial.Logs[i]), len(par.Logs[i]), j)
			}
			if len(serial.Logs[i]) == 0 {
				t.Errorf("seed %#x shard %d: empty record log", seed, i)
			}
		}
	}
}

// TestShardedCampaignSeedsDiffer guards against the campaign ignoring its
// seed: two different seeds must not produce the same record bytes.
func TestShardedCampaignSeedsDiffer(t *testing.T) {
	a := ShardedCampaign(7, "wfq", 60*time.Millisecond, 12, false)
	b := ShardedCampaign(8, "wfq", 60*time.Millisecond, 12, false)
	same := true
	for i := range a.Logs {
		if !bytes.Equal(a.Logs[i], b.Logs[i]) {
			same = false
		}
	}
	if same {
		t.Error("campaigns with different seeds produced identical record logs")
	}
}
