package workload

import (
	"time"

	"enoki/internal/arachne"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/sched/locality"
	"enoki/internal/stats"
)

// SchbenchConfig describes a schbench run: MessageThreads message threads,
// each paired with WorkersPerMsg workers; every round the message thread
// wakes its workers, the workers think, respond, and sleep. The benchmark
// reports worker wakeup latency (wake posted → worker running).
type SchbenchConfig struct {
	Policy         int
	MessageThreads int
	WorkersPerMsg  int
	Warmup         time.Duration
	Duration       time.Duration
	// WorkerBurst is the mean per-round worker think time (uniform
	// ±50%); schbench's default message/worker loop lands near 100 µs.
	WorkerBurst time.Duration
	// MsgWork is the message thread's per-round bookkeeping.
	MsgWork time.Duration
	// RoundPause, when set, makes the message thread sleep between
	// rounds (the Table 6 variant paces rounds instead of saturating).
	RoundPause time.Duration
	Seed       uint64

	// OneCore pins every thread to CPU 0 (the Table 6 cgroup baseline).
	OneCore bool
	// Hints, when non-nil, sends locality co-location hints: each
	// message thread and its workers form one group (Table 6 "Hints").
	Hints *enokic.UserQueue
}

// SchbenchResult is the wakeup-latency distribution.
type SchbenchResult struct {
	P50, P99, Mean time.Duration
	Samples        uint64
}

func (c *SchbenchConfig) defaults() {
	if c.WorkerBurst == 0 {
		c.WorkerBurst = 100 * time.Microsecond
	}
	if c.MsgWork == 0 {
		c.MsgWork = 20 * time.Microsecond
	}
	if c.Warmup == 0 {
		c.Warmup = 5 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 0x5cb
	}
}

// schGroup is one message thread plus its workers. The round counter plus
// futex-style rechecks make the protocol immune to wakes racing with
// in-flight blocks.
type schGroup struct {
	msg       *kernel.Task
	workers   []*kernel.Task
	round     int
	responded int
	ready     bool
}

// RunSchbench executes the benchmark on kernel k and returns worker wakeup
// latencies.
func RunSchbench(k *kernel.Kernel, cfg SchbenchConfig) SchbenchResult {
	cfg.defaults()
	rng := ktime.NewRand(cfg.Seed)
	var hist stats.Histogram
	warmupEnd := k.Now().Add(cfg.Warmup)

	var opts []kernel.SpawnOption
	if cfg.OneCore {
		opts = append(opts, kernel.WithAffinity(kernel.SingleCPU(0)))
	}

	for g := 0; g < cfg.MessageThreads; g++ {
		grp := &schGroup{}
		for w := 0; w < cfg.WorkersPerMsg; w++ {
			grp := grp
			burst := cfg.WorkerBurst
			seenRound := 0
			thinking := false
			behavior := kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
				if thinking {
					// Think segment done: respond.
					thinking = false
					grp.responded++
					var wake []*kernel.Task
					if grp.ready && grp.responded >= len(grp.workers) {
						wake = []*kernel.Task{grp.msg}
					}
					if grp.round != seenRound {
						// Next round already started; run it.
						seenRound = grp.round
						thinking = true
						return kernel.Action{
							Run:  rng.UniformDuration(burst/2, burst+burst/2),
							Wake: wake, Op: kernel.OpContinue,
						}
					}
					return kernel.Action{Wake: wake, Op: kernel.OpBlock,
						Recheck: func() bool { return grp.round != seenRound }}
				}
				if grp.round == seenRound {
					// Spurious wake.
					return kernel.Action{Op: kernel.OpBlock,
						Recheck: func() bool { return grp.round != seenRound }}
				}
				seenRound = grp.round
				thinking = true
				return kernel.Action{
					Run: rng.UniformDuration(burst/2, burst+burst/2),
					Op:  kernel.OpContinue,
				}
			})
			wopts := append([]kernel.SpawnOption{
				kernel.WithWakeObserver(func(lat time.Duration) {
					if k.Now().After(warmupEnd) {
						hist.Record(lat)
					}
				}),
			}, opts...)
			worker := k.Spawn("schbench-worker", cfg.Policy, behavior, wopts...)
			grp.workers = append(grp.workers, worker)
		}
		first := true
		dispatched := false
		msgBehavior := kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			if first {
				first = false
				// Wait for the start kick.
				return kernel.Action{Op: kernel.OpBlock,
					Recheck: func() bool { return grp.ready }}
			}
			if dispatched {
				// Round dispatched; sleep until all workers respond.
				dispatched = false
				return kernel.Action{Op: kernel.OpBlock,
					Recheck: func() bool { return grp.responded >= len(grp.workers) }}
			}
			if cfg.RoundPause > 0 && grp.responded >= len(grp.workers) {
				// Paced mode: breathe between rounds.
				grp.responded = -1 << 20 // consume the round marker
				return kernel.Action{Op: kernel.OpSleep, SleepFor: cfg.RoundPause}
			}
			dispatched = true
			grp.responded = 0
			grp.round++
			return kernel.Action{Run: cfg.MsgWork, Wake: grp.workers, Op: kernel.OpContinue}
		})
		grp.msg = k.Spawn("schbench-msg", cfg.Policy, msgBehavior, opts...)
		if cfg.Hints != nil {
			group := g + 1
			cfg.Hints.Send(locality.HintMsg{PID: grp.msg.PID(), Locality: group})
			for _, w := range grp.workers {
				cfg.Hints.Send(locality.HintMsg{PID: w.PID(), Locality: group})
			}
		}
		// Kick off the first round once the workers' initial runs have
		// drained.
		k.Engine().After(time.Millisecond, func() {
			grp.ready = true
			grp.responded = 0
			k.Wake(grp.msg)
		})
	}

	k.RunFor(cfg.Warmup + cfg.Duration)
	return SchbenchResult{
		P50:     hist.Quantile(0.50),
		P99:     hist.Quantile(0.99),
		Mean:    hist.Mean(),
		Samples: hist.Count(),
	}
}

// RunArachneSchbench reproduces the schbench message/worker pattern on
// Arachne user threads: the "message" continuation dispatches worker user
// threads and the measured latency is submit→dispatch, which never touches
// the kernel (the ~1 µs rows of Table 4).
func RunArachneSchbench(k *kernel.Kernel, rt *arachne.Runtime, cfg SchbenchConfig) SchbenchResult {
	cfg.defaults()
	rng := ktime.NewRand(cfg.Seed)
	var hist stats.Histogram
	k.RunFor(2 * time.Millisecond)
	warmupEnd := k.Now().Add(cfg.Warmup / 10) // user-level warms up fast
	end := warmupEnd.Add(cfg.Duration / 10)

	for g := 0; g < cfg.MessageThreads; g++ {
		var round func()
		round = func() {
			if k.Now().After(end) {
				return
			}
			pendingWorkers := cfg.WorkersPerMsg
			for w := 0; w < cfg.WorkersPerMsg; w++ {
				submitted := k.Now()
				think := rng.UniformDuration(cfg.WorkerBurst/2, cfg.WorkerBurst*3/2)
				rt.Submit(arachne.UserThread{
					Service: think,
					Start: func() {
						if k.Now().After(warmupEnd) {
							hist.Record(k.Now().Sub(submitted))
						}
					},
					Done: func() {
						pendingWorkers--
						if pendingWorkers == 0 {
							// Message thread runs again next round.
							rt.Submit(arachne.UserThread{Service: cfg.MsgWork, Done: round})
						}
					},
				})
			}
		}
		k.Engine().After(time.Millisecond, round)
	}
	k.RunFor(cfg.Warmup/10 + cfg.Duration/10 + 10*time.Millisecond)
	return SchbenchResult{
		P50:     hist.Quantile(0.50),
		P99:     hist.Quantile(0.99),
		Mean:    hist.Mean(),
		Samples: hist.Count(),
	}
}
