package locality

import (
	"testing"

	"enoki/internal/core"
	"enoki/internal/schedtest"
)

func unit() (*Sched, *schedtest.Env) {
	env := schedtest.NewEnv(4)
	return New(env, 9), env
}

func TestUnitPickFIFO(t *testing.T) {
	s, _ := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 2, 1))
	s.TaskNew(2, 0, true, nil, schedtest.Tok(2, 2, 1))
	if got := s.PickNextTask(2, nil, 0); got.PID() != 1 {
		t.Fatalf("first = %d", got.PID())
	}
	if got := s.PickNextTask(2, nil, 0); got.PID() != 2 {
		t.Fatalf("second = %d", got.PID())
	}
	if s.PickNextTask(2, nil, 0) != nil {
		t.Fatal("empty pick")
	}
}

func TestUnitHintedPlacementSticksPerGroup(t *testing.T) {
	s, _ := unit()
	s.TaskNew(1, 0, false, nil, nil)
	s.TaskNew(2, 0, false, nil, nil)
	s.ParseHint(HintMsg{PID: 1, Locality: 5})
	s.ParseHint(HintMsg{PID: 2, Locality: 5})
	c1 := s.SelectTaskRQ(1, 3, true)
	c2 := s.SelectTaskRQ(2, 0, true)
	if c1 != c2 {
		t.Fatalf("group split: %d vs %d", c1, c2)
	}
	if got, ok := s.GroupCore(5); !ok || got != c1 {
		t.Fatalf("GroupCore = %d/%v", got, ok)
	}
	if s.HintsApplied < 2 {
		t.Fatalf("HintsApplied = %d", s.HintsApplied)
	}
}

func TestUnitDistinctGroupsSpread(t *testing.T) {
	s, _ := unit()
	for pid := 1; pid <= 3; pid++ {
		s.TaskNew(pid, 0, false, nil, nil)
		s.ParseHint(HintMsg{PID: pid, Locality: pid})
	}
	cores := map[int]bool{}
	for pid := 1; pid <= 3; pid++ {
		cores[s.SelectTaskRQ(pid, 0, true)] = true
	}
	if len(cores) != 3 {
		t.Fatalf("3 groups on %d cores", len(cores))
	}
}

func TestUnitIgnoresBadHintType(t *testing.T) {
	s, _ := unit()
	s.ParseHint("not a hint") // must not panic or record anything
	if s.HintsApplied != 0 {
		t.Fatal("bad hint applied")
	}
}

func TestUnitTickRoundRobins(t *testing.T) {
	s, env := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	s.TaskNew(2, 0, true, nil, schedtest.Tok(2, 0, 1))
	s.PickNextTask(0, nil, 0)
	s.TaskTick(0, false, 1, 0)
	if len(env.Rescheds) == 0 {
		t.Fatal("tick with waiter did not resched")
	}
	// Empty queue: no resched.
	env.Rescheds = nil
	s.PickNextTask(0, nil, 0)
	s.TaskTick(0, false, 2, 0)
	if len(env.Rescheds) != 0 {
		t.Fatal("tick without waiter resched")
	}
}

func TestUnitLifecycleHooks(t *testing.T) {
	s, _ := unit()
	proof := schedtest.Tok(1, 1, 1)
	s.TaskNew(1, 0, true, nil, proof)
	s.ParseHint(HintMsg{PID: 1, Locality: 3})

	// Preempt/yield requeue.
	got := s.PickNextTask(1, nil, 0)
	s.TaskPreempt(1, 0, 1, true, schedtest.Tok(1, 1, 2))
	got = s.PickNextTask(1, nil, 0)
	s.TaskYield(1, 0, 1, schedtest.Tok(1, 1, 3))
	got = s.PickNextTask(1, nil, 0)
	if got == nil || got.PID() != 1 {
		t.Fatalf("requeue chain broke: %v", got)
	}

	// Blocked clears the held token.
	s.TaskBlocked(1, 0, 1)

	// Wake, migrate, depart.
	s.TaskWakeup(1, 0, true, 1, 2, schedtest.Tok(1, 2, 4))
	old := s.MigrateTaskRQ(1, 3, schedtest.Tok(1, 3, 5))
	if old == nil || old.Gen() != 4 {
		t.Fatalf("migrate returned %v", old)
	}
	dep := s.TaskDeparted(1, 3)
	if dep == nil || dep.Gen() != 5 {
		t.Fatalf("departed returned %v", dep)
	}
	// Dead on an unknown pid is a no-op.
	s.TaskDead(99)
}

func TestUnitPntErrRestores(t *testing.T) {
	s, _ := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	got := s.PickNextTask(0, nil, 0)
	s.PntErr(0, 1, core.PickWrongCPU, got)
	if s.PickNextTask(0, nil, 0) != got {
		t.Fatal("pnt_err token lost")
	}
}

func TestUnitQueueRegistration(t *testing.T) {
	s, _ := unit()
	q := core.NewHintQueue(4)
	if id := s.RegisterQueue(q); id != 1 {
		t.Fatalf("id = %d", id)
	}
	rq := core.NewRevQueue(4)
	if id := s.RegisterReverseQueue(rq); id != 2 {
		t.Fatalf("rev id = %d", id)
	}
	q.Push(HintMsg{PID: 1, Locality: 1})
	s.TaskNew(1, 0, false, nil, nil)
	s.EnterQueue(1, 5) // count > queued: drains what exists
	if _, ok := s.GroupCore(1); ok {
		// Group core assigned only on placement, not on hint.
		t.Fatal("hint should not place eagerly")
	}
	s.SelectTaskRQ(1, 0, true)
	if _, ok := s.GroupCore(1); !ok {
		t.Fatal("hint not recorded via queue")
	}
	if s.UnregisterQueue(1) != q {
		t.Fatal("unregister queue")
	}
	if s.UnregisterRevQueue(2) != rq {
		t.Fatal("unregister rev queue")
	}
	// EnterQueue with no queue attached must not panic.
	s.EnterQueue(1, 1)
}

func TestUnitUpgradeKeepsGroups(t *testing.T) {
	s, env := unit()
	s.TaskNew(1, 0, false, nil, nil)
	s.ParseHint(HintMsg{PID: 1, Locality: 8})
	s.SelectTaskRQ(1, 0, true)
	out := s.ReregisterPrepare()
	s2 := New(env, 9)
	s2.ReregisterInit(&core.TransferIn{State: out.State})
	if _, ok := s2.GroupCore(8); !ok {
		t.Fatal("group map lost across upgrade")
	}
}

func TestUnitDegradedDropsSpillover(t *testing.T) {
	s, _ := unit()
	// Occupy the group's home core (round-robin claim lands on cpu 0)
	// past maxGroupQueue so a hinted placement must spill.
	for pid := 1; pid <= maxGroupQueue; pid++ {
		s.TaskNew(pid, 0, true, nil, schedtest.Tok(pid, 0, 1))
	}
	s.TaskNew(100, 0, false, nil, nil)
	s.ParseHint(HintMsg{PID: 100, Locality: 5})
	s.TaskNew(101, 0, false, nil, nil)
	s.ParseHint(HintMsg{PID: 101, Locality: 5})

	// Claim the home core for the group, overloaded from the start: the
	// first placement already spills to an LLC sibling.
	if s.SelectTaskRQ(100, 0, true) == 0 {
		t.Fatal("placement landed on the saturated home core")
	}
	if s.HintsRedirected != 1 || s.HintsIgnored != 0 {
		t.Fatalf("healthy spill: redirected=%d ignored=%d", s.HintsRedirected, s.HintsIgnored)
	}

	// Degraded mode gives the sibling scan up: same overload now falls
	// straight through to the random path and counts an ignored hint.
	s.SetDegraded(true)
	s.SelectTaskRQ(101, 0, true)
	if s.HintsRedirected != 1 || s.HintsIgnored != 1 {
		t.Fatalf("degraded spill: redirected=%d ignored=%d", s.HintsRedirected, s.HintsIgnored)
	}

	// Recovery restores spillover.
	s.SetDegraded(false)
	s.TaskNew(102, 0, false, nil, nil)
	s.ParseHint(HintMsg{PID: 102, Locality: 5})
	s.SelectTaskRQ(102, 0, true)
	if s.HintsRedirected != 2 {
		t.Fatalf("recovered spill: redirected=%d", s.HintsRedirected)
	}
}
