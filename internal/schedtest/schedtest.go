// Package schedtest provides the fake environment scheduler-module unit
// tests drive their modules with — no kernel, no simulation, just direct
// trait calls. This is the paper's development-velocity story in miniature:
// module logic is testable at userspace before anything is loaded.
package schedtest

import (
	"time"

	"enoki/internal/core"
	"enoki/internal/ktime"
)

// Env is a recording fake core.Env.
type Env struct {
	CPUs     int
	Rescheds []int
	Timers   []struct {
		CPU int
		D   time.Duration
	}
	Clock ktime.Time
	// Topo is the scheduling-domain structure the fake reports; nil means
	// flat (one domain). Set it to exercise topology-aware module paths.
	Topo *core.Topology
	rand *ktime.Rand
}

var _ core.Env = (*Env)(nil)

// NewEnv builds a fake environment with n CPUs.
func NewEnv(n int) *Env { return &Env{CPUs: n, rand: ktime.NewRand(1)} }

// Now implements core.Env.
func (e *Env) Now() ktime.Time { return e.Clock }

// NumCPUs implements core.Env.
func (e *Env) NumCPUs() int { return e.CPUs }

// SameNode implements core.Env.
func (e *Env) SameNode(a, b int) bool { return e.Topology().SameNode(a, b) }

// Topology implements core.Env: Topo if set, else a flat single domain.
func (e *Env) Topology() *core.Topology {
	if e.Topo == nil {
		e.Topo = core.FlatTopology(e.CPUs)
	}
	return e.Topo
}

// ArmTimer implements core.Env, recording the request.
func (e *Env) ArmTimer(cpu int, d time.Duration) {
	e.Timers = append(e.Timers, struct {
		CPU int
		D   time.Duration
	}{cpu, d})
}

// Resched implements core.Env, recording the request.
func (e *Env) Resched(cpu int) { e.Rescheds = append(e.Rescheds, cpu) }

// Rand implements core.Env.
func (e *Env) Rand() *ktime.Rand { return e.rand }

// NewMutex implements core.Env with a self-deadlock-checking lock.
func (e *Env) NewMutex(name string) core.Locker { return &lock{} }

type lock struct{ held bool }

func (l *lock) Lock() {
	if l.held {
		panic("schedtest: recursive lock")
	}
	l.held = true
}

func (l *lock) Unlock() {
	if !l.held {
		panic("schedtest: unlock of unlocked lock")
	}
	l.held = false
}

// Tok builds a Schedulable proof for tests.
func Tok(pid, cpu int, gen uint64) *core.Schedulable {
	return core.NewSchedulable(pid, cpu, gen)
}
