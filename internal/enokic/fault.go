package enokic

import (
	"time"

	"enoki/internal/core"
	"enoki/internal/ktime"
	"enoki/internal/trace"
)

// FailureReport describes one module kill: what tripped, when, how many
// tasks the framework re-homed to the fallback class, and how long the
// fault went undetected. It is delivered to the fault handler, kept on the
// adapter for inspection, and summarised into the record log as a
// module_fault entry.
type FailureReport struct {
	// Fault is the failure that tripped the kill.
	Fault core.ModuleFault
	// At is the virtual time the kill completed.
	At ktime.Time
	// TasksMigrated is how many tasks moved to the fallback class.
	TasksMigrated int
	// Downtime is the detection lag: for a starvation trip, how long the
	// starved CPU sat past its last service before the watchdog fired;
	// for synchronous trips (panic, pick errors, queue lies) it is zero —
	// the fault is caught on the crossing that raised it.
	Downtime time.Duration
}

// Killed reports whether the module was terminated by the fault layer.
func (a *Adapter) Killed() bool { return a.killed }

// Failure returns the report of the kill, or nil while the module lives.
// Between a fault tripping and the kill event running (same virtual
// timestamp) Killed is already true but the report is not built yet.
func (a *Adapter) Failure() *FailureReport { return a.report }

// SetFaultHandler installs a callback invoked once if the module is killed.
func (a *Adapter) SetFaultHandler(fn func(*FailureReport)) { a.onFault = fn }

// trip marks the module dead and schedules the kill. It is idempotent; the
// first fault wins. The kill itself runs from a zero-delay engine event so
// the mass migration never re-enters the scheduler core from inside one of
// its own hooks (a fault can trip mid-PickNext, mid-schedule()).
func (a *Adapter) trip(f core.ModuleFault, lag time.Duration) {
	if a.killed {
		return
	}
	a.killed = true
	a.fault = f
	a.faultLag = lag
	a.stats.Faults++
	a.traceFaultEvent(trace.KindFault, f.CPU, int64(f.Cause))
	a.wdEvent.Cancel()
	a.wdArmed = false
	a.k.Engine().Post(0, a.killModule)
}

// killModule tears the dead module down: every task it still owns is
// re-homed to the fallback class through the kernel's normal setscheduler
// path (Detach runs against the adapter, whose killed guard keeps the dead
// module out of the loop), the class is deregistered with the fallback
// installed under its policy id, and the FailureReport is built, logged,
// and delivered.
func (a *Adapter) killModule() {
	n := a.k.RehomeTasks(a, a.fallback)
	a.k.DeregisterClass(a.policy, a.fallback)
	now := a.k.Now()
	a.report = &FailureReport{
		Fault:         a.fault,
		At:            now,
		TasksMigrated: n,
		Downtime:      a.faultLag,
	}
	m := a.getMsg()
	m.Kind, m.Thread = core.MsgModuleFault, a.fault.CPU
	m.CPU, m.ErrCode, m.Count = a.fault.CPU, int(a.fault.Cause), n
	a.record(m)
	a.traceFaultEvent(trace.KindKill, a.fault.CPU, int64(n))
	a.failPendingUpgrades()
	if a.onFault != nil {
		a.onFault(a.report)
	}
}

// failPendingUpgrades drains the queued-upgrade list, firing each done
// callback once with an ErrModuleKilled report. A caller that queued an
// upgrade behind an in-flight one must learn the module died, not wait on a
// callback that can never fire — the upgrade analogue of a cancelled
// request. Idempotent: the drain empties the list, so a second kill-path
// visitor finds nothing.
func (a *Adapter) failPendingUpgrades() {
	pend := a.pendingUpgrades
	a.pendingUpgrades = nil
	for _, p := range pend {
		if p.done != nil {
			p.done(UpgradeReport{Err: ErrModuleKilled})
		}
	}
}

// --- starvation watchdog ----------------------------------------------------
//
// The watchdog catches the failure Schedulable validation cannot: a module
// that simply stops producing work. The tracked condition is "this CPU asked
// for a task, the authoritative table says the module has runnable tasks
// queued there, and the module returned nothing usable". One failed pick is
// legal (a module may decline a CPU); a CPU stuck in that state for a full
// StarveWindow with tasks still queued means those tasks are starving —
// nothing will ever run them, because the kernel only re-asks when the
// module itself requests a resched or new work arrives.

// wdPickFailed notes that cpu asked for work, had nqueued > 0, and got
// nothing schedulable. The first failure starts the CPU's starvation clock;
// repeats keep the original deadline (the tasks have been waiting since
// then).
func (a *Adapter) wdPickFailed(cpu int) {
	if a.wdWindow <= 0 || a.killed {
		return
	}
	if !a.wdFailing[cpu] {
		a.wdFailing[cpu] = true
		a.wdFailAt[cpu] = a.k.Now()
		a.traceFaultEvent(trace.KindWatchdog, cpu, 0)
	}
	if !a.wdArmed {
		a.wdArmed = true
		a.k.Engine().RescheduleAfter(a.wdEvent, a.wdWindow)
	}
}

// wdPickServed clears cpu's starvation clock: the module produced a usable
// task. Also called when a CPU's queue drains (no tasks ⇒ nothing starves).
func (a *Adapter) wdPickServed(cpu int) {
	a.wdFailing[cpu] = false
}

// wdCheck is the watchdog timer body: trip if any CPU has been starving for
// a full window, otherwise re-arm for the earliest outstanding deadline.
// When no CPU is failing the timer stays idle — it is event-driven, so an
// idle or healthy simulation never has a watchdog event pending (which
// would keep RunUntilIdle from draining).
func (a *Adapter) wdCheck() {
	a.wdArmed = false
	if a.killed {
		return
	}
	now := a.k.Now()
	var next ktime.Time
	pending := false
	for cpu, failing := range a.wdFailing {
		if !failing || a.nqueued[cpu] == 0 {
			continue
		}
		deadline := a.wdFailAt[cpu].Add(a.wdWindow)
		if !deadline.After(now) {
			a.trip(core.ModuleFault{
				Cause: core.FaultStarvation,
				CPU:   cpu,
			}, now.Sub(a.wdFailAt[cpu]))
			return
		}
		if !pending || deadline.Before(next) {
			next = deadline
			pending = true
		}
	}
	if pending {
		a.wdArmed = true
		a.k.Engine().RescheduleAfter(a.wdEvent, next.Sub(now))
	}
}

// finishUnregister completes an unregister_queue / unregister_rev_queue
// dispatch: the framework's own queue table says which object the module
// must hand back; returning anything else (or nothing) means the module's
// queue bookkeeping is corrupt, which is a kill — the framework can no
// longer trust the module's view of shared memory.
func (a *Adapter) finishUnregister(m *core.Message) {
	got := m.TakeRetQueue()
	switch m.Kind {
	case core.MsgUnregisterQueue:
		want, known := a.queues[m.QueueID]
		delete(a.queues, m.QueueID)
		if q, _ := got.(*core.HintQueue); known && q != want {
			a.trip(core.ModuleFault{Cause: core.FaultQueueLie, MsgKind: m.Kind, CPU: -1}, 0)
		}
	case core.MsgUnregisterRevQueue:
		want, known := a.revQueues[m.QueueID]
		delete(a.revQueues, m.QueueID)
		if q, _ := got.(*core.RevQueue); known && q != want {
			a.trip(core.ModuleFault{Cause: core.FaultQueueLie, MsgKind: m.Kind, CPU: -1}, 0)
		}
	}
}
