// Binary program codec: the wire/storage form of a Program and the fuzzing
// front door (FuzzVerify feeds raw bytes through Decode then Verify). Decode
// is defensive — every length is validated before allocation and malformed
// input returns an error, never a panic.
package vpol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// codec layout (little-endian):
//
//	magic "VPOL" + version byte
//	u8 sharedQueues, u8 localQueues
//	i64 slice (ns)
//	u16 enqueue count, then count × (u8 op, u8 a, u8 b, i64 imm)
//	u16 pick count, same cell layout
const (
	codecMagic   = "VPOL"
	codecVersion = 1
	instSize     = 11
)

// ErrBadProgram reports undecodable bytecode.
var ErrBadProgram = errors.New("vpol: bad program bytes")

// Encode serializes p.
func Encode(p *Program) []byte {
	out := make([]byte, 0, len(codecMagic)+1+2+8+2+len(p.Enqueue)*instSize+2+len(p.Pick)*instSize)
	out = append(out, codecMagic...)
	out = append(out, codecVersion, uint8(p.SharedQueues), uint8(p.LocalQueues))
	out = binary.LittleEndian.AppendUint64(out, uint64(p.Slice))
	for _, code := range [][]Inst{p.Enqueue, p.Pick} {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(code)))
		for _, in := range code {
			out = append(out, uint8(in.Op), in.A, in.B)
			out = binary.LittleEndian.AppendUint64(out, uint64(in.Imm))
		}
	}
	return out
}

// Decode parses bytes produced by Encode (or by a fuzzer). The result is
// unverified; run Verify before use. Instruction counts beyond MaxInsts are
// rejected before any allocation.
func Decode(data []byte) (*Program, error) {
	if len(data) < len(codecMagic)+1 || string(data[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrBadProgram)
	}
	data = data[len(codecMagic):]
	if data[0] != codecVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadProgram, data[0])
	}
	data = data[1:]
	if len(data) < 2+8 {
		return nil, fmt.Errorf("%w: truncated header", ErrBadProgram)
	}
	p := &Program{
		SharedQueues: int(data[0]),
		LocalQueues:  int(data[1]),
	}
	p.Slice = time.Duration(binary.LittleEndian.Uint64(data[2:]))
	data = data[2+8:]

	for _, hook := range []*[]Inst{&p.Enqueue, &p.Pick} {
		if len(data) < 2 {
			return nil, fmt.Errorf("%w: truncated section count", ErrBadProgram)
		}
		n := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if n > MaxInsts {
			return nil, fmt.Errorf("%w: %d instructions exceeds limit %d", ErrBadProgram, n, MaxInsts)
		}
		if len(data) < n*instSize {
			return nil, fmt.Errorf("%w: truncated code", ErrBadProgram)
		}
		code := make([]Inst, n)
		for i := range code {
			cell := data[i*instSize:]
			code[i] = Inst{
				Op:  Op(cell[0]),
				A:   cell[1],
				B:   cell[2],
				Imm: int64(binary.LittleEndian.Uint64(cell[3:])),
			}
		}
		*hook = code
		data = data[n*instSize:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadProgram, len(data))
	}
	return p, nil
}
