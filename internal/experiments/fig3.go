package experiments

import (
	"fmt"
	"time"

	"enoki/internal/arachne"
	"enoki/internal/kernel"
	"enoki/internal/stats"
	"enoki/internal/workload"
)

// Fig3Point is one (offered load, p99) sample.
type Fig3Point struct {
	RateKRPS float64
	P99      time.Duration
	Achieved float64
	Cores    int
}

// Fig3Series is one configuration's curve.
type Fig3Series struct {
	Config string
	Points []Fig3Point
}

// Fig3Result reproduces Fig 3: memcached tail latency under plain CFS,
// native Arachne, and Arachne with the Enoki core arbiter.
type Fig3Result struct {
	Series []Fig3Series
}

// Name implements the experiment naming convention.
func (r *Fig3Result) Name() string { return "fig3" }

func (r *Fig3Result) String() string {
	header := []string{"Load (k req/s)"}
	for _, s := range r.Series {
		header = append(header, s.Config+" p99(µs)")
	}
	t := stats.NewTable(header...)
	for i := range r.Series[0].Points {
		row := []any{fmt.Sprintf("%.0f", r.Series[0].Points[i].RateKRPS)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%d", s.Points[i].P99/time.Microsecond))
		}
		t.Row(row...)
	}
	return "Fig 3: memcached 99% latency vs load (mutilate, ETC-like mix)\n" + t.String()
}

// Fig3 sweeps memcached offered load across the three configurations. The
// Arachne configurations scale between 2 and 7 cores, reserving one for
// background work; the CFS baseline uses all 8 cores (§5.6).
func Fig3(o Options) *Fig3Result {
	rates := []float64{100000, 150000, 200000, 250000, 280000, 300000}
	if o.Quick {
		rates = []float64{100000, 200000, 250000, 300000}
	}
	duration := scaleDur(o, 2*time.Second, 400*time.Millisecond)
	warmup := scaleDur(o, 500*time.Millisecond, 100*time.Millisecond)
	mk := func(rate float64) workload.MemcachedConfig {
		return workload.MemcachedConfig{Rate: rate, Warmup: warmup, Duration: duration}
	}

	res := &Fig3Result{}

	// One cell per (configuration, rate); every cell is a fresh machine, so
	// they fan out across parDo workers into index-addressed slots.
	configs := []string{"CFS", "Arachne", "Enoki-Arachne"}
	points := make([][]Fig3Point, len(configs))
	for i := range points {
		points[i] = make([]Fig3Point, len(rates))
	}
	parDo(o, len(configs)*len(rates), func(ci int) {
		cfg, rate := ci/len(rates), rates[ci%len(rates)]
		var p Fig3Point
		switch cfg {
		case 0:
			r := NewRig(kernel.Machine8(), KindCFS)
			// Plain memcached runs more worker threads than cores (its
			// default thread pools); the oversubscription is part of why
			// CFS falls behind at high load.
			mr := workload.RunMemcachedThreads(r.K, r.Policy, 16, mk(rate))
			p = Fig3Point{RateKRPS: rate / 1000, P99: mr.P99, Achieved: mr.Achieved, Cores: 8}
		case 1:
			r := NewRig(kernel.Machine8(), KindCFS)
			rt := arachne.NewRuntime(r.K, arachne.DefaultConfig())
			acts := rt.Start(PolicyCFS, 7)
			na := arachne.NewNativeArbiter(r.K, []int{1, 2, 3, 4, 5, 6, 7})
			na.Attach(rt, 1, acts)
			rt.StartEstimator()
			mr := workload.RunMemcachedArachne(r.K, rt, mk(rate))
			p = Fig3Point{RateKRPS: rate / 1000, P99: mr.P99, Achieved: mr.Achieved, Cores: rt.Granted()}
		default:
			r, rt := NewArachneRig(kernel.Machine8(), 2, 7)
			rt.StartEstimator()
			mr := workload.RunMemcachedArachne(r.K, rt, mk(rate))
			p = Fig3Point{RateKRPS: rate / 1000, P99: mr.P99, Achieved: mr.Achieved, Cores: rt.Granted()}
		}
		points[cfg][ci%len(rates)] = p
	})
	for i, name := range configs {
		res.Series = append(res.Series, Fig3Series{Config: name, Points: points[i]})
	}
	return res
}
